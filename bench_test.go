package pervasive

// One benchmark per reproduction experiment (E1–E13; see DESIGN.md §2 and
// EXPERIMENTS.md). Each benchmark runs its experiment in Quick mode with a
// varying seed so iterations differ; `go test -bench=.` therefore
// regenerates a fast version of every table, and `cmd/experiments` the
// full versions. Micro-benchmarks for the clock protocols and the
// detection hot path follow.

import (
	"testing"

	"pervasive/internal/experiments"
	"pervasive/internal/sim"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := e.Run(experiments.RunConfig{Seed: uint64(i + 1), Quick: true})
		if len(tbl.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkE1StrobeAccuracy(b *testing.B)           { benchExperiment(b, "E1") }
func BenchmarkE2TwoEpsilonFalseNegatives(b *testing.B) { benchExperiment(b, "E2") }
func BenchmarkE3SlimLattice(b *testing.B)              { benchExperiment(b, "E3") }
func BenchmarkE4ScalarVectorEquivalence(b *testing.B)  { benchExperiment(b, "E4") }
func BenchmarkE5ExhibitionHall(b *testing.B)           { benchExperiment(b, "E5") }
func BenchmarkE6DefinitelyUnderDelay(b *testing.B)     { benchExperiment(b, "E6") }
func BenchmarkE7MessageOverhead(b *testing.B)          { benchExperiment(b, "E7") }
func BenchmarkE8LossLocalization(b *testing.B)         { benchExperiment(b, "E8") }
func BenchmarkE9ClockSyncCost(b *testing.B)            { benchExperiment(b, "E9") }
func BenchmarkE10EveryOccurrence(b *testing.B)         { benchExperiment(b, "E10") }
func BenchmarkE11HiddenChannels(b *testing.B)          { benchExperiment(b, "E11") }
func BenchmarkE12FalseCausality(b *testing.B)          { benchExperiment(b, "E12") }
func BenchmarkE13CrashChurn(b *testing.B)              { benchExperiment(b, "E13") }

// Design-choice ablations (A1–A6; see DESIGN.md and the experiment notes).
func BenchmarkA1BorderlinePolicy(b *testing.B)    { benchExperiment(b, "A1") }
func BenchmarkA2RaceCriterion(b *testing.B)       { benchExperiment(b, "A2") }
func BenchmarkA3BroadcastStrategy(b *testing.B)   { benchExperiment(b, "A3") }
func BenchmarkA4DiffCompression(b *testing.B)     { benchExperiment(b, "A4") }
func BenchmarkA5PhysicalSlack(b *testing.B)       { benchExperiment(b, "A5") }
func BenchmarkA6DutyCycle(b *testing.B)           { benchExperiment(b, "A6") }
func BenchmarkA7DistributedCheckers(b *testing.B) { benchExperiment(b, "A7") }

// ---- micro-benchmarks ----

func BenchmarkStrobeVectorProtocol(b *testing.B) {
	// One relevant event at each of 16 processes, full merge fan-out —
	// the per-event cost of the strobe vector protocol (SVC1 + n×SVC2).
	const n = 16
	clocks := make([]*StrobeVector, n)
	for i := range clocks {
		clocks[i] = NewStrobeVector(i, n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := i % n
		stamp := clocks[src].Strobe()
		for j := range clocks {
			if j != src {
				clocks[j].OnStrobe(stamp)
			}
		}
	}
}

func BenchmarkStrobeScalarProtocol(b *testing.B) {
	const n = 16
	clocks := make([]*StrobeScalar, n)
	for i := range clocks {
		clocks[i] = &StrobeScalar{}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := i % n
		v := clocks[src].Strobe()
		for j := range clocks {
			if j != src {
				clocks[j].OnStrobe(v)
			}
		}
	}
}

func BenchmarkPredicateEval(b *testing.B) {
	pred := MustParsePredicate("sum(x) - sum(y) > 200")
	type key = struct {
		Proc int
		Name string
	}
	_ = key{}
	st := mapState{n: 8, vals: map[[2]any]float64{}}
	for i := 0; i < 8; i++ {
		st.vals[[2]any{i, "x"}] = float64(40 * i)
		st.vals[[2]any{i, "y"}] = float64(10 * i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !pred.Holds(st) {
			b.Fatal("predicate should hold")
		}
	}
}

type mapState struct {
	n    int
	vals map[[2]any]float64
}

func (m mapState) Get(proc int, name string) float64 { return m.vals[[2]any{proc, name}] }
func (m mapState) NumProcs() int                     { return m.n }

// BenchmarkKernelScheduleStep measures the DES kernel's steady-state
// schedule+step cost: a fixed population of self-rescheduling events, one
// pop and one push per iteration. The fast-path bar is ~0 allocs/op (see
// BENCH_kernel.json).
func BenchmarkKernelScheduleStep(b *testing.B) {
	e := sim.NewEngine(1)
	const depth = 1024
	var tick sim.Handler
	tick = func(now sim.Time) {
		e.After(sim.Duration(now%97)+1, tick)
	}
	for i := 0; i < depth; i++ {
		e.After(sim.Duration(i%97)+1, tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkKernelTimerCancel measures timer cancel churn — the
// schedule-timeout/cancel-timeout pattern of delay models and MAC duty
// cycling: every iteration schedules a doomed timer, stops it, and steps
// one live event past the accumulated clutter.
func BenchmarkKernelTimerCancel(b *testing.B) {
	e := sim.NewEngine(1)
	nop := func(sim.Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(100, nop).Stop()
		e.After(1, nop)
		e.Step()
	}
}

func BenchmarkHallScenarioEndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hall := NewExhibitionHall(ExhibitionHallConfig{
			Seed: uint64(i), Doors: 4, Capacity: 100, InitialOccupancy: 95,
			MeanArrival: 200 * Millisecond, MeanStay: 10 * Second,
			Horizon: 20 * Second,
		})
		hall.Run()
	}
}
