package pervasive_test

import (
	"fmt"

	pervasive "pervasive"
)

// ExampleNewHarness shows the full quickstart: two sensors, strobe vector
// clocks, detection of a conjunction under Instantaneously, scored against
// ground truth.
func ExampleNewHarness() {
	h := pervasive.NewHarness(pervasive.HarnessConfig{
		Seed: 1, N: 2, Kind: pervasive.VectorStrobe,
		Delay:    pervasive.DeltaBounded(10 * pervasive.Millisecond),
		Pred:     pervasive.MustParsePredicate("x@0 == 1 && x@1 == 1"),
		Modality: pervasive.Instantaneously,
		Horizon:  10 * pervasive.Second,
	})
	a := h.World.AddObject("a", nil)
	b := h.World.AddObject("b", nil)
	h.Bind(0, a, "p", "x")
	h.Bind(1, b, "p", "x")
	// Scripted world: both up during [1s, 3s).
	h.Eng.At(1*pervasive.Second, func(pervasive.Time) {
		h.World.Set(a, "p", 1)
		h.World.Set(b, "p", 1)
	})
	h.Eng.At(3*pervasive.Second, func(pervasive.Time) {
		h.World.Set(a, "p", 0)
	})
	res := h.Run()
	fmt.Printf("truth=%d detected=%d TP=%d\n",
		len(res.Truth), len(res.Occurrences), res.Confusion.TP)
	// Output: truth=1 detected=1 TP=1
}

// ExampleConsensusMerge demonstrates §5's consensus over replicated
// checker views: the majority interval survives, minority noise is
// suppressed, and partial agreement is flagged borderline.
func ExampleConsensusMerge() {
	replicas := [][]pervasive.Occurrence{
		{{Start: 10, End: 20}},
		{{Start: 11, End: 21}},
		{{Start: 500, End: 510}}, // hallucination of one replica
	}
	merged := pervasive.ConsensusMerge(replicas, 1000)
	for _, o := range merged {
		fmt.Printf("[%d,%d) borderline=%v\n", o.Start, o.End, o.Borderline)
	}
	// Output: [11,20) borderline=true
}

// ExampleMustParseTL monitors a response property over a hand-built trace.
func ExampleMustParseTL() {
	tr := pervasive.NewTLTrace(100 * pervasive.Second)
	tr.Set("door_open", []pervasive.TLSpan{{Lo: 10 * pervasive.Second, Hi: 12 * pervasive.Second}})
	tr.Set("alarm", []pervasive.TLSpan{{Lo: 11 * pervasive.Second, Hi: 13 * pervasive.Second}})
	f := pervasive.MustParseTL("G(door_open -> F[0,2s] alarm)")
	fmt.Println(pervasive.MonitorTL(f, tr))
	// Output: true
}

// ExampleTimingSpec checks the secure-banking relation of §3.1.1.a.ii.
func ExampleTimingSpec() {
	spec := pervasive.TimingSpec{Rel: pervasive.XBeforeY, MaxGap: 30 * pervasive.Second}
	fmt.Println(spec)
	// Output: X before Y by (0µs, 30.000s]
}
