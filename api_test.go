package pervasive

import (
	"fmt"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	pred := MustParsePredicate("x@0 == 1 && x@1 == 1")
	h := NewHarness(HarnessConfig{
		Seed: 1, N: 2, Kind: VectorStrobe,
		Delay: DeltaBounded(10 * Millisecond),
		Pred:  pred, Modality: Instantaneously,
		Horizon: 30 * Second,
	})
	a := h.World.AddObject("a", nil)
	b := h.World.AddObject("b", nil)
	h.Bind(0, a, "p", "x")
	h.Bind(1, b, "p", "x")
	Toggler{Obj: a, Attr: "p", MeanHigh: Second, MeanLow: Second}.Install(h.World, 30*Second)
	Toggler{Obj: b, Attr: "p", MeanHigh: Second, MeanLow: Second}.Install(h.World, 30*Second)
	res := h.Run()
	if len(res.Truth) == 0 {
		t.Fatal("no truth intervals")
	}
	if res.Confusion.Recall() < 0.8 {
		t.Fatalf("recall %.2f", res.Confusion.Recall())
	}
}

func TestFacadeScenarios(t *testing.T) {
	if NewExhibitionHall(ExhibitionHallConfig{Horizon: Second}) == nil {
		t.Fatal("hall")
	}
	if NewSmartOffice(SmartOfficeConfig{Horizon: Second}) == nil {
		t.Fatal("office")
	}
	if NewHospital(HospitalConfig{Horizon: Second}) == nil {
		t.Fatal("hospital")
	}
	if NewHabitat(HabitatConfig{Horizon: Second}) == nil {
		t.Fatal("habitat")
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(Experiments()) != 16 {
		t.Fatalf("expected 16 experiments, got %d", len(Experiments()))
	}
	tbl, ok := RunExperiment("E4", ExperimentConfig{Seed: 1, Quick: true})
	if !ok || tbl == nil || len(tbl.Rows) == 0 {
		t.Fatal("E4 run failed")
	}
	if _, ok := RunExperiment("E99", ExperimentConfig{}); ok {
		t.Fatal("bogus experiment found")
	}
}

func TestFacadeClockSync(t *testing.T) {
	res := RunRBS(SyncConfig{N: 8, Seed: 1, MaxOffset: 50 * Millisecond,
		JitterStd: 20 * Microsecond, MinDelay: Millisecond, MaxDelay: 2 * Millisecond,
		Rounds: 4})
	if res.Eps <= 0 || res.Messages == 0 {
		t.Fatalf("RBS result %+v", res)
	}
}

func TestFacadeClocks(t *testing.T) {
	var l Lamport
	l.Tick()
	vc := NewVectorClock(0, 3)
	vc.Tick()
	sv := NewStrobeVector(1, 3)
	stamp := sv.Strobe()
	if stamp[1] != 1 {
		t.Fatal("strobe vector broken via facade")
	}
}

func ExampleMustParsePredicate() {
	pred := MustParsePredicate("sum(x) - sum(y) > 200")
	fmt.Println(pred)
	// Output: (sum(x) - sum(y)) > 200
}
