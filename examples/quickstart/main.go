// Quickstart: detect every occurrence of a relational predicate over two
// sensed variables using strobe vector clocks — no physical clock
// synchronization anywhere.
package main

import (
	"fmt"

	pervasive "pervasive"
)

func main() {
	// The predicate language references variables as name@process.
	pred := pervasive.MustParsePredicate("x@0 == 1 && x@1 == 1")

	// Two sensors, Δ-bounded asynchronous links, Instantaneously modality.
	h := pervasive.NewHarness(pervasive.HarnessConfig{
		Seed: 42, N: 2, Kind: pervasive.VectorStrobe,
		Delay:    pervasive.DeltaBounded(50 * pervasive.Millisecond),
		Pred:     pred,
		Modality: pervasive.Instantaneously,
		Horizon:  time60s(),
	})

	// World plane: two objects whose attribute "p" toggles; each sensor
	// observes one of them as variable "x".
	a := h.World.AddObject("object-a", nil)
	b := h.World.AddObject("object-b", nil)
	h.Bind(0, a, "p", "x")
	h.Bind(1, b, "p", "x")
	pervasive.Toggler{Obj: a, Attr: "p",
		MeanHigh: 2 * pervasive.Second, MeanLow: pervasive.Second}.Install(h.World, time60s())
	pervasive.Toggler{Obj: b, Attr: "p",
		MeanHigh: 2 * pervasive.Second, MeanLow: pervasive.Second}.Install(h.World, time60s())

	res := h.Run()

	fmt.Printf("ground truth: the predicate held during %d intervals\n", len(res.Truth))
	fmt.Printf("detected:     %d occurrences\n", len(res.Occurrences))
	for i, o := range res.Occurrences {
		flag := ""
		if o.Borderline {
			flag = "  [borderline: race within Δ]"
		}
		fmt.Printf("  #%-2d [%v .. %v]%s\n", i+1, o.Start, o.End, flag)
	}
	fmt.Printf("score:        %v\n", res.Confusion)
	fmt.Printf("recall %.3f, precision %.3f — with Δ ≪ event dwell times, strobe\n",
		res.Confusion.Recall(), res.Confusion.Precision())
	fmt.Println("clocks recreate the single time axis without synchronized clocks.")
}

func time60s() pervasive.Time { return 60 * pervasive.Second }
