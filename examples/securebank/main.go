// Secure banking (paper §3.1.1.a.ii and §6, citing [22]): "a biometric
// key is presented remotely after a password is entered across the
// network." Two sensors — a password terminal and a biometric reader —
// feed one strobe stream; a MultiChecker detects each predicate's
// occurrences; the relative timing specification
//
//	password BEFORE biometric, by at most 30 s
//
// separates legitimate authentications from biometric presentations with
// no preceding password (raised as alarms). This is the paper's example
// of a distributed application where the world-plane communication (the
// user walking from terminal to reader) IS trackable by the network
// plane, making timing relations between detected intervals a natural
// specification tool.
package main

import (
	"fmt"

	"pervasive/internal/core"
	"pervasive/internal/network"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
	"pervasive/internal/timing"
	"pervasive/internal/world"
)

func main() {
	const (
		horizon = 10 * sim.Minute
		delta   = 100 * sim.Millisecond
	)
	eng := sim.NewEngine(2026)
	w := world.New(eng)
	nt := network.New(eng, network.FullMesh{Nodes: 3}, sim.NewDeltaBounded(delta))

	terminal := w.AddObject("password-terminal", nil)
	reader := w.AddObject("biometric-reader", nil)

	sensors := core.NewSensors(eng, nt, core.SensorConfig{
		N: 2, Kind: core.VectorStrobe, CheckerIdx: 2,
	})
	sensors[0].Bind(w, terminal, "entered", "pw")
	sensors[1].Bind(w, reader, "presented", "bio")

	checker := core.NewMultiChecker(2, map[string]predicate.Cond{
		"pw":  predicate.MustParse("pw@0 == 1"),
		"bio": predicate.MustParse("bio@1 == 1"),
	}, true)
	checker.Register(nt, 2)

	// World-plane activity. Legitimate sessions: a password entry, then
	// the user walks to the reader (5–15 s) and presents the biometric.
	// Attacks: biometric presentations with no preceding password.
	r := eng.RNG().Fork()
	var legit, attacks int
	pulse := func(obj int, attr string, at sim.Time) {
		eng.At(at, func(sim.Time) { w.Set(obj, attr, 1) })
		eng.At(at+2*sim.Second, func(sim.Time) { w.Set(obj, attr, 0) })
	}
	world.Repeat(eng, r, stats.Exponential{MeanV: float64(40 * sim.Second)},
		0, horizon-30*sim.Second, func(now sim.Time) {
			pulse(terminal, "entered", now)
			walk := 5*sim.Second + sim.Duration(r.Int63n(int64(10*sim.Second)))
			pulse(reader, "presented", now+walk)
			legit++
		})
	world.Repeat(eng, r, stats.Exponential{MeanV: float64(150 * sim.Second)},
		17*sim.Second, horizon-5*sim.Second, func(now sim.Time) {
			pulse(reader, "presented", now)
			attacks++
		})

	eng.Run(horizon)
	eng.RunAll()
	checker.Finish(horizon)

	spec := timing.Spec{Rel: timing.XBeforeY, MaxGap: 30 * sim.Second}
	matcher := timing.Matcher{Spec: spec}
	pw := checker.Spans("pw")
	bio := checker.Spans("bio")
	auth := matcher.PairsOneToOne(pw, bio)
	alarms := matcher.UnmatchedYOneToOne(pw, bio)

	fmt.Println("secure banking: spec =", spec)
	fmt.Printf("world plane: %d legitimate sessions, %d attacks\n", legit, attacks)
	fmt.Printf("detected: %d password entries, %d biometric presentations\n",
		len(pw), len(bio))
	fmt.Printf("authenticated (password before biometric ≤ 30s): %d\n", len(auth))
	fmt.Printf("ALARMS (biometric with no preceding password):   %d\n", len(alarms))
	for _, yi := range alarms {
		fmt.Printf("  suspicious presentation at %v\n", bio[yi].Lo)
	}
	if len(auth) == legit && len(alarms) == attacks {
		fmt.Println("verdict: every session authenticated, every attack flagged ✓")
	} else {
		fmt.Println("verdict: counts differ from ground truth (races near the 30s window edge)")
	}
}
