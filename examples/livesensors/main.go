// Live engine demo: the same strobe-clock protocols running on real
// goroutines and channels instead of the deterministic simulator — each
// sensor process is a goroutine, each link delivery a timer-delayed
// channel send, exactly the asynchronous message-passing system of the
// paper's Section 2 realized in Go's concurrency model.
package main

import (
	"fmt"
	"time"

	pervasive "pervasive"
)

func main() {
	nw := pervasive.StartLive(pervasive.LiveConfig{
		N:    3,
		Seed: 1,
		Kind: pervasive.VectorStrobe,
		// Wall-clock link delays of 0.2–1 ms.
		Delay: pervasive.DeltaBounded(pervasive.Millisecond),
		Pred:  pervasive.MustParsePredicate("sum(x) >= 2"),
	})

	// Drive the world from the outside: three "rooms" become occupied and
	// free with real sleeps between events.
	occupy := func(i int, dwell time.Duration) {
		nw.Node(i).Sense("x", 1)
		time.Sleep(dwell)
		nw.Node(i).Sense("x", 0)
	}

	fmt.Println("live run: 3 goroutine sensors, predicate sum(x) >= 2")
	occupy(0, 30*time.Millisecond) // alone: predicate false
	time.Sleep(10 * time.Millisecond)

	nw.Node(0).Sense("x", 1) // rooms 0 and 1 together: predicate true
	time.Sleep(5 * time.Millisecond)
	nw.Node(1).Sense("x", 1)
	time.Sleep(40 * time.Millisecond)
	nw.Node(0).Sense("x", 0)
	nw.Node(1).Sense("x", 0)
	time.Sleep(10 * time.Millisecond)

	go occupy(1, 50*time.Millisecond) // a second episode, concurrently driven
	time.Sleep(5 * time.Millisecond)
	go occupy(2, 50*time.Millisecond)
	time.Sleep(80 * time.Millisecond)

	res := nw.Stop(30*time.Millisecond, 10*pervasive.Millisecond)

	fmt.Printf("ground truth: predicate held %d times in %v of wall time\n",
		len(res.Truth), res.Horizon)
	fmt.Printf("detected: %d occurrences over %d strobe transmissions (%d bytes)\n",
		len(res.Occurrences), res.Sent, res.Bytes)
	for i, o := range res.Occurrences {
		fmt.Printf("  #%d [%v .. %v] borderline=%v\n", i+1, o.Start, o.End, o.Borderline)
	}
	fmt.Printf("score: %v\n", res.Confusion)
}
