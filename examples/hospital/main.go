// Hospital (paper §5): RFID badges on visitors and patients. Two
// monitors run over the same machinery as the exhibition hall: a
// waiting-room overcrowding alarm, and a restricted-entry alarm on the
// infectious-diseases ward.
package main

import (
	"fmt"

	pervasive "pervasive"
)

func main() {
	fmt.Println("hospital monitors (strobe vector clocks, Δ = 100ms)")

	crowding := pervasive.NewHospital(pervasive.HospitalConfig{
		Seed:            5,
		Alarm:           "crowding",
		WaitingDoors:    2,
		WaitingCapacity: 12,
		MeanArrival:     800 * pervasive.Millisecond,
		MeanStay:        20 * pervasive.Second,
		Horizon:         5 * pervasive.Minute,
	})
	res := crowding.Run()
	fmt.Printf("\nwaiting-room overcrowding (capacity 12):\n")
	fmt.Printf("  true episodes: %d, alarms raised: %d\n", len(res.Truth), crowding.Alarms)
	fmt.Printf("  score: %v\n", res.Confusion)

	ward := pervasive.NewHospital(pervasive.HospitalConfig{
		Seed:          5,
		Alarm:         "ward",
		WardMeanVisit: 25 * pervasive.Second,
		Horizon:       5 * pervasive.Minute,
	})
	res = ward.Run()
	fmt.Printf("\ninfectious-ward restricted entry:\n")
	fmt.Printf("  true intrusions: %d, alarms raised: %d\n", len(res.Truth), ward.Alarms)
	fmt.Printf("  score: %v\n", res.Confusion)
	fmt.Printf("  recall %.3f — every intrusion episode is reported, not just the first\n",
		res.Confusion.Recall())
}
