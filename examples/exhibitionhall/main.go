// Exhibition hall (paper §5): a convention-center hall with d RFID-scanned
// doors and capacity 200. Each door sensor i tracks xᵢ (entries) and yᵢ
// (exits); the fire-code predicate Σ(xᵢ−yᵢ) > 200 is monitored under the
// Instantaneously modality using strobe vector clocks. Races between
// concurrent doors land in the borderline bin, which the application
// treats as positive to err on the safe side.
package main

import (
	"fmt"

	pervasive "pervasive"
)

func main() {
	hall := pervasive.NewExhibitionHall(pervasive.ExhibitionHallConfig{
		Seed:             7,
		Doors:            4,
		Capacity:         200,
		InitialOccupancy: 196, // start close to the limit
		MeanArrival:      150 * pervasive.Millisecond,
		MeanStay:         25 * pervasive.Second,
		Delay:            pervasive.DeltaBounded(100 * pervasive.Millisecond),
		Horizon:          3 * pervasive.Minute,
	})
	res := hall.Run()

	fmt.Println("exhibition hall: 4 doors, capacity 200, Δ = 100ms")
	fmt.Printf("overcrowding episodes (ground truth): %d\n", len(res.Truth))
	fmt.Printf("detected: %d occurrences, %d markers of racing traffic\n",
		len(res.Occurrences), len(res.Markers))

	strict, borderline := 0, 0
	for _, o := range res.Occurrences {
		if o.Borderline {
			borderline++
		} else {
			strict++
		}
	}
	fmt.Printf("  definite alarms:   %d\n", strict)
	fmt.Printf("  borderline alarms: %d (racing doors — treated as positive per §5)\n", borderline)
	fmt.Printf("score: %v\n", res.Confusion)
	fmt.Printf("borderline bin covered %.0f%% of detection errors\n",
		100*res.Confusion.BorderlineCoverage())
	fmt.Printf("control traffic: %d strobe broadcasts, %d bytes\n",
		res.Net.Sent, res.Net.Bytes)
}
