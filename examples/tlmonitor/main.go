// Temporal-logic monitoring (paper §3.1.1.a.iv): MTL formulas evaluated
// over the signals of a detection run — the ground-truth rule signal, the
// detector's view of it, and the actuation events — checking end-to-end
// service-level properties of the whole sense→detect→actuate loop:
//
//	G( detected -> O[0,2s] rule )     soundness: every alarm had a cause
//	G( rule_rise -> F[0,2s] detected) responsiveness: causes produce alarms
//	G( detected -> F[0,1s] reset )    actuation follows detection
package main

import (
	"fmt"

	pervasive "pervasive"
)

func main() {
	horizon := 5 * pervasive.Minute
	office := pervasive.NewSmartOffice(pervasive.SmartOfficeConfig{
		Seed: 5, Rooms: 1, Modality: pervasive.Instantaneously,
		Delay:   pervasive.DeltaBounded(50 * pervasive.Millisecond),
		Horizon: horizon, Actuate: true,
	})
	res := office.Run()

	// Assemble the proposition trace.
	tr := pervasive.NewTLTrace(horizon)
	truth := pervasive.TruthSignal(res.Truth, horizon)
	det := pervasive.DetectionSignal(res.Occurrences, horizon)
	tr.Atoms["rule"] = truth
	tr.Atoms["detected"] = det
	var resets []pervasive.TLSpan
	for _, ev := range office.Harness.World.Log() {
		if ev.Attr == "temp" && ev.New == 28 && ev.Old > 28 {
			resets = append(resets, pervasive.TLSpan{
				Lo: ev.At, Hi: ev.At + 500*pervasive.Millisecond})
		}
	}
	tr.Set("reset", resets)

	fmt.Println("temporal-logic monitoring of the smart-office loop")
	fmt.Printf("rule true %v of %v; %d detections; %d thermostat resets\n",
		truth.TrueTime(), horizon, len(res.Occurrences), len(resets))
	fmt.Println()

	// Each property is G(body); report the instants where the body fails.
	check := func(name, body string) {
		f := pervasive.MustParseTL(body)
		v := pervasive.TLViolations(f, tr)
		status := "HOLDS"
		if len(v) > 0 {
			status = fmt.Sprintf("FAILS (%d violation intervals)", len(v))
		}
		fmt.Printf("%-16s G(%s)  %s\n", name, body, status)
		shown := v
		if len(shown) > 3 {
			shown = shown[:3]
		}
		for _, sp := range shown {
			fmt.Printf("                 violated on [%v, %v)\n", sp.Lo, sp.Hi)
		}
	}

	check("soundness", "detected -> O[0,2s] rule")
	check("responsiveness", "(rule && !O[1ms,1s] rule) -> F[0,2s] detected")
	check("actuation", "(detected && !O[1ms,1s] detected) -> F[0,2s] reset")
	check("no-lockup", "rule -> F[0,1m] !rule")
	fmt.Println()
	fmt.Println("(soundness may fail transiently: the detector's view lags truth by up")
	fmt.Println(" to Δ, so an occurrence can outlive the rule by a delay-bound window)")
}
