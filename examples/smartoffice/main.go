// Smart office (paper §3.1/§3.3): the contextual rule
// "person in room ∧ temp > 30 °C" is detected as Definitely(φ) for the
// conjunctive φ — the modality studied by Huang et al. [17] — and each
// detection actuates the thermostat back to 28 °C, closing the paper's
// sense → detect → actuate loop. Every occurrence triggers a reset; the
// detector does not hang after the first match.
package main

import (
	"fmt"

	pervasive "pervasive"
)

func main() {
	office := pervasive.NewSmartOffice(pervasive.SmartOfficeConfig{
		Seed:     11,
		Rooms:    1,
		Modality: pervasive.Definitely,
		Delay:    pervasive.DeltaBounded(50 * pervasive.Millisecond),
		Horizon:  5 * pervasive.Minute,
		Actuate:  true,
	})
	res := office.Run()

	fmt.Println("smart office: rule = motion==1 && temp>30, modality = Definitely(φ)")
	fmt.Printf("rule held (ground truth): %d times\n", len(res.Truth))
	fmt.Printf("Definitely(φ) matches:    %d\n", len(res.Occurrences))
	fmt.Printf("thermostat actuations:    %d\n", office.Actuations)
	fmt.Printf("score: %v\n", res.Confusion)

	// Show the actuation effect in the world log: temperature resets.
	resets := 0
	for _, ev := range office.Harness.World.Log() {
		if ev.Attr == "temp" && ev.New == 28 && ev.Old > 28 {
			resets++
		}
	}
	fmt.Printf("world log records %d thermostat-driven temperature drops\n", resets)
	fmt.Println("(the actuation is itself a world event the sensors observe — the loop is closed)")
}
