// Habitat monitoring: the paper's motivating regime for strobe clocks —
// remote terrain where physically synchronized clocks are unavailable or
// unaffordable, lifeform movement is slow, and events are rare relative to
// Δ (§3.3, §6). Waterhole sensors detect animal presence; the predicate is
// a herd congregation: at least 2 of 5 waterholes occupied at the same
// instant. Despite Δ of seconds, accuracy stays near perfect because the
// event rate is low relative to Δ.
package main

import (
	"fmt"

	pervasive "pervasive"
)

func main() {
	fmt.Println("habitat monitor: 5 waterholes, congregation = ≥2 occupied, Δ = 2s")
	fmt.Println("delay regime      recall  precision  unflagged-FP")
	for _, delta := range []pervasive.Duration{
		500 * pervasive.Millisecond,
		2 * pervasive.Second,
		10 * pervasive.Second,
	} {
		hb := pervasive.NewHabitat(pervasive.HabitatConfig{
			Seed:    3,
			Delay:   pervasive.DeltaBounded(delta),
			Horizon: 2 * pervasive.Hour,
		})
		res := hb.Run()
		fmt.Printf("Δ = %-12v  %.3f   %.3f      %d\n",
			delta, res.Confusion.Recall(), res.Confusion.Precision(),
			res.Confusion.FP-res.Confusion.BorderlineFP)
	}
	fmt.Println()
	fmt.Println("animal dwell times (minutes) dwarf Δ, so the strobe vector clock")
	fmt.Println("recreates the single time axis with no clock-sync service at all —")
	fmt.Println("the condition under which the paper advocates strobe clocks.")
}
