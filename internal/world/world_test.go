package world

import (
	"testing"

	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

func TestSetGetAndLog(t *testing.T) {
	eng := sim.NewEngine(1)
	w := New(eng)
	room := w.AddObject("room", map[string]float64{"temp": 20})
	if w.Get(room, "temp") != 20 {
		t.Fatal("initial attribute lost")
	}
	eng.At(100, func(sim.Time) { w.Set(room, "temp", 31) })
	eng.RunAll()
	if w.Get(room, "temp") != 31 {
		t.Fatal("Set did not apply")
	}
	log := w.Log()
	if len(log) != 1 {
		t.Fatalf("log has %d events", len(log))
	}
	ev := log[0]
	if ev.At != 100 || ev.Old != 20 || ev.New != 31 || ev.Cause != NoCause {
		t.Fatalf("event %+v", ev)
	}
}

func TestAdd(t *testing.T) {
	eng := sim.NewEngine(1)
	w := New(eng)
	door := w.AddObject("door", nil)
	w.Add(door, "x", 1)
	w.Add(door, "x", 1)
	if w.Get(door, "x") != 2 {
		t.Fatal("Add did not accumulate")
	}
}

func TestSubscribe(t *testing.T) {
	eng := sim.NewEngine(1)
	w := New(eng)
	a := w.AddObject("a", nil)
	b := w.AddObject("b", nil)
	var got []Event
	w.Subscribe(a, "x", func(ev Event) { got = append(got, ev) })
	w.Set(a, "x", 1)
	w.Set(a, "y", 1) // different attribute: not delivered
	w.Set(b, "x", 1) // different object: not delivered
	if len(got) != 1 || got[0].Object != a || got[0].Attr != "x" {
		t.Fatalf("subscription saw %v", got)
	}
	var all int
	w.SubscribeAll(func(Event) { all++ })
	w.Set(b, "y", 5)
	if all != 1 {
		t.Fatal("SubscribeAll missed an event")
	}
}

func TestCovertRuleCausality(t *testing.T) {
	eng := sim.NewEngine(1)
	w := New(eng)
	wind := w.AddObject("wind", nil)
	fire := w.AddObject("fire", nil)
	w.AddCovertRule(CovertRule{
		SrcObj: wind, SrcAttr: "gust",
		DstObj: fire, DstAttr: "spread",
		Prob: 1, Delay: stats.Constant{V: float64(50 * sim.Millisecond)},
	})
	eng.At(0, func(sim.Time) { w.Set(wind, "gust", 1) })
	eng.RunAll()
	log := w.Log()
	if len(log) != 2 {
		t.Fatalf("expected 2 events, got %d", len(log))
	}
	effect := log[1]
	if effect.Object != fire || effect.Cause != log[0].Seq {
		t.Fatalf("covert effect %+v", effect)
	}
	if effect.At != 50*sim.Millisecond {
		t.Fatalf("covert delay: event at %v", effect.At)
	}
	if effect.New != 1 {
		t.Fatal("default transform should copy source value")
	}
}

func TestCovertRuleTransformAndProb(t *testing.T) {
	eng := sim.NewEngine(2)
	w := New(eng)
	a := w.AddObject("a", nil)
	b := w.AddObject("b", nil)
	w.AddCovertRule(CovertRule{
		SrcObj: a, SrcAttr: "x", DstObj: b, DstAttr: "y",
		Prob: 1, Delay: stats.Constant{V: 0},
		Transform: func(src, old float64) float64 { return old + 2*src },
	})
	eng.At(0, func(sim.Time) { w.Set(a, "x", 3) })
	eng.RunAll()
	if w.Get(b, "y") != 6 {
		t.Fatalf("transform result %v", w.Get(b, "y"))
	}

	// Prob 0 never fires.
	eng2 := sim.NewEngine(2)
	w2 := New(eng2)
	a2 := w2.AddObject("a", nil)
	b2 := w2.AddObject("b", nil)
	w2.AddCovertRule(CovertRule{
		SrcObj: a2, SrcAttr: "x", DstObj: b2, DstAttr: "y",
		Prob: 0, Delay: stats.Constant{V: 0},
	})
	eng2.At(0, func(sim.Time) { w2.Set(a2, "x", 3) })
	eng2.RunAll()
	if len(w2.Log()) != 1 {
		t.Fatal("prob-0 rule fired")
	}
}

func TestCovertChains(t *testing.T) {
	// a → b → c builds a causal chain; CausalPairs(transitive) includes a→c.
	eng := sim.NewEngine(3)
	w := New(eng)
	a := w.AddObject("a", nil)
	b := w.AddObject("b", nil)
	c := w.AddObject("c", nil)
	w.AddCovertRule(CovertRule{SrcObj: a, SrcAttr: "x", DstObj: b, DstAttr: "x",
		Prob: 1, Delay: stats.Constant{V: 10}})
	w.AddCovertRule(CovertRule{SrcObj: b, SrcAttr: "x", DstObj: c, DstAttr: "x",
		Prob: 1, Delay: stats.Constant{V: 10}})
	eng.At(0, func(sim.Time) { w.Set(a, "x", 1) })
	eng.RunAll()

	direct := CausalPairs(w.Log(), false)
	if len(direct) != 2 {
		t.Fatalf("direct pairs %v", direct)
	}
	trans := CausalPairs(w.Log(), true)
	if len(trans) != 3 {
		t.Fatalf("transitive pairs %v", trans)
	}
	want := [2]int{0, 2}
	found := false
	for _, p := range trans {
		if p == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("transitive pair %v missing from %v", want, trans)
	}
}

func TestStateAt(t *testing.T) {
	eng := sim.NewEngine(1)
	w := New(eng)
	o := w.AddObject("o", nil)
	eng.At(10, func(sim.Time) { w.Set(o, "v", 1) })
	eng.At(20, func(sim.Time) { w.Set(o, "v", 2) })
	eng.RunAll()
	if s := w.StateAt(15); s[AttrKey{o, "v"}] != 1 {
		t.Fatalf("state at 15: %v", s)
	}
	if s := w.StateAt(20); s[AttrKey{o, "v"}] != 2 {
		t.Fatalf("state at 20: %v", s)
	}
	if s := w.StateAt(5); s[AttrKey{o, "v"}] != 0 {
		t.Fatalf("state at 5: %v", s)
	}
}

func TestTrueIntervals(t *testing.T) {
	eng := sim.NewEngine(1)
	w := New(eng)
	o := w.AddObject("o", nil)
	eng.At(10, func(sim.Time) { w.Set(o, "v", 1) })
	eng.At(30, func(sim.Time) { w.Set(o, "v", 0) })
	eng.At(50, func(sim.Time) { w.Set(o, "v", 1) })
	eng.RunAll()
	pred := func(get func(int, string) float64) bool { return get(o, "v") > 0 }
	ivs := TrueIntervals(w.Log(), pred, 100)
	if len(ivs) != 2 {
		t.Fatalf("intervals %v", ivs)
	}
	if ivs[0] != (Interval{10, 30}) || ivs[1] != (Interval{50, 100}) {
		t.Fatalf("intervals %v", ivs)
	}
	if TotalTrueTime(ivs) != 70 {
		t.Fatalf("total %v", TotalTrueTime(ivs))
	}
}

func TestTrueIntervalsSimultaneousBatch(t *testing.T) {
	// Two simultaneous changes that individually flip the predicate but
	// jointly cancel must not produce a zero-length blip.
	eng := sim.NewEngine(1)
	w := New(eng)
	a := w.AddObject("a", nil)
	b := w.AddObject("b", nil)
	eng.At(10, func(sim.Time) {
		w.Set(a, "v", 1)
		w.Set(b, "v", -1)
	})
	eng.RunAll()
	pred := func(get func(int, string) float64) bool {
		return get(a, "v")+get(b, "v") > 0
	}
	ivs := TrueIntervals(w.Log(), pred, 100)
	if len(ivs) != 0 {
		t.Fatalf("atomic batch produced blip: %v", ivs)
	}
}

func TestTrueIntervalsHorizon(t *testing.T) {
	eng := sim.NewEngine(1)
	w := New(eng)
	o := w.AddObject("o", nil)
	eng.At(10, func(sim.Time) { w.Set(o, "v", 1) })
	eng.At(500, func(sim.Time) { w.Set(o, "v", 0) })
	eng.RunAll()
	pred := func(get func(int, string) float64) bool { return get(o, "v") > 0 }
	ivs := TrueIntervals(w.Log(), pred, 100)
	if len(ivs) != 1 || ivs[0] != (Interval{10, 100}) {
		t.Fatalf("horizon clipping: %v", ivs)
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{10, 20}
	if !iv.Contains(10) || iv.Contains(20) || !iv.Contains(15) {
		t.Fatal("Contains is wrong at boundaries")
	}
	if d := iv.Overlap(Interval{15, 30}); d != 5 {
		t.Fatalf("overlap %v", d)
	}
	if d := iv.Overlap(Interval{20, 30}); d != 0 {
		t.Fatalf("touching intervals overlap %v", d)
	}
	if d := iv.Overlap(Interval{0, 100}); d != 10 {
		t.Fatalf("containment overlap %v", d)
	}
}

func TestSetOutOfRangePanics(t *testing.T) {
	eng := sim.NewEngine(1)
	w := New(eng)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad object id")
		}
	}()
	w.Set(5, "x", 1)
}
