package world

import (
	"math"

	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

// Waypoint implements the random-waypoint mobility model for a world
// object: the object picks a uniform destination in the [0,W]×[0,H]
// rectangle, moves toward it at Speed (units per second), pauses, and
// repeats. Position is exposed through the attributes "x" and "y",
// updated every Tick — so sensors observe movement as ordinary attribute
// changes and predicates can mention coordinates.
type Waypoint struct {
	Obj    int
	W, H   float64
	Speed  float64      // units per true second
	Pause  sim.Duration // mean pause at each waypoint (exponential)
	Tick   sim.Duration // position update granularity
	StartX float64
	StartY float64
}

// Install starts the mobility process on w until the horizon.
func (wp Waypoint) Install(w *World, horizon sim.Time) {
	if wp.Tick <= 0 {
		wp.Tick = 200 * sim.Millisecond
	}
	if wp.Speed <= 0 {
		wp.Speed = 1
	}
	r := w.rng.Fork()
	x, y := wp.StartX, wp.StartY
	w.Set(wp.Obj, "x", x)
	w.Set(wp.Obj, "y", y)

	var newLeg func(now sim.Time)
	var step func(tx, ty float64) sim.Handler

	step = func(tx, ty float64) sim.Handler {
		return func(now sim.Time) {
			dx, dy := tx-x, ty-y
			dist := math.Hypot(dx, dy)
			stride := wp.Speed * wp.Tick.Seconds()
			if dist <= stride {
				x, y = tx, ty
				w.Set(wp.Obj, "x", x)
				w.Set(wp.Obj, "y", y)
				pause := sim.Duration(stats.Exponential{MeanV: float64(wp.Pause)}.Sample(r))
				if wp.Pause <= 0 {
					pause = 0
				}
				if now+pause+wp.Tick <= horizon {
					w.eng.At(now+pause+wp.Tick, func(t2 sim.Time) { newLeg(t2) })
				}
				return
			}
			x += dx / dist * stride
			y += dy / dist * stride
			w.Set(wp.Obj, "x", x)
			w.Set(wp.Obj, "y", y)
			if now+wp.Tick <= horizon {
				w.eng.At(now+wp.Tick, step(tx, ty))
			}
		}
	}
	newLeg = func(now sim.Time) {
		tx := r.Float64() * wp.W
		ty := r.Float64() * wp.H
		if now+wp.Tick <= horizon {
			w.eng.At(now+wp.Tick, step(tx, ty))
		}
	}
	w.eng.At(1, func(now sim.Time) { newLeg(now) })
}

// DistanceAt returns the Euclidean distance between two objects' (x, y)
// attributes in the world's current state.
func DistanceAt(w *World, a, b int) float64 {
	dx := w.Get(a, "x") - w.Get(b, "x")
	dy := w.Get(a, "y") - w.Get(b, "y")
	return math.Hypot(dx, dy)
}
