package world

import (
	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

// Generators synthesize world-plane activity. Each generator owns a forked
// RNG stream so that adding one never perturbs another's randomness.

// Repeat schedules fn at inter-arrival gaps drawn from gap (in
// microseconds) until the horizon. fn runs at the drawn instants; the
// first arrival is one gap after start.
func Repeat(eng *sim.Engine, r *stats.RNG, gap stats.Dist, start, horizon sim.Time, fn func(now sim.Time)) {
	var schedule func(from sim.Time)
	schedule = func(from sim.Time) {
		d := sim.Duration(gap.Sample(r))
		if d < 1 {
			d = 1
		}
		next := from + d
		if next > horizon {
			return
		}
		eng.At(next, func(now sim.Time) {
			fn(now)
			schedule(now)
		})
	}
	schedule(start)
}

// Toggler flips an object attribute between 0 and 1 with separate mean
// dwell times in each phase — the canonical on/off local predicate
// workload ("motion detected", "lights off").
type Toggler struct {
	Obj      int
	Attr     string
	MeanHigh sim.Duration // mean dwell at 1
	MeanLow  sim.Duration // mean dwell at 0
}

// Install starts the toggler on w until the horizon. The attribute starts
// low and first rises after an exponential low dwell.
func (tg Toggler) Install(w *World, horizon sim.Time) {
	tg.InstallWith(w, w.rng.Fork(), horizon)
}

// InstallWith is Install with an explicit random stream. Sharded runs use
// it with per-sensor streams forked from a workload root: the world's own
// RNG is forked from its shard's engine, so its draw order depends on the
// partitioning, while an explicit per-entity stream is shard-count
// invariant.
func (tg Toggler) InstallWith(w *World, r *stats.RNG, horizon sim.Time) {
	var flip func(now sim.Time)
	flip = func(now sim.Time) {
		cur := w.Get(tg.Obj, tg.Attr)
		var next float64
		var dwell sim.Duration
		if cur == 0 {
			next = 1
			dwell = tg.MeanHigh
		} else {
			next = 0
			dwell = tg.MeanLow
		}
		w.Set(tg.Obj, tg.Attr, next)
		d := sim.Duration(stats.Exponential{MeanV: float64(dwell)}.Sample(r))
		if d < 1 {
			d = 1
		}
		if now+d <= horizon {
			w.eng.At(now+d, flip)
		}
	}
	first := sim.Duration(stats.Exponential{MeanV: float64(tg.MeanLow)}.Sample(r))
	if first < 1 {
		first = 1
	}
	if first <= horizon {
		w.eng.At(first, flip)
	}
}

// RandomWalk makes an attribute perform a ±Step random walk, optionally
// clamped to [Min, Max], at exponential intervals with the given mean.
type RandomWalk struct {
	Obj      int
	Attr     string
	Step     float64
	Min, Max float64 // ignored when Min == Max
	MeanGap  sim.Duration
}

// Install starts the walk on w until the horizon.
func (rw RandomWalk) Install(w *World, horizon sim.Time) {
	r := w.rng.Fork()
	Repeat(w.eng, r, stats.Exponential{MeanV: float64(rw.MeanGap)}, 0, horizon,
		func(sim.Time) {
			v := w.Get(rw.Obj, rw.Attr)
			if r.Bool(0.5) {
				v += rw.Step
			} else {
				v -= rw.Step
			}
			if rw.Min != rw.Max {
				if v < rw.Min {
					v = rw.Min
				}
				if v > rw.Max {
					v = rw.Max
				}
			}
			w.Set(rw.Obj, rw.Attr, v)
		})
}

// PoissonPulses raises an attribute to 1 for a fixed Width at Poisson
// arrivals with the given mean gap — isolated spikes whose overlap across
// processes is the raw material of race conditions.
type PoissonPulses struct {
	Obj     int
	Attr    string
	MeanGap sim.Duration
	Width   sim.Duration
}

// Install starts the pulse train on w until the horizon.
func (pp PoissonPulses) Install(w *World, horizon sim.Time) {
	r := w.rng.Fork()
	Repeat(w.eng, r, stats.Exponential{MeanV: float64(pp.MeanGap)}, 0, horizon,
		func(now sim.Time) {
			if w.Get(pp.Obj, pp.Attr) == 1 {
				return // still inside a previous pulse
			}
			w.Set(pp.Obj, pp.Attr, 1)
			w.eng.At(now+pp.Width, func(sim.Time) {
				w.Set(pp.Obj, pp.Attr, 0)
			})
		})
}
