// Package world implements the world plane ⟨O, C⟩ of the paper's system
// model (Section 2.1): a set O of passive external objects with attributes
// that sensors can observe, and a covert-channel overlay C over which
// objects influence one another in ways the network plane cannot trace.
//
// The world runs on the shared discrete-event engine. Every attribute
// change is recorded in a ground-truth log with its true (global) time and
// its world-plane cause, which is exactly the information the paper says
// is unavailable to the network plane — making it the oracle against which
// detector accuracy is scored.
package world

import (
	"fmt"
	"maps"
	"sort"

	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

// AttrKey identifies one attribute of one object.
type AttrKey struct {
	Object int
	Attr   string
}

// NoCause marks a spontaneous world event (no covert-channel predecessor).
const NoCause = -1

// Event is one ground-truth attribute change in the world plane.
type Event struct {
	Seq    int      // position in the world log
	At     sim.Time // true global time of the change
	Object int
	Attr   string
	Old    float64
	New    float64
	// Cause is the Seq of the world event that triggered this one through
	// a covert channel in C, or NoCause if spontaneous. The network plane
	// never sees this field; it exists to measure how much causality is
	// lost (experiment E11).
	Cause int
}

// Listener observes world events; sensors in the network plane attach
// listeners to model their sensing range.
type Listener func(Event)

// Object is a passive world-plane entity. Objects have no clock and no
// network presence (Section 2.1's distinguishing features).
type Object struct {
	ID    int
	Name  string
	attrs map[string]float64
}

// World is the ⟨O, C⟩ plane.
type World struct {
	eng       *sim.Engine
	rng       *stats.RNG
	objects   []*Object
	log       []Event
	discard   bool
	listeners map[AttrKey][]Listener
	all       []Listener
	rules     []CovertRule
}

// New creates an empty world on the given engine.
func New(eng *sim.Engine) *World {
	return &World{
		eng:       eng,
		rng:       eng.RNG().Fork(),
		listeners: make(map[AttrKey][]Listener),
	}
}

// AddObject creates an object with the given initial attributes and
// returns its ID.
func (w *World) AddObject(name string, attrs map[string]float64) int {
	o := &Object{ID: len(w.objects), Name: name, attrs: maps.Clone(attrs)}
	if o.attrs == nil {
		o.attrs = map[string]float64{}
	}
	w.objects = append(w.objects, o)
	return o.ID
}

// NumObjects returns the number of objects in O.
func (w *World) NumObjects() int { return len(w.objects) }

// Name returns the object's name.
func (w *World) Name(obj int) string { return w.objects[obj].Name }

// Get returns the current value of an attribute (0 if never set).
func (w *World) Get(obj int, attr string) float64 {
	return w.objects[obj].attrs[attr]
}

// Set changes an attribute spontaneously at the current engine time.
func (w *World) Set(obj int, attr string, v float64) {
	w.set(obj, attr, v, NoCause)
}

// Add increments an attribute spontaneously.
func (w *World) Add(obj int, attr string, dv float64) {
	w.set(obj, attr, w.Get(obj, attr)+dv, NoCause)
}

func (w *World) set(obj int, attr string, v float64, cause int) {
	if obj < 0 || obj >= len(w.objects) {
		panic(fmt.Sprintf("world: object %d out of range", obj))
	}
	o := w.objects[obj]
	old := o.attrs[attr]
	o.attrs[attr] = v
	ev := Event{
		Seq: len(w.log), At: w.eng.Now(),
		Object: obj, Attr: attr, Old: old, New: v, Cause: cause,
	}
	if !w.discard {
		w.log = append(w.log, ev)
	}
	w.fire(ev)
	w.applyRules(ev)
}

func (w *World) fire(ev Event) {
	for _, l := range w.listeners[AttrKey{ev.Object, ev.Attr}] {
		l(ev)
	}
	for _, l := range w.all {
		l(ev)
	}
}

// Subscribe attaches a listener to one attribute of one object. This
// models a sensor whose range covers the object; the listener runs at the
// true event time on the engine.
func (w *World) Subscribe(obj int, attr string, l Listener) {
	k := AttrKey{obj, attr}
	w.listeners[k] = append(w.listeners[k], l)
}

// SubscribeAll attaches a listener to every world event (an omniscient
// observer; used by oracles and traces, not by realistic sensors).
func (w *World) SubscribeAll(l Listener) { w.all = append(w.all, l) }

// Log returns the ground-truth event log so far. The returned slice is the
// live log; callers must not modify it.
func (w *World) Log() []Event { return w.log }

// DiscardLog stops recording ground-truth events from now on; listeners
// still fire. Sharded scale runs call it on shards whose objects are
// outside the scored pilot set, so ground-truth memory tracks the pilot,
// not the fleet. Event.Seq/Cause bookkeeping stops with the log, so worlds
// with covert rules should keep logging.
func (w *World) DiscardLog() { w.discard = true }

// CovertRule is an edge of the covert-channel overlay C: when SrcObj.SrcAttr
// changes, then with probability Prob, after a Delay drawn in microseconds,
// DstObj.DstAttr changes to Transform(srcNew, dstOld). The resulting event
// records the triggering event as its Cause. Current technology cannot
// detect these channels (Section 2.1), so no listener API exposes Cause.
type CovertRule struct {
	SrcObj  int
	SrcAttr string
	DstObj  int
	DstAttr string
	Prob    float64
	Delay   stats.Dist
	// Transform computes the destination's new value; nil means copy the
	// source value.
	Transform func(srcNew, dstOld float64) float64
}

// AddCovertRule installs a covert-channel rule.
func (w *World) AddCovertRule(r CovertRule) { w.rules = append(w.rules, r) }

// DisableRules detaches the covert-channel overlay. Replays of a
// recorded ground-truth log call it before pumping the log back in: the
// rules' effects are already events in the recording, and leaving the
// overlay live would fire them a second time (and advance the world's
// RNG), breaking byte-identity.
func (w *World) DisableRules() { w.rules = nil }

func (w *World) applyRules(ev Event) {
	for _, r := range w.rules {
		if r.SrcObj != ev.Object || r.SrcAttr != ev.Attr {
			continue
		}
		if !w.rng.Bool(r.Prob) {
			continue
		}
		r := r
		cause := ev.Seq
		srcNew := ev.New
		d := sim.Duration(r.Delay.Sample(w.rng))
		if d < 0 {
			d = 0
		}
		w.eng.After(d, func(sim.Time) {
			old := w.Get(r.DstObj, r.DstAttr)
			nv := srcNew
			if r.Transform != nil {
				nv = r.Transform(srcNew, old)
			}
			w.set(r.DstObj, r.DstAttr, nv, cause)
		})
	}
}

// StateAt replays the log and returns all attribute values as of time t
// (inclusive).
func (w *World) StateAt(t sim.Time) map[AttrKey]float64 {
	state := make(map[AttrKey]float64)
	for _, ev := range w.log {
		if ev.At > t {
			break
		}
		state[AttrKey{ev.Object, ev.Attr}] = ev.New
	}
	return state
}

// Interval is a half-open span [Start, End) of true global time.
type Interval struct {
	Start, End sim.Time
}

// Contains reports whether t lies in the interval.
func (iv Interval) Contains(t sim.Time) bool { return t >= iv.Start && t < iv.End }

// Overlap returns the length of the intersection of two intervals (0 if
// disjoint).
func (iv Interval) Overlap(other Interval) sim.Duration {
	lo := iv.Start
	if other.Start > lo {
		lo = other.Start
	}
	hi := iv.End
	if other.End < hi {
		hi = other.End
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// StatePredicate evaluates a global predicate on world-plane attribute
// values; get returns the current value of (object, attr).
type StatePredicate func(get func(obj int, attr string) float64) bool

// TrueIntervals replays the log and returns the exact half-open intervals
// of true global time during which pred held, up to horizon. This is the
// ground truth for the Instantaneously modality: the paper's detectors are
// scored against exactly these intervals.
func TrueIntervals(log []Event, pred StatePredicate, horizon sim.Time) []Interval {
	state := make(map[AttrKey]float64)
	get := func(obj int, attr string) float64 { return state[AttrKey{obj, attr}] }

	var out []Interval
	cur := pred(get)
	var start sim.Time
	if cur {
		start = 0
	}
	i := 0
	for i < len(log) {
		t := log[i].At
		if t > horizon {
			break
		}
		// apply all simultaneous events atomically: an instant observer
		// never sees a half-applied batch
		for i < len(log) && log[i].At == t {
			ev := log[i]
			state[AttrKey{ev.Object, ev.Attr}] = ev.New
			i++
		}
		now := pred(get)
		if now && !cur {
			start = t
		}
		if !now && cur && t > start {
			out = append(out, Interval{Start: start, End: t})
		}
		cur = now
	}
	if cur && horizon > start {
		out = append(out, Interval{Start: start, End: horizon})
	}
	return out
}

// TotalTrueTime sums the durations of the intervals.
func TotalTrueTime(ivs []Interval) sim.Duration {
	var d sim.Duration
	for _, iv := range ivs {
		d += iv.End - iv.Start
	}
	return d
}

// CausalPairs extracts the world-plane causality relation from the log as
// (cause, effect) Seq pairs, including transitive pairs if transitive is
// set. This is the relation the network plane would need the hidden
// channels to reconstruct (Section 4.1).
func CausalPairs(log []Event, transitive bool) [][2]int {
	var direct [][2]int
	for _, ev := range log {
		if ev.Cause != NoCause {
			direct = append(direct, [2]int{ev.Cause, ev.Seq})
		}
	}
	if !transitive {
		return direct
	}
	// Transitive closure over the (sparse) cause forest: follow parent
	// pointers upward from each effect.
	parent := make(map[int]int)
	for _, p := range direct {
		parent[p[1]] = p[0]
	}
	var all [][2]int
	for _, p := range direct {
		eff := p[1]
		anc, ok := p[0], true
		for ok {
			all = append(all, [2]int{anc, eff})
			anc, ok = parent[anc]
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i][0] != all[j][0] {
			return all[i][0] < all[j][0]
		}
		return all[i][1] < all[j][1]
	})
	return all
}
