package world

import (
	"math"
	"testing"

	"pervasive/internal/sim"
)

func TestWaypointStaysInBounds(t *testing.T) {
	eng := sim.NewEngine(1)
	w := New(eng)
	o := w.AddObject("walker", nil)
	Waypoint{Obj: o, W: 10, H: 5, Speed: 2, Pause: sim.Second,
		StartX: 5, StartY: 2}.Install(w, 5*sim.Minute)
	eng.RunAll()
	moves := 0
	for _, ev := range w.Log() {
		if ev.Attr != "x" && ev.Attr != "y" {
			continue
		}
		moves++
		if ev.New < -1e-9 || (ev.Attr == "x" && ev.New > 10+1e-9) ||
			(ev.Attr == "y" && ev.New > 5+1e-9) {
			t.Fatalf("walker escaped bounds: %s=%v", ev.Attr, ev.New)
		}
	}
	if moves < 100 {
		t.Fatalf("too few movement events: %d", moves)
	}
}

func TestWaypointSpeedBound(t *testing.T) {
	eng := sim.NewEngine(2)
	w := New(eng)
	o := w.AddObject("walker", nil)
	const speed = 1.5
	wp := Waypoint{Obj: o, W: 20, H: 20, Speed: speed, Tick: 100 * sim.Millisecond}
	wp.Install(w, 2*sim.Minute)
	eng.RunAll()
	// Reconstruct positions over time; per-tick displacement ≤ speed·tick.
	var px, py float64
	var have bool
	var lastX, lastY float64
	stride := speed*wp.Tick.Seconds() + 1e-9
	for _, ev := range w.Log() {
		switch ev.Attr {
		case "x":
			lastX = ev.New
		case "y":
			lastY = ev.New
			if have {
				d := math.Hypot(lastX-px, lastY-py)
				if d > stride {
					t.Fatalf("teleport: moved %.3f in one tick (max %.3f)", d, stride)
				}
			}
			px, py, have = lastX, lastY, true
		}
	}
}

func TestDistanceAt(t *testing.T) {
	eng := sim.NewEngine(1)
	w := New(eng)
	a := w.AddObject("a", map[string]float64{"x": 0, "y": 0})
	b := w.AddObject("b", map[string]float64{"x": 3, "y": 4})
	if d := DistanceAt(w, a, b); math.Abs(d-5) > 1e-12 {
		t.Fatalf("distance %v", d)
	}
}
