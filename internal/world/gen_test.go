package world

import (
	"math"
	"testing"

	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

func TestRepeatRespectsHorizon(t *testing.T) {
	eng := sim.NewEngine(1)
	r := stats.NewRNG(1)
	var times []sim.Time
	Repeat(eng, r, stats.Constant{V: 10}, 0, 35, func(now sim.Time) {
		times = append(times, now)
	})
	eng.RunAll()
	if len(times) != 3 {
		t.Fatalf("times %v", times)
	}
	for i, want := range []sim.Time{10, 20, 30} {
		if times[i] != want {
			t.Fatalf("times %v", times)
		}
	}
}

func TestRepeatClampsTinyGaps(t *testing.T) {
	eng := sim.NewEngine(1)
	r := stats.NewRNG(1)
	n := 0
	Repeat(eng, r, stats.Constant{V: 0}, 0, 5, func(sim.Time) { n++ })
	eng.RunAll()
	if n != 5 {
		t.Fatalf("zero gaps clamped to 1µs should fire 5 times, got %d", n)
	}
}

func TestTogglerAlternates(t *testing.T) {
	eng := sim.NewEngine(7)
	w := New(eng)
	o := w.AddObject("motion", nil)
	Toggler{Obj: o, Attr: "on", MeanHigh: 100, MeanLow: 100}.Install(w, 100000)
	eng.RunAll()
	log := w.Log()
	if len(log) < 10 {
		t.Fatalf("toggler produced only %d events", len(log))
	}
	want := 1.0
	for _, ev := range log {
		if ev.New != want {
			t.Fatalf("toggler out of phase at seq %d: %v", ev.Seq, ev.New)
		}
		want = 1 - want
	}
}

func TestTogglerMeanDwell(t *testing.T) {
	eng := sim.NewEngine(11)
	w := New(eng)
	o := w.AddObject("motion", nil)
	high := 50 * sim.Millisecond
	low := 200 * sim.Millisecond
	Toggler{Obj: o, Attr: "on", MeanHigh: high, MeanLow: low}.Install(w, 20*sim.Minute)
	eng.RunAll()
	pred := func(get func(int, string) float64) bool { return get(o, "on") == 1 }
	ivs := TrueIntervals(w.Log(), pred, 20*sim.Minute)
	if len(ivs) < 100 {
		t.Fatalf("too few pulses: %d", len(ivs))
	}
	var tot float64
	for _, iv := range ivs {
		tot += float64(iv.End - iv.Start)
	}
	mean := tot / float64(len(ivs))
	if math.Abs(mean-float64(high))/float64(high) > 0.15 {
		t.Fatalf("mean high dwell %.0fµs want ~%dµs", mean, high)
	}
}

func TestRandomWalkClamps(t *testing.T) {
	eng := sim.NewEngine(3)
	w := New(eng)
	o := w.AddObject("temp", map[string]float64{"v": 5})
	RandomWalk{Obj: o, Attr: "v", Step: 1, Min: 0, Max: 10, MeanGap: 10}.
		Install(w, 100000)
	eng.RunAll()
	if len(w.Log()) == 0 {
		t.Fatal("walk produced no events")
	}
	for _, ev := range w.Log() {
		if ev.New < 0 || ev.New > 10 {
			t.Fatalf("walk escaped clamp: %v", ev.New)
		}
	}
}

func TestPoissonPulsesShape(t *testing.T) {
	eng := sim.NewEngine(5)
	w := New(eng)
	o := w.AddObject("spike", nil)
	width := 20 * sim.Millisecond
	PoissonPulses{Obj: o, Attr: "p", MeanGap: 200 * sim.Millisecond, Width: width}.
		Install(w, 30*sim.Second)
	eng.RunAll()
	pred := func(get func(int, string) float64) bool { return get(o, "p") == 1 }
	ivs := TrueIntervals(w.Log(), pred, 30*sim.Second)
	if len(ivs) < 50 {
		t.Fatalf("too few pulses: %d", len(ivs))
	}
	for _, iv := range ivs {
		if iv.End-iv.Start != width {
			t.Fatalf("pulse width %v want %v", iv.End-iv.Start, width)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	run := func() int {
		eng := sim.NewEngine(42)
		w := New(eng)
		o := w.AddObject("x", nil)
		Toggler{Obj: o, Attr: "a", MeanHigh: 100, MeanLow: 300}.Install(w, 1000000)
		RandomWalk{Obj: o, Attr: "b", Step: 1, MeanGap: 70}.Install(w, 1000000)
		eng.RunAll()
		return len(w.Log())
	}
	if run() != run() {
		t.Fatal("generators are not deterministic under a fixed seed")
	}
}
