package workload

import (
	"math"

	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

// ServeGen-style statistical generators: production-shaped load rather
// than flat Poisson. Each produces binary pulse activity (rise to 1,
// fall to 0) or continuous readings on one object, and composes with
// Combine into fleet-wide workloads.

// Diurnal is a non-homogeneous Poisson pulse train whose instantaneous
// rate follows a multi-period "diurnal" profile:
//
//	λ(t) = (1/MeanGap) · max(0, 1 + Amp·Σ_{k=1..Harmonics} sin(2πkt/Period + Phase)/k)
//
// Harmonics > 1 superimposes faster cycles on the base period (the
// morning/evening double peak of real deployments). Pulses are sampled
// by thinning against the rate envelope, so the stream is exact for any
// profile and deterministic in Seed.
type Diurnal struct {
	Seed uint64
	Obj  int
	Attr string
	// MeanGap is the mean pulse gap at baseline intensity (λ = 1/MeanGap).
	MeanGap sim.Duration
	// Amp ∈ [0, 1] scales the modulation depth; 0 degenerates to a
	// homogeneous Poisson train.
	Amp       float64
	Period    sim.Duration
	Harmonics int
	// Phase offsets the profile (radians) — the knob E16 sweeps.
	Phase float64
	// Width is each pulse's high time.
	Width sim.Duration
}

// rate returns the modulation factor λ(t)·MeanGap.
func (g Diurnal) rate(t sim.Time) float64 {
	h := g.Harmonics
	if h <= 0 {
		h = 1
	}
	f := 1.0
	for k := 1; k <= h; k++ {
		f += g.Amp * math.Sin(2*math.Pi*float64(k)*float64(t)/float64(g.Period)+g.Phase) / float64(k)
	}
	if f < 0 {
		f = 0
	}
	return f
}

// envelope returns an upper bound on the modulation factor.
func (g Diurnal) envelope() float64 {
	h := g.Harmonics
	if h <= 0 {
		h = 1
	}
	e := 1.0
	for k := 1; k <= h; k++ {
		e += g.Amp / float64(k)
	}
	return e
}

// Events implements Source.
func (g Diurnal) Events(horizon sim.Time) []Event {
	r := stats.NewRNG(g.Seed)
	env := g.envelope()
	gap := stats.Exponential{MeanV: float64(g.MeanGap) / env}
	var pulses []interval
	for now := sim.Time(0); ; {
		now += clampGap(gap.Sample(r))
		if now > horizon {
			break
		}
		if r.Float64()*env < g.rate(now) { // thinning acceptance
			pulses = append(pulses, interval{start: now, end: now + g.Width})
		}
	}
	return pulsesToEvents(g.Obj, g.Attr, pulses, horizon)
}

// ParetoBursts is a heavy-tailed burst train: burst onsets arrive as a
// Poisson process with MeanBurstGap, and each burst fires a
// Pareto(Xm, Alpha)-sized run of pulses PulseGap apart. Alpha near 1
// gives the long-tailed "elephant burst" regime whose overlap behavior
// flat Poisson load never exercises.
type ParetoBursts struct {
	Seed         uint64
	Obj          int
	Attr         string
	MeanBurstGap sim.Duration
	// Xm / Alpha parameterize the burst-size Pareto (size = ceil(sample),
	// capped at MaxBurst; default cap 10⁴ keeps α < 1 runs finite).
	Xm       float64
	Alpha    float64
	MaxBurst int
	PulseGap sim.Duration
	Width    sim.Duration
}

// Events implements Source.
func (g ParetoBursts) Events(horizon sim.Time) []Event {
	r := stats.NewRNG(g.Seed)
	size := stats.Pareto{Xm: g.Xm, Alpha: g.Alpha}
	maxBurst := g.MaxBurst
	if maxBurst <= 0 {
		maxBurst = 10000
	}
	var pulses []interval
	for now := sim.Time(0); ; {
		now += expGap(r, g.MeanBurstGap)
		if now > horizon {
			break
		}
		n := int(math.Ceil(size.Sample(r)))
		if n < 1 {
			n = 1
		}
		if n > maxBurst {
			n = maxBurst
		}
		for j := 0; j < n; j++ {
			start := now + sim.Duration(j)*g.PulseGap
			if start > horizon {
				break
			}
			pulses = append(pulses, interval{start: start, end: start + g.Width})
		}
	}
	return pulsesToEvents(g.Obj, g.Attr, pulses, horizon)
}

// Cohort is a correlated sensor group: object Objs[0] is the leader,
// emitting Poisson pulses; every follower copies each leader pulse with
// probability Rho, delayed by Lag plus a uniform ±Jitter — the "people
// moving through adjacent rooms" correlation of the paper's exhibition
// hall. Rho = 0 degenerates to a silent cohort; Rho = 1 to a marching
// fleet.
type Cohort struct {
	Seed    uint64
	Objs    []int
	Attr    string
	MeanGap sim.Duration
	Width   sim.Duration
	Rho     float64
	Lag     sim.Duration
	Jitter  sim.Duration
}

// Events implements Source.
func (g Cohort) Events(horizon sim.Time) []Event {
	if len(g.Objs) == 0 {
		return nil
	}
	r := stats.NewRNG(g.Seed)
	var leader []interval
	for now := sim.Time(0); ; {
		now += expGap(r, g.MeanGap)
		if now > horizon {
			break
		}
		leader = append(leader, interval{start: now, end: now + g.Width})
	}
	out := pulsesToEvents(g.Objs[0], g.Attr, leader, horizon)
	for fi, obj := range g.Objs[1:] {
		// Per-follower stream derived from the seed, not forked from the
		// leader's: the leader draws a horizon-dependent number of gaps,
		// and a fork taken after them would shift with the horizon.
		fr := stats.NewRNG(DeriveSeed(g.Seed, uint64(fi)+1))
		var pulses []interval
		for _, p := range leader {
			if !fr.Bool(g.Rho) {
				continue
			}
			lag := g.Lag
			if g.Jitter > 0 {
				lag += sim.Duration(fr.Int63n(int64(2*g.Jitter+1))) - g.Jitter
			}
			start := p.start + lag
			if start < 1 {
				start = 1
			}
			if start > horizon {
				continue
			}
			pulses = append(pulses, interval{start: start, end: start + g.Width})
		}
		out = append(out, pulsesToEvents(obj, g.Attr, pulses, horizon)...)
	}
	Sort(out)
	return out
}

// MobilityWalk is a random-waypoint mobility model: the object moves at
// Speed through a W×H area, re-targeting a uniform waypoint on arrival,
// and reports its position ("x", "y") every Tick. Positions are raw
// float64 readings — the codec path that exercises the trace format's
// non-integral encoding.
type MobilityWalk struct {
	Seed uint64
	Obj  int
	// W / H bound the area; Speed is distance per second.
	W, H  float64
	Speed float64
	Tick  sim.Duration
}

// Events implements Source.
func (g MobilityWalk) Events(horizon sim.Time) []Event {
	r := stats.NewRNG(g.Seed)
	x, y := g.W*r.Float64(), g.H*r.Float64()
	tx, ty := g.W*r.Float64(), g.H*r.Float64()
	step := g.Speed * float64(g.Tick) / float64(sim.Second)
	var out []Event
	for now := g.Tick; sim.Time(now) <= horizon; now += g.Tick {
		for left := step; left > 0; {
			dx, dy := tx-x, ty-y
			dist := math.Hypot(dx, dy)
			if dist <= left {
				x, y = tx, ty
				left -= dist
				tx, ty = g.W*r.Float64(), g.H*r.Float64()
				continue
			}
			x += dx / dist * left
			y += dy / dist * left
			left = 0
		}
		out = append(out, Event{At: sim.Time(now), Obj: g.Obj, Attr: "x", Val: x})
		out = append(out, Event{At: sim.Time(now), Obj: g.Obj, Attr: "y", Val: y})
	}
	return out
}
