package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"pervasive/internal/world"
)

// Digest returns a hex SHA-256 over the full event stream — time,
// object, attribute and value of every event, in order. Two runs whose
// world planes evolved identically have equal digests; this is the
// byte-identity oracle of the record/replay tests and cmd/tracedump.
func Digest(evs []Event) string {
	h := sha256.New()
	var buf [8]byte
	for _, ev := range evs {
		binary.LittleEndian.PutUint64(buf[:], uint64(ev.At))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(ev.Obj))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(len(ev.Attr)))
		h.Write(buf[:])
		h.Write([]byte(ev.Attr))
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(ev.Val))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ValuesDigest hashes only (obj, attr, value), ignoring times — the
// identity the live engine can honor: a replay feeds the same mutations
// in the same order, but wall-clock timestamps are not reproducible.
func ValuesDigest(evs []Event) string {
	h := sha256.New()
	var buf [8]byte
	for _, ev := range evs {
		binary.LittleEndian.PutUint64(buf[:], uint64(ev.Obj))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(len(ev.Attr)))
		h.Write(buf[:])
		h.Write([]byte(ev.Attr))
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(ev.Val))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// LogDigest is Digest over a ground-truth world log.
func LogDigest(log []world.Event) string { return Digest(FromLog(log)) }
