package workload

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"pervasive/internal/sim"
)

// Scenario spec files make workloads data: a line-oriented, stdlib-
// parseable format that composes generators without code, consumed by
// `pervasim -workload spec.txt`.
//
// Grammar (one directive per line; '#' starts a comment):
//
//	seed 42
//	horizon 30s
//	objects 8                      # optional; default max referenced + 1
//	predicate sum(p) - sum(q) > 3  # scored predicate for the CLI harness
//	generator toggler objs=0-7 attr=p meanhigh=800ms meanlow=1.5s
//	generator diurnal obj=0 attr=p meangap=200ms amp=0.8 period=10s harmonics=3 phase=1.2 width=150ms
//	generator pareto obj=1 attr=p burstgap=2s xm=2 alpha=1.1 pulsegap=50ms width=40ms
//	generator cohort objs=2-5 attr=p meangap=1s width=300ms rho=0.7 lag=80ms jitter=40ms
//	generator walk obj=6 w=100 h=60 speed=1.5 tick=500ms
//	generator hall doors=4 arrival=500ms stay=100s initial=10
//	generator admissions doors=2 arrival=2s stay=40s wardvisit=30s
//
// Each generator may carry an explicit seed=N; otherwise its seed is
// derived from the spec seed and the generator's position, so one spec
// seed reproduces the whole composition.
type Spec struct {
	Seed      uint64
	Horizon   sim.Time
	Objects   int
	Predicate string
	Gens      []GenSpec
}

// GenSpec is one parsed generator directive.
type GenSpec struct {
	Name string
	Args map[string]string
	Line int
}

// ParseSpecFile reads and parses a spec file.
func ParseSpecFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSpec(string(data))
}

// ParseSpec parses a spec from its text.
func ParseSpec(src string) (*Spec, error) {
	sp := &Spec{}
	for ln, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		ln++ // 1-based for messages
		key, rest := fields[0], fields[1:]
		switch key {
		case "seed":
			if len(rest) != 1 {
				return nil, fmt.Errorf("spec line %d: seed takes one value", ln)
			}
			v, err := strconv.ParseUint(rest[0], 0, 64)
			if err != nil {
				return nil, fmt.Errorf("spec line %d: %v", ln, err)
			}
			sp.Seed = v
		case "horizon":
			if len(rest) != 1 {
				return nil, fmt.Errorf("spec line %d: horizon takes one duration", ln)
			}
			d, err := parseDur(rest[0])
			if err != nil {
				return nil, fmt.Errorf("spec line %d: %v", ln, err)
			}
			sp.Horizon = sim.Time(d)
		case "objects":
			if len(rest) != 1 {
				return nil, fmt.Errorf("spec line %d: objects takes one count", ln)
			}
			v, err := strconv.Atoi(rest[0])
			if err != nil {
				return nil, fmt.Errorf("spec line %d: %v", ln, err)
			}
			sp.Objects = v
		case "predicate":
			sp.Predicate = strings.Join(rest, " ")
		case "generator":
			if len(rest) < 1 {
				return nil, fmt.Errorf("spec line %d: generator needs a name", ln)
			}
			g := GenSpec{Name: rest[0], Args: map[string]string{}, Line: ln}
			for _, kv := range rest[1:] {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("spec line %d: argument %q is not key=value", ln, kv)
				}
				g.Args[k] = v
			}
			sp.Gens = append(sp.Gens, g)
		default:
			return nil, fmt.Errorf("spec line %d: unknown directive %q", ln, key)
		}
	}
	if sp.Horizon <= 0 {
		return nil, fmt.Errorf("spec: missing or non-positive horizon")
	}
	if len(sp.Gens) == 0 {
		return nil, fmt.Errorf("spec: no generators")
	}
	return sp, nil
}

// Source builds the composed workload the spec describes.
func (sp *Spec) Source() (Source, error) {
	srcs := make([]Source, len(sp.Gens))
	for i, g := range sp.Gens {
		s, err := buildGen(g, DeriveSeed(sp.Seed, uint64(i)))
		if err != nil {
			return nil, err
		}
		srcs[i] = s
	}
	return Combine(srcs...), nil
}

// MaxObject returns the largest object index the spec's generators can
// touch (for sizing a harness); -1 if none is derivable.
func (sp *Spec) MaxObject() int {
	maxO := -1
	for _, g := range sp.Gens {
		for _, k := range []string{"obj"} {
			if v, err := strconv.Atoi(g.Args[k]); err == nil && v > maxO {
				maxO = v
			}
		}
		if lo, hi, err := parseRange(g.Args["objs"]); err == nil && hi > maxO {
			_ = lo
			maxO = hi
		}
		if n, err := strconv.Atoi(g.Args["doors"]); err == nil {
			top := n - 1
			if g.Name == "admissions" {
				top = n // ward object
			}
			if top > maxO {
				maxO = top
			}
		}
	}
	return maxO
}

// genArgs wraps one directive's arguments with typed, error-collecting
// accessors so builders read like their generator's field list.
type genArgs struct {
	g    GenSpec
	used map[string]bool
	err  error
}

func (a *genArgs) fail(key string, err error) {
	if a.err == nil {
		a.err = fmt.Errorf("spec line %d: generator %s: %s: %v", a.g.Line, a.g.Name, key, err)
	}
}

func (a *genArgs) raw(key string) (string, bool) {
	a.used[key] = true
	v, ok := a.g.Args[key]
	return v, ok
}

func (a *genArgs) dur(key string, def sim.Duration) sim.Duration {
	v, ok := a.raw(key)
	if !ok {
		return def
	}
	d, err := parseDur(v)
	if err != nil {
		a.fail(key, err)
	}
	return d
}

func (a *genArgs) float(key string, def float64) float64 {
	v, ok := a.raw(key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		a.fail(key, err)
	}
	return f
}

func (a *genArgs) num(key string, def int) int {
	v, ok := a.raw(key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		a.fail(key, err)
	}
	return n
}

func (a *genArgs) seed(def uint64) uint64 {
	v, ok := a.raw("seed")
	if !ok {
		return def
	}
	s, err := strconv.ParseUint(v, 0, 64)
	if err != nil {
		a.fail("seed", err)
	}
	return s
}

func (a *genArgs) objs() []int {
	v, ok := a.raw("objs")
	if !ok {
		a.fail("objs", fmt.Errorf("required"))
		return nil
	}
	lo, hi, err := parseRange(v)
	if err != nil {
		a.fail("objs", err)
		return nil
	}
	out := make([]int, 0, hi-lo+1)
	for o := lo; o <= hi; o++ {
		out = append(out, o)
	}
	return out
}

// finish reports the first accessor error or any unknown argument.
func (a *genArgs) finish() error {
	if a.err != nil {
		return a.err
	}
	keys := make([]string, 0, len(a.g.Args))
	for k := range a.g.Args {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic error selection
	for _, k := range keys {
		if !a.used[k] {
			return fmt.Errorf("spec line %d: generator %s: unknown argument %q", a.g.Line, a.g.Name, k)
		}
	}
	return nil
}

// parseRange parses "a-b" (or a single "a") into an inclusive range.
func parseRange(s string) (lo, hi int, err error) {
	if s == "" {
		return 0, 0, fmt.Errorf("empty range")
	}
	a, b, ok := strings.Cut(s, "-")
	if !ok {
		b = a
	}
	if lo, err = strconv.Atoi(a); err != nil {
		return 0, 0, err
	}
	if hi, err = strconv.Atoi(b); err != nil {
		return 0, 0, err
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("range %q is inverted", s)
	}
	return lo, hi, nil
}

// parseDur parses a Go duration string into simulated microseconds.
func parseDur(s string) (sim.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %q", s)
	}
	return sim.Duration(d / time.Microsecond), nil
}

// buildGen constructs one generator from its directive.
func buildGen(g GenSpec, defSeed uint64) (Source, error) {
	a := &genArgs{g: g, used: map[string]bool{}}
	attr := func() string {
		v, ok := a.raw("attr")
		if !ok {
			return "p"
		}
		return v
	}
	var src Source
	switch g.Name {
	case "toggler":
		objs := a.objs()
		src = TogglerFleet{
			Seed: a.seed(defSeed), N: len(objs), BaseObj: first(objs), Attr: attr(),
			MeanHigh: a.dur("meanhigh", 800*sim.Millisecond),
			MeanLow:  a.dur("meanlow", 1500*sim.Millisecond),
		}
	case "hall":
		src = HallTraffic{
			Seed: a.seed(defSeed), Doors: a.num("doors", 4),
			MeanArrival:      a.dur("arrival", 500*sim.Millisecond),
			MeanStay:         a.dur("stay", 100*sim.Second),
			InitialOccupancy: a.num("initial", 0),
		}
	case "admissions":
		src = Admissions{
			Seed: a.seed(defSeed), Doors: a.num("doors", 2),
			MeanArrival:   a.dur("arrival", 2*sim.Second),
			MeanStay:      a.dur("stay", 40*sim.Second),
			WardMeanVisit: a.dur("wardvisit", 30*sim.Second),
		}
	case "diurnal":
		src = Diurnal{
			Seed: a.seed(defSeed), Obj: a.num("obj", 0), Attr: attr(),
			MeanGap:   a.dur("meangap", 200*sim.Millisecond),
			Amp:       a.float("amp", 0.8),
			Period:    a.dur("period", 10*sim.Second),
			Harmonics: a.num("harmonics", 1),
			Phase:     a.float("phase", 0),
			Width:     a.dur("width", 150*sim.Millisecond),
		}
	case "pareto":
		src = ParetoBursts{
			Seed: a.seed(defSeed), Obj: a.num("obj", 0), Attr: attr(),
			MeanBurstGap: a.dur("burstgap", 2*sim.Second),
			Xm:           a.float("xm", 2),
			Alpha:        a.float("alpha", 1.2),
			MaxBurst:     a.num("maxburst", 0),
			PulseGap:     a.dur("pulsegap", 50*sim.Millisecond),
			Width:        a.dur("width", 40*sim.Millisecond),
		}
	case "cohort":
		src = Cohort{
			Seed: a.seed(defSeed), Objs: a.objs(), Attr: attr(),
			MeanGap: a.dur("meangap", sim.Second),
			Width:   a.dur("width", 300*sim.Millisecond),
			Rho:     a.float("rho", 0.7),
			Lag:     a.dur("lag", 80*sim.Millisecond),
			Jitter:  a.dur("jitter", 40*sim.Millisecond),
		}
	case "walk":
		src = MobilityWalk{
			Seed: a.seed(defSeed), Obj: a.num("obj", 0),
			W: a.float("w", 100), H: a.float("h", 100),
			Speed: a.float("speed", 1.4),
			Tick:  a.dur("tick", 500*sim.Millisecond),
		}
	default:
		return nil, fmt.Errorf("spec line %d: unknown generator %q", g.Line, g.Name)
	}
	if err := a.finish(); err != nil {
		return nil, err
	}
	return src, nil
}

func first(objs []int) int {
	if len(objs) == 0 {
		return 0
	}
	return objs[0]
}
