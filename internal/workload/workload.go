// Package workload is the scenario-diversity layer: it turns world-plane
// activity into data. A Source materializes a deterministic, canonically
// ordered stream of attribute mutations; Install pumps that stream into a
// world on any engine (single-heap DES, sharded DES, or — via the live
// package's feeder — the goroutine engine). Because generation and replay
// run through the identical pump, a recorded run replays byte-identically:
// same world log, same strobe traffic, same detection output.
//
// The package has three parts:
//
//   - a versioned, delta-coded binary trace format (trace.go) in the
//     style of clock.AppendStampBatch, so any run can be recorded and
//     shipped between engines;
//   - statistically-informed generators (generators.go, servegen.go):
//     toggler fleets, hall/hospital admission flows, multi-period diurnal
//     load, heavy-tailed Pareto bursts, correlated cohorts and mobility
//     walks — every one seeded explicitly and deterministic per the
//     pervalint determinism analyzer;
//   - a stdlib-parseable scenario spec (spec.go) so `pervasim -workload
//     spec.txt` composes generators without code.
package workload

import (
	"sort"

	"pervasive/internal/sim"
	"pervasive/internal/stats"
	"pervasive/internal/world"
)

// Event is one world-plane attribute mutation: at time At, object Obj's
// attribute Attr takes the absolute value Val. Absolute values (rather
// than increments) make replay a plain world.Set and make the trace the
// world log's exact image.
type Event struct {
	At   sim.Time
	Obj  int
	Attr string
	Val  float64
}

// less is the canonical event order: (At, Obj, Attr). Within one
// (Obj, Attr) stream, generator emission order is always chronological,
// so canonical sorting never reorders a stream against itself — it only
// normalizes cross-object ties, which is what makes the order identical
// at every shard count.
func less(a, b Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Obj != b.Obj {
		return a.Obj < b.Obj
	}
	return a.Attr < b.Attr
}

// Sort orders events canonically, stably (same-key events keep their
// emission order).
func Sort(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool { return less(evs[i], evs[j]) })
}

// Source produces a fully materialized workload: every event up to and
// including horizon, in canonical order. Materialization (rather than
// callback scheduling) is what makes a workload engine-independent data —
// fleets at p = 65536 over a few simulated seconds stay well under a
// million events.
type Source interface {
	Events(horizon sim.Time) []Event
}

// EventSource is the trivial Source: a pre-materialized stream (e.g. a
// decoded trace). Events returns the prefix at or before horizon; the
// slice must already be canonically ordered.
type EventSource []Event

// Events implements Source.
func (s EventSource) Events(horizon sim.Time) []Event {
	n := sort.Search(len(s), func(i int) bool { return s[i].At > horizon })
	return s[:n]
}

// Combine merges sources into one canonically ordered stream.
func Combine(srcs ...Source) Source {
	return combined(srcs)
}

type combined []Source

// Events implements Source.
func (c combined) Events(horizon sim.Time) []Event {
	var out []Event
	for _, s := range c {
		out = append(out, s.Events(horizon)...)
	}
	Sort(out)
	return out
}

// Install schedules evs onto the engine as a chained pump: one engine
// event per workload event, each applying a single world.Set and then
// scheduling its successor. One-event-per-mutation keeps sim.executed
// equal to the event count on every partitioning — a per-timestamp batch
// pump would make the executed counter depend on how a sharded run splits
// the stream. Pump events run at priority 0, so (matching the sharded
// kernel's convention) world mutations always sort ahead of same-instant
// message deliveries.
//
// evs must be canonically ordered and must not start before the engine's
// current time. A run driven by Install is exactly reproducible from evs:
// replaying a recorded stream re-creates the original execution.
func Install(eng *sim.Engine, w *world.World, evs []Event) {
	if len(evs) == 0 {
		return
	}
	var i int
	var step func(now sim.Time)
	step = func(now sim.Time) {
		ev := evs[i]
		w.Set(ev.Obj, ev.Attr, ev.Val)
		i++
		if i < len(evs) {
			eng.At(evs[i].At, step)
		}
	}
	eng.At(evs[0].At, step)
}

// FromLog projects a ground-truth world log onto workload events — the
// recording half of record/replay for runs whose mutations do not all
// come from a Source (covert rules, actuation feedback).
func FromLog(log []world.Event) []Event {
	out := make([]Event, len(log))
	for i, ev := range log {
		out[i] = Event{At: ev.At, Obj: ev.Object, Attr: ev.Attr, Val: ev.New}
	}
	return out
}

// Recorder captures every mutation of a world as workload events, in
// execution order (which is canonical order per (obj, attr) stream by
// construction). It works on worlds with a discarded log too: listeners
// still fire after DiscardLog.
type Recorder struct {
	evs []Event
}

// NewRecorder subscribes a recorder to w. Attach before the run starts.
func NewRecorder(w *world.World) *Recorder {
	r := &Recorder{}
	w.SubscribeAll(func(ev world.Event) {
		r.evs = append(r.evs, Event{At: ev.At, Obj: ev.Object, Attr: ev.Attr, Val: ev.New})
	})
	return r
}

// Events returns the captured stream so far (live slice; do not modify).
func (r *Recorder) Events() []Event { return r.evs }

// DeriveSeed maps (seed, domain) to an independent seed (the splitmix64
// finalizer), so one run seed can feed many generators without stream
// overlap. Identical to the harness's internal seed-domain derivation.
func DeriveSeed(seed, domain uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(domain+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// clampGap converts a sampled real-valued duration to at least one
// microsecond — the shared convention of every generator in this package
// (and of world.Toggler before it).
func clampGap(v float64) sim.Duration {
	d := sim.Duration(v)
	if d < 1 {
		d = 1
	}
	return d
}

// expGap draws an exponential inter-event gap with the given mean.
func expGap(r *stats.RNG, mean sim.Duration) sim.Duration {
	return clampGap(stats.Exponential{MeanV: float64(mean)}.Sample(r))
}
