package workload

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sort"

	"pervasive/internal/sim"
)

// Versioned, delta-coded binary trace format ("PVWL"), in the style of
// clock.AppendStampBatch: uvarint fields, gap deltas over the canonical
// order, self-delimiting records.
//
// Layout (version 1):
//
//	magic    "PVWL"
//	version  uvarint (1)
//	horizon  uvarint (microseconds)
//	meta     uvarint count, then count (key, value) string pairs, keys
//	         sorted; strings are uvarint length + bytes
//	attrs    uvarint count, then count sorted strings (the attr table)
//	events   uvarint count, then count records in canonical order:
//	           dt    uvarint   time gap from the previous record
//	           dobj  zigzag    object gap from the previous record
//	           key   uvarint   attrIdx<<1 | raw
//	           val   raw=0: zigzag int64 delta from the previous value
//	                        of this (obj, attr) stream (0 before the
//	                        first event) — the common case, since most
//	                        sensor attributes are small integers;
//	                 raw=1: 8 little-endian float64 bits
//
// Integer deltas apply only when both the old and new value are integral
// and within ±2^52 (exact in float64); anything else falls back to raw
// bits, so every float64 round-trips exactly.

// TraceMagic is the 4-byte header of a workload trace file.
const TraceMagic = "PVWL"

// TraceVersion is the current format version.
const TraceVersion = 1

// Trace is a decoded workload trace: a canonical event stream plus the
// run metadata needed to rebuild the scenario around it.
type Trace struct {
	Horizon sim.Time
	Meta    map[string]string
	Events  []Event
}

// IsTraceHeader reports whether data starts with the workload-trace
// magic (the sniff used by cmd/tracedump to dispatch file kinds).
func IsTraceHeader(data []byte) bool {
	return len(data) >= len(TraceMagic) && string(data[:len(TraceMagic)]) == TraceMagic
}

// streamKey packs (obj, attrIdx) for the per-stream value-delta state.
func streamKey(obj int, attrIdx uint64) uint64 {
	return uint64(obj)<<16 | attrIdx
}

// integral reports whether v is an exact integer within ±2^52.
func integral(v float64) (int64, bool) {
	const lim = 1 << 52
	if v != math.Trunc(v) || v > lim || v < -lim {
		return 0, false
	}
	return int64(v), true
}

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Encode serializes the trace. Events must be canonically ordered with
// non-negative times and objects; Encode panics otherwise (same contract
// style as clock.AppendStampBatch).
func (t *Trace) Encode() []byte {
	attrIdx := make(map[string]uint64)
	var attrs []string
	for _, ev := range t.Events {
		if _, ok := attrIdx[ev.Attr]; !ok {
			attrIdx[ev.Attr] = 0
			attrs = append(attrs, ev.Attr)
		}
	}
	sort.Strings(attrs)
	if len(attrs) >= 1<<16 {
		panic("workload: trace exceeds 65535 distinct attributes")
	}
	for i, a := range attrs {
		attrIdx[a] = uint64(i)
	}
	keys := make([]string, 0, len(t.Meta))
	for k := range t.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	buf := make([]byte, 0, 16+10*len(t.Events))
	buf = append(buf, TraceMagic...)
	buf = appendUvarint(buf, TraceVersion)
	buf = appendUvarint(buf, uint64(t.Horizon))
	buf = appendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = appendString(buf, k)
		buf = appendString(buf, t.Meta[k])
	}
	buf = appendUvarint(buf, uint64(len(attrs)))
	for _, a := range attrs {
		buf = appendString(buf, a)
	}
	buf = appendUvarint(buf, uint64(len(t.Events)))

	var prevAt sim.Time
	var prevObj int
	last := make(map[uint64]int64, 64) // per-(obj,attr) previous integral value
	for i, ev := range t.Events {
		if ev.At < prevAt || ev.Obj < 0 {
			panic(fmt.Sprintf("workload: trace event %d out of canonical order", i))
		}
		buf = appendUvarint(buf, uint64(ev.At-prevAt))
		buf = appendUvarint(buf, zigzag(int64(ev.Obj-prevObj)))
		ai := attrIdx[ev.Attr]
		sk := streamKey(ev.Obj, ai)
		prev := last[sk]
		if v, ok := integral(ev.Val); ok {
			buf = appendUvarint(buf, ai<<1)
			buf = appendUvarint(buf, zigzag(v-prev))
			last[sk] = v
		} else {
			buf = appendUvarint(buf, ai<<1|1)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(ev.Val))
			// A raw value resets the stream's integer chain: the next
			// integral event deltas from zero again.
			delete(last, sk)
		}
		prevAt, prevObj = ev.At, ev.Obj
	}
	return buf
}

// decoder walks an encoded trace with bounds checking.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("workload: truncated trace at offset %d", d.off) //lint:allow hotpath(cold error path: a truncated trace aborts the replay; the happy path never formats)
	}
	d.off += n
	return v, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(d.b)-d.off) < n {
		return "", fmt.Errorf("workload: truncated string at offset %d", d.off)
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decoder) raw8() (uint64, error) {
	if len(d.b)-d.off < 8 {
		return 0, fmt.Errorf("workload: truncated raw value at offset %d", d.off)
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

// Decode parses an encoded trace, validating the magic and version.
func Decode(data []byte) (*Trace, error) {
	if !IsTraceHeader(data) {
		return nil, fmt.Errorf("workload: not a trace (missing %q magic)", TraceMagic)
	}
	d := &decoder{b: data, off: len(TraceMagic)}
	ver, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if ver != TraceVersion {
		return nil, fmt.Errorf("workload: trace version %d (supported: %d)", ver, TraceVersion)
	}
	hz, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	t := &Trace{Horizon: sim.Time(hz), Meta: map[string]string{}}
	nm, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nm; i++ {
		k, err := d.str()
		if err != nil {
			return nil, err
		}
		v, err := d.str()
		if err != nil {
			return nil, err
		}
		t.Meta[k] = v
	}
	na, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	attrs := make([]string, na)
	for i := range attrs {
		if attrs[i], err = d.str(); err != nil {
			return nil, err
		}
	}
	ne, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	t.Events = make([]Event, 0, ne)
	var at sim.Time
	var obj int
	last := make(map[uint64]int64, 64)
	for i := uint64(0); i < ne; i++ {
		dt, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		dobjZ, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		key, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		ai := key >> 1
		if ai >= uint64(len(attrs)) {
			return nil, fmt.Errorf("workload: event %d references attr %d of %d", i, ai, len(attrs))
		}
		at += sim.Time(dt)
		obj += int(unzigzag(dobjZ))
		if obj < 0 {
			return nil, fmt.Errorf("workload: event %d decodes to negative object %d", i, obj)
		}
		var val float64
		sk := streamKey(obj, ai)
		if key&1 == 0 {
			dv, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			v := last[sk] + unzigzag(dv)
			last[sk] = v
			val = float64(v)
		} else {
			bits, err := d.raw8()
			if err != nil {
				return nil, err
			}
			val = math.Float64frombits(bits)
			delete(last, sk)
		}
		t.Events = append(t.Events, Event{At: at, Obj: obj, Attr: attrs[ai], Val: val})
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("workload: %d trailing bytes after trace", len(data)-d.off)
	}
	return t, nil
}

// WriteFile encodes the trace to path.
func (t *Trace) WriteFile(path string) error {
	return os.WriteFile(path, t.Encode(), 0o644)
}

// ReadFile reads and decodes a trace from path.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
