package workload

import (
	"sort"

	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

// Scenario generators: materialized equivalents of the hand-rolled
// togglers and Poisson flows that previously lived inside the scenario
// and experiment builders. Every generator owns an explicit Seed and
// draws from its own xoshiro stream in a fixed order, so the produced
// stream is a pure function of the config — independent of engine,
// shard count, worker count, and parallelism.

// TogglerFleet is N independent on/off togglers (objects BaseObj …
// BaseObj+N-1), each flipping Attr between 0 and 1 with exponential
// dwells — the sharded scale scenario's fleet workload. Stream
// discipline matches the harness convention: one root RNG from Seed,
// one Fork per object in index order, so the draws per object are
// identical to the former per-sensor world.Toggler installation.
type TogglerFleet struct {
	Seed    uint64
	N       int
	BaseObj int
	Attr    string
	// MeanHigh / MeanLow are the mean dwell times at 1 / 0.
	MeanHigh, MeanLow sim.Duration
}

// Events implements Source.
func (g TogglerFleet) Events(horizon sim.Time) []Event {
	root := stats.NewRNG(g.Seed)
	var out []Event
	for i := 0; i < g.N; i++ {
		r := root.Fork()
		obj := g.BaseObj + i
		cur := 0.0
		now := sim.Time(0) + expGap(r, g.MeanLow)
		for now <= horizon {
			var dwell sim.Duration
			if cur == 0 {
				cur = 1
				dwell = g.MeanHigh
			} else {
				cur = 0
				dwell = g.MeanLow
			}
			out = append(out, Event{At: now, Obj: obj, Attr: g.Attr, Val: cur})
			now += expGap(r, dwell)
		}
	}
	Sort(out)
	return out
}

// HallTraffic is the exhibition-hall visitor flow (paper §5): Poisson
// arrivals, each visitor entering through a uniformly random door
// (incrementing that door's cumulative "x") and leaving through an
// independently chosen door after an exponential stay (incrementing its
// "y"). Doors are objects 0 … Doors-1.
//
// Unlike the old in-scenario closure, departures are derived from
// arrivals one-for-one, so Σx − Σy ≥ 0 holds at every instant by
// construction (the occupancy invariant), and visitors whose stay
// extends past the horizon depart *at* the horizon instead of being
// dropped — which is what makes a recorded trace equal its regeneration
// near the horizon.
type HallTraffic struct {
	Seed  uint64
	Doors int
	// MeanArrival is the mean gap between visitor arrivals; MeanStay the
	// mean dwell inside the hall.
	MeanArrival sim.Duration
	MeanStay    sim.Duration
	// InitialOccupancy seeds the hall with visitors entering during a
	// one-second ramp, so runs start near capacity.
	InitialOccupancy int
}

// Events implements Source.
func (g HallTraffic) Events(horizon sim.Time) []Event {
	r := stats.NewRNG(g.Seed)
	stay := stats.Exponential{MeanV: float64(g.MeanStay)}

	// Arrival instants: the ramp-up seeding plus the Poisson flow, both
	// starting at t=1 as before.
	var arrivals []sim.Time
	for k := 0; k < g.InitialOccupancy; k++ {
		at := 1 + sim.Time(k)*sim.Second/sim.Time(g.InitialOccupancy)
		if at <= horizon {
			arrivals = append(arrivals, at)
		}
	}
	for now := sim.Time(1); ; {
		now += expGap(r, g.MeanArrival)
		if now > horizon {
			break
		}
		arrivals = append(arrivals, now)
	}
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i] < arrivals[j] })

	// Walk arrivals chronologically: draw the visitor's doors and stay at
	// entry time, clamp the departure to the horizon.
	type departure struct {
		at   sim.Time
		door int
	}
	var (
		out  []Event
		deps []departure
		x    = make([]float64, g.Doors)
	)
	for _, at := range arrivals {
		in := r.Intn(g.Doors)
		x[in]++
		out = append(out, Event{At: at, Obj: in, Attr: "x", Val: x[in]})
		d := at + sim.Duration(clampGap(stay.Sample(r)))
		if d > horizon {
			d = horizon
		}
		deps = append(deps, departure{at: d, door: r.Intn(g.Doors)})
	}
	sort.SliceStable(deps, func(i, j int) bool { return deps[i].at < deps[j].at })
	y := make([]float64, g.Doors)
	for _, dep := range deps {
		y[dep.door]++
		out = append(out, Event{At: dep.at, Obj: dep.door, Attr: "y", Val: y[dep.door]})
	}
	Sort(out)
	return out
}

// Admissions is the hospital flow (paper §5): waiting-room doors
// (objects 0 … Doors-1) carry a HallTraffic-style visitor stream on
// attributes "x"/"y", and the ward object (Doors) carries an
// "occupancy" count of disallowed visits — Poisson entries dwelling a
// quarter of MeanStay, clamped to the horizon like every flow here.
type Admissions struct {
	Seed  uint64
	Doors int
	// MeanArrival / MeanStay parameterize the waiting-room flow;
	// WardMeanVisit the gap between ward entries.
	MeanArrival   sim.Duration
	MeanStay      sim.Duration
	WardMeanVisit sim.Duration
}

// Events implements Source.
func (g Admissions) Events(horizon sim.Time) []Event {
	out := HallTraffic{
		Seed: g.Seed, Doors: g.Doors,
		MeanArrival: g.MeanArrival, MeanStay: g.MeanStay,
	}.Events(horizon)

	// Ward visits draw from their own derived stream so the two flows
	// stay independent.
	r := stats.NewRNG(DeriveSeed(g.Seed, 0x11))
	visit := stats.Exponential{MeanV: float64(g.MeanStay / 4)}
	type change struct {
		at sim.Time
		d  float64
	}
	var changes []change
	for now := sim.Time(1); ; {
		now += expGap(r, g.WardMeanVisit)
		if now > horizon {
			break
		}
		changes = append(changes, change{at: now, d: 1})
		leave := now + sim.Duration(clampGap(visit.Sample(r)))
		if leave > horizon {
			leave = horizon
		}
		changes = append(changes, change{at: leave, d: -1})
	}
	sort.SliceStable(changes, func(i, j int) bool { return changes[i].at < changes[j].at })
	occ, ward := 0.0, g.Doors
	for _, c := range changes {
		occ += c.d
		out = append(out, Event{At: c.at, Obj: ward, Attr: "occupancy", Val: occ})
	}
	Sort(out)
	return out
}

// interval is a half-open busy period [start, end) used by the pulse
// generators.
type interval struct{ start, end sim.Time }

// pulsesToEvents merges overlapping pulse intervals and emits the
// rise/fall pairs of the merged cover (clamped to the horizon), so the
// attribute is exactly 1 inside a pulse and 0 outside — overlapping
// pulses extend the busy period instead of double-setting.
func pulsesToEvents(obj int, attr string, pulses []interval, horizon sim.Time) []Event {
	sort.SliceStable(pulses, func(i, j int) bool { return pulses[i].start < pulses[j].start })
	var out []Event
	var cur interval
	flush := func() {
		if cur.end <= cur.start {
			return
		}
		out = append(out, Event{At: cur.start, Obj: obj, Attr: attr, Val: 1})
		end := cur.end
		if end > horizon {
			end = horizon
		}
		if end > cur.start {
			out = append(out, Event{At: end, Obj: obj, Attr: attr, Val: 0})
		}
	}
	for _, p := range pulses {
		if p.start > horizon {
			break
		}
		if p.start <= cur.end && cur.end > cur.start {
			if p.end > cur.end {
				cur.end = p.end
			}
			continue
		}
		flush()
		cur = p
	}
	flush()
	return out
}
