package workload

import (
	"testing"

	"pervasive/internal/sim"
	"pervasive/internal/stats"
	"pervasive/internal/world"
)

// allGenerators enumerates one configured instance of every generator,
// for the cross-cutting determinism/ordering checks.
func allGenerators() map[string]Source {
	return map[string]Source{
		"toggler": TogglerFleet{Seed: 11, N: 16, Attr: "p",
			MeanHigh: 80 * sim.Millisecond, MeanLow: 120 * sim.Millisecond},
		"hall": HallTraffic{Seed: 12, Doors: 4,
			MeanArrival: 20 * sim.Millisecond, MeanStay: 400 * sim.Millisecond,
			InitialOccupancy: 10},
		"admissions": Admissions{Seed: 13, Doors: 3,
			MeanArrival: 30 * sim.Millisecond, MeanStay: 300 * sim.Millisecond,
			WardMeanVisit: 200 * sim.Millisecond},
		"diurnal": Diurnal{Seed: 14, Obj: 2, Attr: "p",
			MeanGap: 15 * sim.Millisecond, Amp: 0.9, Period: 700 * sim.Millisecond,
			Harmonics: 3, Phase: 1.1, Width: 10 * sim.Millisecond},
		"pareto": ParetoBursts{Seed: 15, Obj: 1, Attr: "p",
			MeanBurstGap: 150 * sim.Millisecond, Xm: 2, Alpha: 1.1,
			PulseGap: 5 * sim.Millisecond, Width: 4 * sim.Millisecond},
		"cohort": Cohort{Seed: 16, Objs: []int{0, 1, 2, 3}, Attr: "p",
			MeanGap: 60 * sim.Millisecond, Width: 25 * sim.Millisecond,
			Rho: 0.7, Lag: 10 * sim.Millisecond, Jitter: 5 * sim.Millisecond},
		"walk": MobilityWalk{Seed: 17, Obj: 5, W: 50, H: 30, Speed: 2,
			Tick: 40 * sim.Millisecond},
	}
}

func TestGeneratorsDeterministicAndCanonical(t *testing.T) {
	const horizon = 2 * sim.Second
	for name, g := range allGenerators() {
		a, b := g.Events(horizon), g.Events(horizon)
		if len(a) == 0 {
			t.Errorf("%s: produced no events", name)
			continue
		}
		if Digest(a) != Digest(b) {
			t.Errorf("%s: two materializations differ", name)
		}
		for i, ev := range a {
			if ev.At > horizon {
				t.Errorf("%s: event %d past horizon: %+v", name, i, ev)
				break
			}
			if i > 0 && less(ev, a[i-1]) {
				t.Errorf("%s: events %d/%d out of canonical order", name, i-1, i)
				break
			}
		}
		// A longer horizon extends the stream without rewriting the prefix
		// (prefix property — what makes -horizon sweeps comparable).
		long := g.Events(2 * horizon)
		if len(long) < len(a) {
			t.Errorf("%s: longer horizon produced fewer events", name)
			continue
		}
		clipped := make([]Event, 0, len(a))
		for _, ev := range long {
			if ev.At <= horizon {
				clipped = append(clipped, ev)
			}
		}
		// Horizon-clamped falls/departures may move, so compare only the
		// strictly-interior prefix.
		interior := func(evs []Event) []Event {
			var out []Event
			for _, ev := range evs {
				if ev.At < horizon {
					out = append(out, ev)
				}
			}
			return out
		}
		ia, ic := interior(a), interior(clipped)
		if len(ia) > 0 && len(ic) >= len(ia) && Digest(ia) != Digest(ic[:len(ia)]) {
			t.Errorf("%s: horizon extension rewrote the interior prefix", name)
		}
	}
}

func TestTogglerFleetMatchesWorldToggler(t *testing.T) {
	// The fleet generator must reproduce the exact draw sequence of the
	// former per-sensor world.Toggler installation: one root fork per
	// object in index order, then InstallWith's alternation.
	const (
		n       = 8
		seed    = 99
		horizon = 3 * sim.Second
		hi      = 300 * sim.Millisecond
		lo      = 500 * sim.Millisecond
	)
	eng := sim.NewEngine(seed)
	w := world.New(eng)
	root := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		obj := w.AddObject("o", nil)
		world.Toggler{Obj: obj, Attr: "p", MeanHigh: hi, MeanLow: lo}.
			InstallWith(w, root.Fork(), horizon)
	}
	eng.Run(horizon)

	want := FromLog(w.Log())
	Sort(want)
	got := TogglerFleet{Seed: seed, N: n, Attr: "p", MeanHigh: hi, MeanLow: lo}.Events(horizon)
	if Digest(got) != Digest(want) {
		t.Fatalf("fleet stream differs from world.Toggler reference: %d vs %d events",
			len(got), len(want))
	}
}

func TestHallTrafficOccupancyInvariant(t *testing.T) {
	const horizon = 5 * sim.Second
	g := HallTraffic{Seed: 3, Doors: 3, MeanArrival: 10 * sim.Millisecond,
		MeanStay: 200 * sim.Millisecond, InitialOccupancy: 7}
	evs := g.Events(horizon)
	var entered, left float64
	i := 0
	for i < len(evs) {
		at := evs[i].At
		for i < len(evs) && evs[i].At == at {
			switch evs[i].Attr {
			case "x":
				entered++
			case "y":
				left++
			default:
				t.Fatalf("unexpected attr %q", evs[i].Attr)
			}
			i++
		}
		if left > entered {
			t.Fatalf("occupancy negative at t=%d: entered=%v left=%v", at, entered, left)
		}
	}
	if entered == 0 {
		t.Fatal("no arrivals")
	}
	// Horizon clamping: every visitor departs by the horizon, so the hall
	// is exactly empty at the end — the balance the old in-scenario flow
	// (which dropped past-horizon departures) could not maintain.
	if entered != left {
		t.Fatalf("unbalanced at horizon: entered=%v left=%v", entered, left)
	}
}

func TestInstallPumpEquivalence(t *testing.T) {
	// Pumping a materialized stream through a world must reproduce the
	// stream exactly in the ground-truth log — generation and replay
	// share this one path.
	const horizon = 2 * sim.Second
	g := HallTraffic{Seed: 5, Doors: 4, MeanArrival: 15 * sim.Millisecond,
		MeanStay: 300 * sim.Millisecond}
	evs := g.Events(horizon)

	eng := sim.NewEngine(1)
	w := world.New(eng)
	for i := 0; i < 4; i++ {
		w.AddObject("door", nil)
	}
	rec := NewRecorder(w)
	Install(eng, w, evs)
	eng.Run(horizon)

	if Digest(rec.Events()) != Digest(evs) {
		t.Fatalf("recorded stream differs from pumped stream: %d vs %d events",
			len(rec.Events()), len(evs))
	}
	if LogDigest(w.Log()) != Digest(evs) {
		t.Fatal("world log differs from pumped stream")
	}
}

func TestCombineMergesCanonically(t *testing.T) {
	const horizon = sim.Second
	a := TogglerFleet{Seed: 1, N: 2, Attr: "p",
		MeanHigh: 40 * sim.Millisecond, MeanLow: 60 * sim.Millisecond}
	b := TogglerFleet{Seed: 2, N: 2, BaseObj: 2, Attr: "p",
		MeanHigh: 40 * sim.Millisecond, MeanLow: 60 * sim.Millisecond}
	evs := Combine(a, b).Events(horizon)
	if len(evs) != len(a.Events(horizon))+len(b.Events(horizon)) {
		t.Fatal("combine lost events")
	}
	for i := 1; i < len(evs); i++ {
		if less(evs[i], evs[i-1]) {
			t.Fatalf("combine output out of order at %d", i)
		}
	}
}
