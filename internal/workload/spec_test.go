package workload

import (
	"strings"
	"testing"

	"pervasive/internal/sim"
)

const exampleSpec = `
# composed workload over 8 objects
seed 42
horizon 2s
objects 8
predicate sum(p) >= 3

generator toggler objs=0-3 attr=p meanhigh=80ms meanlow=120ms
generator diurnal obj=4 attr=p meangap=15ms amp=0.9 period=700ms harmonics=2 phase=0.3 width=10ms
generator pareto obj=5 attr=p burstgap=150ms xm=2 alpha=1.2 pulsegap=5ms width=4ms
generator cohort objs=6-7 attr=p meangap=60ms width=25ms rho=0.8 lag=10ms jitter=5ms
`

func TestParseSpec(t *testing.T) {
	sp, err := ParseSpec(exampleSpec)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if sp.Seed != 42 || sp.Horizon != 2*sim.Second || sp.Objects != 8 {
		t.Fatalf("header mismatch: %+v", sp)
	}
	if sp.Predicate != "sum(p) >= 3" {
		t.Fatalf("predicate: %q", sp.Predicate)
	}
	if len(sp.Gens) != 4 {
		t.Fatalf("generators: got %d want 4", len(sp.Gens))
	}
	if got := sp.MaxObject(); got != 7 {
		t.Fatalf("MaxObject: got %d want 7", got)
	}
	src, err := sp.Source()
	if err != nil {
		t.Fatalf("source: %v", err)
	}
	evs := src.Events(sp.Horizon)
	if len(evs) == 0 {
		t.Fatal("spec workload produced no events")
	}
	for i := 1; i < len(evs); i++ {
		if less(evs[i], evs[i-1]) {
			t.Fatalf("spec workload out of canonical order at %d", i)
		}
	}
	// Determinism: a reparse materializes the identical stream.
	sp2, _ := ParseSpec(exampleSpec)
	src2, _ := sp2.Source()
	if Digest(src2.Events(sp2.Horizon)) != Digest(evs) {
		t.Fatal("spec workload is not deterministic")
	}
	// Changing the spec seed changes every derived generator stream.
	sp3, _ := ParseSpec(strings.Replace(exampleSpec, "seed 42", "seed 43", 1))
	src3, _ := sp3.Source()
	if Digest(src3.Events(sp3.Horizon)) == Digest(evs) {
		t.Fatal("spec seed does not propagate to generators")
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := map[string]string{
		"no horizon":        "seed 1\ngenerator toggler objs=0-3\n",
		"no generators":     "horizon 1s\n",
		"unknown directive": "horizon 1s\nfoo bar\n",
		"unknown generator": "horizon 1s\ngenerator nosuch obj=0\n",
		"unknown argument":  "horizon 1s\ngenerator toggler objs=0-3 bogus=1\n",
		"bad duration":      "horizon 1s\ngenerator toggler objs=0-3 meanhigh=fast\n",
		"bad range":         "horizon 1s\ngenerator toggler objs=3-0\n",
		"bare argument":     "horizon 1s\ngenerator toggler objs\n",
	}
	for name, src := range cases {
		sp, err := ParseSpec(src)
		if err == nil {
			_, err = sp.Source()
		}
		if err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSpecGeneratorSeedOverride(t *testing.T) {
	base := "horizon 1s\ngenerator toggler objs=0-1 seed=7\n"
	spA, _ := ParseSpec("seed 1\n" + base)
	spB, _ := ParseSpec("seed 2\n" + base)
	sa, err := spA.Source()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := spB.Source()
	if err != nil {
		t.Fatal(err)
	}
	if Digest(sa.Events(sim.Second)) != Digest(sb.Events(sim.Second)) {
		t.Fatal("explicit generator seed should override the spec seed")
	}
}
