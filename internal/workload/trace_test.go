package workload

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"pervasive/internal/sim"
)

func sampleEvents() []Event {
	evs := []Event{
		{At: 0, Obj: 0, Attr: "p", Val: 1},
		{At: 5, Obj: 3, Attr: "p", Val: 1},
		{At: 5, Obj: 3, Attr: "q", Val: -2},
		{At: 5, Obj: 7, Attr: "p", Val: 0},
		{At: 1000, Obj: 0, Attr: "p", Val: 0},
		{At: 1000, Obj: 1, Attr: "x", Val: 3.25},       // non-integral: raw path
		{At: 2500, Obj: 1, Attr: "x", Val: 7},          // integral after raw: chain reset
		{At: 2500, Obj: 1, Attr: "y", Val: 1e300},      // out of ±2^52: raw path
		{At: 9000, Obj: 2, Attr: "p", Val: 1 << 53},    // beyond delta window
		{At: 9001, Obj: 2, Attr: "p", Val: math.Pi},    // raw
		{At: 9002, Obj: 2, Attr: "p", Val: -(1 << 40)}, // large negative delta
	}
	Sort(evs)
	return evs
}

func TestTraceRoundTrip(t *testing.T) {
	tr := &Trace{
		Horizon: 10 * sim.Second,
		Meta:    map[string]string{"scenario": "hall", "seed": "42"},
		Events:  sampleEvents(),
	}
	enc := tr.Encode()
	if !IsTraceHeader(enc) {
		t.Fatalf("encoded trace does not start with %q", TraceMagic)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.Horizon != tr.Horizon {
		t.Fatalf("horizon: got %d want %d", dec.Horizon, tr.Horizon)
	}
	if len(dec.Meta) != 2 || dec.Meta["scenario"] != "hall" || dec.Meta["seed"] != "42" {
		t.Fatalf("meta mismatch: %v", dec.Meta)
	}
	if len(dec.Events) != len(tr.Events) {
		t.Fatalf("event count: got %d want %d", len(dec.Events), len(tr.Events))
	}
	for i := range dec.Events {
		if dec.Events[i] != tr.Events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, dec.Events[i], tr.Events[i])
		}
	}
	if Digest(dec.Events) != Digest(tr.Events) {
		t.Fatal("digest changed across round-trip")
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	tr := &Trace{
		Horizon: 10 * sim.Second,
		Meta:    map[string]string{"scenario": "hall"},
		Events:  sampleEvents(),
	}
	path := filepath.Join(t.TempDir(), "trace.bin")
	if err := tr.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	dec, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if Digest(dec.Events) != Digest(tr.Events) {
		t.Fatal("digest changed across file round-trip")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Fatal("ReadFile of a missing path succeeded")
	}
}

func TestTraceEncodeDeterministic(t *testing.T) {
	tr := &Trace{Horizon: sim.Second, Meta: map[string]string{"b": "2", "a": "1"}, Events: sampleEvents()}
	a, b := tr.Encode(), tr.Encode()
	if string(a) != string(b) {
		t.Fatal("Encode is not deterministic")
	}
}

func TestTraceRejectsBadInput(t *testing.T) {
	if _, err := Decode([]byte("not a trace")); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: got %v", err)
	}
	tr := &Trace{Horizon: sim.Second, Events: sampleEvents()}
	enc := tr.Encode()
	// Future version must be rejected, not misparsed.
	bad := append([]byte{}, enc...)
	bad[4] = 99 // version byte follows the 4-byte magic
	if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: got %v", err)
	}
	// Truncations at every prefix must error, never panic.
	for n := 0; n < len(enc); n++ {
		if _, err := Decode(enc[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
	// Trailing garbage is an error too.
	if _, err := Decode(append(append([]byte{}, enc...), 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestTraceCompactForIntegerStreams(t *testing.T) {
	// A toggler fleet is the integral fast path: the encoded size should
	// be a few bytes per event, far below the 32-byte struct.
	evs := TogglerFleet{Seed: 7, N: 64, Attr: "p",
		MeanHigh: 50 * sim.Millisecond, MeanLow: 80 * sim.Millisecond,
	}.Events(2 * sim.Second)
	if len(evs) < 1000 {
		t.Fatalf("workload too small for a size check: %d events", len(evs))
	}
	enc := (&Trace{Horizon: 2 * sim.Second, Events: evs}).Encode()
	if perEv := float64(len(enc)) / float64(len(evs)); perEv > 8 {
		t.Fatalf("encoding too large: %.1f bytes/event over %d events", perEv, len(evs))
	}
}

func TestEventSourceClipsToHorizon(t *testing.T) {
	evs := sampleEvents()
	src := EventSource(evs)
	got := src.Events(1000)
	for _, ev := range got {
		if ev.At > 1000 {
			t.Fatalf("event past horizon: %+v", ev)
		}
	}
	if len(got) != 6 {
		t.Fatalf("clip count: got %d want 6", len(got))
	}
	if n := len(src.Events(sim.Never)); n != len(evs) {
		t.Fatalf("unclipped count: got %d want %d", n, len(evs))
	}
}
