package clocksync

import (
	"testing"

	"pervasive/internal/network"
	"pervasive/internal/sim"
)

// base is a realistic sensor-network configuration: offsets up to 100 ms,
// 50 ppm drift, 20 µs receive jitter, 1–3 ms link delays.
func base(seed uint64, n int) Config {
	return Config{
		N:         n,
		Seed:      seed,
		MaxOffset: 100 * sim.Millisecond,
		DriftPPM:  50,
		JitterStd: 20 * sim.Microsecond,
		MinDelay:  1 * sim.Millisecond,
		MaxDelay:  3 * sim.Millisecond,
		Rounds:    8,
	}
}

func TestUnsyncedEpsIsOffsetScale(t *testing.T) {
	res := Unsynced(base(1, 16))
	if res.Eps < 10*sim.Millisecond {
		t.Fatalf("unsynced ε = %v; with 100ms offsets it should be tens of ms", res.Eps)
	}
	if res.Messages != 0 {
		t.Fatal("baseline should cost nothing")
	}
}

func TestRBSAchievesJitterScaleEps(t *testing.T) {
	res := RBS(base(2, 16))
	// RBS cancels propagation; residual should be far below the raw
	// offsets and near jitter scale (allow a generous 2 ms: the sender
	// fold-in uses a two-way exchange whose asymmetry can dominate).
	if res.Eps > 2*sim.Millisecond {
		t.Fatalf("RBS ε = %v, too large", res.Eps)
	}
	if res.Messages == 0 || res.Bytes == 0 {
		t.Fatal("RBS must cost messages — the service is not free")
	}
}

func TestTPSNImprovesOnUnsynced(t *testing.T) {
	cfg := base(3, 16)
	syncRes := TPSN(cfg)
	rawRes := Unsynced(cfg)
	if syncRes.Eps >= rawRes.Eps/5 {
		t.Fatalf("TPSN ε=%v raw=%v: should improve at least 5×", syncRes.Eps, rawRes.Eps)
	}
	if syncRes.Messages == 0 {
		t.Fatal("TPSN must cost messages")
	}
}

func TestRBSBeatsTPSNOnAverage(t *testing.T) {
	// The shape the survey [35] reports: RBS's jitter-limited error is
	// below TPSN's asymmetry-limited error. Compare across seeds.
	var rbsSum, tpsnSum float64
	for seed := uint64(0); seed < 10; seed++ {
		rbsSum += RBS(base(seed, 12)).MeanAbsErr
		tpsnSum += TPSN(base(seed, 12)).MeanAbsErr
	}
	if rbsSum >= tpsnSum {
		t.Fatalf("mean ε: RBS %.1f ≥ TPSN %.1f", rbsSum/10, tpsnSum/10)
	}
}

func TestOnDemandSyncsAtEvent(t *testing.T) {
	cfg := base(4, 10)
	res := OnDemand(cfg)
	raw := Unsynced(cfg)
	if res.Eps >= raw.Eps/5 {
		t.Fatalf("on-demand ε=%v raw=%v", res.Eps, raw.Eps)
	}
	if res.Messages != int64(2*(cfg.N-1)*cfg.Rounds) {
		t.Fatalf("on-demand messages %d", res.Messages)
	}
}

func TestDriftReopensEps(t *testing.T) {
	// One validity window (60 s) after sync, ±50 ppm drift opens the
	// bound by up to ~6 ms; EpsAfter must exceed Eps.
	res := TPSN(base(5, 12))
	if res.EpsAfter <= res.Eps {
		t.Fatalf("drift did not reopen ε: after=%v now=%v", res.EpsAfter, res.Eps)
	}
	if res.EpsAfter < sim.Millisecond {
		t.Fatalf("60s of ±50ppm drift should exceed 1ms: %v", res.EpsAfter)
	}
}

func TestTPSNMultiHopWorseThanSingleHop(t *testing.T) {
	// Error compounds with tree depth: a ring (deep BFS tree) should not
	// beat a full mesh (depth 1). Compare means across seeds.
	var meshSum, ringSum float64
	for seed := uint64(0); seed < 10; seed++ {
		mesh := base(seed, 12)
		ring := base(seed, 12)
		ring.Topo = network.Ring{Nodes: 12}
		meshSum += TPSN(mesh).MeanAbsErr
		ringSum += TPSN(ring).MeanAbsErr
	}
	if ringSum < meshSum {
		t.Fatalf("deep tree (%.1f) beat flat tree (%.1f)", ringSum/10, meshSum/10)
	}
}

func TestConfigDefaults(t *testing.T) {
	res := Unsynced(Config{Seed: 9})
	if res.Protocol != "unsynced" {
		t.Fatal("defaults broken")
	}
}

func TestDeterminism(t *testing.T) {
	a := RBS(base(7, 10))
	b := RBS(base(7, 10))
	if a != b {
		t.Fatalf("RBS not deterministic: %+v vs %+v", a, b)
	}
	c := TPSN(base(7, 10))
	d := TPSN(base(7, 10))
	if c != d {
		t.Fatal("TPSN not deterministic")
	}
}

func TestRoundsImproveTPSN(t *testing.T) {
	// Averaging more handshakes should not hurt on average.
	var one, many float64
	for seed := uint64(0); seed < 12; seed++ {
		cfg1 := base(seed, 8)
		cfg1.Rounds = 1
		cfgN := base(seed, 8)
		cfgN.Rounds = 16
		one += TPSN(cfg1).MeanAbsErr
		many += TPSN(cfgN).MeanAbsErr
	}
	if many > one {
		t.Fatalf("16 rounds (%.1f) worse than 1 round (%.1f)", many/12, one/12)
	}
}
