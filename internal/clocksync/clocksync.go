// Package clocksync simulates the physical clock-synchronization
// protocols the paper cites as implementations of the single time axis
// (Section 3.2.1.a(ii) and the survey [35]): reference-broadcast
// synchronization (RBS), sender–receiver spanning-tree synchronization
// (TPSN), and the on-demand pre-event synchronization of Baumgartner et
// al. [3]. Each protocol runs at the message level over a fleet of
// drifting hardware clocks and reports the achieved skew bound ε and its
// message/byte cost — the quantities behind the paper's argument that the
// synchronized-clock service "is not for free" and still leaves a residual
// ε that causes detection races.
package clocksync

import (
	"math"

	"pervasive/internal/clock"
	"pervasive/internal/network"
	"pervasive/internal/obs"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

// Config parameterizes a synchronization run.
type Config struct {
	N         int
	Seed      uint64
	MaxOffset sim.Duration // initial offsets uniform in [0, MaxOffset)
	DriftPPM  float64      // per-node drift uniform in ±DriftPPM
	// JitterStd is the standard deviation of the nondeterministic
	// receive-path latency (interrupt + decoding), the error floor of RBS.
	JitterStd sim.Duration
	// MinDelay/MaxDelay bound the link propagation+MAC delay; the
	// *asymmetry* between the two directions of a handshake is TPSN's
	// error floor.
	MinDelay, MaxDelay sim.Duration
	// Rounds is the number of beacons (RBS) or handshake rounds (TPSN /
	// on-demand) averaged per estimate.
	Rounds int
	// Topo is the overlay; nil means full mesh. TPSN builds its spanning
	// tree over it.
	Topo network.Topology
	// Obs, if non-nil, receives per-protocol metrics: handshake rounds
	// and message/byte cost as counters, the achieved skew bound ε and
	// mean absolute skew (µs) as histograms, and one span per protocol
	// run in virtual time. Nil disables instrumentation.
	Obs *obs.Registry
}

func (c *Config) fill() {
	if c.N <= 0 {
		c.N = 8
	}
	if c.Rounds <= 0 {
		c.Rounds = 1
	}
	if c.MaxDelay < c.MinDelay {
		c.MaxDelay = c.MinDelay
	}
	if c.Topo == nil {
		c.Topo = network.FullMesh{Nodes: c.N}
	}
}

// Result reports a protocol's outcome.
type Result struct {
	Protocol string
	// Eps is the maximum pairwise skew of the corrected clocks right
	// after synchronization — the ε of the paper's accuracy analysis.
	Eps sim.Duration
	// MeanAbsErr is the mean absolute pairwise skew (µs).
	MeanAbsErr float64
	// EpsAfter is the maximum pairwise skew one validity window
	// (60 true seconds) later, showing drift re-opening the bound.
	EpsAfter sim.Duration
	// Messages and Bytes are the protocol's traffic cost.
	Messages int64
	Bytes    int64
}

// run state shared by the protocols.
type fleet struct {
	cfg Config
	rng *stats.RNG
	hw  []clock.Drifting
	// est[i] is node i's estimated offset of its clock relative to node 0's
	// clock frame; corrected reading = hw_i(t) - est[i].
	est []float64
}

func newFleet(cfg Config) *fleet {
	cfg.fill()
	r := stats.NewRNG(cfg.Seed)
	return &fleet{
		cfg: cfg,
		rng: r,
		hw:  clock.NewDriftingFleet(r, cfg.N, cfg.MaxOffset, cfg.DriftPPM),
		est: make([]float64, cfg.N),
	}
}

// linkDelay samples one direction of a link traversal including jitter.
func (f *fleet) linkDelay() float64 {
	d := float64(f.cfg.MinDelay)
	if f.cfg.MaxDelay > f.cfg.MinDelay {
		d += f.rng.Float64() * float64(f.cfg.MaxDelay-f.cfg.MinDelay)
	}
	j := stats.Normal{Mu: 0, Sigma: float64(f.cfg.JitterStd)}.Sample(f.rng)
	if j < 0 {
		j = -j
	}
	return d + j
}

// score computes skew statistics of the corrected clocks at true time at.
func (f *fleet) score(protocol string, at sim.Time, messages, bytes int64) Result {
	eps := f.maxSkew(at)
	var sum float64
	var pairs int
	for i := 0; i < f.cfg.N; i++ {
		for j := i + 1; j < f.cfg.N; j++ {
			sum += math.Abs(f.corrected(i, at) - f.corrected(j, at))
			pairs++
		}
	}
	mean := 0.0
	if pairs > 0 {
		mean = sum / float64(pairs)
	}
	res := Result{
		Protocol:   protocol,
		Eps:        eps,
		MeanAbsErr: mean,
		EpsAfter:   f.maxSkew(at + 60*sim.Second),
		Messages:   messages,
		Bytes:      bytes,
	}
	f.record(res, at)
	return res
}

// record publishes a protocol run's outcome to the obs registry. This is
// a cold path (once per protocol run), so registry lookups by name are
// fine here.
func (f *fleet) record(res Result, at sim.Time) {
	r := f.cfg.Obs
	if r == nil {
		return
	}
	r.Counter("clocksync.rounds").Add(int64(f.cfg.Rounds))
	r.Counter("clocksync.messages").Add(res.Messages)
	r.Counter("clocksync.bytes").Add(res.Bytes)
	r.Histogram("clocksync.eps_us", obs.DurationBuckets).Observe(float64(res.Eps))
	r.Histogram("clocksync.skew_us", obs.DurationBuckets).Observe(res.MeanAbsErr)
	r.StartSpanAt("clocksync."+res.Protocol, 0).EndAt(at)
}

func (f *fleet) corrected(i int, at sim.Time) float64 {
	return float64(f.hw[i].Read(at)) - f.est[i]
}

func (f *fleet) maxSkew(at sim.Time) sim.Duration {
	var worst float64
	for i := 0; i < f.cfg.N; i++ {
		for j := i + 1; j < f.cfg.N; j++ {
			d := math.Abs(f.corrected(i, at) - f.corrected(j, at))
			if d > worst {
				worst = d
			}
		}
	}
	return sim.Duration(worst + 0.5)
}

// Unsynced is the baseline: no protocol runs, corrections stay zero, and ε
// is simply the spread of the raw hardware clocks.
func Unsynced(cfg Config) Result {
	f := newFleet(cfg)
	return f.score("unsynced", sim.Second, 0, 0)
}

// RBS runs reference-broadcast synchronization: node 0 emits Rounds
// beacons; every other node records each beacon's local arrival time;
// receivers exchange recordings and estimate pairwise offsets by
// averaging. Because all receivers hear the *same* physical broadcast,
// the sender-side delay cancels and only receive-path jitter remains —
// RBS's classic advantage.
func RBS(cfg Config) Result {
	f := newFleet(cfg)
	n := f.cfg.N
	rounds := f.cfg.Rounds

	// recordings[b][i]: node i's local time for beacon b (node 0 is the
	// reference transmitter and does not record).
	recordings := make([][]float64, rounds)
	var when sim.Time
	for b := 0; b < rounds; b++ {
		when = sim.Time(b+1) * 100 * sim.Millisecond
		// One shared propagation component per beacon (broadcast medium),
		// plus independent receive jitter per node.
		shared := float64(f.cfg.MinDelay)
		recordings[b] = make([]float64, n)
		for i := 1; i < n; i++ {
			j := stats.Normal{Mu: 0, Sigma: float64(f.cfg.JitterStd)}.Sample(f.rng)
			if j < 0 {
				j = -j
			}
			arrive := when + sim.Time(shared+j+0.5)
			recordings[b][i] = float64(f.hw[i].Read(arrive))
		}
	}
	// Each receiver estimates its offset relative to receiver 1 (the
	// reference frame must be a receiver, since node 0 never records).
	for i := 2; i < n; i++ {
		var acc float64
		for b := 0; b < rounds; b++ {
			acc += recordings[b][i] - recordings[b][1]
		}
		f.est[i] = acc / float64(rounds)
	}
	// Node 1 defines the frame (est[1] = 0); node 0 never heard its own
	// beacons, so fold it in by estimating it against node 1 with
	// TPSN-style exchanges (RBS deployments do the same for the sender).
	f.est[0] = f.twoWayEstimate(0, 1, when+10*sim.Millisecond, rounds) + f.est[1]

	// Cost: each beacon is one broadcast transmission; each receiver then
	// broadcasts its recording once per beacon; plus the sender handshake.
	messages := int64(rounds) * int64(n) // 1 beacon + (n-1) recording shares
	messages += int64(2 * rounds)
	bytes := messages * 16
	return f.score("RBS", when+20*sim.Millisecond, messages, bytes)
}

// twoWayEstimate performs `rounds` symmetric two-way handshakes between a
// and b and returns the estimated offset of a's clock relative to b's
// clock (positive when a runs ahead). Callers add b's own correction to
// chain frames.
func (f *fleet) twoWayEstimate(a, b int, at sim.Time, rounds int) float64 {
	var acc float64
	for r := 0; r < rounds; r++ {
		t0 := at + sim.Time(r)*10*sim.Millisecond
		d1 := f.linkDelay() // a -> b
		d2 := f.linkDelay() // b -> a
		t1 := float64(f.hw[a].Read(t0))
		t2 := float64(f.hw[b].Read(t0 + sim.Time(d1+0.5)))
		t3 := float64(f.hw[b].Read(t0 + sim.Time(d1+0.5) + sim.Millisecond))
		t4 := float64(f.hw[a].Read(t0 + sim.Time(d1+0.5) + sim.Millisecond + sim.Time(d2+0.5)))
		// offset of a relative to b assuming symmetric delays
		acc += ((t1 - t2) + (t4 - t3)) / 2
	}
	return acc / float64(rounds)
}

// TPSN runs sender–receiver synchronization over a BFS spanning tree
// rooted at node 0: level by level, each child estimates its offset to its
// parent with two-way handshakes and accumulates the parent's own
// correction. Its error floor is the delay asymmetry of each handshake,
// compounded along the tree depth.
func TPSN(cfg Config) Result {
	f := newFleet(cfg)
	parent := network.BFSTree(f.cfg.Topo, 0)

	// Process nodes in BFS order so parents are corrected first.
	order := bfsOrder(parent)
	var messages int64
	at := 100 * sim.Millisecond
	for _, i := range order {
		if i == 0 || parent[i] < 0 {
			continue
		}
		f.est[i] = f.twoWayEstimate(i, parent[i], at, f.cfg.Rounds) + f.est[parent[i]]
		messages += int64(2 * f.cfg.Rounds)
		at += 5 * sim.Millisecond
	}
	return f.score("TPSN", at, messages, messages*12)
}

// OnDemand models Baumgartner-style pre-event synchronization [3]: the
// network stays unsynchronized until shortly before a common event, when
// an initiator performs one star-shaped round of two-way handshakes. ε is
// evaluated right at the event; there is no standing synchronization cost.
func OnDemand(cfg Config) Result {
	f := newFleet(cfg)
	n := f.cfg.N
	eventAt := 5 * sim.Second
	syncAt := eventAt - 50*sim.Millisecond
	var messages int64
	for i := 1; i < n; i++ {
		f.est[i] = f.twoWayEstimate(i, 0, syncAt, f.cfg.Rounds)
		messages += int64(2 * f.cfg.Rounds)
	}
	res := f.score("on-demand", eventAt, messages, messages*12)
	return res
}

// bfsOrder returns node indices ordered by tree depth (root first).
func bfsOrder(parent []int) []int {
	n := len(parent)
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	var order []int
	// root(s): parent[i] == i
	for i, p := range parent {
		if p == i {
			depth[i] = 0
			order = append(order, i)
		}
	}
	for k := 0; k < len(order); k++ {
		u := order[k]
		for v, p := range parent {
			if depth[v] == -1 && p == u {
				depth[v] = depth[u] + 1
				order = append(order, v)
			}
		}
	}
	return order
}
