package live

import (
	"time"

	"pervasive/internal/sim"
	"pervasive/internal/workload"
)

// Feed parameterizes a workload replay through a live network.
type Feed struct {
	// Speed compresses virtual time into wall time: a Speed of 100 plays
	// 1 s of trace in 10 ms. <= 0 means real time.
	Speed float64
	// Bind maps a workload event's (object, attr) to the sensing node and
	// its variable name. Nil is the identity mapping (node = object,
	// variable = attr) — the convention of the classic scenarios, where
	// sensor i watches object i.
	Bind func(obj int, attr string) (proc int, varName string)
}

// FeedEvents replays a materialized workload (a decoded trace or a
// generator's output, in canonical order) through the running network:
// each event becomes a Sense call on its bound node, paced by the
// events' virtual times scaled by Speed. It returns the bound stream
// actually sensed — compare workload.ValuesDigest of the return value
// against the network's TruthLog to verify the replay.
//
// This is the live leg of cross-engine record/replay, and it carries
// the honest guarantee: the world plane (the truth log's values and
// order) reproduces exactly; wall-clock timestamps, message delays and
// therefore detection output do not — the live engine is documented as
// not bit-reproducible, which is precisely what differential testing
// against the DES replay of the same trace measures.
func (nw *Network) FeedEvents(evs []workload.Event, f Feed) []workload.Event {
	speed := f.Speed
	if speed <= 0 {
		speed = 1
	}
	bind := f.Bind
	if bind == nil {
		bind = func(obj int, attr string) (int, string) { return obj, attr }
	}
	start := time.Now() //lint:allow determinism(replay pacing is wall-clock by design — the live engine's documented non-reproducible leg; value-stream identity is checked instead)
	bound := make([]workload.Event, 0, len(evs))
	for _, ev := range evs {
		target := start.Add(time.Duration(float64(ev.At)/speed) * time.Microsecond)
		if d := time.Until(target); d > 0 {
			time.Sleep(d)
		}
		proc, varName := bind(ev.Obj, ev.Attr)
		nw.Node(proc).Sense(varName, ev.Val)
		bound = append(bound, workload.Event{At: ev.At, Obj: proc, Attr: varName, Val: ev.Val})
	}
	return bound
}

// TruthLog returns a snapshot of the ground-truth log so far, projected
// onto workload events (object = node, attr = variable, At = wall µs
// since Start).
func (nw *Network) TruthLog() []workload.Event {
	nw.truthMu.Lock()
	defer nw.truthMu.Unlock()
	out := make([]workload.Event, len(nw.truth))
	for i, ev := range nw.truth {
		out[i] = workload.Event{At: sim.Time(ev.At), Obj: ev.Object, Attr: ev.Attr, Val: ev.New}
	}
	return out
}
