package live

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"pervasive/internal/core"
	"pervasive/internal/flight"
	"pervasive/internal/obs"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
)

// Live tests use generous margins: wall-clock scheduling is inherently
// jittery. Workloads hold values for tens of milliseconds while delays are
// sub-millisecond.

func TestLiveVectorDetectsConjunction(t *testing.T) {
	nw := Start(Config{
		N: 2, Seed: 1, Kind: core.VectorStrobe,
		Delay: sim.DeltaBounded{Min: 100, Max: 500}, // 0.1–0.5 ms
		Pred:  predicate.MustParse("x@0 == 1 && x@1 == 1"),
	})
	nw.Node(0).Sense("x", 1)
	time.Sleep(10 * time.Millisecond)
	nw.Node(1).Sense("x", 1)
	time.Sleep(30 * time.Millisecond)
	nw.Node(0).Sense("x", 0)
	res := nw.Stop(20*time.Millisecond, 5*sim.Millisecond)

	if len(res.Truth) != 1 {
		t.Fatalf("truth %v", res.Truth)
	}
	if res.Confusion.TP != 1 || res.Confusion.FN != 0 {
		t.Fatalf("confusion %+v occ=%v", res.Confusion, res.Occurrences)
	}
}

func TestLiveEveryOccurrence(t *testing.T) {
	nw := Start(Config{
		N: 1, Seed: 2, Kind: core.VectorStrobe,
		Delay: sim.Synchronous{},
		Pred:  predicate.MustParse("x@0 == 1"),
	})
	for k := 0; k < 3; k++ {
		nw.Node(0).Sense("x", 1)
		time.Sleep(15 * time.Millisecond)
		nw.Node(0).Sense("x", 0)
		time.Sleep(15 * time.Millisecond)
	}
	res := nw.Stop(20*time.Millisecond, 5*sim.Millisecond)
	if len(res.Truth) != 3 {
		t.Fatalf("truth %v", res.Truth)
	}
	if res.Confusion.TP != 3 {
		t.Fatalf("every-occurrence failed: %+v", res.Confusion)
	}
}

func TestLiveScalarWorks(t *testing.T) {
	nw := Start(Config{
		N: 2, Seed: 3, Kind: core.ScalarStrobe,
		Delay: sim.DeltaBounded{Min: 50, Max: 200},
		Pred:  predicate.MustParse("x@0 == 1 && x@1 == 1"),
	})
	nw.Node(0).Sense("x", 1)
	nw.Node(1).Sense("x", 1)
	time.Sleep(40 * time.Millisecond)
	nw.Node(0).Sense("x", 0)
	res := nw.Stop(20*time.Millisecond, 10*sim.Millisecond)
	if res.Confusion.TP != 1 {
		t.Fatalf("scalar live detection failed: %+v occ=%v", res.Confusion, res.Occurrences)
	}
}

func TestLiveMessageCounting(t *testing.T) {
	nw := Start(Config{
		N: 3, Seed: 4, Kind: core.VectorStrobe,
		Delay: sim.Synchronous{},
		Pred:  predicate.MustParse("x@0 == 1"),
	})
	nw.Node(0).Sense("x", 1)
	res := nw.Stop(20*time.Millisecond, sim.Millisecond)
	// One sense event → broadcast to 2 peers + checker = 3 transmissions.
	if res.Sent != 3 {
		t.Fatalf("sent %d want 3", res.Sent)
	}
	if res.Bytes == 0 {
		t.Fatal("bytes not counted")
	}
}

func TestLiveStopIdempotentAndSafeAfter(t *testing.T) {
	nw := Start(Config{
		N: 2, Seed: 5, Kind: core.VectorStrobe,
		Delay: sim.Synchronous{},
		Pred:  predicate.MustParse("x@0 == 1"),
	})
	nw.Stop(time.Millisecond, sim.Millisecond)
	// Sense after stop must not deadlock or panic.
	done := make(chan struct{})
	go func() {
		nw.Node(0).Sense("x", 1)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sense after Stop deadlocked")
	}
}

func TestLiveStartPanicsOnPhysical(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Start(Config{N: 1, Kind: core.PhysicalReport, Pred: predicate.MustParse("x@0 == 1")})
}

func TestLiveConcurrentSensesDoNotRace(t *testing.T) {
	// Hammer the network from many goroutines; run with -race in CI.
	nw := Start(Config{
		N: 4, Seed: 6, Kind: core.VectorStrobe,
		Delay: sim.DeltaBounded{Min: 10, Max: 100},
		Pred:  predicate.MustParse("sum(x) > 2"),
	})
	doneCh := make(chan struct{})
	for i := 0; i < 4; i++ {
		i := i
		go func() {
			for k := 0; k < 50; k++ {
				nw.Node(i).Sense("x", float64(k%2))
			}
			doneCh <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-doneCh
	}
	res := nw.Stop(30*time.Millisecond, 5*sim.Millisecond)
	if res.Sent == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestLiveObsMetricsAndEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	nw := Start(Config{
		N: 3, Seed: 7, Kind: core.VectorStrobe,
		Delay:       sim.DeltaBounded{Min: 10, Max: 100},
		Pred:        predicate.MustParse("sum(x) > 1"),
		Obs:         reg,
		MetricsAddr: "127.0.0.1:0",
	})
	if nw.Metrics == nil {
		t.Fatal("metrics endpoint did not start")
	}
	for i := 0; i < 3; i++ {
		nw.Node(i).Sense("x", 1)
	}
	time.Sleep(20 * time.Millisecond)

	// Scrape the live endpoint mid-run.
	resp, err := http.Get("http://" + nw.Metrics.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("endpoint JSON: %v\n%s", err, body)
	}
	if snap.TimeBase != "wall-us" {
		t.Fatalf("time base %q, want wall-us", snap.TimeBase)
	}

	res := nw.Stop(20*time.Millisecond, 5*sim.Millisecond)
	final := reg.Snapshot()
	counters := map[string]int64{}
	for _, c := range final.Counters {
		counters[c.Name] = c.Value
	}
	// 3 senses × (2 peers + checker) = 9 sends.
	if counters["live.sends"] != res.Sent || counters["live.sends"] != 9 {
		t.Fatalf("live.sends %d (res.Sent %d)", counters["live.sends"], res.Sent)
	}
	if counters["live.bytes"] != res.Bytes {
		t.Fatalf("live.bytes %d want %d", counters["live.bytes"], res.Bytes)
	}
	if counters["live.checker_strobes"] != 3 {
		t.Fatalf("checker strobes %d", counters["live.checker_strobes"])
	}
	if counters["checker.strobes_applied"] == 0 {
		t.Fatal("checker instrumentation not wired in live mode")
	}

	// The endpoint is closed by Stop.
	if _, err := http.Get("http://" + nw.Metrics.Addr + "/metrics"); err == nil {
		t.Fatal("metrics endpoint still up after Stop")
	}
}

func TestLiveFlightRecorderDumpsDetection(t *testing.T) {
	fl := flight.NewConcurrent(3, 128) // 2 nodes + checker
	nw := Start(Config{
		N: 2, Seed: 8, Kind: core.VectorStrobe,
		Delay:  sim.DeltaBounded{Min: 100, Max: 500},
		Pred:   predicate.MustParse("x@0 == 1 && x@1 == 1"),
		Flight: fl,
	})
	nw.Node(0).Sense("x", 1)
	time.Sleep(10 * time.Millisecond)
	nw.Node(1).Sense("x", 1)
	time.Sleep(30 * time.Millisecond)
	nw.SignalDump("end-of-test")
	nw.Stop(20*time.Millisecond, 5*sim.Millisecond)

	dumps := nw.Dumps()
	if len(dumps) < 2 {
		t.Fatalf("got %d dumps, want detect + signal", len(dumps))
	}
	var detect *flight.Dump
	for _, d := range dumps {
		if d.Trigger == "detect" {
			detect = d
		}
	}
	if detect == nil {
		t.Fatal("no detection dump")
	}
	if detect.TimeBase != "wall-us" {
		t.Fatalf("dump time base %q, want wall-us", detect.TimeBase)
	}
	// The dump's happens-before DAG must validate even though live runs
	// are not deterministic: stamps, not timing, carry the causality.
	if issues := flight.BuildDAG(detect).Validate(); len(issues) != 0 {
		t.Fatalf("detection dump inconsistent: %v", issues)
	}
	kinds := map[string]int{}
	for _, ev := range detect.Events {
		kinds[ev.Kind]++
	}
	if kinds["sense"] == 0 || kinds["recv"] == 0 || kinds["apply"] == 0 || kinds["detect"] == 0 {
		t.Fatalf("dump missing event kinds: %v", kinds)
	}
}

func TestLiveFlightRequiresConcurrent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on single-threaded recorder")
		}
	}()
	Start(Config{
		N: 1, Kind: core.VectorStrobe,
		Pred:   predicate.MustParse("x@0 == 1"),
		Flight: flight.New(2, 16),
	})
}
