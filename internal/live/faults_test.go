package live

import (
	"runtime"
	"testing"
	"time"

	"pervasive/internal/core"
	"pervasive/internal/faults"
	"pervasive/internal/obs"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
)

// TestLiveOverloadStaysBounded is the regression test for the overload
// pileup: the old broadcast parked one timer goroutine on `peer.in <- m`
// per message that found the mailbox full, so saturating a node leaked
// goroutines until shutdown. A full mailbox must now be a counted drop.
func TestLiveOverloadStaysBounded(t *testing.T) {
	reg := obs.NewRegistry()
	const buffer = 4
	nw := Start(Config{
		N: 2, Seed: 1, Kind: core.VectorStrobe,
		Delay:  sim.Synchronous{},
		Pred:   predicate.MustParse("x@0 == 1"),
		Buffer: buffer,
		Obs:    reg,
	})
	// Stall node 1 by ending its goroutine life directly (white-box; not
	// marked down, so deliveries still target its mailbox). Nothing
	// drains `in` — the saturated consumer the old code answered with one
	// permanently blocked goroutine per overflowing message.
	close(nw.Node(1).die)
	time.Sleep(5 * time.Millisecond)
	base := runtime.NumGoroutine()
	const blast = 500
	for k := 0; k < blast; k++ {
		nw.Node(0).Sense("x", float64(k%2))
	}
	time.Sleep(100 * time.Millisecond) // let every delivery timer fire
	peak := runtime.NumGoroutine()
	if peak > base+50 {
		t.Fatalf("goroutines grew from %d to %d under overload — deliveries are blocking again", base, peak)
	}
	if got := nw.MailboxDrops(); got != blast-buffer {
		t.Fatalf("mailbox drops %d, want %d (mailbox holds %d of %d deliveries)",
			got, blast-buffer, buffer, blast)
	}
	drops := nw.MailboxDrops()
	nw.Stop(10*time.Millisecond, sim.Millisecond)
	counters := map[string]int64{}
	for _, c := range reg.Snapshot().Counters {
		counters[c.Name] = c.Value
	}
	if counters["live.mailbox_drops"] != drops {
		t.Fatalf("live.mailbox_drops=%d, MailboxDrops()=%d", counters["live.mailbox_drops"], drops)
	}
}

// TestLiveOverloadAgainstCrashedNode drives the exact ISSUE scenario: a
// crashed receiver whose mailbox nobody drains. Every delivery must
// resolve promptly (drop), never park a goroutine.
func TestLiveOverloadAgainstCrashedNode(t *testing.T) {
	nw := Start(Config{
		N: 2, Seed: 2, Kind: core.VectorStrobe,
		Delay:  sim.Synchronous{},
		Pred:   predicate.MustParse("x@0 == 1"),
		Buffer: 4,
		Faults: faults.NewPlan().Crash(1, 0),
	})
	time.Sleep(5 * time.Millisecond) // let the t=0 crash timer fire
	base := runtime.NumGoroutine()
	const blast = 500
	for k := 0; k < blast; k++ {
		nw.Node(0).Sense("x", float64(k%2))
	}
	time.Sleep(50 * time.Millisecond)
	peak := runtime.NumGoroutine()
	if peak > base+50 {
		t.Fatalf("goroutines grew from %d to %d against a crashed node", base, peak)
	}
	if nw.fault.Counts.CrashDrops.Load() == 0 {
		t.Fatal("deliveries to the crashed node were not counted")
	}
	nw.Stop(10*time.Millisecond, sim.Millisecond)
}

// TestLiveMailboxWatermark: the depth metric must be the high-watermark
// across all deliveries, not whichever delivery goroutine wrote last.
func TestLiveMailboxWatermark(t *testing.T) {
	reg := obs.NewRegistry()
	nw := Start(Config{
		N: 3, Seed: 3, Kind: core.VectorStrobe,
		Delay: sim.DeltaBounded{Min: 10, Max: 100},
		Pred:  predicate.MustParse("sum(x) > 2"),
		Obs:   reg,
	})
	for k := 0; k < 100; k++ {
		nw.Node(0).Sense("x", float64(k%2))
		nw.Node(1).Sense("x", float64(k%2))
	}
	time.Sleep(50 * time.Millisecond)
	hw := nw.MailboxHighWatermark()
	if hw <= 0 {
		t.Fatal("no mailbox depth observed")
	}
	snap := reg.Snapshot()
	nw.Stop(10*time.Millisecond, sim.Millisecond)
	for _, g := range snap.Gauges {
		if g.Name == "live.mailbox_depth" {
			if g.Max < hw {
				t.Fatalf("gauge max %d below the true watermark %d", g.Max, hw)
			}
			return
		}
	}
	t.Fatal("live.mailbox_depth gauge missing")
}

// TestLiveCrashRecovery: a mid-run crash silences the node; recovery
// restarts it with a fresh epoch the checker accepts.
func TestLiveCrashRecovery(t *testing.T) {
	reg := obs.NewRegistry()
	plan := faults.NewPlan().
		Crash(1, sim.Time(20*time.Millisecond/time.Microsecond)).
		Recover(1, sim.Time(60*time.Millisecond/time.Microsecond))
	nw := Start(Config{
		N: 2, Seed: 4, Kind: core.VectorStrobe,
		Delay:  sim.DeltaBounded{Min: 50, Max: 200},
		Pred:   predicate.MustParse("x@0 == 1 && x@1 == 1"),
		Obs:    reg,
		Faults: plan,
	})
	nw.Node(0).Sense("x", 1)
	nw.Node(1).Sense("x", 1) // pre-crash life: Seq 1 epoch 0
	time.Sleep(40 * time.Millisecond)
	if !nw.Node(1).down.Load() {
		t.Fatal("node 1 not down after crash time")
	}
	nw.Node(1).Sense("x", 0) // unobserved by the crashed sensor
	time.Sleep(50 * time.Millisecond)
	if nw.Node(1).down.Load() {
		t.Fatal("node 1 still down after recovery time")
	}
	// Post-recovery: Seq restarts at 1 under epoch 1; the checker must
	// apply it (predicate goes false) rather than discard it as stale.
	nw.Node(1).Sense("x", 0)
	time.Sleep(30 * time.Millisecond)
	nw.checkerMu.Lock()
	v := nw.checker.View(1, "x")
	nw.checkerMu.Unlock()
	if v != 0 {
		t.Fatalf("checker never applied the post-recovery strobe: view=%v", v)
	}
	res := nw.Stop(20*time.Millisecond, 5*sim.Millisecond)
	if res.Sent == 0 {
		t.Fatal("no traffic")
	}
	counters := map[string]int64{}
	for _, c := range reg.Snapshot().Counters {
		counters[c.Name] = c.Value
	}
	if counters["faults.crashes"] != 1 || counters["faults.recoveries"] != 1 {
		t.Fatalf("transition counters: crashes=%d recoveries=%d",
			counters["faults.crashes"], counters["faults.recoveries"])
	}
	if counters["faults.suppressed_sends"] == 0 {
		t.Fatal("crashed sensor's missed sense not counted")
	}
}

// TestLiveRecoveryDrainsMailbox: messages queued while a node was down
// must not be replayed into its fresh life.
func TestLiveRecoveryDrainsMailbox(t *testing.T) {
	nw := Start(Config{
		N: 2, Seed: 5, Kind: core.VectorStrobe,
		Delay:  sim.Synchronous{},
		Pred:   predicate.MustParse("x@0 == 1"),
		Faults: faults.NewPlan().Crash(1, 0),
	})
	time.Sleep(5 * time.Millisecond)
	// Stuff node 1's mailbox directly (deliveries short-circuit on down).
	for k := 0; k < 10; k++ {
		nw.Node(1).in <- core.StrobeMsg{Proc: 0, Seq: k + 1}
	}
	if !nw.recoverNode(1) {
		t.Fatal("recoverNode reported no transition")
	}
	if got := len(nw.Node(1).in); got != 0 {
		t.Fatalf("%d stale messages survived recovery", got)
	}
	if nw.drained.Load() != 10 {
		t.Fatalf("drained %d, want 10", nw.drained.Load())
	}
	if nw.Node(1).epoch != 1 {
		t.Fatalf("epoch %d after recovery", nw.Node(1).epoch)
	}
	nw.Stop(5*time.Millisecond, sim.Millisecond)
}
