// Package live is the second execution engine: instead of the
// deterministic discrete-event simulator, every sensor process is a real
// goroutine and every link delivery is a timer-delayed channel send — the
// natural Go realization of the paper's asynchronous message-passing
// system model (Section 2). The strobe protocols and the checker logic
// are shared with the DES engine (package core); only the substrate
// differs.
//
// Virtual time in live mode is wall-clock microseconds since Start. Runs
// are not bit-reproducible (goroutine scheduling and real timers are not),
// so tests and examples use workloads with wide margins; the DES engine is
// the reproducible harness for experiments.
package live

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pervasive/internal/clock"
	"pervasive/internal/core"
	"pervasive/internal/faults"
	"pervasive/internal/flight"
	"pervasive/internal/obs"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
	"pervasive/internal/world"
)

// Config assembles a live sensor network.
type Config struct {
	N    int
	Seed uint64
	Kind core.ClockKind // VectorStrobe or ScalarStrobe
	// Delay is sampled per link message; virtual µs are wall µs.
	Delay sim.DelayModel
	// Pred is the global predicate detected under Instantaneously.
	Pred predicate.Cond
	// Buffer is each node's mailbox capacity (default 1024).
	Buffer int
	// Obs, if non-nil, receives runtime metrics (goroutine sends, drops,
	// mailbox depth, checker strobes); its time source is set to the
	// network's wall-µs clock. Nil disables instrumentation.
	Obs *obs.Registry
	// MetricsAddr, when set together with Obs, serves the registry over
	// HTTP at /metrics (JSON snapshot) and /debug/vars (expvar) for the
	// duration of the run — e.g. "127.0.0.1:0". The bound address is in
	// Network.Metrics.Addr.
	MetricsAddr string
	// Faults, if non-nil and non-empty, is the deterministic fault plan
	// (package faults). Crash stops the node's goroutine; recover drains
	// its mailbox and restarts it with fresh clocks, Seq 1 and a bumped
	// epoch. Fault times are wall-clock µs since Start. Partitions and
	// dup/reorder windows gate deliveries like the DES transport.
	Faults *faults.Plan
	// Flight, if non-nil, is the causal flight recorder. It must be
	// built with flight.NewConcurrent over N+1 processes (node
	// goroutines and delivery timers record concurrently; the extra
	// ring is the checker's) — Start panics on a single-threaded
	// recorder. Its time base is labeled "wall-us" and trigger-scoped
	// dumps are collected into Network.Dumps().
	Flight *flight.Recorder
}

// Network is a running live sensor network.
type Network struct {
	cfg   Config
	nodes []*Node

	checkerMu sync.Mutex
	checker   *core.StrobeChecker

	delayMu sync.Mutex
	rng     *stats.RNG

	start time.Time

	truthMu sync.Mutex
	truth   []world.Event

	stopOnce sync.Once
	done     chan struct{}
	wg       sync.WaitGroup

	// lifeMu serializes node crash/recover transitions against each other
	// and against Stop; stopping blocks restarts once shutdown has begun.
	lifeMu   sync.Mutex
	stopping bool
	fault    *faults.Injector
	timers   []*time.Timer // pending fault transitions, stopped by Stop

	// mailboxHW is the high-watermark of any node's mailbox depth. The old
	// live.mailbox_depth gauge was Set from every delivery goroutine, so
	// its value was whichever delivery ran last — a lottery, not a metric.
	// Deliveries CAS-max into this atomic instead and a snapshot-time
	// collector publishes it.
	mailboxHW    atomic.Int64
	mailboxDrops atomic.Int64
	drained      atomic.Int64

	sentMu sync.Mutex
	sent   int64
	bytes  int64

	// Metrics is the HTTP metrics endpoint when Config.MetricsAddr was
	// set and the listener bound; nil otherwise. Closed by Stop.
	Metrics *obs.MetricsServer

	// dumpMu guards dumps, collected from whatever goroutine fires a
	// flight trigger (fault timer, checker delivery).
	dumpMu sync.Mutex
	dumps  []*flight.Dump

	// Resolved obs instruments; nil (no-ops) when Config.Obs is nil.
	obsSends        *obs.Counter
	obsDrops        *obs.Counter
	obsBytes        *obs.Counter
	obsMailbox      *obs.Gauge
	obsMailboxDrops *obs.Counter
	obsChecker      *obs.Counter
}

// Node is one goroutine-backed sensor process.
type Node struct {
	ID  int
	nw  *Network
	in  chan core.StrobeMsg
	cmd chan senseCmd

	// down marks a crashed node: senders drop instead of enqueueing.
	down atomic.Bool
	// die ends the current goroutine life only (unlike nw.done); dead is
	// closed by the goroutine as it exits, ordering its final clock
	// accesses before the recovery's reset. Both replaced on each
	// recovery, guarded by nw.lifeMu.
	die  chan struct{}
	dead chan struct{}

	// clock state is owned by the node's goroutine; between a crash and
	// the matching recovery no goroutine is live, so the reset in
	// recoverNode is ordered before the restarted loop by the go statement.
	vec   *clock.StrobeVector
	sc    *clock.StrobeScalar
	seq   int
	epoch int
}

type senseCmd struct {
	varName string
	value   float64
}

// Start builds and starts the network; every node's goroutine begins
// consuming its mailbox immediately.
func Start(cfg Config) *Network {
	if cfg.N <= 0 {
		panic("live: need at least one node")
	}
	if cfg.Delay == nil {
		cfg.Delay = sim.Synchronous{}
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 1024
	}
	if cfg.Kind != core.VectorStrobe && cfg.Kind != core.ScalarStrobe {
		panic("live: engine supports strobe clock kinds only")
	}
	nw := &Network{
		cfg:   cfg,
		rng:   stats.NewRNG(cfg.Seed),
		start: time.Now(), //lint:allow determinism(the live engine's virtual time is wall-clock µs since Start by design; the DES is the reproducible harness)
		done:  make(chan struct{}),
	}
	nw.cfg.Obs.SetNow("wall-us", nw.Now)
	if cfg.Flight != nil {
		if !cfg.Flight.Concurrent() {
			panic("live: Config.Flight must be built with flight.NewConcurrent")
		}
		cfg.Flight.SetTimeBase("wall-us")
		cfg.Flight.SetTrigger(func(d *flight.Dump) {
			if cfg.Obs != nil {
				snap := cfg.Obs.Snapshot()
				d.Metrics = &snap
			}
			nw.dumpMu.Lock()
			nw.dumps = append(nw.dumps, d)
			nw.dumpMu.Unlock()
		})
	}
	nw.obsSends = cfg.Obs.Counter("live.sends")
	nw.obsDrops = cfg.Obs.Counter("live.drops")
	nw.obsBytes = cfg.Obs.Counter("live.bytes")
	nw.obsMailbox = cfg.Obs.Gauge("live.mailbox_depth")
	nw.obsMailboxDrops = cfg.Obs.Counter("live.mailbox_drops")
	nw.obsChecker = cfg.Obs.Counter("live.checker_strobes")
	if cfg.Obs != nil {
		cfg.Obs.RegisterCollector(func(r *obs.Registry) {
			hw := nw.mailboxHW.Load()
			nw.obsMailbox.SetWithMax(hw, hw)
			r.Counter("live.mailbox_drained").Store(nw.drained.Load())
			if f := nw.fault; f != nil {
				r.Counter("faults.suppressed_sends").Store(f.Counts.SuppressedSends.Load())
				r.Counter("faults.crash_drops").Store(f.Counts.CrashDrops.Load())
				r.Counter("faults.partition_drops").Store(f.Counts.PartitionDrops.Load())
				r.Counter("faults.duplicates").Store(f.Counts.Duplicates.Load())
				r.Counter("faults.reorders").Store(f.Counts.Reorders.Load())
			}
		})
	}
	if cfg.MetricsAddr != "" && cfg.Obs != nil {
		cfg.Obs.PublishExpvar("pervasive")
		if srv, err := cfg.Obs.Serve(cfg.MetricsAddr); err == nil {
			nw.Metrics = srv
		}
	}
	if cfg.Kind == core.VectorStrobe {
		nw.checker = core.NewVectorChecker(cfg.N, cfg.Pred)
	} else {
		nw.checker = core.NewScalarChecker(cfg.N, cfg.Pred)
	}
	nw.checker.SetObs(cfg.Obs)
	nw.checker.SetFlight(cfg.Flight, cfg.N)
	for i := 0; i < cfg.N; i++ {
		n := &Node{
			ID: i, nw: nw,
			in:   make(chan core.StrobeMsg, cfg.Buffer),
			cmd:  make(chan senseCmd, cfg.Buffer),
			die:  make(chan struct{}),
			dead: make(chan struct{}),
		}
		if cfg.Kind == core.VectorStrobe {
			n.vec = clock.NewStrobeVector(i, cfg.N)
		} else {
			n.sc = &clock.StrobeScalar{}
		}
		nw.nodes = append(nw.nodes, n)
	}
	for _, n := range nw.nodes {
		nw.wg.Add(1)
		go n.loop(n.die, n.dead)
	}
	nw.scheduleFaults(faults.NewInjector(cfg.Faults))
	return nw
}

// scheduleFaults arms wall-clock timers for the plan's crash/recover
// transitions and installs the injector gating deliveries.
func (nw *Network) scheduleFaults(inj *faults.Injector) {
	if inj == nil {
		return
	}
	for _, ev := range inj.Transitions() {
		if ev.Proc < 0 || ev.Proc >= nw.cfg.N {
			panic(fmt.Sprintf("live: fault plan event targets process %d of %d", ev.Proc, nw.cfg.N))
		}
	}
	nw.fault = inj
	spans := make([]obs.Span, nw.cfg.N)
	crashes := nw.cfg.Obs.Counter("faults.crashes")
	recoveries := nw.cfg.Obs.Counter("faults.recoveries")
	for _, ev := range inj.Transitions() {
		ev := ev
		t := time.AfterFunc(time.Duration(ev.At)*time.Microsecond, func() {
			switch ev.Kind {
			case faults.Crash:
				if nw.crashNode(ev.Proc) {
					crashes.Inc()
					nw.lifeMu.Lock()
					spans[ev.Proc] = nw.cfg.Obs.StartSpanAt(
						"faults.down.p"+strconv.Itoa(ev.Proc), nw.Now())
					epoch := nw.nodes[ev.Proc].epoch
					nw.lifeMu.Unlock()
					nw.recordTransition(flight.Crash, ev.Proc, epoch, "fault:crash(p")
				}
			case faults.Recover:
				if nw.recoverNode(ev.Proc) {
					recoveries.Inc()
					nw.lifeMu.Lock()
					spans[ev.Proc].EndAt(nw.Now())
					spans[ev.Proc] = obs.Span{}
					epoch := nw.nodes[ev.Proc].epoch
					nw.lifeMu.Unlock()
					nw.recordTransition(flight.Recover, ev.Proc, epoch, "fault:recover(p")
				}
			}
		})
		nw.timers = append(nw.timers, t)
	}
}

// recordTransition stamps a crash/recover flight record for node i and
// triggers a full-fleet dump tagged with the transition.
func (nw *Network) recordTransition(kind flight.Kind, i, epoch int, tag string) {
	fl := nw.cfg.Flight
	if fl == nil {
		return
	}
	now := nw.Now()
	fl.Record(flight.Rec{
		Kind: kind, Proc: int32(i), Peer: flight.NoPeer,
		Epoch: int32(epoch), At: now,
	})
	fl.TriggerDump(tag+strconv.Itoa(i)+")", now)
}

// crashNode stops node i's goroutine; queued and future deliveries drop.
// Reports whether a transition happened.
func (nw *Network) crashNode(i int) bool {
	nw.lifeMu.Lock()
	defer nw.lifeMu.Unlock()
	n := nw.nodes[i]
	if nw.stopping || n.down.Load() {
		return false
	}
	n.down.Store(true)
	close(n.die)
	return true
}

// recoverNode restarts a crashed node: whatever accumulated in its
// mailbox while it was down is drained (a reboot loses volatile state),
// clocks and Seq restart fresh, and the epoch bump tells the checker.
// Reports whether a transition happened.
func (nw *Network) recoverNode(i int) bool {
	nw.lifeMu.Lock()
	defer nw.lifeMu.Unlock()
	n := nw.nodes[i]
	if nw.stopping || !n.down.Load() {
		return false
	}
	<-n.dead // the dead life's last clock accesses precede the reset
drain:
	for {
		select {
		case <-n.in:
			nw.drained.Add(1)
		case <-n.cmd:
			nw.drained.Add(1)
		default:
			break drain
		}
	}
	if n.vec != nil {
		n.vec = clock.NewStrobeVector(n.ID, nw.cfg.N)
	} else {
		n.sc = &clock.StrobeScalar{}
	}
	n.seq = 0
	n.epoch++
	n.die = make(chan struct{})
	n.dead = make(chan struct{})
	n.down.Store(false)
	nw.wg.Add(1)
	go n.loop(n.die, n.dead)
	return true
}

// MailboxHighWatermark returns the deepest any node's mailbox has been.
func (nw *Network) MailboxHighWatermark() int64 { return nw.mailboxHW.Load() }

// MailboxDrops returns deliveries dropped because a mailbox was full.
func (nw *Network) MailboxDrops() int64 { return nw.mailboxDrops.Load() }

// Dumps returns a copy of the flight dumps collected so far, in
// trigger order. Call after Stop for the complete set.
func (nw *Network) Dumps() []*flight.Dump {
	nw.dumpMu.Lock()
	defer nw.dumpMu.Unlock()
	return append([]*flight.Dump(nil), nw.dumps...)
}

// SignalDump triggers an explicit full-fleet flight dump, tagged
// "signal:<reason>" — the manual trigger class next to fault
// transitions and checker detections.
func (nw *Network) SignalDump(reason string) {
	if nw.cfg.Flight == nil {
		return
	}
	nw.cfg.Flight.TriggerDump("signal:"+reason, nw.Now())
}

// Now returns the network's virtual time (µs since Start).
func (nw *Network) Now() sim.Time {
	return sim.Time(time.Since(nw.start).Microseconds()) //lint:allow determinism(live mode runs on the physical clock by design; the DES engine owns the virtual one)
}

// Node returns node i.
func (nw *Network) Node(i int) *Node { return nw.nodes[i] }

// Sense injects a sense event at the node: its goroutine ticks the clock,
// broadcasts the strobe, and the ground-truth log records the true time.
func (n *Node) Sense(varName string, value float64) {
	n.nw.recordTruth(n.ID, varName, value)
	if n.down.Load() {
		// The world changed but the crashed sensor did not observe it;
		// ground truth above still records the change.
		if f := n.nw.fault; f != nil {
			f.Counts.SuppressedSends.Add(1)
		}
		return
	}
	select {
	case n.cmd <- senseCmd{varName: varName, value: value}:
	case <-n.nw.done:
	}
}

func (nw *Network) recordTruth(proc int, varName string, value float64) {
	nw.truthMu.Lock()
	defer nw.truthMu.Unlock()
	nw.truth = append(nw.truth, world.Event{
		Seq: len(nw.truth), At: nw.Now(),
		Object: proc, Attr: varName, New: value, Cause: world.NoCause,
	})
}

// loop is the node goroutine: it serializes sense commands and incoming
// strobes, owning the node's clock without locks — share memory by
// communicating.
func (n *Node) loop(die, dead chan struct{}) {
	defer n.nw.wg.Done()
	defer close(dead)
	for {
		select {
		case <-n.nw.done:
			return
		case <-die:
			return // crashed; recoverNode starts a fresh life
		case cmd := <-n.cmd:
			n.onSense(cmd)
		case m := <-n.in:
			n.onStrobe(m)
		}
	}
}

func (n *Node) onSense(cmd senseCmd) {
	n.seq++
	msg := core.StrobeMsg{Proc: n.ID, Seq: n.seq, Epoch: n.epoch, Var: cmd.varName, Value: cmd.value}
	var ownClock uint64
	if n.vec != nil {
		msg.Vec = n.vec.Strobe() // SVC1
		ownClock = msg.Vec[n.ID]
	} else {
		msg.Scalar = n.sc.Strobe() // SSC1
		ownClock = msg.Scalar
	}
	if fl := n.nw.cfg.Flight; fl != nil {
		fl.Record(flight.Rec{
			Kind: flight.Sense, Proc: int32(n.ID), Peer: flight.NoPeer,
			Epoch: int32(n.epoch), Seq: uint64(n.seq), At: n.nw.Now(),
			Attr: fl.Intern(cmd.varName), Clock: ownClock, Value: cmd.value,
		})
	}
	n.nw.broadcast(n.ID, msg)
}

func (n *Node) onStrobe(m core.StrobeMsg) {
	if n.vec != nil && m.Vec != nil {
		n.vec.OnStrobe(m.Vec) // SVC2
	} else if n.sc != nil && m.Vec == nil {
		n.sc.OnStrobe(m.Scalar) // SSC2
	}
}

// recordMsg stamps one Recv/Drop flight record for a strobe at dst.
func (nw *Network) recordMsg(kind flight.Kind, dst int, m core.StrobeMsg) {
	fl := nw.cfg.Flight
	if fl == nil {
		return
	}
	epoch, seq, clk := m.FlightStamp()
	fl.Record(flight.Rec{
		Kind: kind, Proc: int32(dst), Peer: int32(m.Proc),
		Epoch: int32(epoch), Seq: uint64(seq), At: nw.Now(), PeerClock: clk,
	})
}

// broadcast delivers the strobe to every other node and the checker, each
// copy after an independently sampled delay.
func (nw *Network) broadcast(src int, m core.StrobeMsg) {
	now := nw.Now()
	f := nw.fault
	for _, peer := range nw.nodes {
		if peer.ID == src {
			continue
		}
		peer := peer
		nw.count(m)
		if f != nil && f.Cut(src, peer.ID, now) {
			f.Counts.PartitionDrops.Add(1)
			nw.obsDrops.Inc()
			nw.recordMsg(flight.Drop, peer.ID, m)
			continue
		}
		d, dropped := nw.sampleDelay(src, peer.ID)
		if dropped {
			nw.obsDrops.Inc()
			nw.recordMsg(flight.Drop, peer.ID, m)
			continue
		}
		nw.scheduleDelivery(peer, m, d, now)
		if f != nil {
			if p := f.DupProb(now); p > 0 && nw.chance(p) {
				if d2, dropped2 := nw.sampleDelay(src, peer.ID); !dropped2 {
					f.Counts.Duplicates.Add(1)
					nw.scheduleDelivery(peer, m, d2, now)
				}
			}
		}
	}
	// checker copy
	nw.count(m)
	if f != nil && f.Cut(src, nw.cfg.N, now) {
		f.Counts.PartitionDrops.Add(1)
		nw.obsDrops.Inc()
		nw.recordMsg(flight.Drop, nw.cfg.N, m)
		return
	}
	d, dropped := nw.sampleDelay(src, nw.cfg.N)
	if dropped {
		nw.obsDrops.Inc()
		nw.recordMsg(flight.Drop, nw.cfg.N, m)
		return
	}
	time.AfterFunc(nw.shape(d, now).Std(), func() {
		select {
		case <-nw.done:
			return
		default:
		}
		nw.checkerMu.Lock()
		defer nw.checkerMu.Unlock()
		nw.obsChecker.Inc()
		nw.recordMsg(flight.Recv, nw.cfg.N, m)
		nw.checker.OnStrobe(m, nw.Now())
	})
}

// scheduleDelivery arms the timer-delayed mailbox send for one copy. A
// full mailbox is a counted drop, never a blocked goroutine: the old code
// parked the timer goroutine on `peer.in <- m` until shutdown, so a
// saturated node accumulated one goroutine per overflowing message.
func (nw *Network) scheduleDelivery(peer *Node, m core.StrobeMsg, d sim.Duration, sentAt sim.Time) {
	time.AfterFunc(nw.shape(d, sentAt).Std(), func() {
		if peer.down.Load() {
			if f := nw.fault; f != nil {
				f.Counts.CrashDrops.Add(1)
			}
			nw.obsDrops.Inc()
			nw.recordMsg(flight.Drop, peer.ID, m)
			return
		}
		select {
		case peer.in <- m:
			nw.recordMsg(flight.Recv, peer.ID, m)
			depth := int64(len(peer.in))
			for {
				cur := nw.mailboxHW.Load()
				if depth <= cur || nw.mailboxHW.CompareAndSwap(cur, depth) {
					break
				}
			}
		case <-nw.done:
		default:
			nw.mailboxDrops.Add(1)
			nw.obsMailboxDrops.Inc()
			nw.recordMsg(flight.Drop, peer.ID, m)
		}
	})
}

// shape adds active reorder-window jitter to a sampled delay.
func (nw *Network) shape(d sim.Duration, at sim.Time) sim.Duration {
	f := nw.fault
	if f == nil {
		return d
	}
	if j := f.ReorderJitter(at); j > 0 {
		nw.delayMu.Lock()
		d += sim.Duration(nw.rng.Int63n(int64(j) + 1))
		nw.delayMu.Unlock()
		f.Counts.Reorders.Add(1)
	}
	return d
}

// chance draws one biased coin under the RNG lock.
func (nw *Network) chance(p float64) bool {
	nw.delayMu.Lock()
	defer nw.delayMu.Unlock()
	return nw.rng.Bool(p)
}

func (nw *Network) sampleDelay(src, dst int) (sim.Duration, bool) {
	nw.delayMu.Lock()
	defer nw.delayMu.Unlock()
	return sim.SampleDelay(nw.cfg.Delay, nw.rng, nw.Now(), src, dst)
}

func (nw *Network) count(m core.StrobeMsg) {
	nw.sentMu.Lock()
	nw.sent++
	nw.bytes += int64(m.WireSize())
	nw.sentMu.Unlock()
	nw.obsSends.Inc()
	nw.obsBytes.Add(int64(m.WireSize()))
}

// Results of a live run.
type Results struct {
	Occurrences []core.Occurrence
	Markers     []sim.Time
	Truth       []world.Interval
	Confusion   stats.Confusion
	Horizon     sim.Time
	Sent        int64
	Bytes       int64
}

// Stop shuts the network down after draining in-flight deliveries for the
// settle duration, finishes the checker, and scores against the recorded
// ground truth with tolerance tol.
func (nw *Network) Stop(settle time.Duration, tol sim.Duration) Results {
	sp := nw.cfg.Obs.StartSpanAt("live.stop", nw.Now())
	time.Sleep(settle)
	horizon := nw.Now()
	nw.lifeMu.Lock()
	nw.stopping = true // no fault transition may restart a node from here
	for _, t := range nw.timers {
		t.Stop()
	}
	nw.lifeMu.Unlock()
	nw.stopOnce.Do(func() { close(nw.done) })
	nw.wg.Wait()
	sp.EndAt(nw.Now())
	if nw.Metrics != nil {
		_ = nw.Metrics.Close()
	}

	nw.checkerMu.Lock()
	nw.checker.Finish(horizon)
	occ := nw.checker.Occurrences()
	markers := nw.checker.Markers()
	nw.checkerMu.Unlock()

	nw.truthMu.Lock()
	log := append([]world.Event(nil), nw.truth...)
	nw.truthMu.Unlock()

	res := Results{
		Occurrences: occ, Markers: markers, Horizon: horizon,
	}
	nw.sentMu.Lock()
	res.Sent, res.Bytes = nw.sent, nw.bytes
	nw.sentMu.Unlock()

	if nw.cfg.Pred != nil {
		pred := func(get func(obj int, attr string) float64) bool {
			return nw.cfg.Pred.Holds(liveState{n: nw.cfg.N, get: get})
		}
		res.Truth = world.TrueIntervals(log, pred, horizon)
		res.Confusion = core.Score(occ, res.Truth, markers, tol, horizon)
	}
	return res
}

// liveState adapts the truth log convention (object index == proc index)
// to predicate.State.
type liveState struct {
	n   int
	get func(obj int, attr string) float64
}

// Get implements predicate.State.
func (s liveState) Get(proc int, name string) float64 { return s.get(proc, name) }

// NumProcs implements predicate.State.
func (s liveState) NumProcs() int { return s.n }
