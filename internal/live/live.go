// Package live is the second execution engine: instead of the
// deterministic discrete-event simulator, every sensor process is a real
// goroutine and every link delivery is a timer-delayed channel send — the
// natural Go realization of the paper's asynchronous message-passing
// system model (Section 2). The strobe protocols and the checker logic
// are shared with the DES engine (package core); only the substrate
// differs.
//
// Virtual time in live mode is wall-clock microseconds since Start. Runs
// are not bit-reproducible (goroutine scheduling and real timers are not),
// so tests and examples use workloads with wide margins; the DES engine is
// the reproducible harness for experiments.
package live

import (
	"sync"
	"time"

	"pervasive/internal/clock"
	"pervasive/internal/core"
	"pervasive/internal/obs"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
	"pervasive/internal/world"
)

// Config assembles a live sensor network.
type Config struct {
	N    int
	Seed uint64
	Kind core.ClockKind // VectorStrobe or ScalarStrobe
	// Delay is sampled per link message; virtual µs are wall µs.
	Delay sim.DelayModel
	// Pred is the global predicate detected under Instantaneously.
	Pred predicate.Cond
	// Buffer is each node's mailbox capacity (default 1024).
	Buffer int
	// Obs, if non-nil, receives runtime metrics (goroutine sends, drops,
	// mailbox depth, checker strobes); its time source is set to the
	// network's wall-µs clock. Nil disables instrumentation.
	Obs *obs.Registry
	// MetricsAddr, when set together with Obs, serves the registry over
	// HTTP at /metrics (JSON snapshot) and /debug/vars (expvar) for the
	// duration of the run — e.g. "127.0.0.1:0". The bound address is in
	// Network.Metrics.Addr.
	MetricsAddr string
}

// Network is a running live sensor network.
type Network struct {
	cfg   Config
	nodes []*Node

	checkerMu sync.Mutex
	checker   *core.StrobeChecker

	delayMu sync.Mutex
	rng     *stats.RNG

	start time.Time

	truthMu sync.Mutex
	truth   []world.Event

	stopOnce sync.Once
	done     chan struct{}
	wg       sync.WaitGroup

	sentMu sync.Mutex
	sent   int64
	bytes  int64

	// Metrics is the HTTP metrics endpoint when Config.MetricsAddr was
	// set and the listener bound; nil otherwise. Closed by Stop.
	Metrics *obs.MetricsServer

	// Resolved obs instruments; nil (no-ops) when Config.Obs is nil.
	obsSends   *obs.Counter
	obsDrops   *obs.Counter
	obsBytes   *obs.Counter
	obsMailbox *obs.Gauge
	obsChecker *obs.Counter
}

// Node is one goroutine-backed sensor process.
type Node struct {
	ID  int
	nw  *Network
	in  chan core.StrobeMsg
	cmd chan senseCmd

	// clock state is owned by the node's goroutine
	vec *clock.StrobeVector
	sc  *clock.StrobeScalar
	seq int
}

type senseCmd struct {
	varName string
	value   float64
}

// Start builds and starts the network; every node's goroutine begins
// consuming its mailbox immediately.
func Start(cfg Config) *Network {
	if cfg.N <= 0 {
		panic("live: need at least one node")
	}
	if cfg.Delay == nil {
		cfg.Delay = sim.Synchronous{}
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 1024
	}
	if cfg.Kind != core.VectorStrobe && cfg.Kind != core.ScalarStrobe {
		panic("live: engine supports strobe clock kinds only")
	}
	nw := &Network{
		cfg:   cfg,
		rng:   stats.NewRNG(cfg.Seed),
		start: time.Now(),
		done:  make(chan struct{}),
	}
	nw.cfg.Obs.SetNow("wall", nw.Now)
	nw.obsSends = cfg.Obs.Counter("live.sends")
	nw.obsDrops = cfg.Obs.Counter("live.drops")
	nw.obsBytes = cfg.Obs.Counter("live.bytes")
	nw.obsMailbox = cfg.Obs.Gauge("live.mailbox_depth")
	nw.obsChecker = cfg.Obs.Counter("live.checker_strobes")
	if cfg.MetricsAddr != "" && cfg.Obs != nil {
		cfg.Obs.PublishExpvar("pervasive")
		if srv, err := cfg.Obs.Serve(cfg.MetricsAddr); err == nil {
			nw.Metrics = srv
		}
	}
	if cfg.Kind == core.VectorStrobe {
		nw.checker = core.NewVectorChecker(cfg.N, cfg.Pred)
	} else {
		nw.checker = core.NewScalarChecker(cfg.N, cfg.Pred)
	}
	nw.checker.SetObs(cfg.Obs)
	for i := 0; i < cfg.N; i++ {
		n := &Node{
			ID: i, nw: nw,
			in:  make(chan core.StrobeMsg, cfg.Buffer),
			cmd: make(chan senseCmd, cfg.Buffer),
		}
		if cfg.Kind == core.VectorStrobe {
			n.vec = clock.NewStrobeVector(i, cfg.N)
		} else {
			n.sc = &clock.StrobeScalar{}
		}
		nw.nodes = append(nw.nodes, n)
	}
	for _, n := range nw.nodes {
		nw.wg.Add(1)
		go n.loop()
	}
	return nw
}

// Now returns the network's virtual time (µs since Start).
func (nw *Network) Now() sim.Time {
	return sim.Time(time.Since(nw.start).Microseconds())
}

// Node returns node i.
func (nw *Network) Node(i int) *Node { return nw.nodes[i] }

// Sense injects a sense event at the node: its goroutine ticks the clock,
// broadcasts the strobe, and the ground-truth log records the true time.
func (n *Node) Sense(varName string, value float64) {
	n.nw.recordTruth(n.ID, varName, value)
	select {
	case n.cmd <- senseCmd{varName: varName, value: value}:
	case <-n.nw.done:
	}
}

func (nw *Network) recordTruth(proc int, varName string, value float64) {
	nw.truthMu.Lock()
	defer nw.truthMu.Unlock()
	nw.truth = append(nw.truth, world.Event{
		Seq: len(nw.truth), At: nw.Now(),
		Object: proc, Attr: varName, New: value, Cause: world.NoCause,
	})
}

// loop is the node goroutine: it serializes sense commands and incoming
// strobes, owning the node's clock without locks — share memory by
// communicating.
func (n *Node) loop() {
	defer n.nw.wg.Done()
	for {
		select {
		case <-n.nw.done:
			return
		case cmd := <-n.cmd:
			n.onSense(cmd)
		case m := <-n.in:
			n.onStrobe(m)
		}
	}
}

func (n *Node) onSense(cmd senseCmd) {
	n.seq++
	msg := core.StrobeMsg{Proc: n.ID, Seq: n.seq, Var: cmd.varName, Value: cmd.value}
	if n.vec != nil {
		msg.Vec = n.vec.Strobe() // SVC1
	} else {
		msg.Scalar = n.sc.Strobe() // SSC1
	}
	n.nw.broadcast(n.ID, msg)
}

func (n *Node) onStrobe(m core.StrobeMsg) {
	if n.vec != nil && m.Vec != nil {
		n.vec.OnStrobe(m.Vec) // SVC2
	} else if n.sc != nil && m.Vec == nil {
		n.sc.OnStrobe(m.Scalar) // SSC2
	}
}

// broadcast delivers the strobe to every other node and the checker, each
// copy after an independently sampled delay.
func (nw *Network) broadcast(src int, m core.StrobeMsg) {
	for _, peer := range nw.nodes {
		if peer.ID == src {
			continue
		}
		peer := peer
		d, dropped := nw.sampleDelay(src, peer.ID)
		nw.count(m)
		if dropped {
			nw.obsDrops.Inc()
			continue
		}
		time.AfterFunc(d.Std(), func() {
			select {
			case peer.in <- m:
				nw.obsMailbox.Set(int64(len(peer.in)))
			case <-nw.done:
			}
		})
	}
	// checker copy
	d, dropped := nw.sampleDelay(src, nw.cfg.N)
	nw.count(m)
	if dropped {
		nw.obsDrops.Inc()
		return
	}
	time.AfterFunc(d.Std(), func() {
		select {
		case <-nw.done:
			return
		default:
		}
		nw.checkerMu.Lock()
		defer nw.checkerMu.Unlock()
		nw.obsChecker.Inc()
		nw.checker.OnStrobe(m, nw.Now())
	})
}

func (nw *Network) sampleDelay(src, dst int) (sim.Duration, bool) {
	nw.delayMu.Lock()
	defer nw.delayMu.Unlock()
	return sim.SampleDelay(nw.cfg.Delay, nw.rng, nw.Now(), src, dst)
}

func (nw *Network) count(m core.StrobeMsg) {
	nw.sentMu.Lock()
	nw.sent++
	nw.bytes += int64(m.WireSize())
	nw.sentMu.Unlock()
	nw.obsSends.Inc()
	nw.obsBytes.Add(int64(m.WireSize()))
}

// Results of a live run.
type Results struct {
	Occurrences []core.Occurrence
	Markers     []sim.Time
	Truth       []world.Interval
	Confusion   stats.Confusion
	Horizon     sim.Time
	Sent        int64
	Bytes       int64
}

// Stop shuts the network down after draining in-flight deliveries for the
// settle duration, finishes the checker, and scores against the recorded
// ground truth with tolerance tol.
func (nw *Network) Stop(settle time.Duration, tol sim.Duration) Results {
	sp := nw.cfg.Obs.StartSpanAt("live.stop", nw.Now())
	time.Sleep(settle)
	horizon := nw.Now()
	nw.stopOnce.Do(func() { close(nw.done) })
	nw.wg.Wait()
	sp.EndAt(nw.Now())
	if nw.Metrics != nil {
		_ = nw.Metrics.Close()
	}

	nw.checkerMu.Lock()
	nw.checker.Finish(horizon)
	occ := nw.checker.Occurrences()
	markers := nw.checker.Markers()
	nw.checkerMu.Unlock()

	nw.truthMu.Lock()
	log := append([]world.Event(nil), nw.truth...)
	nw.truthMu.Unlock()

	res := Results{
		Occurrences: occ, Markers: markers, Horizon: horizon,
	}
	nw.sentMu.Lock()
	res.Sent, res.Bytes = nw.sent, nw.bytes
	nw.sentMu.Unlock()

	if nw.cfg.Pred != nil {
		pred := func(get func(obj int, attr string) float64) bool {
			return nw.cfg.Pred.Holds(liveState{n: nw.cfg.N, get: get})
		}
		res.Truth = world.TrueIntervals(log, pred, horizon)
		res.Confusion = core.Score(occ, res.Truth, markers, tol, horizon)
	}
	return res
}

// liveState adapts the truth log convention (object index == proc index)
// to predicate.State.
type liveState struct {
	n   int
	get func(obj int, attr string) float64
}

// Get implements predicate.State.
func (s liveState) Get(proc int, name string) float64 { return s.get(proc, name) }

// NumProcs implements predicate.State.
func (s liveState) NumProcs() int { return s.n }
