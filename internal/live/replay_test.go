package live

import (
	"testing"
	"time"

	"pervasive/internal/core"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
	"pervasive/internal/workload"
)

// TestLiveReplayMatchesTrace is the live leg of cross-engine
// record/replay: feeding a decoded trace through the goroutine engine
// must reproduce the trace's mutation stream exactly in the ground-truth
// log (values and order). Timestamps are wall-clock and detection is
// scheduling-dependent, so — per the live engine's documented
// contract — only the value stream is byte-compared.
func TestLiveReplayMatchesTrace(t *testing.T) {
	const horizon = 400 * sim.Millisecond
	gen := workload.HallTraffic{
		Seed: 9, Doors: 3,
		MeanArrival: 4 * sim.Millisecond, MeanStay: 40 * sim.Millisecond,
		InitialOccupancy: 5,
	}
	tr := &workload.Trace{
		Horizon: horizon,
		Meta:    map[string]string{"scenario": "hall"},
		Events:  gen.Events(horizon),
	}
	dec, err := workload.Decode(tr.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}

	nw := Start(Config{
		N: 3, Seed: 1, Kind: core.VectorStrobe,
		Delay: sim.NewDeltaBounded(200),
		Pred:  predicate.MustParse("sum(x) - sum(y) > 10"),
	})
	// Speed 50: ~400ms of trace in ~8ms wall, still strictly ordered.
	bound := nw.FeedEvents(dec.Events, Feed{Speed: 50})
	res := nw.Stop(50*time.Millisecond, 5*sim.Millisecond)

	truth := nw.TruthLog()
	if len(truth) != len(dec.Events) {
		t.Fatalf("truth log has %d events, trace has %d", len(truth), len(dec.Events))
	}
	if workload.ValuesDigest(truth) != workload.ValuesDigest(bound) {
		t.Fatal("live truth log diverged from the fed trace stream")
	}
	// The identity binding keeps (obj, attr, val) unchanged, so the
	// digest must also match the trace itself.
	if workload.ValuesDigest(truth) != workload.ValuesDigest(dec.Events) {
		t.Fatal("identity-bound replay diverged from the decoded trace")
	}
	// Detection sanity only: the checker saw the strobes the feed drove.
	if res.Sent == 0 {
		t.Fatal("replay drove no strobe traffic")
	}
}
