package flight

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"pervasive/internal/obs"
	"pervasive/internal/sim"
)

// DumpVersion is the current dump format version, carried in every
// header so readers can reject formats they do not understand.
const DumpVersion = 1

// Event is one decoded flight record in a dump: Rec with the kind and
// attribute resolved to strings. Peer is -1 when the event has no
// counterpart process (the field is always emitted — 0 is a valid
// process index, so omitempty would be ambiguous).
type Event struct {
	Kind      string   `json:"kind"`
	Proc      int      `json:"proc"`
	At        sim.Time `json:"at"`
	Peer      int      `json:"peer"`
	Epoch     int      `json:"epoch,omitempty"`
	Seq       uint64   `json:"seq,omitempty"`
	Attr      string   `json:"attr,omitempty"`
	Value     float64  `json:"value,omitempty"`
	Clock     uint64   `json:"clock,omitempty"`
	PeerClock uint64   `json:"peer_clock,omitempty"`
}

// Dump is one trigger-scoped flush of the recorder: the last-K events
// of every involved process, merged into one (At, Proc, record order)
// sequence, plus the trigger that fired and — when the harness attaches
// one — the obs snapshot of the run at dump time. A dump is the recent
// causal context of a detection or fault, not a whole-run trace.
type Dump struct {
	Version  int      `json:"version"`
	Trigger  string   `json:"trigger"`
	At       sim.Time `json:"at"`
	TimeBase string   `json:"time_base"`
	N        int      `json:"n"`     // total processes in the run
	Procs    []int    `json:"procs"` // processes whose rings were flushed
	Events   []Event  `json:"events,omitempty"`
	// Metrics optionally embeds the obs snapshot taken when the dump was
	// triggered, making each dump self-describing about the run state.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// Snapshot builds a Dump of the involved processes' rings (all rings
// when procs is empty) without invoking the trigger sink. Events are
// ordered by (At, Proc, intra-ring order), which is deterministic for
// any one execution: the DES is single-threaded, and in live mode each
// ring is already in that process's program order.
func (r *Recorder) Snapshot(trigger string, at sim.Time, procs ...int) *Dump {
	if r == nil {
		return nil
	}
	involved := procs
	if len(involved) == 0 {
		involved = make([]int, len(r.rings))
		for i := range involved {
			involved[i] = i
		}
	} else {
		involved = append([]int(nil), involved...)
		sort.Ints(involved)
		// Deduplicate and drop out-of-range processes.
		kept := involved[:0]
		for i, p := range involved {
			if p < 0 || p >= len(r.rings) {
				continue
			}
			if i > 0 && len(kept) > 0 && kept[len(kept)-1] == p {
				continue
			}
			kept = append(kept, p)
		}
		involved = kept
	}

	var recs []Rec
	for _, p := range involved {
		if r.locks != nil {
			r.locks[p].Lock()
		}
		recs = r.rings[p].snap(recs)
		if r.locks != nil {
			r.locks[p].Unlock()
		}
	}
	// Rings were concatenated in ascending proc order with each ring
	// oldest-first, so a stable sort by At alone yields the documented
	// (At, Proc, intra-ring order) total order.
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].At < recs[j].At })

	d := &Dump{
		Version:  DumpVersion,
		Trigger:  trigger,
		At:       at,
		TimeBase: r.timeBase,
		N:        len(r.rings),
		Procs:    involved,
		Events:   make([]Event, 0, len(recs)),
	}
	for _, rec := range recs {
		d.Events = append(d.Events, Event{
			Kind:      rec.Kind.String(),
			Proc:      int(rec.Proc),
			At:        rec.At,
			Peer:      int(rec.Peer),
			Epoch:     int(rec.Epoch),
			Seq:       rec.Seq,
			Attr:      r.AttrName(rec.Attr),
			Value:     rec.Value,
			Clock:     rec.Clock,
			PeerClock: rec.PeerClock,
		})
	}
	return d
}

// ---- JSONL codec ----
//
// A dump serializes as a JSONL stream, mirroring trace.EncodeJSONL: a
// header line {"flight":{version, trigger, at, time_base, n, procs}},
// one Event object per line, and — when present — a trailing
// {"metrics":{...}} line. The "flight" header key is what lets
// cmd/tracedump sniff dump files apart from trace files.

type dumpHeader struct {
	Version  int      `json:"version"`
	Trigger  string   `json:"trigger"`
	At       sim.Time `json:"at"`
	TimeBase string   `json:"time_base"`
	N        int      `json:"n"`
	Procs    []int    `json:"procs"`
}

type dumpHeaderLine struct {
	Flight dumpHeader `json:"flight"`
}

type dumpTrailer struct {
	Metrics *obs.Snapshot `json:"metrics"`
}

// EncodeJSONL writes the dump as a JSONL stream.
func (d *Dump) EncodeJSONL(w io.Writer) error {
	if d == nil {
		return errors.New("flight: encode nil dump")
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode terminates each value with '\n'
	hdr := dumpHeaderLine{Flight: dumpHeader{
		Version: d.Version, Trigger: d.Trigger, At: d.At,
		TimeBase: d.TimeBase, N: d.N, Procs: d.Procs,
	}}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("flight: encode header: %w", err)
	}
	for i := range d.Events {
		if err := enc.Encode(&d.Events[i]); err != nil {
			return fmt.Errorf("flight: encode event %d: %w", i, err)
		}
	}
	if d.Metrics != nil {
		if err := enc.Encode(dumpTrailer{Metrics: d.Metrics}); err != nil {
			return fmt.Errorf("flight: encode metrics: %w", err)
		}
	}
	return bw.Flush()
}

// IsDumpHeader reports whether a JSONL first line belongs to a flight
// dump (as opposed to a trace, whose header is {"n":N}).
func IsDumpHeader(line []byte) bool {
	var probe struct {
		Flight *json.RawMessage `json:"flight"`
	}
	return json.Unmarshal(line, &probe) == nil && probe.Flight != nil
}

// DecodeJSONL reads a dump written by EncodeJSONL and validates it:
// version must be known, every event kind must parse and every process
// index must be in range.
func DecodeJSONL(r io.Reader) (*Dump, error) {
	dec := json.NewDecoder(r)
	var hdr dumpHeaderLine
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("flight: decode header: %w", err)
	}
	h := hdr.Flight
	if h.Version != DumpVersion {
		return nil, fmt.Errorf("flight: unsupported dump version %d (want %d)", h.Version, DumpVersion)
	}
	if h.N <= 0 {
		return nil, fmt.Errorf("flight: invalid process count %d", h.N)
	}
	d := &Dump{
		Version: h.Version, Trigger: h.Trigger, At: h.At,
		TimeBase: h.TimeBase, N: h.N, Procs: h.Procs,
	}
	for i := 0; ; i++ {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if errors.Is(err, io.EOF) {
				return d, nil
			}
			return nil, fmt.Errorf("flight: decode line %d: %w", i+2, err)
		}
		var probe struct {
			Kind    *string          `json:"kind"`
			Metrics *json.RawMessage `json:"metrics"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, fmt.Errorf("flight: decode line %d: %w", i+2, err)
		}
		if probe.Kind == nil {
			if probe.Metrics == nil {
				return nil, fmt.Errorf("flight: line %d is neither event nor metrics", i+2)
			}
			d.Metrics = new(obs.Snapshot)
			if err := json.Unmarshal(*probe.Metrics, d.Metrics); err != nil {
				return nil, fmt.Errorf("flight: decode metrics: %w", err)
			}
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("flight: decode event line %d: %w", i+2, err)
		}
		if ParseKind(ev.Kind) == KindNone {
			return nil, fmt.Errorf("flight: event line %d has unknown kind %q", i+2, ev.Kind)
		}
		if ev.Proc < 0 || ev.Proc >= d.N {
			return nil, fmt.Errorf("flight: event line %d has process %d out of range", i+2, ev.Proc)
		}
		d.Events = append(d.Events, ev)
	}
}
