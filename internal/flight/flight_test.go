package flight

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"pervasive/internal/obs"
	"pervasive/internal/sim"
)

func TestNilRecorderNoops(t *testing.T) {
	var r *Recorder
	r.Record(Rec{Kind: Sense, Proc: 0})
	r.SetTimeBase("wall-us")
	r.SetTrigger(func(*Dump) { t.Fatal("trigger on nil recorder") })
	r.TriggerDump("x", 0)
	if r.N() != 0 || r.Cap() != 0 || r.Concurrent() || r.TimeBase() != "" {
		t.Fatal("nil recorder accessors must return zero values")
	}
	if r.Intern("attr") != 0 || r.AttrName(1) != "" {
		t.Fatal("nil recorder interning must be inert")
	}
	if r.Snapshot("x", 0) != nil {
		t.Fatal("nil recorder snapshot must be nil")
	}
}

func TestRingWrapKeepsLastK(t *testing.T) {
	r := New(2, 4)
	for i := 1; i <= 10; i++ {
		r.Record(Rec{Kind: Sense, Proc: 0, Seq: uint64(i), At: sim.Time(i)})
	}
	d := r.Snapshot("test", 10, 0)
	if len(d.Events) != 4 {
		t.Fatalf("got %d events, want ring capacity 4", len(d.Events))
	}
	for i, ev := range d.Events {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("event %d: seq %d, want %d (last-K oldest-first)", i, ev.Seq, want)
		}
	}
}

func TestRecordDropsOutOfRangeProc(t *testing.T) {
	r := New(2, 4)
	r.Record(Rec{Kind: Sense, Proc: 7})
	r.Record(Rec{Kind: Sense, Proc: -1})
	if d := r.Snapshot("test", 0); len(d.Events) != 0 {
		t.Fatalf("out-of-range records must be dropped, got %d", len(d.Events))
	}
}

func TestInternRoundTrip(t *testing.T) {
	r := New(1, 4)
	a := r.Intern("temp")
	b := r.Intern("occupancy")
	if a == 0 || b == 0 || a == b {
		t.Fatalf("interned ids must be distinct and nonzero: %d %d", a, b)
	}
	if r.Intern("temp") != a {
		t.Fatal("re-interning must be stable")
	}
	if r.AttrName(a) != "temp" || r.AttrName(b) != "occupancy" {
		t.Fatal("AttrName must invert Intern")
	}
	if r.Intern("") != 0 || r.AttrName(0) != "" {
		t.Fatal("id 0 is reserved for no attribute")
	}
}

func TestSnapshotOrdersByTimeThenProc(t *testing.T) {
	r := New(3, 8)
	r.Record(Rec{Kind: Sense, Proc: 2, At: 5, Seq: 1})
	r.Record(Rec{Kind: Sense, Proc: 0, At: 5, Seq: 1})
	r.Record(Rec{Kind: Sense, Proc: 1, At: 3, Seq: 1})
	d := r.Snapshot("test", 5)
	got := make([]int, len(d.Events))
	for i, ev := range d.Events {
		got[i] = ev.Proc
	}
	if got[0] != 1 || got[1] != 0 || got[2] != 2 {
		t.Fatalf("order %v, want [1 0 2] (At, then Proc)", got)
	}
}

func TestSnapshotProcSubsetDedups(t *testing.T) {
	r := New(4, 4)
	for p := 0; p < 4; p++ {
		r.Record(Rec{Kind: Sense, Proc: int32(p), At: sim.Time(p)})
	}
	d := r.Snapshot("test", 4, 2, 0, 2, 9, -1)
	if len(d.Procs) != 2 || d.Procs[0] != 0 || d.Procs[1] != 2 {
		t.Fatalf("procs %v, want [0 2]", d.Procs)
	}
	if len(d.Events) != 2 {
		t.Fatalf("got %d events, want 2", len(d.Events))
	}
}

func TestTriggerDump(t *testing.T) {
	r := New(2, 4)
	r.Record(Rec{Kind: Detect, Proc: 1, At: 9})
	var got *Dump
	r.SetTrigger(func(d *Dump) { got = d })
	r.TriggerDump("detect", 9, 1)
	if got == nil || got.Trigger != "detect" || got.At != 9 || len(got.Events) != 1 {
		t.Fatalf("trigger sink got %+v", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := New(2, 8)
	r.SetTimeBase("virtual")
	attr := r.Intern("x")
	r.Record(Rec{Kind: Sense, Proc: 0, Peer: NoPeer, At: 1, Seq: 1, Attr: attr, Value: 2.5, Clock: 1})
	r.Record(Rec{Kind: Recv, Proc: 1, Peer: 0, At: 2, Seq: 1, Clock: 0, PeerClock: 1})
	d := r.Snapshot("signal", 2)
	d.Metrics = &obs.Snapshot{TimeBase: "virtual", Counters: []obs.CounterSnap{{Name: "c", Value: 3}}}

	var buf bytes.Buffer
	if err := d.EncodeJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.Bytes()[:bytes.IndexByte(buf.Bytes(), '\n')]
	if !IsDumpHeader(first) {
		t.Fatalf("header not recognized: %s", first)
	}
	if IsDumpHeader([]byte(`{"n":4}`)) {
		t.Fatal("trace header misidentified as dump")
	}

	back, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Trigger != "signal" || back.TimeBase != "virtual" || back.N != 2 {
		t.Fatalf("header mismatch: %+v", back)
	}
	if len(back.Events) != 2 || back.Events[0].Attr != "x" || back.Events[0].Value != 2.5 {
		t.Fatalf("events mismatch: %+v", back.Events)
	}
	if back.Events[1].Peer != 0 || back.Events[1].PeerClock != 1 {
		t.Fatalf("recv event mismatch: %+v", back.Events[1])
	}
	if back.Metrics == nil || len(back.Metrics.Counters) != 1 {
		t.Fatalf("metrics trailer lost: %+v", back.Metrics)
	}
}

func TestDecodeRejectsBadDumps(t *testing.T) {
	cases := map[string]string{
		"bad version": `{"flight":{"version":99,"n":2,"procs":[0]}}`,
		"bad n":       `{"flight":{"version":1,"n":0,"procs":[]}}`,
		"bad kind": `{"flight":{"version":1,"n":2,"procs":[0]}}
{"kind":"warp","proc":0,"at":1,"peer":-1}`,
		"bad proc": `{"flight":{"version":1,"n":2,"procs":[0]}}
{"kind":"sense","proc":5,"at":1,"peer":-1}`,
	}
	for name, in := range cases {
		if _, err := DecodeJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decode accepted invalid dump", name)
		}
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	r := NewConcurrent(4, 64)
	if !r.Concurrent() {
		t.Fatal("NewConcurrent must report concurrent mode")
	}
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 1; i <= 200; i++ {
				r.Record(Rec{Kind: Sense, Proc: int32(p), Seq: uint64(i), At: sim.Time(i)})
			}
		}(p)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Snapshot("probe", sim.Time(i))
		}
	}()
	wg.Wait()
	<-done
	d := r.Snapshot("final", 200)
	if len(d.Events) != 4*64 {
		t.Fatalf("got %d events, want %d", len(d.Events), 4*64)
	}
}

func TestKindStringParseRoundTrip(t *testing.T) {
	for k := Sense; k <= Recover; k++ {
		if ParseKind(k.String()) != k {
			t.Fatalf("kind %d does not round-trip through %q", k, k.String())
		}
	}
	if ParseKind("none") != KindNone || ParseKind("bogus") != KindNone {
		t.Fatal("unknown kinds must parse to KindNone")
	}
	if Kind(200).String() != "invalid" {
		t.Fatal("out-of-range kind must stringify as invalid")
	}
}
