package flight

import (
	"testing"
)

// sampleDump builds a minimal three-process execution: sensor p0
// senses twice, its strobes reach checker p2 (via one relay hop
// through p1 for seq 1), and the second apply flips the predicate.
func sampleDump() *Dump {
	return &Dump{
		Version: DumpVersion, Trigger: "detect", At: 40, TimeBase: "virtual",
		N: 3, Procs: []int{0, 1, 2},
		Events: []Event{
			{Kind: "sense", Proc: 0, At: 10, Peer: -1, Seq: 1, Clock: 1, Attr: "x", Value: 1},
			{Kind: "recv", Proc: 1, At: 15, Peer: 0, Seq: 1, PeerClock: 1},
			{Kind: "recv", Proc: 2, At: 20, Peer: 0, Seq: 1, PeerClock: 1},
			{Kind: "apply", Proc: 2, At: 20, Peer: 0, Seq: 1, PeerClock: 1},
			{Kind: "sense", Proc: 0, At: 25, Peer: -1, Seq: 2, Clock: 2, Attr: "x", Value: 5},
			{Kind: "recv", Proc: 2, At: 30, Peer: 0, Seq: 2, PeerClock: 2},
			{Kind: "apply", Proc: 2, At: 30, Peer: 0, Seq: 2, PeerClock: 2},
			{Kind: "detect", Proc: 2, At: 30, Peer: -1, Value: 1},
		},
	}
}

func TestBuildDAGEdges(t *testing.T) {
	g := BuildDAG(sampleDump())
	has := func(from, to int) bool {
		for _, j := range g.Edges[from] {
			if j == to {
				return true
			}
		}
		return false
	}
	// Message edges: sense seq 1 (node 0) → recvs at p1 and p2 and the
	// apply; sense seq 2 (node 4) → recv/apply at p2.
	for _, e := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {4, 5}, {4, 6}} {
		if !has(e[0], e[1]) {
			t.Errorf("missing message edge %d->%d", e[0], e[1])
		}
	}
	// Program order: p2's recv → apply → ... → detect chain.
	for _, e := range [][2]int{{2, 3}, {3, 5}, {5, 6}, {6, 7}, {0, 4}} {
		if !has(e[0], e[1]) {
			t.Errorf("missing program-order edge %d->%d", e[0], e[1])
		}
	}
}

func TestValidateCleanDump(t *testing.T) {
	if issues := BuildDAG(sampleDump()).Validate(); len(issues) != 0 {
		t.Fatalf("clean dump reported issues: %v", issues)
	}
}

func TestValidateFlagsViolations(t *testing.T) {
	cases := map[string]func(*Dump){
		"sense seq regression": func(d *Dump) { d.Events[4].Seq = 1 },
		"sense clock stuck":    func(d *Dump) { d.Events[4].Clock = 1 },
		"apply out of order": func(d *Dump) {
			d.Events[3].Seq, d.Events[3].PeerClock = 2, 2
			d.Events[6].Seq, d.Events[6].PeerClock = 1, 1
		},
		"wire clock mismatch": func(d *Dump) { d.Events[5].PeerClock = 7 },
	}
	for name, mutate := range cases {
		d := sampleDump()
		mutate(d)
		if issues := BuildDAG(d).Validate(); len(issues) == 0 {
			t.Errorf("%s: no issue reported", name)
		}
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	d := sampleDump()
	// Move the first sense after its own delivery in recorded order:
	// p0's program order then runs recv-matching sense seq 1 backwards.
	d.Events[0], d.Events[4] = d.Events[4], d.Events[0]
	// Now sense seq 2 (at index 0) precedes sense seq 1 (index 4) in
	// p0's program order while seq 1's message edge targets events that
	// precede seq 2's — fabricate a receive at p0 closing the loop.
	d.Events = append(d.Events, Event{Kind: "recv", Proc: 0, At: 5, Peer: 0, Seq: 1, PeerClock: 1})
	g := BuildDAG(d)
	// The mutation may or may not produce a literal cycle depending on
	// edge direction; assert Validate flags *something* (seq regression
	// at minimum) rather than calling the mangled dump consistent.
	if issues := g.Validate(); len(issues) == 0 {
		t.Fatal("mangled dump validated clean")
	}
}

func TestCriticalPath(t *testing.T) {
	g := BuildDAG(sampleDump())
	path := g.CriticalPath()
	if len(path) == 0 {
		t.Fatal("no critical path for a dump with a detect")
	}
	if last := g.Events[path[len(path)-1]]; last.Kind != "detect" {
		t.Fatalf("path must end at the detect, ends at %s", last.Kind)
	}
	if first := g.Events[path[0]]; first.Kind != "sense" {
		t.Fatalf("path must start at a sense, starts at %s", first.Kind)
	}
	// The flipping chain sense#2 → recv → apply → detect must be there.
	want := map[int]bool{4: true, 5: true, 6: true, 7: true}
	for _, i := range path {
		delete(want, i)
	}
	if len(want) != 0 {
		t.Fatalf("path %v misses flipping-chain nodes %v", path, want)
	}
	// Causal order: indices of the chain appear in order.
	pos := map[int]int{}
	for k, i := range path {
		pos[i] = k
	}
	if !(pos[4] < pos[6] && pos[6] < pos[7]) {
		t.Fatalf("path %v is not in causal order", path)
	}
}

func TestCriticalPathNoDetect(t *testing.T) {
	d := sampleDump()
	d.Events = d.Events[:7] // drop the detect
	if path := BuildDAG(d).CriticalPath(); path != nil {
		t.Fatalf("path without detect: %v", path)
	}
}
