package flight

import (
	"fmt"
	"sort"
)

// Happens-before reconstruction. A dump's events carry everything the
// strobe protocol puts on the wire — (proc, epoch, seq) identity and
// the sender's logical clock component — so the causal DAG can be
// rebuilt structurally, without trusting engine time:
//
//   - program order: consecutive events of one process (rings are in
//     program order; the dump merge preserves it per process);
//   - message order: the Sense event that emitted strobe (p, epoch,
//     seq) precedes every Recv/Apply of that strobe at any process.
//
// Validate then checks the clock rules the protocol guarantees (SVC1/
// SSC1: own component strictly increasing per epoch; checker applies
// in increasing Seq per sender epoch) against the reconstructed DAG,
// and that the DAG is acyclic — engine time may not order concurrent
// events, but it must never invert a causal edge.

// DAG is the happens-before graph over a dump's events.
type DAG struct {
	Events []Event // node i is Events[i]
	// Edges[i] lists the direct successors of node i (program-order and
	// message edges), each target index strictly ordering after i.
	Edges [][]int
}

// senseKey identifies the sense event behind a strobe on the wire.
type senseKey struct {
	proc, epoch int
	seq         uint64
}

// BuildDAG reconstructs the happens-before DAG of a dump.
func BuildDAG(d *Dump) *DAG {
	g := &DAG{Events: d.Events, Edges: make([][]int, len(d.Events))}

	// Program order: chain each process's events in dump order.
	last := make(map[int]int, len(d.Procs))
	for i, ev := range d.Events {
		if j, ok := last[ev.Proc]; ok {
			g.Edges[j] = append(g.Edges[j], i)
		}
		last[ev.Proc] = i
	}

	// Message order: Sense(p, epoch, seq) → every Recv/Apply of it.
	senses := make(map[senseKey]int, len(d.Events))
	for i, ev := range d.Events {
		if ev.Kind == Sense.String() {
			senses[senseKey{ev.Proc, ev.Epoch, ev.Seq}] = i
		}
	}
	for i, ev := range d.Events {
		if ev.Kind != Recv.String() && ev.Kind != Apply.String() {
			continue
		}
		if ev.Peer < 0 || ev.Seq == 0 {
			continue
		}
		if j, ok := senses[senseKey{ev.Peer, ev.Epoch, ev.Seq}]; ok && j != i {
			g.Edges[j] = append(g.Edges[j], i)
		}
	}
	return g
}

// Validate checks the DAG and the dump's stamps against the protocol's
// clock rules. It returns the violations found (empty = consistent):
//
//  1. acyclicity — a cycle means recorded time inverted a causal edge;
//  2. per (proc, epoch), Sense events carry strictly increasing Seq
//     and strictly increasing Clock (rules SVC1/SSC1: the emitter
//     ticks its own component at every relevant event);
//  3. per (checker proc, sender, sender epoch), Apply events carry
//     strictly increasing Seq (the checker's staleness discipline);
//  4. a Recv/Apply whose PeerClock disagrees with the matched Sense's
//     Clock — the wire stamp must be the stamp the sender recorded.
func (g *DAG) Validate() []string {
	var issues []string

	// 1: Kahn's algorithm; leftovers are on a cycle.
	indeg := make([]int, len(g.Events))
	for _, succ := range g.Edges {
		for _, j := range succ {
			indeg[j]++
		}
	}
	queue := make([]int, 0, len(g.Events))
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, j := range g.Edges[i] {
			if indeg[j]--; indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if seen != len(g.Events) {
		issues = append(issues, fmt.Sprintf("cycle: %d of %d events are causally self-dependent", len(g.Events)-seen, len(g.Events)))
	}

	// 2: sender-side monotonicity per (proc, epoch).
	type pe struct{ proc, epoch int }
	lastSense := make(map[pe]Event)
	for _, ev := range g.Events {
		if ev.Kind != Sense.String() {
			continue
		}
		k := pe{ev.Proc, ev.Epoch}
		if prev, ok := lastSense[k]; ok {
			if ev.Seq <= prev.Seq {
				issues = append(issues, fmt.Sprintf("p%d epoch %d: sense seq %d after %d (must strictly increase)", ev.Proc, ev.Epoch, ev.Seq, prev.Seq))
			}
			if ev.Clock <= prev.Clock {
				issues = append(issues, fmt.Sprintf("p%d epoch %d: sense clock %d after %d (own component must tick)", ev.Proc, ev.Epoch, ev.Clock, prev.Clock))
			}
		}
		lastSense[k] = ev
	}

	// 3: checker apply order per (proc, peer, epoch).
	type ppe struct{ proc, peer, epoch int }
	lastApply := make(map[ppe]uint64)
	for _, ev := range g.Events {
		if ev.Kind != Apply.String() || ev.Peer < 0 {
			continue
		}
		k := ppe{ev.Proc, ev.Peer, ev.Epoch}
		if prev, ok := lastApply[k]; ok && ev.Seq <= prev {
			issues = append(issues, fmt.Sprintf("p%d: applied strobe (p%d epoch %d seq %d) after seq %d (staleness discipline violated)", ev.Proc, ev.Peer, ev.Epoch, ev.Seq, prev))
		}
		lastApply[k] = ev.Seq
	}

	// 4: wire stamp vs sender record.
	senses := make(map[senseKey]Event)
	for _, ev := range g.Events {
		if ev.Kind == Sense.String() {
			senses[senseKey{ev.Proc, ev.Epoch, ev.Seq}] = ev
		}
	}
	for _, ev := range g.Events {
		if (ev.Kind != Recv.String() && ev.Kind != Apply.String()) || ev.Peer < 0 || ev.PeerClock == 0 {
			continue
		}
		if s, ok := senses[senseKey{ev.Peer, ev.Epoch, ev.Seq}]; ok && s.Clock != 0 && s.Clock != ev.PeerClock {
			issues = append(issues, fmt.Sprintf("p%d %s of (p%d epoch %d seq %d): wire clock %d != sender's recorded %d", ev.Proc, ev.Kind, ev.Peer, ev.Epoch, ev.Seq, ev.PeerClock, s.Clock))
		}
	}
	return issues
}

// CriticalPath walks back from the dump's last Detect event through the
// causal chain that produced it: the Apply that flipped the predicate,
// the Recv that delivered the strobe, the Sense that emitted it — and
// then, recursively, the latest strobe the sender had merged before
// that sense (its freshest causal input). The returned indices are in
// causal order (earliest first); nil when the dump holds no detection.
func (g *DAG) CriticalPath() []int {
	detect := -1
	for i := len(g.Events) - 1; i >= 0; i-- {
		if g.Events[i].Kind == Detect.String() {
			detect = i
			break
		}
	}
	if detect < 0 {
		return nil
	}

	// Index sense events and per-process event lists once.
	senses := make(map[senseKey]int, len(g.Events))
	byProc := make(map[int][]int)
	for i, ev := range g.Events {
		if ev.Kind == Sense.String() {
			senses[senseKey{ev.Proc, ev.Epoch, ev.Seq}] = i
		}
		byProc[ev.Proc] = append(byProc[ev.Proc], i)
	}
	// prevAt returns the latest event of proc with kind, strictly before
	// dump index i.
	prevAt := func(proc int, i int, kind string) int {
		evs := byProc[proc]
		// Binary search for the position of i in proc's event list.
		pos := sort.SearchInts(evs, i)
		for j := pos - 1; j >= 0; j-- {
			if g.Events[evs[j]].Kind == kind {
				return evs[j]
			}
		}
		return -1
	}

	path := []int{detect}
	visited := map[int]bool{detect: true}

	// The Apply that flipped the predicate is the checker's nearest
	// preceding apply (the checker records Apply, then Detect).
	cur := prevAt(g.Events[detect].Proc, detect, Apply.String())
	for cur >= 0 && !visited[cur] {
		visited[cur] = true
		path = append(path, cur)
		ev := g.Events[cur]
		switch ev.Kind {
		case Apply.String():
			// The Recv that carried this strobe to the checker, if the
			// transport's record made it into the dump window.
			if r := matchRecv(g, byProc[ev.Proc], cur, ev); r >= 0 && !visited[r] {
				visited[r] = true
				path = append(path, r)
			}
			cur = lookupSense(senses, ev)
		case Sense.String():
			// The sender's freshest causal input before this sense: the
			// latest strobe it had received and merged.
			if r := prevAt(ev.Proc, cur, Recv.String()); r >= 0 {
				cur = lookupSense(senses, g.Events[r])
				if cur >= 0 && !visited[cur] {
					visited[r] = true
					path = append(path, r)
				}
			} else {
				cur = -1
			}
		default:
			cur = -1
		}
	}

	// Collected newest-first; reverse into causal order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// matchRecv finds the Recv at the apply's process carrying the same
// strobe identity, at or before the apply.
func matchRecv(g *DAG, procEvents []int, applyIdx int, apply Event) int {
	pos := sort.SearchInts(procEvents, applyIdx)
	for j := pos - 1; j >= 0; j-- {
		ev := g.Events[procEvents[j]]
		if ev.Kind == Recv.String() && ev.Peer == apply.Peer && ev.Epoch == apply.Epoch && ev.Seq == apply.Seq {
			return procEvents[j]
		}
	}
	return -1
}

// lookupSense resolves a Recv/Apply event to its originating Sense.
func lookupSense(senses map[senseKey]int, ev Event) int {
	if ev.Peer < 0 || ev.Seq == 0 {
		return -1
	}
	if i, ok := senses[senseKey{ev.Peer, ev.Epoch, ev.Seq}]; ok {
		return i
	}
	return -1
}
