// Package flight is the always-on causal flight recorder: fixed-capacity
// per-process ring buffers of compact binary event records, stamped by
// the run's own logical clocks rather than wall time. Recording is
// allocation-free and, with the nil *Recorder, free — every exported
// method is a nil-receiver no-op, the same disabled fast path contract
// as internal/obs (enforced by pervalint's fastpath analyzer).
//
// The recorder never keeps a whole-run trace. Each process owns a ring
// of the last K events; a *trigger* — a fault-plan firing, a checker
// detection, or an explicit signal — flushes the rings of the involved
// processes into a Dump: the recent causal context of the thing that
// just happened, ordered by (engine time, process, record order) and
// carrying the strobe epoch, per-process sequence number and logical
// clock component of every event. cmd/tracedump reconstructs the
// happens-before DAG from those stamps (see dag.go).
//
// Two construction modes mirror the two engines: New builds a
// single-threaded recorder for the DES (plain stores, no locks on the
// hot path); NewConcurrent adds a per-ring mutex for the live engine's
// goroutine-per-node execution. Record on a concurrent recorder locks
// only the target process's ring, so nodes never contend except with a
// concurrent Snapshot of their own ring.
package flight

import (
	"sync"

	"pervasive/internal/sim"
)

// Kind is the type of a recorded event.
type Kind uint8

// Event kinds. Sense/Recv/Drop are the network-plane half (recorded by
// sensors and the transport); Apply/Stale/Detect/Clear are the checker
// half; Crash/Recover are fault-plan transitions.
const (
	KindNone Kind = iota
	Sense         // local sense event: clock tick + strobe broadcast
	Recv          // transport delivered a message to this process
	Drop          // transport dropped a message bound for this process
	Apply         // checker applied a strobe to its view
	Stale         // checker discarded a strobe (stale seq/epoch/duplicate)
	Detect        // predicate became true in the checker's view
	Clear         // predicate became false again
	Crash         // fault plan took the process down
	Recover       // process rejoined: fresh clock, bumped epoch
)

var kindNames = [...]string{
	KindNone: "none",
	Sense:    "sense",
	Recv:     "recv",
	Drop:     "drop",
	Apply:    "apply",
	Stale:    "stale",
	Detect:   "detect",
	Clear:    "clear",
	Crash:    "crash",
	Recover:  "recover",
}

// String names the kind (the JSONL wire spelling).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "invalid"
}

// ParseKind inverts String; unknown names map to KindNone.
func ParseKind(s string) Kind {
	for k, name := range kindNames {
		if name == s && k != int(KindNone) {
			return Kind(k)
		}
	}
	return KindNone
}

// NoPeer marks a record without a counterpart process.
const NoPeer int32 = -1

// Rec is one binary flight record: a fixed-size value with no pointers,
// so ring writes are single struct stores and rings never anchor heap
// garbage. Clock is the *sender-side* logical component of the event
// (the emitting process's own vector entry, or the scalar value);
// PeerClock, on Recv/Apply records, is the counterpart component
// carried by the message — the pair is what lets tracedump check the
// strobe clock rules against the dump.
type Rec struct {
	Kind      Kind
	Proc      int32  // process the event happened at
	Peer      int32  // counterpart process, NoPeer when none
	Epoch     int32  // crash/recovery epoch of the stamped process
	Attr      uint32 // interned attribute/variable name, 0 = none
	Seq       uint64 // per-process, per-epoch sense sequence number
	At        sim.Time
	Clock     uint64
	PeerClock uint64
	Value     float64
}

// Stamped is implemented by transport payloads that carry a logical
// identity (core.StrobeMsg, core.ReportMsg): epoch and seq identify the
// originating sense event, clock is the sender's own logical component
// at that event. The stamp is extracted once, at message origination
// (network.SendStamped / BroadcastStamped carry it in plain Message
// fields from there) — never on the per-delivery path, where an
// interface assertion per record would cost more than the ring store
// itself.
type Stamped interface {
	FlightStamp() (epoch int, seq int, clock uint64)
}

// Stamp is the logical identity of a message as plain values: the field
// layout Rec uses for its Epoch/Seq/PeerClock columns. Transports carry
// a Stamp inside each Message so that delivery- and drop-time records
// are three integer copies, with no payload introspection.
type Stamp struct {
	Epoch int32
	Seq   uint64
	Clock uint64
}

// StampOf extracts v's stamp when it implements Stamped, the zero Stamp
// otherwise. Origination-time convenience — callers holding a concrete
// message type should call its FlightStamp directly, and nothing on a
// per-delivery path should call this at all (the type assertion here is
// exactly the cost the Message stamp field exists to avoid).
func StampOf(v any) Stamp {
	if st, ok := v.(Stamped); ok {
		e, s, c := st.FlightStamp()
		return Stamp{Epoch: int32(e), Seq: uint64(s), Clock: c}
	}
	return Stamp{}
}

// ring is one process's fixed-capacity event history.
type ring struct {
	buf   []Rec
	next  int    // index of the slot the next Record overwrites
	total uint64 // lifetime records, total > len(buf) means wrapped
}

// Recorder records flight events for n processes. The nil Recorder is
// the disabled fast path: every method is a no-op. Construct with New
// (single-threaded, for the DES) or NewConcurrent (per-ring mutexes,
// for the live engine).
type Recorder struct {
	rings []ring
	locks []sync.Mutex // per-ring; nil in single-threaded mode

	timeBase string // "virtual" (DES) or "wall-us" (live)

	// Attribute interning: Rec stores a uint32 id instead of a string so
	// records stay pointer-free. The table is tiny (bound variable names)
	// and read-mostly; sensors intern once per sense event.
	internMu sync.RWMutex
	names    []string
	ids      map[string]uint32

	trigMu  sync.Mutex
	trigger func(*Dump)
}

// New builds a single-threaded recorder: n processes, the last perProc
// events kept per process. Record and Snapshot must be called from one
// goroutine (the DES thread); use NewConcurrent for the live engine.
func New(n, perProc int) *Recorder {
	return newRecorder(n, perProc, false)
}

// NewConcurrent builds a recorder safe for concurrent Record calls from
// goroutine-per-node engines: each process ring has its own mutex.
func NewConcurrent(n, perProc int) *Recorder {
	return newRecorder(n, perProc, true)
}

func newRecorder(n, perProc int, concurrent bool) *Recorder {
	if n <= 0 {
		n = 1
	}
	if perProc <= 0 {
		perProc = DefaultPerProc
	}
	r := &Recorder{
		rings:    make([]ring, n),
		names:    []string{""}, // id 0 = no attribute
		ids:      make(map[string]uint32, 8),
		timeBase: "virtual",
	}
	for i := range r.rings {
		r.rings[i].buf = make([]Rec, perProc)
	}
	if concurrent {
		r.locks = make([]sync.Mutex, n)
	}
	return r
}

// DefaultPerProc is the per-process ring capacity when the caller does
// not choose one: enough to hold a detection's recent causal context
// (last ~quarter second of a busy sensor) without mattering for memory.
const DefaultPerProc = 256

// N returns the number of process rings (0 for the nil recorder).
func (r *Recorder) N() int {
	if r == nil {
		return 0
	}
	return len(r.rings)
}

// Cap returns the per-process ring capacity.
func (r *Recorder) Cap() int {
	if r == nil || len(r.rings) == 0 {
		return 0
	}
	return len(r.rings[0].buf)
}

// Concurrent reports whether the recorder was built with NewConcurrent.
func (r *Recorder) Concurrent() bool {
	return r != nil && r.locks != nil
}

// TimeBase returns the label of the time base Rec.At values live in.
func (r *Recorder) TimeBase() string {
	if r == nil {
		return ""
	}
	return r.timeBase
}

// SetTimeBase labels the recorder's time base: "virtual" for DES engine
// time (the default), "wall-us" for the live engine's wall-clock
// microseconds. Dumps embed the label so tracedump never compares
// spans across bases.
func (r *Recorder) SetTimeBase(base string) {
	if r == nil {
		return
	}
	r.timeBase = base
}

// SetTrigger installs the dump sink invoked by TriggerDump. The harness
// uses it to attach the obs snapshot and collect dumps; fn runs on the
// triggering goroutine.
func (r *Recorder) SetTrigger(fn func(*Dump)) {
	if r == nil {
		return
	}
	r.trigMu.Lock()
	r.trigger = fn
	r.trigMu.Unlock()
}

// Intern maps an attribute/variable name to its stable record id.
// Id 0 is reserved for "no attribute"; Intern("") returns 0.
func (r *Recorder) Intern(name string) uint32 {
	if r == nil || name == "" {
		return 0
	}
	r.internMu.RLock()
	id, ok := r.ids[name]
	r.internMu.RUnlock()
	if ok {
		return id
	}
	r.internMu.Lock()
	defer r.internMu.Unlock()
	if id, ok := r.ids[name]; ok {
		return id
	}
	id = uint32(len(r.names))
	r.names = append(r.names, name)
	r.ids[name] = id
	return id
}

// AttrName inverts Intern; unknown ids return "".
func (r *Recorder) AttrName(id uint32) string {
	if r == nil || id == 0 {
		return ""
	}
	r.internMu.RLock()
	defer r.internMu.RUnlock()
	if int(id) >= len(r.names) {
		return ""
	}
	return r.names[id]
}

// Record appends one event to its process's ring, overwriting the
// oldest once full. Out-of-range processes are dropped silently — the
// recorder is diagnostics, it must never turn into a panic source.
// The single-threaded path is two bounds checks and a struct store.
func (r *Recorder) Record(rec Rec) {
	if r == nil {
		return
	}
	p := uint(rec.Proc)
	if p >= uint(len(r.rings)) {
		return
	}
	if r.locks != nil {
		r.recordLocked(p, rec)
		return
	}
	r.rings[p].put(rec)
}

// recordLocked is the concurrent-mode slow path. Keeping the mutex
// calls out of Record keeps Record under the inlining budget, so the
// DES hot path (transport Recv/Drop records) stores the Rec straight
// into the ring with no intermediate copy.
func (r *Recorder) recordLocked(p uint, rec Rec) {
	r.locks[p].Lock()
	r.rings[p].put(rec)
	r.locks[p].Unlock()
}

// RecordUnlocked is Record minus the concurrent-mode dispatch, small
// enough to inline into single-threaded hot paths: the Rec the caller
// builds is stored straight into the ring with no intermediate copy or
// call. It is only for callers that own the recorder's thread — the DES
// transport and sensors, where the engine guarantees one goroutine.
// On a recorder built with NewConcurrent it skips the ring lock, so
// concurrent callers must keep using Record (the transport dispatches
// on Concurrent() once per record).
func (r *Recorder) RecordUnlocked(rec Rec) {
	if r == nil {
		return
	}
	p := uint(rec.Proc)
	if p >= uint(len(r.rings)) {
		return
	}
	g := &r.rings[p]
	g.buf[g.next] = rec
	g.next++
	if g.next == len(g.buf) {
		g.next = 0
	}
	g.total++
}

func (g *ring) put(rec Rec) {
	g.buf[g.next] = rec
	g.next++
	if g.next == len(g.buf) {
		g.next = 0
	}
	g.total++
}

// snapRing copies one ring's contents oldest-first (caller holds the
// lock in concurrent mode).
func (g *ring) snap(out []Rec) []Rec {
	if g.total >= uint64(len(g.buf)) {
		out = append(out, g.buf[g.next:]...)
		return append(out, g.buf[:g.next]...)
	}
	return append(out, g.buf[:g.next]...)
}

// TriggerDump snapshots the rings of the involved processes (all of
// them when procs is empty) into a Dump and hands it to the SetTrigger
// sink. trigger names what fired (e.g. "detect", "fault:crash(2)",
// "signal"); at is the engine time of the firing.
func (r *Recorder) TriggerDump(trigger string, at sim.Time, procs ...int) {
	if r == nil {
		return
	}
	d := r.Snapshot(trigger, at, procs...)
	r.trigMu.Lock()
	fn := r.trigger
	r.trigMu.Unlock()
	if fn != nil {
		fn(d)
	}
}
