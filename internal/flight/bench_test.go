package flight

import (
	"testing"

	"pervasive/internal/sim"
)

// stampedPayload mimics core.StrobeMsg's Stamped implementation.

func BenchmarkRecord(b *testing.B) {
	r := New(8, DefaultPerProc)
	rec := Rec{Kind: Recv, Proc: 3, Peer: 1, At: sim.Time(1), Seq: 9, PeerClock: 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.At = sim.Time(i)
		r.Record(rec)
	}
}

func BenchmarkRecordNil(b *testing.B) {
	var r *Recorder
	rec := Rec{Kind: Recv, Proc: 3}
	for i := 0; i < b.N; i++ {
		r.Record(rec)
	}
}

func BenchmarkRecordConcurrent(b *testing.B) {
	r := NewConcurrent(8, DefaultPerProc)
	rec := Rec{Kind: Recv, Proc: 3, Peer: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.At = sim.Time(i)
		r.Record(rec)
	}
}

type notStamped struct{}

func BenchmarkStampAssertMiss(b *testing.B) {
	var p any = notStamped{}
	var sink uint64
	for i := 0; i < b.N; i++ {
		if st, ok := p.(Stamped); ok {
			_, _, c := st.FlightStamp()
			sink += c
		}
	}
	_ = sink
}
