package timing

import (
	"testing"
	"testing/quick"

	"pervasive/internal/intervals"
	"pervasive/internal/sim"
)

func sp(lo, hi int64) intervals.Span {
	return intervals.Span{Lo: sim.Time(lo), Hi: sim.Time(hi)}
}

func TestBeforeBasic(t *testing.T) {
	s := Spec{Rel: XBeforeY}
	if !s.Holds(sp(0, 10), sp(20, 30)) {
		t.Fatal("clear before rejected")
	}
	if !s.Holds(sp(0, 10), sp(10, 30)) {
		t.Fatal("meets should satisfy before (gap 0)")
	}
	if s.Holds(sp(0, 15), sp(10, 30)) {
		t.Fatal("overlapping accepted as before")
	}
	if s.Holds(sp(20, 30), sp(0, 10)) {
		t.Fatal("after accepted as before")
	}
}

func TestBeforeByGapWindow(t *testing.T) {
	// "X before Y by real time greater than 5 seconds" (§3.1.1.a.ii).
	s := Spec{Rel: XBeforeY, MinGap: 5 * sim.Second}
	if s.Holds(sp(0, int64(sim.Second)), sp(int64(3*sim.Second), int64(4*sim.Second))) {
		t.Fatal("gap of 2s accepted for MinGap 5s")
	}
	if !s.Holds(sp(0, int64(sim.Second)), sp(int64(7*sim.Second), int64(8*sim.Second))) {
		t.Fatal("gap of 6s rejected")
	}
	// Bounded window.
	w := Spec{Rel: XBeforeY, MinGap: 0, MaxGap: 30 * sim.Second}
	if !w.Holds(sp(0, 10), sp(int64(10*sim.Second), int64(11*sim.Second))) {
		t.Fatal("10s gap inside 30s window rejected")
	}
	if w.Holds(sp(0, 10), sp(int64(50*sim.Second), int64(51*sim.Second))) {
		t.Fatal("50s gap outside 30s window accepted")
	}
}

func TestOverlapsDuringMeets(t *testing.T) {
	if !(Spec{Rel: XOverlapsY}).Holds(sp(0, 10), sp(5, 20)) {
		t.Fatal("overlap rejected")
	}
	if (Spec{Rel: XOverlapsY}).Holds(sp(0, 10), sp(10, 20)) {
		t.Fatal("touching accepted as overlap")
	}
	if !(Spec{Rel: XDuringY}).Holds(sp(5, 8), sp(0, 10)) {
		t.Fatal("during rejected")
	}
	if !(Spec{Rel: XDuringY}).Holds(sp(0, 10), sp(0, 10)) {
		t.Fatal("equals should satisfy during (containment)")
	}
	if (Spec{Rel: XDuringY}).Holds(sp(0, 12), sp(0, 10)) {
		t.Fatal("superset accepted as during")
	}
	if !(Spec{Rel: XMeetsY, Slack: 2}).Holds(sp(0, 10), sp(11, 20)) {
		t.Fatal("meets within slack rejected")
	}
	if (Spec{Rel: XMeetsY, Slack: 2}).Holds(sp(0, 10), sp(15, 20)) {
		t.Fatal("meets outside slack accepted")
	}
}

func TestEmptySpansNeverMatch(t *testing.T) {
	for _, rel := range []Rel{XBeforeY, XOverlapsY, XDuringY, XMeetsY} {
		if (Spec{Rel: rel, Slack: 100}).Holds(sp(5, 5), sp(0, 10)) {
			t.Fatalf("%v matched empty X", rel)
		}
		if (Spec{Rel: rel, Slack: 100}).Holds(sp(0, 10), sp(5, 5)) {
			t.Fatalf("%v matched empty Y", rel)
		}
	}
}

func TestMatcherPairs(t *testing.T) {
	xs := []intervals.Span{sp(0, 10), sp(100, 110)}
	ys := []intervals.Span{sp(20, 30), sp(120, 130), sp(500, 510)}
	m := Matcher{Spec: Spec{Rel: XBeforeY, MaxGap: 50}}
	pairs := m.Pairs(xs, ys)
	// x0→y0 (gap 10), x1→y1 (gap 10); x?→y2 gaps too large.
	if len(pairs) != 2 {
		t.Fatalf("pairs %v", pairs)
	}
	if pairs[0].XIdx != 0 || pairs[0].YIdx != 0 || pairs[1].XIdx != 1 || pairs[1].YIdx != 1 {
		t.Fatalf("pairs %v", pairs)
	}
}

func TestMatcherUnmatchedY(t *testing.T) {
	xs := []intervals.Span{sp(0, 10)}
	ys := []intervals.Span{sp(20, 30), sp(500, 510)}
	m := Matcher{Spec: Spec{Rel: XBeforeY, MaxGap: 50}}
	un := m.UnmatchedY(xs, ys)
	if len(un) != 1 || un[0] != 1 {
		t.Fatalf("unmatched %v", un)
	}
}

// Property: XBeforeY with no gap constraints agrees with the Allen
// classification Before/Meets.
func TestBeforeAgreesWithAllenProperty(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		x := sp(int64(a), int64(a)+int64(b%40)+1)
		y := sp(int64(c), int64(c)+int64(d%40)+1)
		holds := (Spec{Rel: XBeforeY}).Holds(x, y)
		rel := intervals.Classify(x, y)
		want := rel == intervals.Before || rel == intervals.Meets
		return holds == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairsOneToOne(t *testing.T) {
	// Two passwords, three biometrics: each biometric takes the latest
	// unconsumed qualifying password; the third is unmatched.
	xs := []intervals.Span{sp(0, 10), sp(100, 110)}
	ys := []intervals.Span{sp(20, 30), sp(120, 130), sp(140, 150)}
	m := Matcher{Spec: Spec{Rel: XBeforeY, MaxGap: 100}}
	pairs := m.PairsOneToOne(xs, ys)
	if len(pairs) != 2 {
		t.Fatalf("pairs %v", pairs)
	}
	if pairs[0].XIdx != 0 || pairs[1].XIdx != 1 {
		t.Fatalf("pairs %v", pairs)
	}
	un := m.UnmatchedYOneToOne(xs, ys)
	if len(un) != 1 || un[0] != 2 {
		t.Fatalf("unmatched %v", un)
	}
}

func TestPairsOneToOnePrefersLatestX(t *testing.T) {
	// One biometric, two qualifying passwords: the latest is consumed.
	xs := []intervals.Span{sp(0, 10), sp(40, 50)}
	ys := []intervals.Span{sp(60, 70)}
	m := Matcher{Spec: Spec{Rel: XBeforeY, MaxGap: 100}}
	pairs := m.PairsOneToOne(xs, ys)
	if len(pairs) != 1 || pairs[0].XIdx != 1 {
		t.Fatalf("pairs %v", pairs)
	}
}

func TestSpecStrings(t *testing.T) {
	if (Spec{Rel: XBeforeY, MinGap: 5 * sim.Second}).String() == "" {
		t.Fatal("empty string")
	}
	if (Spec{Rel: XBeforeY, MinGap: 1, MaxGap: 2}).String() == "" {
		t.Fatal("empty string")
	}
	for _, r := range []Rel{XBeforeY, XOverlapsY, XDuringY, XMeetsY} {
		if r.String() == "" {
			t.Fatal("empty rel name")
		}
	}
}
