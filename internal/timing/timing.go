// Package timing implements the relative timing relations of the paper's
// specification design space (Section 3.1.1.a.ii): constraints of the form
// "X before Y", "X overlaps Y", or "X before Y by real time greater than
// 5 seconds" between the occurrence streams of two predicates, using the
// interval algebra of internal/intervals. The motivating application from
// [22] — secure banking, where a biometric key must be presented remotely
// *after* a password was entered across the network — is realized in
// examples/securebank.
package timing

import (
	"fmt"

	"pervasive/internal/intervals"
	"pervasive/internal/sim"
)

// Rel is a relative timing relation between an X interval and a Y
// interval on the single (real-time) axis.
type Rel int

// Supported relations. XBeforeY admits an optional real-time gap window;
// the pure Allen relations need none.
const (
	// XBeforeY: X ends before Y starts, with gap in [MinGap, MaxGap]
	// (MaxGap 0 means unbounded).
	XBeforeY Rel = iota
	// XOverlapsY: the intervals share at least one instant.
	XOverlapsY
	// XDuringY: X lies within Y.
	XDuringY
	// XMeetsY: X ends within Slack of Y's start.
	XMeetsY
)

// String names the relation.
func (r Rel) String() string {
	switch r {
	case XBeforeY:
		return "X before Y"
	case XOverlapsY:
		return "X overlaps Y"
	case XDuringY:
		return "X during Y"
	default:
		return "X meets Y"
	}
}

// Spec is one relative timing specification.
type Spec struct {
	Rel Rel
	// MinGap/MaxGap bound the real-time gap for XBeforeY ("before by more
	// than MinGap, at most MaxGap"); MaxGap 0 means no upper bound.
	MinGap, MaxGap sim.Duration
	// Slack tolerates boundary jitter for XMeetsY.
	Slack sim.Duration
}

// String renders the spec.
func (s Spec) String() string {
	if s.Rel == XBeforeY && (s.MinGap > 0 || s.MaxGap > 0) {
		if s.MaxGap > 0 {
			return fmt.Sprintf("X before Y by (%v, %v]", s.MinGap, s.MaxGap)
		}
		return fmt.Sprintf("X before Y by > %v", s.MinGap)
	}
	return s.Rel.String()
}

// Holds reports whether the pair (x, y) satisfies the spec.
func (s Spec) Holds(x, y intervals.Span) bool {
	if x.Empty() || y.Empty() {
		return false
	}
	switch s.Rel {
	case XBeforeY:
		if y.Lo < x.Hi {
			return false
		}
		gap := y.Lo - x.Hi
		if gap < s.MinGap {
			return false
		}
		if s.MaxGap > 0 && gap > s.MaxGap {
			return false
		}
		return true
	case XOverlapsY:
		return intervals.Intersects(x, y)
	case XDuringY:
		rel := intervals.Classify(x, y)
		return rel == intervals.During || rel == intervals.Starts ||
			rel == intervals.Finishes || rel == intervals.Equals
	case XMeetsY:
		d := y.Lo - x.Hi
		if d < 0 {
			d = -d
		}
		return d <= s.Slack
	}
	return false
}

// Match is one satisfied (x, y) pair.
type Match struct {
	X, Y       intervals.Span
	XIdx, YIdx int
}

// Pairs returns all (x, y) pairs from the two occurrence streams that
// satisfy the spec. Streams must be in increasing start order (detector
// output order); the scan exploits that to stay near-linear for the
// gap-bounded relations.
type Matcher struct {
	Spec Spec
}

// Pairs computes all matches.
func (m Matcher) Pairs(xs, ys []intervals.Span) []Match {
	var out []Match
	for xi, x := range xs {
		for yi, y := range ys {
			if m.Spec.Rel == XBeforeY && m.Spec.MaxGap > 0 &&
				y.Lo > x.Hi+m.Spec.MaxGap {
				break // ys are start-ordered: no later y can match this x
			}
			if m.Spec.Holds(x, y) {
				out = append(out, Match{X: x, Y: y, XIdx: xi, YIdx: yi})
			}
		}
	}
	return out
}

// PairsOneToOne matches every Y to at most one X and vice versa: each Y
// takes the latest still-unconsumed X that satisfies the spec (for
// XBeforeY this is the most recent qualifying password for each biometric
// presentation — the session semantics of [22]). Streams must be in
// increasing start order.
func (m Matcher) PairsOneToOne(xs, ys []intervals.Span) []Match {
	used := make([]bool, len(xs))
	var out []Match
	for yi, y := range ys {
		best := -1
		for xi, x := range xs {
			if !used[xi] && m.Spec.Holds(x, y) {
				best = xi // keep scanning: later xs start later — prefer the latest
			}
		}
		if best >= 0 {
			used[best] = true
			out = append(out, Match{X: xs[best], Y: y, XIdx: best, YIdx: yi})
		}
	}
	return out
}

// UnmatchedYOneToOne returns Y indices left unmatched by PairsOneToOne.
func (m Matcher) UnmatchedYOneToOne(xs, ys []intervals.Span) []int {
	matched := make([]bool, len(ys))
	for _, mt := range m.PairsOneToOne(xs, ys) {
		matched[mt.YIdx] = true
	}
	var out []int
	for i, ok := range matched {
		if !ok {
			out = append(out, i)
		}
	}
	return out
}

// UnmatchedY returns the indices of Y occurrences with no matching X —
// e.g. biometric presentations with no preceding password entry, the
// alarm condition of the secure-banking scenario.
func (m Matcher) UnmatchedY(xs, ys []intervals.Span) []int {
	matched := make([]bool, len(ys))
	for _, mt := range m.Pairs(xs, ys) {
		matched[mt.YIdx] = true
	}
	var out []int
	for i, ok := range matched {
		if !ok {
			out = append(out, i)
		}
	}
	return out
}
