package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Goroutine catches the exact shape of PR 4's live-engine pileup: a
// bare channel send inside a `time.AfterFunc` callback or a `go`
// closure. When the receiver stalls (a saturated mailbox, a finished
// run), every such send parks its goroutine forever — under load the
// old live engine accumulated one leaked goroutine per overflowing
// delivery. Asynchronous closures must make every send non-blocking:
// a select with a default case (counted drop) or a done-channel case
// (shutdown). A select whose only case is the send is still a blocking
// send and is flagged too.
//
// Named callees are chased through the module call graph: `go s.loop()`
// and `time.AfterFunc(d, s.fire)` run loop/fire on the new goroutine's
// terms just as a literal would, so their bodies (wherever declared)
// are held to the same rule, reported at the spawn site.
var Goroutine = &Analyzer{
	Name: "goroutine",
	Doc:  "channel sends in time.AfterFunc/go closures must be select-guarded (default or done case)",
	Run:  runGoroutine,
}

func runGoroutine(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isPkgFunc(calleeFunc(p.Info, n), "time", "AfterFunc") && len(n.Args) == 2 {
					if lit, ok := ast.Unparen(n.Args[1]).(*ast.FuncLit); ok {
						checkAsyncBody(p, lit, "time.AfterFunc callback")
					} else if fn := funcValue(p, n.Args[1]); fn != nil {
						checkAsyncCallee(p, n.Args[1].Pos(), fn, "time.AfterFunc callback")
					}
				}
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					checkAsyncBody(p, lit, "go closure")
				} else if fn := calleeFunc(p.Info, n.Call); fn != nil {
					checkAsyncCallee(p, n.Call.Pos(), fn, "go statement")
				}
			}
			return true
		})
	}
}

// checkAsyncBody flags unguarded sends lexically inside lit. Nested
// function literals are skipped: if they are themselves async they are
// found by the top-level walk, and otherwise they run on some other
// goroutine's terms.
func checkAsyncBody(p *Pass, lit *ast.FuncLit, where string) {
	inspectStack(lit.Body, func(n ast.Node, stack []ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		if sendIsSelectGuarded(send, stack) {
			return true
		}
		p.Reportf(send.Pos(), "blocking channel send in %s: a stalled receiver parks this goroutine forever (one leak per message); guard with a select carrying a default or done case", where)
		return true
	})
}

// funcValue resolves an expression used as a function value (s.fire,
// pkg.Handler) to its *types.Func, or nil.
func funcValue(p *Pass, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// checkAsyncCallee looks up a named callee's declaration in the module
// call graph and flags the spawn site if the body contains an unguarded
// send — the interprocedural twin of checkAsyncBody, reported where the
// goroutine is created (that is where the allow belongs, and the callee
// may be a shared helper that is fine on other goroutines' terms).
func checkAsyncCallee(p *Pass, at token.Pos, fn *types.Func, where string) {
	if p.Mod == nil || p.Mod.Graph == nil {
		return
	}
	fn = canonFunc(fn)
	fd := p.Mod.Graph.DeclOf[fn]
	if fd == nil || fd.Body == nil {
		return
	}
	var bad token.Pos
	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		if bad.IsValid() {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		if !sendIsSelectGuarded(send, stack) {
			bad = send.Pos()
		}
		return true
	})
	if bad.IsValid() {
		p.Reportf(at, "%s runs %s, which has a blocking channel send at %s: a stalled receiver parks this goroutine forever; guard the send with a select carrying a default or done case", where, FuncDisplay(fn), shortPos(p.Fset.Position(bad)))
	}
}

// sendIsSelectGuarded reports whether send is the communication of a
// select clause that has an escape hatch (at least one other case,
// default included).
func sendIsSelectGuarded(send *ast.SendStmt, stack []ast.Node) bool {
	// The ancestor path of a guarded send ends SelectStmt → BlockStmt →
	// CommClause, with the send as the clause's communication.
	if len(stack) < 3 {
		return false
	}
	clause, ok := stack[len(stack)-1].(*ast.CommClause)
	if !ok || clause.Comm != ast.Stmt(send) {
		return false
	}
	sel, ok := stack[len(stack)-3].(*ast.SelectStmt)
	if !ok {
		return false
	}
	return len(sel.Body.List) >= 2
}
