package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"unicode"
	"unicode/utf8"
)

// CodecPair guards the wire-format packages' round-trip contract. The
// repo's traces, checker batches and stamp batches are all hand-rolled
// varint codecs; the failure mode that motivates this analyzer is an
// encoder growing a field whose decoder (or round-trip test) never
// learns about it — the write path works, replay silently truncates.
//
// In each Config.CodecPkgs package, every exported Encode*/Append*/
// Write* function must have a Decode*/Read* counterpart (matched by
// stem: EncodeX↔DecodeX, WriteFile↔ReadFile; or through the receiver:
// Batch.AppendWire↔DecodeBatch), and the pair must be exercised
// together by at least one Test/Fuzz/Benchmark/Example function in the
// package's _test.go files — a round trip, not two disjoint unit tests
// that each check one direction against fixed bytes.
var CodecPair = &Analyzer{
	Name: "codecpair",
	Doc:  "require a Decode*/Read* counterpart and a shared round-trip test for every exported encoder in the wire-format packages",
	Run:  runCodecPair,
}

var encoderPrefixes = []string{"Encode", "Append", "Write"}
var decoderPrefixes = []string{"Decode", "Read"}

// codecFunc is one exported encoder or decoder declaration.
type codecFunc struct {
	name string
	recv string // receiver base type name, "" for package functions
	stem string // name minus its codec prefix
	pos  token.Pos
}

// codecStem splits name on the first matching prefix and returns the
// remainder, requiring it to be empty or to start a new word (upper
// case or digit) — so "Written" or "Reader" are not codec functions.
func codecStem(name string, prefixes []string) (string, bool) {
	for _, p := range prefixes {
		rest, ok := strings.CutPrefix(name, p)
		if !ok {
			continue
		}
		if rest == "" {
			return "", true
		}
		r, _ := utf8.DecodeRuneInString(rest)
		if unicode.IsUpper(r) || unicode.IsDigit(r) {
			return rest, true
		}
	}
	return "", false
}

func runCodecPair(p *Pass) {
	if !contains(p.Config.CodecPkgs, p.ImportPath) {
		return
	}
	var encoders, decoders []codecFunc
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() {
				continue
			}
			cf := codecFunc{name: fd.Name.Name, recv: recvBaseName(fd), pos: fd.Name.Pos()}
			if stem, ok := codecStem(fd.Name.Name, encoderPrefixes); ok {
				cf.stem = stem
				encoders = append(encoders, cf)
			} else if stem, ok := codecStem(fd.Name.Name, decoderPrefixes); ok {
				cf.stem = stem
				decoders = append(decoders, cf)
			}
		}
	}
	if len(encoders) == 0 {
		return
	}
	sort.Slice(encoders, func(i, j int) bool { return encoders[i].pos < encoders[j].pos })
	tests := loadTestRefs(p)
	for _, enc := range encoders {
		dec, ok := pairDecoder(enc, decoders)
		if !ok {
			p.Reportf(enc.pos, "exported encoder %s has no Decode*/Read* counterpart in this package: an encoder without a decoder cannot be round-tripped; add one or justify with //lint:allow codecpair(reason)", enc.name)
			continue
		}
		if !tests.sharedTest(enc.name, dec.name) {
			p.Reportf(enc.pos, "codec pair %s/%s has no round-trip test: no Test/Fuzz function in this package's _test.go files references both; encode-then-decode in one test so a format change cannot land half-way (//lint:allow codecpair(reason) to waive)", enc.name, dec.name)
		}
	}
}

// pairDecoder finds enc's counterpart, most specific rule first:
//
//  1. equal non-empty stems (EncodeX↔DecodeX, WriteFile↔ReadFile)
//  2. stem naming the other's receiver (Batch.AppendWire↔DecodeBatch)
//  3. equal receivers with both stems empty (Trace.Encode↔Trace.Decode)
//  4. both stems empty and exactly one side receiver-less — the
//     asymmetric convention where a method serializes itself and a
//     package-level constructor-decoder rebuilds it (Trace.Encode↔Decode)
func pairDecoder(enc codecFunc, decoders []codecFunc) (codecFunc, bool) {
	for _, d := range decoders {
		if enc.stem != "" && enc.stem == d.stem {
			return d, true
		}
	}
	for _, d := range decoders {
		if (d.stem != "" && d.stem == enc.recv && enc.recv != "") ||
			(enc.stem != "" && enc.stem == d.recv && d.recv != "") {
			return d, true
		}
	}
	for _, d := range decoders {
		if enc.stem == "" && d.stem == "" && enc.recv != "" && enc.recv == d.recv {
			return d, true
		}
	}
	for _, d := range decoders {
		if enc.stem == "" && d.stem == "" && (enc.recv == "") != (d.recv == "") {
			return d, true
		}
	}
	return codecFunc{}, false
}

// testRefs indexes which identifiers each test function of a package
// references. The loader deliberately loads only non-test files (the
// analyzers police production code), so the _test.go files are parsed
// here, syntax-only — identifier references need no type information.
type testRefs struct {
	// refs maps a test function name to the set of identifiers its body
	// mentions (as a bare Ident or a selector's Sel).
	refs map[string]map[string]bool
}

func loadTestRefs(p *Pass) *testRefs {
	tr := &testRefs{refs: make(map[string]map[string]bool)}
	dir := p.dir()
	if dir == "" {
		return tr
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return tr
	}
	fset := token.NewFileSet() // test files are not part of the analyzed fset
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, ent.Name()), nil, 0)
		if err != nil {
			continue // a broken test file is go test's problem, not ours
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isTestFuncName(fd.Name.Name) {
				continue
			}
			set := tr.refs[fd.Name.Name]
			if set == nil {
				set = make(map[string]bool)
				tr.refs[fd.Name.Name] = set
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					set[id.Name] = true
				}
				return true
			})
		}
	}
	return tr
}

func isTestFuncName(name string) bool {
	for _, p := range []string{"Test", "Fuzz", "Benchmark", "Example"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// sharedTest reports whether one test function references both names.
func (tr *testRefs) sharedTest(enc, dec string) bool {
	for _, set := range tr.refs {
		if set[enc] && set[dec] {
			return true
		}
	}
	return false
}

// dir returns the analyzed package's directory (for _test.go scanning).
func (p *Pass) dir() string {
	if p.Mod != nil {
		for _, pkg := range p.Mod.Loader.Packages() {
			if pkg.ImportPath == p.ImportPath {
				return pkg.Dir
			}
		}
	}
	if len(p.Files) > 0 {
		return filepath.Dir(p.Fset.Position(p.Files[0].Pos()).Filename)
	}
	return ""
}
