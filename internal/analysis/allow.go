package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The allow grammar is one comment per suppression:
//
//	//lint:allow <analyzer>(<reason>)
//
// placed either as a trailing comment on the offending line or as a
// full-line comment immediately above it. An allow anchored to a
// declaration — trailing on the declaration's first line, or the line
// above it — covers the whole declaration body, so one annotation on a
// function suppresses that analyzer throughout the function rather
// than only on its signature line. The reason is mandatory — an allow
// without one is itself a diagnostic — and an allow that no longer
// suppresses anything is reported as unused, so stale annotations
// cannot accumulate. An allow whose entire coverage is already
// provided by earlier allows for the same analyzer is dead by
// construction and reported as a duplicate (the common case: a
// trailing allow inside a function whose declaration already carries a
// decl-scoped allow). Deleting a load-bearing allow therefore fails
// `make lint` twice over: the original finding resurfaces.

const allowPrefix = "//lint:allow "

type allowEntry struct {
	pos       token.Position
	analyzer  string
	reason    string
	used      bool
	duplicate bool // same analyzer already allowed on this line
}

type allowIndex struct {
	// byLine maps file -> line -> entries covering that line.
	byLine map[string]map[int][]*allowEntry
	all    []*allowEntry
}

// parseAllows scans every comment of the package for allow annotations.
// Malformed annotations and annotations naming an analyzer outside the
// full inventory are reported immediately (analyzer "allow"). An allow
// for a known analyzer that is not in the enabled subset is parsed but
// not indexed: it cannot suppress anything this run, and it must not be
// reported as unused just because its analyzer was switched off.
func parseAllows(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer) (*allowIndex, []Diagnostic) {
	idx := &allowIndex{byLine: make(map[string]map[int][]*allowEntry)}
	var diags []Diagnostic
	report := func(pos token.Position, msg string) {
		diags = append(diags, Diagnostic{
			Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Analyzer: "allow", Message: msg,
		})
	}
	known := func(name string) bool {
		for _, a := range All() {
			if a.Name == name {
				return true
			}
		}
		return false
	}
	enabled := func(name string) bool {
		for _, a := range analyzers {
			if a.Name == name {
				return true
			}
		}
		return false
	}
	// Top-level declaration line ranges, for decl-scoped coverage: an
	// allow anchored to a declaration's first line covers the whole
	// declaration.
	type lineRange struct{ start, end int }
	declRanges := make(map[string][]lineRange)
	for _, f := range files {
		fname := fset.Position(f.Pos()).Filename
		for _, d := range f.Decls {
			declRanges[fname] = append(declRanges[fname], lineRange{
				start: fset.Position(d.Pos()).Line,
				end:   fset.Position(d.End()).Line,
			})
		}
	}
	cover := func(e *allowEntry, line int) {
		lines := idx.byLine[e.pos.Filename]
		if lines == nil {
			lines = make(map[int][]*allowEntry)
			idx.byLine[e.pos.Filename] = lines
		}
		lines[line] = append(lines[line], e)
	}
	// covers reports whether an already-indexed allow for analyzer name
	// covers line.
	covers := func(file string, line int, name string) bool {
		for _, prev := range idx.byLine[file][line] {
			if prev.analyzer == name {
				return true
			}
		}
		return false
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, strings.TrimSuffix(allowPrefix, " ")) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					report(pos, "malformed //lint:allow (want //lint:allow analyzer(reason))")
					continue
				}
				open := strings.IndexByte(rest, '(')
				if open <= 0 || !strings.HasSuffix(rest, ")") {
					report(pos, "malformed //lint:allow (want //lint:allow analyzer(reason))")
					continue
				}
				name := strings.TrimSpace(rest[:open])
				reason := strings.TrimSpace(rest[open+1 : len(rest)-1])
				if reason == "" {
					report(pos, "//lint:allow "+name+" needs a non-empty reason")
					continue
				}
				if !known(name) {
					report(pos, "//lint:allow names unknown analyzer "+name)
					continue
				}
				if !enabled(name) {
					continue
				}
				e := &allowEntry{pos: pos, analyzer: name, reason: reason}
				idx.all = append(idx.all, e)
				// A trailing comment covers its own line; a full-line
				// comment covers the next. Covering both is harmless and
				// keeps the grammar position-insensitive. Anchored to a
				// declaration's first line (trailing, or full-line
				// immediately above), the allow additionally covers the
				// whole declaration body.
				lines := []int{pos.Line, pos.Line + 1}
				for _, r := range declRanges[pos.Filename] {
					if r.start == pos.Line || r.start == pos.Line+1 {
						for line := r.start; line <= r.end; line++ {
							lines = append(lines, line)
						}
						break
					}
				}
				// An allow every one of whose covered lines is already
				// covered by earlier allows for the same analyzer can
				// never suppress anything they do not: it is dead, and
				// unused() reports it as a duplicate. It is not indexed,
				// so deleting the earlier allow revives this one.
				dup := true
				for _, line := range lines {
					if !covers(pos.Filename, line, name) {
						dup = false
						break
					}
				}
				if dup {
					e.duplicate = true
					continue
				}
				for _, line := range lines {
					cover(e, line)
				}
			}
		}
	}
	return idx, diags
}

// suppress reports whether an allow covers d, marking it used.
func (idx *allowIndex) suppress(d Diagnostic) bool {
	hit := false
	for _, e := range idx.byLine[d.File][d.Line] {
		if e.analyzer == d.Analyzer {
			e.used = true
			hit = true
		}
	}
	return hit
}

// unused returns diagnostics for allows that suppressed nothing,
// duplicates included.
func (idx *allowIndex) unused() []Diagnostic {
	var out []Diagnostic
	for _, e := range idx.all {
		if e.used {
			continue
		}
		msg := "unused //lint:allow " + e.analyzer + " annotation (no diagnostic suppressed; delete it)"
		if e.duplicate {
			msg = "duplicate //lint:allow " + e.analyzer + " (earlier allows for this analyzer already cover every line it covers; delete it)"
		}
		out = append(out, Diagnostic{
			Pos: e.pos, File: e.pos.Filename, Line: e.pos.Line, Col: e.pos.Column,
			Analyzer: "allow",
			Message:  msg,
		})
	}
	return out
}
