package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The allow grammar is one comment per suppression:
//
//	//lint:allow <analyzer>(<reason>)
//
// placed either as a trailing comment on the offending line or as a
// full-line comment immediately above it. The reason is mandatory — an
// allow without one is itself a diagnostic — and an allow that no longer
// suppresses anything is reported as unused, so stale annotations cannot
// accumulate. Deleting a load-bearing allow therefore fails `make lint`
// twice over: the original finding resurfaces.

const allowPrefix = "//lint:allow "

type allowEntry struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

type allowIndex struct {
	// byLine maps file -> line -> entries covering that line.
	byLine map[string]map[int][]*allowEntry
	all    []*allowEntry
}

// parseAllows scans every comment of the package for allow annotations.
// Malformed annotations and annotations naming an analyzer outside the
// full inventory are reported immediately (analyzer "allow"). An allow
// for a known analyzer that is not in the enabled subset is parsed but
// not indexed: it cannot suppress anything this run, and it must not be
// reported as unused just because its analyzer was switched off.
func parseAllows(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer) (*allowIndex, []Diagnostic) {
	idx := &allowIndex{byLine: make(map[string]map[int][]*allowEntry)}
	var diags []Diagnostic
	report := func(pos token.Position, msg string) {
		diags = append(diags, Diagnostic{
			Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Analyzer: "allow", Message: msg,
		})
	}
	known := func(name string) bool {
		for _, a := range All() {
			if a.Name == name {
				return true
			}
		}
		return false
	}
	enabled := func(name string) bool {
		for _, a := range analyzers {
			if a.Name == name {
				return true
			}
		}
		return false
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, strings.TrimSuffix(allowPrefix, " ")) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					report(pos, "malformed //lint:allow (want //lint:allow analyzer(reason))")
					continue
				}
				open := strings.IndexByte(rest, '(')
				if open <= 0 || !strings.HasSuffix(rest, ")") {
					report(pos, "malformed //lint:allow (want //lint:allow analyzer(reason))")
					continue
				}
				name := strings.TrimSpace(rest[:open])
				reason := strings.TrimSpace(rest[open+1 : len(rest)-1])
				if reason == "" {
					report(pos, "//lint:allow "+name+" needs a non-empty reason")
					continue
				}
				if !known(name) {
					report(pos, "//lint:allow names unknown analyzer "+name)
					continue
				}
				if !enabled(name) {
					continue
				}
				e := &allowEntry{pos: pos, analyzer: name, reason: reason}
				idx.all = append(idx.all, e)
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*allowEntry)
					idx.byLine[pos.Filename] = lines
				}
				// A trailing comment covers its own line; a full-line
				// comment covers the next. Covering both is harmless and
				// keeps the grammar position-insensitive.
				lines[pos.Line] = append(lines[pos.Line], e)
				lines[pos.Line+1] = append(lines[pos.Line+1], e)
			}
		}
	}
	return idx, diags
}

// suppress reports whether an allow covers d, marking it used.
func (idx *allowIndex) suppress(d Diagnostic) bool {
	hit := false
	for _, e := range idx.byLine[d.File][d.Line] {
		if e.analyzer == d.Analyzer {
			e.used = true
			hit = true
		}
	}
	return hit
}

// unused returns diagnostics for allows that suppressed nothing.
func (idx *allowIndex) unused() []Diagnostic {
	var out []Diagnostic
	for _, e := range idx.all {
		if !e.used {
			out = append(out, Diagnostic{
				Pos: e.pos, File: e.pos.Filename, Line: e.pos.Line, Col: e.pos.Column,
				Analyzer: "allow",
				Message:  "unused //lint:allow " + e.analyzer + " annotation (no diagnostic suppressed; delete it)",
			})
		}
	}
	return out
}
