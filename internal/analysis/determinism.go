package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism guards the repo's reproducibility contract: every run of
// the deterministic packages must be bit-for-bit identical at any -p
// (the property the byte-identical-tables regression test checks, and
// the property the paper's strobe-vs-physical-clock comparison rests
// on). The mechanically detectable ways to break it are flagged:
//
//   - wall-clock reads: time.Now, and the derived readers time.Since,
//     time.After and time.Tick, leak real time into virtual-time code.
//     The legitimate uses (span epochs, the live engine's pacing)
//     carry //lint:allow determinism(...) annotations.
//   - global math/rand: the un-seeded process-wide source is shared,
//     lock-ordered and unseedable per run; all randomness must flow
//     through stats.RNG streams owned by the run.
//   - environment reads: os.Getenv and os.ReadDir make a run depend on
//     ambient machine state that no seed pins down.
//   - range over a map: iteration order is randomized per run. A loop
//     that only collects keys which are later passed to a sort call in
//     the same function is exempt — that is the repo's sanctioned
//     collect-then-sort idiom.
//
// This analyzer is package-local by design: the interprocedural
// determtaint analyzer chases the same seeds across call-graph edges.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag wall-clock reads, global math/rand, environment reads and map-ordered iteration in the deterministic packages",
	Run:  runDeterminism,
}

// seededRandCtors are the math/rand package functions that construct an
// explicitly seeded generator rather than touching the global source.
var seededRandCtors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

// wallClockFuncs are the time package functions that read (or schedule
// against) the wall clock. time.AfterFunc is deliberately absent: its
// hygiene is the goroutine analyzer's business, and the live engine is
// wall-clock paced by design.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "After": true, "Tick": true}

// envReadFuncs are the os package functions that read ambient machine
// state.
var envReadFuncs = map[string]bool{"Getenv": true, "ReadDir": true}

// nondetCallDesc classifies call as a nondeterministic construct,
// returning a short description ("time.Now", "global math/rand.Intn",
// "os.Getenv") or "".
func nondetCallDesc(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return ""
	}
	switch pkg := fn.Pkg().Path(); {
	case pkg == "time" && wallClockFuncs[fn.Name()]:
		return "time." + fn.Name()
	case pkg == "os" && envReadFuncs[fn.Name()]:
		return "os." + fn.Name()
	case (pkg == "math/rand" || pkg == "math/rand/v2") && !seededRandCtors[fn.Name()]:
		return "global math/rand." + fn.Name()
	}
	return ""
}

func runDeterminism(p *Pass) {
	if !contains(p.Config.DeterministicPkgs, p.ImportPath) {
		return
	}
	for _, f := range p.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				switch desc := nondetCallDesc(p.Info, n); {
				case desc == "":
				case desc[0] == 't': // time.*
					p.Reportf(n.Pos(), "%s in deterministic package %s: use the engine's virtual clock, or annotate a wall-clock-only use with //lint:allow determinism(reason)", desc, p.Pkg.Name())
				case desc[0] == 'o': // os.*
					p.Reportf(n.Pos(), "%s in deterministic package %s: ambient machine state is not pinned by the run seed; thread configuration in explicitly, or annotate with //lint:allow determinism(reason)", desc, p.Pkg.Name())
				default: // global math/rand
					p.Reportf(n.Pos(), "%s in deterministic package %s: draw from a per-run stats.RNG stream instead", desc, p.Pkg.Name())
				}
			case *ast.RangeStmt:
				t := p.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if collectThenSorted(p.Info, n, stack) {
					return true
				}
				p.Reportf(n.Pos(), "range over map has nondeterministic iteration order: collect and sort the keys (or justify with //lint:allow determinism(reason))")
			}
			return true
		})
	}
}

// collectThenSorted reports whether the map range is the sanctioned
// collect-then-sort idiom: every statement in the body appends into the
// same collector, and the enclosing function later passes that
// collector to a sort call.
func collectThenSorted(info *types.Info, rs *ast.RangeStmt, stack []ast.Node) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	var target types.Object
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltinAppend(info, call) {
			return false
		}
		obj := lvalueObject(info, as.Lhs[0])
		if obj == nil {
			return false
		}
		if target == nil {
			target = obj
		} else if target != obj {
			return false
		}
	}
	if target == nil {
		return false
	}
	// Find the enclosing function body and look for a later sort call
	// over the collector.
	var fnBody *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			fnBody = fn.Body
		case *ast.FuncLit:
			fnBody = fn.Body
		}
		if fnBody != nil {
			break
		}
	}
	if fnBody == nil {
		return false
	}
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if pp := fn.Pkg().Path(); pp != "sort" && pp != "slices" {
			return true
		}
		for _, arg := range call.Args {
			found := false
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && info.Uses[id] == target {
					found = true
				}
				if sel, ok := a.(*ast.SelectorExpr); ok {
					if s := info.Selections[sel]; s != nil && s.Obj() == target {
						found = true
					}
				}
				return !found
			})
			if found {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	bi, ok := info.Uses[id].(*types.Builtin)
	return ok && bi.Name() == "append"
}

// lvalueObject resolves the assigned-to expression to its canonical
// object: the variable for an identifier, the field for a selector.
func lvalueObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		if s := info.Selections[e]; s != nil {
			return s.Obj()
		}
	}
	return nil
}
