package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Config scopes the analyzers to the packages whose invariants they
// enforce. The zero value checks nothing; DefaultConfig returns the
// repo's real scoping. Fixture tests substitute their own paths.
type Config struct {
	// DeterministicPkgs are the packages whose runs must be bit-for-bit
	// reproducible: wall-clock reads, global rand and map-ordered
	// iteration are flagged there.
	DeterministicPkgs []string
	// ClockPkg is the clock package whose SVC/SSC/VC/SC state the
	// clockrule analyzer guards.
	ClockPkg string
	// ClockRuleFuncs are the clock methods allowed to mutate clock
	// state (the paper's rule applications), besides New* constructors.
	ClockRuleFuncs []string
	// ObsPkg and FaultsPkg hold the nil-receiver no-op instrument types.
	ObsPkg    string
	FaultsPkg string
	// NoopTypes lists, per package import path, the types whose methods
	// must follow the nil-receiver fast-path discipline.
	NoopTypes map[string][]string
	// HotPkgs are the engine packages where string-keyed registry
	// lookups (Registry.Counter/Gauge/Histogram) inside loops are
	// flagged: instruments must be resolved once and held.
	HotPkgs []string
}

// DefaultConfig is pervalint's scoping for this repository.
func DefaultConfig() Config {
	const m = "pervasive"
	return Config{
		DeterministicPkgs: []string{
			m + "/internal/sim",
			m + "/internal/runner",
			m + "/internal/lattice",
			m + "/internal/core",
			m + "/internal/experiments",
			m + "/internal/clock",
			m + "/internal/live",
			m + "/internal/workload",
		},
		ClockPkg:       m + "/internal/clock",
		ClockRuleFuncs: []string{"Strobe", "OnStrobe", "Tick", "Send", "Receive", "MergeFrom", "MergeSparse", "Reset"},
		ObsPkg:         m + "/internal/obs",
		FaultsPkg:      m + "/internal/faults",
		NoopTypes: map[string][]string{
			m + "/internal/obs":    {"Counter", "Gauge", "Histogram", "LocalHist", "Registry", "Span"},
			m + "/internal/faults": {"Injector"},
			m + "/internal/flight": {"Recorder"},
		},
		HotPkgs: []string{
			m + "/internal/sim",
			m + "/internal/runner",
			m + "/internal/lattice",
			m + "/internal/core",
			m + "/internal/experiments",
			m + "/internal/live",
			m + "/internal/network",
		},
	}
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	ImportPath string
	Config     Config

	// Dep loads a module-local dependency package (memoized by the
	// loader), letting analyzers resolve the canonical obs/clock types.
	Dep func(path string) (*types.Package, error)

	analyzer string
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-tolerant Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, ClockRule, FastPath, Goroutine, Atomics}
}

// ByName resolves a comma-separated analyzer list ("" means all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// RunPackages loads each import path with the loader, runs the given
// analyzers over it, applies //lint:allow suppression, and reports
// unused or malformed allow annotations. Diagnostics come back sorted
// by file, line, column.
func RunPackages(l *Loader, cfg Config, analyzers []*Analyzer, paths []string) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		diags, err := runPackage(l, cfg, analyzers, pkg)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Message < b.Message
	})
	return all, nil
}

func runPackage(l *Loader, cfg Config, analyzers []*Analyzer, pkg *Package) ([]Diagnostic, error) {
	allows, allowDiags := parseAllows(l.Fset, pkg.Files, analyzers)
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:       l.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			ImportPath: pkg.ImportPath,
			Config:     cfg,
			Dep: func(path string) (*types.Package, error) {
				p, err := l.Load(path)
				if err != nil {
					return nil, err
				}
				return p.Types, nil
			},
			analyzer: a.Name,
			diags:    &raw,
		}
		a.Run(pass)
	}
	kept := allowDiags
	for _, d := range raw {
		if allows.suppress(d) {
			continue
		}
		kept = append(kept, d)
	}
	kept = append(kept, allows.unused()...)
	return kept, nil
}
