package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Config scopes the analyzers to the packages whose invariants they
// enforce. The zero value checks nothing; DefaultConfig returns the
// repo's real scoping. Fixture tests substitute their own paths.
type Config struct {
	// DeterministicPkgs are the packages whose runs must be bit-for-bit
	// reproducible: wall-clock reads, global rand and map-ordered
	// iteration are flagged there, and the determtaint analyzer flags
	// calls out of them into nondeterministic helpers anywhere in the
	// module.
	DeterministicPkgs []string
	// ClockPkg is the clock package whose SVC/SSC/VC/SC state the
	// clockrule analyzer guards.
	ClockPkg string
	// ClockRuleFuncs are the clock methods allowed to mutate clock
	// state (the paper's rule applications), besides New* constructors.
	ClockRuleFuncs []string
	// ObsPkg and FaultsPkg hold the nil-receiver no-op instrument types.
	ObsPkg    string
	FaultsPkg string
	// NoopTypes lists, per package import path, the types whose methods
	// must follow the nil-receiver fast-path discipline.
	NoopTypes map[string][]string
	// HotPkgs are the engine packages where string-keyed registry
	// lookups (Registry.Counter/Gauge/Histogram) inside loops are
	// flagged: instruments must be resolved once and held.
	HotPkgs []string
	// HotFuncs are the kernel functions whose transitive call closure
	// the hotpath analyzer proves allocation-free: qualified as
	// "pkgpath.Func" for package functions or "pkgpath.Type.Method"
	// for methods (pointer receivers match the bare type name).
	HotFuncs []string
	// CodecPkgs are the wire-format packages where every exported
	// Encode*/Append*/Write* must have a Decode*/Read* counterpart and
	// a round-trip test referencing both (codecpair analyzer).
	CodecPkgs []string
}

// DefaultConfig is pervalint's scoping for this repository.
func DefaultConfig() Config {
	const m = "pervasive"
	return Config{
		DeterministicPkgs: []string{
			m + "/internal/sim",
			m + "/internal/runner",
			m + "/internal/lattice",
			m + "/internal/core",
			m + "/internal/experiments",
			m + "/internal/clock",
			m + "/internal/live",
			m + "/internal/workload",
		},
		ClockPkg:       m + "/internal/clock",
		ClockRuleFuncs: []string{"Strobe", "OnStrobe", "Tick", "Send", "Receive", "MergeFrom", "MergeSparse", "Reset"},
		ObsPkg:         m + "/internal/obs",
		FaultsPkg:      m + "/internal/faults",
		NoopTypes: map[string][]string{
			m + "/internal/obs":    {"Counter", "Gauge", "Histogram", "LocalHist", "Registry", "Span"},
			m + "/internal/faults": {"Injector"},
			m + "/internal/flight": {"Recorder"},
		},
		HotPkgs: []string{
			m + "/internal/sim",
			m + "/internal/runner",
			m + "/internal/lattice",
			m + "/internal/core",
			m + "/internal/experiments",
			m + "/internal/live",
			m + "/internal/network",
		},
		// The bench-proven kernels: DES schedule/step (BENCH_kernel's
		// 0 allocs/op), the strobe stamp/merge kernels, the checker
		// tree's O(1) incremental clause evaluation, and the workload
		// trace codec's per-event primitives.
		HotFuncs: []string{
			m + "/internal/sim.Engine.AtPri",
			m + "/internal/sim.Engine.Step",
			m + "/internal/clock.DiffStrobeVector.Strobe",
			m + "/internal/clock.Vector.MergeSparse",
			m + "/internal/clock.SparseStrobeVector.OnStrobe",
			m + "/internal/checker.Tree.applyDelta",
			m + "/internal/workload.appendUvarint",
			m + "/internal/workload.decoder.uvarint",
		},
		CodecPkgs: []string{
			m + "/internal/workload",
			m + "/internal/checker",
			m + "/internal/clock",
		},
	}
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Module is the whole-program context shared by every analyzer pass of
// one run: the loader, the analyzed packages, and the call graph built
// over every module-local package the load pulled in (analyzed or
// not), so reachability analyses see helpers behind package
// boundaries.
type Module struct {
	Loader *Loader
	Config Config
	Graph  *CallGraph
	// Pkgs are the packages being analyzed this run, in request order.
	Pkgs []*Package

	analyzers []*Analyzer
	allows    map[string]*allowIndex // import path -> parsed allows
	taint     *taintResult           // memoized by the determtaint analyzer
	hot       *hotResult             // memoized by the hotpath analyzer

	clockSanct   map[*types.Func]bool    // memoized by clockrule (graph-sanctioned writers)
	regLookups   map[*types.Func]string  // memoized by fastpath (helpers doing registry lookups)
	atomicFields map[types.Object]string // memoized by atomics (module-wide atomic fields)
}

// allowsFor parses (memoized) the //lint:allow annotations of pkg.
// Dependency packages outside the analyzed set get an index too, so
// interprocedural analyzers can honor seed-site suppressions there;
// unused-allow reporting still happens only for analyzed packages.
func (m *Module) allowsFor(pkg *Package) (*allowIndex, []Diagnostic) {
	if idx, ok := m.allows[pkg.ImportPath]; ok {
		return idx, nil
	}
	idx, diags := parseAllows(m.Loader.Fset, pkg.Files, m.analyzers)
	m.allows[pkg.ImportPath] = idx
	return idx, diags
}

// allowedAt reports whether an allow for analyzer covers (file, line)
// in pkg, marking it used. Interprocedural analyzers use it to honor
// suppressions at seed sites in packages other than the one being
// analyzed.
func (m *Module) allowedAt(pkg *Package, analyzer string, pos token.Position) bool {
	idx, _ := m.allowsFor(pkg)
	return idx.suppress(Diagnostic{File: pos.Filename, Line: pos.Line, Analyzer: analyzer})
}

// Pass carries one package through one analyzer.
type Pass struct {
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	ImportPath string
	Config     Config

	// Mod is the whole-program context: call graph, sibling packages,
	// cross-package allow indexes.
	Mod *Module

	// Dep loads a module-local dependency package (memoized by the
	// loader), letting analyzers resolve the canonical obs/clock types.
	Dep func(path string) (*types.Package, error)

	analyzer string
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-tolerant Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// allAnalyzers is populated by init rather than a composite literal:
// the interprocedural analyzers reach All() through the allow parser,
// and a direct literal would be an initialization cycle.
var allAnalyzers []*Analyzer

func init() {
	allAnalyzers = []*Analyzer{Determinism, DetermTaint, ClockRule, FastPath, HotPath, CodecPair, Goroutine, Atomics}
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return allAnalyzers
}

// ByName resolves a comma-separated analyzer list ("" means all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Result is one full run: the diagnostics plus the whole-program
// context (call graph, taint paths) behind them, for pervalint's
// -graph and -why output.
type Result struct {
	Diagnostics []Diagnostic
	Mod         *Module
}

// RunPackages loads each import path with the loader, runs the given
// analyzers over it, applies //lint:allow suppression, and reports
// unused or malformed allow annotations. Diagnostics come back sorted
// by file, line, column.
func RunPackages(l *Loader, cfg Config, analyzers []*Analyzer, paths []string) ([]Diagnostic, error) {
	res, err := Run(l, cfg, analyzers, paths)
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

// Run is RunPackages with the whole-program context kept: packages are
// loaded first (pulling their module-local dependency closure into the
// loader), the call graph is built once over everything loaded, and
// only then do the analyzers run — so every pass sees the same
// module-wide graph. Allow suppression is applied per package after
// every pass has run, because interprocedural analyzers mark allows
// used across package boundaries (a determtaint seed suppression in a
// helper package must not surface as unused).
func Run(l *Loader, cfg Config, analyzers []*Analyzer, paths []string) (*Result, error) {
	mod := &Module{
		Loader:    l,
		Config:    cfg,
		analyzers: analyzers,
		allows:    make(map[string]*allowIndex),
	}
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		mod.Pkgs = append(mod.Pkgs, pkg)
	}
	mod.Graph = BuildCallGraph(l.Fset, l.Packages())

	// Phase 1: run every analyzer over every package, collecting raw
	// diagnostics per package. Allow indexes are built (and their
	// grammar diagnostics collected) up front so cross-package used
	// marking lands in the same indexes suppression reads later.
	raws := make([][]Diagnostic, len(mod.Pkgs))
	grammar := make([][]Diagnostic, len(mod.Pkgs))
	for i, pkg := range mod.Pkgs {
		_, gd := mod.allowsFor(pkg)
		grammar[i] = gd
	}
	for i, pkg := range mod.Pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Fset:       l.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				ImportPath: pkg.ImportPath,
				Config:     cfg,
				Mod:        mod,
				Dep: func(path string) (*types.Package, error) {
					p, err := l.Load(path)
					if err != nil {
						return nil, err
					}
					return p.Types, nil
				},
				analyzer: a.Name,
				diags:    &raws[i],
			}
			a.Run(pass)
		}
	}

	// Phase 2: suppression, then unused-allow reporting.
	var all []Diagnostic
	for i, pkg := range mod.Pkgs {
		idx := mod.allows[pkg.ImportPath]
		kept := grammar[i]
		for _, d := range raws[i] {
			if idx.suppress(d) {
				continue
			}
			kept = append(kept, d)
		}
		kept = append(kept, idx.unused()...)
		all = append(all, kept...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Message < b.Message
	})
	return &Result{Diagnostics: all, Mod: mod}, nil
}
