package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CallGraph is the module-wide call graph, built once per pervalint run
// over every loaded package and shared by all analyzers through
// Pass.Mod. Nodes are the module's declared functions and methods
// (*types.Func, canonicalized through Origin); edges are call sites.
//
// Resolution is static-first: a direct call to a package function or a
// concrete method is one edge. A call through an interface method is
// resolved against the module's implements-sets — one edge per module
// type whose method set satisfies the interface, marked Dynamic — so
// taint and allocation analyses see through the repo's deliberate
// seams (sim.DelayModel, clock.VectorState, workload.Source, ...).
// Calls through plain function values (fields, parameters) are not
// resolvable without dataflow and are deliberately out of scope; the
// repo's invariant-bearing indirection is interface-shaped.
type CallGraph struct {
	Fset *token.FileSet

	// Callees maps a function to its outgoing call edges, in source
	// order. Callers is the reverse index.
	Callees map[*types.Func][]CallEdge
	Callers map[*types.Func][]CallEdge

	// DeclOf maps a module function to its declaration; PkgOf to the
	// loaded package declaring it. Functions without a body (external
	// linkage, which the module does not use) are absent.
	DeclOf map[*types.Func]*ast.FuncDecl
	PkgOf  map[*types.Func]*Package

	// Stats, for pervalint -graph.
	NumFuncs        int // module functions with bodies
	NumStaticEdges  int
	NumDynamicEdges int // interface-call edges after implements-set resolution
	NumIfaceSites   int // interface call sites resolved
	NumUnresolved   int // calls through plain function values (no edge)
}

// CallEdge is one call site: Caller invokes Callee at Pos. Dynamic
// marks an interface-dispatch edge resolved via the implements-sets;
// Iface then names the interface method the source actually calls.
type CallEdge struct {
	Caller  *types.Func
	Callee  *types.Func
	Pos     token.Pos
	Dynamic bool
	Iface   *types.Func
}

// BuildCallGraph constructs the graph over pkgs (normally every
// module-local package the loader has seen). Bodies of function
// literals are attributed to the declaration lexically enclosing them:
// a call made inside a closure is an edge out of the declaring
// function, which is the right granularity for reachability analyses.
func BuildCallGraph(fset *token.FileSet, pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Fset:    fset,
		Callees: make(map[*types.Func][]CallEdge),
		Callers: make(map[*types.Func][]CallEdge),
		DeclOf:  make(map[*types.Func]*ast.FuncDecl),
		PkgOf:   make(map[*types.Func]*Package),
	}
	// Deterministic package order regardless of load order.
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })

	for _, pkg := range sorted {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn = canonFunc(fn)
				g.DeclOf[fn] = fd
				g.PkgOf[fn] = pkg
				g.NumFuncs++
			}
		}
	}
	impls := buildImplementsSets(sorted, g)
	for fn, fd := range g.DeclOf {
		g.addEdges(fn, fd, g.PkgOf[fn], impls)
	}
	// Source-order edges make path output and tests reproducible.
	for fn := range g.Callees {
		es := g.Callees[fn]
		sort.Slice(es, func(i, j int) bool { return es[i].Pos < es[j].Pos })
	}
	for fn := range g.Callers {
		es := g.Callers[fn]
		sort.Slice(es, func(i, j int) bool { return es[i].Pos < es[j].Pos })
	}
	return g
}

// canonFunc canonicalizes a method of an instantiated generic type to
// its origin declaration (a no-op for ordinary functions).
func canonFunc(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// implSets indexes, per interface method, the concrete module methods
// that can stand behind it.
type implSets struct {
	// byIfaceMethod maps an interface's *types.Func (the abstract
	// method object) to the concrete implementations.
	byIfaceMethod map[*types.Func][]*types.Func
	numPairs      int
}

// buildImplementsSets computes, for every interface type declared in
// the module, the set of module-declared named types implementing it,
// and resolves each interface method to the concrete methods.
func buildImplementsSets(pkgs []*Package, g *CallGraph) *implSets {
	type ifaceInfo struct {
		iface *types.Interface
		tn    *types.TypeName
	}
	var ifaces []ifaceInfo
	var concrete []*types.TypeName
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named := namedType(tn.Type())
			if named == nil {
				continue
			}
			if iface, ok := named.Underlying().(*types.Interface); ok {
				if iface.NumMethods() > 0 {
					ifaces = append(ifaces, ifaceInfo{iface, tn})
				}
				continue
			}
			concrete = append(concrete, tn)
		}
	}
	sets := &implSets{byIfaceMethod: make(map[*types.Func][]*types.Func)}
	for _, ii := range ifaces {
		for _, tn := range concrete {
			t := tn.Type()
			var impl types.Type
			switch {
			case types.Implements(t, ii.iface):
				impl = t
			case types.Implements(types.NewPointer(t), ii.iface):
				impl = types.NewPointer(t)
			default:
				continue
			}
			sets.numPairs++
			for i := 0; i < ii.iface.NumMethods(); i++ {
				am := ii.iface.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(impl, true, am.Pkg(), am.Name())
				cm, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				cm = canonFunc(cm)
				if _, declared := g.DeclOf[cm]; !declared {
					continue // embedded method from outside the module
				}
				sets.byIfaceMethod[am] = append(sets.byIfaceMethod[am], cm)
			}
		}
	}
	for am := range sets.byIfaceMethod {
		ms := sets.byIfaceMethod[am]
		sort.Slice(ms, func(i, j int) bool { return funcKey(ms[i]) < funcKey(ms[j]) })
	}
	return sets
}

// funcKey is a stable sort key: "pkgpath.Recv.Name" / "pkgpath.Name".
func funcKey(fn *types.Func) string {
	key := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedType(derefType(sig.Recv().Type())); n != nil {
			key = n.Obj().Name() + "." + key
		}
	}
	if fn.Pkg() != nil {
		key = fn.Pkg().Path() + "." + key
	}
	return key
}

func derefType(t types.Type) types.Type {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// addEdges walks fn's body (closures included) and records every call.
func (g *CallGraph) addEdges(fn *types.Func, fd *ast.FuncDecl, pkg *Package, impls *implSets) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pkg.Info, call)
		if callee == nil {
			// Conversions and builtins also land here; only count a
			// genuine function-value call as unresolved.
			if isFuncValueCall(pkg.Info, call) {
				g.NumUnresolved++
			}
			return true
		}
		callee = canonFunc(callee)
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
				// Interface dispatch: fan out to the implements-set.
				g.NumIfaceSites++
				for _, cm := range impls.byIfaceMethod[callee] {
					g.link(CallEdge{Caller: fn, Callee: cm, Pos: call.Pos(), Dynamic: true, Iface: callee})
					g.NumDynamicEdges++
				}
				return true
			}
		}
		if _, declared := g.DeclOf[callee]; declared {
			g.link(CallEdge{Caller: fn, Callee: callee, Pos: call.Pos()})
			g.NumStaticEdges++
		}
		return true
	})
}

func (g *CallGraph) link(e CallEdge) {
	g.Callees[e.Caller] = append(g.Callees[e.Caller], e)
	g.Callers[e.Callee] = append(g.Callers[e.Callee], e)
}

// isFuncValueCall reports whether call invokes a plain function value
// (a variable, field, or parameter of function type) — the dispatch
// shape the graph cannot resolve statically.
func isFuncValueCall(info *types.Info, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	tv, ok := info.Types[fun]
	if !ok || tv.IsType() || tv.IsBuiltin() {
		return false
	}
	_, isSig := tv.Type.Underlying().(*types.Signature)
	if !isSig {
		return false
	}
	switch f := fun.(type) {
	case *ast.Ident:
		_, isVar := info.Uses[f].(*types.Var)
		return isVar
	case *ast.SelectorExpr:
		_, isVar := info.Uses[f.Sel].(*types.Var)
		return isVar
	case *ast.FuncLit:
		return false // immediately-invoked literal: body walked in place
	}
	return true
}

// FuncByName resolves "pkgpath.Func" or "pkgpath.Type.Method" (pointer
// receivers match too) to the graph node, or nil.
func (g *CallGraph) FuncByName(qual string) *types.Func {
	for fn := range g.DeclOf {
		if funcKey(fn) == qual {
			return fn
		}
	}
	return nil
}

// Reachable returns the transitive-callee closure of roots (roots
// included), as a set.
func (g *CallGraph) Reachable(roots []*types.Func) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var stack []*types.Func
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Callees[fn] {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				stack = append(stack, e.Callee)
			}
		}
	}
	return seen
}

// FuncAt returns the module function whose declaration (including its
// body) spans pos, or nil.
func (g *CallGraph) FuncAt(pos token.Pos) *types.Func {
	for fn, fd := range g.DeclOf {
		if fd.Pos() <= pos && pos <= fd.End() {
			return fn
		}
	}
	return nil
}

// FuncDisplay renders fn for diagnostics: "pkg.Func" or
// "pkg.(*Type).Method" with the short package name.
func FuncDisplay(fn *types.Func) string {
	if fn == nil {
		return "<nil>"
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if ptr, ok := types.Unalias(rt).(*types.Pointer); ok {
			if n := namedType(ptr.Elem()); n != nil {
				name = "(*" + n.Obj().Name() + ")." + name
			}
		} else if n := namedType(rt); n != nil {
			name = n.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}
