// Package analysis is pervalint's engine: a stdlib-only static-analysis
// driver (go/parser + go/types, no x/tools) that loads and type-checks
// every package in the module and runs the project-specific analyzers
// enforcing the repo's determinism, clock-rule, fast-path, goroutine-
// hygiene and atomics invariants. See DESIGN.md §1.8 for the invariant
// each analyzer guards and the past bug that motivates it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the analyzed module.
// Only non-test files are loaded: the invariants pervalint enforces are
// production-code disciplines, and tests legitimately poke at internals.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader resolves and type-checks packages. Module-local import paths
// (under Module) are parsed from Root; everything else is delegated to
// the go/importer source importer, which type-checks the standard
// library from $GOROOT/src — keeping the whole pipeline free of
// external dependencies and of compiled export data.
type Loader struct {
	Fset   *token.FileSet
	Root   string // module root directory
	Module string // module import path

	ctxt    build.Context
	stdlib  types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader for the module rooted at root. Cgo is
// disabled for the load (the source importer cannot run cgo; the pure-Go
// fallbacks of net et al. type-check identically for analysis purposes).
func NewLoader(root, module string) *Loader {
	build.Default.CgoEnabled = false // srcimporter consults build.Default
	fset := token.NewFileSet()
	ctxt := build.Default
	return &Loader{
		Fset:    fset,
		Root:    root,
		Module:  module,
		ctxt:    ctxt,
		stdlib:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// FindModuleRoot walks upward from dir to the nearest directory holding
// a go.mod and returns its path and module name.
func FindModuleRoot(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if name, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(name), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer: module-local paths load from source
// under Root, everything else (the standard library) goes through the
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.stdlib.Import(path)
}

// Load type-checks the module-local package at the given import path,
// memoized for the loader's lifetime.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %v", path, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %v", path, err)
	}
	p := &Package{ImportPath: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Packages returns every module-local package the loader has loaded so
// far (requested packages and their module-local dependency closure),
// sorted by import path. This is the node set the call graph is built
// over.
func (l *Loader) Packages() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out
}

// Discover walks the module tree and returns the import paths of every
// buildable package, sorted. testdata, hidden and vendor directories are
// skipped, matching the go tool's convention.
func (l *Loader) Discover() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.Root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		bp, err := l.ctxt.ImportDir(path, 0)
		if err != nil || len(bp.GoFiles) == 0 {
			return nil // not a buildable package; keep walking
		}
		rel, err := filepath.Rel(l.Root, path)
		if err != nil {
			return err
		}
		ip := l.Module
		if rel != "." {
			ip = l.Module + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
