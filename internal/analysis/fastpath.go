package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FastPath guards the zero-cost-when-disabled contract of the obs and
// faults layers (the <5% kernel-overhead budget in BENCH_obs.json and
// the no-plan bar in BENCH_faults.json rest on it). Three checks:
//
//  1. nil-receiver discipline: every exported method of the no-op
//     instrument types (obs.Counter/Gauge/Histogram/LocalHist/Registry/
//     Span, faults.Injector) must begin with a nil guard, or consist
//     purely of delegation to other methods of the same receiver —
//     obs.Noop and the nil Injector are the disabled fast path, and an
//     unguarded method turns "instrumentation off" into a panic.
//  2. no registry lookups in hot loops: Registry.Counter/Gauge/
//     Histogram resolve through a string-keyed map under a lock;
//     engines must resolve instruments once and hold the pointer, not
//     look them up per iteration.
//  3. no typed-nil interface wrapping: storing a possibly-nil *Counter
//     (etc.) into a non-empty interface yields an interface that
//     compares non-nil, defeating every nil check downstream.
var FastPath = &Analyzer{
	Name: "fastpath",
	Doc:  "nil-receiver no-op discipline, no registry lookups in hot loops, no typed-nil interface wrapping",
	Run:  runFastPath,
}

func runFastPath(p *Pass) {
	if names, ok := p.Config.NoopTypes[p.ImportPath]; ok {
		checkNilGuards(p, names)
	}
	if contains(p.Config.HotPkgs, p.ImportPath) {
		checkHotLookups(p)
	}
	checkTypedNil(p)
}

// ---- check 1: nil-receiver guards ----

func checkNilGuards(p *Pass, noopNames []string) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			if !contains(noopNames, recvBaseName(fd)) {
				continue
			}
			recv := recvIdent(fd)
			if recv == nil {
				continue // unnamed receiver cannot be dereferenced
			}
			recvObj := p.Info.Defs[recv]
			if startsWithNilGuard(p, fd.Body, recvObj) || pureDelegation(p, fd.Body, recvObj) {
				continue
			}
			p.Reportf(fd.Name.Pos(), "method %s.%s must start with a nil-receiver guard: the nil %s is the disabled no-op fast path", recvBaseName(fd), fd.Name.Name, recvBaseName(fd))
		}
	}
}

func recvIdent(fd *ast.FuncDecl) *ast.Ident {
	names := fd.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return nil
	}
	return names[0]
}

// startsWithNilGuard reports whether the body's first statement tests
// the receiver (or a field of it) against nil — either an if statement
// or a single comparison return like `return r != nil`.
func startsWithNilGuard(p *Pass, body *ast.BlockStmt, recv types.Object) bool {
	if len(body.List) == 0 {
		return false
	}
	switch first := body.List[0].(type) {
	case *ast.IfStmt:
		return exprHasNilCompare(p, first.Cond, recv)
	case *ast.ReturnStmt:
		for _, r := range first.Results {
			if exprHasNilCompare(p, r, recv) {
				return true
			}
		}
	}
	return false
}

// exprHasNilCompare reports whether e contains `x == nil` or `x != nil`
// where x mentions the receiver.
func exprHasNilCompare(p *Pass, e ast.Expr, recv types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return !found
		}
		var other ast.Expr
		if isNilIdent(p, be.X) {
			other = be.Y
		} else if isNilIdent(p, be.Y) {
			other = be.X
		} else {
			return !found
		}
		ast.Inspect(other, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && p.Info.Uses[id] == recv {
				found = true
			}
			return !found
		})
		return !found
	})
	return found
}

func isNilIdent(p *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.Info.Uses[id].(*types.Nil)
	return isNil
}

// pureDelegation reports whether every use of the receiver in the body
// is either a nil comparison or a method call/selection on the receiver
// — such methods are nil-safe because the methods they delegate to are
// themselves checked (e.g. Registry.StartSpan, Registry.Handler).
func pureDelegation(p *Pass, body *ast.BlockStmt, recv types.Object) bool {
	ok := true
	inspectStack(body, func(n ast.Node, stack []ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent || p.Info.Uses[id] != recv {
			return ok
		}
		parent := stack[len(stack)-1]
		if sel, isSel := parent.(*ast.SelectorExpr); isSel && sel.X == id {
			if s := p.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
				return ok // method call on the receiver: delegation
			}
			ok = false // field access: a deref that nil would crash
			return false
		}
		if be, isCmp := parent.(*ast.BinaryExpr); isCmp && (be.Op == token.EQL || be.Op == token.NEQ) {
			if isNilIdent(p, be.X) || isNilIdent(p, be.Y) {
				return ok // nil comparison
			}
		}
		ok = false
		return false
	})
	return ok
}

// ---- check 2: registry lookups in hot loops ----

// registryLookupName classifies call as a Registry.Counter/Gauge/
// Histogram lookup, returning the method name or "".
func registryLookupName(info *types.Info, call *ast.CallExpr, obsPkg string) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPkg {
		return ""
	}
	if fn.Name() != "Counter" && fn.Name() != "Gauge" && fn.Name() != "Histogram" {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !typeInPtr(sig.Recv().Type(), obsPkg, "Registry") {
		return ""
	}
	return fn.Name()
}

// registryLookupFuncs computes (memoized) the module functions whose
// bodies perform a registry lookup — the helpers that make an innocent-
// looking call in a loop a per-iteration string-keyed map access one
// frame down. Setup-shaped functions (New*/Set*/Init*, and everything
// in the obs package itself) are exempt: resolving instruments inside a
// constructor's loop is exactly the once-and-hold pattern the check
// wants.
func (m *Module) registryLookupFuncs() map[*types.Func]string {
	if m.regLookups != nil {
		return m.regLookups
	}
	out := make(map[*types.Func]string)
	m.regLookups = out
	obsPkg := m.Config.ObsPkg
	if obsPkg == "" {
		return out
	}
	g := m.Graph
	for fn, fd := range g.DeclOf {
		if fn.Pkg() != nil && fn.Pkg().Path() == obsPkg {
			continue
		}
		if isSetupName(fn.Name()) {
			continue
		}
		pkg := g.PkgOf[fn]
		if pkg == nil || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if out[fn] != "" {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if name := registryLookupName(pkg.Info, call, obsPkg); name != "" {
					out[fn] = name
				}
			}
			return true
		})
	}
	return out
}

func isSetupName(name string) bool {
	for _, prefix := range []string{"New", "new", "Set", "Init", "init"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func checkHotLookups(p *Pass) {
	if p.Config.ObsPkg == "" || p.ImportPath == p.Config.ObsPkg {
		return
	}
	var helperLookups map[*types.Func]string
	if p.Mod != nil && p.Mod.Graph != nil {
		helperLookups = p.Mod.registryLookupFuncs()
	}
	for _, f := range p.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			direct := registryLookupName(p.Info, call, p.Config.ObsPkg)
			var viaHelper *types.Func
			helperMethod := ""
			if direct == "" {
				fn := calleeFunc(p.Info, call)
				if fn == nil {
					return true
				}
				fn = canonFunc(fn)
				if m := helperLookups[fn]; m != "" {
					viaHelper, helperMethod = fn, m
				} else {
					return true
				}
			}
			// Walk ancestors to the nearest function boundary; a for or
			// range statement in between makes this a per-iteration
			// string-keyed map lookup (possibly one call frame down).
			for i := len(stack) - 1; i >= 0; i-- {
				switch stack[i].(type) {
				case *ast.FuncLit, *ast.FuncDecl:
					return true
				case *ast.ForStmt, *ast.RangeStmt:
					if direct != "" {
						p.Reportf(call.Pos(), "registry lookup Registry.%s inside a loop: resolve the instrument once before the loop and hold the pointer (string-keyed lookup under a lock is not hot-path safe)", direct)
					} else {
						p.Reportf(call.Pos(), "call to %s inside a loop performs a registry lookup (Registry.%s) one frame down: resolve the instrument once before the loop and hold the pointer", FuncDisplay(viaHelper), helperMethod)
					}
					return true
				}
			}
			return true
		})
	}
}

func typeInPtr(t types.Type, pkgPath string, name string) bool {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return typeIn(t, pkgPath, name)
}

// ---- check 3: typed-nil interface wrapping ----

func checkTypedNil(p *Pass) {
	noopPtr := func(t types.Type) (string, bool) {
		ptr, ok := types.Unalias(t).(*types.Pointer)
		if !ok {
			return "", false
		}
		n := namedType(ptr.Elem())
		if n == nil || n.Obj().Pkg() == nil {
			return "", false
		}
		names, ok := p.Config.NoopTypes[n.Obj().Pkg().Path()]
		if !ok || !contains(names, n.Obj().Name()) {
			return "", false
		}
		return n.Obj().Name(), true
	}
	isNonEmptyIface := func(t types.Type) bool {
		if t == nil {
			return false
		}
		iface, ok := t.Underlying().(*types.Interface)
		return ok && iface.NumMethods() > 0
	}
	report := func(pos token.Pos, typeName string, ifaceType types.Type) {
		p.Reportf(pos, "possibly-nil *%s stored in non-empty interface %s: a typed-nil interface compares non-nil and defeats the nil fast path", typeName, ifaceType.String())
	}
	for _, f := range p.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					lt := p.TypeOf(n.Lhs[i])
					if name, ok := noopPtr(p.TypeOf(rhs)); ok && isNonEmptyIface(lt) {
						report(rhs.Pos(), name, lt)
					}
				}
			case *ast.ValueSpec:
				if n.Type == nil {
					return true
				}
				lt := p.TypeOf(n.Type)
				if !isNonEmptyIface(lt) {
					return true
				}
				for _, v := range n.Values {
					if name, ok := noopPtr(p.TypeOf(v)); ok {
						report(v.Pos(), name, lt)
					}
				}
			case *ast.CallExpr:
				sig, ok := types.Unalias(p.TypeOf(n.Fun)).(*types.Signature)
				if !ok {
					return true
				}
				for i, arg := range n.Args {
					var pt types.Type
					if sig.Variadic() && i >= sig.Params().Len()-1 {
						if s, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
							pt = s.Elem()
						}
					} else if i < sig.Params().Len() {
						pt = sig.Params().At(i).Type()
					}
					if name, ok := noopPtr(p.TypeOf(arg)); ok && isNonEmptyIface(pt) {
						report(arg.Pos(), name, pt)
					}
				}
			case *ast.ReturnStmt:
				sig := enclosingSignature(p, stack)
				if sig == nil {
					return true
				}
				for i, r := range n.Results {
					if i >= sig.Results().Len() {
						break
					}
					rt := sig.Results().At(i).Type()
					if name, ok := noopPtr(p.TypeOf(r)); ok && isNonEmptyIface(rt) {
						report(r.Pos(), name, rt)
					}
				}
			}
			return true
		})
	}
}

// enclosingSignature returns the signature of the innermost function
// containing the node whose ancestors are stack.
func enclosingSignature(p *Pass, stack []ast.Node) *types.Signature {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			sig, _ := types.Unalias(p.TypeOf(fn)).(*types.Signature)
			return sig
		case *ast.FuncDecl:
			if obj, ok := p.Info.Defs[fn.Name].(*types.Func); ok {
				sig, _ := obj.Type().(*types.Signature)
				return sig
			}
			return nil
		}
	}
	return nil
}
