package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath turns the repo's "0 allocs/op" bench claims into a lint-time
// proof: for the configured kernel roots (Config.HotFuncs — the DES
// schedule/step, the strobe stamp/merge kernels, the checker tree's
// incremental clause evaluation, the workload codec primitives) it
// computes the transitive call closure over the module call graph
// (interface dispatch resolved through the implements-sets) and flags
// every allocation-inducing construct anywhere in that closure:
//
//   - escaping composite literals (&T{...}) and new/make
//   - append (growth allocates; amortized-growth sites carry allows)
//   - string concatenation and string<->[]byte/[]rune conversions
//   - interface boxing of non-pointer-shaped values (fmt's variadic
//     ...any included)
//   - closure captures (a capturing func literal heap-allocates its
//     environment), and calls into fmt (always allocating)
//
// The benches catch a regression after the fact, on the machines that
// run them; this analyzer rejects the commit. Cold paths inside a hot
// function — panic guards, amortized growth, one-time setup — are
// justified in place with //lint:allow hotpath(reason).
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "flag allocation-inducing constructs in the configured kernel functions and everything they transitively call",
	Run:  runHotPath,
}

// hotResult is the memoized closure: every module function reachable
// from a hot root, mapped to one root it serves (for diagnostics).
type hotResult struct {
	rootOf   map[*types.Func]*types.Func
	resolved map[string]bool // HotFuncs entries that matched a function
}

func (m *Module) hotClosure() *hotResult {
	if m.hot != nil {
		return m.hot
	}
	hr := &hotResult{
		rootOf:   make(map[*types.Func]*types.Func),
		resolved: make(map[string]bool),
	}
	m.hot = hr
	g := m.Graph
	for _, qual := range m.Config.HotFuncs {
		root := g.FuncByName(qual)
		if root == nil {
			continue
		}
		hr.resolved[qual] = true
		for fn := range g.Reachable([]*types.Func{root}) {
			if _, claimed := hr.rootOf[fn]; !claimed {
				hr.rootOf[fn] = root
			}
		}
	}
	return hr
}

func runHotPath(p *Pass) {
	if p.Mod == nil || p.Mod.Graph == nil || len(p.Config.HotFuncs) == 0 {
		return
	}
	hr := p.Mod.hotClosure()
	// A HotFuncs entry that resolves to nothing is a config bug (a
	// renamed kernel silently un-proves the invariant); report it once,
	// from the package the qualified name points into.
	for _, qual := range p.Config.HotFuncs {
		if !hr.resolved[qual] && qualifiedPkg(qual) == p.ImportPath && len(p.Files) > 0 {
			p.Reportf(p.Files[0].Name.Pos(), "hotpath config names %s, which does not resolve to a declared function: fix Config.HotFuncs after renaming a kernel", qual)
			hr.resolved[qual] = true // once is enough
		}
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			root, hot := hr.rootOf[canonFunc(fn)]
			if !hot {
				continue
			}
			checkHotBody(p, fd, root)
		}
	}
}

// qualifiedPkg strips the trailing one or two dotted components
// (Func or Type.Method) off a HotFuncs entry, leaving the import path.
func qualifiedPkg(qual string) string {
	// The import path itself contains slashes but no dots in this
	// repo; cut at the first dot after the last slash.
	slash := -1
	for i := len(qual) - 1; i >= 0; i-- {
		if qual[i] == '/' {
			slash = i
			break
		}
	}
	for i := slash + 1; i < len(qual); i++ {
		if qual[i] == '.' {
			return qual[:i]
		}
	}
	return qual
}

func checkHotBody(p *Pass, fd *ast.FuncDecl, root *types.Func) {
	where := func() string { return FuncDisplay(root) }
	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit {
					p.Reportf(n.Pos(), "escaping composite literal (&T{...}) allocates on the hot path of %s: reuse a scratch value or justify with //lint:allow hotpath(reason)", where())
				}
			}
		case *ast.FuncLit:
			if captured := closureCaptures(p, n); captured != "" {
				p.Reportf(n.Pos(), "closure capturing %s allocates its environment on the hot path of %s: hoist the closure or pass state explicitly, or justify with //lint:allow hotpath(reason)", captured, where())
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := p.TypeOf(n.X); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						p.Reportf(n.Pos(), "string concatenation allocates on the hot path of %s: use an appended []byte scratch buffer, or justify with //lint:allow hotpath(reason)", where())
					}
				}
			}
		case *ast.CallExpr:
			checkHotCall(p, n, where)
		}
		return true
	})
}

func checkHotCall(p *Pass, call *ast.CallExpr, where func() string) {
	fun := ast.Unparen(call.Fun)
	// Builtins: new, make, append.
	if id, ok := fun.(*ast.Ident); ok {
		if bi, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch bi.Name() {
			case "new", "make":
				p.Reportf(call.Pos(), "%s allocates on the hot path of %s: preallocate outside the kernel, or justify with //lint:allow hotpath(reason)", bi.Name(), where())
			case "append":
				p.Reportf(call.Pos(), "append may grow and allocate on the hot path of %s: preallocate capacity (amortized-growth sites get //lint:allow hotpath(reason))", where())
			}
			return
		}
	}
	// Conversions to string or to a slice (string<->[]byte/[]rune).
	if tv, ok := p.Info.Types[fun]; ok && tv.IsType() {
		if target := tv.Type.Underlying(); len(call.Args) == 1 {
			argT := p.TypeOf(call.Args[0])
			switch target.(type) {
			case *types.Basic:
				if target.(*types.Basic).Info()&types.IsString != 0 && argT != nil {
					if _, fromSlice := argT.Underlying().(*types.Slice); fromSlice {
						p.Reportf(call.Pos(), "[]byte->string conversion copies and allocates on the hot path of %s (//lint:allow hotpath(reason) if cold)", where())
					}
				}
			case *types.Slice:
				if argT != nil {
					if b, ok := argT.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						p.Reportf(call.Pos(), "string->slice conversion copies and allocates on the hot path of %s (//lint:allow hotpath(reason) if cold)", where())
					}
				}
			}
		}
		return
	}
	// fmt always allocates (boxing plus formatting buffers).
	if fn := calleeFunc(p.Info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		p.Reportf(call.Pos(), "fmt.%s allocates on the hot path of %s: format off the kernel, or justify a cold path (panic message) with //lint:allow hotpath(reason)", fn.Name(), where())
	}
	// Interface boxing at argument positions.
	sig, ok := types.Unalias(p.TypeOf(call.Fun)).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			if s, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		} else if i < sig.Params().Len() {
			pt = sig.Params().At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := p.TypeOf(arg)
		if at == nil || boxFree(at) {
			continue
		}
		p.Reportf(arg.Pos(), "interface boxing of %s allocates on the hot path of %s: pass a pointer or keep the call monomorphic, or justify with //lint:allow hotpath(reason)", at.String(), where())
	}
}

// boxFree reports whether storing a value of type t in an interface
// needs no allocation: pointer-shaped single-word types (pointers,
// channels, maps, funcs, unsafe.Pointer), values already behind an
// interface, and untyped nil.
func boxFree(t types.Type) bool {
	switch types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		b := types.Unalias(t).Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer || b.Kind() == types.UntypedNil
	}
	return false
}

// closureCaptures returns the name of a variable the literal captures
// from its enclosing function ("" when it captures nothing). Captured
// means: used inside, declared outside the literal, not package-level,
// and not a struct field reached through a captured receiver (the
// receiver itself is the capture then).
func closureCaptures(p *Pass, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal (params included)
		}
		if v.Parent() == p.Pkg.Scope() {
			return true // package-level variable, not a capture
		}
		captured = v.Name()
		return false
	})
	return captured
}
