// Package atom seeds the mixed atomic/plain field-access shapes for
// the atomics golden test.
package atom

import "sync/atomic"

// Stats counts events; n is managed with sync/atomic, m is not.
type Stats struct {
	n int64
	m int64
}

// Bump is the atomic write path; it makes n an atomic field.
func (s *Stats) Bump() {
	atomic.AddInt64(&s.n, 1)
}

// Read uses the matching load; not flagged.
func (s *Stats) Read() int64 {
	return atomic.LoadInt64(&s.n)
}

// Reset tears the atomicity with a plain write.
func (s *Stats) Reset() {
	s.n = 0 // want `plain write to field n, which is accessed via atomic.AddInt64`
}

// Peek races the writers with a plain read.
func (s *Stats) Peek() int64 {
	return s.n // want `plain read of field n, which is accessed via atomic.AddInt64`
}

// Incr increments the atomic field without the atomic op.
func (s *Stats) Incr() {
	s.n++ // want `plain .. of field n, which is accessed via atomic.AddInt64`
}

// Leak lets the field's address escape to arbitrary plain access.
func Leak(s *Stats) *int64 {
	return &s.n // want `address of field n .accessed via atomic.AddInt64 elsewhere. escapes`
}

// Local is never touched atomically; plain access to m is fine.
func (s *Stats) Local() int64 {
	s.m++
	return s.m
}

// Shared is counter state bumped atomically here and visible to other
// packages: the module-wide inventory must catch a plain read of Hits
// from a sibling package (see fix/atomuser).
type Shared struct {
	Hits int64
}

// Bump is the atomic write path for Shared.Hits.
func (s *Shared) Bump() {
	atomic.AddInt64(&s.Hits, 1)
}
