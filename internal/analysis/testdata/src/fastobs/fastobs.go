// Package fastobs is a miniature instrument package for the fastpath
// golden test: Counter and Registry must follow the nil-receiver no-op
// discipline.
package fastobs

// Counter is a nil-safe no-op instrument.
type Counter struct {
	n int64
}

// Inc starts with the guard: the nil Counter is the disabled fast path.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n++
}

// Value is likewise guarded.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Enabled uses the single-comparison return form of the guard.
func (c *Counter) Enabled() bool {
	return c != nil
}

// Add is missing the guard; a nil receiver panics here.
func (c *Counter) Add(d int64) { // want `method Counter.Add must start with a nil-receiver guard`
	c.n += d
}

// Registry hands out instruments by name.
type Registry struct {
	counters map[string]*Counter
}

// Counter resolves (or creates) the named instrument, nil-guarded.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge mirrors Counter for the hot-lookup check's method set.
func (r *Registry) Gauge(name string) *Counter {
	return r.Counter(name) // pure delegation: nil-safe without its own guard
}
