// Package clockpkg is a miniature clock package for the clockrule
// golden test: SVC carries rule-governed state (unexported fields), and
// Vector is the named slice state type. Stamp is configuration-shaped
// (exported fields only) and therefore not protected.
package clockpkg

// Vector is the stamp type; its components are clock state.
type Vector []uint64

// SVC is a strobe vector clock: unexported fields mark it as
// rule-governed state.
type SVC struct {
	me int
	v  Vector
}

// Stamp has only exported fields: configuration, not rule state.
type Stamp struct {
	Proc int
	At   uint64
}

// New constructs an SVC; constructors may initialize state.
func New(me, n int) *SVC {
	return &SVC{me: me, v: make(Vector, n)}
}

// Strobe applies SVC1: rule methods may mutate state.
func (c *SVC) Strobe() Vector {
	c.v[c.me]++
	out := make(Vector, len(c.v))
	copy(out, c.v)
	return out
}

// OnStrobe applies SVC2: componentwise max.
func (c *SVC) OnStrobe(s Vector) {
	for i, x := range s {
		if i < len(c.v) && x > c.v[i] {
			c.v[i] = x
		}
	}
}

// Poke is not a rule method; its writes are protocol violations.
func (c *SVC) Poke() {
	c.me = -1 // want `clock state field SVC.me written outside the rule methods`
}

// Smudge mutates a vector component outside any rule.
func (c *SVC) Smudge() {
	c.v[0] = 9 // want `clock vector component .Vector. written outside the rule methods`
}

// Config only touches exported-field structs; not flagged.
func Config(s *Stamp) {
	s.At = 7
}

// bumpOwn is an unexported helper reached only from Strobe: the
// call-graph fixpoint sanctions it, so its state write is a rule
// application by delegation, not a violation.
func (c *SVC) bumpOwn() {
	c.v[c.me]++
}

// Tick applies the rule through the sanctioned helper.
func (c *SVC) Tick() {
	c.bumpOwn()
}

// stray is an unexported helper, but Leak below is not a sanctioned
// writer, so the fixpoint never admits it: the write stays flagged.
func (c *SVC) stray() {
	c.me = 0 // want `clock state field SVC.me written outside the rule methods`
}

// Leak is an ordinary exported method calling the stray helper.
func (c *SVC) Leak() {
	c.stray()
}
