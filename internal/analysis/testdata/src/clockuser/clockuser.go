// Package clockuser is an engine-side package for the clockrule golden
// test: it must advance clocks only through the rule methods.
package clockuser

import "fix/clockpkg"

// Good advances the clock by applying a rule.
func Good(c *clockpkg.SVC) clockpkg.Vector {
	return c.Strobe()
}

// Evil reaches into protocol state from outside the clock package.
func Evil(v clockpkg.Vector) {
	v[0] = 99 // want `clock vector component .Vector. written outside fix/clockpkg`
}

// Trim is a sanctioned offline manipulation, justified with an allow.
func Trim(v clockpkg.Vector, p uint64) {
	for i := range v {
		if v[i] > p {
			v[i] = p //lint:allow clockrule(fixture: offline stamp trimming, not live protocol state)
		}
	}
}
