// Package determ seeds every determinism violation plus the sanctioned
// idioms, for the golden test.
package determ

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

// Wall leaks real time into a deterministic package.
func Wall() int64 {
	return time.Now().Unix() // want `time.Now in deterministic package determ`
}

// Elapsed derives from the wall clock without naming time.Now.
func Elapsed(start time.Time) int64 {
	return time.Since(start).Microseconds() // want `time.Since in deterministic package determ`
}

// Timeout schedules against real time.
func Timeout() <-chan time.Time {
	return time.After(time.Second) // want `time.After in deterministic package determ`
}

// Metronome paces by real time.
func Metronome() <-chan time.Time {
	return time.Tick(time.Second) // want `time.Tick in deterministic package determ`
}

// Env makes the run depend on ambient machine state.
func Env() string {
	return os.Getenv("SEED") // want `os.Getenv in deterministic package determ`
}

// Listing depends on the machine's filesystem.
func Listing() ([]os.DirEntry, error) {
	return os.ReadDir(".") // want `os.ReadDir in deterministic package determ`
}

// WallAllowed is the annotated legitimate use: suppressed, no finding.
func WallAllowed() int64 {
	return time.Now().Unix() //lint:allow determinism(fixture: sanctioned wall-clock use)
}

// GlobalRand draws from the process-wide un-seeded source.
func GlobalRand() int {
	return rand.Intn(6) // want `global math/rand.Intn in deterministic package determ`
}

// SeededRand owns its stream; not flagged.
func SeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// LeakyOrder lets map iteration order reach the output.
func LeakyOrder(m map[string]int) []string {
	var out []string
	for k, v := range m { // want `range over map has nondeterministic iteration order`
		if v > 0 {
			out = append(out, k)
		}
	}
	return out
}

// CollectThenSort is the sanctioned idiom; not flagged.
func CollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// The annotations below exercise the allow grammar's own diagnostics:
// an allow that suppresses nothing, an empty reason, an unknown
// analyzer name, and a comment that does not parse at all. The want
// expectations use the +1 form because the finding lands on the
// full-line comment itself.

// want+1 `unused //lint:allow determinism annotation`
//lint:allow determinism(fixture: nothing suppressed on this line)

// want+1 `needs a non-empty reason`
//lint:allow determinism()

// want+1 `names unknown analyzer nosuchanalyzer`
//lint:allow nosuchanalyzer(fixture reason)

// want+1 `malformed //lint:allow`
//lint:allow determinism missing parens
