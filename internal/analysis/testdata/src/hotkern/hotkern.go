// Package hotkern is the hotpath golden fixture: Step is configured as
// a hot root (and the config deliberately names a function that no
// longer exists, to exercise the stale-config diagnostic), so every
// allocation-inducing construct reachable from Step is flagged, while
// the same constructs in unreachable code pass.
package hotkern // want `hotpath config names fix/hotkern.Missing, which does not resolve`

// Kernel is the fixture's hot kernel.
type Kernel struct {
	buf     []int
	scratch [4]int
	name    string
}

type point struct{ x, y int }

// Step is the configured hot root.
func (k *Kernel) Step(x int) {
	k.buf = append(k.buf, x) // want `append may grow and allocate on the hot path of hotkern...Kernel..Step`
	k.helper(x)
	k.label("tick")
	k.grow(nil)
}

// helper is one edge from Step: flagged transitively, with every
// finding naming the root it serves.
func (k *Kernel) helper(x int) {
	p := &point{x, x} // want `escaping composite literal .* allocates on the hot path of hotkern...Kernel..Step`
	k.scratch[0] = p.x
	tmp := make([]int, 4) // want `make allocates on the hot path`
	k.scratch[1] = tmp[0]
	k.scratch[2] = box(x) // want `interface boxing of int allocates on the hot path`
	n := x
	f := func() int { return n } // want `closure capturing n allocates its environment on the hot path`
	k.scratch[3] = f()
	_ = k.key(nil)
}

// label concatenates strings two edges down from the root.
func (k *Kernel) label(s string) {
	k.name = k.name + s // want `string concatenation allocates on the hot path`
}

// key pays a copy per call.
func (k *Kernel) key(b []byte) string {
	return string(b) // want `byte->string conversion copies and allocates`
}

// box stores its argument in an interface; the boxing is charged to
// the call site, where the concrete type is known.
func box(v any) int {
	if v == nil {
		return 0
	}
	return 1
}

// grow is reachable from Step, but its amortized growth is waived for
// the whole declaration by a single decl-scoped allow.
//
//lint:allow hotpath(fixture: amortized growth, decl-scoped waiver)
func (k *Kernel) grow(xs []int) {
	for _, x := range xs {
		k.buf = append(k.buf, x)
	}
}

// Cold is not reachable from any hot root: the same constructs pass.
func Cold() *point {
	s := make([]int, 8)
	return &point{x: s[0]}
}
