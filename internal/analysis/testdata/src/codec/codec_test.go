package codec

import "testing"

// TestEventsRoundTrip references both halves of the EncodeEvents/
// DecodeEvents pair: the round trip the analyzer requires.
func TestEventsRoundTrip(t *testing.T) {
	evs := []int{1, 2, 3}
	got := DecodeEvents(EncodeEvents(evs))
	if len(got) != len(evs) {
		t.Fatal("length mismatch")
	}
}

// TestWriteIndexGolden and TestReadIndexGolden each pin one direction
// against fixed bytes — no single test exercises both, which is
// exactly what the codecpair analyzer flags.
func TestWriteIndexGolden(t *testing.T) {
	if len(WriteIndex([]uint32{7})) != 1 {
		t.Fatal("bad length")
	}
}

func TestReadIndexGolden(t *testing.T) {
	if len(ReadIndex([]byte{7})) != 1 {
		t.Fatal("bad length")
	}
}

// TestBatchRoundTrip covers the receiver-paired AppendWire/DecodeBatch.
func TestBatchRoundTrip(t *testing.T) {
	b := &Batch{N: 9}
	if DecodeBatch(b.AppendWire(nil)).N != 9 {
		t.Fatal("round trip lost N")
	}
}
