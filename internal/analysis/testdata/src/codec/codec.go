// Package codec is the codecpair golden fixture: exported encoders
// must have decoder counterparts, and each pair must share a
// round-trip test in this directory's _test.go files (which the
// analyzer parses syntax-only; the loader itself never loads test
// files).
package codec

// EncodeEvents has a stem-matched decoder and a shared round-trip
// test: clean.
func EncodeEvents(evs []int) []byte {
	out := make([]byte, 0, len(evs))
	for _, e := range evs {
		out = append(out, byte(e))
	}
	return out
}

// DecodeEvents is EncodeEvents' counterpart.
func DecodeEvents(b []byte) []int {
	out := make([]int, 0, len(b))
	for _, x := range b {
		out = append(out, int(x))
	}
	return out
}

// AppendHeader writes a record nothing can read back.
func AppendHeader(b []byte) []byte { // want `exported encoder AppendHeader has no Decode./Read. counterpart`
	return append(b, 0xFE)
}

// WriteIndex has a decoder, but the two are only ever tested apart —
// each direction against its own fixed bytes, so a format change can
// land half-way.
func WriteIndex(idx []uint32) []byte { // want `codec pair WriteIndex/ReadIndex has no round-trip test`
	out := make([]byte, 0, 4*len(idx))
	for _, x := range idx {
		out = append(out, byte(x))
	}
	return out
}

// ReadIndex is WriteIndex's counterpart.
func ReadIndex(b []byte) []uint32 {
	out := make([]uint32, 0, len(b))
	for _, x := range b {
		out = append(out, uint32(x))
	}
	return out
}

// Batch pairs through the receiver rule: AppendWire's counterpart is
// DecodeBatch (decoder stem == encoder receiver).
type Batch struct {
	N int
}

// AppendWire encodes the batch.
func (b *Batch) AppendWire(dst []byte) []byte {
	return append(dst, byte(b.N))
}

// DecodeBatch decodes what AppendWire wrote.
func DecodeBatch(src []byte) *Batch {
	if len(src) == 0 {
		return nil
	}
	return &Batch{N: int(src[0])}
}

// EncodeLegacy is a write-only debug dump, waived in place.
func EncodeLegacy(b []byte) []byte { //lint:allow codecpair(fixture: write-only debug dump, nothing decodes it)
	return append(b, 0xFF)
}

// Writer is not an encoder: "r" does not start a new word after the
// Write prefix, so the name never enters the pairing at all.
func Writer() string {
	return "not a codec"
}
