// Package goro seeds the goroutine-hygiene shapes: bare channel sends
// inside time.AfterFunc callbacks and go closures, with and without a
// select escape hatch.
package goro

import "time"

// Deliver schedules an unguarded send: one leaked goroutine per
// stalled receiver.
func Deliver(ch chan int, d time.Duration) {
	time.AfterFunc(d, func() {
		ch <- 1 // want `blocking channel send in time.AfterFunc callback`
	})
}

// Spawn has the same shape in a go closure.
func Spawn(ch chan int) {
	go func() {
		ch <- 2 // want `blocking channel send in go closure`
	}()
}

// DeliverGuarded drops the message when the receiver stalls; not
// flagged.
func DeliverGuarded(ch chan int, d time.Duration) {
	time.AfterFunc(d, func() {
		select {
		case ch <- 1:
		default:
		}
	})
}

// SpawnSingleCase wraps the send in a select with no other case: still
// a blocking send.
func SpawnSingleCase(ch chan int) {
	go func() {
		select {
		case ch <- 3: // want `blocking channel send in go closure`
		}
	}()
}

// SpawnDone exits on shutdown instead of parking forever; not flagged.
func SpawnDone(ch chan int, done chan struct{}) {
	go func() {
		select {
		case ch <- 4:
		case <-done:
		}
	}()
}

// Synchronous sends outside async closures are not this analyzer's
// business.
func Synchronous(ch chan int) {
	ch <- 5
}

// EpochWorkers is the sharded kernel's fan-out shape (sim.Shards
// runEpoch): WaitGroup-tracked workers that write only their own slot
// and rendezvous via Wait, with no channel sends at all. Not flagged —
// a worker with nothing to send cannot park on a stalled receiver.
func EpochWorkers(parts [][]int) {
	var wg waitGroup
	for k := range parts {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			parts[k] = append(parts[k], k)
		}()
	}
	wg.Wait()
}

// FeedRoot is the checker-tree forwarding shape done wrong: a regional
// aggregator worker pushing flushed batches to the root over a bare
// channel. A stalled root (saturated, or the run already finished)
// parks one goroutine per region forever.
func FeedRoot(batches chan []byte, flushed [][]byte) {
	for _, b := range flushed {
		b := b
		go func() {
			batches <- b // want `blocking channel send in go closure`
		}()
	}
}

// FeedRootGuarded is the accepted aggregator worker shape: the upward
// send carries a shutdown case, so a finished run drains instead of
// leaking. Not flagged.
func FeedRootGuarded(batches chan []byte, done chan struct{}, flushed [][]byte) {
	for _, b := range flushed {
		b := b
		go func() {
			select {
			case batches <- b:
			case <-done:
			}
		}()
	}
}

// waitGroup mirrors sync.WaitGroup's surface so the fixture stays
// dependency-free under the test loader.
type waitGroup struct{ n int }

func (w *waitGroup) Add(d int) { w.n += d }
func (w *waitGroup) Done()     { w.n-- }
func (w *waitGroup) Wait()     {}

// pump has a bare send: fine when called synchronously, lethal on its
// own goroutine. The call graph ties the spawn sites below to it.
func pump(ch chan int) {
	ch <- 9
}

// SpawnNamed runs pump asynchronously: flagged at the spawn site,
// where the allow would belong.
func SpawnNamed(ch chan int) {
	go pump(ch) // want `go statement runs goro.pump, which has a blocking channel send`
}

// CallNamed calls the same function synchronously: not flagged.
func CallNamed(ch chan int) {
	pump(ch)
}

// beeper exercises the method-value shape through time.AfterFunc.
type beeper struct{ ch chan int }

func (b *beeper) fire() {
	b.ch <- 1
}

func (b *beeper) fireGuarded() {
	select {
	case b.ch <- 1:
	default:
	}
}

// Arm passes a method value whose body blocks: flagged at the arming
// site.
func (b *beeper) Arm(d time.Duration) {
	time.AfterFunc(d, b.fire) // want `time.AfterFunc callback runs goro...beeper..fire, which has a blocking channel send`
}

// ArmGuarded passes the guarded variant: not flagged.
func (b *beeper) ArmGuarded(d time.Duration) {
	time.AfterFunc(d, b.fireGuarded)
}
