// Package goro seeds the goroutine-hygiene shapes: bare channel sends
// inside time.AfterFunc callbacks and go closures, with and without a
// select escape hatch.
package goro

import "time"

// Deliver schedules an unguarded send: one leaked goroutine per
// stalled receiver.
func Deliver(ch chan int, d time.Duration) {
	time.AfterFunc(d, func() {
		ch <- 1 // want `blocking channel send in time.AfterFunc callback`
	})
}

// Spawn has the same shape in a go closure.
func Spawn(ch chan int) {
	go func() {
		ch <- 2 // want `blocking channel send in go closure`
	}()
}

// DeliverGuarded drops the message when the receiver stalls; not
// flagged.
func DeliverGuarded(ch chan int, d time.Duration) {
	time.AfterFunc(d, func() {
		select {
		case ch <- 1:
		default:
		}
	})
}

// SpawnSingleCase wraps the send in a select with no other case: still
// a blocking send.
func SpawnSingleCase(ch chan int) {
	go func() {
		select {
		case ch <- 3: // want `blocking channel send in go closure`
		}
	}()
}

// SpawnDone exits on shutdown instead of parking forever; not flagged.
func SpawnDone(ch chan int, done chan struct{}) {
	go func() {
		select {
		case ch <- 4:
		case <-done:
		}
	}()
}

// Synchronous sends outside async closures are not this analyzer's
// business.
func Synchronous(ch chan int) {
	ch <- 5
}
