// Package dtaint is inside the deterministic boundary for the
// determtaint golden test: every finding here is a call-graph edge
// crossing out of the boundary into a transitively nondeterministic
// helper in fix/dthelp — the cross-package shape the package-local
// determinism analyzer cannot see.
package dtaint

import (
	"time"

	"fix/dthelp"
)

// Step calls a helper that reads the wall clock directly.
func Step(start time.Time) int64 {
	return dthelp.Elapsed(start) // want `call to dthelp.Elapsed is determinism-tainted: reaches time.Since`
}

// Observe reaches the same seed through one intermediate hop; the
// finding names the path.
func Observe(start time.Time) int64 {
	return dthelp.Observed(start) // want `call to dthelp.Observed is determinism-tainted: reaches time.Since at dthelp.go:\d+ via dthelp.Elapsed`
}

// Pure calls a clean helper; no finding.
func Pure(x int64) int64 {
	return dthelp.Scale(x)
}

// Sample dispatches through the Sampler seam: the implements-set
// resolution fans the call out, and the WallSampler implementation is
// tainted. FixedSampler satisfies the same interface and stays silent.
func Sample(s dthelp.Sampler) int64 {
	return s.Sample() // want `call to dthelp.WallSampler.Sample .dynamic dispatch via dthelp.Sampler.Sample. is determinism-tainted: reaches time.Now`
}

// Mode calls a helper whose ambient read is suppressed at the seed —
// the taint never starts, so this caller is clean.
func Mode() string {
	return dthelp.Mode()
}

// Justified is the annotated boundary crossing: the finding is
// suppressed at the call site.
func Justified(start time.Time) int64 {
	return dthelp.Elapsed(start) //lint:allow determtaint(fixture: span epoch, wall clock is the point)
}
