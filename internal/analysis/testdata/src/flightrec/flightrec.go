// Package flightrec is a miniature flight recorder for the fastpath
// golden test: Recorder mirrors pervasive/internal/flight.Recorder, so
// the nil-receiver no-op discipline is enforced on the real package's
// shape — a hot Record method, string interning, and snapshots.
package flightrec

// Rec is a compact binary record (no pointers).
type Rec struct {
	Kind int32
	Proc int32
	At   int64
}

// Recorder keeps per-process rings; the nil Recorder is the detached
// always-off mode and every method must no-op on it.
type Recorder struct {
	rings [][]Rec
	names []string
	ids   map[string]uint32
}

// Record starts with the guard: the nil Recorder costs one compare.
func (r *Recorder) Record(rec Rec) {
	if r == nil {
		return
	}
	if uint(rec.Proc) >= uint(len(r.rings)) {
		return
	}
	r.rings[rec.Proc] = append(r.rings[rec.Proc], rec)
}

// Intern is likewise guarded.
func (r *Recorder) Intern(name string) uint32 {
	if r == nil {
		return 0
	}
	if id, ok := r.ids[name]; ok {
		return id
	}
	if r.ids == nil {
		r.ids = make(map[string]uint32)
	}
	id := uint32(len(r.names))
	r.names = append(r.names, name)
	r.ids[name] = id
	return id
}

// AttrName uses the single-comparison return form of the guard.
func (r *Recorder) AttrName(id uint32) string {
	if r == nil || int(id) >= len(r.names) {
		return ""
	}
	return r.names[id]
}

// Reset delegates to a guarded method: nil-safe without its own guard.
func (r *Recorder) Clear() {
	r.Record(Rec{})
}

// Flush is missing the guard; a nil receiver panics here.
func (r *Recorder) Flush() []Rec { // want `method Recorder.Flush must start with a nil-receiver guard`
	out := make([]Rec, 0, len(r.rings))
	for _, ring := range r.rings {
		out = append(out, ring...)
	}
	return out
}
