// Package fastuser is an engine-side package for the fastpath golden
// test: no per-iteration registry lookups, no typed-nil interface
// wrapping of the no-op instrument pointers.
package fastuser

import "fix/fastobs"

// Ticker is a non-empty interface: storing a possibly-nil *Counter in
// it yields an interface that compares non-nil.
type Ticker interface {
	Inc()
}

// HotLoop resolves the counter through the string-keyed registry on
// every iteration.
func HotLoop(r *fastobs.Registry, n int) {
	for i := 0; i < n; i++ {
		r.Counter("ticks").Inc() // want `registry lookup Registry.Counter inside a loop`
	}
}

// ColdLoop resolves once and holds the pointer; not flagged.
func ColdLoop(r *fastobs.Registry, n int) {
	c := r.Counter("ticks")
	for i := 0; i < n; i++ {
		c.Inc()
	}
}

// WrapVar stores the pointer in a non-empty interface via a var decl.
func WrapVar(c *fastobs.Counter) Ticker {
	var t Ticker = c // want `possibly-nil .Counter stored in non-empty interface`
	return t
}

// WrapReturn does the same through a return statement.
func WrapReturn(c *fastobs.Counter) Ticker {
	return c // want `possibly-nil .Counter stored in non-empty interface`
}

// UseDirect keeps the concrete pointer type end to end; not flagged.
func UseDirect(c *fastobs.Counter) *fastobs.Counter {
	c.Inc()
	return c
}
