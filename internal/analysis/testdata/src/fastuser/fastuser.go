// Package fastuser is an engine-side package for the fastpath golden
// test: no per-iteration registry lookups, no typed-nil interface
// wrapping of the no-op instrument pointers.
package fastuser

import "fix/fastobs"

// Ticker is a non-empty interface: storing a possibly-nil *Counter in
// it yields an interface that compares non-nil.
type Ticker interface {
	Inc()
}

// HotLoop resolves the counter through the string-keyed registry on
// every iteration.
func HotLoop(r *fastobs.Registry, n int) {
	for i := 0; i < n; i++ {
		r.Counter("ticks").Inc() // want `registry lookup Registry.Counter inside a loop`
	}
}

// ColdLoop resolves once and holds the pointer; not flagged.
func ColdLoop(r *fastobs.Registry, n int) {
	c := r.Counter("ticks")
	for i := 0; i < n; i++ {
		c.Inc()
	}
}

// WrapVar stores the pointer in a non-empty interface via a var decl.
func WrapVar(c *fastobs.Counter) Ticker {
	var t Ticker = c // want `possibly-nil .Counter stored in non-empty interface`
	return t
}

// WrapReturn does the same through a return statement.
func WrapReturn(c *fastobs.Counter) Ticker {
	return c // want `possibly-nil .Counter stored in non-empty interface`
}

// UseDirect keeps the concrete pointer type end to end; not flagged.
func UseDirect(c *fastobs.Counter) *fastobs.Counter {
	c.Inc()
	return c
}

// bump hides a per-call registry lookup one frame down.
func bump(r *fastobs.Registry) {
	r.Counter("ticks").Inc()
}

// HotLoopHelper has PR 5's blind spot: the loop body looks clean, but
// every iteration pays the string-keyed lookup inside bump.
func HotLoopHelper(r *fastobs.Registry, n int) {
	for i := 0; i < n; i++ {
		bump(r) // want `call to fastuser.bump inside a loop performs a registry lookup .Registry.Counter. one frame down`
	}
}

// newCounter performs a lookup but is setup-shaped (New prefix):
// resolving instruments inside a constructor's loop is exactly the
// once-and-hold pattern, so callers are not flagged.
func newCounter(r *fastobs.Registry, name string) *fastobs.Counter {
	return r.Counter(name)
}

// BuildAll resolves a batch of counters up front: not flagged.
func BuildAll(r *fastobs.Registry, names []string) []*fastobs.Counter {
	out := make([]*fastobs.Counter, 0, len(names))
	for _, n := range names {
		out = append(out, newCounter(r, n))
	}
	return out
}
