// Package dthelp is a utility package OUTSIDE the deterministic
// boundary, for the determtaint golden test: the package-local
// determinism analyzer never looks at it, so its wall-clock and
// environment reads are invisible to PR 5's per-file pass — the
// interprocedural taint analysis has to find them through the call
// graph.
package dthelp

import (
	"os"
	"time"
)

// Elapsed reads the wall clock: a taint seed.
func Elapsed(start time.Time) int64 {
	return time.Since(start).Microseconds()
}

// Observed is one hop above Elapsed: tainted transitively.
func Observed(start time.Time) int64 {
	return Elapsed(start) / 2
}

// Scale is pure arithmetic: never tainted.
func Scale(x int64) int64 {
	return x * 2
}

// Sampler is the interface seam the deterministic side calls through;
// the implements-set resolution must see WallSampler behind it.
type Sampler interface {
	Sample() int64
}

// WallSampler reads the wall clock behind the interface.
type WallSampler struct{}

// Sample is a taint seed reached only by dynamic dispatch.
func (WallSampler) Sample() int64 {
	return time.Now().UnixNano()
}

// FixedSampler is deterministic; it keeps the implements-set honest
// (an interface call fans out to every implementation, but only the
// tainted ones produce findings).
type FixedSampler struct{ V int64 }

// Sample returns stored state: no seed.
func (f FixedSampler) Sample() int64 {
	return f.V
}

// Mode reads the environment, but the seed is suppressed here at its
// site — the one sanctioned ambient read — so callers inside the
// deterministic boundary are not flagged.
func Mode() string {
	return os.Getenv("FIX_MODE") //lint:allow determtaint(fixture: sanctioned ambient read, callers stay clean)
}
