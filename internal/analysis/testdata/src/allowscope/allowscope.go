// Package allowscope exercises the allow grammar's declaration scope:
// an allow anchored to a declaration's first line (trailing, or the
// full line immediately above) covers the whole declaration body, and
// an allow whose coverage is fully subsumed by earlier allows for the
// same analyzer is reported as a dead duplicate.
package allowscope

import "time"

// CoveredAbove: the full-line allow above the declaration suppresses
// every finding in the body, not just the signature line.
//
//lint:allow determinism(fixture: whole-function wall-clock waiver, line above)
func CoveredAbove() int64 {
	a := time.Now().Unix()
	b := time.Now().Unix()
	return a + b
}

// CoveredTrailing: same scope, anchored as a trailing comment.
func CoveredTrailing() int64 { //lint:allow determinism(fixture: whole-function waiver, trailing)
	return time.Now().Unix()
}

// Uncovered has no annotation; the decl scope of the neighbors must
// not leak onto it.
func Uncovered() int64 {
	return time.Now().Unix() // want `time.Now in deterministic package allowscope`
}

// Duplicate: the decl-scoped allow on the declaration line already
// covers the body, so the inner allow can never suppress anything.
func Duplicate() int64 { //lint:allow determinism(fixture: decl-scoped waiver)
	// want+1 `duplicate //lint:allow determinism`
	//lint:allow determinism(fixture: dead, the decl allow above covers this line)
	return time.Now().Unix()
}
