// Package atomuser reads fix/atom's atomic state from across the
// package boundary: the race is identical to the in-package one, and
// the module-wide inventory (built over every loaded package) is what
// lets the analyzer see it — PR 5's per-package collection could not.
package atomuser

import "fix/atom"

// Snapshot races Bump with a plain read.
func Snapshot(s *atom.Shared) int64 {
	return s.Hits // want `plain read of field Hits, which is accessed via atomic.AddInt64 elsewhere in the module`
}

// Wait uses no atomic field; nothing is flagged.
func Wait(s *atom.Shared) *atom.Shared {
	return s
}
