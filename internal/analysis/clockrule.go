package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ClockRule enforces the paper's clock rules structurally: the state
// carried by the clock types (the scalar counter of SSC clocks, the
// vector of SVC/VC clocks, the physical-vector components) may only be
// mutated inside the rule applications themselves — SVC1/SVC2,
// SSC1/SSC2, SC1–SC3, VC1–VC3, realized as the Strobe / OnStrobe /
// Tick / Send / Receive (+ MergeFrom, Reset) methods — and inside New*
// constructors. Any other write, inside or outside the clock package,
// is a protocol violation: engines must advance clocks by applying
// rules, never by reaching into their state.
//
// Clock state is derived structurally: every struct in ClockPkg with at
// least one unexported field (the rule-governed clocks), plus every
// named slice type used as such a field (clock.Vector). Exported-field
// structs (Drifting, EpsilonSynced) are configuration, not rule state.
//
// Sanctioned writers extend transitively over the call graph: an
// unexported clock-package helper every one of whose callers is itself
// sanctioned (rule method, constructor, or another such helper) is a
// rule application by delegation — splitting Strobe's body into
// helpers must not force allow annotations onto each fragment.
var ClockRule = &Analyzer{
	Name: "clockrule",
	Doc:  "clock state may only be written by the SVC/SSC/VC/SC rule methods and constructors",
	Run:  runClockRule,
}

func runClockRule(p *Pass) {
	if p.Config.ClockPkg == "" {
		return
	}
	clockPkg, err := p.Dep(p.Config.ClockPkg)
	if err != nil {
		return // the clock package itself failed to load; nothing to enforce against
	}
	stateStructs, stateSlices := clockStateTypes(clockPkg)
	if len(stateStructs) == 0 && len(stateSlices) == 0 {
		return
	}
	inClockPkg := p.ImportPath == p.Config.ClockPkg

	for _, f := range p.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			var lhs []ast.Expr
			switch n := n.(type) {
			case *ast.AssignStmt:
				lhs = n.Lhs
			case *ast.IncDecStmt:
				lhs = []ast.Expr{n.X}
			default:
				return true
			}
			var curFunc *ast.FuncDecl
			for i := len(stack) - 1; i >= 0 && curFunc == nil; i-- {
				if fd, ok := stack[i].(*ast.FuncDecl); ok {
					curFunc = fd
				}
			}
			for _, e := range lhs {
				kind := clockStateWrite(p, e, stateStructs, stateSlices)
				if kind == "" {
					continue
				}
				if inClockPkg && allowedClockWriter(p, curFunc) {
					continue
				}
				if inClockPkg {
					p.Reportf(e.Pos(), "clock %s written outside the rule methods (%s) and constructors: apply a rule instead", kind, strings.Join(p.Config.ClockRuleFuncs, "/"))
				} else {
					p.Reportf(e.Pos(), "clock %s written outside %s: engines must advance clocks through the rule methods (%s), never by mutating state", kind, p.Config.ClockPkg, strings.Join(p.Config.ClockRuleFuncs, "/"))
				}
			}
			return true
		})
	}
}

// clockStateTypes derives the rule-governed state types from the clock
// package: structs with unexported fields, and named slice types that
// appear as fields of those structs.
func clockStateTypes(pkg *types.Package) (structs map[*types.Named]bool, slices map[*types.Named]bool) {
	structs = make(map[*types.Named]bool)
	slices = make(map[*types.Named]bool)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named := namedType(tn.Type())
		if named == nil {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		hasUnexported := false
		for i := 0; i < st.NumFields(); i++ {
			if !st.Field(i).Exported() {
				hasUnexported = true
			}
		}
		if hasUnexported {
			structs[named] = true
		}
	}
	for named := range structs {
		st := named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			ft := namedType(st.Field(i).Type())
			if ft == nil || ft.Obj().Pkg() == nil || ft.Obj().Pkg().Path() != pkg.Path() {
				continue
			}
			if _, ok := ft.Underlying().(*types.Slice); ok {
				slices[ft] = true
			}
			if _, ok := ft.Underlying().(*types.Map); ok {
				slices[ft] = true
			}
		}
	}
	return structs, slices
}

// clockStateWrite reports whether assigning to e mutates clock state,
// returning a short description of what is written ("" if not).
// It peels the lvalue: an index into a value of a state slice type, or
// a selector naming a field of a state struct, is a state write.
func clockStateWrite(p *Pass, e ast.Expr, stateStructs, stateSlices map[*types.Named]bool) string {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			if n := namedType(p.TypeOf(x.X)); n != nil && stateSlices[baseNamed(n)] {
				return "vector component (" + n.Obj().Name() + ")"
			}
			e = x.X
		case *ast.SelectorExpr:
			if s := p.Info.Selections[x]; s != nil && s.Kind() == types.FieldVal {
				if owner := fieldOwner(s); owner != nil && stateStructs[baseNamed(owner)] {
					return "state field " + owner.Obj().Name() + "." + s.Obj().Name()
				}
			}
			e = x.X
		default:
			return ""
		}
	}
}

// baseNamed canonicalizes a named type to its origin (no-op without
// generics, which the clock package does not use).
func baseNamed(n *types.Named) *types.Named { return n.Origin() }

// fieldOwner returns the named struct type that declares the selected
// field, following the selection's receiver.
func fieldOwner(s *types.Selection) *types.Named {
	t := s.Recv()
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return namedType(t)
}

// allowedClockWriter reports whether fd (in the clock package) is a
// sanctioned mutator: a New* constructor, one of the rule methods, or
// an unexported helper reached only from sanctioned writers (computed
// as a fixpoint over the module call graph).
func allowedClockWriter(p *Pass, fd *ast.FuncDecl) bool {
	if fd == nil {
		return false // package-level var initializer
	}
	if directClockWriter(p.Config, fd.Name.Name, fd.Recv != nil) {
		return true
	}
	if p.Mod != nil && p.Mod.Graph != nil {
		if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
			return p.Mod.clockSanctioned()[canonFunc(fn)]
		}
	}
	return false
}

// directClockWriter is the non-graph base case: constructors and the
// configured rule methods.
func directClockWriter(cfg Config, name string, isMethod bool) bool {
	if strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") {
		return true
	}
	return isMethod && contains(cfg.ClockRuleFuncs, name)
}

// clockSanctioned computes (memoized) the transitive sanctioned-writer
// set: seeded with the rule methods and constructors of the clock
// package, then extended to every unexported clock-package function
// whose callers — it must have at least one — are all sanctioned.
// Exported helpers never qualify: anything callable from outside the
// package is not a rule fragment.
func (m *Module) clockSanctioned() map[*types.Func]bool {
	if m.clockSanct != nil {
		return m.clockSanct
	}
	s := make(map[*types.Func]bool)
	m.clockSanct = s
	g := m.Graph
	clockPath := m.Config.ClockPkg
	inClock := func(fn *types.Func) bool {
		return fn.Pkg() != nil && fn.Pkg().Path() == clockPath
	}
	for fn, fd := range g.DeclOf {
		if inClock(fn) && directClockWriter(m.Config, fn.Name(), fd.Recv != nil) {
			s[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn := range g.DeclOf {
			if s[fn] || !inClock(fn) || fn.Exported() {
				continue
			}
			callers := g.Callers[fn]
			if len(callers) == 0 {
				continue
			}
			all := true
			for _, e := range callers {
				if !s[e.Caller] {
					all = false
					break
				}
			}
			if all {
				s[fn] = true
				changed = true
			}
		}
	}
	return s
}
