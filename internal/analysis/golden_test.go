package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden harness runs the full driver (analyzers + allow
// suppression) over the fixture module under testdata/src and
// diff-checks the diagnostics against "// want" expectation comments
// (a backquoted regexp per comment): every diagnostic must match a
// want on its line, and every want must be matched by a diagnostic.
// The "want+1" form anchors the expectation to the following line,
// for findings that land on full-line comments (the allow grammar's
// own diagnostics).

// fixtureConfig scopes the analyzers to the fixture module the same
// way DefaultConfig scopes them to the repo.
func fixtureConfig() Config {
	return Config{
		DeterministicPkgs: []string{"fix/determ", "fix/dtaint", "fix/allowscope"},
		ClockPkg:          "fix/clockpkg",
		ClockRuleFuncs:    []string{"Strobe", "OnStrobe", "Tick", "Reset"},
		ObsPkg:            "fix/fastobs",
		NoopTypes: map[string][]string{
			"fix/fastobs":   {"Counter", "Registry"},
			"fix/flightrec": {"Recorder"},
		},
		HotPkgs: []string{"fix/fastuser"},
		// fix/hotkern.Missing is deliberately stale: the hotpath
		// analyzer must report a config entry that resolves to nothing.
		HotFuncs:  []string{"fix/hotkern.Kernel.Step", "fix/hotkern.Missing"},
		CodecPkgs: []string{"fix/codec"},
	}
}

func TestAnalyzersGolden(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(root, "fix")
	cases := []struct {
		name string
		pkgs []string
	}{
		{"determinism", []string{"fix/determ"}},
		{"determtaint", []string{"fix/dtaint", "fix/dthelp"}},
		{"allowscope", []string{"fix/allowscope"}},
		{"clockrule", []string{"fix/clockpkg", "fix/clockuser"}},
		{"fastpath", []string{"fix/fastobs", "fix/fastuser"}},
		{"fastpath-flight", []string{"fix/flightrec"}},
		{"hotpath", []string{"fix/hotkern"}},
		{"codecpair", []string{"fix/codec"}},
		{"goroutine", []string{"fix/goro"}},
		{"atomics", []string{"fix/atom"}},
		{"atomics-module", []string{"fix/atomuser"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags, err := RunPackages(loader, fixtureConfig(), All(), tc.pkgs)
			if err != nil {
				t.Fatal(err)
			}
			for _, pkg := range tc.pkgs {
				dir := filepath.Join(root, strings.TrimPrefix(pkg, "fix/"))
				checkGolden(t, dir, diags)
			}
		})
	}
}

var wantRe = regexp.MustCompile("// want(\\+1)? `([^`]*)`")

// checkGolden matches the diagnostics landing in dir against the want
// comments of dir's fixture files.
func checkGolden(t *testing.T, dir string, diags []Diagnostic) {
	t.Helper()
	type lineKey struct {
		file string
		line int
	}
	wants := make(map[lineKey][]*regexp.Regexp)
	matched := make(map[*regexp.Regexp]bool)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			target := i + 1 // line numbers are 1-based
			if m[1] == "+1" {
				target++
			}
			re, err := regexp.Compile(m[2])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern: %v", path, i+1, err)
			}
			wants[lineKey{path, target}] = append(wants[lineKey{path, target}], re)
		}
	}
	for _, d := range diags {
		if filepath.Dir(d.File) != dir {
			continue
		}
		found := false
		for _, re := range wants[lineKey{d.File, d.Line}] {
			if re.MatchString(d.Message) {
				matched[re] = true
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			if !matched[re] {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, re)
			}
		}
	}
}

// TestExplainTaint drives the -why machinery over the determtaint
// fixture: the two-hop finding in dtaint.go must explain as a rendered
// path ending at the wall-clock seed in the helper package.
func TestExplainTaint(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(root, "fix")
	res, err := Run(loader, fixtureConfig(), All(), []string{"fix/dtaint", "fix/dthelp"})
	if err != nil {
		t.Fatal(err)
	}
	// Locate the Observed call (the two-hop path) by its diagnostic.
	var file string
	var line int
	for _, d := range res.Diagnostics {
		if strings.Contains(d.Message, "call to dthelp.Observed") {
			file, line = d.File, d.Line
		}
	}
	if file == "" {
		t.Fatal("fixture lost the dthelp.Observed finding")
	}
	path := res.ExplainTaint(filepath.Base(file), line)
	if len(path) != 3 {
		t.Fatalf("ExplainTaint returned %d hops, want 3:\n%s", len(path), strings.Join(path, "\n"))
	}
	for i, want := range []string{
		"dtaint.Observe calls dthelp.Observed",
		"dthelp.Observed calls dthelp.Elapsed",
		"dthelp.Elapsed contains time.Since (seed)",
	} {
		if !strings.Contains(path[i], want) {
			t.Errorf("hop %d = %q, want it to contain %q", i, path[i], want)
		}
	}
	if res.ExplainTaint("nosuch.go", 1) != nil {
		t.Error("ExplainTaint invented a path for a position with no finding")
	}
}

// TestRepoClean runs the full suite over the real module with the real
// config: the tree must be clean, every //lint:allow annotation in it
// load-bearing (unused allows are themselves diagnostics).
func TestRepoClean(t *testing.T) {
	root, module, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(root, module)
	paths, err := loader.Discover()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunPackages(loader, DefaultConfig(), All(), paths)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}
