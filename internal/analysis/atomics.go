package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Atomics catches the exact shape of PR 4's mailbox-depth gauge race:
// a struct field reached both through sync/atomic operations and
// through plain loads or stores. Once any access to a field goes
// through atomic.AddInt64/LoadInt64/..., every access must — a plain
// write tears the atomicity and a plain read races it (the old gauge
// was Set from every delivery goroutine, so its value was whichever
// delivery ran last). Fields of the atomic.Int64-style wrapper types
// cannot be accessed non-atomically and need no checking; this
// analyzer exists for the function-style mixed pattern.
//
// The atomic-field inventory is module-wide: a field atomically
// updated in the package that owns it and plainly read from a sibling
// package (the observable shape of an exported counter field) is the
// same race, so collection runs once over every loaded package and
// each pass checks its own accesses against the shared set.
var Atomics = &Analyzer{
	Name: "atomics",
	Doc:  "fields accessed via sync/atomic functions must never be read or written plainly",
	Run:  runAtomics,
}

// atomicFuncPrefixes are the sync/atomic operation families that take a
// field address.
var atomicFuncPrefixes = []string{"Add", "And", "CompareAndSwap", "Load", "Or", "Store", "Swap"}

func isAtomicOp(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range atomicFuncPrefixes {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	return false
}

// collectAtomicFields records, into out, every struct field whose
// address feeds a sync/atomic operation in files (resolved via info).
func collectAtomicFields(info *types.Info, files []*ast.File, out map[types.Object]string) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if !isAtomicOp(fn) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if s := info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
					if _, seen := out[s.Obj()]; !seen {
						out[s.Obj()] = "atomic." + fn.Name()
					}
				}
			}
			return true
		})
	}
}

// moduleAtomicFields computes (memoized) the atomic-field inventory
// over every loaded module package.
func (m *Module) moduleAtomicFields() map[types.Object]string {
	if m.atomicFields != nil {
		return m.atomicFields
	}
	out := make(map[types.Object]string)
	m.atomicFields = out
	for _, pkg := range m.Loader.Packages() {
		collectAtomicFields(pkg.Info, pkg.Files, out)
	}
	return out
}

func runAtomics(p *Pass) {
	// Pass 1: the module-wide atomic-field inventory (fall back to
	// package-local collection when no whole-program context exists).
	var atomicFields map[types.Object]string
	if p.Mod != nil {
		atomicFields = p.Mod.moduleAtomicFields()
	} else {
		atomicFields = make(map[types.Object]string)
		collectAtomicFields(p.Info, p.Files, atomicFields)
	}
	if len(atomicFields) == 0 {
		return
	}
	// Pass 2: every other access to those fields must also be an
	// &-argument of an atomic operation.
	for _, f := range p.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := p.Info.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			via, isAtomic := atomicFields[s.Obj()]
			if !isAtomic {
				return true
			}
			field := s.Obj().Name()
			switch parent := stack[len(stack)-1].(type) {
			case *ast.UnaryExpr:
				if parent.Op == token.AND && addressFeedsAtomic(p, stack) {
					return true
				}
				p.Reportf(sel.Pos(), "address of field %s (accessed via %s elsewhere) escapes outside sync/atomic: all access must go through sync/atomic", field, via)
			case *ast.AssignStmt:
				if exprIsAssigned(parent, sel) {
					p.Reportf(sel.Pos(), "plain write to field %s, which is accessed via %s elsewhere in the module: mixed atomic/non-atomic access is a data race", field, via)
				} else {
					p.Reportf(sel.Pos(), "plain read of field %s, which is accessed via %s elsewhere in the module: use the matching atomic load", field, via)
				}
			case *ast.IncDecStmt:
				p.Reportf(sel.Pos(), "plain %s of field %s, which is accessed via %s elsewhere in the module: use %s", parent.Tok, field, via, via)
			default:
				p.Reportf(sel.Pos(), "plain read of field %s, which is accessed via %s elsewhere in the module: use the matching atomic load", field, via)
			}
			return true
		})
	}
}

// addressFeedsAtomic reports whether the &field expression whose
// ancestors are stack is a direct argument of a sync/atomic call:
// stack ends [..., CallExpr, UnaryExpr] (the selector is the UnaryExpr
// operand).
func addressFeedsAtomic(p *Pass, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok {
		return false
	}
	return isAtomicOp(calleeFunc(p.Info, call))
}

// exprIsAssigned reports whether sel appears on the left-hand side of
// the assignment.
func exprIsAssigned(as *ast.AssignStmt, sel ast.Expr) bool {
	for _, l := range as.Lhs {
		if ast.Unparen(l) == sel {
			return true
		}
	}
	return false
}
