package analysis

import (
	"go/ast"
	"go/types"
)

// inspectStack walks root like ast.Inspect while maintaining the stack
// of ancestor nodes. fn receives each node with its ancestors
// (outermost first, not including the node itself); returning false
// skips the node's children.
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		desc := fn(n, stack)
		if desc {
			stack = append(stack, n)
		}
		return desc
	})
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package-level function or method), or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// namedType unwraps aliases and reports the named type of t, or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// typeIn reports whether t is a named type declared in pkgPath with one
// of the given names (empty names = any named type of that package).
func typeIn(t types.Type, pkgPath string, names ...string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != pkgPath {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, name := range names {
		if n.Obj().Name() == name {
			return true
		}
	}
	return false
}

// recvBaseName returns the receiver's base type name of a method decl
// ("T" for func (t *T) or func (t T)), or "".
func recvBaseName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	// Generic receivers (T[P]) do not occur in this codebase.
	if idx, ok := t.(*ast.IndexExpr); ok {
		if id, ok := idx.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}
