package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// DetermTaint is the interprocedural half of the determinism contract:
// the package-local determinism analyzer catches time.Now written
// directly into a deterministic package, but it is structurally blind
// to a helper one package over — core calling a network utility that
// ranges a map, sim calling a stats helper that reads the wall clock.
// DetermTaint seeds taint at every nondeterministic construct anywhere
// in the module (wall-clock reads, global math/rand, environment
// reads, unsorted map ranges — the same inventory as determinism),
// propagates it backward over the module call graph (static edges plus
// interface dispatch resolved through the implements-sets), and flags
// every call from a deterministic package to a tainted function
// declared outside the deterministic boundary.
//
// Suppression composes with the package-local analyzer: a seed whose
// line carries //lint:allow determinism (inside the boundary) or
// //lint:allow determtaint (anywhere) does not taint, so the sanctioned
// wall-clock sites do not poison their callers. A surviving finding is
// suppressed at the call site with //lint:allow determtaint(reason).
// `pervalint -why file:line` prints the full call-graph path from the
// flagged call to the seed.
var DetermTaint = &Analyzer{
	Name: "determtaint",
	Doc:  "flag calls from deterministic packages into transitively nondeterministic helpers elsewhere in the module",
	Run:  runDetermTaint,
}

// taintSeed is one nondeterministic construct: the position and a
// short description ("time.Now", "map range", ...).
type taintSeed struct {
	pos  token.Pos
	desc string
}

// taintResult is the module-wide fixpoint, memoized on the Module.
type taintResult struct {
	// seedOf maps a function to the first live (unsuppressed) seed in
	// its own body.
	seedOf map[*types.Func]taintSeed
	// next maps a tainted function without its own seed to the call
	// edge leading one hop closer to a seed (BFS tree toward seeds).
	next map[*types.Func]CallEdge
	// findings records every reported call site for -why lookup.
	findings []TaintFinding
}

// TaintFinding is one reported deterministic-boundary crossing.
type TaintFinding struct {
	Pos    token.Position
	Caller *types.Func
	Callee *types.Func
}

func (tr *taintResult) tainted(fn *types.Func) bool {
	if _, ok := tr.seedOf[fn]; ok {
		return true
	}
	_, ok := tr.next[fn]
	return ok
}

// taintFixpoint computes (memoized) the module-wide taint set.
func (m *Module) taintFixpoint() *taintResult {
	if m.taint != nil {
		return m.taint
	}
	tr := &taintResult{
		seedOf: make(map[*types.Func]taintSeed),
		next:   make(map[*types.Func]CallEdge),
	}
	m.taint = tr
	g := m.Graph

	// Seed collection, over every loaded module package (not just the
	// analyzed set: the whole point is seeing helpers elsewhere).
	for _, pkg := range m.Loader.Packages() {
		inBoundary := contains(m.Config.DeterministicPkgs, pkg.ImportPath)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn = canonFunc(fn)
				if _, seen := tr.seedOf[fn]; seen {
					continue
				}
				if seed, ok := firstLiveSeed(m, pkg, fd, inBoundary); ok {
					tr.seedOf[fn] = seed
				}
			}
		}
	}

	// Backward BFS from the seed functions over the caller index: a
	// function is tainted when it can reach a live seed through calls.
	var queue []*types.Func
	for fn := range tr.seedOf {
		queue = append(queue, fn)
	}
	// Deterministic expansion order for reproducible shortest paths.
	sortFuncs(queue)
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		callers := g.Callers[fn]
		for _, e := range callers {
			if tr.tainted(e.Caller) {
				continue
			}
			tr.next[e.Caller] = e
			queue = append(queue, e.Caller)
		}
	}
	return tr
}

func sortFuncs(fns []*types.Func) {
	for i := 1; i < len(fns); i++ {
		for j := i; j > 0 && funcKey(fns[j]) < funcKey(fns[j-1]); j-- {
			fns[j], fns[j-1] = fns[j-1], fns[j]
		}
	}
}

// firstLiveSeed scans fd's body for the earliest nondeterministic
// construct not suppressed by an allow: //lint:allow determtaint stops
// seeding anywhere; inside the deterministic boundary //lint:allow
// determinism does too (those sites are the package-local analyzer's
// business, already justified in place).
func firstLiveSeed(m *Module, pkg *Package, fd *ast.FuncDecl, inBoundary bool) (taintSeed, bool) {
	var seed taintSeed
	found := false
	suppressed := func(pos token.Pos) bool {
		position := m.Loader.Fset.Position(pos)
		if m.allowedAt(pkg, "determtaint", position) {
			return true
		}
		return inBoundary && m.allowedAt(pkg, "determinism", position)
	}
	// Walk from the declaration, not the body, so collectThenSorted can
	// find the enclosing FuncDecl on the stack for top-level map ranges.
	inspectStack(fd, func(n ast.Node, stack []ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if desc := nondetCallDesc(pkg.Info, n); desc != "" && !suppressed(n.Pos()) {
				seed, found = taintSeed{pos: n.Pos(), desc: desc}, true
			}
		case *ast.RangeStmt:
			t := pkg.Info.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if collectThenSorted(pkg.Info, n, stack) || suppressed(n.Pos()) {
				return true
			}
			seed, found = taintSeed{pos: n.Pos(), desc: "map range"}, true
		}
		return !found
	})
	return seed, found
}

func runDetermTaint(p *Pass) {
	if p.Mod == nil || p.Mod.Graph == nil {
		return
	}
	if !contains(p.Config.DeterministicPkgs, p.ImportPath) {
		return
	}
	tr := p.Mod.taintFixpoint()
	g := p.Mod.Graph
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fn = canonFunc(fn)
			for _, e := range g.Callees[fn] {
				calleePkg := g.PkgOf[e.Callee]
				if calleePkg == nil || contains(p.Config.DeterministicPkgs, calleePkg.ImportPath) {
					// Inside the boundary the package-local analyzer
					// already flags the seed at its own site.
					continue
				}
				if !tr.tainted(e.Callee) {
					continue
				}
				hops, seed := tr.pathFrom(e.Callee, g)
				seedPos := p.Fset.Position(seed.pos)
				via := ""
				if e.Dynamic {
					via = fmt.Sprintf(" (dynamic dispatch via %s)", FuncDisplay(e.Iface))
				}
				p.Reportf(e.Pos, "call to %s%s is determinism-tainted: reaches %s at %s%s; make the helper deterministic, or justify with //lint:allow determtaint(reason) — pervalint -why %s:%d prints the path",
					FuncDisplay(e.Callee), via, seed.desc, shortPos(seedPos), hopSummary(hops), filepath.Base(p.Fset.Position(e.Pos).Filename), p.Fset.Position(e.Pos).Line)
				tr.findings = append(tr.findings, TaintFinding{
					Pos:    p.Fset.Position(e.Pos),
					Caller: fn,
					Callee: e.Callee,
				})
			}
		}
	}
}

// pathFrom walks the BFS tree from fn to its seed, returning the hop
// functions (fn first) and the seed.
func (tr *taintResult) pathFrom(fn *types.Func, g *CallGraph) ([]*types.Func, taintSeed) {
	var hops []*types.Func
	cur := fn
	for {
		hops = append(hops, cur)
		if seed, ok := tr.seedOf[cur]; ok {
			return hops, seed
		}
		e, ok := tr.next[cur]
		if !ok || len(hops) > 64 {
			// Unreachable for a tainted function; bail defensively.
			return hops, taintSeed{desc: "unknown"}
		}
		cur = e.Callee
	}
}

// hopSummary renders a compact " via a → b" suffix for multi-hop
// paths; the direct case (the callee itself holds the seed) is empty.
func hopSummary(hops []*types.Func) string {
	if len(hops) <= 1 {
		return ""
	}
	if len(hops) > 4 {
		return fmt.Sprintf(" via %d intermediate calls", len(hops)-1)
	}
	names := make([]string, 0, len(hops)-1)
	for _, fn := range hops[1:] {
		names = append(names, FuncDisplay(fn))
	}
	return " via " + strings.Join(names, " → ")
}

func shortPos(p token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// ExplainTaint renders the full call-graph path for the determtaint
// finding at (file, line) — file matched by suffix, so a repo-relative
// or bare filename works. It returns one rendered line per hop, or nil
// when no finding matches.
func (r *Result) ExplainTaint(file string, line int) []string {
	if r.Mod == nil || r.Mod.taint == nil {
		return nil
	}
	tr := r.Mod.taint
	g := r.Mod.Graph
	fset := r.Mod.Loader.Fset
	for _, f := range tr.findings {
		if f.Pos.Line != line || !suffixMatch(f.Pos.Filename, file) {
			continue
		}
		var out []string
		out = append(out, fmt.Sprintf("%s: %s calls %s",
			shortPos(f.Pos), FuncDisplay(f.Caller), FuncDisplay(f.Callee)))
		hops, seed := tr.pathFrom(f.Callee, g)
		for i, fn := range hops {
			if s, ok := tr.seedOf[fn]; ok && i == len(hops)-1 {
				out = append(out, fmt.Sprintf("  %s: %s contains %s (seed)",
					shortPos(fset.Position(s.pos)), FuncDisplay(fn), seed.desc))
				break
			}
			e := tr.next[fn]
			out = append(out, fmt.Sprintf("  %s: %s calls %s",
				shortPos(fset.Position(e.Pos)), FuncDisplay(fn), FuncDisplay(e.Callee)))
		}
		return out
	}
	return nil
}

func suffixMatch(full, suffix string) bool {
	full = filepath.ToSlash(full)
	suffix = filepath.ToSlash(suffix)
	if full == suffix || strings.HasSuffix(full, "/"+suffix) {
		return true
	}
	return filepath.Base(full) == suffix
}
