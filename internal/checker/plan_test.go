package checker

import (
	"testing"

	"pervasive/internal/predicate"
)

func regOf4(n, r int) func(int) int { return func(p int) int { return p * r / n } }

func TestPlanLinearizesSumsAndAggregates(t *testing.T) {
	pred := predicate.MustParse("p@0 + p@1 - p@2 >= 2")
	p := NewPlan(pred, 8, regOf4(8, 4))
	if len(p.clauses) != 1 || !p.clauses[0].linear {
		t.Fatalf("expected one linear clause, got %+v", p.clauses)
	}
	if got := len(p.byKey[predicate.Key{Proc: 0, Name: "p"}]); got != 1 {
		t.Errorf("p@0 hooks = %d, want 1", got)
	}
	c := p.byKey[predicate.Key{Proc: 2, Name: "p"}][0]
	if c.c != -1 || c.side != 0 {
		t.Errorf("p@2 coefficient = %+v, want -1 on side 0", c)
	}
	if p.clauses[0].sides[1].konst != 2 {
		t.Errorf("right konst = %v, want 2", p.clauses[0].sides[1].konst)
	}

	agg := predicate.MustParse("sum(x) - sum(y) > 200")
	pa := NewPlan(agg, 8, regOf4(8, 4))
	if !pa.clauses[0].linear {
		t.Fatalf("aggregate difference should linearize")
	}
	if got := len(pa.byKey[predicate.Key{Proc: -1, Name: "x"}]); got != 1 {
		t.Errorf("sum(x) hooks = %d, want 1", got)
	}
	if c := pa.byKey[predicate.Key{Proc: -1, Name: "y"}][0]; c.c != -1 {
		t.Errorf("sum(y) coefficient = %v, want -1", c.c)
	}
	if pa.clauses[0].home != -1 {
		t.Errorf("aggregate clause homed to region %d, want -1 (spans)", pa.clauses[0].home)
	}
}

func TestPlanFlattensConjunctionAndHomesLocalClauses(t *testing.T) {
	// p@0 >= 1 is fully inside region 0 of a 4-region/8-proc split;
	// p@6 + p@7 >= 1 inside region 3; the cross term spans.
	pred := predicate.MustParse("p@0 >= 1 && p@6 + p@7 >= 1 && p@0 + p@7 >= 1")
	p := NewPlan(pred, 8, regOf4(8, 4))
	if len(p.clauses) != 3 {
		t.Fatalf("clauses = %d, want 3", len(p.clauses))
	}
	homes := []int{p.clauses[0].home, p.clauses[1].home, p.clauses[2].home}
	if homes[0] != 0 || homes[1] != 3 || homes[2] != -1 {
		t.Errorf("homes = %v, want [0 3 -1]", homes)
	}
	if !p.boundaryKey(0, "p", 0) {
		t.Errorf("p@0 feeds the spanning clause; must be boundary-relevant")
	}
	if p.boundaryKey(6, "p", 3) {
		t.Errorf("p@6 is read only by the region-3 clause; must be local from region 3")
	}
}

func TestPlanOpaqueFallback(t *testing.T) {
	cases := []string{
		"p@0 * p@1 > 1",      // product
		"avg(x) > 0.5",       // non-sum aggregate
		"p@0 > 1 || x@1 > 1", // disjunction
	}
	for _, src := range cases {
		p := NewPlan(predicate.MustParse(src), 8, regOf4(8, 4))
		if len(p.clauses) != 1 || p.clauses[0].linear {
			t.Errorf("%q: expected one opaque clause", src)
		}
	}
	// Opaque clauses still register affected-keys for refresh.
	p := NewPlan(predicate.MustParse("p@0 * p@1 > 1"), 8, regOf4(8, 4))
	if got := len(p.opaqueByKey[predicate.Key{Proc: 1, Name: "p"}]); got != 1 {
		t.Errorf("opaque key hooks = %d, want 1", got)
	}
}

// TestPlanOpaqueMatchesDirectEval drives a tree holding an opaque
// predicate and checks its settled verdicts equal direct evaluation.
func TestPlanOpaqueMatchesDirectEval(t *testing.T) {
	pred := predicate.MustParse("p@0 * p@1 >= 1 || p@2 >= 3")
	tr := New(Config{N: 4, Pred: pred, Fanout: 2})
	seq := make([]int, 4)
	set := func(proc int, v float64) {
		seq[proc]++
		tr.OnReport(Report{Proc: proc, Seq: seq[proc], Var: "p", Value: v}, 1)
	}
	check := func(want bool) {
		t.Helper()
		if got := tr.numFalse == 0; got != want {
			t.Fatalf("settled = %v, want %v", got, want)
		}
	}
	check(false)
	set(0, 1)
	check(false)
	set(1, 1)
	check(true) // product path
	set(1, 0)
	check(false)
	set(2, 3)
	check(true) // disjunct path
}
