package checker

import (
	"encoding/binary"
	"fmt"
	"math"

	"pervasive/internal/clock"
	"pervasive/internal/sim"
)

// Batch is one aggregator→root sync flush: the coalesced strobe-stamp
// watermarks of every process that reported since the previous flush,
// plus value metadata for the boundary-relevant subset (processes read
// by clauses that span regions — region-local clause inputs stay local,
// only their verdicts matter upstream and those ride the clause state).
type Batch struct {
	Region int
	// Epoch is the aggregator's regional epoch; the root discards batches
	// from before the aggregator's latest recovery.
	Epoch int
	At    sim.Time
	// Triples are the per-process (proc, val, sent) stamp watermarks, in
	// proc order.
	Triples []clock.StampTriple
	// Entries carry the boundary-relevant values, in proc order.
	Entries []BatchEntry
}

// BatchEntry is one boundary-relevant value in a sync batch.
type BatchEntry struct {
	Proc  int
	Epoch int // sender's crash/recovery epoch
	Var   string
	Value float64
}

// AppendWire appends the batch's wire encoding to dst: the header
// (region, regional epoch, at), the delta-coded stamp-triple block
// (clock.AppendStampBatch), then the entry block with proc ids
// delta-coded the same way.
func (b *Batch) AppendWire(dst []byte) []byte {
	var buf [binary.MaxVarintLen64]byte
	putUv := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		dst = append(dst, buf[:n]...)
	}
	putUv(uint64(b.Region))
	putUv(uint64(b.Epoch))
	putUv(uint64(b.At))
	dst = clock.AppendStampBatch(dst, b.Triples)
	putUv(uint64(len(b.Entries)))
	prev := -1
	for _, e := range b.Entries {
		if e.Proc <= prev {
			panic(fmt.Sprintf("checker: batch entries must be sorted by proc (%d after %d)", e.Proc, prev))
		}
		putUv(uint64(e.Proc - prev))
		prev = e.Proc
		putUv(uint64(e.Epoch))
		putUv(uint64(len(e.Var)))
		dst = append(dst, e.Var...)
		var fb [8]byte
		binary.LittleEndian.PutUint64(fb[:], math.Float64bits(e.Value))
		dst = append(dst, fb[:]...)
	}
	return dst
}

// DecodeBatch decodes one batch from the front of b, returning it and
// the bytes consumed.
func DecodeBatch(b []byte) (Batch, int, error) {
	var out Batch
	off := 0
	uv := func(what string) (uint64, error) {
		v, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return 0, fmt.Errorf("checker: batch: bad %s varint", what)
		}
		off += n
		return v, nil
	}
	region, err := uv("region")
	if err != nil {
		return out, 0, err
	}
	epoch, err := uv("epoch")
	if err != nil {
		return out, 0, err
	}
	at, err := uv("at")
	if err != nil {
		return out, 0, err
	}
	out.Region, out.Epoch, out.At = int(region), int(epoch), sim.Time(at)
	triples, n, err := clock.DecodeStampBatch(b[off:])
	if err != nil {
		return out, 0, err
	}
	off += n
	out.Triples = triples
	count, err := uv("entry count")
	if err != nil {
		return out, 0, err
	}
	prev := -1
	for i := uint64(0); i < count; i++ {
		gap, err := uv("entry proc")
		if err != nil {
			return out, 0, err
		}
		if gap == 0 {
			return out, 0, fmt.Errorf("checker: batch: zero proc delta at entry %d", i)
		}
		prev += int(gap)
		pe, err := uv("entry epoch")
		if err != nil {
			return out, 0, err
		}
		vlen, err := uv("entry var len")
		if err != nil {
			return out, 0, err
		}
		if off+int(vlen)+8 > len(b) {
			return out, 0, fmt.Errorf("checker: batch: truncated entry %d", i)
		}
		name := string(b[off : off+int(vlen)])
		off += int(vlen)
		val := math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
		out.Entries = append(out.Entries, BatchEntry{
			Proc: prev, Epoch: int(pe), Var: name, Value: val,
		})
	}
	return out, off, nil
}
