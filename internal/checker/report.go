package checker

import (
	"pervasive/internal/clock"
	"pervasive/internal/sim"
)

// Report is one sensor strobe report as seen by the checker tree — the
// payload of core.StrobeMsg without the transport envelope, so the tree
// package stays independent of the engine/transport layers.
type Report struct {
	Proc int
	Seq  int // per-process sense event counter (1-based)
	// Epoch is bumped each time the sender recovers from a crash.
	Epoch int
	Var   string
	Value float64
	// Vec is the full strobe vector stamp (vector protocol).
	Vec clock.Vector
	// Scalar is the strobe scalar stamp (scalar protocol).
	Scalar uint64
	// Sparse is the differential strobe payload: only the components
	// changed since the sender's previous broadcast.
	Sparse clock.SparseStamp
}

// OwnClock extracts the sender's own clock component — the value the
// emitting SVC1/SSC1 tick stamped on this report, and the `val` of the
// batched (proc, val, sent) sync triple.
func (m Report) OwnClock() uint64 {
	switch {
	case m.Vec != nil:
		if m.Proc >= 0 && m.Proc < len(m.Vec) {
			return m.Vec[m.Proc]
		}
	case m.Sparse != nil:
		for _, e := range m.Sparse {
			if e.Proc == m.Proc {
				return e.Val
			}
		}
	default:
		return m.Scalar
	}
	return 0
}

// FlightStamp implements flight.Stamped (same identity the transport
// message carries, so tree and flat checker dumps line up).
func (m Report) FlightStamp() (epoch, seq int, clk uint64) {
	return m.Epoch, m.Seq, m.OwnClock()
}

// Occurrence is one detected period during which the tree's view
// satisfied the predicate; it mirrors core.Occurrence (the package split
// keeps checker below core in the import graph).
type Occurrence struct {
	Start, End sim.Time
	// Borderline marks an occurrence whose opening flip was
	// race-ambiguous (Section 5's borderline bin).
	Borderline bool
}
