// Package checker implements the hierarchical sharded checker tree: the
// paper's §2.1 centralized checker P0, generalized from one flat process
// into a two-tier tree of R regional aggregators under one root so that
// detection state and per-report work scale with the network instead of
// funneling O(p) state and O(p·strobes) serial evaluation through a
// single process.
//
// Topology and placement. Sensors are partitioned contiguously into R
// regions (the same proportional map the sharded engine uses for its
// spatial partition, so "one aggregator per shard region" is the natural
// deployment). Each regional aggregator owns the per-process admission
// state (seq/epoch discipline), the latest sensed values, and — when
// race-aware — the per-sender strobe-vector reconstructions for its
// region only. The root owns only the predicate's clause states and the
// detection/occurrence log.
//
// Clause decomposition. The predicate is flattened at its top-level
// conjunction into clauses. A clause whose comparison sides linearize
// into ±1-coefficient sums of per-process variables (plus sum()
// aggregates and constants) is maintained incrementally: each applied
// report adjusts the owning region's partial and the clause totals in
// O(coefficients-of-that-variable), and the root's verdict is a
// zero-false-clause counter — O(1) per report, independent of p.
// Clauses that do not linearize (products, ratios, avg/min/max,
// disjunctions, opaque functions) are kept whole and re-evaluated
// against the distributed view only when a variable they read changes.
// Incremental maintenance is exact for the integer-valued sensor
// readings this system carries (0/1 occupancy toggles and small counts
// are exact in float64, as are their ±1-weighted sums); the race-probe
// machinery never trusts incremental restores at all — probes evaluate
// functionally against pending deltas and restore saved values verbatim.
//
// Batched upward sync. Detection itself rides the immediate delta
// channel: every admitted report updates clause state at once, which is
// what keeps the tree's detection output byte-identical to the flat
// checker's at every fan-out (the flat checker is the R=1 fast path and
// the differential oracle). What the tree batches is the upward state
// sync: each aggregator coalesces superseded per-process values into a
// pending set and periodically flushes one batch — delta-coded
// (proc, val, sent) strobe-stamp triples (clock.AppendStampBatch) plus
// value metadata for boundary-relevant processes only (those read by
// clauses that span regions) — which the root decodes to advance its
// consolidated watermarks. The codec is load-bearing: watermarks advance
// only through encode→decode, and the wire bytes are the tree's
// bandwidth cost model.
//
// Bounded memory. An aggregator's state is O(region) for values and
// admission, O(1) histogram/pending bounded by MaxBatch (a full pending
// set forces a flush), and the race-aware reconstructions — the only
// O(region·p) component — are allocated lazily and only when race
// detection is on, mirroring the flat checker's memory gate. Aggregator
// crash/recovery resets the regional state wholesale (values, stamps,
// admission, partials) under a bumped regional epoch, so a rejoined
// aggregator can never merge pre-crash regional state into its fresh
// view.
package checker
