package checker

import (
	"reflect"
	"testing"

	"pervasive/internal/clock"
)

func TestBatchWireRoundTrip(t *testing.T) {
	b := Batch{
		Region: 3, Epoch: 2, At: 12345,
		Triples: []clock.StampTriple{
			{Proc: 10, Val: 7, Sent: 7},
			{Proc: 11, Val: 300, Sent: 12},
			{Proc: 19, Val: 1, Sent: 1},
		},
		Entries: []BatchEntry{
			{Proc: 10, Epoch: 0, Var: "p", Value: 1},
			{Proc: 19, Epoch: 4, Var: "occupancy", Value: -2.5},
		},
	}
	wire := b.AppendWire(nil)
	got, n, err := DecodeBatch(wire)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d of %d bytes", n, len(wire))
	}
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("round trip:\nwant %+v\ngot  %+v", b, got)
	}
	// Concatenated batches decode independently.
	wire2 := b.AppendWire(wire)
	_, n1, _ := DecodeBatch(wire2)
	got2, n2, err := DecodeBatch(wire2[n1:])
	if err != nil || n1+n2 != len(wire2) || !reflect.DeepEqual(got2, b) {
		t.Fatalf("concatenated decode failed: n=%d+%d of %d err=%v", n1, n2, len(wire2), err)
	}
}

func TestBatchWireEmpty(t *testing.T) {
	b := Batch{Region: 0, Epoch: 0, At: 0}
	wire := b.AppendWire(nil)
	got, n, err := DecodeBatch(wire)
	if err != nil || n != len(wire) {
		t.Fatalf("empty batch decode: n=%d/%d err=%v", n, len(wire), err)
	}
	if len(got.Triples) != 0 || len(got.Entries) != 0 {
		t.Fatalf("empty batch grew content: %+v", got)
	}
}

func TestBatchWireTruncationErrors(t *testing.T) {
	b := Batch{
		Region: 1, Epoch: 0, At: 99,
		Triples: []clock.StampTriple{{Proc: 0, Val: 1, Sent: 1}},
		Entries: []BatchEntry{{Proc: 0, Var: "p", Value: 1}},
	}
	wire := b.AppendWire(nil)
	for cut := 0; cut < len(wire); cut++ {
		if _, _, err := DecodeBatch(wire[:cut]); err == nil {
			t.Errorf("truncation at %d of %d decoded without error", cut, len(wire))
		}
	}
}

func TestBatchWireRejectsUnsortedEntries(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unsorted entries")
		}
	}()
	b := Batch{Entries: []BatchEntry{{Proc: 5, Var: "p"}, {Proc: 5, Var: "q"}}}
	b.AppendWire(nil)
}
