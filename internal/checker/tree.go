package checker

import (
	"fmt"

	"pervasive/internal/clock"
	"pervasive/internal/flight"
	"pervasive/internal/obs"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
)

// Config assembles one checker tree.
type Config struct {
	// N is the sensor count; reports carry Proc in [0, N).
	N    int
	Pred predicate.Cond
	// Fanout is R, the number of regional aggregators (clamped to [1, N]).
	Fanout int
	// RaceAware keeps per-sender strobe-vector reconstructions per region
	// and classifies order-ambiguous flips into the borderline bin; off,
	// the tree is the race-blind scale configuration.
	RaceAware bool
	// NaiveRace switches to the naive any-concurrency race criterion
	// (the A2 ablation's knob on the flat checker).
	NaiveRace bool
	// BatchInterval is the upward sync flush cadence (default 5ms — the
	// default delivery lookahead, so one batch per delay window).
	BatchInterval sim.Duration
	// MaxBatch bounds the pending sync set per aggregator; a full set
	// forces a flush (default 256). This is the bounded-memory knob.
	MaxBatch int
}

// Stats are the tree's cumulative counters.
type Stats struct {
	// Applied / Stale mirror the flat checker's admission counters.
	Applied, Stale int64
	// Batches / BatchTriples / BatchEntries count upward sync flushes,
	// their stamp-watermark triples, and their boundary value entries.
	Batches, BatchTriples, BatchEntries int64
	// Coalesced counts superseded pending values overwritten before they
	// ever crossed the tier boundary.
	Coalesced int64
	// LocalEntries counts pending values filtered as region-local (read
	// only by clauses homed in the owning region).
	LocalEntries int64
	// WireBytes is the total encoded size of every flushed batch.
	WireBytes int64
	// RegionDropped counts reports dropped because the owning regional
	// aggregator was crashed.
	RegionDropped int64
	// SyncedProcs / SyncLagTotal measure the upward channel's staleness:
	// per flushed process, how long its oldest unsynced report waited.
	SyncedProcs  int64
	SyncLagTotal sim.Duration
}

// clauseState is the root's mutable evaluation state for one clause.
type clauseState struct {
	// totals are the two comparison side values (konst baked in);
	// meaningful only for linear clauses.
	totals [2]float64
	// reg are the per-region partial contributions to each side — what
	// RecoverRegion subtracts to forget a crashed region.
	reg   [2][]float64
	truth bool
}

// rootView is the root's batch-synced consolidated state: per-process
// strobe watermarks and boundary values, advanced only by decoding
// flushed batches (the wire codec is load-bearing).
type rootView struct {
	own         []uint64
	seq         []int
	regionEpoch []int
	vals        map[predicate.Key]float64
	lastBatchAt sim.Time
}

// Tree is the hierarchical checker: R regional aggregators under one
// root, detection-equivalent to the flat core.StrobeChecker at every
// fan-out. Like the flat checker it is single-goroutine: all reports are
// delivered on the checker's home shard.
type Tree struct {
	n, r      int
	pred      predicate.Cond
	raceAware bool
	plan      *Plan
	aggs      []*Aggregator

	cs       []clauseState
	numFalse int
	// state is the distributed view pre-boxed as a predicate.State (same
	// hot-path boxing note as the flat checker).
	state predicate.State

	cur      bool
	occ      []Occurrence
	markers  []sim.Time
	finished bool

	// Notify, if set, is invoked on each detection rising edge.
	Notify func(o Occurrence)
	// NaiveRace mirrors Config.NaiveRace (mutable for ablations).
	NaiveRace bool

	batchInterval sim.Duration
	maxBatch      int
	root          rootView
	wireScratch   []byte

	// Stat is the cumulative counter block.
	Stat Stats

	obsEvals      *obs.Counter
	obsDetections *obs.Counter
	obsApplied    *obs.Counter
	obsStale      *obs.Counter
	obsRaces      *obs.Counter
	obsBatches    *obs.Counter
	obsWireBytes  *obs.Counter
	obsCoalesced  *obs.Counter
	obsDropped    *obs.Counter

	fl     *flight.Recorder
	flSelf int32
}

// New builds the tree: compiles the predicate into the clause plan,
// carves [0, N) into Fanout contiguous regions, and initializes clause
// truth at the all-zero view (the same implicit initial view the flat
// checker starts from).
func New(cfg Config) *Tree {
	if cfg.N <= 0 {
		panic("checker: tree needs at least one process")
	}
	r := cfg.Fanout
	if r < 1 {
		r = 1
	}
	if r > cfg.N {
		r = cfg.N
	}
	if cfg.BatchInterval <= 0 {
		cfg.BatchInterval = 5 * sim.Millisecond
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	t := &Tree{
		n: cfg.N, r: r, pred: cfg.Pred,
		raceAware: cfg.RaceAware, NaiveRace: cfg.NaiveRace,
		batchInterval: cfg.BatchInterval, maxBatch: cfg.MaxBatch,
		root: rootView{
			own:         make([]uint64, cfg.N),
			seq:         make([]int, cfg.N),
			regionEpoch: make([]int, r),
			vals:        make(map[predicate.Key]float64),
		},
	}
	t.state = treeState{t}
	t.plan = NewPlan(cfg.Pred, cfg.N, t.RegionOf)
	t.aggs = make([]*Aggregator, r)
	for i := 0; i < r; i++ {
		t.aggs[i] = newAggregator(i, t.regionLo(i), t.regionLo(i+1))
	}
	t.cs = make([]clauseState, len(t.plan.clauses))
	for i, cl := range t.plan.clauses {
		cs := &t.cs[i]
		cs.reg = [2][]float64{make([]float64, r), make([]float64, r)}
		if cl.linear {
			cs.totals = [2]float64{cl.sides[0].konst, cl.sides[1].konst}
			cs.truth = cmpEval(cl.op, cs.totals[0], cs.totals[1])
		} else {
			cs.truth = cl.cond.Holds(t.state)
		}
		if !cs.truth {
			t.numFalse++
		}
	}
	return t
}

// RegionOf returns the region owning process p — the same proportional
// contiguous map the sharded engine uses for its spatial partition.
func (t *Tree) RegionOf(p int) int { return p * t.r / t.n }

// regionLo returns the first process of region i (regionLo(r) == n).
func (t *Tree) regionLo(i int) int { return (i*t.n + t.r - 1) / t.r }

// aggFor resolves a process to its aggregator and region-local index.
func (t *Tree) aggFor(p int) (*Aggregator, int) {
	a := t.aggs[t.RegionOf(p)]
	return a, p - a.lo
}

// Fanout returns R, the number of regional aggregators.
func (t *Tree) Fanout() int { return t.r }

// Aggregators exposes the regional nodes (tests, memory accounting).
func (t *Tree) Aggregators() []*Aggregator { return t.aggs }

// treeState adapts the distributed regional values to predicate.State.
type treeState struct{ t *Tree }

// Get implements predicate.State.
func (s treeState) Get(proc int, name string) float64 {
	if proc < 0 || proc >= s.t.n {
		return 0
	}
	a, li := s.t.aggFor(proc)
	return a.vals[li][name]
}

// NumProcs implements predicate.State.
func (s treeState) NumProcs() int { return s.t.n }

// SetObs attaches runtime metrics. The checker.* names match the flat
// checker's so dashboards are checker-implementation agnostic; the
// checker.tree.* names cover the tree-only machinery.
func (t *Tree) SetObs(r *obs.Registry) {
	t.obsEvals = r.Counter("checker.pred_evals")
	t.obsDetections = r.Counter("checker.detections")
	t.obsApplied = r.Counter("checker.strobes_applied")
	t.obsStale = r.Counter("checker.strobes_stale")
	t.obsRaces = r.Counter("checker.race_markers")
	t.obsBatches = r.Counter("checker.tree.batches")
	t.obsWireBytes = r.Counter("checker.tree.wire_bytes")
	t.obsCoalesced = r.Counter("checker.tree.coalesced")
	t.obsDropped = r.Counter("checker.tree.region_dropped")
}

// SetFlight attaches a flight recorder at the checker's transport index,
// recording the same Apply/Stale/Detect/Clear stream as the flat checker.
func (t *Tree) SetFlight(r *flight.Recorder, self int) {
	t.fl = r
	t.flSelf = int32(self)
}

// OnReport applies one received strobe report. The admission discipline,
// view update, race probe and flip logic replicate the flat checker's
// OnStrobe step for step — the differential tests hold the two
// implementations to byte-identical output.
func (t *Tree) OnReport(m Report, now sim.Time) {
	if t.finished {
		return
	}
	if m.Proc < 0 || m.Proc >= t.n {
		t.Stat.Stale++
		t.obsStale.Inc()
		return
	}
	a, li := t.aggFor(m.Proc)
	if a.down {
		// A crashed aggregator drops its region's reports on the floor;
		// the root's last-synced view of the region persists, exactly as
		// the flat checker's view of a dead sensor does.
		t.Stat.RegionDropped++
		t.obsDropped.Inc()
		return
	}
	switch {
	case m.Epoch < a.lastEpoch[li]:
		t.Stat.Stale++
		t.obsStale.Inc()
		t.recordStale(m, now)
		return
	case m.Epoch > a.lastEpoch[li]:
		a.lastEpoch[li] = m.Epoch
		a.lastSeq[li] = 0
		a.stamps[li] = nil
		a.lastChange[li] = change{}
		if a.recon != nil {
			a.recon[li].Reset()
		}
	}
	if m.Seq <= a.lastSeq[li] {
		t.Stat.Stale++
		t.obsStale.Inc()
		t.recordStale(m, now)
		return
	}
	a.lastSeq[li] = m.Seq
	t.Stat.Applied++
	t.obsApplied.Inc()
	if t.fl != nil {
		epoch, seq, clk := m.FlightStamp()
		t.fl.Record(flight.Rec{
			Kind: flight.Apply, Proc: t.flSelf, Peer: int32(m.Proc),
			Epoch: int32(epoch), Seq: uint64(seq), At: now,
			Attr: t.fl.Intern(m.Var), PeerClock: clk, Value: m.Value,
		})
	}

	// Differential strobes: per-sender reconstruction, allocated lazily
	// per region and only race-aware (the flat checker's memory gate).
	if m.Vec == nil && m.Sparse != nil && t.raceAware {
		if a.recon == nil {
			a.recon = make([]clock.Vector, a.hi-a.lo)
			a.stampBuf = make([]clock.Vector, a.hi-a.lo)
		}
		if a.recon[li] == nil {
			a.recon[li] = clock.NewVector(t.n)
			a.stampBuf[li] = clock.NewVector(t.n)
		}
		a.recon[li].MergeSparse(m.Sparse)
		copy(a.stampBuf[li], a.recon[li])
		m.Vec = a.stampBuf[li]
	}

	prev := a.vals[li][m.Var]
	a.vals[li][m.Var] = m.Value
	t.obsEvals.Inc()
	if delta := m.Value - prev; delta != 0 {
		t.applyDelta(m.Proc, m.Var, delta, a.region)
	}
	settled := t.numFalse == 0

	race := false
	if t.raceAware && m.Vec != nil {
		race = t.detectRace(m, prev)
	}

	a.lastChange[li] = change{varName: m.Var, prev: prev, valid: true}
	if m.Vec != nil {
		a.stamps[li] = m.Vec
	}

	if race {
		t.markers = append(t.markers, now)
		t.obsRaces.Inc()
	}
	t.flip(settled, race, now)

	// Upward sync: coalesce into the pending set, flush lazily.
	if a.stage(m, now) {
		t.Stat.Coalesced++
		t.obsCoalesced.Inc()
	}
	if len(a.pending) >= t.maxBatch || now-a.lastFlush >= t.batchInterval {
		t.flushAgg(a, now)
	}
}

// recordStale stamps one discarded report at the checker's ring.
func (t *Tree) recordStale(m Report, now sim.Time) {
	if t.fl == nil {
		return
	}
	epoch, seq, clk := m.FlightStamp()
	t.fl.Record(flight.Rec{
		Kind: flight.Stale, Proc: t.flSelf, Peer: int32(m.Proc),
		Epoch: int32(epoch), Seq: uint64(seq), At: now,
		Attr: t.fl.Intern(m.Var), PeerClock: clk, Value: m.Value,
	})
}

// applyDelta folds one value change into the clause states: O(hooks for
// that variable), independent of the fleet size — the per-report cost
// the flat checker pays O(p) for on aggregate predicates.
func (t *Tree) applyDelta(proc int, name string, delta float64, region int) {
	kc := t.plan.byKey[predicate.Key{Proc: proc, Name: name}]
	ka := t.plan.byKey[predicate.Key{Proc: -1, Name: name}]
	for _, c := range kc {
		cs := &t.cs[c.cl.idx]
		cs.totals[c.side] += c.c * delta
		cs.reg[c.side][region] += c.c * delta
	}
	for _, c := range ka {
		cs := &t.cs[c.cl.idx]
		cs.totals[c.side] += c.c * delta
		cs.reg[c.side][region] += c.c * delta
	}
	for _, c := range kc {
		t.refreshClause(c.cl)
	}
	for _, c := range ka {
		t.refreshClause(c.cl)
	}
	for _, cl := range t.plan.opaqueByKey[predicate.Key{Proc: proc, Name: name}] {
		t.refreshClause(cl)
	}
	for _, cl := range t.plan.opaqueByKey[predicate.Key{Proc: -1, Name: name}] {
		t.refreshClause(cl)
	}
}

// refreshClause re-derives one clause's truth and maintains numFalse.
// Idempotent: refreshing an unchanged clause is a no-op.
func (t *Tree) refreshClause(cl *clause) {
	cs := &t.cs[cl.idx]
	var truth bool
	if cl.linear {
		truth = cmpEval(cl.op, cs.totals[0], cs.totals[1])
	} else {
		truth = cl.cond.Holds(t.state)
	}
	if truth != cs.truth {
		cs.truth = truth
		if truth {
			t.numFalse--
		} else {
			t.numFalse++
		}
	}
}

// flip updates detection state on a settled-truth edge, mirroring the
// flat checker's occurrence bookkeeping exactly.
func (t *Tree) flip(settled, race bool, now sim.Time) {
	if settled == t.cur {
		return
	}
	if settled {
		t.obsDetections.Inc()
		o := Occurrence{Start: now, Borderline: race}
		t.occ = append(t.occ, o)
		if t.Notify != nil {
			t.Notify(o)
		}
		if t.fl != nil {
			t.fl.Record(flight.Rec{
				Kind: flight.Detect, Proc: t.flSelf, Peer: flight.NoPeer,
				At: now, Value: 1,
			})
			t.fl.TriggerDump("detect", now)
		}
	} else if len(t.occ) > 0 {
		t.occ[len(t.occ)-1].End = now
		if race {
			t.occ[len(t.occ)-1].Borderline = true
		}
		if t.fl != nil {
			t.fl.Record(flight.Rec{
				Kind: flight.Clear, Proc: t.flSelf, Peer: flight.NoPeer, At: now,
			})
		}
	}
	t.cur = settled
}

// Finish flushes every aggregator's pending sync and closes any open
// occurrence at the horizon. Further reports are ignored.
func (t *Tree) Finish(horizon sim.Time) {
	if t.finished {
		return
	}
	for _, a := range t.aggs {
		if !a.down {
			t.flushAgg(a, horizon)
		}
	}
	t.finished = true
	if t.cur && len(t.occ) > 0 && t.occ[len(t.occ)-1].End == 0 {
		t.occ[len(t.occ)-1].End = horizon
	}
}

// Occurrences returns the detected occurrences (call Finish first).
func (t *Tree) Occurrences() []Occurrence { return t.occ }

// Markers returns the view times at which race ambiguity was observed.
func (t *Tree) Markers() []sim.Time { return t.markers }

// View returns the tree's current value of (proc, var).
func (t *Tree) View(proc int, name string) float64 {
	return t.state.Get(proc, name)
}

// MaxAggregatorBytes returns the largest regional node footprint — the
// quantity the bounded-memory claim is about (sublinear in p at fixed
// region size).
func (t *Tree) MaxAggregatorBytes() int {
	max := 0
	for _, a := range t.aggs {
		if b := a.StateBytes(); b > max {
			max = b
		}
	}
	return max
}

// RootSynced returns the root's batch-synced watermark for proc: its own
// strobe-clock component and report seq as of the last decoded batch.
func (t *Tree) RootSynced(proc int) (own uint64, seq int) {
	return t.root.own[proc], t.root.seq[proc]
}

// RootValue returns the root's batch-synced boundary value for (proc,
// var), and whether one has been synced.
func (t *Tree) RootValue(proc int, name string) (float64, bool) {
	v, ok := t.root.vals[predicate.Key{Proc: proc, Name: name}]
	return v, ok
}

// LastBatchAt returns the At stamp of the most recently decoded batch.
func (t *Tree) LastBatchAt() sim.Time { return t.root.lastBatchAt }

// flushAgg drains one aggregator's pending set into a batch, encodes it,
// and advances the root's consolidated view from the *decoded* bytes.
func (t *Tree) flushAgg(a *Aggregator, now sim.Time) {
	a.lastFlush = now
	if len(a.pending) == 0 {
		return
	}
	procs := a.drain()
	b := Batch{Region: a.region, Epoch: a.epoch, At: now}
	for _, p := range procs {
		e := a.pending[p]
		b.Triples = append(b.Triples, clock.StampTriple{Proc: p, Val: e.own, Sent: uint64(e.seq)})
		if t.plan.boundaryKey(p, e.varName, a.region) {
			b.Entries = append(b.Entries, BatchEntry{Proc: p, Epoch: e.epoch, Var: e.varName, Value: e.value})
		} else {
			t.Stat.LocalEntries++
		}
		t.Stat.SyncLagTotal += now - e.firstAt
		t.Stat.SyncedProcs++
	}
	t.wireScratch = b.AppendWire(t.wireScratch[:0])
	t.Stat.WireBytes += int64(len(t.wireScratch))
	t.obsWireBytes.Add(int64(len(t.wireScratch)))
	dec, n, err := DecodeBatch(t.wireScratch)
	if err != nil || n != len(t.wireScratch) {
		panic(fmt.Sprintf("checker: batch codec round-trip failed: n=%d/%d err=%v", n, len(t.wireScratch), err))
	}
	t.rootApply(dec)
	t.Stat.Batches++
	t.Stat.BatchTriples += int64(len(b.Triples))
	t.Stat.BatchEntries += int64(len(b.Entries))
	t.obsBatches.Inc()
	clear(a.pending)
}

// rootApply advances the root watermarks from one decoded batch. Batches
// under a stale regional epoch (pre-recovery stragglers) are discarded —
// the aggregator-level counterpart of the per-sensor epoch discipline.
func (t *Tree) rootApply(b Batch) {
	if b.Epoch < t.root.regionEpoch[b.Region] {
		return
	}
	t.root.regionEpoch[b.Region] = b.Epoch
	for _, tr := range b.Triples {
		t.root.own[tr.Proc] = tr.Val
		t.root.seq[tr.Proc] = int(tr.Sent)
	}
	for _, e := range b.Entries {
		t.root.vals[predicate.Key{Proc: e.Proc, Name: e.Var}] = e.Value
	}
	t.root.lastBatchAt = b.At
}

// CrashRegion takes regional aggregator r down: its pending sync is lost
// and subsequent reports from its region are dropped until recovery.
func (t *Tree) CrashRegion(r int) {
	a := t.aggs[r]
	if a.down {
		return
	}
	a.down = true
	t.Stat.RegionDropped += int64(len(a.pending))
	clear(a.pending)
}

// RecoverRegion brings aggregator r back with wholly fresh regional
// state: values, stamps, admission and clause partials are reset under a
// bumped regional epoch, so nothing pre-crash can be merged back in. If
// forgetting the region flips the predicate, the edge is recorded at the
// recovery time.
func (t *Tree) RecoverRegion(r int, now sim.Time) {
	a := t.aggs[r]
	if !a.down {
		return
	}
	a.down = false
	for i := range t.cs {
		cs := &t.cs[i]
		cs.totals[0] -= cs.reg[0][r]
		cs.totals[1] -= cs.reg[1][r]
		cs.reg[0][r] = 0
		cs.reg[1][r] = 0
	}
	a.reset()
	a.lastFlush = now
	// Fence the root against pre-crash stragglers immediately: the epoch
	// bump must take effect before any batch under the new epoch arrives.
	t.root.regionEpoch[r] = a.epoch
	for _, cl := range t.plan.clauses {
		t.refreshClause(cl)
	}
	t.flip(t.numFalse == 0, false, now)
}

// detectRace replicates the flat checker's four-state probe (see
// core.StrobeChecker.detectRace for the criterion): processes are
// scanned in global order across regions, probes mutate the distributed
// view exactly as the flat probe mutates its map — but the clause states
// are never touched; probe evaluation is functional over pending deltas,
// so restoring the saved values restores the tree bit-exactly.
func (t *Tree) detectRace(m Report, prevI float64) bool {
	ia, ili := t.aggFor(m.Proc)
	for j := 0; j < t.n; j++ {
		if j == m.Proc {
			continue
		}
		ja, jli := t.aggFor(j)
		if ja.stamps[jli] == nil || !ja.lastChange[jli].valid {
			continue
		}
		if !m.Vec.ConcurrentWith(ja.stamps[jli]) {
			continue
		}
		if t.NaiveRace {
			return true
		}
		ch := ja.lastChange[jli]
		curJ := ja.vals[jli][ch.varName]
		curI := ia.vals[ili][m.Var]
		pr := t.buildProbe(m.Proc, m.Var, j, ch.varName)

		phi11 := pr.phi(0, 0)
		ja.vals[jli][ch.varName] = ch.prev // s10: only e
		phi10 := pr.phi(0, ch.prev-curJ)
		ia.vals[ili][m.Var] = prevI // s00: neither
		phi00 := pr.phi(prevI-curI, ch.prev-curJ)
		ja.vals[jli][ch.varName] = curJ // s01: only e'
		phi01 := pr.phi(prevI-curI, 0)
		ia.vals[ili][m.Var] = curI // restore s11

		if phi00 == phi11 && phi10 != phi01 {
			return true
		}
	}
	return false
}

// probe is the functional evaluation context for one four-state race
// probe over the pair of keys (i: the applied event's variable, j: the
// concurrent process's last-changed variable).
type probe struct {
	t         *Tree
	items     []probeItem
	baseFalse int
}

type probeItem struct {
	cl     *clause
	opaque bool
	// cI / cJ are the clause's net ±1 coefficients of key i / key j per
	// side (linear clauses only).
	cI, cJ [2]float64
}

// buildProbe collects the clauses affected by either key with their net
// coefficients; every other clause keeps its stored truth during the
// probe.
func (t *Tree) buildProbe(iProc int, iName string, jProc int, jName string) *probe {
	pr := &probe{t: t}
	idx := make(map[*clause]int)
	item := func(cl *clause) *probeItem {
		if k, ok := idx[cl]; ok {
			return &pr.items[k]
		}
		idx[cl] = len(pr.items)
		pr.items = append(pr.items, probeItem{cl: cl, opaque: !cl.linear})
		return &pr.items[len(pr.items)-1]
	}
	addLinear := func(key predicate.Key, which int) {
		for _, c := range t.plan.byKey[key] {
			it := item(c.cl)
			if which == 0 {
				it.cI[c.side] += c.c
			} else {
				it.cJ[c.side] += c.c
			}
		}
	}
	addLinear(predicate.Key{Proc: iProc, Name: iName}, 0)
	addLinear(predicate.Key{Proc: -1, Name: iName}, 0)
	addLinear(predicate.Key{Proc: jProc, Name: jName}, 1)
	addLinear(predicate.Key{Proc: -1, Name: jName}, 1)
	for _, key := range []predicate.Key{
		{Proc: iProc, Name: iName}, {Proc: -1, Name: iName},
		{Proc: jProc, Name: jName}, {Proc: -1, Name: jName},
	} {
		for _, cl := range t.plan.opaqueByKey[key] {
			item(cl)
		}
	}
	pr.baseFalse = t.numFalse
	for _, it := range pr.items {
		if !t.cs[it.cl.idx].truth {
			pr.baseFalse--
		}
	}
	return pr
}

// phi evaluates the predicate under the probe's pending deltas (dI on
// key i, dJ on key j, both relative to the committed view). Opaque
// clauses read the mutated distributed view directly; linear clauses are
// adjusted arithmetically. Each call counts as one predicate evaluation,
// matching the flat checker's instrumentation.
func (pr *probe) phi(dI, dJ float64) bool {
	pr.t.obsEvals.Inc()
	f := pr.baseFalse
	for i := range pr.items {
		it := &pr.items[i]
		var truth bool
		if it.opaque {
			truth = it.cl.cond.Holds(pr.t.state)
		} else {
			cs := &pr.t.cs[it.cl.idx]
			l := cs.totals[0] + it.cI[0]*dI + it.cJ[0]*dJ
			r := cs.totals[1] + it.cI[1]*dI + it.cJ[1]*dJ
			truth = cmpEval(it.cl.op, l, r)
		}
		if !truth {
			f++
		}
	}
	return f == 0
}
