package checker

import (
	"sort"

	"pervasive/internal/clock"
	"pervasive/internal/sim"
)

// change mirrors the flat checker's per-process last-change record: what
// the race probe needs to undo the process's latest applied event.
type change struct {
	varName string
	prev    float64
	valid   bool
}

// pendingEntry is one coalesced per-process value awaiting the next
// upward sync flush. A newer report from the same process overwrites it
// (superseded values never cross the tier boundary); firstAt survives
// the overwrite so sync lag measures the oldest unsynced information.
type pendingEntry struct {
	seq     int
	epoch   int
	varName string
	value   float64
	own     uint64
	firstAt sim.Time
}

// Aggregator is one regional node of the checker tree: it owns the
// admission state, latest values and (race-aware) stamp reconstructions
// for the contiguous process range [lo, hi), plus the pending set of the
// batched upward sync channel. All indexing below lo-offsets into the
// region; the Tree routes by process id.
type Aggregator struct {
	region int
	lo, hi int
	down   bool
	// epoch is the regional epoch, bumped on every recovery; batches and
	// clause partials from before the bump are dead.
	epoch int

	vals       []map[string]float64
	stamps     []clock.Vector
	lastSeq    []int
	lastEpoch  []int
	lastChange []change
	// recon/stampBuf serve the differential race-aware path exactly as in
	// the flat checker, lazily and per-region: nil until the first diff
	// strobe needs them, and never allocated race-blind — the memory gate
	// that keeps scale-mode aggregators O(region), not O(region·p).
	recon    []clock.Vector
	stampBuf []clock.Vector

	pending   map[int]*pendingEntry
	lastFlush sim.Time
}

func newAggregator(region, lo, hi int) *Aggregator {
	n := hi - lo
	a := &Aggregator{
		region: region, lo: lo, hi: hi,
		vals:       make([]map[string]float64, n),
		stamps:     make([]clock.Vector, n),
		lastSeq:    make([]int, n),
		lastEpoch:  make([]int, n),
		lastChange: make([]change, n),
		pending:    make(map[int]*pendingEntry),
	}
	for i := range a.vals {
		a.vals[i] = make(map[string]float64)
	}
	return a
}

// Region returns the aggregator's region index.
func (a *Aggregator) Region() int { return a.region }

// Span returns the global process range [lo, hi) the aggregator owns.
func (a *Aggregator) Span() (lo, hi int) { return a.lo, a.hi }

// Down reports whether the aggregator is crashed.
func (a *Aggregator) Down() bool { return a.down }

// Epoch returns the regional epoch (recoveries so far).
func (a *Aggregator) Epoch() int { return a.epoch }

// PendingLen returns the current size of the unflushed sync set.
func (a *Aggregator) PendingLen() int { return len(a.pending) }

// stage coalesces one applied report into the pending sync set; it
// reports whether a superseded pending value was overwritten.
func (a *Aggregator) stage(m Report, now sim.Time) bool {
	if e, ok := a.pending[m.Proc]; ok {
		e.seq, e.epoch, e.varName, e.value, e.own = m.Seq, m.Epoch, m.Var, m.Value, m.OwnClock()
		return true
	}
	a.pending[m.Proc] = &pendingEntry{
		seq: m.Seq, epoch: m.Epoch, varName: m.Var, value: m.Value,
		own: m.OwnClock(), firstAt: now,
	}
	return false
}

// drain empties the pending set into a proc-sorted slice (collect-then-
// sort: map iteration order must never reach an observable).
func (a *Aggregator) drain() []int {
	procs := make([]int, 0, len(a.pending))
	for p := range a.pending {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	return procs
}

// reset wipes every piece of regional state — values, stamps, admission,
// reconstructions, pending — under a bumped regional epoch. This is the
// crash/recovery discipline: a rejoined aggregator starts from nothing,
// it never merges pre-crash regional state.
func (a *Aggregator) reset() {
	a.epoch++
	for i := range a.vals {
		a.vals[i] = make(map[string]float64)
		a.stamps[i] = nil
		a.lastSeq[i] = 0
		a.lastEpoch[i] = 0
		a.lastChange[i] = change{}
	}
	a.recon = nil
	a.stampBuf = nil
	a.pending = make(map[int]*pendingEntry)
}

// StateBytes estimates the aggregator's resident footprint: per-process
// admission and value state, the pending sync set, and the race-aware
// reconstructions when allocated. The estimate uses the same flat
// per-entry costs as the clock package's StateBytes accounting.
func (a *Aggregator) StateBytes() int {
	n := a.hi - a.lo
	b := 96 + n*(8+8+8+8+8+32) // headers, slices, lastSeq/lastEpoch/lastChange
	for _, m := range a.vals {
		b += 48 + 32*len(m)
	}
	b += 48 + 64*len(a.pending)
	for _, v := range a.recon {
		b += 8 * cap(v)
	}
	for _, v := range a.stampBuf {
		b += 8 * cap(v)
	}
	return b
}
