package checker

import (
	"testing"

	"pervasive/internal/clock"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
)

// report builds a minimal differential strobe report: the sender's own
// clock component rides the sparse stamp, as the real protocol emits.
func report(proc, seq int, v float64) Report {
	return Report{
		Proc: proc, Seq: seq, Var: "p", Value: v,
		Sparse: clock.SparseStamp{{Proc: proc, Val: uint64(seq)}},
	}
}

func sumTree(n, fanout int, k int) *Tree {
	return New(Config{
		N: n, Pred: predicate.MustParse("sum(p) >= " + itoa(k)), Fanout: fanout,
	})
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func TestTreeDetectsAndClosesOccurrences(t *testing.T) {
	tr := sumTree(8, 4, 2)
	tr.OnReport(report(0, 1, 1), 10)
	tr.OnReport(report(5, 1, 1), 20) // sum reaches 2: open
	tr.OnReport(report(5, 2, 0), 30) // back to 1: close
	tr.OnReport(report(3, 1, 1), 40) // open again
	tr.Finish(100)
	occ := tr.Occurrences()
	if len(occ) != 2 {
		t.Fatalf("occurrences = %v, want 2", occ)
	}
	if occ[0].Start != 20 || occ[0].End != 30 {
		t.Errorf("first occurrence = %+v, want [20, 30]", occ[0])
	}
	if occ[1].Start != 40 || occ[1].End != 100 {
		t.Errorf("second occurrence = %+v, want [40, 100] (closed at horizon)", occ[1])
	}
}

func TestTreeAdmissionDiscipline(t *testing.T) {
	tr := sumTree(8, 4, 2)
	tr.OnReport(report(0, 1, 1), 10)
	tr.OnReport(report(0, 1, 1), 11) // duplicate seq: stale
	tr.OnReport(report(0, 3, 1), 12)
	tr.OnReport(report(0, 2, 0), 13) // reordered older: stale
	m := report(0, 1, 0)
	m.Epoch = 1 // rebooted sender: fresh seq space accepted
	tr.OnReport(m, 14)
	old := report(0, 9, 1)
	old.Epoch = 0 // pre-crash straggler under the old epoch: stale
	tr.OnReport(old, 15)
	tr.OnReport(Report{Proc: 99, Seq: 1, Var: "p"}, 16) // out of range
	if tr.Stat.Applied != 3 || tr.Stat.Stale != 4 {
		t.Fatalf("applied/stale = %d/%d, want 3/4", tr.Stat.Applied, tr.Stat.Stale)
	}
	if got := tr.View(0, "p"); got != 0 {
		t.Fatalf("view = %v, want 0 (epoch-1 value)", got)
	}
}

// TestTreeAggregatorCrashRecovery is the regional-node counterpart of
// the sensor epoch-reset tests: when the crashing process is a regional
// aggregator, rejoin must not merge any pre-crash regional state — not
// values, not admission watermarks, not clause partials.
func TestTreeAggregatorCrashRecovery(t *testing.T) {
	tr := sumTree(8, 4, 3)
	// Region 1 owns procs 2..3. Drive the predicate true through them.
	tr.OnReport(report(2, 5, 1), 10)
	tr.OnReport(report(3, 5, 1), 20) // sum=2
	tr.OnReport(report(0, 1, 1), 25) // sum=3: open occurrence
	if got := tr.numFalse; got != 0 {
		t.Fatalf("predicate should hold before the crash")
	}

	tr.CrashRegion(1)
	tr.OnReport(report(2, 6, 0), 30) // dropped: aggregator down
	if tr.Stat.RegionDropped == 0 {
		t.Fatalf("crashed region accepted a report")
	}
	if got := tr.View(2, "p"); got != 1 {
		t.Fatalf("crash must freeze, not wipe, the synced view; got %v", got)
	}

	tr.RecoverRegion(1, 40)
	// Recovery forgets the region wholesale: values and clause partials.
	if got := tr.View(2, "p"); got != 0 {
		t.Fatalf("post-recovery view of proc 2 = %v, want 0", got)
	}
	if got := tr.View(3, "p"); got != 0 {
		t.Fatalf("post-recovery view of proc 3 = %v, want 0", got)
	}
	// sum fell to 1 < 3: the occurrence must close at the recovery time.
	occ := tr.Occurrences()
	if len(occ) != 1 || occ[0].End != 40 {
		t.Fatalf("occurrence = %v, want one closed at 40", occ)
	}
	if a := tr.Aggregators()[1]; a.Epoch() != 1 {
		t.Fatalf("regional epoch = %d, want 1", a.Epoch())
	}

	// Fresh admission state: a seq far below the pre-crash watermark is
	// accepted (the rejoined aggregator has no pre-crash watermarks to
	// compare against), and pre-crash values never resurface.
	tr.OnReport(report(2, 1, 1), 50)
	if got := tr.View(2, "p"); got != 1 {
		t.Fatalf("post-recovery report rejected: view = %v", got)
	}
	if tr.numFalse == 0 {
		t.Fatalf("sum should be 2 only after proc 3 reports again — pre-crash partials leaked")
	}
	tr.OnReport(report(3, 1, 1), 60)
	if tr.numFalse != 0 {
		t.Fatalf("predicate should hold again after both procs re-report")
	}
	occ = tr.Occurrences()
	if len(occ) != 2 || occ[1].Start != 60 {
		t.Fatalf("occurrences = %v, want reopening at 60", occ)
	}
}

// TestTreeRecoveryDiscardsStaleRegionalBatches pins the root-side epoch
// discipline: a batch stamped with a pre-recovery regional epoch must
// not advance the root watermarks.
func TestTreeRecoveryDiscardsStaleRegionalBatches(t *testing.T) {
	tr := sumTree(8, 4, 2)
	tr.OnReport(report(2, 5, 1), 10)
	tr.Finish(20) // flush: root sees proc 2 at seq 5
	if _, seq := tr.RootSynced(2); seq != 5 {
		t.Fatalf("root seq = %d, want 5", seq)
	}
	// Hand-deliver a stale batch (regional epoch 0) after a recovery
	// bumped the region to epoch 1.
	tr2 := sumTree(8, 4, 2)
	tr2.OnReport(report(2, 5, 1), 10)
	tr2.CrashRegion(1)
	tr2.RecoverRegion(1, 15)
	stale := Batch{Region: 1, Epoch: 0, At: 16,
		Triples: []clock.StampTriple{{Proc: 2, Val: 9, Sent: 9}}}
	tr2.rootApply(stale)
	if own, seq := tr2.RootSynced(2); own == 9 || seq == 9 {
		t.Fatalf("stale regional batch advanced root watermarks: own=%d seq=%d", own, seq)
	}
}

func TestTreeBatchCoalescing(t *testing.T) {
	tr := New(Config{
		N: 8, Pred: predicate.MustParse("sum(p) >= 99"), Fanout: 2,
		BatchInterval: 100, MaxBatch: 4,
	})
	// Same proc three times inside one window: two coalesces.
	tr.OnReport(report(0, 1, 1), 1)
	tr.OnReport(report(0, 2, 0), 2)
	tr.OnReport(report(0, 3, 1), 3)
	if tr.Stat.Coalesced != 2 || tr.Stat.Batches != 0 {
		t.Fatalf("coalesced/batches = %d/%d, want 2/0", tr.Stat.Coalesced, tr.Stat.Batches)
	}
	// Fill the pending set to MaxBatch: forced flush despite the window.
	tr.OnReport(report(1, 1, 1), 4)
	tr.OnReport(report(2, 1, 1), 5)
	tr.OnReport(report(3, 1, 1), 6)
	if tr.Stat.Batches != 1 {
		t.Fatalf("full pending set did not force a flush: %+v", tr.Stat)
	}
	if tr.Stat.BatchTriples != 4 {
		t.Fatalf("batch triples = %d, want 4", tr.Stat.BatchTriples)
	}
	if _, seq := tr.RootSynced(0); seq != 3 {
		t.Fatalf("root synced seq %d for proc 0, want the coalesced 3", seq)
	}
	// Interval flush: next report after the window flushes the rest.
	tr.OnReport(report(4, 1, 1), 200)
	if tr.Stat.Batches != 2 {
		t.Fatalf("interval flush missing: %+v", tr.Stat)
	}
	if lag := tr.Stat.SyncLagTotal; lag <= 0 {
		t.Fatalf("sync lag total = %v, want > 0", lag)
	}
}

// TestTreeBoundedAggregatorMemory is the bounded-memory claim: with the
// fan-out scaled with the fleet (fixed region size), the largest
// aggregator footprint stays flat as p grows 16x, and race-blind trees
// never allocate reconstruction state.
func TestTreeBoundedAggregatorMemory(t *testing.T) {
	perAgg := func(p int) int {
		tr := sumTree(p, p/256, p/2)
		seq := 0
		for round := 0; round < 3; round++ {
			seq++
			for proc := 0; proc < p; proc++ {
				tr.OnReport(report(proc, seq, float64(round%2)), sim.Time(round*10+1))
			}
		}
		for _, a := range tr.Aggregators() {
			if a.recon != nil {
				t.Fatalf("race-blind aggregator allocated reconstructions")
			}
		}
		return tr.MaxAggregatorBytes()
	}
	small := perAgg(1024) // 4 aggregators of 256
	big := perAgg(16384)  // 64 aggregators of 256
	if big > small*2 {
		t.Fatalf("per-aggregator bytes grew with p: %d at p=1024 vs %d at p=16384", small, big)
	}
}

// TestTreeMatchesCmpSemantics drives every comparison operator through
// a linear clause at its boundary value.
func TestTreeMatchesCmpSemantics(t *testing.T) {
	cases := []struct {
		src  string
		v    float64
		want bool
	}{
		{"p@0 > 1", 1, false}, {"p@0 > 1", 2, true},
		{"p@0 >= 1", 1, true}, {"p@0 < 1", 0, true},
		{"p@0 <= 1", 2, false}, {"p@0 == 1", 1, true},
		{"p@0 != 1", 1, false},
	}
	for _, tc := range cases {
		tr := New(Config{N: 2, Pred: predicate.MustParse(tc.src), Fanout: 2})
		tr.OnReport(report(0, 1, tc.v), 1)
		if got := tr.numFalse == 0; got != tc.want {
			t.Errorf("%q with p@0=%v: settled=%v, want %v", tc.src, tc.v, got, tc.want)
		}
	}
}
