package checker

import "pervasive/internal/predicate"

// The evaluation plan: the predicate flattened at its top-level
// conjunction into clauses, each clause either *linear* (both comparison
// sides are ±1-weighted sums of per-process variables, sum() aggregates
// and constants — maintained incrementally) or *opaque* (kept whole,
// re-evaluated against the distributed view when a variable it reads
// changes). The plan is immutable after construction; all mutable clause
// state lives in the Tree.

// term is one ±variable occurrence on a linear side.
type term struct {
	proc int
	name string
	neg  bool
}

// aggTerm is one ±sum(name) occurrence on a linear side: every process
// contributes its value of name.
type aggTerm struct {
	name string
	neg  bool
}

// linSide is one linearized comparison side: konst + Σ ±var + Σ ±sum().
type linSide struct {
	konst float64
	terms []term
	aggs  []aggTerm
}

// clause is one conjunct of the predicate.
type clause struct {
	idx  int
	cond predicate.Cond // original AST (opaque evaluation, String)

	linear bool
	op     predicate.CmpOp
	sides  [2]linSide

	// keys are the variables the clause reads; aggregates appear as
	// Key{Proc: -1}. Used for the opaque affected-check and boundary
	// relevance.
	keys map[predicate.Key]struct{}
	// home is the single region hosting every variable the clause reads,
	// or -1 when the clause spans regions (aggregates always span).
	home int
}

// coef is one incremental-update hook: when its key's value changes by
// delta, side `side` of clause `cl` changes by c·delta.
type coef struct {
	cl   *clause
	side int
	c    float64 // ±1
}

// Plan is the compiled predicate.
type Plan struct {
	n       int
	clauses []*clause
	// byKey maps a concrete Key — or Key{Proc: -1, Name} for aggregate
	// readers — to the linear-update hooks it drives.
	byKey map[predicate.Key][]coef
	// opaqueByKey maps the same keys to the opaque clauses reading them.
	opaqueByKey map[predicate.Key][]*clause
}

// NewPlan compiles pred over n processes; regionOf assigns each process
// to its aggregator's region (used only to mark region-local clauses).
func NewPlan(pred predicate.Cond, n int, regionOf func(int) int) *Plan {
	p := &Plan{
		n:           n,
		byKey:       make(map[predicate.Key][]coef),
		opaqueByKey: make(map[predicate.Key][]*clause),
	}
	var conjuncts []predicate.Cond
	flattenAnd(pred, &conjuncts)
	for _, c := range conjuncts {
		cl := &clause{idx: len(p.clauses), cond: c, home: -1, keys: make(map[predicate.Key]struct{})}
		c.CollectVars(func(k predicate.Key) { cl.keys[k] = struct{}{} })
		if cmp, ok := c.(predicate.Cmp); ok {
			var l, r linSide
			if linearize(cmp.L, false, &l) && linearize(cmp.R, false, &r) {
				cl.linear = true
				cl.op = cmp.Op
				cl.sides = [2]linSide{l, r}
			}
		}
		cl.home = homeRegion(cl, regionOf)
		p.clauses = append(p.clauses, cl)
		if cl.linear {
			for side := 0; side < 2; side++ {
				for _, t := range cl.sides[side].terms {
					p.addCoef(predicate.Key{Proc: t.proc, Name: t.name}, cl, side, t.neg)
				}
				for _, a := range cl.sides[side].aggs {
					p.addCoef(predicate.Key{Proc: -1, Name: a.name}, cl, side, a.neg)
				}
			}
		} else {
			for k := range cl.keys { //lint:allow determtaint(order-insensitive: fans the clause out into a map indexed by the ranged key itself, so iteration order cannot reach any output)
				p.opaqueByKey[k] = append(p.opaqueByKey[k], cl)
			}
		}
	}
	return p
}

func (p *Plan) addCoef(k predicate.Key, cl *clause, side int, neg bool) {
	c := 1.0
	if neg {
		c = -1.0
	}
	p.byKey[k] = append(p.byKey[k], coef{cl: cl, side: side, c: c})
}

// flattenAnd splits the top-level conjunction; anything under an Or/Not
// stays inside its conjunct.
func flattenAnd(c predicate.Cond, out *[]predicate.Cond) {
	if a, ok := c.(predicate.And); ok {
		flattenAnd(a.L, out)
		flattenAnd(a.R, out)
		return
	}
	*out = append(*out, c)
}

// linearize folds e into s as a ±1-weighted sum; it reports false (and
// may leave s partially written — the caller discards it) when e
// contains a non-linear construct.
func linearize(e predicate.Expr, neg bool, s *linSide) bool {
	switch x := e.(type) {
	case predicate.Const:
		if neg {
			s.konst -= float64(x)
		} else {
			s.konst += float64(x)
		}
		return true
	case predicate.Var:
		s.terms = append(s.terms, term{proc: x.Proc, name: x.Name, neg: neg})
		return true
	case predicate.Neg:
		return linearize(x.X, !neg, s)
	case predicate.Agg:
		if x.Op != predicate.AggSum {
			return false
		}
		s.aggs = append(s.aggs, aggTerm{name: x.Name, neg: neg})
		return true
	case predicate.Bin:
		switch x.Op {
		case predicate.OpAdd:
			return linearize(x.L, neg, s) && linearize(x.R, neg, s)
		case predicate.OpSub:
			return linearize(x.L, neg, s) && linearize(x.R, !neg, s)
		}
		return false
	}
	return false
}

// homeRegion returns the single region hosting every variable the clause
// reads, or -1 when it reads none, spans regions, or aggregates.
func homeRegion(cl *clause, regionOf func(int) int) int {
	home := -1
	for k := range cl.keys { //lint:allow determtaint(order-insensitive: the answer is the unique common region or -1, identical whichever key is visited first)
		if k.Proc < 0 {
			return -1
		}
		r := regionOf(k.Proc)
		if home == -1 {
			home = r
		} else if home != r {
			return -1
		}
	}
	return home
}

// cmpEval mirrors predicate.Cmp.Holds over pre-computed side values.
func cmpEval(op predicate.CmpOp, l, r float64) bool {
	switch op {
	case predicate.CmpGT:
		return l > r
	case predicate.CmpGE:
		return l >= r
	case predicate.CmpLT:
		return l < r
	case predicate.CmpLE:
		return l <= r
	case predicate.CmpEQ:
		return l == r
	default:
		return l != r
	}
}

// boundaryKey reports whether (proc, name) is read by any clause that is
// not settled entirely inside region r — the criterion for forwarding
// the value upward in a sync batch.
func (p *Plan) boundaryKey(proc int, name string, r int) bool {
	for _, c := range p.byKey[predicate.Key{Proc: proc, Name: name}] {
		if c.cl.home != r {
			return true
		}
	}
	for _, c := range p.byKey[predicate.Key{Proc: -1, Name: name}] {
		if c.cl.home != r {
			return true
		}
	}
	for _, cl := range p.opaqueByKey[predicate.Key{Proc: proc, Name: name}] {
		if cl.home != r {
			return true
		}
	}
	for _, cl := range p.opaqueByKey[predicate.Key{Proc: -1, Name: name}] {
		if cl.home != r {
			return true
		}
	}
	return false
}
