// Package clock implements every clock family in the paper's design space
// for implementing time (Section 3.2.1):
//
//   - Lamport logical scalar clocks (rules SC1–SC3, [26]);
//   - Mattern/Fidge causality-tracking vector clocks (rules VC1–VC3, [13,27]);
//   - strobe scalar clocks (rules SSC1–SSC2, Section 4.2.2);
//   - strobe vector clocks (rules SVC1–SVC2, Section 4.2.1);
//   - drifting hardware clocks and ε-synchronized physical clocks
//     (Section 3.2.1.a(i)–(ii));
//   - physical (asynchronous) vector clocks (Section 3.2.1.b.ii).
//
// The strobe clocks differ from the causal clocks exactly as Section 4.2.3
// describes: a strobe receiver merges but does not tick, strobes are control
// messages broadcast at relevant (sensed) events, and causal clocks tick on
// receive and are piggybacked only on computation messages.
package clock

// Order is the outcome of comparing two timestamps in a partial order.
type Order int

// Possible comparison outcomes.
const (
	Same Order = iota
	Before
	After
	Concurrent
)

// String renders the order relation.
func (o Order) String() string {
	switch o {
	case Same:
		return "="
	case Before:
		return "<"
	case After:
		return ">"
	default:
		return "||"
	}
}

// Vector is a vector timestamp: component i counts (known) relevant events
// at process i. Vectors are compared componentwise; incomparable vectors
// are concurrent.
type Vector []uint64

// NewVector returns an all-zero vector for n processes.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector { return append(Vector(nil), v...) }

// Compare returns the partial-order relation between v and w. Vectors of
// different lengths are compared over the shorter prefix with missing
// components treated as zero.
func (v Vector) Compare(w Vector) Order {
	leq, geq := true, true
	n := len(v)
	if len(w) > n {
		n = len(w)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(v) {
			a = v[i]
		}
		if i < len(w) {
			b = w[i]
		}
		if a < b {
			geq = false
		}
		if a > b {
			leq = false
		}
	}
	switch {
	case leq && geq:
		return Same
	case leq:
		return Before
	case geq:
		return After
	default:
		return Concurrent
	}
}

// HappensBefore reports v → w (strictly less in the partial order).
func (v Vector) HappensBefore(w Vector) bool { return v.Compare(w) == Before }

// ConcurrentWith reports that neither v → w nor w → v.
func (v Vector) ConcurrentWith(w Vector) bool { return v.Compare(w) == Concurrent }

// MergeFrom sets v to the componentwise maximum of v and w, growing v if
// needed, and returns v.
func (v *Vector) MergeFrom(w Vector) Vector {
	for len(*v) < len(w) {
		*v = append(*v, 0)
	}
	for i, x := range w {
		if x > (*v)[i] {
			(*v)[i] = x
		}
	}
	return *v
}

// Reset zeroes every component in place. It is the epoch-reset rule:
// when a process rejoins with a fresh incarnation (a bumped epoch), the
// checker's per-sender reconstruction must forget the dead incarnation's
// history rather than merge across the crash.
func (v Vector) Reset() {
	for i := range v {
		v[i] = 0
	}
}

// Sum returns the total event count across components; it is a useful
// scalar projection for reports.
func (v Vector) Sum() uint64 {
	var s uint64
	for _, x := range v {
		s += x
	}
	return s
}
