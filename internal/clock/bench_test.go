package clock

import (
	"fmt"
	"testing"
)

// Dense-vs-sparse merge and reset costs across system sizes, measuring the
// O(active peers) claim: the sparse clock's cost tracks the stamp size (a
// neighborhood's worth of entries, fixed at 8 here), the dense clock pays
// for its p-length vectors. Run with:
//
//	go test -run xxx -bench 'MergeSparse|ClockReset' ./internal/clock/
var benchSizes = []int{8, 1024, 65536}

// benchStamp builds a neighborhood-sized stamp touching spread-out procs.
func benchStamp(n int) SparseStamp {
	k := 8
	if k > n-1 {
		k = n - 1
	}
	st := make(SparseStamp, 0, k)
	for i := 1; i <= k; i++ {
		st = append(st, SparseEntry{Proc: (i * (n - 1) / k) % n, Val: uint64(i)})
	}
	return st
}

func BenchmarkMergeSparseDense(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("p=%d", n), func(b *testing.B) {
			d := NewDiffStrobeVector(0, n)
			st := benchStamp(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st[0].Val = uint64(i) // keep the merge from becoming a pure no-op
				d.OnStrobe(st)
			}
		})
	}
}

func BenchmarkMergeSparseSparse(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("p=%d", n), func(b *testing.B) {
			s := NewSparseStrobeVector(0, n)
			st := benchStamp(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st[0].Val = uint64(i)
				s.OnStrobe(st)
			}
		})
	}
}

func BenchmarkClockResetDense(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("p=%d", n), func(b *testing.B) {
			v := NewVector(n)
			st := benchStamp(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.MergeSparse(st)
				v.Reset()
			}
		})
	}
}

func BenchmarkClockResetSparse(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("p=%d", n), func(b *testing.B) {
			s := NewSparseStrobeVector(0, n)
			st := benchStamp(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.OnStrobe(st)
				s.Reset()
			}
		})
	}
}
