package clock

// Lamport is a logical scalar clock following rules SC1–SC3 (Section
// 4.2.2). The zero value is a clock at time 0, ready to use.
type Lamport struct {
	c uint64
}

// Read returns the current clock value without ticking.
func (l *Lamport) Read() uint64 { return l.c }

// Tick applies SC1 (a relevant internal/sense event) and returns the new
// value.
func (l *Lamport) Tick() uint64 {
	l.c++
	return l.c
}

// Send applies SC2: tick, then return the value to piggyback on the
// outgoing computation message.
func (l *Lamport) Send() uint64 { return l.Tick() }

// Receive applies SC3 for a piggybacked timestamp t: take the max, then
// tick. It returns the new value.
func (l *Lamport) Receive(t uint64) uint64 {
	if t > l.c {
		l.c = t
	}
	l.c++
	return l.c
}

// VectorClock is a causality-tracking Mattern/Fidge clock following rules
// VC1–VC3 (Section 4.2.1). Construct with NewVectorClock.
type VectorClock struct {
	me int
	v  Vector
}

// NewVectorClock returns process me's clock in an n-process system.
func NewVectorClock(me, n int) *VectorClock {
	if me < 0 || me >= n {
		panic("clock: process index out of range")
	}
	return &VectorClock{me: me, v: NewVector(n)}
}

// Me returns the owning process index.
func (c *VectorClock) Me() int { return c.me }

// Snapshot returns a copy of the current vector.
func (c *VectorClock) Snapshot() Vector { return c.v.Clone() }

// Tick applies VC1 (relevant internal event) and returns a copy of the new
// vector.
func (c *VectorClock) Tick() Vector {
	c.v[c.me]++
	return c.v.Clone()
}

// Send applies VC2: tick, then return the vector to piggyback on the
// outgoing computation message.
func (c *VectorClock) Send() Vector { return c.Tick() }

// Receive applies VC3 for piggybacked vector t: componentwise max, then a
// local tick. It returns a copy of the new vector.
func (c *VectorClock) Receive(t Vector) Vector {
	c.v.MergeFrom(t)
	c.v[c.me]++
	return c.v.Clone()
}
