package clock

import (
	"encoding/binary"
	"fmt"
)

// Batched strobe-stamp wire encoding. A regional checker aggregator
// forwards the coalesced per-process strobe metadata of one epoch window
// upward as a batch of (proc, val, sent) triples: the process id, its
// latest own-clock component, and the per-process send counter of the
// last coalesced report. Triples are sorted by proc, so proc ids are
// delta-coded (the gap to the previous id, always >= 1) and every field
// is a uvarint — a fleet-contiguous region encodes in ~3 bytes per
// process instead of the 18 a flat (proc, val, sent) record would take.
// The codec is exact and self-delimiting: DecodeStampBatch returns the
// triples plus the bytes consumed, so batches can be concatenated.

// StampTriple is one per-process entry of a batched strobe-stamp sync.
type StampTriple struct {
	Proc int
	// Val is the process's own strobe-clock component at its latest
	// coalesced report.
	Val uint64
	// Sent is the per-process report counter (Seq) of that report.
	Sent uint64
}

// AppendStampBatch appends the delta-coded wire form of ts to dst and
// returns the extended buffer. Triples must be sorted by strictly
// increasing Proc; the encoder panics otherwise — batches are built from
// sorted per-region state, so an out-of-order triple is a programming
// error, not input noise.
func AppendStampBatch(dst []byte, ts []StampTriple) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(ts)))
	dst = append(dst, buf[:n]...)
	prev := -1
	for _, t := range ts {
		if t.Proc <= prev {
			panic(fmt.Sprintf("clock: stamp batch triples must be sorted by proc (%d after %d)", t.Proc, prev))
		}
		n = binary.PutUvarint(buf[:], uint64(t.Proc-prev))
		dst = append(dst, buf[:n]...)
		n = binary.PutUvarint(buf[:], t.Val)
		dst = append(dst, buf[:n]...)
		n = binary.PutUvarint(buf[:], t.Sent)
		dst = append(dst, buf[:n]...)
		prev = t.Proc
	}
	return dst
}

// StampBatchWireBytes returns the encoded size of ts without building
// the buffer.
func StampBatchWireBytes(ts []StampTriple) int {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(ts)))
	prev := -1
	for _, t := range ts {
		n += binary.PutUvarint(buf[:], uint64(t.Proc-prev))
		n += binary.PutUvarint(buf[:], t.Val)
		n += binary.PutUvarint(buf[:], t.Sent)
		prev = t.Proc
	}
	return n
}

// DecodeStampBatch decodes one batch from the front of b, returning the
// triples and the number of bytes consumed.
func DecodeStampBatch(b []byte) ([]StampTriple, int, error) {
	off := 0
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, 0, fmt.Errorf("clock: stamp batch: bad count varint")
	}
	off += n
	out := make([]StampTriple, 0, count)
	prev := -1
	for i := uint64(0); i < count; i++ {
		gap, n := binary.Uvarint(b[off:])
		if n <= 0 || gap == 0 {
			return nil, 0, fmt.Errorf("clock: stamp batch: bad proc delta at triple %d", i)
		}
		off += n
		val, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("clock: stamp batch: bad val at triple %d", i)
		}
		off += n
		sent, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("clock: stamp batch: bad sent at triple %d", i)
		}
		off += n
		prev += int(gap)
		out = append(out, StampTriple{Proc: prev, Val: val, Sent: sent})
	}
	return out, off, nil
}
