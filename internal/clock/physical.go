package clock

import (
	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

// Physical is any clock that maps true simulation time to a local reading.
type Physical interface {
	// Read returns the clock's local time at true time now.
	Read(now sim.Time) sim.Time
}

// Drifting models an unsynchronized hardware oscillator: a fixed offset,
// a constant rate error in parts-per-million, and a read granularity.
// Real sensor-node crystals drift tens of ppm; granularity models timer
// quantization.
type Drifting struct {
	Offset      sim.Time     // reading at true time 0
	DriftPPM    float64      // rate error: +40 ⇒ gains 40 µs per true second
	Granularity sim.Duration // readings are floored to this unit (0 or 1 = exact)
}

// Read implements Physical.
func (d Drifting) Read(now sim.Time) sim.Time {
	t := d.Offset + now + sim.Time(float64(now)*d.DriftPPM/1e6)
	if d.Granularity > 1 {
		if t >= 0 {
			t -= t % d.Granularity
		} else {
			t -= (d.Granularity + t%d.Granularity) % d.Granularity
		}
	}
	return t
}

// SkewAt returns the signed error of the reading at true time now.
func (d Drifting) SkewAt(now sim.Time) sim.Time { return d.Read(now) - now }

// EpsilonSynced models the output of a clock synchronization service with
// skew bound ε: each process's reading differs from true time by a fixed
// per-run offset with |offset| ≤ ε/2, so any two readings differ by at
// most ε — the precision regime of Mayo–Kearns [28] and Stoller [34].
type EpsilonSynced struct {
	Off sim.Time
}

// Read implements Physical.
func (e EpsilonSynced) Read(now sim.Time) sim.Time { return now + e.Off }

// NewEpsilonFleet draws n ε-synchronized clocks with independent offsets
// uniform in [-ε/2, +ε/2].
func NewEpsilonFleet(r *stats.RNG, n int, eps sim.Duration) []EpsilonSynced {
	fleet := make([]EpsilonSynced, n)
	if eps <= 0 {
		return fleet
	}
	for i := range fleet {
		fleet[i] = EpsilonSynced{Off: sim.Time(r.Int63n(int64(eps)+1)) - eps/2}
	}
	return fleet
}

// NewDriftingFleet draws n unsynchronized hardware clocks with offsets
// uniform in [0, maxOffset) and drifts uniform in [-maxDriftPPM, +maxDriftPPM].
func NewDriftingFleet(r *stats.RNG, n int, maxOffset sim.Duration, maxDriftPPM float64) []Drifting {
	fleet := make([]Drifting, n)
	for i := range fleet {
		off := sim.Time(0)
		if maxOffset > 0 {
			off = sim.Time(r.Int63n(int64(maxOffset)))
		}
		fleet[i] = Drifting{
			Offset:   off,
			DriftPPM: (2*r.Float64() - 1) * maxDriftPPM,
		}
	}
	return fleet
}

// PhysicalVector is a physical (asynchronous) vector clock (Section
// 3.2.1.b.ii): the vector components are the monotonic local physical
// clock readings of each process, merged on message receipt. It relates
// locally observed wall times across locations; the paper notes it is an
// overkill for causality but useful when predicates mention local wall
// times.
type PhysicalVector struct {
	me int
	hw Physical
	v  []sim.Time
}

// NewPhysicalVector returns process me's physical vector clock backed by
// hardware clock hw in an n-process system. Unset components are the zero
// time.
func NewPhysicalVector(me, n int, hw Physical) *PhysicalVector {
	if me < 0 || me >= n {
		panic("clock: process index out of range")
	}
	return &PhysicalVector{me: me, hw: hw, v: make([]sim.Time, n)}
}

// Snapshot returns a copy of the component readings.
func (p *PhysicalVector) Snapshot() []sim.Time {
	return append([]sim.Time(nil), p.v...)
}

// Tick records a local relevant event at true time now and returns a copy
// of the vector to piggyback.
func (p *PhysicalVector) Tick(now sim.Time) []sim.Time {
	r := p.hw.Read(now)
	if r > p.v[p.me] {
		p.v[p.me] = r
	} else {
		p.v[p.me]++ // enforce monotonicity past granularity plateaus
	}
	return p.Snapshot()
}

// Receive merges a piggybacked physical vector t and records the local
// receive at true time now.
func (p *PhysicalVector) Receive(now sim.Time, t []sim.Time) []sim.Time {
	for i, x := range t {
		if i < len(p.v) && x > p.v[i] {
			p.v[i] = x
		}
	}
	return p.Tick(now)
}
