package clock

import (
	"testing"

	"pervasive/internal/stats"
)

// --- a tiny random message-passing execution generator for clock tests ---

type testEvent struct {
	proc    int
	index   int // position in its process's sequence
	lamport uint64
	vec     Vector
	preds   []int // indices into events: program-order + message edges
}

type testExecution struct {
	events []testEvent
}

// genExecution produces a random n-process execution with the given number
// of steps, stamping every event with both Lamport and Mattern/Fidge
// clocks, and recording the true causality edges.
func genExecution(r *stats.RNG, n, steps int) *testExecution {
	type inflight struct {
		dst     int
		lamport uint64
		vec     Vector
		sendIdx int
	}
	ex := &testExecution{}
	lams := make([]*Lamport, n)
	vecs := make([]*VectorClock, n)
	lastIdx := make([]int, n) // last event index per process, -1 if none
	for i := range lams {
		lams[i] = &Lamport{}
		vecs[i] = NewVectorClock(i, n)
		lastIdx[i] = -1
	}
	var mail []inflight
	for s := 0; s < steps; s++ {
		p := r.Intn(n)
		op := r.Intn(3)
		ev := testEvent{proc: p, index: len(ex.events)}
		if lastIdx[p] >= 0 {
			ev.preds = append(ev.preds, lastIdx[p])
		}
		switch {
		case op == 2 && len(mail) > 0:
			// receive a random in-flight message (possibly to another process;
			// redirect it to p for simplicity — the edge is what matters)
			mi := r.Intn(len(mail))
			m := mail[mi]
			mail = append(mail[:mi], mail[mi+1:]...)
			ev.lamport = lams[p].Receive(m.lamport)
			ev.vec = vecs[p].Receive(m.vec)
			ev.preds = append(ev.preds, m.sendIdx)
		case op == 1:
			// send to a random other process
			ev.lamport = lams[p].Send()
			ev.vec = vecs[p].Send()
			mail = append(mail, inflight{
				dst: r.Intn(n), lamport: ev.lamport,
				vec: ev.vec.Clone(), sendIdx: ev.index,
			})
		default:
			ev.lamport = lams[p].Tick()
			ev.vec = vecs[p].Tick()
		}
		lastIdx[p] = ev.index
		ex.events = append(ex.events, ev)
	}
	return ex
}

// happensBefore computes the transitive closure of the causality edges.
func (ex *testExecution) happensBefore() [][]bool {
	n := len(ex.events)
	hb := make([][]bool, n)
	for i := range hb {
		hb[i] = make([]bool, n)
	}
	// events are created in a valid topological order, so one forward pass
	// over predecessors suffices
	for j, ev := range ex.events {
		for _, p := range ev.preds {
			hb[p][j] = true
			for k := 0; k < n; k++ {
				if hb[k][p] {
					hb[k][j] = true
				}
			}
		}
	}
	return hb
}

func TestVectorClockIsomorphism(t *testing.T) {
	// The fundamental theorem: e → f ⟺ V(e) < V(f). The paper relies on
	// this isomorphism for causality-based clocks (§4.1).
	r := stats.NewRNG(1234)
	for trial := 0; trial < 20; trial++ {
		ex := genExecution(r, 2+r.Intn(5), 60)
		hb := ex.happensBefore()
		for i := range ex.events {
			for j := range ex.events {
				if i == j {
					continue
				}
				vlt := ex.events[i].vec.HappensBefore(ex.events[j].vec)
				if hb[i][j] != vlt {
					t.Fatalf("trial %d: events %d,%d: hb=%v but vectorBefore=%v (vi=%v vj=%v)",
						trial, i, j, hb[i][j], vlt, ex.events[i].vec, ex.events[j].vec)
				}
			}
		}
	}
}

func TestLamportConsistency(t *testing.T) {
	// Weak clock consistency: e → f ⇒ L(e) < L(f). The converse does not
	// hold (Lamport clocks cannot certify concurrency).
	r := stats.NewRNG(4321)
	for trial := 0; trial < 20; trial++ {
		ex := genExecution(r, 2+r.Intn(5), 60)
		hb := ex.happensBefore()
		for i := range ex.events {
			for j := range ex.events {
				if hb[i][j] && ex.events[i].lamport >= ex.events[j].lamport {
					t.Fatalf("trial %d: %d→%d but L=%d ≥ %d",
						trial, i, j, ex.events[i].lamport, ex.events[j].lamport)
				}
			}
		}
	}
}

func TestLamportConverseFailsSometimes(t *testing.T) {
	// Sanity: there exist concurrent events with ordered Lamport stamps —
	// the reason Mattern/Fidge clocks are "more powerful" (§4.2.3 item 5).
	r := stats.NewRNG(7)
	found := false
	for trial := 0; trial < 50 && !found; trial++ {
		ex := genExecution(r, 3, 40)
		hb := ex.happensBefore()
		for i := range ex.events {
			for j := range ex.events {
				if i != j && !hb[i][j] && !hb[j][i] &&
					ex.events[i].lamport < ex.events[j].lamport {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("never found concurrent events with ordered Lamport stamps")
	}
}

func TestLamportRules(t *testing.T) {
	var l Lamport
	if l.Read() != 0 {
		t.Fatal("fresh clock not at 0")
	}
	if l.Tick() != 1 {
		t.Fatal("SC1 tick failed")
	}
	if l.Send() != 2 {
		t.Fatal("SC2 send failed")
	}
	// SC3: max(2, 10) + 1 = 11
	if got := l.Receive(10); got != 11 {
		t.Fatalf("SC3 got %d want 11", got)
	}
	// SC3 with stale stamp: max(11, 3) + 1 = 12
	if got := l.Receive(3); got != 12 {
		t.Fatalf("SC3 stale got %d want 12", got)
	}
}

func TestVectorClockRules(t *testing.T) {
	c := NewVectorClock(1, 3)
	v1 := c.Tick()
	if v1.Compare(Vector{0, 1, 0}) != Same {
		t.Fatalf("VC1 got %v", v1)
	}
	v2 := c.Send()
	if v2.Compare(Vector{0, 2, 0}) != Same {
		t.Fatalf("VC2 got %v", v2)
	}
	v3 := c.Receive(Vector{5, 1, 2})
	if v3.Compare(Vector{5, 3, 2}) != Same {
		t.Fatalf("VC3 got %v", v3)
	}
	if c.Me() != 1 {
		t.Fatal("Me() wrong")
	}
}

func TestVectorClockSnapshotIsCopy(t *testing.T) {
	c := NewVectorClock(0, 2)
	s := c.Snapshot()
	s[0] = 99
	if c.Snapshot()[0] != 0 {
		t.Fatal("snapshot aliases internal state")
	}
}

func TestNewVectorClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index did not panic")
		}
	}()
	NewVectorClock(3, 3)
}
