package clock

import (
	"testing"

	"pervasive/internal/stats"
)

func TestDiffStrobeFirstStrobeSendsLocalOnly(t *testing.T) {
	d := NewDiffStrobeVector(1, 4)
	s := d.Strobe()
	if len(s) != 1 || s[0] != (SparseEntry{Proc: 1, Val: 1}) {
		t.Fatalf("first diff %v", s)
	}
	if s.WireBytes() != 10 {
		t.Fatalf("wire bytes %d", s.WireBytes())
	}
}

func TestDiffStrobeSendsOnlyChanges(t *testing.T) {
	d := NewDiffStrobeVector(0, 4)
	d.Strobe() // sends {0:1}
	// Merge knowledge about proc 2.
	d.OnStrobe(SparseStamp{{Proc: 2, Val: 7}})
	s := d.Strobe()
	// Changed since last broadcast: own component (2) and proc 2 (7).
	if len(s) != 2 {
		t.Fatalf("diff %v", s)
	}
	m := map[int]uint64{}
	for _, e := range s {
		m[e.Proc] = e.Val
	}
	if m[0] != 2 || m[2] != 7 {
		t.Fatalf("diff %v", s)
	}
	// Nothing external changed: next strobe carries only the local tick.
	s2 := d.Strobe()
	if len(s2) != 1 || s2[0].Proc != 0 || s2[0].Val != 3 {
		t.Fatalf("diff %v", s2)
	}
}

func TestDiffStrobeIgnoresStaleAndBogusEntries(t *testing.T) {
	d := NewDiffStrobeVector(0, 3)
	d.OnStrobe(SparseStamp{{Proc: 1, Val: 5}})
	d.OnStrobe(SparseStamp{{Proc: 1, Val: 3}})  // stale
	d.OnStrobe(SparseStamp{{Proc: 9, Val: 9}})  // out of range
	d.OnStrobe(SparseStamp{{Proc: -1, Val: 9}}) // out of range
	snap := d.Snapshot()
	if snap.Compare(Vector{0, 5, 0}) != Same {
		t.Fatalf("snapshot %v", snap)
	}
}

// TestDiffEquivalentToFullUnderReliableBroadcast is the compression's
// correctness theorem: with every strobe delivered (any interleaving that
// preserves per-sender order), differential and full strobes produce
// identical knowledge at every process after every event round.
func TestDiffEquivalentToFullUnderReliableBroadcast(t *testing.T) {
	r := stats.NewRNG(42)
	const n = 5
	full := make([]*StrobeVector, n)
	diff := make([]*DiffStrobeVector, n)
	for i := 0; i < n; i++ {
		full[i] = NewStrobeVector(i, n)
		diff[i] = NewDiffStrobeVector(i, n)
	}
	for step := 0; step < 400; step++ {
		src := r.Intn(n)
		fs := full[src].Strobe()
		ds := diff[src].Strobe()
		// Reliable broadcast: all peers merge immediately (per-sender
		// order trivially preserved).
		for j := 0; j < n; j++ {
			if j == src {
				continue
			}
			full[j].OnStrobe(fs)
			diff[j].OnStrobe(ds)
		}
		for j := 0; j < n; j++ {
			if full[j].Snapshot().Compare(diff[j].Snapshot()) != Same {
				t.Fatalf("step %d: proc %d diverged: full=%v diff=%v",
					step, j, full[j].Snapshot(), diff[j].Snapshot())
			}
		}
	}
}

// TestDiffCompressionSavesBytes quantifies the win. Compression pays off
// when activity is skewed — a busy sensor's consecutive strobes differ in
// few components because little else changed in between. That is the
// common sensornet regime (one hot spot, many quiet observers).
func TestDiffCompressionSavesBytes(t *testing.T) {
	r := stats.NewRNG(1)
	const n, steps = 32, 1000
	diff := make([]*DiffStrobeVector, n)
	for i := range diff {
		diff[i] = NewDiffStrobeVector(i, n)
	}
	var diffBytes, fullBytes int64
	for step := 0; step < steps; step++ {
		// Hot-spot workload: sensor 0 produces 80% of the events.
		src := 0
		if r.Bool(0.2) {
			src = 1 + r.Intn(n-1)
		}
		ds := diff[src].Strobe()
		diffBytes += int64(ds.WireBytes())
		fullBytes += int64(8 * n)
		for j := 0; j < n; j++ {
			if j != src {
				diff[j].OnStrobe(ds)
			}
		}
	}
	if diffBytes*2 > fullBytes {
		t.Fatalf("diff strobes saved too little: %d vs %d bytes", diffBytes, fullBytes)
	}
	t.Logf("diff %d bytes vs full %d bytes (%.1f%% of full)",
		diffBytes, fullBytes, 100*float64(diffBytes)/float64(fullBytes))
}

// TestDiffStrobeSingleAllocation pins the hot-loop contract: a strobe
// allocates exactly its sparse stamp — no snapshot clone, no append
// growth — regardless of how many components changed.
func TestDiffStrobeSingleAllocation(t *testing.T) {
	const n = 32
	d := NewDiffStrobeVector(0, n)
	peer := NewDiffStrobeVector(1, n)
	if allocs := testing.AllocsPerRun(100, func() { d.Strobe() }); allocs != 1 {
		t.Fatalf("quiet strobe: %.1f allocs, want 1", allocs)
	}
	// Worst case: every component changed since the last broadcast.
	if allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < n; i++ {
			peer.inner.v[i] += 2
		}
		d.OnStrobe(peer.Strobe())
		d.Strobe()
	}); allocs != 2 { // one stamp each for peer.Strobe and d.Strobe
		t.Fatalf("busy strobes: %.1f allocs, want 2", allocs)
	}
}

func BenchmarkDiffStrobe(b *testing.B) {
	d := NewDiffStrobeVector(0, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Strobe()
	}
}

func TestDiffStrobeMonotoneUnderLoss(t *testing.T) {
	// Drop 50% of strobes: receivers lag, but clocks stay monotonic and
	// never overtake the true event counts.
	r := stats.NewRNG(9)
	const n = 4
	diff := make([]*DiffStrobeVector, n)
	for i := range diff {
		diff[i] = NewDiffStrobeVector(i, n)
	}
	truth := NewVector(n)
	prev := make([]Vector, n)
	for i := range prev {
		prev[i] = NewVector(n)
	}
	for step := 0; step < 500; step++ {
		src := r.Intn(n)
		truth[src]++
		ds := diff[src].Strobe()
		for j := 0; j < n; j++ {
			if j != src && r.Bool(0.5) {
				diff[j].OnStrobe(ds)
			}
		}
		for j := 0; j < n; j++ {
			snap := diff[j].Snapshot()
			if rel := prev[j].Compare(snap); rel != Before && rel != Same {
				t.Fatalf("proc %d clock regressed", j)
			}
			if rel := snap.Compare(truth); rel != Before && rel != Same {
				t.Fatalf("proc %d knows more than happened: %v > %v", j, snap, truth)
			}
			prev[j] = snap
		}
	}
}
