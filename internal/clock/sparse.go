package clock

// Sparse strobe vectors complete the Singhal–Kshemkalyani adaptation: the
// wire format has been sparse since the differential clock landed, but the
// *local* state was still two dense p-length vectors per process, which is
// what caps the system size (p processes × O(p) words each = O(p²) memory
// system-wide). SparseStrobeVector stores only the components this process
// has actually heard of — O(active peers), not O(p) — as sorted (proc,
// val, sent-at-last-strobe) triples. In a neighborhood-scoped deployment a
// sensor hears from its radio neighbors plus the checker, so active peers
// is bounded by the degree, independent of p.
//
// The representation is exact, not approximate: an absent component is
// exactly the dense clock's zero. The equivalence tests drive both
// representations through identical rule sequences and require identical
// stamps, so `NewVectorState` can pick by density without changing any
// observable behaviour.

// sparseComp is one known non-own component: its current merged value and
// the value at this process's last strobe (the differential baseline).
type sparseComp struct {
	proc int32
	val  uint64
	sent uint64
}

// sparseCompBytes is the in-memory footprint of one component (4-byte
// proc id padded to 8, plus two 8-byte values).
const sparseCompBytes = 24

// SparseStrobeVector is a strobe vector clock with differential broadcast
// and O(active peers) local state. It follows the same SVC1/SVC2 rules as
// DiffStrobeVector and emits byte-identical stamps.
type SparseStrobeVector struct {
	me    int
	n     int
	own   uint64
	comps []sparseComp // sorted by proc; never contains me; vals never 0
}

// NewSparseStrobeVector returns process me's sparse differential strobe
// clock in an n-process system.
func NewSparseStrobeVector(me, n int) *SparseStrobeVector {
	if me < 0 || me >= n {
		panic("clock: process index out of range")
	}
	return &SparseStrobeVector{me: me, n: n}
}

// Me returns the owning process index.
func (s *SparseStrobeVector) Me() int { return s.me }

// OwnClock returns the local component — the value a process reports as
// its own logical time without materializing a vector.
func (s *SparseStrobeVector) OwnClock() uint64 { return s.own }

// find returns the insertion index of proc in comps (binary search).
func (s *SparseStrobeVector) find(proc int) int {
	lo, hi := 0, len(s.comps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(s.comps[mid].proc) < proc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Strobe applies SVC1 and returns the sparse diff to broadcast: every
// component that changed since this process's previous strobe, in proc
// order, always including the freshly ticked local component — exactly
// the stamp DiffStrobeVector emits. One exact-size allocation.
func (s *SparseStrobeVector) Strobe() SparseStamp {
	s.own++ // SVC1
	changed := 1
	for i := range s.comps {
		if s.comps[i].val != s.comps[i].sent {
			changed++
		}
	}
	out := make(SparseStamp, 0, changed)
	placedOwn := false
	for i := range s.comps {
		c := &s.comps[i]
		if !placedOwn && int(c.proc) > s.me {
			out = append(out, SparseEntry{Proc: s.me, Val: s.own})
			placedOwn = true
		}
		if c.val != c.sent {
			out = append(out, SparseEntry{Proc: int(c.proc), Val: c.val})
			c.sent = c.val
		}
	}
	if !placedOwn {
		out = append(out, SparseEntry{Proc: s.me, Val: s.own})
	}
	return out
}

// OnStrobe applies SVC2 to a sparse stamp: componentwise max over the
// carried entries, no local tick. Unknown components are inserted in
// sorted position; zero-valued entries are no-ops, as they are for the
// dense merge. Out-of-range entries are ignored.
func (s *SparseStrobeVector) OnStrobe(st SparseStamp) {
	for _, e := range st {
		if e.Proc < 0 || e.Proc >= s.n {
			continue
		}
		if e.Proc == s.me {
			if e.Val > s.own {
				s.own = e.Val
			}
			continue
		}
		i := s.find(e.Proc)
		if i < len(s.comps) && int(s.comps[i].proc) == e.Proc {
			if e.Val > s.comps[i].val {
				s.comps[i].val = e.Val
			}
			continue
		}
		if e.Val == 0 {
			continue
		}
		s.comps = append(s.comps, sparseComp{}) //lint:allow hotpath(amortized growth: the component list grows once per newly-seen proc and then stabilizes at the contact-set size)
		copy(s.comps[i+1:], s.comps[i:len(s.comps)-1])
		s.comps[i] = sparseComp{proc: int32(e.Proc), val: e.Val}
	}
}

// Snapshot materializes the full dense vector. O(n) allocation — callers
// on hot paths should prefer OwnClock or the stamps themselves.
func (s *SparseStrobeVector) Snapshot() Vector {
	v := NewVector(s.n)
	v[s.me] = s.own //lint:allow clockrule(materializing a fresh dense copy of this clock for observers; the live sparse state is untouched)
	for _, c := range s.comps {
		v[c.proc] = c.val //lint:allow clockrule(same fresh-copy materialization as above)
	}
	return v
}

// Reset zeroes the clock in place, releasing the component storage: the
// epoch-reset rule for a crashed-and-rejoining process.
func (s *SparseStrobeVector) Reset() {
	s.own = 0
	s.comps = nil
}

// ActivePeers returns how many non-own components this process has heard
// of — the quantity the O(active peers) memory claim is about.
func (s *SparseStrobeVector) ActivePeers() int { return len(s.comps) }

// StateBytes estimates the resident footprint of the clock state.
func (s *SparseStrobeVector) StateBytes() int {
	return 32 + cap(s.comps)*sparseCompBytes
}

// VectorState is the rule-method surface shared by the dense differential
// clock and the sparse sorted-pairs clock. Engines hold this interface so
// the representation is a capacity decision, not a protocol one.
type VectorState interface {
	Me() int
	// Strobe applies SVC1 and returns the differential stamp to broadcast.
	Strobe() SparseStamp
	// OnStrobe applies SVC2 to a received differential stamp.
	OnStrobe(SparseStamp)
	// Snapshot materializes the full dense vector (O(n); off the hot path).
	Snapshot() Vector
	// OwnClock returns the local component without materializing a vector.
	OwnClock() uint64
	// StateBytes estimates the resident footprint of the clock state.
	StateBytes() int
}

// DenseSparseCutoff is the system size above which NewVectorState picks
// the sparse representation: below it two dense n-vectors are at most a
// few KB and the flat arrays win on constant factors; above it the O(n)
// per-process state is what caps the system.
const DenseSparseCutoff = 128

// NewVectorState returns the density-appropriate strobe-vector state for
// process me of n.
func NewVectorState(me, n int) VectorState {
	if n <= DenseSparseCutoff {
		return NewDiffStrobeVector(me, n)
	}
	return NewSparseStrobeVector(me, n)
}
