package clock

import (
	"reflect"
	"testing"

	"pervasive/internal/stats"
)

// TestSparseEquivalentToDense drives the dense and sparse representations
// through an identical random rule sequence and requires byte-identical
// stamps and snapshots at every step: representation must be invisible.
func TestSparseEquivalentToDense(t *testing.T) {
	const n = 40
	r := stats.NewRNG(7)
	dense := make([]*DiffStrobeVector, n)
	sparse := make([]*SparseStrobeVector, n)
	for i := 0; i < n; i++ {
		dense[i] = NewDiffStrobeVector(i, n)
		sparse[i] = NewSparseStrobeVector(i, n)
	}
	for step := 0; step < 2000; step++ {
		p := int(r.Int63n(n))
		ds, ss := dense[p].Strobe(), sparse[p].Strobe()
		if !reflect.DeepEqual(ds, ss) {
			t.Fatalf("step %d: stamp diverged\ndense:  %v\nsparse: %v", step, ds, ss)
		}
		// Deliver to a random subset, same for both representations.
		for q := 0; q < n; q++ {
			if q != p && r.Bool(0.2) {
				dense[q].OnStrobe(ds)
				sparse[q].OnStrobe(ss)
			}
		}
		if step%200 == 0 {
			q := int(r.Int63n(n))
			if dv, sv := dense[q].Snapshot(), sparse[q].Snapshot(); !reflect.DeepEqual(dv, sv) {
				t.Fatalf("step %d: snapshot diverged for %d\ndense:  %v\nsparse: %v", step, q, dv, sv)
			}
			if dense[q].OwnClock() != sparse[q].OwnClock() {
				t.Fatalf("step %d: own clock diverged for %d", step, q)
			}
		}
	}
	for q := 0; q < n; q++ {
		if dv, sv := dense[q].Snapshot(), sparse[q].Snapshot(); !reflect.DeepEqual(dv, sv) {
			t.Fatalf("final snapshot diverged for %d", q)
		}
	}
}

// TestSparseStateSublinear: with k active peers the sparse footprint must
// track k, not the system size n.
func TestSparseStateSublinear(t *testing.T) {
	const n, k = 1 << 16, 12
	s := NewSparseStrobeVector(0, n)
	var st SparseStamp
	for p := 1; p <= k; p++ {
		st = append(st, SparseEntry{Proc: p * 31, Val: uint64(p)})
	}
	s.OnStrobe(st)
	if got := s.ActivePeers(); got != k {
		t.Fatalf("ActivePeers = %d, want %d", got, k)
	}
	dense := NewDiffStrobeVector(0, n).StateBytes()
	if sb := s.StateBytes(); sb*100 > dense {
		t.Fatalf("sparse state %dB not sublinear vs dense %dB at n=%d", sb, dense, n)
	}
}

// TestSparseStrobeEmitsSortedExactDiff: the stamp lists changed components
// in proc order, own component included at its sorted position, and the
// second strobe with no new information carries only the own tick.
func TestSparseStrobeEmitsSortedExactDiff(t *testing.T) {
	s := NewSparseStrobeVector(5, 64)
	s.OnStrobe(SparseStamp{{Proc: 9, Val: 3}, {Proc: 2, Val: 1}})
	got := s.Strobe()
	want := SparseStamp{{Proc: 2, Val: 1}, {Proc: 5, Val: 1}, {Proc: 9, Val: 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("first stamp = %v, want %v", got, want)
	}
	got = s.Strobe()
	want = SparseStamp{{Proc: 5, Val: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("second stamp = %v, want %v", got, want)
	}
}

// TestSparseOnStrobeIgnoresJunk: out-of-range procs and zero values are
// no-ops, matching the dense merge.
func TestSparseOnStrobeIgnoresJunk(t *testing.T) {
	s := NewSparseStrobeVector(0, 8)
	s.OnStrobe(SparseStamp{{Proc: -1, Val: 9}, {Proc: 8, Val: 9}, {Proc: 3, Val: 0}})
	if s.ActivePeers() != 0 {
		t.Fatalf("junk entries created components: %d", s.ActivePeers())
	}
	// Stale (smaller) values must not regress a component.
	s.OnStrobe(SparseStamp{{Proc: 3, Val: 5}})
	s.OnStrobe(SparseStamp{{Proc: 3, Val: 2}})
	if v := s.Snapshot()[3]; v != 5 {
		t.Fatalf("component regressed to %d", v)
	}
}

// TestSparseReset: the epoch reset zeroes the clock and releases storage.
func TestSparseReset(t *testing.T) {
	s := NewSparseStrobeVector(1, 32)
	s.Strobe()
	s.OnStrobe(SparseStamp{{Proc: 7, Val: 4}})
	s.Reset()
	if s.OwnClock() != 0 || s.ActivePeers() != 0 {
		t.Fatalf("Reset left state: own=%d peers=%d", s.OwnClock(), s.ActivePeers())
	}
	if got := s.Strobe(); !reflect.DeepEqual(got, SparseStamp{{Proc: 1, Val: 1}}) {
		t.Fatalf("post-reset stamp = %v", got)
	}
}

// TestNewVectorStatePicksByDensity: the constructor switches representation
// at the documented cutoff.
func TestNewVectorStatePicksByDensity(t *testing.T) {
	if _, ok := NewVectorState(0, DenseSparseCutoff).(*DiffStrobeVector); !ok {
		t.Fatal("at the cutoff: want dense")
	}
	if _, ok := NewVectorState(0, DenseSparseCutoff+1).(*SparseStrobeVector); !ok {
		t.Fatal("above the cutoff: want sparse")
	}
}
