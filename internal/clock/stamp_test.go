package clock

import (
	"testing"
	"testing/quick"
)

func TestVectorCompareBasics(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{1, 2, 3}
	if a.Compare(b) != Same {
		t.Fatal("equal vectors not Same")
	}
	c := Vector{1, 2, 4}
	if a.Compare(c) != Before || c.Compare(a) != After {
		t.Fatal("dominance not detected")
	}
	d := Vector{2, 1, 3}
	if a.Compare(d) != Concurrent || d.Compare(a) != Concurrent {
		t.Fatal("concurrency not detected")
	}
}

func TestVectorCompareDifferentLengths(t *testing.T) {
	short := Vector{1, 1}
	long := Vector{1, 1, 0}
	if short.Compare(long) != Same {
		t.Fatal("trailing zeros should not change the relation")
	}
	long2 := Vector{1, 1, 5}
	if short.Compare(long2) != Before {
		t.Fatal("shorter vector should be Before when extension dominates")
	}
}

func TestHappensBeforeAndConcurrent(t *testing.T) {
	a := Vector{0, 1}
	b := Vector{1, 1}
	if !a.HappensBefore(b) || b.HappensBefore(a) {
		t.Fatal("happens-before misreported")
	}
	c := Vector{1, 0}
	if !a.ConcurrentWith(c) || !c.ConcurrentWith(a) {
		t.Fatal("concurrent misreported")
	}
	if a.ConcurrentWith(a) {
		t.Fatal("vector concurrent with itself")
	}
}

func TestMergeFromIsLUB(t *testing.T) {
	v := Vector{1, 5, 2}
	w := Vector{3, 1, 2, 7}
	merged := v.MergeFrom(w)
	want := Vector{3, 5, 2, 7}
	if merged.Compare(want) != Same {
		t.Fatalf("merge = %v want %v", merged, want)
	}
}

// Property: merge is an upper bound of both operands and idempotent.
func TestMergeProperty(t *testing.T) {
	f := func(av, bv []uint8) bool {
		a := make(Vector, len(av))
		for i, x := range av {
			a[i] = uint64(x)
		}
		b := make(Vector, len(bv))
		for i, x := range bv {
			b[i] = uint64(x)
		}
		m := a.Clone()
		m.MergeFrom(b)
		if r := a.Compare(m); r != Before && r != Same {
			return false
		}
		if r := b.Compare(m); r != Before && r != Same {
			return false
		}
		m2 := m.Clone()
		m2.MergeFrom(b)
		m2.MergeFrom(a)
		return m2.Compare(m) == Same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare is antisymmetric — swapping arguments flips Before and
// After and preserves Same/Concurrent.
func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(av, bv []uint8) bool {
		a := make(Vector, len(av))
		for i, x := range av {
			a[i] = uint64(x)
		}
		b := make(Vector, len(bv))
		for i, x := range bv {
			b[i] = uint64(x)
		}
		fwd, rev := a.Compare(b), b.Compare(a)
		switch fwd {
		case Same:
			return rev == Same
		case Before:
			return rev == After
		case After:
			return rev == Before
		default:
			return rev == Concurrent
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := Vector{1, 2}
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestSum(t *testing.T) {
	if (Vector{1, 2, 3}).Sum() != 6 {
		t.Fatal("sum wrong")
	}
	if (Vector{}).Sum() != 0 {
		t.Fatal("empty sum wrong")
	}
}

func TestOrderString(t *testing.T) {
	for o, want := range map[Order]string{Same: "=", Before: "<", After: ">", Concurrent: "||"} {
		if o.String() != want {
			t.Fatalf("%d.String() = %q", o, o.String())
		}
	}
}
