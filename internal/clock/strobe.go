package clock

// StrobeScalar is a strobe scalar clock following rules SSC1–SSC2
// (Section 4.2.2). It is lightweight — a strobe carries O(1) state — but
// weaker than the strobe vector clock: under Δ > 0 it can induce both
// false positives and false negatives in predicate detection (Section 3.3).
//
// The zero value is ready to use.
type StrobeScalar struct {
	c uint64
}

// Read returns the current clock value.
func (s *StrobeScalar) Read() uint64 { return s.c }

// Strobe applies SSC1 on a relevant (sensed) event: tick the local
// component and return the value that the caller must system-wide
// broadcast as a control message.
func (s *StrobeScalar) Strobe() uint64 {
	s.c++
	return s.c
}

// OnStrobe applies SSC2 on receipt of strobe t: catch up to the latest
// known time, without ticking. (Contrast with Lamport SC3, which ticks on
// receive — this is difference 2 of Section 4.2.3.)
func (s *StrobeScalar) OnStrobe(t uint64) {
	if t > s.c {
		s.c = t
	}
}

// StrobeVector is a strobe vector clock following rules SVC1–SVC2
// (Section 4.2.1). Construct with NewStrobeVector.
type StrobeVector struct {
	me int
	v  Vector
}

// NewStrobeVector returns process me's strobe vector clock in an n-process
// system.
func NewStrobeVector(me, n int) *StrobeVector {
	if me < 0 || me >= n {
		panic("clock: process index out of range")
	}
	return &StrobeVector{me: me, v: NewVector(n)}
}

// Me returns the owning process index.
func (s *StrobeVector) Me() int { return s.me }

// Snapshot returns a copy of the current vector.
func (s *StrobeVector) Snapshot() Vector { return s.v.Clone() }

// Strobe applies SVC1 on a relevant (sensed) event: tick the local
// component and return the vector that the caller must system-wide
// broadcast as a control message.
func (s *StrobeVector) Strobe() Vector {
	s.v[s.me]++
	return s.v.Clone()
}

// OnStrobe applies SVC2 on receipt of strobe t: componentwise max, no
// local tick.
func (s *StrobeVector) OnStrobe(t Vector) {
	s.v.MergeFrom(t)
}
