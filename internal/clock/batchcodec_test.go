package clock

import (
	"math"
	"reflect"
	"testing"
)

func TestStampBatchRoundTrip(t *testing.T) {
	cases := [][]StampTriple{
		nil,
		{{Proc: 0, Val: 1, Sent: 1}},
		{{Proc: 0, Val: 7, Sent: 3}, {Proc: 1, Val: 0, Sent: 0}, {Proc: 5, Val: 12, Sent: 9}},
		{{Proc: 3, Val: math.MaxUint64, Sent: math.MaxUint64}, {Proc: 100000, Val: 1, Sent: 2}},
	}
	for i, ts := range cases {
		b := AppendStampBatch(nil, ts)
		if got := StampBatchWireBytes(ts); got != len(b) {
			t.Errorf("case %d: StampBatchWireBytes=%d, encoded %d bytes", i, got, len(b))
		}
		// Concatenate a second batch to prove self-delimiting decode.
		tail := []StampTriple{{Proc: 2, Val: 4, Sent: 4}}
		b = AppendStampBatch(b, tail)
		got, n, err := DecodeStampBatch(b)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if len(ts) == 0 {
			if len(got) != 0 {
				t.Fatalf("case %d: got %v, want empty", i, got)
			}
		} else if !reflect.DeepEqual(got, ts) {
			t.Fatalf("case %d: got %v, want %v", i, got, ts)
		}
		got2, n2, err := DecodeStampBatch(b[n:])
		if err != nil || !reflect.DeepEqual(got2, tail) || n+n2 != len(b) {
			t.Fatalf("case %d: second batch got %v (n=%d+%d of %d), err=%v", i, got2, n, n2, len(b), err)
		}
	}
}

func TestStampBatchContiguousRegionIsCompact(t *testing.T) {
	// A contiguous region with small values — the common aggregator sync —
	// should cost ~3 bytes per process, far below the 18-byte flat record.
	ts := make([]StampTriple, 512)
	for i := range ts {
		ts[i] = StampTriple{Proc: 1024 + i, Val: uint64(i % 90), Sent: uint64(i % 120)}
	}
	n := StampBatchWireBytes(ts)
	if n > 4*len(ts) {
		t.Fatalf("contiguous batch cost %d bytes for %d triples (%.1f/triple), want <= 4/triple", n, len(ts), float64(n)/float64(len(ts)))
	}
}

func TestStampBatchRejectsUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unsorted triples")
		}
	}()
	AppendStampBatch(nil, []StampTriple{{Proc: 5}, {Proc: 5}})
}

func TestStampBatchDecodeErrors(t *testing.T) {
	if _, _, err := DecodeStampBatch(nil); err == nil {
		t.Error("nil buffer: want error")
	}
	// Truncated after count.
	b := AppendStampBatch(nil, []StampTriple{{Proc: 1, Val: 300, Sent: 300}})
	for cut := 1; cut < len(b); cut++ {
		if _, _, err := DecodeStampBatch(b[:cut]); err == nil {
			t.Errorf("truncated at %d of %d: want error", cut, len(b))
		}
	}
	// A zero proc-delta is invalid (procs strictly increase).
	bad := []byte{1, 0}
	if _, _, err := DecodeStampBatch(bad); err == nil {
		t.Error("zero proc delta: want error")
	}
}
