package clock

import (
	"fmt"
	"testing"
)

// The DenseSparseCutoff boundary: NewVectorState must pick the dense
// representation up to and including the cutoff and the sparse one just
// above it, and — more importantly — the two representations must emit
// bit-identical stamps and snapshots when driven through identical rule
// sequences at exactly p ∈ {cutoff-1, cutoff, cutoff+1}. A checker or
// sensor fleet straddling the boundary (say p grows from 128 to 129
// between runs) must see no observable behaviour change beyond memory.

func TestCutoffRepresentationPick(t *testing.T) {
	cases := []struct {
		n          int
		wantSparse bool
	}{
		{DenseSparseCutoff - 1, false}, // 127
		{DenseSparseCutoff, false},     // 128: at the cutoff, dense
		{DenseSparseCutoff + 1, true},  // 129: first sparse size
	}
	for _, tc := range cases {
		vs := NewVectorState(0, tc.n)
		_, sparse := vs.(*SparseStrobeVector)
		_, dense := vs.(*DiffStrobeVector)
		if sparse == dense {
			t.Fatalf("n=%d: expected exactly one representation, got sparse=%v dense=%v", tc.n, sparse, dense)
		}
		if sparse != tc.wantSparse {
			t.Errorf("n=%d: NewVectorState picked sparse=%v, want %v", tc.n, sparse, tc.wantSparse)
		}
	}
}

// driveCutoffPair runs the same deterministic strobe/receive schedule
// through a dense and a sparse clock for every process and requires
// bit-identical stamps at each step and bit-identical snapshots at the
// end. The schedule exercises first-strobe, re-strobe with no change,
// multi-hop gossip (stamps relayed through a middle process) and an
// epoch reset, at a fixed set of "active" processes so the sparse state
// stays genuinely sparse.
func driveCutoffPair(t *testing.T, n int) {
	t.Helper()
	dense := make([]*DiffStrobeVector, n)
	sparse := make([]*SparseStrobeVector, n)
	// Only a handful of processes participate: boundary ids plus a few
	// in the middle, mimicking a neighborhood-scoped fleet.
	active := []int{0, 1, n / 2, n - 2, n - 1}
	for _, p := range active {
		dense[p] = NewDiffStrobeVector(p, n)
		sparse[p] = NewSparseStrobeVector(p, n)
	}
	// step strobes process p on both representations, checks the stamps
	// match, and delivers them to every other active process.
	step := func(p int) {
		t.Helper()
		ds := dense[p].Strobe()
		ss := sparse[p].Strobe()
		if fmt.Sprint(ds) != fmt.Sprint(ss) {
			t.Fatalf("n=%d proc=%d: stamp mismatch\n dense:  %v\n sparse: %v", n, p, ds, ss)
		}
		for _, q := range active {
			if q == p {
				continue
			}
			dense[q].OnStrobe(ds)
			sparse[q].OnStrobe(ss)
		}
	}
	for round := 0; round < 4; round++ {
		for _, p := range active {
			step(p)
		}
	}
	// Epoch reset on one process (a rejoin builds a fresh clock in the
	// same representation, mirroring Sensor.Rejoin), then more rounds:
	// the post-reset stamps must also agree.
	dense[active[1]] = NewDiffStrobeVector(active[1], n)
	sparse[active[1]] = NewSparseStrobeVector(active[1], n)
	for round := 0; round < 2; round++ {
		for _, p := range active {
			step(p)
		}
	}
	for _, p := range active {
		dv, sv := dense[p].Snapshot(), sparse[p].Snapshot()
		if len(dv) != n || len(sv) != n {
			t.Fatalf("n=%d proc=%d: snapshot lengths %d/%d, want %d", n, p, len(dv), len(sv), n)
		}
		for i := range dv {
			if dv[i] != sv[i] {
				t.Fatalf("n=%d proc=%d: snapshot[%d] dense=%d sparse=%d", n, p, i, dv[i], sv[i])
			}
		}
		if dense[p].OwnClock() != sparse[p].OwnClock() {
			t.Fatalf("n=%d proc=%d: OwnClock dense=%d sparse=%d", n, p, dense[p].OwnClock(), sparse[p].OwnClock())
		}
	}
}

func TestCutoffBitIdenticalStamps(t *testing.T) {
	for _, n := range []int{DenseSparseCutoff - 1, DenseSparseCutoff, DenseSparseCutoff + 1} {
		t.Run(fmt.Sprintf("p=%d", n), func(t *testing.T) { driveCutoffPair(t, n) })
	}
}
