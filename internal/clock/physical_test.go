package clock

import (
	"testing"

	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

func TestDriftingClockOffsetAndDrift(t *testing.T) {
	d := Drifting{Offset: 100, DriftPPM: 40}
	if got := d.Read(0); got != 100 {
		t.Fatalf("read at 0 = %v", got)
	}
	// After one true second a +40ppm clock gains 40 µs.
	if got := d.Read(sim.Second); got != 100+sim.Second+40 {
		t.Fatalf("read at 1s = %v", got)
	}
	if sk := d.SkewAt(sim.Second); sk != 140 {
		t.Fatalf("skew = %v", sk)
	}
}

func TestDriftingClockGranularity(t *testing.T) {
	d := Drifting{Granularity: 10}
	if got := d.Read(17); got != 10 {
		t.Fatalf("granular read = %v want 10", got)
	}
	if got := d.Read(20); got != 20 {
		t.Fatalf("granular read = %v want 20", got)
	}
}

func TestDriftingClockMonotone(t *testing.T) {
	fleet := NewDriftingFleet(stats.NewRNG(1), 8, sim.Second, 100)
	for _, d := range fleet {
		prev := d.Read(0)
		for now := sim.Time(1); now < 10*sim.Second; now += 777 {
			cur := d.Read(now)
			if cur < prev {
				t.Fatalf("clock %+v went backwards: %v then %v", d, prev, cur)
			}
			prev = cur
		}
	}
}

func TestEpsilonFleetBound(t *testing.T) {
	const eps = 10 * sim.Millisecond
	fleet := NewEpsilonFleet(stats.NewRNG(2), 100, eps)
	for i, c := range fleet {
		if c.Off < -eps/2 || c.Off > eps/2 {
			t.Fatalf("clock %d offset %v outside ±ε/2", i, c.Off)
		}
	}
	// Pairwise skew at any instant is ≤ ε.
	for _, a := range fleet {
		for _, b := range fleet {
			skew := a.Read(12345) - b.Read(12345)
			if skew < -eps || skew > eps {
				t.Fatalf("pairwise skew %v exceeds ε", skew)
			}
		}
	}
}

func TestEpsilonFleetZero(t *testing.T) {
	fleet := NewEpsilonFleet(stats.NewRNG(3), 5, 0)
	for _, c := range fleet {
		if c.Off != 0 {
			t.Fatal("ε=0 fleet should be perfectly synchronized")
		}
	}
}

func TestPhysicalVector(t *testing.T) {
	hwA := Drifting{Offset: 0}
	hwB := Drifting{Offset: 500}
	a := NewPhysicalVector(0, 2, hwA)
	b := NewPhysicalVector(1, 2, hwB)

	va := a.Tick(1000)
	if va[0] != 1000 || va[1] != 0 {
		t.Fatalf("a tick = %v", va)
	}
	vb := b.Receive(2000, va)
	// b's local reading at 2000 is 2500; merged a-component is 1000.
	if vb[0] != 1000 || vb[1] != 2500 {
		t.Fatalf("b receive = %v", vb)
	}
}

func TestPhysicalVectorMonotoneOnPlateau(t *testing.T) {
	// A coarse-granularity clock can return the same reading twice; the
	// vector must still advance.
	hw := Drifting{Granularity: 1000}
	p := NewPhysicalVector(0, 1, hw)
	v1 := p.Tick(100)
	v2 := p.Tick(150) // same granule
	if v2[0] <= v1[0] {
		t.Fatalf("vector not monotone on plateau: %v then %v", v1, v2)
	}
}

func TestPhysicalVectorSnapshotIsCopy(t *testing.T) {
	p := NewPhysicalVector(0, 2, Drifting{})
	s := p.Snapshot()
	s[1] = 42
	if p.Snapshot()[1] != 0 {
		t.Fatal("snapshot aliases internal state")
	}
}

func TestPhysicalVectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index did not panic")
		}
	}()
	NewPhysicalVector(2, 2, Drifting{})
}

func TestDriftingNegativeGranularityPath(t *testing.T) {
	// Negative local times (large negative offset) still floor correctly.
	d := Drifting{Offset: -100, Granularity: 30}
	got := d.Read(0) // true -100 floors to -120
	if got != -120 {
		t.Fatalf("negative granular read = %v want -120", got)
	}
}
