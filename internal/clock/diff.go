package clock

// Differential strobe vectors adapt the Singhal–Kshemkalyani vector-clock
// compression technique to the strobe protocol: instead of broadcasting
// the whole O(n) vector at every relevant event, a process sends only the
// components that changed since its *previous* broadcast. Receivers merge
// the sparse entries exactly as SVC2 merges full vectors.
//
// The technique is exact under reliable FIFO dissemination: every receiver
// has already merged the unchanged components from earlier strobes, so the
// merged knowledge after each strobe is identical to the full-vector
// protocol (verified by the equivalence tests and the A4 ablation). Under
// message loss a receiver can lag by the lost components until the next
// strobe that touches them; the clock stays monotonic either way — the
// same graceful degradation as full strobes, with less to lose per packet.

// SparseEntry is one changed component of a differential strobe.
type SparseEntry struct {
	Proc int
	Val  uint64
}

// SparseStamp is the payload of a differential strobe: the components
// that changed since the sender's last strobe.
type SparseStamp []SparseEntry

// WireBytes returns the on-air size: (proc id + value) per entry.
func (s SparseStamp) WireBytes() int { return len(s) * (2 + 8) }

// DiffStrobeVector is a strobe vector clock with differential broadcast.
type DiffStrobeVector struct {
	inner    *StrobeVector
	lastSent Vector
}

// NewDiffStrobeVector returns process me's differential strobe clock in an
// n-process system.
func NewDiffStrobeVector(me, n int) *DiffStrobeVector {
	return &DiffStrobeVector{
		inner:    NewStrobeVector(me, n),
		lastSent: NewVector(n),
	}
}

// Me returns the owning process index.
func (d *DiffStrobeVector) Me() int { return d.inner.Me() }

// Snapshot returns the full current vector (local state is always full;
// only the wire format is sparse).
func (d *DiffStrobeVector) Snapshot() Vector { return d.inner.Snapshot() }

// Strobe applies SVC1 and returns the sparse diff to broadcast: every
// component that changed since this process's previous broadcast (always
// at least the local component). The stamp is the only allocation: the
// inner clock is ticked in place (StrobeVector.Strobe would clone a
// snapshot just to diff against it) and the changed components are
// counted first so the stamp is made at its exact size — this sits in
// the E7/A4 per-event hot loop.
func (d *DiffStrobeVector) Strobe() SparseStamp {
	d.inner.v[d.inner.me]++ // SVC1, without Strobe()'s snapshot clone
	cur := d.inner.v
	changed := 0
	for i, v := range cur {
		if v != d.lastSent[i] {
			changed++
		}
	}
	out := make(SparseStamp, 0, changed) //lint:allow hotpath(the stamp escapes to the caller by contract; counting changed components first makes this the one exact-size allocation per strobe)
	for i, v := range cur {
		if v != d.lastSent[i] {
			out = append(out, SparseEntry{Proc: i, Val: v}) //lint:allow hotpath(capacity was preallocated to the exact changed count two lines up; this append never grows)
			d.lastSent[i] = v
		}
	}
	return out
}

// MergeSparse applies SVC2 to a differential strobe: componentwise max
// over the carried entries, no local tick. Out-of-range entries are
// ignored. It is the sparse counterpart of MergeFrom, shared by the
// differential clock and the checkers' per-sender reconstructions.
func (v Vector) MergeSparse(s SparseStamp) {
	for _, e := range s {
		if e.Proc >= 0 && e.Proc < len(v) && e.Val > v[e.Proc] {
			v[e.Proc] = e.Val
		}
	}
}

// OnStrobe applies SVC2 to a sparse stamp: componentwise max over the
// carried entries, no local tick.
func (d *DiffStrobeVector) OnStrobe(s SparseStamp) {
	d.inner.v.MergeSparse(s)
}

// OwnClock returns the local component without cloning the vector.
func (d *DiffStrobeVector) OwnClock() uint64 { return d.inner.v[d.inner.me] }

// StateBytes estimates the resident footprint of the clock state: the
// current vector plus the last-sent baseline, both dense.
func (d *DiffStrobeVector) StateBytes() int {
	return 16 + 8*(len(d.inner.v)+len(d.lastSent))
}
