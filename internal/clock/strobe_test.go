package clock

import (
	"testing"

	"pervasive/internal/stats"
)

func TestStrobeScalarRules(t *testing.T) {
	var s StrobeScalar
	if s.Read() != 0 {
		t.Fatal("fresh strobe scalar not 0")
	}
	if s.Strobe() != 1 { // SSC1
		t.Fatal("SSC1 tick failed")
	}
	s.OnStrobe(10) // SSC2: max, no tick
	if s.Read() != 10 {
		t.Fatalf("SSC2 got %d want 10", s.Read())
	}
	s.OnStrobe(4) // stale strobe ignored
	if s.Read() != 10 {
		t.Fatal("stale strobe regressed the clock")
	}
}

func TestStrobeReceiverDoesNotTick(t *testing.T) {
	// Difference 2 of §4.2.3: on receiving a strobe the receiver updates
	// but does not tick, unlike Lamport/vector receive.
	var s StrobeScalar
	s.OnStrobe(5)
	s.OnStrobe(5)
	if s.Read() != 5 {
		t.Fatalf("strobe receive ticked: %d", s.Read())
	}
	var l Lamport
	l.Receive(5)
	if l.Read() != 6 {
		t.Fatalf("lamport receive should tick: %d", l.Read())
	}
}

func TestStrobeVectorRules(t *testing.T) {
	s := NewStrobeVector(0, 3)
	v := s.Strobe() // SVC1
	if v.Compare(Vector{1, 0, 0}) != Same {
		t.Fatalf("SVC1 got %v", v)
	}
	s.OnStrobe(Vector{0, 4, 2}) // SVC2
	if s.Snapshot().Compare(Vector{1, 4, 2}) != Same {
		t.Fatalf("SVC2 got %v", s.Snapshot())
	}
	// No tick on receive: local component still 1.
	if s.Snapshot()[0] != 1 {
		t.Fatal("SVC2 ticked local component")
	}
	if s.Me() != 0 {
		t.Fatal("Me() wrong")
	}
}

func TestStrobeVectorMonotone(t *testing.T) {
	r := stats.NewRNG(5)
	s := NewStrobeVector(1, 4)
	prev := s.Snapshot()
	for i := 0; i < 500; i++ {
		if r.Bool(0.5) {
			s.Strobe()
		} else {
			in := NewVector(4)
			for j := range in {
				in[j] = uint64(r.Intn(50))
			}
			s.OnStrobe(in)
		}
		cur := s.Snapshot()
		if rel := prev.Compare(cur); rel != Before && rel != Same {
			t.Fatalf("strobe clock not monotone: %v then %v", prev, cur)
		}
		prev = cur
	}
}

func TestStrobeVectorLocalComponentDominance(t *testing.T) {
	// Invariant: process i's own component is the max over the system for
	// events it originated — its Strobe() output dominates any strobe it
	// has merged for component i.
	s := NewStrobeVector(2, 3)
	s.OnStrobe(Vector{7, 7, 7})
	v := s.Strobe()
	if v[2] != 8 {
		t.Fatalf("local component after merge+strobe = %d want 8", v[2])
	}
}

func TestStrobeScalarsSimulateTotalOrderAtDeltaZero(t *testing.T) {
	// §4.2.3 item 5: with Δ=0 and a strobe at each relevant event, scalar
	// strobes suffice — every pair of events at different processes is
	// ordered by (value, process) with no two relevant events sharing a
	// scalar value, because each strobe is seen by all before the next
	// event occurs.
	r := stats.NewRNG(9)
	const n = 5
	clocks := make([]*StrobeScalar, n)
	for i := range clocks {
		clocks[i] = &StrobeScalar{}
	}
	var values []uint64
	for step := 0; step < 200; step++ {
		p := r.Intn(n)
		v := clocks[p].Strobe()
		// Δ=0 synchronous broadcast: everyone merges instantly.
		for q := range clocks {
			if q != p {
				clocks[q].OnStrobe(v)
			}
		}
		values = append(values, v)
	}
	for i := 1; i < len(values); i++ {
		if values[i] != values[i-1]+1 {
			t.Fatalf("Δ=0 scalar strobes not a total order: %d then %d",
				values[i-1], values[i])
		}
	}
}

func TestNewStrobeVectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index did not panic")
		}
	}()
	NewStrobeVector(-1, 3)
}

func BenchmarkLamportTick(b *testing.B) {
	var l Lamport
	for i := 0; i < b.N; i++ {
		l.Tick()
	}
}

func BenchmarkVectorClockReceive(b *testing.B) {
	c := NewVectorClock(0, 32)
	in := NewVector(32)
	for i := range in {
		in[i] = uint64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Receive(in)
	}
}

func BenchmarkStrobeVectorMerge(b *testing.B) {
	s := NewStrobeVector(0, 32)
	in := NewVector(32)
	for i := range in {
		in[i] = uint64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.OnStrobe(in)
	}
}

func BenchmarkVectorCompare(b *testing.B) {
	v := NewVector(32)
	w := NewVector(32)
	for i := range v {
		v[i] = uint64(i)
		w[i] = uint64(32 - i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Compare(w)
	}
}
