package scenario

import (
	"fmt"
	"sort"

	"pervasive/internal/core"
	"pervasive/internal/obs"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
	"pervasive/internal/workload"
)

// SpecConfig wires a workload spec (see workload.ParseSpecFile) into a
// generic detection harness: one sensor per world object, every attribute
// the workload touches bound under its own name, and the spec's predicate
// checked Instantaneously. This is the scenario behind
// `pervasim -workload spec.txt` — generators compose in data, not code.
type SpecConfig struct {
	Spec *workload.Spec
	// Workload overrides the spec's generators (e.g. a replayed trace).
	Workload workload.Source
	Kind     core.ClockKind
	Delay    sim.DelayModel
	Epsilon  sim.Duration // PhysicalReport only
	Obs      *obs.Registry
	// FlightPerProc, when positive, attaches the causal flight recorder
	// (see HallConfig.FlightPerProc).
	FlightPerProc int
}

// SpecRun is a wired spec-driven scenario.
type SpecRun struct {
	Cfg     SpecConfig
	Harness *core.Harness
	// Objects[i] is the world object sensed by sensor i.
	Objects []int
	// Events is the materialized workload driving the run, available
	// before Run for trace encoding.
	Events []workload.Event
}

// NewSpecRun builds the harness the spec describes. The sensor fleet is
// sized by the spec's `objects` directive, the generators' reach, and the
// materialized events, whichever is largest; each sensor binds every
// attribute its object's events carry, so the spec's predicate can refer
// to them directly (e.g. `sum(x) - sum(y) > 10`).
func NewSpecRun(cfg SpecConfig) (*SpecRun, error) {
	sp := cfg.Spec
	if sp == nil {
		return nil, fmt.Errorf("spec scenario: nil spec")
	}
	if sp.Predicate == "" {
		return nil, fmt.Errorf("spec scenario: spec declares no predicate")
	}
	pred, err := predicate.Parse(sp.Predicate)
	if err != nil {
		return nil, fmt.Errorf("spec scenario: predicate: %w", err)
	}
	src := cfg.Workload
	if src == nil {
		if src, err = sp.Source(); err != nil {
			return nil, err
		}
	}
	evs := src.Events(sp.Horizon)

	n := sp.Objects
	if m := sp.MaxObject() + 1; m > n {
		n = m
	}
	attrs := make(map[int]map[string]bool)
	for _, ev := range evs {
		if ev.Obj < 0 {
			return nil, fmt.Errorf("spec scenario: workload touches negative object %d", ev.Obj)
		}
		if ev.Obj+1 > n {
			n = ev.Obj + 1
		}
		if attrs[ev.Obj] == nil {
			attrs[ev.Obj] = map[string]bool{}
		}
		attrs[ev.Obj][ev.Attr] = true
	}
	if n < 1 {
		n = 1
	}

	if cfg.Delay == nil {
		cfg.Delay = sim.NewDeltaBounded(100 * sim.Millisecond)
	}
	h := core.NewHarness(core.HarnessConfig{
		Seed: sp.Seed, N: n, Kind: cfg.Kind, Delay: cfg.Delay,
		Pred:     pred,
		Modality: predicate.Instantaneously,
		Epsilon:  cfg.Epsilon,
		Horizon:  sp.Horizon,
		Obs:      cfg.Obs,
		Flight:   flightFor(cfg.FlightPerProc, n),
	})
	run := &SpecRun{Cfg: cfg, Harness: h, Events: evs}
	for i := 0; i < n; i++ {
		obj := h.World.AddObject(fmt.Sprintf("obj-%d", i), nil)
		run.Objects = append(run.Objects, obj)
		names := make([]string, 0, len(attrs[i]))
		for a := range attrs[i] {
			names = append(names, a)
		}
		sort.Strings(names) // deterministic binding order
		for _, a := range names {
			h.Bind(i, obj, a, a)
		}
	}
	workload.Install(h.Eng, h.World, evs)
	return run, nil
}

// Run executes the scenario.
func (s *SpecRun) Run() core.Results { return s.Harness.Run() }
