package scenario

import (
	"fmt"

	"pervasive/internal/core"
	"pervasive/internal/obs"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
	"pervasive/internal/world"
)

// OfficeConfig parameterizes the smart-office scenario of Sections 3.1 and
// 3.3: each room has a temperature sensor and a motion detector; the rule
// "person in room ∧ temp > 30 °C" is detected — under Definitely for the
// conjunctive contextual rule of Huang et al. [17], or Instantaneously for
// the thermostat-reset rule — and detection actuates the thermostat.
type OfficeConfig struct {
	Seed  uint64
	Rooms int
	// Modality: Definitely (default) or Possibly for the conjunctive
	// checker; Instantaneously for the strobe checker.
	Modality predicate.Modality
	Delay    sim.DelayModel
	Horizon  sim.Time
	// TempThreshold is the rule's trigger temperature (default 30).
	TempThreshold float64
	// Actuate resets every room's thermostat to 28 °C on detection,
	// closing the sense→detect→actuate loop.
	Actuate bool
	// MeanOccupied/MeanEmpty shape the motion toggler; MeanTempStep the
	// temperature walk.
	MeanOccupied sim.Duration
	MeanEmpty    sim.Duration
	MeanTempStep sim.Duration
	// Obs, if non-nil, receives runtime metrics (see core.HarnessConfig).
	Obs *obs.Registry
	// FlightPerProc, when positive, attaches a causal flight recorder
	// keeping the last FlightPerProc events per process (sensors plus
	// checker); trigger-scoped dumps land in Harness.Dumps.
	FlightPerProc int
}

func (c *OfficeConfig) fill() {
	if c.Rooms <= 0 {
		c.Rooms = 1
	}
	if c.Delay == nil {
		c.Delay = sim.NewDeltaBounded(50 * sim.Millisecond)
	}
	if c.Horizon <= 0 {
		c.Horizon = 2 * sim.Minute
	}
	if c.TempThreshold == 0 {
		c.TempThreshold = 30
	}
	if c.MeanOccupied <= 0 {
		c.MeanOccupied = 8 * sim.Second
	}
	if c.MeanEmpty <= 0 {
		c.MeanEmpty = 4 * sim.Second
	}
	if c.MeanTempStep <= 0 {
		c.MeanTempStep = 500 * sim.Millisecond
	}
}

// Office is a wired smart-office scenario. Each room contributes two
// sensor processes: 2i (motion) and 2i+1 (temperature).
type Office struct {
	Cfg     OfficeConfig
	Harness *core.Harness
	Rooms   []int // world objects
	// Actuations counts thermostat resets performed.
	Actuations int
}

// NewOffice wires the scenario.
func NewOffice(cfg OfficeConfig) *Office {
	cfg.fill()
	n := 2 * cfg.Rooms
	// Global rule: every room satisfies (motion ∧ hot) — for one room this
	// is the paper's χ; for several it is the conjunction over rooms.
	var pred predicate.Cond
	for i := 0; i < cfg.Rooms; i++ {
		room := predicate.MustParse(fmt.Sprintf(
			"motion@%d == 1 && temp@%d > %g", 2*i, 2*i+1, cfg.TempThreshold))
		if pred == nil {
			pred = room
		} else {
			pred = predicate.And{L: pred, R: room}
		}
	}

	hcfg := core.HarnessConfig{
		Seed: cfg.Seed, N: n, Kind: core.VectorStrobe, Delay: cfg.Delay,
		Pred: pred, Modality: cfg.Modality, Horizon: cfg.Horizon, Obs: cfg.Obs, Flight: flightFor(cfg.FlightPerProc, n),
	}
	if cfg.Modality == predicate.Possibly || cfg.Modality == predicate.Definitely {
		// Local conjunct template: motion sensors report motion==1
		// intervals; temperature sensors report temp>threshold intervals.
		// A single template covering both: since each sensor has exactly
		// one variable, use "its value satisfies its role" via FuncCond.
		thr := cfg.TempThreshold
		hcfg.LocalConj = predicate.FuncCond{
			F: func(s predicate.State) bool {
				if m := s.Get(0, "motion"); m == 1 {
					return true
				}
				return s.Get(0, "temp") > thr
			},
			Keys: []predicate.Key{{Proc: 0, Name: "motion"}, {Proc: 0, Name: "temp"}},
			Desc: "local-motion-or-hot",
		}
	}
	h := core.NewHarness(hcfg)
	of := &Office{Cfg: cfg, Harness: h}

	for i := 0; i < cfg.Rooms; i++ {
		room := h.World.AddObject(fmt.Sprintf("room-%d", i), map[string]float64{"temp": 26})
		of.Rooms = append(of.Rooms, room)
		h.Bind(2*i, room, "motion", "motion")
		h.Bind(2*i+1, room, "temp", "temp")
		world.Toggler{Obj: room, Attr: "motion",
			MeanHigh: cfg.MeanOccupied, MeanLow: cfg.MeanEmpty}.Install(h.World, cfg.Horizon)
		world.RandomWalk{Obj: room, Attr: "temp", Step: 1, Min: 20, Max: 36,
			MeanGap: cfg.MeanTempStep}.Install(h.World, cfg.Horizon)
	}

	if cfg.Actuate {
		reset := func(core.Occurrence) {
			of.Actuations++
			for _, room := range of.Rooms {
				if h.World.Get(room, "temp") > 28 {
					h.World.Set(room, "temp", 28)
				}
			}
		}
		if h.StrobeCk != nil {
			h.StrobeCk.Notify = reset
		}
		if h.ConjCk != nil {
			h.ConjCk.Notify = reset
		}
	}
	return of
}

// Run executes the scenario.
func (of *Office) Run() core.Results { return of.Harness.Run() }
