// Package scenario builds the paper's application scenarios (Section 5)
// on top of the detection harness: the convention-center exhibition hall,
// the hospital ward, the smart office of Sections 3.1/3.3, and an
// in-the-wild habitat-monitoring deployment. Each builder returns a wired
// core.Harness ready to Run, so examples, the CLI, and the experiment
// suite share one implementation.
//
// Scenario activity comes from internal/workload Sources: builders
// materialize the workload up front and pump it through the engine, so
// any scenario run can be recorded to a trace and replayed byte-
// identically (pass a decoded trace as the config's Workload).
package scenario

import (
	"fmt"

	"pervasive/internal/core"
	"pervasive/internal/obs"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
	"pervasive/internal/trace"
	"pervasive/internal/workload"
)

// HallConfig parameterizes the exhibition-hall occupancy monitor: d doors,
// each with an RFID sensor tracking xᵢ (people entered through door i) and
// yᵢ (people left through it); the predicate is Σ(xᵢ−yᵢ) > Capacity,
// detected under Instantaneously to prevent overcrowding.
type HallConfig struct {
	Seed     uint64
	Doors    int
	Capacity int
	// MeanArrival is the mean gap between visitor arrivals; MeanStay is a
	// visitor's mean dwell time inside the hall.
	MeanArrival sim.Duration
	MeanStay    sim.Duration
	Kind        core.ClockKind
	Delay       sim.DelayModel
	Epsilon     sim.Duration // PhysicalReport only
	Horizon     sim.Time
	// InitialOccupancy seeds the hall with visitors already inside
	// (spread across doors' entry counters) so runs start near capacity.
	InitialOccupancy int
	// Workload overrides the visitor flow (e.g. a replayed trace); nil
	// uses the default workload.HallTraffic generator derived from Seed,
	// MeanArrival, MeanStay and InitialOccupancy.
	Workload workload.Source
	// Trace, if non-nil, records every sensor event (for cmd/tracedump).
	Trace *trace.Trace
	// Obs, if non-nil, receives runtime metrics (see core.HarnessConfig).
	Obs *obs.Registry
	// FlightPerProc, when positive, attaches a causal flight recorder
	// keeping the last FlightPerProc events per process (sensors plus
	// checker); trigger-scoped dumps land in Harness.Dumps.
	FlightPerProc int
}

func (c *HallConfig) fill() {
	if c.Doors <= 0 {
		c.Doors = 4
	}
	if c.Capacity <= 0 {
		c.Capacity = 200
	}
	if c.MeanArrival <= 0 {
		c.MeanArrival = 500 * sim.Millisecond
	}
	if c.MeanStay <= 0 {
		c.MeanStay = 100 * sim.Second
	}
	if c.Delay == nil {
		c.Delay = sim.NewDeltaBounded(100 * sim.Millisecond)
	}
	if c.Horizon <= 0 {
		c.Horizon = 5 * sim.Minute
	}
}

// Hall is a wired exhibition-hall scenario.
type Hall struct {
	Cfg     HallConfig
	Harness *core.Harness
	// Doors[i] is the world object of door i (attributes "x" and "y").
	Doors []int
	// Events is the materialized visitor flow driving the run — the
	// stream a recorder would capture, available before Run for encoding.
	Events []workload.Event
}

// OccupancyPredicate returns Σx − Σy > capacity.
func OccupancyPredicate(capacity int) predicate.Cond {
	return predicate.MustParse(fmt.Sprintf("sum(x) - sum(y) > %d", capacity))
}

// NewHall wires the scenario: one sensor per door, Poisson visitor flow
// with occupancy-dependent departures (every exit consumes one prior
// entry, so Σx − Σy ≥ 0 at every instant, and stays that would cross the
// horizon depart at the horizon instead of vanishing — see
// workload.HallTraffic).
func NewHall(cfg HallConfig) *Hall {
	cfg.fill()
	h := core.NewHarness(core.HarnessConfig{
		Seed: cfg.Seed, N: cfg.Doors, Kind: cfg.Kind, Delay: cfg.Delay,
		Pred:     OccupancyPredicate(cfg.Capacity),
		Modality: predicate.Instantaneously,
		Epsilon:  cfg.Epsilon,
		Horizon:  cfg.Horizon,
		Trace:    cfg.Trace,
		Obs:      cfg.Obs,
		Flight:   flightFor(cfg.FlightPerProc, cfg.Doors),
	})
	hall := &Hall{Cfg: cfg, Harness: h}
	for i := 0; i < cfg.Doors; i++ {
		door := h.World.AddObject(fmt.Sprintf("door-%d", i), nil)
		hall.Doors = append(hall.Doors, door)
		h.Bind(i, door, "x", "x")
		h.Bind(i, door, "y", "y")
	}
	src := cfg.Workload
	if src == nil {
		src = workload.HallTraffic{
			Seed:             workload.DeriveSeed(cfg.Seed, 0x2),
			Doors:            cfg.Doors,
			MeanArrival:      cfg.MeanArrival,
			MeanStay:         cfg.MeanStay,
			InitialOccupancy: cfg.InitialOccupancy,
		}
	}
	hall.Events = src.Events(cfg.Horizon)
	workload.Install(h.Eng, h.World, hall.Events)
	return hall
}

// Run executes the scenario.
func (hl *Hall) Run() core.Results { return hl.Harness.Run() }
