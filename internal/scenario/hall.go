// Package scenario builds the paper's application scenarios (Section 5)
// on top of the detection harness: the convention-center exhibition hall,
// the hospital ward, the smart office of Sections 3.1/3.3, and an
// in-the-wild habitat-monitoring deployment. Each builder returns a wired
// core.Harness ready to Run, so examples, the CLI, and the experiment
// suite share one implementation.
package scenario

import (
	"fmt"

	"pervasive/internal/core"
	"pervasive/internal/obs"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
	"pervasive/internal/trace"
	"pervasive/internal/world"
)

// HallConfig parameterizes the exhibition-hall occupancy monitor: d doors,
// each with an RFID sensor tracking xᵢ (people entered through door i) and
// yᵢ (people left through it); the predicate is Σ(xᵢ−yᵢ) > Capacity,
// detected under Instantaneously to prevent overcrowding.
type HallConfig struct {
	Seed     uint64
	Doors    int
	Capacity int
	// MeanArrival is the mean gap between visitor arrivals; MeanStay is a
	// visitor's mean dwell time inside the hall.
	MeanArrival sim.Duration
	MeanStay    sim.Duration
	Kind        core.ClockKind
	Delay       sim.DelayModel
	Epsilon     sim.Duration // PhysicalReport only
	Horizon     sim.Time
	// InitialOccupancy seeds the hall with visitors already inside
	// (spread across doors' entry counters) so runs start near capacity.
	InitialOccupancy int
	// Trace, if non-nil, records every sensor event (for cmd/tracedump).
	Trace *trace.Trace
	// Obs, if non-nil, receives runtime metrics (see core.HarnessConfig).
	Obs *obs.Registry
	// FlightPerProc, when positive, attaches a causal flight recorder
	// keeping the last FlightPerProc events per process (sensors plus
	// checker); trigger-scoped dumps land in Harness.Dumps.
	FlightPerProc int
}

func (c *HallConfig) fill() {
	if c.Doors <= 0 {
		c.Doors = 4
	}
	if c.Capacity <= 0 {
		c.Capacity = 200
	}
	if c.MeanArrival <= 0 {
		c.MeanArrival = 500 * sim.Millisecond
	}
	if c.MeanStay <= 0 {
		c.MeanStay = 100 * sim.Second
	}
	if c.Delay == nil {
		c.Delay = sim.NewDeltaBounded(100 * sim.Millisecond)
	}
	if c.Horizon <= 0 {
		c.Horizon = 5 * sim.Minute
	}
}

// Hall is a wired exhibition-hall scenario.
type Hall struct {
	Cfg     HallConfig
	Harness *core.Harness
	// Doors[i] is the world object of door i (attributes "x" and "y").
	Doors []int
}

// OccupancyPredicate returns Σx − Σy > capacity.
func OccupancyPredicate(capacity int) predicate.Cond {
	return predicate.MustParse(fmt.Sprintf("sum(x) - sum(y) > %d", capacity))
}

// NewHall wires the scenario: one sensor per door, Poisson visitor flow
// with occupancy-dependent departures.
func NewHall(cfg HallConfig) *Hall {
	cfg.fill()
	h := core.NewHarness(core.HarnessConfig{
		Seed: cfg.Seed, N: cfg.Doors, Kind: cfg.Kind, Delay: cfg.Delay,
		Pred:     OccupancyPredicate(cfg.Capacity),
		Modality: predicate.Instantaneously,
		Epsilon:  cfg.Epsilon,
		Horizon:  cfg.Horizon,
		Trace:    cfg.Trace,
		Obs:      cfg.Obs,
		Flight:   flightFor(cfg.FlightPerProc, cfg.Doors),
	})
	hall := &Hall{Cfg: cfg, Harness: h}
	for i := 0; i < cfg.Doors; i++ {
		door := h.World.AddObject(fmt.Sprintf("door-%d", i), nil)
		hall.Doors = append(hall.Doors, door)
		h.Bind(i, door, "x", "x")
		h.Bind(i, door, "y", "y")
	}
	hall.installTraffic()
	return hall
}

// installTraffic drives the visitor flow. Occupancy state lives in the
// closure; every entry/exit picks a door uniformly at random, so
// concurrent traffic through different doors creates exactly the race the
// paper describes.
func (hl *Hall) installTraffic() {
	h := hl.Harness
	r := h.Eng.RNG().Fork()
	occupancy := 0

	enter := func(now sim.Time) {
		door := hl.Doors[r.Intn(len(hl.Doors))]
		occupancy++
		h.World.Add(door, "x", 1)
		// Schedule this visitor's departure.
		stay := sim.Duration(stats.Exponential{MeanV: float64(hl.Cfg.MeanStay)}.Sample(r))
		if stay < 1 {
			stay = 1
		}
		if now+stay <= hl.Cfg.Horizon {
			h.Eng.At(now+stay, func(sim.Time) {
				occupancy--
				out := hl.Doors[r.Intn(len(hl.Doors))]
				h.World.Add(out, "y", 1)
			})
		}
	}

	// Seed initial occupancy during a one-second ramp-up so the seeding
	// events are ordinary (non-simultaneous) entries.
	for k := 0; k < hl.Cfg.InitialOccupancy; k++ {
		at := 1 + sim.Time(k)*sim.Second/sim.Time(hl.Cfg.InitialOccupancy)
		h.Eng.At(at, enter)
	}
	world.Repeat(h.Eng, r, stats.Exponential{MeanV: float64(hl.Cfg.MeanArrival)},
		1, hl.Cfg.Horizon, enter)
}

// Run executes the scenario.
func (hl *Hall) Run() core.Results { return hl.Harness.Run() }
