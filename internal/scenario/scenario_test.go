package scenario

import (
	"testing"

	"pervasive/internal/core"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
	"pervasive/internal/world"
)

func worldKey(obj int, attr string) world.AttrKey {
	return world.AttrKey{Object: obj, Attr: attr}
}

func TestHallOccupancyConservation(t *testing.T) {
	hl := NewHall(HallConfig{
		Seed: 1, Doors: 3, Capacity: 30,
		MeanArrival: 200 * sim.Millisecond, MeanStay: 10 * sim.Second,
		Horizon: 2 * sim.Minute,
	})
	hl.Run()
	// Ground truth sanity: Σx − Σy is the number of visitors inside; it
	// must never go negative.
	var x, y float64
	state := hl.Harness.World.StateAt(hl.Cfg.Horizon)
	for _, d := range hl.Doors {
		for k, v := range state {
			if k.Object == d && k.Attr == "x" {
				x += v
			}
			if k.Object == d && k.Attr == "y" {
				y += v
			}
		}
	}
	if x < y {
		t.Fatalf("more exits (%v) than entries (%v)", y, x)
	}
	if x == 0 {
		t.Fatal("no visitors arrived")
	}
}

func TestHallDetectsOvercrowding(t *testing.T) {
	// Start near capacity so crossings happen; fast arrivals.
	hl := NewHall(HallConfig{
		Seed: 2, Doors: 4, Capacity: 50, InitialOccupancy: 48,
		MeanArrival: 300 * sim.Millisecond, MeanStay: 20 * sim.Second,
		Delay:   sim.NewDeltaBounded(50 * sim.Millisecond),
		Horizon: 3 * sim.Minute,
	})
	res := hl.Run()
	if len(res.Truth) == 0 {
		t.Fatal("occupancy never crossed capacity — workload broken")
	}
	if r := res.Confusion.Recall(); r < 0.6 {
		t.Fatalf("recall %.2f: %+v", r, res.Confusion)
	}
}

func TestHallBorderlineCoversVectorErrors(t *testing.T) {
	// §5's claim: vector-strobe consensus places FPs and most FNs in the
	// borderline bin. Aggregate across seeds.
	var total, covered int64
	for seed := uint64(0); seed < 6; seed++ {
		hl := NewHall(HallConfig{
			Seed: seed, Doors: 4, Capacity: 40, InitialOccupancy: 38,
			MeanArrival: 150 * sim.Millisecond, MeanStay: 8 * sim.Second,
			Delay:   sim.NewDeltaBounded(200 * sim.Millisecond),
			Horizon: 2 * sim.Minute,
		})
		res := hl.Run()
		total += res.Confusion.FP + res.Confusion.FN
		covered += res.Confusion.BorderlineFP + res.Confusion.BorderlineFN
	}
	if total == 0 {
		t.Skip("no detection errors at this load; nothing to bin")
	}
	if float64(covered)/float64(total) < 0.5 {
		t.Fatalf("borderline bin covered only %d/%d errors", covered, total)
	}
}

func TestOfficeInstantaneousWithActuation(t *testing.T) {
	of := NewOffice(OfficeConfig{
		Seed: 3, Rooms: 1, Modality: predicate.Instantaneously,
		Actuate: true, Horizon: 4 * sim.Minute,
	})
	res := of.Run()
	if len(res.Truth) == 0 {
		t.Skip("rule never true under this seed")
	}
	if of.Actuations == 0 {
		t.Fatal("detections did not actuate the thermostat")
	}
	// Actuation drives temp back to 28: the world log must contain
	// actuator-induced temperature drops.
	drops := 0
	for _, ev := range of.Harness.World.Log() {
		if ev.Attr == "temp" && ev.New == 28 && ev.Old > 28 {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("no thermostat resets in world log")
	}
}

func TestOfficeDefinitely(t *testing.T) {
	of := NewOffice(OfficeConfig{
		Seed: 4, Rooms: 1, Modality: predicate.Definitely,
		Horizon: 4 * sim.Minute,
	})
	res := of.Run()
	if len(res.Truth) > 2 && res.Confusion.Recall() < 0.5 {
		t.Fatalf("Definitely recall %.2f with %d truths", res.Confusion.Recall(), len(res.Truth))
	}
}

func TestHospitalWardAlarm(t *testing.T) {
	hp := NewHospital(HospitalConfig{
		Seed: 5, Alarm: "ward", WardMeanVisit: 20 * sim.Second,
		Horizon: 5 * sim.Minute,
	})
	res := hp.Run()
	if len(res.Truth) == 0 {
		t.Fatal("no ward intrusions generated")
	}
	if hp.Alarms == 0 {
		t.Fatal("no alarms raised")
	}
	if r := res.Confusion.Recall(); r < 0.8 {
		t.Fatalf("ward alarm recall %.2f", r)
	}
}

func TestHospitalCrowding(t *testing.T) {
	hp := NewHospital(HospitalConfig{
		Seed: 6, Alarm: "crowding", WaitingCapacity: 10,
		MeanArrival: 500 * sim.Millisecond, MeanStay: 15 * sim.Second,
		Horizon: 4 * sim.Minute,
	})
	res := hp.Run()
	if len(res.Truth) == 0 {
		t.Skip("waiting room never overcrowded under this seed")
	}
	if res.Confusion.Recall() < 0.5 {
		t.Fatalf("crowding recall %.2f", res.Confusion.Recall())
	}
}

func TestHabitatHighAccuracyInFavourableRegime(t *testing.T) {
	// Event dwell times (minutes) ≫ Δ (2s): the strobe clock's favourable
	// regime; detection should be near-perfect even with big delays.
	hb := NewHabitat(HabitatConfig{Seed: 7, Horizon: 2 * sim.Hour})
	res := hb.Run()
	if len(res.Truth) < 3 {
		t.Fatalf("thin workload: %d congregations", len(res.Truth))
	}
	if r := res.Confusion.Recall(); r < 0.9 {
		t.Fatalf("recall %.2f in the favourable regime: %+v", r, res.Confusion)
	}
	unflaggedFP := res.Confusion.FP - res.Confusion.BorderlineFP
	if unflaggedFP > 0 {
		t.Fatalf("vector detector produced %d unflagged FPs", unflaggedFP)
	}
}

func TestScenarioDefaultsFill(t *testing.T) {
	// All builders must work with zero configs.
	NewHall(HallConfig{Horizon: sim.Second}).Run()
	NewOffice(OfficeConfig{Horizon: sim.Second}).Run()
	NewHospital(HospitalConfig{Horizon: sim.Second}).Run()
	NewHabitat(HabitatConfig{Horizon: sim.Second}).Run()
}

func TestHospitalUnknownAlarmPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHospital(HospitalConfig{Alarm: "bogus"})
}

func TestHallScalarVsVectorSameWorkload(t *testing.T) {
	// The workload (world plane) must be identical across clock kinds for
	// a given seed — different detector, same truth.
	a := NewHall(HallConfig{Seed: 9, Doors: 3, Capacity: 20, InitialOccupancy: 18,
		Horizon: sim.Minute, Kind: core.VectorStrobe}).Run()
	b := NewHall(HallConfig{Seed: 9, Doors: 3, Capacity: 20, InitialOccupancy: 18,
		Horizon: sim.Minute, Kind: core.ScalarStrobe}).Run()
	if len(a.Truth) != len(b.Truth) {
		t.Fatalf("truth differs across kinds: %d vs %d", len(a.Truth), len(b.Truth))
	}
}

func TestProximityAlarm(t *testing.T) {
	p := NewProximity(ProximityConfig{Seed: 12, Horizon: 20 * sim.Minute})
	res := p.Run()
	if len(res.Truth) == 0 {
		t.Fatal("visitor never approached the patient in 20 minutes of wandering")
	}
	if p.Alarms == 0 {
		t.Fatal("no proximity alarms raised")
	}
	if r := res.Confusion.Recall(); r < 0.7 {
		t.Fatalf("proximity recall %.2f: %+v", r, res.Confusion)
	}
}

func TestProximityGroundTruthMatchesGeometry(t *testing.T) {
	// The oracle's truth intervals must agree with direct geometric
	// distance checks at sampled instants.
	p := NewProximity(ProximityConfig{Seed: 13, Horizon: 5 * sim.Minute})
	res := p.Run()
	w := p.Harness.World
	for _, iv := range res.Truth {
		mid := iv.Start + (iv.End-iv.Start)/2
		st := w.StateAt(mid)
		dx := st[worldKey(p.Visitor, "x")] - st[worldKey(p.Patient, "x")]
		dy := st[worldKey(p.Visitor, "y")] - st[worldKey(p.Patient, "y")]
		if dx*dx+dy*dy >= p.Cfg.Radius*p.Cfg.Radius {
			t.Fatalf("truth interval midpoint %v outside radius: d²=%.2f", mid, dx*dx+dy*dy)
		}
	}
}
