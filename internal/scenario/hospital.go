package scenario

import (
	"fmt"

	"pervasive/internal/core"
	"pervasive/internal/obs"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
	"pervasive/internal/workload"
)

// HospitalConfig parameterizes the hospital scenario of Section 5: RFID
// badges on visitors and patients; sensors monitor the waiting room's
// doors and the infectious-diseases ward's entrance. Two alarms are
// supported:
//
//   - Overcrowding: waiting-room occupancy above WaitingCapacity
//     (Σ(xᵢ−yᵢ) > cap over the waiting-room door sensors);
//   - Restricted entry: any visitor inside the infectious ward
//     (ward occupancy > 0).
type HospitalConfig struct {
	Seed            uint64
	WaitingDoors    int
	WaitingCapacity int
	// Alarm selects which predicate to detect: "crowding" (default) or
	// "ward".
	Alarm       string
	MeanArrival sim.Duration
	MeanStay    sim.Duration
	// WardMeanVisit is the mean gap between (disallowed) ward entries.
	WardMeanVisit sim.Duration
	Kind          core.ClockKind
	Delay         sim.DelayModel
	Horizon       sim.Time
	// Workload overrides the admission flow (e.g. a replayed trace); nil
	// uses the default workload.Admissions generator.
	Workload workload.Source
	// Obs, if non-nil, receives runtime metrics (see core.HarnessConfig).
	Obs *obs.Registry
	// FlightPerProc, when positive, attaches a causal flight recorder
	// keeping the last FlightPerProc events per process (sensors plus
	// checker); trigger-scoped dumps land in Harness.Dumps.
	FlightPerProc int
}

func (c *HospitalConfig) fill() {
	if c.WaitingDoors <= 0 {
		c.WaitingDoors = 2
	}
	if c.WaitingCapacity <= 0 {
		c.WaitingCapacity = 20
	}
	if c.Alarm == "" {
		c.Alarm = "crowding"
	}
	if c.MeanArrival <= 0 {
		c.MeanArrival = 2 * sim.Second
	}
	if c.MeanStay <= 0 {
		c.MeanStay = 40 * sim.Second
	}
	if c.WardMeanVisit <= 0 {
		c.WardMeanVisit = 30 * sim.Second
	}
	if c.Delay == nil {
		c.Delay = sim.NewDeltaBounded(100 * sim.Millisecond)
	}
	if c.Horizon <= 0 {
		c.Horizon = 5 * sim.Minute
	}
}

// Hospital is a wired hospital scenario. Sensor processes: one per
// waiting-room door, plus the last one at the ward entrance.
type Hospital struct {
	Cfg     HospitalConfig
	Harness *core.Harness
	// Events is the materialized admission flow driving the run.
	Events []workload.Event
	// Alarms counts raised alarms (actuation hook).
	Alarms int
}

// NewHospital wires the scenario.
func NewHospital(cfg HospitalConfig) *Hospital {
	cfg.fill()
	n := cfg.WaitingDoors + 1 // + ward sensor
	wardProc := cfg.WaitingDoors

	var pred predicate.Cond
	switch cfg.Alarm {
	case "crowding":
		pred = OccupancyPredicate(cfg.WaitingCapacity)
	case "ward":
		pred = predicate.MustParse(fmt.Sprintf("ward@%d > 0", wardProc))
	default:
		panic("scenario: unknown hospital alarm " + cfg.Alarm)
	}

	h := core.NewHarness(core.HarnessConfig{
		Seed: cfg.Seed, N: n, Kind: cfg.Kind, Delay: cfg.Delay,
		Pred: pred, Modality: predicate.Instantaneously, Horizon: cfg.Horizon,
		Obs: cfg.Obs, Flight: flightFor(cfg.FlightPerProc, n),
	})
	hp := &Hospital{Cfg: cfg, Harness: h}
	if h.StrobeCk != nil {
		h.StrobeCk.Notify = func(core.Occurrence) { hp.Alarms++ }
	}

	// Waiting-room doors are objects 0 … WaitingDoors-1, the ward is the
	// next object — matching workload.Admissions's numbering.
	for i := 0; i < cfg.WaitingDoors; i++ {
		door := h.World.AddObject(fmt.Sprintf("waiting-door-%d", i), nil)
		h.Bind(i, door, "x", "x")
		h.Bind(i, door, "y", "y")
	}
	ward := h.World.AddObject("infectious-ward", nil)
	h.Bind(wardProc, ward, "occupancy", "ward")

	src := cfg.Workload
	if src == nil {
		src = workload.Admissions{
			Seed:          workload.DeriveSeed(cfg.Seed, 0x2),
			Doors:         cfg.WaitingDoors,
			MeanArrival:   cfg.MeanArrival,
			MeanStay:      cfg.MeanStay,
			WardMeanVisit: cfg.WardMeanVisit,
		}
	}
	hp.Events = src.Events(cfg.Horizon)
	workload.Install(h.Eng, h.World, hp.Events)
	return hp
}

// Run executes the scenario.
func (hp *Hospital) Run() core.Results { return hp.Harness.Run() }
