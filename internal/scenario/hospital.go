package scenario

import (
	"fmt"

	"pervasive/internal/core"
	"pervasive/internal/obs"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
	"pervasive/internal/world"
)

// HospitalConfig parameterizes the hospital scenario of Section 5: RFID
// badges on visitors and patients; sensors monitor the waiting room's
// doors and the infectious-diseases ward's entrance. Two alarms are
// supported:
//
//   - Overcrowding: waiting-room occupancy above WaitingCapacity
//     (Σ(xᵢ−yᵢ) > cap over the waiting-room door sensors);
//   - Restricted entry: any visitor inside the infectious ward
//     (ward occupancy > 0).
type HospitalConfig struct {
	Seed            uint64
	WaitingDoors    int
	WaitingCapacity int
	// Alarm selects which predicate to detect: "crowding" (default) or
	// "ward".
	Alarm       string
	MeanArrival sim.Duration
	MeanStay    sim.Duration
	// WardMeanVisit is the mean gap between (disallowed) ward entries.
	WardMeanVisit sim.Duration
	Kind          core.ClockKind
	Delay         sim.DelayModel
	Horizon       sim.Time
	// Obs, if non-nil, receives runtime metrics (see core.HarnessConfig).
	Obs *obs.Registry
	// FlightPerProc, when positive, attaches a causal flight recorder
	// keeping the last FlightPerProc events per process (sensors plus
	// checker); trigger-scoped dumps land in Harness.Dumps.
	FlightPerProc int
}

func (c *HospitalConfig) fill() {
	if c.WaitingDoors <= 0 {
		c.WaitingDoors = 2
	}
	if c.WaitingCapacity <= 0 {
		c.WaitingCapacity = 20
	}
	if c.Alarm == "" {
		c.Alarm = "crowding"
	}
	if c.MeanArrival <= 0 {
		c.MeanArrival = 2 * sim.Second
	}
	if c.MeanStay <= 0 {
		c.MeanStay = 40 * sim.Second
	}
	if c.WardMeanVisit <= 0 {
		c.WardMeanVisit = 30 * sim.Second
	}
	if c.Delay == nil {
		c.Delay = sim.NewDeltaBounded(100 * sim.Millisecond)
	}
	if c.Horizon <= 0 {
		c.Horizon = 5 * sim.Minute
	}
}

// Hospital is a wired hospital scenario. Sensor processes: one per
// waiting-room door, plus the last one at the ward entrance.
type Hospital struct {
	Cfg     HospitalConfig
	Harness *core.Harness
	// Alarms counts raised alarms (actuation hook).
	Alarms int
}

// NewHospital wires the scenario.
func NewHospital(cfg HospitalConfig) *Hospital {
	cfg.fill()
	n := cfg.WaitingDoors + 1 // + ward sensor
	wardProc := cfg.WaitingDoors

	var pred predicate.Cond
	switch cfg.Alarm {
	case "crowding":
		pred = OccupancyPredicate(cfg.WaitingCapacity)
	case "ward":
		pred = predicate.MustParse(fmt.Sprintf("ward@%d > 0", wardProc))
	default:
		panic("scenario: unknown hospital alarm " + cfg.Alarm)
	}

	h := core.NewHarness(core.HarnessConfig{
		Seed: cfg.Seed, N: n, Kind: cfg.Kind, Delay: cfg.Delay,
		Pred: pred, Modality: predicate.Instantaneously, Horizon: cfg.Horizon,
		Obs: cfg.Obs, Flight: flightFor(cfg.FlightPerProc, n),
	})
	hp := &Hospital{Cfg: cfg, Harness: h}
	if h.StrobeCk != nil {
		h.StrobeCk.Notify = func(core.Occurrence) { hp.Alarms++ }
	}

	r := h.Eng.RNG().Fork()

	// Waiting-room doors.
	doors := make([]int, cfg.WaitingDoors)
	for i := range doors {
		doors[i] = h.World.AddObject(fmt.Sprintf("waiting-door-%d", i), nil)
		h.Bind(i, doors[i], "x", "x")
		h.Bind(i, doors[i], "y", "y")
	}
	world.Repeat(h.Eng, r, stats.Exponential{MeanV: float64(cfg.MeanArrival)},
		1, cfg.Horizon, func(now sim.Time) {
			in := doors[r.Intn(len(doors))]
			h.World.Add(in, "x", 1)
			stay := sim.Duration(stats.Exponential{MeanV: float64(cfg.MeanStay)}.Sample(r))
			if stay < 1 {
				stay = 1
			}
			if now+stay <= cfg.Horizon {
				h.Eng.At(now+stay, func(sim.Time) {
					out := doors[r.Intn(len(doors))]
					h.World.Add(out, "y", 1)
				})
			}
		})

	// Infectious ward: occasional visitors who should not be there.
	ward := h.World.AddObject("infectious-ward", nil)
	h.Bind(wardProc, ward, "occupancy", "ward")
	world.Repeat(h.Eng, r, stats.Exponential{MeanV: float64(cfg.WardMeanVisit)},
		1, cfg.Horizon, func(now sim.Time) {
			h.World.Add(ward, "occupancy", 1)
			visit := sim.Duration(stats.Exponential{MeanV: float64(cfg.MeanStay / 4)}.Sample(r))
			if visit < 1 {
				visit = 1
			}
			if now+visit <= cfg.Horizon {
				h.Eng.At(now+visit, func(sim.Time) {
					h.World.Add(ward, "occupancy", -1)
				})
			}
		})
	return hp
}

// Run executes the scenario.
func (hp *Hospital) Run() core.Results { return hp.Harness.Run() }
