package scenario

import (
	"pervasive/internal/core"
	"pervasive/internal/faults"
	"pervasive/internal/obs"
	"pervasive/internal/sim"
	"pervasive/internal/workload"
)

// ScaleConfig parameterizes the large-deployment scenario: a fleet of N
// motion sensors on a grid, partitioned over Shards lockstep engines
// (§2.2's "very large number of sensors" regime). The scored predicate is
// a pilot neighborhood — at least PilotK of the Pilot leading sensors
// active — so the detection problem stays local while the whole fleet
// carries strobe and clock traffic. This is the only scenario that runs
// on the sharded kernel; the classic scenarios stay on the single-heap
// harness.
type ScaleConfig struct {
	Seed   uint64
	N      int // fleet size (default 1024)
	Shards int
	// Workers bounds intra-epoch concurrency (results identical at any
	// setting; 0/1 run shards sequentially).
	Workers int
	Delay   sim.DelayModel
	Horizon sim.Time
	Pilot   int
	PilotK  int
	// RaceAware keeps the checker's per-sender vector reconstructions
	// (O(N) per active sender) for borderline tagging.
	RaceAware bool
	// DenseClocks forces dense vector state at every size (the baseline
	// the benchmarks compare sparse state against).
	DenseClocks bool
	// CheckerFanout >= 2 routes detection through the hierarchical
	// checker tree with that many regional aggregators; <= 1 keeps the
	// flat checker (the differential oracle).
	CheckerFanout int
	// Workload overrides the fleet workload (e.g. a replayed trace,
	// objects = global sensor indices); nil uses the default per-sensor
	// toggler fleet.
	Workload workload.Source
	Faults   *faults.Plan
	Obs      *obs.Registry
	Trace    bool
}

// Scale is a wired sharded fleet scenario.
type Scale struct {
	Cfg     ScaleConfig
	Harness *core.ShardedHarness
}

// NewScale wires the scenario.
func NewScale(cfg ScaleConfig) *Scale {
	if cfg.N <= 0 {
		cfg.N = 1024
	}
	if cfg.Delay == nil {
		cfg.Delay = sim.NewDeltaBounded(5 * sim.Millisecond)
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 2 * sim.Second
	}
	h := core.NewShardedHarness(core.ShardedConfig{
		Seed: cfg.Seed, N: cfg.N, Shards: cfg.Shards, Workers: cfg.Workers,
		Delay: cfg.Delay, Horizon: cfg.Horizon,
		Pilot: cfg.Pilot, PilotK: cfg.PilotK,
		// Long-high dwells keep the pilot majority reachable (the same
		// workload balance E14 sweeps).
		MeanHigh: 1200 * sim.Millisecond, MeanLow: 400 * sim.Millisecond,
		RaceAware: cfg.RaceAware, DenseClocks: cfg.DenseClocks,
		CheckerFanout: cfg.CheckerFanout, Workload: cfg.Workload,
		Faults: cfg.Faults, Obs: cfg.Obs, Trace: cfg.Trace,
	})
	return &Scale{Cfg: cfg, Harness: h}
}

// Run executes the scenario.
func (s *Scale) Run() core.ShardedResults { return s.Harness.Run() }
