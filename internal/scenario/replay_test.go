package scenario

import (
	"reflect"
	"testing"

	"pervasive/internal/sim"
	"pervasive/internal/workload"
)

// The record/replay byte-identity suite: a scenario run is recorded to a
// versioned trace, the trace round-trips through the codec, and a replay
// driven by the decoded stream must reproduce the original run exactly —
// same ground-truth log, same occurrences, same counters — on the
// single-heap engine and at every shard × worker count of the sharded
// engine. (The live leg, which can only promise value-stream identity,
// lives in internal/live.)

// roundTrip encodes evs into a trace and returns the decoded stream,
// failing the test on any codec divergence.
func roundTrip(t *testing.T, evs []workload.Event, horizon sim.Time, scenarioName string) []workload.Event {
	t.Helper()
	tr := &workload.Trace{
		Horizon: horizon,
		Meta:    map[string]string{"scenario": scenarioName},
		Events:  evs,
	}
	dec, err := workload.Decode(tr.Encode())
	if err != nil {
		t.Fatalf("trace round-trip: %v", err)
	}
	if dec.Meta["scenario"] != scenarioName || dec.Horizon != horizon {
		t.Fatalf("trace metadata mangled: %+v", dec)
	}
	if workload.Digest(dec.Events) != workload.Digest(evs) {
		t.Fatal("trace round-trip changed the event stream")
	}
	return dec.Events
}

func TestHallRecordReplayByteIdentical(t *testing.T) {
	cfg := HallConfig{
		Seed: 1, Doors: 3, Capacity: 30,
		MeanArrival: 200 * sim.Millisecond, MeanStay: 10 * sim.Second,
		Horizon: 2 * sim.Minute, InitialOccupancy: 20,
	}
	orig := NewHall(cfg)
	resA := orig.Run()
	logA := workload.LogDigest(orig.Harness.World.Log())

	replayed := roundTrip(t, orig.Events, cfg.Horizon, "hall")
	cfg2 := cfg
	cfg2.Workload = workload.EventSource(replayed)
	rep := NewHall(cfg2)
	if workload.Digest(rep.Events) != workload.Digest(orig.Events) {
		t.Fatal("replay materialized a different stream")
	}
	resB := rep.Run()

	if logB := workload.LogDigest(rep.Harness.World.Log()); logB != logA {
		t.Fatalf("world log diverged: %s vs %s", logB, logA)
	}
	if !reflect.DeepEqual(resB.Occurrences, resA.Occurrences) {
		t.Fatalf("occurrences diverged: %d vs %d", len(resB.Occurrences), len(resA.Occurrences))
	}
	if !reflect.DeepEqual(resB.Truth, resA.Truth) {
		t.Fatal("truth intervals diverged")
	}
	if resB.Confusion != resA.Confusion {
		t.Fatalf("confusion diverged: %+v vs %+v", resB.Confusion, resA.Confusion)
	}
	if !reflect.DeepEqual(resB.Net, resA.Net) {
		t.Fatalf("net stats diverged: %+v vs %+v", resB.Net, resA.Net)
	}
}

func TestHospitalRecordReplayByteIdentical(t *testing.T) {
	cfg := HospitalConfig{
		Seed: 2, WaitingDoors: 2, WaitingCapacity: 8,
		MeanArrival: 300 * sim.Millisecond, MeanStay: 5 * sim.Second,
		WardMeanVisit: 4 * sim.Second, Horizon: sim.Minute,
	}
	orig := NewHospital(cfg)
	resA := orig.Run()
	logA := workload.LogDigest(orig.Harness.World.Log())

	replayed := roundTrip(t, orig.Events, cfg.Horizon, "hospital")
	cfg2 := cfg
	cfg2.Workload = workload.EventSource(replayed)
	rep := NewHospital(cfg2)
	resB := rep.Run()

	if logB := workload.LogDigest(rep.Harness.World.Log()); logB != logA {
		t.Fatal("world log diverged")
	}
	if !reflect.DeepEqual(resB.Occurrences, resA.Occurrences) {
		t.Fatal("occurrences diverged")
	}
	if resB.Confusion != resA.Confusion {
		t.Fatal("confusion diverged")
	}
}

func TestScaleRecordReplayAcrossShardsAndWorkers(t *testing.T) {
	base := ScaleConfig{Seed: 3, N: 64, Shards: 1, Horizon: sim.Second}
	orig := NewScale(base)
	resA := orig.Run()
	linesA := orig.Harness.CounterLines()

	replayed := roundTrip(t, orig.Harness.Events, base.Horizon, "scale")
	for _, shards := range []int{1, 4} {
		for _, workers := range []int{1, 4} {
			cfg := base
			cfg.Shards, cfg.Workers = shards, workers
			cfg.Workload = workload.EventSource(replayed)
			s := NewScale(cfg)
			res := s.Run()
			if !reflect.DeepEqual(res.Occurrences, resA.Occurrences) {
				t.Fatalf("shards=%d workers=%d: occurrences diverged (%d vs %d)",
					shards, workers, len(res.Occurrences), len(resA.Occurrences))
			}
			if !reflect.DeepEqual(res.Truth, resA.Truth) {
				t.Fatalf("shards=%d workers=%d: truth diverged", shards, workers)
			}
			if res.Confusion != resA.Confusion {
				t.Fatalf("shards=%d workers=%d: confusion diverged", shards, workers)
			}
			if lines := s.Harness.CounterLines(); !reflect.DeepEqual(lines, linesA) {
				t.Fatalf("shards=%d workers=%d: counters diverged:\n%v\nvs\n%v",
					shards, workers, lines, linesA)
			}
		}
	}
}

// TestHallOccupancyNeverNegative is the regression test for the old
// installTraffic, whose departures ignored occupancy entirely (the
// counter was dead state): at every instant of the ground-truth log,
// cumulative exits must not exceed cumulative entries.
func TestHallOccupancyNeverNegative(t *testing.T) {
	hl := NewHall(HallConfig{
		Seed: 4, Doors: 4, Capacity: 25,
		MeanArrival: 100 * sim.Millisecond, MeanStay: 3 * sim.Second,
		Horizon: sim.Minute, InitialOccupancy: 15,
	})
	hl.Run()
	log := hl.Harness.World.Log()
	if len(log) == 0 {
		t.Fatal("no traffic")
	}
	var entered, left float64
	i := 0
	for i < len(log) {
		at := log[i].At
		for i < len(log) && log[i].At == at {
			ev := log[i]
			switch ev.Attr {
			case "x":
				entered += ev.New - ev.Old
			case "y":
				left += ev.New - ev.Old
			}
			i++
		}
		if left > entered {
			t.Fatalf("occupancy negative at t=%v: entered=%v left=%v", at, entered, left)
		}
	}
}

// TestHallDeparturesClampedToHorizon is the regression test for the old
// `now+stay <= Horizon` guard, which silently dropped departures landing
// past the horizon: every visitor now departs by the horizon, so entries
// and exits balance exactly at the end of the run.
func TestHallDeparturesClampedToHorizon(t *testing.T) {
	// MeanStay far beyond the horizon: under the old guard almost every
	// departure would have been dropped.
	hl := NewHall(HallConfig{
		Seed: 5, Doors: 3, Capacity: 10,
		MeanArrival: 500 * sim.Millisecond, MeanStay: 10 * sim.Minute,
		Horizon: 30 * sim.Second, InitialOccupancy: 5,
	})
	hl.Run()
	w := hl.Harness.World
	var entered, left float64
	for _, door := range hl.Doors {
		entered += w.Get(door, "x")
		left += w.Get(door, "y")
	}
	if entered == 0 {
		t.Fatal("no arrivals")
	}
	if entered != left {
		t.Fatalf("departures dropped at horizon: entered=%v left=%v", entered, left)
	}
}
