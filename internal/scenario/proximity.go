package scenario

import (
	"fmt"

	"pervasive/internal/core"
	"pervasive/internal/obs"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
	"pervasive/internal/world"
)

// ProximityConfig parameterizes §5's third hospital monitor: "we could
// raise alarms when a visitor approaches a patient whom he is not
// visiting." A visitor badge and a patient badge move through the ward
// under random-waypoint mobility; two sensors track their positions; the
// alarm predicate is squared-distance < Radius², a relational predicate
// over both sensors' variables, detected under Instantaneously with
// strobe vector clocks.
type ProximityConfig struct {
	Seed uint64
	// W, H is the ward floor size; Radius the exclusion distance.
	W, H    float64
	Radius  float64
	Speed   float64
	Kind    core.ClockKind
	Delay   sim.DelayModel
	Horizon sim.Time
	// Obs, if non-nil, receives runtime metrics (see core.HarnessConfig).
	Obs *obs.Registry
	// FlightPerProc, when positive, attaches a causal flight recorder
	// keeping the last FlightPerProc events per process (sensors plus
	// checker); trigger-scoped dumps land in Harness.Dumps.
	FlightPerProc int
}

func (c *ProximityConfig) fill() {
	if c.W == 0 {
		c.W = 20
	}
	if c.H == 0 {
		c.H = 20
	}
	if c.Radius == 0 {
		c.Radius = 3
	}
	if c.Speed == 0 {
		c.Speed = 1.3 // walking pace, m/s
	}
	if c.Delay == nil {
		c.Delay = sim.NewDeltaBounded(100 * sim.Millisecond)
	}
	if c.Horizon <= 0 {
		c.Horizon = 10 * sim.Minute
	}
}

// Proximity is a wired proximity-alarm scenario.
type Proximity struct {
	Cfg     ProximityConfig
	Harness *core.Harness
	Visitor int // world objects
	Patient int
	Alarms  int
}

// NewProximity wires the scenario: sensor 0 tracks the visitor badge,
// sensor 1 the (stationary) patient badge.
func NewProximity(cfg ProximityConfig) *Proximity {
	cfg.fill()
	pred := predicate.MustParse(fmt.Sprintf(
		"(vx@0 - px@1) * (vx@0 - px@1) + (vy@0 - py@1) * (vy@0 - py@1) < %g",
		cfg.Radius*cfg.Radius))
	h := core.NewHarness(core.HarnessConfig{
		Seed: cfg.Seed, N: 2, Kind: cfg.Kind, Delay: cfg.Delay,
		Pred: pred, Modality: predicate.Instantaneously, Horizon: cfg.Horizon,
		Obs: cfg.Obs, Flight: flightFor(cfg.FlightPerProc, 2),
	})
	p := &Proximity{Cfg: cfg, Harness: h}
	if h.StrobeCk != nil {
		h.StrobeCk.Notify = func(core.Occurrence) { p.Alarms++ }
	}

	p.Visitor = h.World.AddObject("visitor-badge", nil)
	p.Patient = h.World.AddObject("patient-badge", nil)
	h.Bind(0, p.Visitor, "x", "vx")
	h.Bind(0, p.Visitor, "y", "vy")
	h.Bind(1, p.Patient, "x", "px")
	h.Bind(1, p.Patient, "y", "py")

	// The visitor wanders; the patient stays in bed at the center.
	world.Waypoint{
		Obj: p.Visitor, W: cfg.W, H: cfg.H, Speed: cfg.Speed,
		Pause: 5 * sim.Second, StartX: 0, StartY: 0,
	}.Install(h.World, cfg.Horizon)
	h.World.Set(p.Patient, "x", cfg.W/2)
	h.World.Set(p.Patient, "y", cfg.H/2)
	return p
}

// Run executes the scenario.
func (p *Proximity) Run() core.Results { return p.Harness.Run() }
