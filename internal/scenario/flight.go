package scenario

import "pervasive/internal/flight"

// flightFor builds a flight recorder for n sensors plus the checker
// when a scenario asks for per-process capacity k; zero disables it.
func flightFor(k, n int) *flight.Recorder {
	if k <= 0 {
		return nil
	}
	return flight.New(n+1, k)
}
