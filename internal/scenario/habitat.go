package scenario

import (
	"fmt"

	"pervasive/internal/core"
	"pervasive/internal/obs"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
	"pervasive/internal/world"
)

// HabitatConfig parameterizes an in-the-wild habitat-monitoring
// deployment — the paper's motivating regime for strobe clocks: no
// physically synchronized clock service is available or affordable, and
// lifeform movement is slow relative to Δ. Sensors at waterholes detect
// animal presence; the predicate is "at least K waterholes occupied at the
// same instant" (e.g. herd congregation).
type HabitatConfig struct {
	Seed       uint64
	Waterholes int
	K          int // congregation threshold
	// MeanVisit/MeanAbsence shape animal presence at each waterhole; in
	// the wild both are long relative to Δ.
	MeanVisit   sim.Duration
	MeanAbsence sim.Duration
	Kind        core.ClockKind
	Delay       sim.DelayModel
	Horizon     sim.Time
	// Obs, if non-nil, receives runtime metrics (see core.HarnessConfig).
	Obs *obs.Registry
	// FlightPerProc, when positive, attaches a causal flight recorder
	// keeping the last FlightPerProc events per process (sensors plus
	// checker); trigger-scoped dumps land in Harness.Dumps.
	FlightPerProc int
}

func (c *HabitatConfig) fill() {
	if c.Waterholes <= 0 {
		c.Waterholes = 5
	}
	if c.K <= 0 {
		c.K = 2
	}
	if c.MeanVisit <= 0 {
		c.MeanVisit = 2 * sim.Minute
	}
	if c.MeanAbsence <= 0 {
		c.MeanAbsence = 3 * sim.Minute
	}
	if c.Delay == nil {
		// Multi-hop wild-area network: delays of hundreds of ms to s.
		c.Delay = sim.NewDeltaBounded(2 * sim.Second)
	}
	if c.Horizon <= 0 {
		c.Horizon = sim.Hour
	}
}

// Habitat is a wired habitat-monitoring scenario.
type Habitat struct {
	Cfg     HabitatConfig
	Harness *core.Harness
}

// NewHabitat wires the scenario.
func NewHabitat(cfg HabitatConfig) *Habitat {
	cfg.fill()
	pred := predicate.MustParse(fmt.Sprintf("sum(present) >= %d", cfg.K))
	h := core.NewHarness(core.HarnessConfig{
		Seed: cfg.Seed, N: cfg.Waterholes, Kind: cfg.Kind, Delay: cfg.Delay,
		Pred: pred, Modality: predicate.Instantaneously, Horizon: cfg.Horizon,
		Obs: cfg.Obs, Flight: flightFor(cfg.FlightPerProc, cfg.Waterholes),
	})
	for i := 0; i < cfg.Waterholes; i++ {
		wh := h.World.AddObject(fmt.Sprintf("waterhole-%d", i), nil)
		h.Bind(i, wh, "present", "present")
		world.Toggler{Obj: wh, Attr: "present",
			MeanHigh: cfg.MeanVisit, MeanLow: cfg.MeanAbsence}.Install(h.World, cfg.Horizon)
	}
	return &Habitat{Cfg: cfg, Harness: h}
}

// Run executes the scenario.
func (hb *Habitat) Run() core.Results { return hb.Harness.Run() }
