package intervals

import (
	"fmt"
	"sort"
)

// This file implements the fine-grained classification of pairwise
// interval relations in a partial order that Section 3.1.1.b.i builds on
// (Kshemkalyani [20, 21]): the complete set of *orthogonal* relations an
// interval pair (X, Y) can stand in, derived from the causality relations
// among the four endpoints. Every feasible endpoint-bit pattern (see
// EndpointBits) is one orthogonal relation; the suite below enumerates
// them, names them, and provides the dependent/independent-axis structure
// used to build specification spaces like the paper's (2⁴⁰−1)·C(n,2).
//
// The granularity here is the endpoint-causality granularity: relations
// distinguishable only through interior events of the intervals (which
// [20]'s densest suite also splits) collapse onto the same pattern, so the
// suite is the faithful projection of [20] onto interval-endpoint
// information — exactly what vector timestamps of interval boundaries can
// decide.

// FineRelation is one orthogonal pairwise relation, identified by its
// endpoint bit pattern.
type FineRelation struct {
	Bits uint8
	// Index is the relation's position in the canonical enumeration
	// (sorted by Bits).
	Index int
}

// String renders R<i>(bits).
func (r FineRelation) String() string {
	return fmt.Sprintf("R%d(%08b)", r.Index, r.Bits)
}

// Coarse projects the fine relation onto the four coarse relations.
func (r FineRelation) Coarse() Relation {
	get := func(k uint) bool { return r.Bits&(1<<k) != 0 }
	switch {
	case get(2): // x.End → y.Start
		return RelPrecedes
	case get(6): // y.End → x.Start
		return RelPrecededBy
	case get(1) && get(5): // x.Start → y.End ∧ y.Start → x.End
		return RelDefinitelyOverlap
	default:
		return RelPossiblyOverlap
	}
}

// enumerateFeasible lists every bit pattern consistent with interval
// semantics (BitsConsistent), sorted ascending.
func enumerateFeasible() []uint8 {
	var out []uint8
	for b := 0; b < 256; b++ {
		if BitsConsistent(uint8(b)) {
			out = append(out, uint8(b))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// feasible is the canonical enumeration, computed once.
var feasible = enumerateFeasible()

// feasibleIndex maps bits to canonical index.
var feasibleIndex = func() map[uint8]int {
	m := make(map[uint8]int, len(feasible))
	for i, b := range feasible {
		m[b] = i
	}
	return m
}()

// FineRelations returns the canonical suite of orthogonal relations.
func FineRelations() []FineRelation {
	out := make([]FineRelation, len(feasible))
	for i, b := range feasible {
		out[i] = FineRelation{Bits: b, Index: i}
	}
	return out
}

// NumFineRelations is the size of the suite.
func NumFineRelations() int { return len(feasible) }

// ClassifyFine returns the orthogonal relation of the pair (x, y).
func ClassifyFine(x, y POInterval) FineRelation {
	bits := EndpointBits(x, y)
	idx, ok := feasibleIndex[bits]
	if !ok {
		// Only reachable with corrupted stamps; classify into the
		// all-concurrent relation rather than panicking in detectors.
		idx = feasibleIndex[0]
		bits = 0
	}
	return FineRelation{Bits: bits, Index: idx}
}

// InverseFine returns the relation of (y, x) given that of (x, y): the
// bit pattern with the two directional nibbles swapped.
func InverseFine(r FineRelation) FineRelation {
	inv := (r.Bits >> 4) | (r.Bits << 4)
	return FineRelation{Bits: inv, Index: feasibleIndex[inv]}
}

// SpecSpaceSize returns the size of the specification space over pairs of
// processes the paper quotes as (2^R − 1)·C(n,2): the number of nonempty
// disjunctions of orthogonal relations times the number of process pairs.
// It saturates at 1<<62 to avoid overflow.
func SpecSpaceSize(n int) uint64 {
	if n < 2 {
		return 0
	}
	pairs := uint64(n) * uint64(n-1) / 2
	r := NumFineRelations()
	if r >= 62 {
		return 1 << 62
	}
	disjunctions := (uint64(1) << uint(r)) - 1
	// Saturating multiply.
	if disjunctions > (1<<62)/pairs {
		return 1 << 62
	}
	return disjunctions * pairs
}
