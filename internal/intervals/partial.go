package intervals

import "pervasive/internal/clock"

// POInterval is an interval of a process's execution in a partial order of
// events: Start and End are the vector timestamps of its first and last
// events. A valid interval has Start ≤ End in the vector order.
type POInterval struct {
	Proc       int
	Start, End clock.Vector
}

// Valid reports Start ≤ End.
func (iv POInterval) Valid() bool {
	r := iv.Start.Compare(iv.End)
	return r == clock.Before || r == clock.Same
}

// Precedes reports that x wholly precedes y: x's last event happens-before
// y's first event, so in every consistent observation x ends before y
// starts.
func Precedes(x, y POInterval) bool {
	return x.End.HappensBefore(y.Start)
}

// PossiblyOverlap reports the Possibly(overlap) modality [10]: there is at
// least one consistent observation in which x and y intersect, i.e.
// neither wholly precedes the other.
func PossiblyOverlap(x, y POInterval) bool {
	return !Precedes(x, y) && !Precedes(y, x)
}

// DefinitelyOverlap reports the Definitely(overlap) modality [10]: the
// intervals intersect in every consistent observation. This holds exactly
// when each interval's start happens-before the other's end.
func DefinitelyOverlap(x, y POInterval) bool {
	return x.Start.HappensBefore(y.End) && y.Start.HappensBefore(x.End)
}

// Relation is the coarse classification of an interval pair in the
// partial order.
type Relation int

// Coarse relation values.
const (
	RelPrecedes Relation = iota // x wholly precedes y
	RelPrecededBy
	RelDefinitelyOverlap
	RelPossiblyOverlap // overlap in some but not all observations
)

// String names the relation.
func (r Relation) String() string {
	switch r {
	case RelPrecedes:
		return "precedes"
	case RelPrecededBy:
		return "preceded-by"
	case RelDefinitelyOverlap:
		return "definitely-overlap"
	default:
		return "possibly-overlap"
	}
}

// Classify returns the coarse partial-order relation between x and y.
func ClassifyPO(x, y POInterval) Relation {
	switch {
	case Precedes(x, y):
		return RelPrecedes
	case Precedes(y, x):
		return RelPrecededBy
	case DefinitelyOverlap(x, y):
		return RelDefinitelyOverlap
	default:
		return RelPossiblyOverlap
	}
}

// EndpointBits encodes the causality relations among the four endpoints of
// the interval pair (x, y) as a bitmask. Bit k set means the k-th
// endpoint relation holds:
//
//	bit 0: x.Start → y.Start     bit 4: y.Start → x.Start
//	bit 1: x.Start → y.End       bit 5: y.Start → x.End
//	bit 2: x.End   → y.Start     bit 6: y.End   → x.Start
//	bit 3: x.End   → y.End       bit 7: y.End   → x.End
//
// These eight dependency bits are the information from which the
// fine-grained suite of 40 orthogonal interval relations of [20, 21] is
// derived; the coarse relations above are projections of them. Exposing
// the raw bits lets applications specify any causality-based pairwise
// timing relation of Section 3.1.1.b.i.
func EndpointBits(x, y POInterval) uint8 {
	var bits uint8
	rel := func(a, b clock.Vector) bool { return a.HappensBefore(b) }
	if rel(x.Start, y.Start) {
		bits |= 1 << 0
	}
	if rel(x.Start, y.End) {
		bits |= 1 << 1
	}
	if rel(x.End, y.Start) {
		bits |= 1 << 2
	}
	if rel(x.End, y.End) {
		bits |= 1 << 3
	}
	if rel(y.Start, x.Start) {
		bits |= 1 << 4
	}
	if rel(y.Start, x.End) {
		bits |= 1 << 5
	}
	if rel(y.End, x.Start) {
		bits |= 1 << 6
	}
	if rel(y.End, x.End) {
		bits |= 1 << 7
	}
	return bits
}

// BitsConsistent reports whether an endpoint bitmask could arise from a
// valid interval pair: causality is acyclic, downward/upward closed over
// interval endpoints (Start ≤ End within each interval), and antisymmetric.
func BitsConsistent(bits uint8) bool {
	get := func(k uint) bool { return bits&(1<<k) != 0 }
	// Antisymmetry between mirrored endpoint pairs:
	// (xS→yS, yS→xS), (xS→yE, yE→xS), (xE→yS, yS→xE), (xE→yE, yE→xE).
	for _, pair := range [][2]uint{{0, 4}, {1, 6}, {2, 5}, {3, 7}} {
		if get(pair[0]) && get(pair[1]) {
			return false
		}
	}
	// Closure under Start ≤ End: xE→yS implies xS→yS, xS→yE and xE→yE;
	// xS→yS implies xS→yE; xE→yE implies xS→yE. Mirrored for y→x with
	// bit 5 (yS→xE) as the weakest y→x relation.
	if get(2) && !(get(0) && get(1) && get(3)) {
		return false
	}
	if get(0) && !get(1) {
		return false
	}
	if get(3) && !get(1) {
		return false
	}
	if get(6) && !(get(4) && get(5) && get(7)) {
		return false
	}
	if get(4) && !get(5) {
		return false
	}
	if get(7) && !get(5) {
		return false
	}
	return true
}
