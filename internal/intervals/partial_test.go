package intervals

import (
	"testing"

	"pervasive/internal/clock"
)

// iv builds a POInterval from literal vectors.
func iv(proc int, start, end clock.Vector) POInterval {
	return POInterval{Proc: proc, Start: start, End: end}
}

func TestPrecedes(t *testing.T) {
	// x entirely causally precedes y.
	x := iv(0, clock.Vector{1, 0}, clock.Vector{2, 0})
	y := iv(1, clock.Vector{2, 1}, clock.Vector{2, 3})
	if !Precedes(x, y) || Precedes(y, x) {
		t.Fatal("precedence misreported")
	}
	if PossiblyOverlap(x, y) {
		t.Fatal("wholly ordered intervals cannot possibly overlap")
	}
	if ClassifyPO(x, y) != RelPrecedes || ClassifyPO(y, x) != RelPrecededBy {
		t.Fatal("classification wrong")
	}
}

func TestPossiblyButNotDefinitely(t *testing.T) {
	// Two intervals on independent processes with no communication:
	// concurrent endpoints — possibly overlap, but not definitely.
	x := iv(0, clock.Vector{1, 0}, clock.Vector{2, 0})
	y := iv(1, clock.Vector{0, 1}, clock.Vector{0, 2})
	if !PossiblyOverlap(x, y) {
		t.Fatal("independent intervals should possibly overlap")
	}
	if DefinitelyOverlap(x, y) {
		t.Fatal("independent intervals must not definitely overlap")
	}
	if ClassifyPO(x, y) != RelPossiblyOverlap {
		t.Fatal("classification wrong")
	}
}

func TestDefinitelyOverlap(t *testing.T) {
	// Cross communication: x starts before y ends and vice versa.
	// x = [ (1,0) .. (3,2) ], y = [ (0,1) .. (2,3) ] with message exchange.
	x := iv(0, clock.Vector{1, 0}, clock.Vector{3, 2})
	y := iv(1, clock.Vector{0, 1}, clock.Vector{2, 3})
	if !DefinitelyOverlap(x, y) {
		t.Fatal("cross-linked intervals should definitely overlap")
	}
	if ClassifyPO(x, y) != RelDefinitelyOverlap {
		t.Fatal("classification wrong")
	}
	// Definitely implies possibly.
	if !PossiblyOverlap(x, y) {
		t.Fatal("definitely-overlap must imply possibly-overlap")
	}
}

func TestValid(t *testing.T) {
	good := iv(0, clock.Vector{1, 0}, clock.Vector{2, 0})
	if !good.Valid() {
		t.Fatal("valid interval rejected")
	}
	pointwise := iv(0, clock.Vector{1, 0}, clock.Vector{1, 0})
	if !pointwise.Valid() {
		t.Fatal("degenerate interval should be valid")
	}
	bad := iv(0, clock.Vector{2, 0}, clock.Vector{1, 0})
	if bad.Valid() {
		t.Fatal("reversed interval accepted")
	}
}

func TestEndpointBits(t *testing.T) {
	x := iv(0, clock.Vector{1, 0}, clock.Vector{2, 0})
	y := iv(1, clock.Vector{2, 1}, clock.Vector{2, 3})
	bits := EndpointBits(x, y)
	// x wholly precedes y: all four x→y bits set, no y→x bits.
	if bits != 0b00001111 {
		t.Fatalf("bits = %08b", bits)
	}
	if !BitsConsistent(bits) {
		t.Fatal("real execution produced inconsistent bits")
	}
}

func TestEndpointBitsConcurrent(t *testing.T) {
	x := iv(0, clock.Vector{1, 0}, clock.Vector{2, 0})
	y := iv(1, clock.Vector{0, 1}, clock.Vector{0, 2})
	if bits := EndpointBits(x, y); bits != 0 {
		t.Fatalf("independent intervals produced bits %08b", bits)
	}
	if !BitsConsistent(0) {
		t.Fatal("all-concurrent bits should be consistent")
	}
}

func TestBitsConsistentRejectsCycles(t *testing.T) {
	// xS→yS together with yS→xS is a causal cycle.
	if BitsConsistent(1<<0 | 1<<4) {
		t.Fatal("cyclic bits accepted")
	}
	// xE→yS without the implied xS→yS.
	if BitsConsistent(1 << 2) {
		t.Fatal("closure-violating bits accepted")
	}
}

func TestAllRealizedBitsAreConsistent(t *testing.T) {
	// Enumerate interval pairs over small vector values and confirm every
	// realized bit pattern passes the consistency predicate, and count the
	// distinct patterns (the raw material of the fine-grained relations).
	vals := []clock.Vector{
		{1, 0}, {2, 0}, {3, 0}, {0, 1}, {0, 2}, {0, 3},
		{1, 1}, {2, 1}, {1, 2}, {2, 2}, {3, 2}, {2, 3},
	}
	patterns := make(map[uint8]bool)
	for _, xs := range vals {
		for _, xe := range vals {
			x := iv(0, xs, xe)
			if !x.Valid() {
				continue
			}
			for _, ys := range vals {
				for _, ye := range vals {
					y := iv(1, ys, ye)
					if !y.Valid() {
						continue
					}
					bits := EndpointBits(x, y)
					if !BitsConsistent(bits) {
						t.Fatalf("realized inconsistent bits %08b for x=%v y=%v",
							bits, x, y)
					}
					patterns[bits] = true
				}
			}
		}
	}
	if len(patterns) < 10 {
		t.Fatalf("only %d distinct endpoint patterns realized; expected a rich set", len(patterns))
	}
}

func TestRelationString(t *testing.T) {
	names := map[Relation]string{
		RelPrecedes:          "precedes",
		RelPrecededBy:        "preceded-by",
		RelDefinitelyOverlap: "definitely-overlap",
		RelPossiblyOverlap:   "possibly-overlap",
	}
	for r, want := range names {
		if r.String() != want {
			t.Fatalf("%d.String() = %q", r, r.String())
		}
	}
}
