package intervals

import (
	"testing"

	"pervasive/internal/clock"
)

func TestFineRelationsAreOrthogonal(t *testing.T) {
	rels := FineRelations()
	if len(rels) < 10 {
		t.Fatalf("suite suspiciously small: %d", len(rels))
	}
	seen := make(map[uint8]bool)
	for i, r := range rels {
		if r.Index != i {
			t.Fatalf("index mismatch at %d: %+v", i, r)
		}
		if seen[r.Bits] {
			t.Fatalf("duplicate bits %08b", r.Bits)
		}
		seen[r.Bits] = true
		if !BitsConsistent(r.Bits) {
			t.Fatalf("infeasible bits in suite: %08b", r.Bits)
		}
	}
}

func TestClassifyFineMatchesEndpointBits(t *testing.T) {
	x := iv(0, clock.Vector{1, 0}, clock.Vector{2, 0})
	y := iv(1, clock.Vector{2, 1}, clock.Vector{2, 3})
	r := ClassifyFine(x, y)
	if r.Bits != EndpointBits(x, y) {
		t.Fatal("bits mismatch")
	}
	if r.Coarse() != RelPrecedes {
		t.Fatalf("coarse projection %v", r.Coarse())
	}
}

func TestCoarseProjectionAgreesWithClassifyPO(t *testing.T) {
	vals := []clock.Vector{
		{1, 0}, {2, 0}, {3, 0}, {0, 1}, {0, 2}, {0, 3},
		{1, 1}, {2, 1}, {1, 2}, {2, 2}, {3, 2}, {2, 3},
	}
	for _, xs := range vals {
		for _, xe := range vals {
			x := iv(0, xs, xe)
			if !x.Valid() {
				continue
			}
			for _, ys := range vals {
				for _, ye := range vals {
					y := iv(1, ys, ye)
					if !y.Valid() {
						continue
					}
					fine := ClassifyFine(x, y).Coarse()
					coarse := ClassifyPO(x, y)
					if fine != coarse {
						t.Fatalf("projection mismatch for x=%v y=%v: fine→%v classify→%v (bits %08b)",
							x, y, fine, coarse, EndpointBits(x, y))
					}
				}
			}
		}
	}
}

func TestInverseFine(t *testing.T) {
	x := iv(0, clock.Vector{1, 0}, clock.Vector{2, 0})
	y := iv(1, clock.Vector{2, 1}, clock.Vector{2, 3})
	fwd := ClassifyFine(x, y)
	rev := ClassifyFine(y, x)
	if InverseFine(fwd) != rev {
		t.Fatalf("inverse mismatch: fwd=%v rev=%v inv(fwd)=%v", fwd, rev, InverseFine(fwd))
	}
	// Inverse is an involution over the whole suite.
	for _, r := range FineRelations() {
		if InverseFine(InverseFine(r)) != r {
			t.Fatalf("inverse not involutive at %v", r)
		}
	}
}

func TestClassifyFineCorruptStampsFallBack(t *testing.T) {
	// Force an infeasible pattern with inconsistent (corrupted) stamps:
	// X.Start > X.End violates interval validity.
	x := POInterval{Proc: 0, Start: clock.Vector{5, 0}, End: clock.Vector{1, 0}}
	y := POInterval{Proc: 1, Start: clock.Vector{0, 1}, End: clock.Vector{0, 2}}
	r := ClassifyFine(x, y) // must not panic
	if !BitsConsistent(r.Bits) {
		t.Fatal("fallback produced infeasible relation")
	}
}

func TestSpecSpaceSize(t *testing.T) {
	if SpecSpaceSize(1) != 0 {
		t.Fatal("n=1 has no pairs")
	}
	got := SpecSpaceSize(2)
	r := NumFineRelations()
	if r < 62 {
		want := (uint64(1)<<uint(r) - 1) * 1
		if got != want {
			t.Fatalf("spec space %d want %d", got, want)
		}
	} else if got != 1<<62 {
		t.Fatal("saturation failed")
	}
	// Monotone in n (until saturation).
	if SpecSpaceSize(3) < SpecSpaceSize(2) {
		t.Fatal("not monotone")
	}
}

func TestSuiteCoversAllRealizedPatterns(t *testing.T) {
	// Every pattern realizable by actual vector-stamped intervals is in
	// the suite, and conversely every coarse class is realized.
	vals := []clock.Vector{
		{1, 0}, {2, 0}, {3, 0}, {0, 1}, {0, 2}, {0, 3},
		{1, 1}, {2, 1}, {1, 2}, {2, 2}, {3, 2}, {2, 3}, {3, 3},
	}
	realized := make(map[uint8]bool)
	coarse := make(map[Relation]bool)
	for _, xs := range vals {
		for _, xe := range vals {
			x := iv(0, xs, xe)
			if !x.Valid() {
				continue
			}
			for _, ys := range vals {
				for _, ye := range vals {
					y := iv(1, ys, ye)
					if !y.Valid() {
						continue
					}
					r := ClassifyFine(x, y)
					realized[r.Bits] = true
					coarse[r.Coarse()] = true
				}
			}
		}
	}
	for bits := range realized {
		if _, ok := feasibleIndex[bits]; !ok {
			t.Fatalf("realized pattern %08b missing from suite", bits)
		}
	}
	if len(coarse) != 4 {
		t.Fatalf("coarse classes realized: %v", coarse)
	}
	t.Logf("suite size %d; realized %d patterns with this stamp alphabet",
		NumFineRelations(), len(realized))
}
