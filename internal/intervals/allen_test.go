package intervals

import (
	"testing"
	"testing/quick"

	"pervasive/internal/sim"
)

func TestClassifyAll13(t *testing.T) {
	y := Span{Lo: 10, Hi: 20}
	cases := []struct {
		x    Span
		want Allen
	}{
		{Span{0, 5}, Before},
		{Span{0, 10}, Meets},
		{Span{5, 15}, Overlaps},
		{Span{10, 15}, Starts},
		{Span{12, 18}, During},
		{Span{15, 20}, Finishes},
		{Span{10, 20}, Equals},
		{Span{5, 20}, FinishedBy},
		{Span{5, 25}, Contains},
		{Span{10, 25}, StartedBy},
		{Span{15, 25}, OverlappedBy},
		{Span{20, 30}, MetBy},
		{Span{25, 30}, After},
	}
	seen := make(map[Allen]bool)
	for _, c := range cases {
		got := Classify(c.x, y)
		if got != c.want {
			t.Errorf("Classify(%v, %v) = %v want %v", c.x, y, got, c.want)
		}
		seen[got] = true
	}
	if len(seen) != 13 {
		t.Fatalf("cases cover %d of 13 relations", len(seen))
	}
}

func TestClassifyEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty span")
		}
	}()
	Classify(Span{5, 5}, Span{0, 10})
}

// Property: Classify(y, x) is always the inverse relation of
// Classify(x, y), and exactly one relation holds.
func TestAllenInverseProperty(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		x := Span{Lo: sim.Time(a), Hi: sim.Time(a) + sim.Time(b%50) + 1}
		y := Span{Lo: sim.Time(c), Hi: sim.Time(c) + sim.Time(d%50) + 1}
		return Classify(x, y).Inverse() == Classify(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Intersects agrees with the relation classification.
func TestIntersectsMatchesClassification(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		x := Span{Lo: sim.Time(a), Hi: sim.Time(a) + sim.Time(b%50) + 1}
		y := Span{Lo: sim.Time(c), Hi: sim.Time(c) + sim.Time(d%50) + 1}
		rel := Classify(x, y)
		disjoint := rel == Before || rel == After || rel == Meets || rel == MetBy
		return Intersects(x, y) == !disjoint
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntersection(t *testing.T) {
	got := Intersection(Span{0, 10}, Span{5, 20})
	if got != (Span{5, 10}) {
		t.Fatalf("intersection %v", got)
	}
	if !Intersection(Span{0, 5}, Span{10, 20}).Empty() {
		t.Fatal("disjoint intersection not empty")
	}
}

func TestSpanHelpers(t *testing.T) {
	if (Span{3, 3}).Len() != 0 || !(Span{3, 3}).Empty() {
		t.Fatal("empty span misbehaves")
	}
	if (Span{3, 7}).Len() != 4 {
		t.Fatal("len wrong")
	}
}

func TestAllenStrings(t *testing.T) {
	if Before.String() != "before" || Equals.String() != "equals" || After.String() != "after" {
		t.Fatal("relation names wrong")
	}
	if Allen(99).String() != "invalid" {
		t.Fatal("out-of-range name")
	}
}
