// Package intervals implements the interval-algebra substrate for the
// paper's specification design space (Section 3.1):
//
//   - Allen's 13 relations between intervals on a single time axis
//     (Section 3.1.1.a.ii, [1, 15]), used for relative timing relations
//     such as "X before Y" or "X overlaps Y";
//   - causality-based relations between intervals in a partial order
//     (Section 3.1.1.b.i, [7, 8, 20, 21]), including the Possibly- and
//     Definitely-overlap modalities [10] and the endpoint-bit
//     classification underlying the fine-grained relation suite.
package intervals

import (
	"pervasive/internal/sim"
)

// Span is a half-open interval [Lo, Hi) on a single (totally ordered) time
// axis. Spans with Hi <= Lo are empty.
type Span struct {
	Lo, Hi sim.Time
}

// Empty reports whether the span contains no instants.
func (s Span) Empty() bool { return s.Hi <= s.Lo }

// Len returns the span's duration.
func (s Span) Len() sim.Duration {
	if s.Empty() {
		return 0
	}
	return s.Hi - s.Lo
}

// Allen is one of Allen's 13 interval relations.
type Allen int

// The 13 relations. X rel Y reads left to right: e.g. Before means X is
// strictly before Y with a gap; Meets means X ends exactly where Y starts.
const (
	Before Allen = iota
	Meets
	Overlaps
	Starts
	During
	Finishes
	Equals
	FinishedBy
	Contains
	StartedBy
	OverlappedBy
	MetBy
	After
)

var allenNames = [...]string{
	"before", "meets", "overlaps", "starts", "during", "finishes",
	"equals", "finished-by", "contains", "started-by", "overlapped-by",
	"met-by", "after",
}

// String returns the relation's conventional name.
func (a Allen) String() string {
	if a < 0 || int(a) >= len(allenNames) {
		return "invalid"
	}
	return allenNames[a]
}

// Inverse returns the converse relation: Classify(y, x) ==
// Classify(x, y).Inverse().
func (a Allen) Inverse() Allen { return Allen(len(allenNames) - 1 - int(a)) }

// Classify returns the Allen relation of x to y. Both spans must be
// non-empty; classifying an empty span panics, since Allen's algebra is
// defined on proper intervals only.
func Classify(x, y Span) Allen {
	if x.Empty() || y.Empty() {
		panic("intervals: Allen classification of empty span")
	}
	switch {
	case x.Hi < y.Lo:
		return Before
	case x.Hi == y.Lo:
		return Meets
	case x.Lo > y.Hi:
		return After
	case x.Lo == y.Hi:
		return MetBy
	}
	// The spans properly intersect; discriminate on endpoint order.
	switch {
	case x.Lo == y.Lo && x.Hi == y.Hi:
		return Equals
	case x.Lo == y.Lo && x.Hi < y.Hi:
		return Starts
	case x.Lo == y.Lo: // x.Hi > y.Hi
		return StartedBy
	case x.Hi == y.Hi && x.Lo > y.Lo:
		return Finishes
	case x.Hi == y.Hi: // x.Lo < y.Lo
		return FinishedBy
	case x.Lo > y.Lo && x.Hi < y.Hi:
		return During
	case x.Lo < y.Lo && x.Hi > y.Hi:
		return Contains
	case x.Lo < y.Lo:
		return Overlaps
	default:
		return OverlappedBy
	}
}

// Intersects reports whether the spans share at least one instant.
func Intersects(x, y Span) bool {
	return !x.Empty() && !y.Empty() && x.Lo < y.Hi && y.Lo < x.Hi
}

// Intersection returns the (possibly empty) common span.
func Intersection(x, y Span) Span {
	lo := x.Lo
	if y.Lo > lo {
		lo = y.Lo
	}
	hi := x.Hi
	if y.Hi < hi {
		hi = y.Hi
	}
	if hi < lo {
		hi = lo
	}
	return Span{Lo: lo, Hi: hi}
}
