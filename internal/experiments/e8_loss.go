package experiments

import (
	"pervasive/internal/core"
	"pervasive/internal/runner"
	"pervasive/internal/sim"
	"pervasive/internal/world"
)

// E8LossLocalization reproduces §4.2.2's robustness claim: "A message loss
// may result in the wrong detection of the predicate in the temporal
// vicinity of the lost message. However, there will be no long-term ripple
// effects of the message loss on later detection." All strobes inside a
// window are dropped; detection quality is compared per phase against a
// loss-free run of the same seed.
func E8LossLocalization(cfg RunConfig) *Table {
	t := &Table{
		ID:    "E8",
		Title: "detection errors around a strobe-loss window (loss at [20s,25s))",
		Claim: "\"A message loss may result in the wrong detection … in the temporal " +
			"vicinity of the lost message. However, there will be no long-term ripple " +
			"effects\" (§4.2.2)",
		Header: []string{"phase", "true ivs", "matched(clean)", "matched(lossy)", "lost"},
	}
	const (
		lossFrom = 20 * sim.Second
		lossTo   = 25 * sim.Second
	)
	horizon := sim.Time(cfg.pick(80, 60)) * sim.Second
	seeds := cfg.pick(6, 2)

	type phase struct {
		name     string
		from, to sim.Time
	}
	// "vicinity" extends one Δ+refresh past the window: the checker's view
	// of a value lost in the window heals at that sensor's next event.
	phases := []phase{
		{"before", 0, lossFrom},
		{"vicinity", lossFrom, lossTo + 5*sim.Second},
		{"after", lossTo + 5*sim.Second, horizon},
	}
	// Each seed runs its clean+lossy pair and phase-matching in one job;
	// the per-phase counts {truth, matchedClean, matchedLossy} sum in seed
	// order afterwards.
	perSeed := runner.Map(cfg.Parallelism, seeds, func(s int) [3][3]int {
		mk := func(lossy bool) core.Results {
			var delay sim.DelayModel = sim.NewDeltaBounded(20 * sim.Millisecond)
			if lossy {
				delay = sim.LossWindow{Inner: delay, From: lossFrom, To: lossTo}
			}
			return pulseWorkload{
				N: 3, K: 2,
				MeanHigh: 700 * sim.Millisecond, MeanLow: 900 * sim.Millisecond,
				Kind: core.VectorStrobe, Delay: delay, Horizon: horizon,
				Faults: cfg.Faults,
			}.run(cfg.Seed + uint64(s))
		}
		clean := mk(false)
		lossy := mk(true)

		matched := func(res core.Results, tv world.Interval) bool {
			for _, o := range res.Occurrences {
				w := world.Interval{Start: o.Start - 100*sim.Millisecond,
					End: o.End + 100*sim.Millisecond}
				if w.Overlap(tv) > 0 {
					return true
				}
			}
			return false
		}
		var c [3][3]int
		for pi, ph := range phases {
			for _, tv := range clean.Truth {
				if tv.Start < ph.from || tv.Start >= ph.to {
					continue
				}
				c[pi][0]++
				if matched(clean, tv) {
					c[pi][1]++
				}
				if matched(lossy, tv) {
					c[pi][2]++
				}
			}
		}
		return c
	})
	for pi, ph := range phases {
		var c [3]int
		for _, sc := range perSeed {
			for k := 0; k < 3; k++ {
				c[k] += sc[pi][k]
			}
		}
		t.AddRow(ph.name, c[0], c[1], c[2], c[1]-c[2])
	}
	t.Notes = append(t.Notes,
		"expected shape: 'lost' concentrates in the vicinity row; before/after rows match the clean run",
		"healing is bounded: per-process Seq ordering discards nothing after the window — the next strobe of each sensor restores its value")
	return t
}
