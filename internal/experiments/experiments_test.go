package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quick() RunConfig { return RunConfig{Seed: 1, Quick: true} }

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl := e.Run(quick())
			if tbl.ID != e.ID {
				t.Fatalf("table ID %q want %q", tbl.ID, e.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Fatalf("row width %d != header width %d: %v",
						len(row), len(tbl.Header), row)
				}
			}
			if !strings.Contains(tbl.String(), tbl.ID) {
				t.Fatal("render misses ID")
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("e3"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("bogus ID found")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "T", Title: "title", Claim: "claim",
		Header: []string{"a", "bb"}, Notes: []string{"note1"}}
	tbl.AddRow(1, 2.5)
	out := tbl.String()
	for _, want := range []string{"T", "title", "claim", "a", "bb", "1", "2.500", "note1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render %q missing %q", out, want)
		}
	}
}

// cell fetches a numeric cell.
func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(tbl.Rows[row][col], "µs"), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

func findRow(tbl *Table, col int, value string) int {
	for i, row := range tbl.Rows {
		if row[col] == value {
			return i
		}
	}
	return -1
}

func TestE2Shape(t *testing.T) {
	tbl := E2TwoEpsilon(quick())
	// FN-rate at overlap/ε' = 0.25 must exceed the rate at 3.0 (which
	// must be ~0).
	lowIdx := findRow(tbl, 0, "0.25")
	highIdx := findRow(tbl, 0, "3.00")
	if lowIdx < 0 || highIdx < 0 {
		t.Fatalf("rows missing: %v", tbl.Rows)
	}
	low := cell(t, tbl, lowIdx, 3)
	high := cell(t, tbl, highIdx, 3)
	if low <= high {
		t.Fatalf("FN-rate did not fall with overlap: %.3f vs %.3f", low, high)
	}
	if high > 0.01 {
		t.Fatalf("FN-rate above the bound should be ~0, got %.3f", high)
	}
	if low < 0.2 {
		t.Fatalf("FN-rate far below the bound should be substantial, got %.3f", low)
	}
}

func TestE3Shape(t *testing.T) {
	tbl := E3SlimLattice(quick())
	// Two blocks of 6 regime rows, separated by one marker row.
	if len(tbl.Rows) != 13 {
		t.Fatalf("rows %d want 13 (6 + marker + 6)", len(tbl.Rows))
	}
	block := func(base int, chain, full float64) {
		t.Helper()
		first := cell(t, tbl, base, 2) // Δ=0
		last := cell(t, tbl, base+5, 2)
		if first != chain {
			t.Fatalf("row %d: Δ=0 lattice size %.1f want %.0f (n·p+1)", base, first, chain)
		}
		if last != full {
			t.Fatalf("row %d: no-strobe lattice size %.1f want %.0f ((p+1)^n)", base+5, last, full)
		}
		prev := first
		for i := base + 1; i <= base+5; i++ {
			cur := cell(t, tbl, i, 2)
			if cur < prev-1e-9 {
				t.Fatalf("lattice size not monotone in Δ: row %d %.1f < %.1f", i, cur, prev)
			}
			prev = cur
		}
		if w := cell(t, tbl, base, 4); w != 1 {
			t.Fatalf("row %d: Δ=0 width %.1f want 1", base, w)
		}
	}
	block(0, 17, 625)    // n=4, p=4
	block(7, 37, 117649) // n=6, p=6 (rows 0-5, marker at 6, block at 7-12)
}

func TestE4Shape(t *testing.T) {
	tbl := E4ScalarVectorEquivalence(quick())
	// Row 0: Δ=0 — all confusions identical, no unflagged errors anywhere.
	seeds := cell(t, tbl, 0, 2)
	if cell(t, tbl, 0, 3) != seeds {
		t.Fatalf("Δ=0 scalar/vector differ: %v", tbl.Rows[0])
	}
	if cell(t, tbl, 0, 4) != 0 || cell(t, tbl, 0, 5) != 0 {
		t.Fatalf("Δ=0 unflagged errors nonzero: %v", tbl.Rows[0])
	}
	// Row 1: Δ>0 — the scalar leaves at least as many errors unflagged
	// as the vector.
	if cell(t, tbl, 1, 5) < cell(t, tbl, 1, 4) {
		t.Fatalf("scalar certified better than vector: %v", tbl.Rows[1])
	}
	// Row 2: Lamport orders a positive number of concurrent pairs.
	if cell(t, tbl, 2, 4) == 0 {
		t.Fatalf("Lamport ordered no concurrent pairs: %v", tbl.Rows[2])
	}
}

func TestE7Shape(t *testing.T) {
	tbl := E7MessageOverhead(quick())
	// bytes/event at n=16 vs n=4 for vector should scale much faster than
	// for scalar.
	get := func(n int, kind string) float64 {
		for i, row := range tbl.Rows {
			if row[0] == strconv.Itoa(n) && row[1] == kind {
				return cell(t, tbl, i, 5)
			}
		}
		t.Fatalf("row n=%d kind=%s missing", n, kind)
		return 0
	}
	vecGrowth := get(16, "strobe-vector") / get(4, "strobe-vector")
	scaGrowth := get(16, "strobe-scalar") / get(4, "strobe-scalar")
	physGrowth := get(16, "physical-report") / get(4, "physical-report")
	if vecGrowth <= scaGrowth {
		t.Fatalf("vector growth %.2f not above scalar growth %.2f", vecGrowth, scaGrowth)
	}
	if physGrowth > 1.5 {
		t.Fatalf("physical reports should stay O(1) per event, grew %.2f×", physGrowth)
	}
}

func TestE9Shape(t *testing.T) {
	tbl := E9ClockSyncCost(RunConfig{Seed: 2, Quick: true})
	// Rows: unsynced, RBS, TPSN, on-demand (n=16 only in quick mode).
	parse := func(s string) float64 {
		s = strings.TrimSpace(s)
		switch {
		case strings.HasSuffix(s, "ms"):
			v, _ := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
			return v * 1000
		case strings.HasSuffix(s, "µs"):
			v, _ := strconv.ParseFloat(strings.TrimSuffix(s, "µs"), 64)
			return v
		case strings.HasSuffix(s, "s"):
			v, _ := strconv.ParseFloat(strings.TrimSuffix(s, "s"), 64)
			return v * 1e6
		}
		v, _ := strconv.ParseFloat(s, 64)
		return v
	}
	unsynced := parse(tbl.Rows[0][2])
	rbs := parse(tbl.Rows[1][2])
	tpsn := parse(tbl.Rows[2][2])
	if !(rbs < tpsn && tpsn < unsynced) {
		t.Fatalf("ε ordering violated: rbs=%v tpsn=%v unsynced=%v", rbs, tpsn, unsynced)
	}
	if tbl.Rows[1][5] == "0" || tbl.Rows[2][5] == "0" {
		t.Fatal("sync protocols reported zero message cost — the service must not be free")
	}
}

func TestE10Shape(t *testing.T) {
	tbl := E10EveryOccurrence(quick())
	every := cell(t, tbl, 0, 3)
	once := cell(t, tbl, 1, 3)
	if every <= once {
		t.Fatalf("every-occurrence fraction %.2f not above detect-once %.2f", every, once)
	}
	seeds := quick().pick(5, 2)
	if int(cell(t, tbl, 1, 2)) != seeds {
		t.Fatalf("detect-once should find exactly one per run: %v", tbl.Rows[1])
	}
}

func TestE11Shape(t *testing.T) {
	tbl := E11HiddenChannels(quick())
	first := cell(t, tbl, 0, 4)              // covert delay ≪ Δ
	last := cell(t, tbl, len(tbl.Rows)-1, 4) // covert delay ≫ Δ
	if first >= last {
		t.Fatalf("recovered fraction did not rise with covert delay: %.3f vs %.3f", first, last)
	}
	if first > 0.2 {
		t.Fatalf("fast covert channels should be nearly invisible, recovered %.3f", first)
	}
	for i := range tbl.Rows {
		if tbl.Rows[i][5] != "0" {
			t.Fatalf("inverted causality should be impossible: %v", tbl.Rows[i])
		}
	}
}

func TestE12Shape(t *testing.T) {
	tbl := E12FalseCausality(quick())
	// Δ=0 row: ~all cross pairs falsely ordered, lattice is a chain.
	if frac := cell(t, tbl, 0, 3); frac < 0.95 {
		t.Fatalf("Δ=0 false-causality fraction %.3f, want ~1", frac)
	}
	if frac := cell(t, tbl, len(tbl.Rows)-1, 3); frac >= cell(t, tbl, 0, 3) {
		t.Fatalf("false causality did not thin with Δ: %v", tbl.Rows)
	}
	if cell(t, tbl, 0, 4) >= cell(t, tbl, 0, 5) {
		t.Fatalf("strobe lattice not smaller than true lattice at Δ=0: %v", tbl.Rows[0])
	}
}
