package experiments

import (
	"fmt"

	"pervasive/internal/clock"
	"pervasive/internal/core"
	"pervasive/internal/predicate"
	"pervasive/internal/runner"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

// E2TwoEpsilon reproduces the Mayo–Kearns limit the paper cites in §3.3:
// "when the overlap period of the local intervals, during which the global
// predicate is true, is less than 2ε, false negatives occur" [28]. Two
// sensors pulse with a controlled true overlap; readings come from clocks
// whose error is within ±ε/2 of true time (pairwise skew ≤ ε, i.e. the
// paper's 2ε bound corresponds to overlap/skew-bound = 1 here). The
// detector sees timestamp order only.
func E2TwoEpsilon(cfg RunConfig) *Table {
	const eps = 10 * sim.Millisecond // pairwise skew bound
	t := &Table{
		ID:    "E2",
		Title: "false negatives vs overlap (pairwise skew bound ε' = 10ms)",
		Claim: "\"when the overlap period … is less than 2ε, false negatives occur\" " +
			"(§3.3 / Mayo–Kearns [28]; ε' here is the pairwise bound = 2ε of [28])",
		Header: []string{"overlap/ε'", "overlap", "trials", "FN-rate", "FP-rate"},
	}
	ratios := []float64{0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0}
	trials := cfg.pick(400, 60)

	pred := predicate.MustParse("x@0 == 1 && x@1 == 1")
	rng := stats.NewRNG(cfg.Seed + 99)

	// The clock fleets share one RNG stream across every trial, so draw
	// them sequentially in (ratio, trial) order before fanning out; the
	// simulated trials themselves are independent and parallelize freely.
	fleets := make([][]clock.EpsilonSynced, len(ratios)*trials)
	for i := range fleets {
		fleets[i] = clock.NewEpsilonFleet(rng, 2, eps)
	}

	for ri, ratioV := range ratios {
		overlap := sim.Duration(ratioV * float64(eps))
		type outcome struct{ fn, fp bool }
		outcomes := runner.Map(cfg.Parallelism, trials, func(trial int) outcome { //lint:allow fastpath(amortized: Map resolves its workers gauge once per fan-out of `trials` jobs, not per job)
			fleet := fleets[ri*trials+trial]
			eng := sim.NewEngine(uint64(trial))
			checker := core.NewPhysicalChecker(eng, 2, pred, 50*sim.Millisecond)

			// True pulses: p0 [t0, t0+L); p1 [t0+L-overlap, t0+2L-overlap)
			// → true overlap is exactly `overlap`.
			const L = 200 * sim.Millisecond
			t0 := 100 * sim.Millisecond
			events := []struct {
				proc int
				at   sim.Time
				val  float64
			}{
				{0, t0, 1},
				{1, t0 + L - overlap, 1},
				{0, t0 + L, 0},
				{1, t0 + 2*L - overlap, 0},
			}
			for i, ev := range events {
				ev := ev
				seq := i/2 + 1
				eng.At(ev.at, func(now sim.Time) {
					checker.OnReport(core.ReportMsg{
						Proc: ev.proc, Seq: seq, Var: "x", Value: ev.val,
						TS: fleet[ev.proc].Read(now),
					}, now)
				})
			}
			eng.RunAll()
			checker.Finish(sim.Second)
			occ := checker.Occurrences()
			return outcome{fn: len(occ) == 0, fp: len(occ) > 1}
		})
		var fn, fp int
		for _, o := range outcomes {
			if o.fn {
				fn++
			}
			if o.fp {
				fp++
			}
		}
		t.AddRow(fmt.Sprintf("%.2f", ratioV), overlap, trials,
			float64(fn)/float64(trials), float64(fp)/float64(trials))
	}
	t.Notes = append(t.Notes,
		"expected shape: FN-rate > 0 below overlap/ε' = 1, falling to 0 above it",
		"FN occurs when the drawn skew difference exceeds the true overlap and timestamp order inverts")
	return t
}
