package experiments

import (
	"pervasive/internal/core"
	"pervasive/internal/runner"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

// E1StrobeAccuracy reproduces the accuracy analysis of Section 3.3: strobe
// clocks detect Instantaneously-modal predicates with false negatives
// (vector) and additionally unflagged false positives (scalar); accuracy
// is high when the sensed-event rate is low relative to Δ and degrades as
// races within Δ become common. The ε-synchronized physical-clock
// detector is the baseline.
func E1StrobeAccuracy(cfg RunConfig) *Table {
	t := &Table{
		ID:    "E1",
		Title: "detection accuracy vs Δ (n=6, k-of-n predicate)",
		Claim: "\"the use of logical vectors may result in some false negatives, whereas " +
			"the use of logical scalars may also result in some false positives\" … " +
			"\"Δ may be adequate when the rate of occurrence of sensed events is " +
			"comparatively low\" (§3.3)",
		Header: []string{"Δ", "detector", "recall", "precision", "FN", "FP",
			"FP-unflagged", "border-cov"},
	}

	deltas := []sim.Duration{
		5 * sim.Millisecond, 50 * sim.Millisecond, 200 * sim.Millisecond,
		800 * sim.Millisecond,
	}
	if !cfg.Quick {
		deltas = []sim.Duration{
			sim.Millisecond, 5 * sim.Millisecond, 20 * sim.Millisecond,
			50 * sim.Millisecond, 100 * sim.Millisecond, 200 * sim.Millisecond,
			400 * sim.Millisecond, 800 * sim.Millisecond, 1600 * sim.Millisecond,
		}
	}
	seeds := cfg.pick(6, 2)
	horizon := sim.Time(cfg.pick(120, 30)) * sim.Second

	kinds := []struct {
		name string
		kind core.ClockKind
	}{
		{"strobe-vector", core.VectorStrobe},
		{"strobe-scalar", core.ScalarStrobe},
		{"physical(ε=1ms)", core.PhysicalReport},
	}

	// Flatten the delta × kind × seed sweep into one indexed job list so
	// every replication fans out; aggregation walks the results in job
	// order, keeping the table byte-identical at any parallelism.
	type job struct {
		delta sim.Duration
		kind  core.ClockKind
		seed  uint64
	}
	var jobs []job
	for _, delta := range deltas {
		for _, k := range kinds {
			for s := 0; s < seeds; s++ {
				jobs = append(jobs, job{delta, k.kind, cfg.Seed + uint64(s)})
			}
		}
	}
	results := runner.Map(cfg.Parallelism, len(jobs), func(i int) stats.Confusion {
		j := jobs[i]
		pw := pulseWorkload{
			N: 6, K: 4,
			MeanHigh: 300 * sim.Millisecond, MeanLow: 500 * sim.Millisecond,
			Kind:    j.kind,
			Delay:   sim.NewDeltaBounded(j.delta),
			Horizon: horizon,
			Faults:  cfg.Faults,
		}
		if j.kind == core.PhysicalReport {
			pw.Epsilon = sim.Millisecond
		}
		return pw.run(j.seed).Confusion
	})
	i := 0
	for _, delta := range deltas {
		for _, k := range kinds {
			var agg stats.Confusion
			for s := 0; s < seeds; s++ {
				agg.Add(results[i])
				i++
			}
			t.AddRow(delta, k.name,
				agg.Recall(), agg.Precision(), agg.FN, agg.FP,
				agg.FP-agg.BorderlineFP, agg.BorderlineCoverage())
		}
	}
	t.Notes = append(t.Notes,
		"workload: 6 togglers, mean high 300ms / low 500ms; predicate sum(p) >= 4",
		"expected shape: recall falls as Δ grows; vector FP-unflagged ≈ 0; scalar FP-unflagged > 0 at large Δ")
	return t
}
