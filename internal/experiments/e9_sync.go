package experiments

import (
	"fmt"

	"pervasive/internal/clocksync"
	"pervasive/internal/runner"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

// E9ClockSyncCost quantifies §3.3's limitations of the physically
// synchronized clock option: the service achieves ε of µs–ms but "does not
// come for free" (messages/energy), leaves a residual skew, and reopens
// with drift — which is what makes strobe clocks attractive when the event
// rate is low.
func E9ClockSyncCost(cfg RunConfig) *Table {
	t := &Table{
		ID:    "E9",
		Title: "physical clock synchronization: achieved ε vs message cost",
		Claim: "\"This service does not come for free to the application; the lower layers " +
			"pay the cost … skews of the order of microsecs to millisecs\" (§3.2.1.a(ii), §3.3, [35])",
		Header: []string{"protocol", "n", "ε now", "mean|skew|", "ε after 60s drift",
			"messages", "bytes"},
	}
	sizes := []int{16, 64}
	if cfg.Quick {
		sizes = []int{16}
	}
	seeds := cfg.pick(10, 3)

	protos := []struct {
		name string
		run  func(clocksync.Config) clocksync.Result
	}{
		{"unsynced", clocksync.Unsynced},
		{"RBS", clocksync.RBS},
		{"TPSN", clocksync.TPSN},
		{"on-demand", clocksync.OnDemand},
	}
	results := runner.Map(cfg.Parallelism, len(sizes)*len(protos)*seeds,
		func(i int) clocksync.Result {
			n := sizes[i/(len(protos)*seeds)]
			p := protos[i/seeds%len(protos)]
			return p.run(clocksync.Config{
				N: n, Seed: cfg.Seed + uint64(i%seeds),
				MaxOffset: 100 * sim.Millisecond,
				DriftPPM:  50,
				JitterStd: 20 * sim.Microsecond,
				MinDelay:  sim.Millisecond, MaxDelay: 3 * sim.Millisecond,
				Rounds: 8,
			})
		})
	i := 0
	for _, n := range sizes {
		for _, p := range protos {
			var eps, mean, after stats.Online
			var msgs, bytes int64
			for s := 0; s < seeds; s++ {
				res := results[i]
				i++
				eps.Add(float64(res.Eps))
				mean.Add(res.MeanAbsErr)
				after.Add(float64(res.EpsAfter))
				msgs += res.Messages
				bytes += res.Bytes
			}
			t.AddRow(p.name, n,
				sim.Duration(eps.Mean()).String(),
				fmt.Sprintf("%.0fµs", mean.Mean()),
				sim.Duration(after.Mean()).String(),
				msgs/int64(seeds), bytes/int64(seeds))
		}
	}
	t.Notes = append(t.Notes,
		"hardware clocks: offsets ≤100ms, drift ±50ppm, 20µs receive jitter, 1–3ms links",
		"expected shape: ε(RBS) < ε(TPSN) ≪ ε(unsynced); all protocols cost messages; drift reopens ε within one validity window")
	return t
}
