package experiments

import (
	"fmt"

	"pervasive/internal/predicate"
	"pervasive/internal/runner"
	"pervasive/internal/scenario"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

// E6DefinitelyUnderDelay reproduces the simulation result the paper cites
// from Huang et al. [17] (§3.3): detecting Definitely(φ) for a conjunctive
// φ in a realistic smart-office model, "despite increasing the average
// message delay over a wide range, the probability of correct detection is
// quite high".
func E6DefinitelyUnderDelay(cfg RunConfig) *Table {
	t := &Table{
		ID:    "E6",
		Title: "Definitely(φ) detection probability vs mean message delay (smart office)",
		Claim: "\"despite increasing the average message delay over a wide range, the " +
			"probability of correct detection is quite high\" (§3.3, citing [17])",
		Header: []string{"mean delay", "×base", "true occurrences", "detected", "P(detect)"},
	}
	base := 25 * sim.Millisecond
	multipliers := []int{1, 4, 16, 64}
	if !cfg.Quick {
		multipliers = []int{1, 2, 4, 8, 16, 32, 64}
	}
	seeds := cfg.pick(6, 2)

	results := runner.Map(cfg.Parallelism, len(multipliers)*seeds, func(i int) stats.Confusion {
		delta := base * sim.Duration(multipliers[i/seeds])
		of := scenario.NewOffice(scenario.OfficeConfig{
			Seed: cfg.Seed + uint64(i%seeds), Rooms: 1,
			Modality: predicate.Definitely,
			Delay:    sim.NewDeltaBounded(delta),
			Horizon:  sim.Time(cfg.pick(300, 60)) * sim.Second,
			// Long dwell times: human-scale context changes.
			MeanOccupied: 10 * sim.Second, MeanEmpty: 5 * sim.Second,
			MeanTempStep: sim.Second,
		})
		return of.Run().Confusion
	})
	for mi, m := range multipliers {
		delta := base * sim.Duration(m)
		var agg stats.Confusion
		for s := 0; s < seeds; s++ {
			agg.Add(results[mi*seeds+s])
		}
		t.AddRow(delta, fmt.Sprintf("×%d", m),
			agg.TP+agg.FN, agg.TP, agg.Recall())
	}
	t.Notes = append(t.Notes,
		"predicate: motion==1 ∧ temp>30 in one room (χ of §3.1.2.a); modality Definitely",
		"expected shape: P(detect) stays well above 0.5 across the whole sweep")
	return t
}
