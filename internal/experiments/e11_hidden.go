package experiments

import (
	"fmt"

	"pervasive/internal/clock"
	"pervasive/internal/core"
	"pervasive/internal/predicate"
	"pervasive/internal/runner"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
	"pervasive/internal/world"
)

// E11HiddenChannels reproduces §4.1's central argument: the network plane
// cannot track world-plane causality because it cannot observe the covert
// channels of ⟨O,C⟩. World events are chained through covert rules with a
// configurable delay d; the network plane stamps every sensed event with
// strobe vector clocks. A causal pair (cause → effect) is "recovered" when
// the network-plane stamps order it; this happens only when the cause's
// strobe reaches the effect's sensor before the effect fires — i.e. only
// when d exceeds the network delay, and then only by the accident of
// strobe timing, not by semantics.
func E11HiddenChannels(cfg RunConfig) *Table {
	const delta = 200 * sim.Millisecond
	t := &Table{
		ID:    "E11",
		Title: "world-plane causal pairs recovered by network-plane clocks (Δ=200ms)",
		Claim: "\"presently, technology does not allow tracking of the hidden channels and " +
			"causality chains in the general case … we cannot always determine concurrency " +
			"among world plane events\" (§4.1)",
		Header: []string{"covert delay", "delay/Δ", "causal pairs", "recovered",
			"fraction", "inverted"},
	}
	ratios := []float64{0.1, 0.5, 1, 2, 10}
	if cfg.Quick {
		ratios = []float64{0.1, 1, 10}
	}
	seeds := cfg.pick(5, 2)

	perRun := runner.Map(cfg.Parallelism, len(ratios)*seeds, func(i int) [3]int64 {
		d := sim.Duration(ratios[i/seeds] * float64(delta))
		p, r, inv := hiddenChannelRun(cfg.Seed+uint64(i%seeds), delta, d,
			sim.Time(cfg.pick(60, 20))*sim.Second)
		return [3]int64{p, r, inv}
	})
	for ri, rv := range ratios {
		d := sim.Duration(rv * float64(delta))
		var pairs, recovered, inverted int64
		for s := 0; s < seeds; s++ {
			c := perRun[ri*seeds+s]
			pairs += c[0]
			recovered += c[1]
			inverted += c[2]
		}
		t.AddRow(d, fmt.Sprintf("%.1f", rv), pairs, recovered,
			ratio(recovered, pairs), inverted)
	}
	t.Notes = append(t.Notes,
		"recovered: strobe stamps order cause before effect; inverted: stamps order effect before cause (never happens — strobes cannot travel back in time); the remainder are seen as concurrent",
		"expected shape: fraction ≈ 0 for covert delays ≪ Δ, rising toward 1 only when the world is slower than the network — and even then the order is accidental, not semantic (§4.2)")
	return t
}

// hiddenChannelRun builds a 4-sensor world with a covert causal chain and
// returns (causal pairs, recovered, inverted).
func hiddenChannelRun(seed uint64, delta, covertDelay sim.Duration, horizon sim.Time) (pairs, recovered, inverted int64) {
	const n = 4
	h := core.NewHarness(core.HarnessConfig{
		Seed: seed, N: n, Kind: core.VectorStrobe,
		Delay:    sim.NewDeltaBounded(delta),
		Pred:     predicate.MustParse("sum(v) >= 0"), // detection irrelevant here
		Modality: predicate.Instantaneously,
		Horizon:  horizon, LogStamps: true,
	})
	objs := make([]int, n)
	for i := 0; i < n; i++ {
		objs[i] = h.World.AddObject(fmt.Sprintf("obj-%d", i), nil)
		h.Bind(i, objs[i], "v", "v")
		h.Sensors[i].LogStamps = true
	}
	// Spontaneous activity at object 0 drives covert chains around the
	// ring: obj0 → obj1 → obj2 → obj3.
	world.RandomWalk{Obj: objs[0], Attr: "v", Step: 1,
		MeanGap: 2 * sim.Second}.Install(h.World, horizon)
	for i := 0; i < n-1; i++ {
		h.World.AddCovertRule(world.CovertRule{
			SrcObj: objs[i], SrcAttr: "v",
			DstObj: objs[i+1], DstAttr: "v",
			Prob:  0.8,
			Delay: stats.Constant{V: float64(covertDelay)},
		})
	}
	h.Run()

	// Map each world event to its sensor stamp: object i's k-th event is
	// sensor i's k-th sense event.
	log := h.World.Log()
	perObj := make([]int, n)
	stampOf := make([]clock.Vector, len(log))
	for _, ev := range log {
		i := ev.Object
		k := perObj[i]
		perObj[i]++
		if k < len(h.Sensors[i].Stamps) {
			stampOf[ev.Seq] = h.Sensors[i].Stamps[k]
		}
	}
	for _, pair := range world.CausalPairs(log, false) {
		cs, es := stampOf[pair[0]], stampOf[pair[1]]
		if cs == nil || es == nil {
			continue
		}
		pairs++
		switch cs.Compare(es) {
		case clock.Before:
			recovered++
		case clock.After:
			inverted++
		}
	}
	return pairs, recovered, inverted
}
