package experiments

import (
	"fmt"

	"pervasive/internal/clock"
	"pervasive/internal/core"
	"pervasive/internal/faults"
	"pervasive/internal/network"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
	"pervasive/internal/workload"
)

// clockVector keeps trimExecution's signature readable.
type clockVector = clock.Vector

// pulseWorkload builds the standard racy workload used across
// experiments: n sensors, each watching a toggling boolean attribute, and
// the global predicate "at least k of n are up". Thresholded counts flip
// often and race whenever two sensors toggle within Δ of each other —
// exactly the regime Section 3.3 analyses.
type pulseWorkload struct {
	N         int
	K         int
	MeanHigh  sim.Duration
	MeanLow   sim.Duration
	Kind      core.ClockKind
	Delay     sim.DelayModel
	Epsilon   sim.Duration
	Horizon   sim.Time
	LogStamps bool
	Topo      network.Topology
	Flood     bool
	Faults    *faults.Plan
	// Source overrides the default toggler fleet (E16's generator sweep);
	// the seed passed to build is ignored for the workload when set.
	Source func(seed uint64) workload.Source
}

func (pw pulseWorkload) pred() predicate.Cond {
	return predicate.MustParse(fmt.Sprintf("sum(p) >= %d", pw.K))
}

// build wires the harness; the caller runs it.
func (pw pulseWorkload) build(seed uint64) *core.Harness {
	h := core.NewHarness(core.HarnessConfig{
		Seed: seed, N: pw.N, Kind: pw.Kind, Delay: pw.Delay,
		Pred: pw.pred(), Modality: predicate.Instantaneously,
		Epsilon: pw.Epsilon, Horizon: pw.Horizon, LogStamps: pw.LogStamps,
		Topo: pw.Topo, Flood: pw.Flood, Faults: pw.Faults,
	})
	for i := 0; i < pw.N; i++ {
		obj := h.World.AddObject(fmt.Sprintf("obj-%d", i), nil)
		h.Bind(i, obj, "p", "p")
	}
	// The toggler fleet is a materialized workload.Source: the same
	// stream discipline at any engine, recordable, and swappable for the
	// statistical generators E16 sweeps.
	var src workload.Source
	if pw.Source != nil {
		src = pw.Source(seed)
	} else {
		src = workload.TogglerFleet{
			Seed: workload.DeriveSeed(seed, 0x2), N: pw.N, Attr: "p",
			MeanHigh: pw.MeanHigh, MeanLow: pw.MeanLow,
		}
	}
	workload.Install(h.Eng, h.World, src.Events(pw.Horizon))
	if pw.LogStamps {
		for _, s := range h.Sensors {
			s.LogStamps = true
		}
	}
	return h
}

func (pw pulseWorkload) run(seed uint64) core.Results {
	return pw.build(seed).Run()
}

// runSeeds runs the workload at seeds base..base+n-1 across cfg's worker
// pool, returning results in seed order. A cfg-level fault plan (the
// CLI's -faults flag) applies unless the workload carries its own.
func (pw pulseWorkload) runSeeds(cfg RunConfig, n int) []core.Results {
	if pw.Faults == nil {
		pw.Faults = cfg.Faults
	}
	return core.RunMany(cfg.Parallelism, n, func(s int) *core.Harness {
		return pw.build(cfg.Seed + uint64(s))
	})
}

// trimExecution cuts every process's stamp sequence to its first p events
// and clamps stamp components to the kept prefix lengths (an event that
// knew more than p events of a peer knows "all kept ones" in the trimmed
// execution). Without clamping, dangling references would make valid cuts
// look inconsistent.
func trimExecution(stamps [][]clockVector, times [][]sim.Time, p int) bool {
	for i := range stamps {
		if len(stamps[i]) < p {
			return false
		}
		stamps[i] = stamps[i][:p]
		times[i] = times[i][:p]
	}
	for i := range stamps {
		for _, v := range stamps[i] {
			for j := range v {
				if j < len(stamps) && v[j] > uint64(p) {
					v[j] = uint64(p) //lint:allow clockrule(offline trimming of recorded stamps to a prefix workload, not live protocol state)
				}
			}
		}
	}
	return true
}

// fmtDelta renders a delay model compactly for table rows.
func fmtDelta(d sim.DelayModel) string {
	if d == nil {
		return "-"
	}
	b := d.Bound()
	if b == sim.Never {
		return "unbounded"
	}
	return b.String()
}

// ratio formats a/b defensively.
func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
