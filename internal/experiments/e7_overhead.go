package experiments

import (
	"pervasive/internal/core"
	"pervasive/internal/runner"
	"pervasive/internal/sim"
)

// E7MessageOverhead reproduces the cost model of §4.2.2–4.2.3: a scalar
// strobe carries O(1) state while a vector strobe carries O(n); both
// protocols broadcast once per relevant event; the physical-clock design
// sends one direct report per event but requires the synchronization
// service (costed separately in E9).
func E7MessageOverhead(cfg RunConfig) *Table {
	t := &Table{
		ID:    "E7",
		Title: "control-traffic cost per sensed event vs fleet size",
		Claim: "\"It is weaker than the strobe vector clock but is lightweight (strobe size " +
			"is O(1), not O(n))\" (§4.2.2); strobes are broadcast at each relevant event " +
			"(§4.2.3 item 4)",
		Header: []string{"n", "detector", "events", "link msgs", "bytes",
			"bytes/event", "msgs/event"},
	}
	sizes := []int{4, 8, 16, 32, 64}
	if cfg.Quick {
		sizes = []int{4, 16}
	}

	kinds := []struct {
		name string
		kind core.ClockKind
	}{
		{"strobe-scalar", core.ScalarStrobe},
		{"strobe-vector", core.VectorStrobe},
		{"strobe-diff-vector", core.DiffVectorStrobe},
		{"physical-report", core.PhysicalReport},
	}
	type outcome struct {
		events, sent, bytes int64
	}
	outcomes := runner.Map(cfg.Parallelism, len(sizes)*len(kinds), func(i int) outcome {
		n := sizes[i/len(kinds)]
		k := kinds[i%len(kinds)]
		pw := pulseWorkload{
			N: n, K: n/2 + 1,
			MeanHigh: 300 * sim.Millisecond, MeanLow: 300 * sim.Millisecond,
			Kind: k.kind, Delay: sim.NewDeltaBounded(20 * sim.Millisecond),
			Epsilon: sim.Millisecond,
			Horizon: sim.Time(cfg.pick(20, 5)) * sim.Second,
			Faults:  cfg.Faults,
		}
		h := pw.build(cfg.Seed)
		res := h.Run()
		return outcome{
			events: int64(len(h.World.Log())),
			sent:   res.Net.Sent, bytes: res.Net.Bytes,
		}
	})
	for ni, n := range sizes {
		for ki, k := range kinds {
			o := outcomes[ni*len(kinds)+ki]
			t.AddRow(n, k.name, o.events, o.sent, o.bytes,
				ratio(o.bytes, o.events), ratio(o.sent, o.events))
		}
	}
	t.Notes = append(t.Notes,
		"same seed → identical world workload across detectors for each n",
		"expected shape: bytes/event grows ~linearly in n for vectors (O(n) stamp × n receivers ⇒ ~n²·8B), "+
			"~linearly for scalars (O(1) stamp × n receivers), and stays O(1) for physical reports (unicast); "+
			"differential vectors sit between scalars and vectors, tracking how much actually changed")
	return t
}
