package experiments

import (
	"pervasive/internal/core"
	"pervasive/internal/runner"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

func init() {
	Ablations = append(Ablations, Experiment{
		"A7", "replicated in-network checkers: view divergence vs Δ",
		A7DistributedCheckers,
	})
}

// A7DistributedCheckers replaces the distinguished root P0 with a checker
// replica at every sensor — possible because strobes are system-wide
// broadcasts. Each replica sees the same strobes in its own arrival
// order, so replica views of the predicate diverge transiently; the
// divergence is the fraction of time two replicas disagree, and it should
// scale with Δ and vanish at Δ=0.
func A7DistributedCheckers(cfg RunConfig) *Table {
	t := &Table{
		ID:     "A7",
		Title:  "view divergence between replicated checkers vs Δ",
		Claim:  "extension of §2.1's 'common configuration': detection without a distinguished P0",
		Header: []string{"Δ", "mean pairwise divergence", "max", "vs-P0 divergence", "recall(replica0)"},
	}
	deltas := []sim.Duration{0, 20 * sim.Millisecond, 100 * sim.Millisecond,
		500 * sim.Millisecond}
	if cfg.Quick {
		deltas = []sim.Duration{0, 100 * sim.Millisecond}
	}
	seeds := cfg.pick(5, 2)

	type outcome struct {
		pair, vsP0 []float64
		conf       stats.Confusion
	}
	outcomes := runner.Map(cfg.Parallelism, len(deltas)*seeds, func(i int) outcome {
		delta := deltas[i/seeds]
		s := i % seeds
		var delay sim.DelayModel = sim.Synchronous{}
		if delta > 0 {
			delay = sim.NewDeltaBounded(delta)
		}
		pw := pulseWorkload{
			N: 4, K: 3,
			MeanHigh: 400 * sim.Millisecond, MeanLow: 600 * sim.Millisecond,
			Kind: core.VectorStrobe, Delay: delay,
			Horizon: sim.Time(cfg.pick(40, 15)) * sim.Second,
			Faults:  cfg.Faults,
		}
		h := pw.build(cfg.Seed + uint64(s))
		// Attach a replica to every sensor.
		replicas := make([]*core.StrobeChecker, pw.N)
		for i, sn := range h.Sensors {
			replicas[i] = core.NewVectorChecker(pw.N, pw.pred())
			sn.Local = replicas[i]
		}
		res := h.Run()
		horizon := res.Horizon
		for _, r := range replicas {
			r.Finish(horizon)
		}
		var o outcome
		for i := 0; i < pw.N; i++ {
			for j := i + 1; j < pw.N; j++ {
				o.pair = append(o.pair, core.Divergence(replicas[i].Occurrences(),
					replicas[j].Occurrences(), horizon))
			}
			o.vsP0 = append(o.vsP0, core.Divergence(replicas[i].Occurrences(),
				res.Occurrences, horizon))
		}
		// Score replica 0 against ground truth like any detector.
		o.conf = core.Score(replicas[0].Occurrences(), res.Truth, nil,
			h.Cfg.Tol, horizon)
		return o
	})
	for di, delta := range deltas {
		var pair, worst, vsP0 stats.Online
		var agg stats.Confusion
		for s := 0; s < seeds; s++ {
			o := outcomes[di*seeds+s]
			for _, d := range o.pair {
				pair.Add(d)
				worst.Add(d)
			}
			for _, d := range o.vsP0 {
				vsP0.Add(d)
			}
			agg.Add(o.conf)
		}
		t.AddRow(fmtDelta(sim.NewDeltaBounded(delta)), pair.Mean(), worst.Max(),
			vsP0.Mean(), agg.Recall())
	}
	t.Notes = append(t.Notes,
		"expected shape: divergence ≈ 0 at Δ=0 and grows ~linearly with Δ (disagreement windows are O(Δ) per flip)",
		"replica accuracy matches the central checker: in-network detection costs consistency, not correctness")
	return t
}
