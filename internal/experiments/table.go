// Package experiments regenerates every quantitative claim of the paper
// as a numbered experiment (E1–E15; see DESIGN.md for the claim-to-
// experiment mapping). Each experiment is a pure function from a run
// configuration to a printable table; cmd/experiments and the root
// benchmark suite share these implementations.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"pervasive/internal/faults"
)

// Table is one experiment's result, rendered as an aligned text table.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper sentence being reproduced
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of cells, formatting each with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table in aligned text form.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, cell)
		}
		fmt.Fprintln(w, " ", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// RunConfig controls an experiment run. Quick shrinks sweeps and seed
// counts so benchmarks and tests stay fast; full runs are the defaults
// used by cmd/experiments.
type RunConfig struct {
	Seed  uint64
	Quick bool
	// Parallelism fans the independent (seed, sweep-point) replications
	// of each experiment across a bounded worker pool: values above 1 are
	// worker counts, 0 and 1 run replications inline. Results are
	// collected by replication index and aggregated in that order, so the
	// rendered table is byte-identical at every setting — parallelism is
	// purely a wall-clock knob. Randomness shared across replications
	// (E2's clock fleets, A4's workload draws) is pre-drawn sequentially
	// before the fan-out, preserving exact sequential output.
	Parallelism int
	// Faults, when non-nil, installs this fault plan into every
	// pulse-workload harness that does not define its own (the CLI's
	// -faults flag). Experiments that sweep fault plans themselves (E13)
	// ignore it.
	Faults *faults.Plan
	// Timing fills measured wall-clock columns in the tables that have
	// them (E14). Off by default: those cells render "-" so tables stay
	// byte-identical run to run and across worker counts, which is what
	// the determinism regression compares.
	Timing bool
}

// pick returns quick when cfg.Quick, else full.
func (c RunConfig) pick(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Experiment couples an ID with its runner.
type Experiment struct {
	ID   string
	Name string
	Run  func(cfg RunConfig) *Table
}

// All lists the experiments in order.
var All = []Experiment{
	{"E1", "strobe detection accuracy vs Δ", E1StrobeAccuracy},
	{"E2", "physical-clock false negatives below the skew bound", E2TwoEpsilon},
	{"E3", "slim lattice postulate", E3SlimLattice},
	{"E4", "scalar ≡ vector strobes at Δ=0", E4ScalarVectorEquivalence},
	{"E5", "exhibition hall borderline bin", E5ExhibitionHall},
	{"E6", "Definitely(φ) under growing delay", E6DefinitelyUnderDelay},
	{"E7", "strobe message overhead O(1) vs O(n)", E7MessageOverhead},
	{"E8", "loss localization", E8LossLocalization},
	{"E9", "clock synchronization cost and accuracy", E9ClockSyncCost},
	{"E10", "every-occurrence vs detect-once", E10EveryOccurrence},
	{"E11", "hidden channels defeat causality tracking", E11HiddenChannels},
	{"E12", "strobes as causal clocks inject false causality", E12FalseCausality},
	{"E13", "crash/recovery churn sweep", E13CrashChurn},
	{"E14", "sharded-engine scale sweep", E14ScaleSweep},
	{"E15", "checker-tree fan-out sweep", E15CheckerTree},
	{"E16", "statistical generator sweep (burstiness, diurnal phase)", E16GeneratorSweep},
}

// ByID finds an experiment or ablation by its ID (case-insensitive).
func ByID(id string) (Experiment, bool) {
	for _, e := range All {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	for _, e := range Ablations {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}
