package experiments

import (
	"fmt"

	"pervasive/internal/core"
	"pervasive/internal/runner"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
	"pervasive/internal/workload"
)

// E16GeneratorSweep drives the detection harness with the statistical
// workload generators (internal/workload) instead of flat togglers:
// heavy-tailed Pareto bursts swept over the tail exponent α, and
// multi-period diurnal load swept over its phase. Burstier load packs
// pulses into dense runs that race inside the Δ window (the FP/FN mix
// and the borderline bin shift with the tail exponent);
// diurnal phase shifts where in the cycle the k-of-n overlaps happen
// without changing the marginal rate much — the scenario-diversity axis
// ROADMAP item 3 opens.
//
// Every cell materializes its workload from seed-derived generator
// streams inside the worker, so the table doubles as the generator-
// determinism regression: byte-identical output at any parallelism
// proves same seed → same trace at any -p.
func E16GeneratorSweep(cfg RunConfig) *Table {
	t := &Table{
		ID:    "E16",
		Title: "statistical generator sweep: recall vs burstiness and diurnal phase (n=6, k=4)",
		Claim: "\"Δ may be adequate when the rate of occurrence of sensed events is " +
			"comparatively low\" (§3.3) — production-shaped load concentrates events, " +
			"so the adequate-Δ regime depends on workload shape, not just mean rate",
		Header: []string{"workload", "param", "ev/s", "recall", "precision", "FN", "FP", "border-cov"},
	}

	const nSensors = 6
	seeds := cfg.pick(6, 2)
	horizon := sim.Time(cfg.pick(120, 30)) * sim.Second

	// fleet builds one generator per sensor with seed-derived streams.
	fleet := func(seed uint64, mk func(obj int, genSeed uint64) workload.Source) workload.Source {
		srcs := make([]workload.Source, nSensors)
		for obj := range srcs {
			srcs[obj] = mk(obj, workload.DeriveSeed(seed, uint64(obj)))
		}
		return workload.Combine(srcs...)
	}

	type cell struct {
		name, param string
		src         func(seed uint64) workload.Source
	}
	var cells []cell
	alphas := []float64{2.5, 1.6, 1.2, 0.9}
	if cfg.Quick {
		alphas = []float64{2.5, 1.2}
	}
	for _, alpha := range alphas {
		alpha := alpha
		cells = append(cells, cell{
			name: "pareto", param: fmt.Sprintf("α=%.1f", alpha),
			src: func(seed uint64) workload.Source {
				return fleet(seed, func(obj int, genSeed uint64) workload.Source {
					return workload.ParetoBursts{
						Seed: genSeed, Obj: obj, Attr: "p",
						MeanBurstGap: 1500 * sim.Millisecond,
						Xm:           1.5, Alpha: alpha,
						PulseGap: 60 * sim.Millisecond,
						Width:    250 * sim.Millisecond,
					}
				})
			},
		})
	}
	phases := []float64{0, 1.57, 3.14}
	if cfg.Quick {
		phases = []float64{0, 3.14}
	}
	for _, phase := range phases {
		phase := phase
		cells = append(cells, cell{
			name: "diurnal", param: fmt.Sprintf("φ=%.2f", phase),
			src: func(seed uint64) workload.Source {
				return fleet(seed, func(obj int, genSeed uint64) workload.Source {
					return workload.Diurnal{
						Seed: genSeed, Obj: obj, Attr: "p",
						MeanGap: 500 * sim.Millisecond, Amp: 0.9,
						Period: 20 * sim.Second, Harmonics: 3, Phase: phase,
						Width: 300 * sim.Millisecond,
					}
				})
			},
		})
	}

	type out struct {
		conf   stats.Confusion
		events int
	}
	type job struct {
		cell int
		seed uint64
	}
	var jobs []job
	for c := range cells {
		for s := 0; s < seeds; s++ {
			jobs = append(jobs, job{c, cfg.Seed + uint64(s)})
		}
	}
	results := runner.Map(cfg.Parallelism, len(jobs), func(i int) out {
		j := jobs[i]
		src := cells[j.cell].src(j.seed)
		pw := pulseWorkload{
			N: nSensors, K: 4,
			Kind:    core.VectorStrobe,
			Delay:   sim.NewDeltaBounded(50 * sim.Millisecond),
			Horizon: horizon,
			Faults:  cfg.Faults,
			Source:  func(uint64) workload.Source { return src },
		}
		return out{
			conf:   pw.run(j.seed).Confusion,
			events: len(src.Events(horizon)),
		}
	})
	i := 0
	for _, cl := range cells {
		var agg stats.Confusion
		events := 0
		for s := 0; s < seeds; s++ {
			agg.Add(results[i].conf)
			events += results[i].events
			i++
		}
		evPerSec := float64(events) / float64(seeds) / (float64(horizon) / float64(sim.Second))
		t.AddRow(cl.name, cl.param, evPerSec,
			agg.Recall(), agg.Precision(), agg.FN, agg.FP, agg.BorderlineCoverage())
	}
	t.Notes = append(t.Notes,
		"workload: 6 per-sensor generator streams (seed-derived), predicate sum(p) >= 4, Δ=50ms",
		"heavier tails (smaller α) concentrate pulses into fewer, longer bursts, shifting the FP/FN mix and the borderline bin; diurnal rows run ~2x the event rate and pay ~5x the absolute errors at the same Δ",
		"each cell re-materializes its generators inside the worker, so parallelism byte-identity doubles as the generator-determinism check")
	return t
}
