package experiments

import "testing"

func TestAllAblationsRunQuick(t *testing.T) {
	for _, e := range Ablations {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl := e.Run(quick())
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Fatalf("row width mismatch: %v", row)
				}
			}
		})
	}
}

func TestAblationsInByID(t *testing.T) {
	if _, ok := ByID("a4"); !ok {
		t.Fatal("ablation lookup failed")
	}
	if len(AllWithAblations()) != len(All)+len(Ablations) {
		t.Fatal("combined registry size wrong")
	}
}

func TestA1Shape(t *testing.T) {
	tbl := A1BorderlinePolicy(quick())
	posRecall := cell(t, tbl, 0, 1)
	negRecall := cell(t, tbl, 1, 1)
	posPrec := cell(t, tbl, 0, 2)
	negPrec := cell(t, tbl, 1, 2)
	if posRecall < negRecall {
		t.Fatalf("positive policy should maximize recall: %.3f vs %.3f", posRecall, negRecall)
	}
	if negPrec < posPrec {
		t.Fatalf("negative policy should maximize precision: %.3f vs %.3f", negPrec, posPrec)
	}
}

func TestA2Shape(t *testing.T) {
	tbl := A2RaceCriterion(quick())
	fourFlag := cell(t, tbl, 0, 3)
	naiveFlag := cell(t, tbl, 1, 3)
	if naiveFlag < fourFlag {
		t.Fatalf("naive criterion should flag at least as much: %.3f vs %.3f",
			naiveFlag, fourFlag)
	}
	if cell(t, tbl, 1, 4) < cell(t, tbl, 0, 4) {
		t.Fatalf("naive criterion should flag more correct detections: %v", tbl.Rows)
	}
}

func TestA3Shape(t *testing.T) {
	tbl := A3BroadcastStrategy(quick())
	directMsgs := cell(t, tbl, 0, 1)
	floodMsgs := cell(t, tbl, 1, 1)
	if floodMsgs <= directMsgs {
		t.Fatalf("flooding should cost more transmissions: %v vs %v", floodMsgs, directMsgs)
	}
}

func TestA4Shape(t *testing.T) {
	tbl := A4DiffCompression(quick())
	// Find uniform n=32 and hot-spot-90% n=32 rows.
	var uniform, hot float64
	for i, row := range tbl.Rows {
		if row[1] == "32" {
			switch row[0] {
			case "uniform":
				uniform = cell(t, tbl, i, 5)
			case "hot-spot 90%":
				hot = cell(t, tbl, i, 5)
			}
		}
	}
	if uniform == 0 || hot == 0 {
		t.Fatalf("rows missing: %v", tbl.Rows)
	}
	if hot >= uniform {
		t.Fatalf("skew should compress better: hot %.3f uniform %.3f", hot, uniform)
	}
	if hot > 0.5 {
		t.Fatalf("hot-spot compression too weak: %.3f", hot)
	}
}

func TestA5Shape(t *testing.T) {
	tbl := A5PhysicalSlack(quick())
	smallSlackReordered := cell(t, tbl, 0, 1)
	bigSlackReordered := cell(t, tbl, len(tbl.Rows)-1, 1)
	if smallSlackReordered <= bigSlackReordered {
		t.Fatalf("tiny slack should reorder more: %v vs %v",
			smallSlackReordered, bigSlackReordered)
	}
	if bigSlackReordered != 0 {
		t.Fatalf("slack above Δ should eliminate reordering: %v", bigSlackReordered)
	}
}

func TestA6Shape(t *testing.T) {
	tbl := A6DutyCycle(quick())
	// Rows alternate free-running/beacon-sync per drift; the last pair is
	// the highest drift.
	n := len(tbl.Rows)
	free := cell(t, tbl, n-2, 2)
	sync := cell(t, tbl, n-1, 2)
	if sync <= free {
		t.Fatalf("sync should beat free-running under drift: %.3f vs %.3f", sync, free)
	}
	if sync < 0.9 {
		t.Fatalf("beacon sync overlap too low: %.3f", sync)
	}
	// Sync costs some awake time (scans + beacons are heard awake).
	if cell(t, tbl, n-1, 3) < cell(t, tbl, n-2, 3) {
		t.Fatalf("sync should not reduce awake fraction: %v", tbl.Rows)
	}
}

func TestA7Shape(t *testing.T) {
	tbl := A7DistributedCheckers(quick())
	zero := cell(t, tbl, 0, 1)
	big := cell(t, tbl, len(tbl.Rows)-1, 1)
	if zero > 0.001 {
		t.Fatalf("Δ=0 replicas should agree almost always: divergence %.4f", zero)
	}
	if big <= zero {
		t.Fatalf("divergence should grow with Δ: %.4f vs %.4f", big, zero)
	}
	if r := cell(t, tbl, len(tbl.Rows)-1, 4); r < 0.7 {
		t.Fatalf("replica recall collapsed: %.3f", r)
	}
}
