package experiments

import "testing"

// The parallel runner's whole contract is that parallelism is invisible
// in the output: tables rendered at any worker count must be
// byte-identical to the sequential run. E1 exercises the plain
// flatten-and-aggregate pattern; A4 exercises the pre-drawn shared-RNG
// pattern (one stream feeding every sweep cell); E13 exercises per-job
// derived randomness (each job draws its own fault plan from a
// seed-derived RNG inside the worker). E14 exercises the sharded engine:
// its cells differ in shard count and carry their own internal digest
// check, so byte-identity here proves the whole (p, shards, parallelism)
// cube renders one table. E15 exercises the checker tree: its cells
// differ in fan-out and carry a digest check against the flat-checker
// baseline, so byte-identity here pins tree detection across both
// parallelism and fan-out. E16 exercises the statistical workload
// generators: each cell materializes its generator streams inside the
// worker, so byte-identity here is the generator-determinism regression
// (same seed → same trace at any worker count).
func TestTablesByteIdenticalAcrossParallelism(t *testing.T) {
	cases := []struct {
		name string
		run  func(RunConfig) *Table
	}{
		{"E1", E1StrobeAccuracy},
		{"A4", A4DiffCompression},
		{"E13", E13CrashChurn},
		{"E14", E14ScaleSweep},
		{"E15", E15CheckerTree},
		{"E16", E16GeneratorSweep},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := RunConfig{Seed: 1, Quick: true, Parallelism: 1}
			want := tc.run(base).String()
			for _, par := range []int{2, 8} {
				cfg := base
				cfg.Parallelism = par
				if got := tc.run(cfg).String(); got != want {
					t.Errorf("parallelism %d: table diverges from sequential\n--- p=1 ---\n%s--- p=%d ---\n%s",
						par, want, par, got)
				}
			}
		})
	}
}
