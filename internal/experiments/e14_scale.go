package experiments

import (
	"fmt"
	"strings"
	"time"

	"pervasive/internal/clock"
	"pervasive/internal/core"
	"pervasive/internal/runner"
	"pervasive/internal/sim"
)

// E14ScaleSweep measures the spatially-sharded engine across fleet size ×
// shard count: wall-clock (behind RunConfig.Timing), resident clock-state
// bytes, detection recall on the pilot predicate, epochs and cross-shard
// traffic. Every (p, shards) cell runs the identical seeded scenario; the
// "same" column checks the cell's full counter digest against the p's S=1
// baseline, so the table doubles as a determinism regression at scale.
// All reported columns are derived from simulation state, never from the
// host clock, so the rendered table is byte-identical at any Parallelism
// and on any machine (with Timing off).
func E14ScaleSweep(cfg RunConfig) *Table {
	t := &Table{
		ID:    "E14",
		Title: "sharded engine at scale: fleet size × shard count",
		Claim: "a single simulated deployment scales to 10⁴+ sensors when the kernel " +
			"shards spatially under conservative lookahead and per-sensor clock state " +
			"is sparse — with output byte-identical at every shard count (§2.2's " +
			"large-p regime made tractable)",
		Header: []string{"p", "shards", "wall ms", "clock KB", "recall", "epochs", "cross", "same"},
	}
	ps := []int{64, 256, 1024, 4096}
	shardCounts := []int{1, 2, 4, 8}
	if cfg.Quick {
		ps = []int{64, 256}
		shardCounts = []int{1, 2, 4}
	}
	horizon := sim.Time(cfg.pick(2000, 600)) * sim.Millisecond

	type job struct{ p, shards int }
	var jobs []job
	for _, p := range ps {
		for _, s := range shardCounts {
			jobs = append(jobs, job{p, s})
		}
	}
	type out struct {
		res    core.ShardedResults
		digest string
		wallMs float64
	}
	results := runner.Map(cfg.Parallelism, len(jobs), func(i int) out {
		j := jobs[i]
		h := core.NewShardedHarness(core.ShardedConfig{
			Seed: cfg.Seed, N: j.p, Shards: j.shards,
			Delay: sim.NewDeltaBounded(5 * sim.Millisecond),
			// Long-high dwells keep the pilot majority reachable, so the
			// recall column measures detection, not workload rarity.
			MeanHigh: 1200 * sim.Millisecond, MeanLow: 400 * sim.Millisecond,
			Horizon: horizon,
			Faults:  cfg.Faults,
		})
		start := time.Now() //lint:allow determinism(wall-clock feeds the Timing-gated column only, never the byte-compared cells)
		res := h.Run()
		wall := time.Since(start) //lint:allow determinism(wall-clock feeds the Timing-gated column only, never the byte-compared cells)
		return out{
			res:    res,
			digest: strings.Join(h.CounterLines(), "\n"),
			wallMs: float64(wall) / float64(time.Millisecond),
		}
	})

	ri := 0
	for range ps {
		var baseline string
		for _, s := range shardCounts {
			o := results[ri]
			j := jobs[ri]
			ri++
			if s == shardCounts[0] {
				baseline = o.digest
			}
			same := "yes"
			if o.digest != baseline {
				same = "NO"
			}
			wall := "-"
			if cfg.Timing {
				wall = fmt.Sprintf("%.1f", o.wallMs)
			}
			recall := ratio(o.res.Confusion.TP, o.res.Confusion.TP+o.res.Confusion.FN)
			t.AddRow(j.p, j.shards, wall,
				fmt.Sprintf("%.1f", float64(o.res.ClockBytes)/1024),
				recall, o.res.Epochs, o.res.CrossSent, same)
		}
	}
	t.Notes = append(t.Notes,
		"scored predicate is the pilot neighborhood (8 sensors, majority high); the rest of the fleet carries full strobe/clock load",
		fmt.Sprintf("clock state is sparse above %d procs: resident bytes grow with active peers, not with p", clock.DenseSparseCutoff),
		"'same' compares the cell's full counter digest (net, checker, engine, faults) to the S=1 baseline",
		"wall-clock column needs -timing (kept out of byte-compared tables); BENCH_shard.json records the calibrated numbers")
	return t
}
