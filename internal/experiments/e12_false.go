package experiments

import (
	"pervasive/internal/core"
	"pervasive/internal/lattice"
	"pervasive/internal/runner"
	"pervasive/internal/sim"
)

// E12FalseCausality reproduces the warning at the end of §4.2: strobe
// control messages "induce a partial order that is arbitrarily determined
// at run-time and hence artificial"; using the strobe clock as a causality
// tracker "will introduce false causality induced by the strobes … and
// eliminate possible equivalent consistent global states." Independent
// world events (no covert channels at all) are stamped by strobe vector
// clocks; any ordering between events of different sensors is false
// causality, and the shrinkage of the consistent-state lattice relative to
// the true (fully concurrent) lattice is the loss of equivalent states.
func E12FalseCausality(cfg RunConfig) *Table {
	t := &Table{
		ID:    "E12",
		Title: "false causality injected by strobes on independent world events",
		Claim: "\"if our map of the physical world is also tracking causality, that clock " +
			"should necessarily be different from the strobe clock … [else it] will " +
			"introduce false causality … and eliminate possible equivalent consistent " +
			"global states\" (§4.2)",
		Header: []string{"Δ", "cross pairs", "strobe-ordered", "fraction",
			"lattice (strobe)", "lattice (true)"},
	}
	deltas := []sim.Duration{0, 50 * sim.Millisecond, 500 * sim.Millisecond, 5 * sim.Second}
	if cfg.Quick {
		deltas = []sim.Duration{0, 500 * sim.Millisecond}
	}

	const n, p = 3, 4
	type outcome struct {
		ok                         bool
		delay                      sim.DelayModel
		cross, ordered             int64
		strobeLattice, trueLattice int64
	}
	outcomes := runner.Map(cfg.Parallelism, len(deltas), func(di int) outcome {
		delta := deltas[di]
		var delay sim.DelayModel = sim.Synchronous{}
		if delta > 0 {
			delay = sim.NewDeltaBounded(delta)
		}
		pw := pulseWorkload{
			N: n, K: n,
			MeanHigh: 400 * sim.Millisecond, MeanLow: 600 * sim.Millisecond,
			Kind: core.VectorStrobe, Delay: delay,
			Horizon: 30 * sim.Second, LogStamps: true,
			Faults: cfg.Faults,
		}
		h := pw.build(cfg.Seed)
		h.Run()
		ex := h.LatticeExecution()
		if !trimExecution(ex.Stamps, ex.Times, p) {
			return outcome{}
		}

		// The world events are independent (pure togglers, no covert
		// rules): every cross-process pair is truly concurrent. Count how
		// many of them the strobe stamps order.
		o := outcome{ok: true, delay: delay, trueLattice: 1}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				for _, si := range ex.Stamps[i] {
					for _, sj := range ex.Stamps[j] {
						o.cross++
						if !si.ConcurrentWith(sj) {
							o.ordered++
						}
					}
				}
			}
		}
		o.strobeLattice = ex.Survey(lattice.SurveyOptions{}).Count
		for i := 0; i < n; i++ {
			o.trueLattice *= int64(len(ex.Stamps[i]) + 1)
		}
		return o
	})
	for _, o := range outcomes {
		if !o.ok {
			continue
		}
		t.AddRow(fmtDelta(o.delay), o.cross, o.ordered, ratio(o.ordered, o.cross),
			o.strobeLattice, o.trueLattice)
	}
	t.Notes = append(t.Notes,
		"all world events here are causally independent; any strobe-imposed order is false causality",
		"expected shape: at Δ=0 nearly every cross pair is falsely ordered and the lattice collapses to a chain; "+
			"as Δ grows the strobe order thins and the lattice approaches the true (p+1)^n",
		"conclusion (§4.2): keep strobe clocks separate from causality-tracking clocks",
	)
	return t
}
