package experiments

import (
	"fmt"

	"pervasive/internal/clock"
	"pervasive/internal/core"
	"pervasive/internal/mac"
	"pervasive/internal/network"
	"pervasive/internal/runner"
	"pervasive/internal/scenario"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
	"pervasive/internal/world"
)

// Ablations are additional experiments probing this implementation's own
// design choices (they extend, rather than reproduce, the paper). Run via
// `cmd/experiments -ablations`.
var Ablations = []Experiment{
	{"A1", "borderline-bin policy: positive vs negative", A1BorderlinePolicy},
	{"A2", "race criterion: four-state vs naive concurrency flagging", A2RaceCriterion},
	{"A3", "broadcast strategy: direct vs flooding on sparse overlays", A3BroadcastStrategy},
	{"A4", "differential strobe compression (Singhal–Kshemkalyani)", A4DiffCompression},
	{"A5", "physical checker reorder slack", A5PhysicalSlack},
	{"A6", "duty-cycle timer synchronization (§5)", A6DutyCycle},
}

// AllWithAblations returns E1–E12 followed by A1–A6.
func AllWithAblations() []Experiment {
	return append(append([]Experiment(nil), All...), Ablations...)
}

// A1BorderlinePolicy quantifies §5's "the application can treat entries in
// the borderline bin as positives or negatives. To err on the safe side,
// such entries can be treated as positives": the positive policy maximizes
// recall (no missed overcrowding), the negative policy maximizes
// precision (no spurious lockouts).
func A1BorderlinePolicy(cfg RunConfig) *Table {
	t := &Table{
		ID:     "A1",
		Title:  "treating borderline detections as positive vs negative (exhibition hall)",
		Claim:  "§5: borderline entries can be treated as positives (safe side) or negatives",
		Header: []string{"policy", "recall", "precision", "FP", "FN"},
	}
	seeds := cfg.pick(8, 3)
	type polPair struct{ pos, neg stats.Confusion }
	pairs := runner.Map(cfg.Parallelism, seeds, func(s int) polPair {
		hl := scenario.NewHall(scenario.HallConfig{
			Seed: cfg.Seed + uint64(s), Doors: 4, Capacity: 60,
			InitialOccupancy: 57,
			MeanArrival:      150 * sim.Millisecond,
			MeanStay:         10 * sim.Second,
			Delay:            sim.NewDeltaBounded(250 * sim.Millisecond),
			Horizon:          sim.Time(cfg.pick(120, 40)) * sim.Second,
		})
		res := hl.Run()

		// Negative policy: drop borderline occurrences, rescore.
		var strict []core.Occurrence
		for _, o := range res.Occurrences {
			if !o.Borderline {
				strict = append(strict, o)
			}
		}
		return polPair{
			pos: res.Confusion,
			neg: core.Score(strict, res.Truth, nil, hl.Harness.Cfg.Tol, res.Horizon),
		}
	})
	var pos, neg stats.Confusion
	for _, p := range pairs {
		pos.Add(p.pos)
		neg.Add(p.neg)
	}
	t.AddRow("borderline = positive", pos.Recall(), pos.Precision(), pos.FP, pos.FN)
	t.AddRow("borderline = negative", neg.Recall(), neg.Precision(), neg.FP, neg.FN)
	t.Notes = append(t.Notes,
		"expected shape: the positive policy has higher recall (safety), the negative policy higher precision")
	return t
}

// A2RaceCriterion compares the four-state race criterion (flag only
// order-sensitive races) against naive concurrency flagging (flag any flip
// with a concurrent neighbour stamp). The naive criterion floods the
// borderline bin, destroying the value of "definite" reports.
func A2RaceCriterion(cfg RunConfig) *Table {
	t := &Table{
		ID:    "A2",
		Title: "four-state race criterion vs naive concurrency flagging",
		Claim: "design choice: flag a flip only when the predicate's history depends on the race order",
		Header: []string{"criterion", "occurrences", "flagged", "flag-rate",
			"TP-flagged", "border-cov"},
	}
	seeds := cfg.pick(6, 2)
	run := func(naive bool) (occ, flagged, tpFlagged int64, cov float64) {
		type counts struct {
			conf         stats.Confusion
			occ, flagged int64
		}
		perSeed := runner.Map(cfg.Parallelism, seeds, func(s int) counts {
			pw := pulseWorkload{
				N: 5, K: 3,
				MeanHigh: 400 * sim.Millisecond, MeanLow: 600 * sim.Millisecond,
				Kind:    core.VectorStrobe,
				Delay:   sim.NewDeltaBounded(150 * sim.Millisecond),
				Horizon: sim.Time(cfg.pick(60, 20)) * sim.Second,
				Faults:  cfg.Faults,
			}
			h := pw.build(cfg.Seed + uint64(s))
			h.StrobeCk.NaiveRace = naive
			res := h.Run()
			c := counts{conf: res.Confusion}
			for _, o := range res.Occurrences {
				c.occ++
				if o.Borderline {
					c.flagged++
				}
			}
			return c
		})
		var agg stats.Confusion
		for _, c := range perSeed {
			agg.Add(c.conf)
			occ += c.occ
			flagged += c.flagged
		}
		// TP-flagged approximation: flagged minus the flagged errors.
		tpFlagged = flagged - agg.BorderlineFP
		if tpFlagged < 0 {
			tpFlagged = 0
		}
		return occ, flagged, tpFlagged, agg.BorderlineCoverage()
	}
	for _, naive := range []bool{false, true} {
		name := "four-state"
		if naive {
			name = "naive-concurrency"
		}
		occ, flagged, tpFlagged, cov := run(naive)
		t.AddRow(name, occ, flagged, ratio(flagged, occ), tpFlagged, cov)
	}
	t.Notes = append(t.Notes,
		"expected shape: similar borderline coverage of real errors, but the naive criterion flags far more correct detections (TP-flagged), diluting definite reports")
	return t
}

// A3BroadcastStrategy compares direct (one logical hop per receiver)
// System-wide_Broadcast against flooding over a sparse random-geometric
// overlay: flooding multiplies transmissions and stretches effective
// delay by the hop count, degrading detection at a fixed per-hop Δ.
func A3BroadcastStrategy(cfg RunConfig) *Table {
	t := &Table{
		ID:     "A3",
		Title:  "direct vs flooding System-wide_Broadcast (random geometric overlay)",
		Claim:  "implementation choice for §4.2's broadcasts on multi-hop topologies",
		Header: []string{"strategy", "link msgs", "bytes", "recall", "precision"},
	}
	seeds := cfg.pick(5, 2)
	floods := []bool{false, true}
	type netOutcome struct {
		conf        stats.Confusion
		msgs, bytes int64
	}
	outcomes := runner.Map(cfg.Parallelism, len(floods)*seeds, func(i int) netOutcome {
		flood := floods[i/seeds]
		s := i % seeds
		n := 10
		// Sparse but connected overlay shared by both strategies.
		var topo network.Topology = network.RandomGeometric(
			stats.NewRNG(cfg.Seed+uint64(s)), n+1, 0.45)
		if !network.IsConnectedGraph(topo) {
			topo = network.Ring{Nodes: n + 1}
		}
		pw := pulseWorkload{
			N: n, K: n/2 + 1,
			MeanHigh: 500 * sim.Millisecond, MeanLow: 700 * sim.Millisecond,
			Kind:    core.VectorStrobe,
			Delay:   sim.NewDeltaBounded(30 * sim.Millisecond), // per hop when flooding
			Horizon: sim.Time(cfg.pick(40, 15)) * sim.Second,
			Topo:    topo, Flood: flood,
			Faults: cfg.Faults,
		}
		res := pw.run(cfg.Seed + uint64(s))
		return netOutcome{conf: res.Confusion, msgs: res.Net.Sent, bytes: res.Net.Bytes}
	})
	for fi, flood := range floods {
		var agg stats.Confusion
		var msgs, bytes int64
		for s := 0; s < seeds; s++ {
			o := outcomes[fi*seeds+s]
			agg.Add(o.conf)
			msgs += o.msgs
			bytes += o.bytes
		}
		name := "direct"
		if flood {
			name = "flooding"
		}
		t.AddRow(name, msgs, bytes, agg.Recall(), agg.Precision())
	}
	t.Notes = append(t.Notes,
		"expected shape: flooding multiplies link transmissions (duplicate suppression floor ≈ one per edge) and stretches effective delay by hop count, costing some accuracy at fixed per-hop Δ")
	return t
}

// A4DiffCompression measures the Singhal–Kshemkalyani differential strobe
// against full vectors across workload skews.
func A4DiffCompression(cfg RunConfig) *Table {
	t := &Table{
		ID:     "A4",
		Title:  "differential (sparse) strobe vectors vs full vectors",
		Claim:  "extension: SK compression applied to the strobe protocol",
		Header: []string{"workload", "n", "events", "full bytes", "diff bytes", "ratio"},
	}
	r := stats.NewRNG(cfg.Seed)
	const steps = 2000
	workloads := []struct {
		name string
		hot  float64 // probability the hot node fires
	}{
		{"uniform", 0}, {"hot-spot 50%", 0.5}, {"hot-spot 90%", 0.9},
	}
	sizes := []int{8, 32}
	// The source draws share one RNG stream across every (workload, n)
	// cell, so pre-draw each cell's src sequence sequentially in sweep
	// order; the strobe replays are then independent and fan out.
	srcSeqs := make([][]int, 0, len(workloads)*len(sizes))
	for _, wl := range workloads {
		for _, n := range sizes {
			srcs := make([]int, steps)
			for step := range srcs {
				src := r.Intn(n)
				if wl.hot > 0 && r.Bool(wl.hot) {
					src = 0
				}
				srcs[step] = src
			}
			srcSeqs = append(srcSeqs, srcs)
		}
	}
	type wire struct{ full, diff int64 }
	wires := runner.Map(cfg.Parallelism, len(srcSeqs), func(ci int) wire {
		n := sizes[ci%len(sizes)]
		diff := make([]*clock.DiffStrobeVector, n)
		for i := range diff {
			diff[i] = clock.NewDiffStrobeVector(i, n)
		}
		var w wire
		for _, src := range srcSeqs[ci] {
			ds := diff[src].Strobe()
			w.diff += int64(ds.WireBytes())
			w.full += int64(8 * n)
			for j := 0; j < n; j++ {
				if j != src {
					diff[j].OnStrobe(ds)
				}
			}
		}
		return w
	})
	ci := 0
	for _, wl := range workloads {
		for _, n := range sizes {
			w := wires[ci]
			ci++
			t.AddRow(wl.name, n, steps, w.full, w.diff,
				float64(w.diff)/float64(w.full))
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: ratio ≪ 1 under skew (a hot sensor's consecutive strobes change few components); uniform workloads approach full size as n grows")
	return t
}

// A5PhysicalSlack sweeps the physical checker's reorder-buffer slack: a
// buffer smaller than the network delay spread lets reports replay out of
// timestamp order, trading latency for accuracy.
func A5PhysicalSlack(cfg RunConfig) *Table {
	t := &Table{
		ID:     "A5",
		Title:  "physical checker reorder-buffer slack vs accuracy",
		Claim:  "design choice: slack must cover Δ + ε for timestamp-order replay",
		Header: []string{"slack", "reordered", "recall", "precision"},
	}
	delta := 100 * sim.Millisecond
	slacks := []sim.Duration{sim.Millisecond, 10 * sim.Millisecond,
		50 * sim.Millisecond, 120 * sim.Millisecond, 300 * sim.Millisecond}
	if cfg.Quick {
		slacks = []sim.Duration{sim.Millisecond, 120 * sim.Millisecond}
	}
	seeds := cfg.pick(6, 2)
	type slackOutcome struct {
		conf      stats.Confusion
		reordered int64
	}
	outcomes := runner.Map(cfg.Parallelism, len(slacks)*seeds, func(i int) slackOutcome {
		slack := slacks[i/seeds]
		s := i % seeds
		pw := pulseWorkload{
			N: 4, K: 3,
			MeanHigh: 300 * sim.Millisecond, MeanLow: 400 * sim.Millisecond,
			Kind: core.PhysicalReport, Epsilon: sim.Millisecond,
			Delay:   sim.NewDeltaBounded(delta),
			Horizon: sim.Time(cfg.pick(60, 20)) * sim.Second,
		}
		h := core.NewHarness(core.HarnessConfig{
			Seed: cfg.Seed + uint64(s), N: pw.N, Kind: pw.Kind,
			Delay: pw.Delay, Pred: pw.pred(), Epsilon: pw.Epsilon,
			Slack: slack, Horizon: pw.Horizon, Faults: cfg.Faults,
		})
		for i := 0; i < pw.N; i++ {
			obj := h.World.AddObject(fmt.Sprintf("obj-%d", i), nil)
			h.Bind(i, obj, "p", "p")
			world.Toggler{Obj: obj, Attr: "p", MeanHigh: pw.MeanHigh,
				MeanLow: pw.MeanLow}.Install(h.World, pw.Horizon)
		}
		res := h.Run()
		return slackOutcome{conf: res.Confusion, reordered: h.PhysCk.Reordered}
	})
	for si, slack := range slacks {
		var agg stats.Confusion
		var reordered int64
		for s := 0; s < seeds; s++ {
			o := outcomes[si*seeds+s]
			agg.Add(o.conf)
			reordered += o.reordered
		}
		t.AddRow(slack, reordered, agg.Recall(), agg.Precision())
	}
	t.Notes = append(t.Notes,
		"expected shape: reordering count falls to ~0 once slack exceeds the delay bound; accuracy rises with it")
	return t
}

// A6DutyCycle runs the §5 duty-cycle synchronization: free-running timers
// lose rendezvous under drift; the beacon protocol (send/receive events
// only) restores it at a bounded energy cost.
func A6DutyCycle(cfg RunConfig) *Table {
	t := &Table{
		ID:    "A6",
		Title: "duty-cycle timer synchronization via send/receive events (§5)",
		Claim: "\"synchronization of duty cycles … can be achieved using distributed timers " +
			"… via send and receive events\" (§5)",
		Header: []string{"mode", "drift", "overlap", "awake-frac", "beacons"},
	}
	horizon := sim.Time(cfg.pick(30, 8)) * sim.Minute
	drifts := []float64{0, 40, 80}
	syncs := []bool{false, true}
	results := runner.Map(cfg.Parallelism, len(drifts)*len(syncs), func(i int) mac.Result {
		return mac.Run(mac.Config{
			N: 6, Seed: cfg.Seed, Period: sim.Second,
			Window: 100 * sim.Millisecond, DriftPPM: drifts[i/len(syncs)],
			Sync: syncs[i%len(syncs)], ScanEvery: 16, Horizon: horizon,
		})
	})
	i := 0
	for _, drift := range drifts {
		for _, syn := range syncs {
			res := results[i]
			i++
			mode := "free-running"
			if syn {
				mode = "beacon-sync"
			}
			t.AddRow(mode, fmt.Sprintf("±%.0fppm", drift),
				res.Overlap, res.AwakeFraction, res.Beacons)
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: overlap collapses with drift when free-running; beacon sync holds it near 1 at a small awake-fraction premium")
	return t
}
