package experiments

import (
	"fmt"

	"pervasive/internal/clock"
	"pervasive/internal/core"
	"pervasive/internal/mac"
	"pervasive/internal/network"
	"pervasive/internal/scenario"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
	"pervasive/internal/world"
)

// Ablations are additional experiments probing this implementation's own
// design choices (they extend, rather than reproduce, the paper). Run via
// `cmd/experiments -ablations`.
var Ablations = []Experiment{
	{"A1", "borderline-bin policy: positive vs negative", A1BorderlinePolicy},
	{"A2", "race criterion: four-state vs naive concurrency flagging", A2RaceCriterion},
	{"A3", "broadcast strategy: direct vs flooding on sparse overlays", A3BroadcastStrategy},
	{"A4", "differential strobe compression (Singhal–Kshemkalyani)", A4DiffCompression},
	{"A5", "physical checker reorder slack", A5PhysicalSlack},
	{"A6", "duty-cycle timer synchronization (§5)", A6DutyCycle},
}

// AllWithAblations returns E1–E12 followed by A1–A6.
func AllWithAblations() []Experiment {
	return append(append([]Experiment(nil), All...), Ablations...)
}

// A1BorderlinePolicy quantifies §5's "the application can treat entries in
// the borderline bin as positives or negatives. To err on the safe side,
// such entries can be treated as positives": the positive policy maximizes
// recall (no missed overcrowding), the negative policy maximizes
// precision (no spurious lockouts).
func A1BorderlinePolicy(cfg RunConfig) *Table {
	t := &Table{
		ID:     "A1",
		Title:  "treating borderline detections as positive vs negative (exhibition hall)",
		Claim:  "§5: borderline entries can be treated as positives (safe side) or negatives",
		Header: []string{"policy", "recall", "precision", "FP", "FN"},
	}
	seeds := cfg.pick(8, 3)
	var pos, neg stats.Confusion
	for s := 0; s < seeds; s++ {
		hl := scenario.NewHall(scenario.HallConfig{
			Seed: cfg.Seed + uint64(s), Doors: 4, Capacity: 60,
			InitialOccupancy: 57,
			MeanArrival:      150 * sim.Millisecond,
			MeanStay:         10 * sim.Second,
			Delay:            sim.NewDeltaBounded(250 * sim.Millisecond),
			Horizon:          sim.Time(cfg.pick(120, 40)) * sim.Second,
		})
		res := hl.Run()
		pos.Add(res.Confusion)

		// Negative policy: drop borderline occurrences, rescore.
		var strict []core.Occurrence
		for _, o := range res.Occurrences {
			if !o.Borderline {
				strict = append(strict, o)
			}
		}
		neg.Add(core.Score(strict, res.Truth, nil, hl.Harness.Cfg.Tol, res.Horizon))
	}
	t.AddRow("borderline = positive", pos.Recall(), pos.Precision(), pos.FP, pos.FN)
	t.AddRow("borderline = negative", neg.Recall(), neg.Precision(), neg.FP, neg.FN)
	t.Notes = append(t.Notes,
		"expected shape: the positive policy has higher recall (safety), the negative policy higher precision")
	return t
}

// A2RaceCriterion compares the four-state race criterion (flag only
// order-sensitive races) against naive concurrency flagging (flag any flip
// with a concurrent neighbour stamp). The naive criterion floods the
// borderline bin, destroying the value of "definite" reports.
func A2RaceCriterion(cfg RunConfig) *Table {
	t := &Table{
		ID:    "A2",
		Title: "four-state race criterion vs naive concurrency flagging",
		Claim: "design choice: flag a flip only when the predicate's history depends on the race order",
		Header: []string{"criterion", "occurrences", "flagged", "flag-rate",
			"TP-flagged", "border-cov"},
	}
	seeds := cfg.pick(6, 2)
	run := func(naive bool) (occ, flagged, tpFlagged int64, cov float64) {
		var agg stats.Confusion
		for s := 0; s < seeds; s++ {
			pw := pulseWorkload{
				N: 5, K: 3,
				MeanHigh: 400 * sim.Millisecond, MeanLow: 600 * sim.Millisecond,
				Kind:    core.VectorStrobe,
				Delay:   sim.NewDeltaBounded(150 * sim.Millisecond),
				Horizon: sim.Time(cfg.pick(60, 20)) * sim.Second,
			}
			h := pw.build(cfg.Seed + uint64(s))
			h.StrobeCk.NaiveRace = naive
			res := h.Run()
			agg.Add(res.Confusion)
			for _, o := range res.Occurrences {
				occ++
				if o.Borderline {
					flagged++
				}
			}
		}
		// TP-flagged approximation: flagged minus the flagged errors.
		tpFlagged = flagged - agg.BorderlineFP
		if tpFlagged < 0 {
			tpFlagged = 0
		}
		return occ, flagged, tpFlagged, agg.BorderlineCoverage()
	}
	for _, naive := range []bool{false, true} {
		name := "four-state"
		if naive {
			name = "naive-concurrency"
		}
		occ, flagged, tpFlagged, cov := run(naive)
		t.AddRow(name, occ, flagged, ratio(flagged, occ), tpFlagged, cov)
	}
	t.Notes = append(t.Notes,
		"expected shape: similar borderline coverage of real errors, but the naive criterion flags far more correct detections (TP-flagged), diluting definite reports")
	return t
}

// A3BroadcastStrategy compares direct (one logical hop per receiver)
// System-wide_Broadcast against flooding over a sparse random-geometric
// overlay: flooding multiplies transmissions and stretches effective
// delay by the hop count, degrading detection at a fixed per-hop Δ.
func A3BroadcastStrategy(cfg RunConfig) *Table {
	t := &Table{
		ID:     "A3",
		Title:  "direct vs flooding System-wide_Broadcast (random geometric overlay)",
		Claim:  "implementation choice for §4.2's broadcasts on multi-hop topologies",
		Header: []string{"strategy", "link msgs", "bytes", "recall", "precision"},
	}
	seeds := cfg.pick(5, 2)
	for _, flood := range []bool{false, true} {
		var agg stats.Confusion
		var msgs, bytes int64
		for s := 0; s < seeds; s++ {
			n := 10
			// Sparse but connected overlay shared by both strategies.
			var topo network.Topology = network.RandomGeometric(
				stats.NewRNG(cfg.Seed+uint64(s)), n+1, 0.45)
			if !network.IsConnectedGraph(topo) {
				topo = network.Ring{Nodes: n + 1}
			}
			pw := pulseWorkload{
				N: n, K: n/2 + 1,
				MeanHigh: 500 * sim.Millisecond, MeanLow: 700 * sim.Millisecond,
				Kind:    core.VectorStrobe,
				Delay:   sim.NewDeltaBounded(30 * sim.Millisecond), // per hop when flooding
				Horizon: sim.Time(cfg.pick(40, 15)) * sim.Second,
				Topo:    topo, Flood: flood,
			}
			res := pw.run(cfg.Seed + uint64(s))
			agg.Add(res.Confusion)
			msgs += res.Net.Sent
			bytes += res.Net.Bytes
		}
		name := "direct"
		if flood {
			name = "flooding"
		}
		t.AddRow(name, msgs, bytes, agg.Recall(), agg.Precision())
	}
	t.Notes = append(t.Notes,
		"expected shape: flooding multiplies link transmissions (duplicate suppression floor ≈ one per edge) and stretches effective delay by hop count, costing some accuracy at fixed per-hop Δ")
	return t
}

// A4DiffCompression measures the Singhal–Kshemkalyani differential strobe
// against full vectors across workload skews.
func A4DiffCompression(cfg RunConfig) *Table {
	t := &Table{
		ID:     "A4",
		Title:  "differential (sparse) strobe vectors vs full vectors",
		Claim:  "extension: SK compression applied to the strobe protocol",
		Header: []string{"workload", "n", "events", "full bytes", "diff bytes", "ratio"},
	}
	r := stats.NewRNG(cfg.Seed)
	const steps = 2000
	for _, wl := range []struct {
		name string
		hot  float64 // probability the hot node fires
	}{
		{"uniform", 0}, {"hot-spot 50%", 0.5}, {"hot-spot 90%", 0.9},
	} {
		for _, n := range []int{8, 32} {
			diff := make([]*clock.DiffStrobeVector, n)
			for i := range diff {
				diff[i] = clock.NewDiffStrobeVector(i, n)
			}
			var diffBytes, fullBytes int64
			for step := 0; step < steps; step++ {
				src := r.Intn(n)
				if wl.hot > 0 && r.Bool(wl.hot) {
					src = 0
				}
				ds := diff[src].Strobe()
				diffBytes += int64(ds.WireBytes())
				fullBytes += int64(8 * n)
				for j := 0; j < n; j++ {
					if j != src {
						diff[j].OnStrobe(ds)
					}
				}
			}
			t.AddRow(wl.name, n, steps, fullBytes, diffBytes,
				float64(diffBytes)/float64(fullBytes))
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: ratio ≪ 1 under skew (a hot sensor's consecutive strobes change few components); uniform workloads approach full size as n grows")
	return t
}

// A5PhysicalSlack sweeps the physical checker's reorder-buffer slack: a
// buffer smaller than the network delay spread lets reports replay out of
// timestamp order, trading latency for accuracy.
func A5PhysicalSlack(cfg RunConfig) *Table {
	t := &Table{
		ID:     "A5",
		Title:  "physical checker reorder-buffer slack vs accuracy",
		Claim:  "design choice: slack must cover Δ + ε for timestamp-order replay",
		Header: []string{"slack", "reordered", "recall", "precision"},
	}
	delta := 100 * sim.Millisecond
	slacks := []sim.Duration{sim.Millisecond, 10 * sim.Millisecond,
		50 * sim.Millisecond, 120 * sim.Millisecond, 300 * sim.Millisecond}
	if cfg.Quick {
		slacks = []sim.Duration{sim.Millisecond, 120 * sim.Millisecond}
	}
	seeds := cfg.pick(6, 2)
	for _, slack := range slacks {
		var agg stats.Confusion
		var reordered int64
		for s := 0; s < seeds; s++ {
			pw := pulseWorkload{
				N: 4, K: 3,
				MeanHigh: 300 * sim.Millisecond, MeanLow: 400 * sim.Millisecond,
				Kind: core.PhysicalReport, Epsilon: sim.Millisecond,
				Delay:   sim.NewDeltaBounded(delta),
				Horizon: sim.Time(cfg.pick(60, 20)) * sim.Second,
			}
			h := core.NewHarness(core.HarnessConfig{
				Seed: cfg.Seed + uint64(s), N: pw.N, Kind: pw.Kind,
				Delay: pw.Delay, Pred: pw.pred(), Epsilon: pw.Epsilon,
				Slack: slack, Horizon: pw.Horizon,
			})
			for i := 0; i < pw.N; i++ {
				obj := h.World.AddObject(fmt.Sprintf("obj-%d", i), nil)
				h.Bind(i, obj, "p", "p")
				world.Toggler{Obj: obj, Attr: "p", MeanHigh: pw.MeanHigh,
					MeanLow: pw.MeanLow}.Install(h.World, pw.Horizon)
			}
			res := h.Run()
			agg.Add(res.Confusion)
			reordered += h.PhysCk.Reordered
		}
		t.AddRow(slack, reordered, agg.Recall(), agg.Precision())
	}
	t.Notes = append(t.Notes,
		"expected shape: reordering count falls to ~0 once slack exceeds the delay bound; accuracy rises with it")
	return t
}

// A6DutyCycle runs the §5 duty-cycle synchronization: free-running timers
// lose rendezvous under drift; the beacon protocol (send/receive events
// only) restores it at a bounded energy cost.
func A6DutyCycle(cfg RunConfig) *Table {
	t := &Table{
		ID:    "A6",
		Title: "duty-cycle timer synchronization via send/receive events (§5)",
		Claim: "\"synchronization of duty cycles … can be achieved using distributed timers " +
			"… via send and receive events\" (§5)",
		Header: []string{"mode", "drift", "overlap", "awake-frac", "beacons"},
	}
	horizon := sim.Time(cfg.pick(30, 8)) * sim.Minute
	for _, drift := range []float64{0, 40, 80} {
		for _, syn := range []bool{false, true} {
			res := mac.Run(mac.Config{
				N: 6, Seed: cfg.Seed, Period: sim.Second,
				Window: 100 * sim.Millisecond, DriftPPM: drift,
				Sync: syn, ScanEvery: 16, Horizon: horizon,
			})
			mode := "free-running"
			if syn {
				mode = "beacon-sync"
			}
			t.AddRow(mode, fmt.Sprintf("±%.0fppm", drift),
				res.Overlap, res.AwakeFraction, res.Beacons)
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: overlap collapses with drift when free-running; beacon sync holds it near 1 at a small awake-fraction premium")
	return t
}
