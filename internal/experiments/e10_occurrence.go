package experiments

import (
	"pervasive/internal/core"
	"pervasive/internal/predicate"
	"pervasive/internal/runner"
	"pervasive/internal/sim"
	"pervasive/internal/world"
)

// E10EveryOccurrence reproduces §3.3's critique of prior detection
// algorithms: "Existing literature on predicate detection, e.g., [14, 17],
// detects only the first time the predicate becomes true and then the
// algorithms 'hang'. We emphasize that each occurrence of the predicate
// should be detected." A detect-once conjunctive checker is compared to
// the every-occurrence checker on the same periodic workload.
func E10EveryOccurrence(cfg RunConfig) *Table {
	t := &Table{
		ID:    "E10",
		Title: "every-occurrence detection vs detect-once-and-hang baseline",
		Claim: "\"each occurrence of the predicate should be detected … existing " +
			"algorithms detect only the first time the predicate becomes true and then " +
			"hang\" (§3.3)",
		Header: []string{"detector", "true occurrences", "detected", "fraction"},
	}
	seeds := cfg.pick(5, 2)
	horizon := sim.Time(cfg.pick(120, 40)) * sim.Second

	run := func(once bool) (truth, detected int64) {
		type counts struct{ truth, detected int64 }
		perSeed := runner.Map(cfg.Parallelism, seeds, func(s int) counts {
			local := predicate.MustParse("p@0 == 1")
			n := 2
			h := core.NewHarness(core.HarnessConfig{
				Seed: cfg.Seed + uint64(s), N: n, Kind: core.VectorStrobe,
				Delay:     sim.NewDeltaBounded(20 * sim.Millisecond),
				Pred:      core.ConjunctiveGlobal(local, n),
				LocalConj: local,
				Modality:  predicate.Definitely,
				Horizon:   horizon,
			})
			h.ConjCk.Once = once
			for i := 0; i < n; i++ {
				obj := h.World.AddObject("obj", nil)
				h.Bind(i, obj, "p", "p")
				world.Toggler{Obj: obj, Attr: "p",
					MeanHigh: 4 * sim.Second, MeanLow: sim.Second}.Install(h.World, horizon)
			}
			res := h.Run()
			return counts{int64(len(res.Truth)), int64(len(res.Occurrences))}
		})
		for _, c := range perSeed {
			truth += c.truth
			detected += c.detected
		}
		return truth, detected
	}

	tr1, det1 := run(false)
	t.AddRow("every-occurrence (this paper)", tr1, det1, ratio(det1, tr1))
	tr2, det2 := run(true)
	t.AddRow("detect-once baseline [14,17]", tr2, det2, ratio(det2, tr2))
	t.Notes = append(t.Notes,
		"expected shape: the baseline detects exactly one occurrence per run; the every-occurrence checker detects ≈ all",
		"workload: 2 sensors with ~80% duty togglers; modality Definitely(φ₀ ∧ φ₁)")
	return t
}
