package experiments

import (
	"fmt"

	"pervasive/internal/core"
	"pervasive/internal/faults"
	"pervasive/internal/network"
	"pervasive/internal/runner"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
	"pervasive/internal/world"
)

// E13CrashChurn stresses §4.2.2's graceful-degradation claim along the
// crash/recovery axis: sensors crash at a Poisson-ish rate, stay down for
// a fixed outage, and rejoin with fresh clocks under a bumped epoch. The
// sweep crosses strobe kind (vector vs scalar) and broadcast mode (direct
// vs flood over a ring) against crash rate, reporting recall, precision
// and mean detection latency. Each seed's fault plan is drawn inside its
// own job from a seed-derived RNG, so the table is byte-identical at any
// parallelism.
func E13CrashChurn(cfg RunConfig) *Table {
	t := &Table{
		ID:    "E13",
		Title: "detection quality under crash/recovery churn",
		Claim: "degradation stays local: crashes cost recall roughly in proportion to " +
			"downtime, without corrupting post-recovery detection (§4.2.2 extended to " +
			"process failures)",
		Header: []string{"kind", "bcast", "crash/min", "crashes", "recall", "precision", "latency ms"},
	}
	const (
		n       = 4
		k       = 3 // strict enough that one frozen sensor view matters
		outage  = 5 * sim.Second
		minGap  = 6 * sim.Second // keeps one process's outages disjoint
		tolSlop = 100 * sim.Millisecond
	)
	horizon := sim.Time(cfg.pick(60, 30)) * sim.Second
	seeds := cfg.pick(6, 2)
	rates := []int{0, 2, 6} // crashes per minute across the fleet

	type cell struct {
		kind  core.ClockKind
		flood bool
	}
	cells := []cell{
		{core.VectorStrobe, false},
		{core.ScalarStrobe, false},
		{core.VectorStrobe, true},
		{core.ScalarStrobe, true},
	}

	type job struct {
		cell cell
		rate int
		seed uint64
	}
	var jobs []job
	for _, c := range cells {
		for _, r := range rates {
			for s := 0; s < seeds; s++ {
				jobs = append(jobs, job{cell: c, rate: r, seed: cfg.Seed + uint64(s)})
			}
		}
	}

	type out struct {
		crashes int
		conf    stats.Confusion
		latSum  sim.Duration
		latN    int
	}
	results := runner.Map(cfg.Parallelism, len(jobs), func(i int) out {
		j := jobs[i]
		plan := churnPlan(j.seed, j.rate, n, horizon, outage, minGap)
		pw := pulseWorkload{
			N: n, K: k,
			MeanHigh: 700 * sim.Millisecond, MeanLow: 900 * sim.Millisecond,
			Kind:    j.cell.kind,
			Delay:   sim.NewDeltaBounded(20 * sim.Millisecond),
			Horizon: horizon,
			Faults:  plan,
		}
		if j.cell.flood {
			pw.Topo = network.Ring{Nodes: n + 1}
			pw.Flood = true
		}
		res := pw.run(j.seed)
		o := out{conf: res.Confusion}
		if plan != nil {
			o.crashes = len(plan.Events) / 2
		}
		// Detection latency: per matched truth interval, the gap from the
		// interval's true start to its first overlapping detection.
		for _, tv := range res.Truth {
			for _, occ := range res.Occurrences {
				w := world.Interval{Start: occ.Start - tolSlop, End: occ.End + tolSlop}
				if w.Overlap(tv) > 0 {
					if d := occ.Start - tv.Start; d > 0 {
						o.latSum += d
					}
					o.latN++
					break
				}
			}
		}
		return o
	})

	ri := 0
	for _, c := range cells {
		for _, r := range rates {
			var agg out
			var tp, fn, fp int64
			for s := 0; s < seeds; s++ {
				o := results[ri]
				ri++
				agg.crashes += o.crashes
				agg.latSum += o.latSum
				agg.latN += o.latN
				tp += o.conf.TP
				fn += o.conf.FN
				fp += o.conf.FP
			}
			recall := ratio(tp, tp+fn)
			precision := ratio(tp, tp+fp)
			latMs := 0.0
			if agg.latN > 0 {
				latMs = float64(agg.latSum) / float64(agg.latN) / float64(sim.Millisecond)
			}
			bcast := "direct"
			if c.flood {
				bcast = "flood"
			}
			t.AddRow(c.kind.String(), bcast, r, agg.crashes, recall, precision, latMs)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("each crash keeps its process down %v; recovery rejoins with a fresh clock under a bumped epoch", outage),
		"recall falls with crash rate (outage events go unobserved) while the zero-churn rows match E1's regime",
		"flood rows pay extra hops (ring overlay) but survive the same churn — redundancy is orthogonal to crashes")
	return t
}

// churnPlan draws a deterministic crash/recovery schedule: rate crashes
// per minute across the fleet, uniform over [outage, horizon-outage),
// victims uniform over the n sensors, retrying draws that would overlap
// an existing outage of the same process. Rate 0 yields a nil plan (the
// fault-free fast path).
func churnPlan(seed uint64, ratePerMin, n int, horizon sim.Time, outage, minGap sim.Duration) *faults.Plan {
	if ratePerMin <= 0 {
		return nil
	}
	count := int((int64(ratePerMin)*int64(horizon) + int64(sim.Minute)/2) / int64(sim.Minute))
	if count == 0 {
		return nil
	}
	rng := stats.NewRNG(seed*0x9e3779b9 + uint64(ratePerMin))
	taken := make([][]sim.Time, n) // crash starts per proc
	plan := faults.NewPlan()
	for c := 0; c < count; c++ {
		for attempt := 0; attempt < 32; attempt++ {
			proc := int(rng.Int63n(int64(n)))
			at := sim.Time(rng.Int63n(int64(horizon - 2*outage)))
			ok := true
			for _, prev := range taken[proc] {
				d := at - prev
				if d < 0 {
					d = -d
				}
				if d < sim.Time(minGap) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			taken[proc] = append(taken[proc], at)
			plan.Crash(proc, at).Recover(proc, at+sim.Time(outage))
			break
		}
	}
	if plan.Empty() {
		return nil
	}
	return plan
}
