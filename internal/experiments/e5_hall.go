package experiments

import (
	"fmt"

	"pervasive/internal/runner"
	"pervasive/internal/scenario"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

// E5ExhibitionHall reproduces the Section 5 application scenario: d-door
// exhibition hall, capacity predicate Σ(xᵢ−yᵢ) > 200, races through
// concurrent doors producing FNs above capacity and FPs below, with the
// vector-strobe consensus placing FPs and most FNs in the borderline bin.
func E5ExhibitionHall(cfg RunConfig) *Table {
	t := &Table{
		ID:    "E5",
		Title: "exhibition hall occupancy monitor (capacity 200)",
		Claim: "\"a false negative may occur when the occupancy is above 200, and a false " +
			"positive may occur when the occupancy is below 201 … the consensus based " +
			"algorithm using vector strobes will be able to place false positives and most " +
			"false negatives in a 'borderline bin'\" (§5)",
		Header: []string{"doors", "Δ", "crossings", "recall", "precision",
			"FP", "FN", "border-cov"},
	}
	doorCounts := []int{2, 4, 8}
	if cfg.Quick {
		doorCounts = []int{2, 4}
	}
	seeds := cfg.pick(6, 2)

	deltas := []sim.Duration{50 * sim.Millisecond, 300 * sim.Millisecond}
	type job struct {
		doors int
		delta sim.Duration
		seed  uint64
	}
	var jobs []job
	for _, d := range doorCounts {
		for _, delta := range deltas {
			for s := 0; s < seeds; s++ {
				jobs = append(jobs, job{d, delta, cfg.Seed + uint64(s)})
			}
		}
	}
	type outcome struct {
		conf   stats.Confusion
		truths int
	}
	outcomes := runner.Map(cfg.Parallelism, len(jobs), func(i int) outcome {
		j := jobs[i]
		hl := scenario.NewHall(scenario.HallConfig{
			Seed: j.seed, Doors: j.doors,
			Capacity: 200, InitialOccupancy: 197,
			MeanArrival: 120 * sim.Millisecond,
			MeanStay:    20 * sim.Second,
			Delay:       sim.NewDeltaBounded(j.delta),
			Horizon:     sim.Time(cfg.pick(180, 45)) * sim.Second,
		})
		res := hl.Run()
		return outcome{conf: res.Confusion, truths: len(res.Truth)}
	})
	i := 0
	for _, d := range doorCounts {
		for _, delta := range deltas {
			var agg stats.Confusion
			truths := 0
			for s := 0; s < seeds; s++ {
				agg.Add(outcomes[i].conf)
				truths += outcomes[i].truths
				i++
			}
			t.AddRow(d, delta, truths, agg.Recall(), agg.Precision(),
				agg.FP, agg.FN, agg.BorderlineCoverage())
		}
	}
	t.Notes = append(t.Notes,
		"hall seeded near capacity (197 inside) so the predicate crosses its threshold repeatedly",
		fmt.Sprintf("expected shape: errors grow with doors and Δ; borderline coverage stays high (treating borderline as positive errs on the safe side per §5); seeds per row: %d", seeds))
	return t
}
