package experiments

import (
	"fmt"
	"strings"

	"pervasive/internal/core"
	"pervasive/internal/runner"
	"pervasive/internal/sim"
)

// E15CheckerTree sweeps the hierarchical checker tree across fleet size ×
// report volume × fan-out: detection recall on the pilot predicate, the
// upward sync channel's mean staleness (how long a report waits before
// its watermark crosses the tier boundary — the detection-latency cost
// batching buys throughput with), the coalesce rate (superseded values
// that never cross the wire), and the encoded sync traffic. The R=1 row
// of each (p, volume) group runs the flat checker and anchors the "same"
// column: every tree cell's full counter digest must be byte-identical
// to it, so the table doubles as the checker-tree determinism regression
// (detection itself rides the immediate delta channel; only watermark
// sync is batched, which is why recall is identical at every fan-out).
// All compared columns are derived from simulation state, never the host
// clock, so the rendered table is byte-identical at any Parallelism.
func E15CheckerTree(cfg RunConfig) *Table {
	t := &Table{
		ID:    "E15",
		Title: "checker tree: fleet size × report volume × fan-out",
		Claim: "detection scales with the network when strobe reports aggregate through " +
			"regional checker nodes — batched, coalesced, delta-coded upward — with " +
			"detection output byte-identical to the flat §2.1 checker at every fan-out " +
			"(the centralized-checker wall of ROADMAP item 2 removed)",
		Header: []string{"p", "volume", "R", "reports", "recall", "sync lag ms", "coalesce%", "wire KB", "same"},
	}
	type vol struct {
		name     string
		hi, lo   sim.Duration
		skipBigP bool
	}
	vols := []vol{
		// steady is E14's workload balance; dense pushes several reports
		// per process into each 5ms flush window so coalescing is live.
		{"steady", 1200 * sim.Millisecond, 400 * sim.Millisecond, false},
		{"dense", 40 * sim.Millisecond, 40 * sim.Millisecond, true},
	}
	ps := []int{1024, 4096}
	fanouts := []int{1, 4, 16, 64}
	if cfg.Quick {
		ps = []int{256}
		fanouts = []int{1, 4, 16}
	}
	horizon := sim.Time(cfg.pick(2000, 600)) * sim.Millisecond

	type job struct {
		p, fanout int
		v         vol
	}
	var jobs []job
	for _, p := range ps {
		for _, v := range vols {
			if v.skipBigP && p > 1024 {
				continue // dense at p=4096 is volume, not insight
			}
			for _, r := range fanouts {
				jobs = append(jobs, job{p, r, v})
			}
		}
	}
	type out struct {
		res    core.ShardedResults
		digest string
		stat   *core.ShardedHarness
	}
	results := runner.Map(cfg.Parallelism, len(jobs), func(i int) out {
		j := jobs[i]
		h := core.NewShardedHarness(core.ShardedConfig{
			Seed: cfg.Seed, N: j.p, Shards: 4, Workers: 2,
			Delay:    sim.NewDeltaBounded(5 * sim.Millisecond),
			MeanHigh: j.v.hi, MeanLow: j.v.lo,
			Horizon:       horizon,
			CheckerFanout: j.fanout,
			Faults:        cfg.Faults,
		})
		res := h.Run()
		return out{res: res, digest: strings.Join(h.CounterLines(), "\n"), stat: h}
	})

	var baseline string
	for i, o := range results {
		j := jobs[i]
		if j.fanout == fanouts[0] {
			baseline = o.digest
		}
		same := "yes"
		if o.digest != baseline {
			same = "NO"
		}
		recall := ratio(o.res.Confusion.TP, o.res.Confusion.TP+o.res.Confusion.FN)
		reports, lag, coalesce, wire := "-", "-", "-", "-"
		if tree := o.stat.Tree; tree != nil {
			st := tree.Stat
			reports = fmt.Sprintf("%d", st.Applied)
			if st.SyncedProcs > 0 {
				lag = fmt.Sprintf("%.2f", (sim.Time(st.SyncLagTotal) / sim.Time(st.SyncedProcs)).Millis())
			}
			coalesce = fmt.Sprintf("%.1f", 100*float64(st.Coalesced)/float64(st.Applied))
			wire = fmt.Sprintf("%.1f", float64(st.WireBytes)/1024)
		} else {
			reports = fmt.Sprintf("%d", o.stat.Checker.Applied)
		}
		t.AddRow(j.p, j.v.name, j.fanout, reports, recall, lag, coalesce, wire, same)
	}
	t.Notes = append(t.Notes,
		"R=1 runs the flat checker (the differential oracle); 'same' compares each cell's full counter digest against it",
		"sync lag is the mean wait before a report's watermark crosses the tier boundary (simulated time, not wall) — the latency cost of batching, paid by the sync channel only, never by detection",
		"coalesce% is the share of applied reports whose pending sync value was superseded before flushing — the traffic batching saves at dense report volume",
		"BENCH_checker.json records the calibrated root-throughput numbers (flat O(p)-per-report aggregate evaluation vs the tree's O(1) incremental fold)")
	return t
}
