package experiments

import (
	"fmt"

	"pervasive/internal/clock"
	"pervasive/internal/core"
	"pervasive/internal/runner"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

// E4ScalarVectorEquivalence reproduces §4.2.3 item 5: "When synchronous
// communication is used, i.e., when Δ = 0, and the protocol strobes at
// each relevant event, strobe vectors can be replaced by strobe scalars
// without sacrificing correctness or accuracy. This is not so for the
// causality-based clocks even if Δ = 0; Mattern/Fidge clocks are still
// more powerful than Lamport clocks."
func E4ScalarVectorEquivalence(cfg RunConfig) *Table {
	t := &Table{
		ID:    "E4",
		Title: "scalar vs vector strobes at Δ=0 and Δ>0; Lamport vs Mattern/Fidge",
		Claim: "\"when Δ=0 … strobe vectors can be replaced by strobe scalars without " +
			"sacrificing correctness or accuracy. This is not so for the causality-based " +
			"clocks even if Δ=0\" (§4.2.3 item 5)",
		Header: []string{"comparison", "Δ", "seeds", "identical-confusions",
			"unflagged-errs(vec)", "unflagged-errs(scalar)"},
	}
	seeds := cfg.pick(8, 3)

	compare := func(delay sim.DelayModel) (identical int, vecErrs, scaErrs int64) {
		type pair struct{ v, sc stats.Confusion }
		pairs := runner.Map(cfg.Parallelism, seeds, func(s int) pair {
			mk := func(kind core.ClockKind) stats.Confusion {
				return pulseWorkload{
					N: 4, K: 3,
					MeanHigh: 300 * sim.Millisecond, MeanLow: 400 * sim.Millisecond,
					Kind: kind, Delay: delay,
					Horizon: sim.Time(cfg.pick(60, 15)) * sim.Second,
					Faults:  cfg.Faults,
				}.run(cfg.Seed + uint64(s)).Confusion
			}
			return pair{v: mk(core.VectorStrobe), sc: mk(core.ScalarStrobe)}
		})
		for _, p := range pairs {
			v, sc := p.v, p.sc
			if v.TP == sc.TP && v.FP == sc.FP && v.FN == sc.FN {
				identical++
			}
			// Certifiable accuracy: errors the checker could NOT place in
			// the borderline bin. Vectors flag race-affected errors;
			// scalars cannot flag anything.
			vecErrs += (v.FP - v.BorderlineFP) + (v.FN - v.BorderlineFN)
			scaErrs += (sc.FP - sc.BorderlineFP) + (sc.FN - sc.BorderlineFN)
		}
		return identical, vecErrs, scaErrs
	}

	idSync, vecSync, scaSync := compare(sim.Synchronous{})
	t.AddRow("strobe scalar vs vector", "0", seeds, idSync, vecSync, scaSync)
	idAsync, vecAsync, scaAsync := compare(sim.NewDeltaBounded(250 * sim.Millisecond))
	t.AddRow("strobe scalar vs vector", "250ms", seeds, idAsync, vecAsync, scaAsync)

	// Causal clocks: even with instant delivery, Lamport scalars order
	// concurrent events (cannot certify concurrency) while vectors
	// classify them exactly. Measure on random message-passing runs.
	ordered, concurrent := causalComparison(cfg.Seed, cfg.pick(2000, 300))
	t.AddRow("Lamport orders concurrent pairs", "0", seeds,
		"-", ordered, "-")
	t.Notes = append(t.Notes,
		"row 1 must be fully identical with zero unflagged errors on both sides; "+
			"in row 2 the raw confusions still coincide (both checkers apply the same arrival stream) "+
			"but only the vector can certify its race-affected errors — the scalar's unflagged-error "+
			"count is what §3.3 means by scalars 'also' producing false positives",
		f("causal comparison: of %d truly concurrent event pairs, Lamport stamps impose an order on %d (all of them with distinct stamps); Mattern/Fidge certify all %d as concurrent",
			concurrent, ordered, concurrent))
	return t
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// f is a tiny alias for fmt.Sprintf used in notes.
func f(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// causalComparison generates random message-passing executions stamped
// with both Lamport and vector clocks, then counts truly concurrent pairs
// and how many of them the Lamport order still ranks.
func causalComparison(seed uint64, steps int) (lamportOrdered, concurrent int64) {
	r := stats.NewRNG(seed)
	const n = 4
	type ev struct {
		lam uint64
		vec clock.Vector
	}
	lams := make([]*clock.Lamport, n)
	vecs := make([]*clock.VectorClock, n)
	for i := range lams {
		lams[i] = &clock.Lamport{}
		vecs[i] = clock.NewVectorClock(i, n)
	}
	type mail struct {
		lam uint64
		vec clock.Vector
	}
	var inflight []mail
	var events []ev
	for s := 0; s < steps; s++ {
		p := r.Intn(n)
		switch op := r.Intn(3); {
		case op == 2 && len(inflight) > 0:
			mi := r.Intn(len(inflight))
			m := inflight[mi]
			inflight = append(inflight[:mi], inflight[mi+1:]...)
			events = append(events, ev{lam: lams[p].Receive(m.lam), vec: vecs[p].Receive(m.vec)})
		case op == 1:
			l, v := lams[p].Send(), vecs[p].Send()
			inflight = append(inflight, mail{lam: l, vec: v})
			events = append(events, ev{lam: l, vec: v})
		default:
			events = append(events, ev{lam: lams[p].Tick(), vec: vecs[p].Tick()})
		}
	}
	for i := range events {
		for j := i + 1; j < len(events); j++ {
			if events[i].vec.ConcurrentWith(events[j].vec) {
				concurrent++
				if events[i].lam != events[j].lam {
					lamportOrdered++
				}
			}
		}
	}
	return lamportOrdered, concurrent
}
