package experiments

import (
	"fmt"

	"pervasive/internal/core"
	"pervasive/internal/lattice"
	"pervasive/internal/runner"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

// E3SlimLattice reproduces the slim lattice postulate of §4.2.4: strobe
// control messages prune the O(pⁿ) lattice of consistent global states;
// the faster the strobes propagate, the leaner the lattice; with Δ=0 the
// consistent cuts form a linear order of n·p + 1 states; with no strobes
// delivered at all, every cut is consistent.
//
// The sweep runs two size blocks. The first (n=4, p=4, up to 625 cuts) is
// the historical table; the second (n=6, p=6, up to 7⁶ = 117 649 cuts)
// exercises the O(pⁿ) regime the paper actually argues about and is only
// tractable because the Survey engine walks each lattice once, level by
// level, instead of recursively enumerating it per statistic.
func E3SlimLattice(cfg RunConfig) *Table {
	t := &Table{
		ID:    "E3",
		Title: "consistent-cut count vs strobe delay (blocks: n=4 p=4, n=6 p=6)",
		Claim: "\"the faster the strobe transmissions, the leaner is the lattice. " +
			"When Δ = 0, the result is a linear order of np states\" (§4.2.4)",
		Header: []string{"regime", "Δ", "consistent cuts", "of possible", "width"},
	}

	blocks := []struct{ n, p int }{{4, 4}, {6, 6}}
	regimes := []struct {
		name  string
		delay sim.DelayModel
	}{
		{"Δ=0 (synchronous)", sim.Synchronous{}},
		{"Δ-bounded", sim.NewDeltaBounded(20 * sim.Millisecond)},
		{"Δ-bounded", sim.NewDeltaBounded(200 * sim.Millisecond)},
		{"Δ-bounded", sim.NewDeltaBounded(2 * sim.Second)},
		{"Δ-bounded", sim.NewDeltaBounded(20 * sim.Second)},
		{"no strobes delivered", sim.WithLoss{Inner: sim.Synchronous{}, P: 1}},
	}
	seeds := cfg.pick(5, 2)

	// One job per (block, regime, seed); the ordered walk below reproduces
	// the sequential aggregation (Online means in seed order, `possible`
	// from the last seed whose execution survived trimming).
	type outcome struct {
		ok          bool
		cuts, width float64
		possible    int64
	}
	perBlock := len(regimes) * seeds
	outcomes := runner.Map(cfg.Parallelism, len(blocks)*perBlock, func(i int) outcome {
		blk := blocks[i/perBlock]
		reg := regimes[i/seeds%len(regimes)]
		s := i % seeds
		// Run long enough to collect ≥ p events per sensor, then trim.
		pw := pulseWorkload{
			N: blk.n, K: blk.n, // predicate irrelevant here
			MeanHigh: 400 * sim.Millisecond, MeanLow: 600 * sim.Millisecond,
			Kind: core.VectorStrobe, Delay: reg.delay,
			Horizon:   30 * sim.Second,
			LogStamps: true,
			Faults:    cfg.Faults,
		}
		h := pw.build(cfg.Seed + uint64(s))
		h.Run()
		ex := h.LatticeExecution()
		if !trimExecution(ex.Stamps, ex.Times, blk.p) {
			return outcome{}
		}
		// Count and width from a single level-synchronous walk.
		res := ex.Survey(lattice.SurveyOptions{})
		return outcome{
			ok:       true,
			cuts:     float64(res.Count),
			width:    float64(res.Width),
			possible: ex.NumCuts(),
		}
	})
	for bi, blk := range blocks {
		if bi > 0 {
			t.AddRow(fmt.Sprintf("— n=%d, p=%d —", blk.n, blk.p), "", "", "", "")
		}
		for ri, reg := range regimes {
			var cuts, width stats.Online
			var possible int64
			for s := 0; s < seeds; s++ {
				o := outcomes[bi*perBlock+ri*seeds+s]
				if !o.ok {
					continue
				}
				cuts.Add(o.cuts)
				width.Add(o.width)
				possible = o.possible
			}
			t.AddRow(reg.name, fmtDelta(reg.delay),
				cuts.Mean(), possible, width.Mean())
		}
	}
	t.Notes = append(t.Notes,
		"Δ=0 row must equal n·p+1 = 17 with width 1 (a chain); the no-strobe row equals (p+1)^n = 625",
		"counts are means over seeds; events beyond the first p per sensor are trimmed",
		"n=6 block: Δ=0 must equal n·p+1 = 37; the no-strobe row equals (p+1)^n = 117649")
	return t
}
