package experiments

import (
	"pervasive/internal/core"
	"pervasive/internal/runner"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

// E3SlimLattice reproduces the slim lattice postulate of §4.2.4: strobe
// control messages prune the O(pⁿ) lattice of consistent global states;
// the faster the strobes propagate, the leaner the lattice; with Δ=0 the
// consistent cuts form a linear order of n·p + 1 states; with no strobes
// delivered at all, every cut is consistent.
func E3SlimLattice(cfg RunConfig) *Table {
	t := &Table{
		ID:    "E3",
		Title: "consistent-cut count vs strobe delay (n=4 sensors, p=4 events each)",
		Claim: "\"the faster the strobe transmissions, the leaner is the lattice. " +
			"When Δ = 0, the result is a linear order of np states\" (§4.2.4)",
		Header: []string{"regime", "Δ", "consistent cuts", "of possible", "width"},
	}

	const n, p = 4, 4
	regimes := []struct {
		name  string
		delay sim.DelayModel
	}{
		{"Δ=0 (synchronous)", sim.Synchronous{}},
		{"Δ-bounded", sim.NewDeltaBounded(20 * sim.Millisecond)},
		{"Δ-bounded", sim.NewDeltaBounded(200 * sim.Millisecond)},
		{"Δ-bounded", sim.NewDeltaBounded(2 * sim.Second)},
		{"Δ-bounded", sim.NewDeltaBounded(20 * sim.Second)},
		{"no strobes delivered", sim.WithLoss{Inner: sim.Synchronous{}, P: 1}},
	}
	seeds := cfg.pick(5, 2)

	// One job per (regime, seed); the ordered walk below reproduces the
	// sequential aggregation (Online means in seed order, `possible` from
	// the last seed whose execution survived trimming).
	type outcome struct {
		ok          bool
		cuts, width float64
		possible    int64
	}
	outcomes := runner.Map(cfg.Parallelism, len(regimes)*seeds, func(i int) outcome {
		reg := regimes[i/seeds]
		s := i % seeds
		// Run long enough to collect ≥ p events per sensor, then trim.
		pw := pulseWorkload{
			N: n, K: n, // predicate irrelevant here
			MeanHigh: 400 * sim.Millisecond, MeanLow: 600 * sim.Millisecond,
			Kind: core.VectorStrobe, Delay: reg.delay,
			Horizon:   30 * sim.Second,
			LogStamps: true,
		}
		h := pw.build(cfg.Seed + uint64(s))
		h.Run()
		ex := h.LatticeExecution()
		if !trimExecution(ex.Stamps, ex.Times, p) {
			return outcome{}
		}
		return outcome{
			ok:       true,
			cuts:     float64(ex.CountConsistent(0)),
			width:    float64(ex.Width()),
			possible: ex.NumCuts(),
		}
	})
	for ri, reg := range regimes {
		var cuts, width stats.Online
		var possible int64
		for s := 0; s < seeds; s++ {
			o := outcomes[ri*seeds+s]
			if !o.ok {
				continue
			}
			cuts.Add(o.cuts)
			width.Add(o.width)
			possible = o.possible
		}
		t.AddRow(reg.name, fmtDelta(reg.delay),
			cuts.Mean(), possible, width.Mean())
	}
	t.Notes = append(t.Notes,
		"Δ=0 row must equal n·p+1 = 17 with width 1 (a chain); the no-strobe row equals (p+1)^n = 625",
		"counts are means over seeds; events beyond the first p per sensor are trimmed")
	return t
}
