package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pervasive/internal/faults"
	"pervasive/internal/flight"
	"pervasive/internal/obs"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
	"pervasive/internal/world"
)

// saveDumpsOnFailure writes h's flight dumps into $FLIGHT_DUMP_DIR when
// the test fails, so CI can upload the causal context of the failure as
// an artifact. A run without the variable (every local run) is a no-op.
func saveDumpsOnFailure(t *testing.T, h *Harness) {
	t.Helper()
	t.Cleanup(func() {
		dir := os.Getenv("FLIGHT_DUMP_DIR")
		if dir == "" || !t.Failed() {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("flight dump dir: %v", err)
			return
		}
		base := strings.NewReplacer("/", "-", " ", "-").Replace(t.Name())
		for i, d := range h.Dumps {
			var buf bytes.Buffer
			if err := d.EncodeJSONL(&buf); err != nil {
				t.Logf("flight dump encode: %v", err)
				continue
			}
			name := fmt.Sprintf("%s-%02d.dump.jsonl", base, i)
			if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
				t.Logf("flight dump write: %v", err)
			}
		}
	})
}

// flightHarness runs the pulse workload with a crash/recovery of sensor
// 1 and the flight recorder attached (obs too, so dumps embed metrics).
func flightHarness(kind ClockKind) *Harness {
	n := 3
	pred := ConjunctiveGlobal(predicate.MustParse("p@0 == 1"), n)
	h := NewHarness(HarnessConfig{
		Seed: 11, N: n, Kind: kind,
		Delay: sim.NewDeltaBounded(20 * sim.Millisecond),
		Pred:  pred, Modality: predicate.Instantaneously,
		Horizon: 60 * sim.Second,
		Faults: faults.NewPlan().
			Crash(1, 20*sim.Second).
			Recover(1, 30*sim.Second),
		Obs:    obs.NewRegistry(),
		Flight: flight.New(n+1, 128),
	})
	for i := 0; i < n; i++ {
		obj := h.World.AddObject("obj", nil)
		h.Bind(i, obj, "p", "p")
		world.Toggler{Obj: obj, Attr: "p", MeanHigh: 3 * sim.Second,
			MeanLow: 2 * sim.Second}.Install(h.World, 60*sim.Second)
	}
	return h
}

func TestHarnessFlightDumpsOnFaultsAndDetections(t *testing.T) {
	for _, kind := range []ClockKind{VectorStrobe, ScalarStrobe, DiffVectorStrobe} {
		h := flightHarness(kind)
		saveDumpsOnFailure(t, h)
		h.Run()
		triggers := map[string]int{}
		for _, d := range h.Dumps {
			triggers[d.Trigger]++
		}
		if triggers["fault:crash(p1)"] != 1 || triggers["fault:recover(p1)"] != 1 {
			t.Fatalf("%v: fault triggers %v", kind, triggers)
		}
		if triggers["detect"] == 0 {
			t.Fatalf("%v: no detection dumps (triggers %v)", kind, triggers)
		}
		for _, d := range h.Dumps {
			if d.TimeBase != "virtual" {
				t.Fatalf("%v: dump time base %q", kind, d.TimeBase)
			}
			if d.Metrics == nil || d.Metrics.TimeBase != "virtual" {
				t.Fatalf("%v: dump %q did not embed the obs snapshot", kind, d.Trigger)
			}
			if issues := flight.BuildDAG(d).Validate(); len(issues) != 0 {
				t.Fatalf("%v: dump %q inconsistent: %v", kind, d.Trigger, issues)
			}
		}
		// A detection dump must carry a causal critical path ending at
		// the detect event.
		var detect *flight.Dump
		for _, d := range h.Dumps {
			if d.Trigger == "detect" {
				detect = d
				break
			}
		}
		g := flight.BuildDAG(detect)
		path := g.CriticalPath()
		if len(path) < 3 {
			t.Fatalf("%v: critical path too short: %v", kind, path)
		}
		if g.Events[path[len(path)-1]].Kind != "detect" {
			t.Fatalf("%v: path does not end at detect", kind)
		}
	}
}

func TestHarnessFlightCrashDumpSeesEpochBump(t *testing.T) {
	h := flightHarness(VectorStrobe)
	saveDumpsOnFailure(t, h)
	h.Run()
	// The final signal-free state: the last dump triggered at/after the
	// recovery must contain the Recover record with epoch 1, and later
	// sense events of p1 must carry epoch 1 stamps.
	h.SignalDump("end")
	last := h.Dumps[len(h.Dumps)-1]
	if last.Trigger != "signal:end" {
		t.Fatalf("trigger %q", last.Trigger)
	}
	var sawRecover, sawFreshSense bool
	for _, ev := range last.Events {
		if ev.Kind == "recover" && ev.Proc == 1 && ev.Epoch == 1 {
			sawRecover = true
		}
		if ev.Kind == "sense" && ev.Proc == 1 && ev.Epoch == 1 {
			sawFreshSense = true
		}
	}
	if !sawRecover && !sawFreshSense {
		t.Fatalf("no post-recovery epoch-1 events in final dump")
	}
}

func TestHarnessFlightDumpsDeterministic(t *testing.T) {
	encode := func() []byte {
		h := flightHarness(VectorStrobe)
		saveDumpsOnFailure(t, h)
		h.Run()
		var buf bytes.Buffer
		for _, d := range h.Dumps {
			d.Metrics = nil // obs spans include ring order, compare events only
			if err := d.EncodeJSONL(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatal("flight dumps differ across identical runs")
	}
}
