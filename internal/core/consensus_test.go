package core

import (
	"testing"

	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

// Confusion4 aliases the stats confusion matrix for brevity here.
type Confusion4 = stats.Confusion

func TestConsensusUnanimous(t *testing.T) {
	reps := [][]Occurrence{
		{{Start: 10, End: 20}},
		{{Start: 10, End: 20}},
		{{Start: 10, End: 20}},
	}
	out := ConsensusMerge(reps, 100)
	if len(out) != 1 || out[0].Start != 10 || out[0].End != 20 {
		t.Fatalf("merged %v", out)
	}
	if out[0].Borderline {
		t.Fatal("unanimous agreement flagged borderline")
	}
}

func TestConsensusMajorityWithJitter(t *testing.T) {
	// Replica edges jitter by view lag; the majority interval is flagged
	// borderline because agreement was not unanimous throughout.
	reps := [][]Occurrence{
		{{Start: 10, End: 20}},
		{{Start: 12, End: 22}},
		{{Start: 11, End: 19}},
	}
	out := ConsensusMerge(reps, 100)
	if len(out) != 1 {
		t.Fatalf("merged %v", out)
	}
	// Majority (2 of 3) reached at t=11, lost at t=20.
	if out[0].Start != 11 || out[0].End != 20 {
		t.Fatalf("merged %v", out)
	}
	if !out[0].Borderline {
		t.Fatal("jittered agreement should be borderline")
	}
}

func TestConsensusMinorityIsDropped(t *testing.T) {
	// One of three replicas hallucinates an occurrence: below majority,
	// it is suppressed entirely.
	reps := [][]Occurrence{
		{{Start: 50, End: 60}},
		{},
		{},
	}
	out := ConsensusMerge(reps, 100)
	if len(out) != 0 {
		t.Fatalf("minority view survived: %v", out)
	}
}

func TestConsensusPropagatesReplicaFlags(t *testing.T) {
	reps := [][]Occurrence{
		{{Start: 10, End: 20, Borderline: true}},
		{{Start: 10, End: 20}},
		{{Start: 10, End: 20}},
	}
	out := ConsensusMerge(reps, 100)
	if len(out) != 1 || !out[0].Borderline {
		t.Fatalf("replica flag lost: %v", out)
	}
}

func TestConsensusOpenOccurrenceClampsToHorizon(t *testing.T) {
	reps := [][]Occurrence{
		{{Start: 90, End: 0}},
		{{Start: 91, End: 0}},
	}
	out := ConsensusMerge(reps, 100)
	if len(out) != 1 || out[0].End != 100 {
		t.Fatalf("merged %v", out)
	}
}

func TestConsensusEmpty(t *testing.T) {
	if out := ConsensusMerge(nil, 100); out != nil {
		t.Fatalf("merged %v", out)
	}
	if out := ConsensusMerge([][]Occurrence{{}, {}}, 100); len(out) != 0 {
		t.Fatalf("merged %v", out)
	}
}

func TestConsensusBinPolicyKeepsMinority(t *testing.T) {
	reps := [][]Occurrence{
		{{Start: 50, End: 60}},
		{},
		{},
	}
	out := ConsensusMergePolicy(reps, 100, ConsensusBin)
	if len(out) != 1 || !out[0].Borderline {
		t.Fatalf("bin policy should keep the minority episode, flagged: %v", out)
	}
	if out[0].Start != 50 || out[0].End != 60 {
		t.Fatalf("merged %v", out)
	}
}

func TestMergeAdjacent(t *testing.T) {
	occ := []Occurrence{
		{Start: 10, End: 20},
		{Start: 22, End: 30, Borderline: true},
		{Start: 100, End: 110},
	}
	out := MergeAdjacent(occ, 5)
	if len(out) != 2 {
		t.Fatalf("merged %v", out)
	}
	if out[0].Start != 10 || out[0].End != 30 || !out[0].Borderline {
		t.Fatalf("merged %v", out)
	}
	if len(MergeAdjacent(nil, 5)) != 0 {
		t.Fatal("nil input")
	}
}

func TestConsensusEndToEnd(t *testing.T) {
	// Full stack, several seeds: replicas at every sensor, consensus-
	// merged occurrences scored against truth. The §5 claim under test is
	// that replica *disagreement* marks race-affected detections: merged
	// false positives should be (almost) entirely flagged borderline, and
	// recall should stay close to the replicas'.
	const n = 4
	const delta = 150 * sim.Millisecond
	var merged, replicaAgg Confusion4
	for seed := uint64(30); seed < 34; seed++ {
		h := pulseHarness(seed, n, VectorStrobe, sim.NewDeltaBounded(delta),
			600*sim.Millisecond, 900*sim.Millisecond, 60*sim.Second)
		replicas := make([]*StrobeChecker, n)
		for i, sn := range h.Sensors {
			replicas[i] = NewVectorChecker(n, h.Cfg.Pred)
			sn.Local = replicas[i]
		}
		res := h.Run()
		horizon := res.Horizon
		lists := make([][]Occurrence, n)
		for i, r := range replicas {
			r.Finish(horizon)
			lists[i] = r.Occurrences()
			replicaAgg.Add(Score(lists[i], res.Truth, nil, h.Cfg.Tol, horizon))
		}
		m := MergeAdjacent(ConsensusMergePolicy(lists, horizon, ConsensusBin), delta)
		merged.Add(Score(m, res.Truth, nil, h.Cfg.Tol, horizon))
	}
	// The bin policy keeps everything any replica saw, so recall matches
	// the replicas'.
	if r := merged.Recall(); r < 0.85 {
		t.Fatalf("consensus recall %.3f", r)
	}
	unflagged := merged.FP - merged.BorderlineFP
	if merged.FP > 0 && float64(unflagged)/float64(merged.FP) > 0.2 {
		t.Fatalf("consensus left %d of %d FPs unflagged — disagreement should mark them",
			unflagged, merged.FP)
	}
	// Consensus recall should not collapse relative to the mean replica.
	if merged.Recall() < replicaAgg.Recall()-0.1 {
		t.Fatalf("consensus recall %.3f far below replica mean %.3f",
			merged.Recall(), replicaAgg.Recall())
	}
}
