package core

import (
	"testing"

	"pervasive/internal/clock"
	"pervasive/internal/faults"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
	"pervasive/internal/world"
)

// TestCheckerEpochBumpDoesNotMergePreCrashState is the regression test
// for recovery handling: a rebooted process restarts with Seq 1 under a
// bumped epoch, and the checker must (a) accept the fresh sequence rather
// than discarding it as stale, and (b) drop pre-crash stragglers rather
// than merging them into the post-reboot view.
func TestCheckerEpochBumpDoesNotMergePreCrashState(t *testing.T) {
	pred := predicate.MustParse("x@0 >= 1")
	c := NewVectorChecker(2, pred)

	stamp := func(a, b uint64) clock.Vector { return clock.Vector{a, b} }

	// Pre-crash life: Seq 1..3 applied.
	c.OnStrobe(StrobeMsg{Proc: 0, Seq: 1, Var: "x", Value: 1, Vec: stamp(1, 0)}, 10)
	c.OnStrobe(StrobeMsg{Proc: 0, Seq: 2, Var: "x", Value: 0, Vec: stamp(2, 0)}, 20)
	c.OnStrobe(StrobeMsg{Proc: 0, Seq: 3, Var: "x", Value: 1, Vec: stamp(3, 0)}, 30)
	if c.Applied != 3 {
		t.Fatalf("applied %d", c.Applied)
	}

	// Reboot: epoch 1, Seq restarts at 1. Without epoch handling this
	// would be discarded (Seq 1 <= lastSeq 3) and the checker would keep
	// serving the pre-crash value forever.
	c.OnStrobe(StrobeMsg{Proc: 0, Seq: 1, Epoch: 1, Var: "x", Value: 0, Vec: stamp(1, 0)}, 40)
	if c.Applied != 4 {
		t.Fatalf("fresh-epoch strobe discarded as stale (applied=%d)", c.Applied)
	}
	if got := c.View(0, "x"); got != 0 {
		t.Fatalf("post-reboot view x=%v, want 0", got)
	}

	// A pre-crash straggler (old epoch, high Seq) arrives late: it must be
	// dropped, not merged over the fresh state.
	c.OnStrobe(StrobeMsg{Proc: 0, Seq: 9, Epoch: 0, Var: "x", Value: 7, Vec: stamp(9, 0)}, 50)
	if got := c.View(0, "x"); got != 0 {
		t.Fatalf("pre-crash straggler merged into post-reboot view: x=%v", got)
	}
	if c.Stale != 1 {
		t.Fatalf("straggler not counted stale (stale=%d)", c.Stale)
	}

	// The fresh epoch's own ordering discipline still applies.
	c.OnStrobe(StrobeMsg{Proc: 0, Seq: 2, Epoch: 1, Var: "x", Value: 1, Vec: stamp(2, 0)}, 60)
	c.OnStrobe(StrobeMsg{Proc: 0, Seq: 2, Epoch: 1, Var: "x", Value: 0, Vec: stamp(2, 0)}, 61)
	if got := c.View(0, "x"); got != 1 {
		t.Fatalf("duplicate within fresh epoch applied: x=%v", got)
	}
}

// TestCheckerEpochResetsDiffReconstruction: after a reboot, the diff-strobe
// reconstruction must restart from zero, or the rebooted sender's small
// fresh components would lose to its stale pre-crash ones.
func TestCheckerEpochResetsDiffReconstruction(t *testing.T) {
	pred := predicate.MustParse("x@0 >= 1")
	c := NewVectorChecker(2, pred)
	sparse := func(proc int, val uint64) clock.SparseStamp {
		return clock.SparseStamp{{Proc: proc, Val: val}}
	}
	c.OnStrobe(StrobeMsg{Proc: 0, Seq: 1, Var: "x", Value: 1, Sparse: sparse(0, 5)}, 10)
	if c.recon[0][0] != 5 {
		t.Fatalf("recon %v", c.recon[0])
	}
	c.OnStrobe(StrobeMsg{Proc: 0, Seq: 1, Epoch: 1, Var: "x", Value: 0, Sparse: sparse(0, 1)}, 20)
	if c.recon[0][0] != 1 {
		t.Fatalf("pre-crash reconstruction survived the epoch bump: %v", c.recon[0])
	}
}

// crashHarness runs the standard pulse workload with a mid-run crash and
// recovery of sensor 1.
func crashHarness(t *testing.T, kind ClockKind) (*Harness, Results) {
	t.Helper()
	n := 3
	pred := ConjunctiveGlobal(predicate.MustParse("p@0 == 1"), n)
	plan := faults.NewPlan().
		Crash(1, 20*sim.Second).
		Recover(1, 30*sim.Second)
	h := NewHarness(HarnessConfig{
		Seed: 11, N: n, Kind: kind,
		Delay: sim.NewDeltaBounded(20 * sim.Millisecond),
		Pred:  pred, Modality: predicate.Instantaneously,
		Horizon: 60 * sim.Second,
		Faults:  plan,
	})
	for i := 0; i < n; i++ {
		obj := h.World.AddObject("obj", nil)
		h.Bind(i, obj, "p", "p")
		world.Toggler{Obj: obj, Attr: "p", MeanHigh: 3 * sim.Second,
			MeanLow: 2 * sim.Second}.Install(h.World, 60*sim.Second)
	}
	return h, h.Run()
}

func TestHarnessCrashRecoveryEndToEnd(t *testing.T) {
	for _, kind := range []ClockKind{VectorStrobe, ScalarStrobe, DiffVectorStrobe} {
		h, res := crashHarness(t, kind)
		inj := h.Faults
		if inj == nil {
			t.Fatalf("%v: injector not installed", kind)
		}
		if inj.Counts.CrashDrops.Load() == 0 {
			t.Errorf("%v: transport delivered to the crashed sensor", kind)
		}
		if h.Sensors[1].Epoch() != 1 {
			t.Errorf("%v: epoch %d after one recovery", kind, h.Sensors[1].Epoch())
		}
		if h.Sensors[1].Down() {
			t.Errorf("%v: sensor still down after recovery", kind)
		}
		// Post-recovery strobes must be applied — the checker heard from
		// the rebooted process again (fresh Seq under a bumped epoch).
		if res.Confusion.Recall() < 0.5 {
			t.Errorf("%v: recall %.3f collapsed — recovery did not rejoin detection",
				kind, res.Confusion.Recall())
		}
		// Detection must still work while degraded, and the whole run
		// stays deterministic.
		_, res2 := crashHarness(t, kind)
		if res.Confusion != res2.Confusion {
			t.Errorf("%v: crash/recovery run non-deterministic", kind)
		}
	}
}

func TestHarnessCrashDegradesVsCleanRun(t *testing.T) {
	// The crashed process's pulses go unobserved, so the conjunctive
	// predicate's occurrences during the outage are missed: faults must
	// strictly reduce applied strobes vs the identical fault-free run.
	n := 3
	build := func(plan *faults.Plan) *Harness {
		pred := ConjunctiveGlobal(predicate.MustParse("p@0 == 1"), n)
		h := NewHarness(HarnessConfig{
			Seed: 5, N: n, Kind: VectorStrobe,
			Delay: sim.NewDeltaBounded(20 * sim.Millisecond),
			Pred:  pred, Modality: predicate.Instantaneously,
			Horizon: 40 * sim.Second,
			Faults:  plan,
		})
		for i := 0; i < n; i++ {
			obj := h.World.AddObject("obj", nil)
			h.Bind(i, obj, "p", "p")
			world.Toggler{Obj: obj, Attr: "p", MeanHigh: 2 * sim.Second,
				MeanLow: 2 * sim.Second}.Install(h.World, 40*sim.Second)
		}
		return h
	}
	clean := build(nil)
	cleanRes := clean.Run()
	faulty := build(faults.NewPlan().Crash(1, 10*sim.Second).Recover(1, 25*sim.Second))
	faultyRes := faulty.Run()
	if faulty.StrobeCk.Applied >= clean.StrobeCk.Applied {
		t.Fatalf("crash did not reduce applied strobes: %d vs %d",
			faulty.StrobeCk.Applied, clean.StrobeCk.Applied)
	}
	if faultyRes.Net.Sent >= cleanRes.Net.Sent {
		t.Fatalf("crash did not reduce traffic: %d vs %d", faultyRes.Net.Sent, cleanRes.Net.Sent)
	}
}

func TestInstallFaultsRejectsCheckerCrash(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("crash event targeting the checker index was accepted")
		}
	}()
	pred := ConjunctiveGlobal(predicate.MustParse("p@0 == 1"), 2)
	NewHarness(HarnessConfig{
		Seed: 1, N: 2, Kind: VectorStrobe,
		Pred: pred, Modality: predicate.Instantaneously,
		Faults: faults.NewPlan().Crash(2, sim.Second), // index N = checker
	})
}
