package core

import (
	"reflect"
	"testing"

	"pervasive/internal/faults"
	"pervasive/internal/sim"
)

// diffConfig is the shared scenario for the differential tests: 24 sensors
// on a 6×4 grid, pilot of 8, bounded delays with real jitter.
func diffConfig(shards, workers int) ShardedConfig {
	return ShardedConfig{
		Seed: 42, N: 24, Shards: shards, Workers: workers,
		Delay:   sim.NewDeltaBounded(5 * sim.Millisecond),
		Horizon: 2 * sim.Second,
		Trace:   true,
	}
}

type diffRun struct {
	res      ShardedResults
	counters []string
	trace    interface{}
}

func runSharded(t *testing.T, cfg ShardedConfig) diffRun {
	t.Helper()
	h := NewShardedHarness(cfg)
	res := h.Run()
	return diffRun{res: res, counters: h.CounterLines(), trace: h.MergedTrace().Records}
}

// assertSameRun checks every shard-count-invariant observable.
func assertSameRun(t *testing.T, label string, want, got diffRun) {
	t.Helper()
	if !reflect.DeepEqual(want.counters, got.counters) {
		t.Errorf("%s: counters diverge:\nwant %v\ngot  %v", label, want.counters, got.counters)
	}
	if !reflect.DeepEqual(want.res.Occurrences, got.res.Occurrences) {
		t.Errorf("%s: occurrences diverge: want %v got %v", label, want.res.Occurrences, got.res.Occurrences)
	}
	if !reflect.DeepEqual(want.res.Markers, got.res.Markers) {
		t.Errorf("%s: markers diverge: want %v got %v", label, want.res.Markers, got.res.Markers)
	}
	if !reflect.DeepEqual(want.res.Truth, got.res.Truth) {
		t.Errorf("%s: ground truth diverges: want %v got %v", label, want.res.Truth, got.res.Truth)
	}
	if want.res.Confusion != got.res.Confusion {
		t.Errorf("%s: confusion diverges: want %+v got %+v", label, want.res.Confusion, got.res.Confusion)
	}
	if want.res.ClockBytes != got.res.ClockBytes {
		t.Errorf("%s: clock bytes diverge: want %d got %d", label, want.res.ClockBytes, got.res.ClockBytes)
	}
	if !reflect.DeepEqual(want.trace, got.trace) {
		t.Errorf("%s: merged traces diverge", label)
	}
}

// TestShardedDifferentialAgainstSingleHeap is the differential oracle for
// the sharded engine: the identical seeded scenario through the S=1 fast
// path and through S ∈ {2, 4, 7} must produce byte-identical traces,
// checker verdicts, scores and counters — sequentially and with worker
// goroutines.
func TestShardedDifferentialAgainstSingleHeap(t *testing.T) {
	want := runSharded(t, diffConfig(1, 1))
	if len(want.res.Occurrences) == 0 {
		t.Fatalf("baseline detected nothing; scenario is too quiet to be a differential oracle")
	}
	if want.res.Confusion.TP == 0 {
		t.Fatalf("baseline scored no true positives: %+v", want.res.Confusion)
	}
	for _, shards := range []int{2, 4, 7} {
		for _, workers := range []int{1, 4} {
			got := runSharded(t, diffConfig(shards, workers))
			label := "S=" + itoa(shards) + "/w=" + itoa(workers)
			assertSameRun(t, label, want, got)
			if shards > 1 && got.res.CrossSent == 0 {
				t.Errorf("%s: no cross-shard traffic; partitioning is not being exercised", label)
			}
		}
	}
}

// TestShardedDifferentialWithFaults repeats the oracle under a fault plan
// whose crash/recover transitions land on different shards at different
// times, so epoch bumps and post-recovery rejoin strobes cross shard
// boundaries mid-run.
func TestShardedDifferentialWithFaults(t *testing.T) {
	plan := &faults.Plan{
		Events: []faults.Event{
			{Kind: faults.Crash, Proc: 2, At: 300 * sim.Millisecond},
			{Kind: faults.Recover, Proc: 2, At: 900 * sim.Millisecond},
			{Kind: faults.Crash, Proc: 17, At: 500 * sim.Millisecond},
			{Kind: faults.Recover, Proc: 17, At: 1400 * sim.Millisecond},
			{Kind: faults.Crash, Proc: 9, At: 1100 * sim.Millisecond},
		},
		Partitions: []faults.Partition{{
			Groups: [][]int{{0, 1, 2, 3}, {20, 21, 22, 23}},
			From:   600 * sim.Millisecond, To: 1 * sim.Second,
		}},
	}
	mk := func(shards, workers int) ShardedConfig {
		cfg := diffConfig(shards, workers)
		cfg.Faults = plan
		return cfg
	}
	want := runSharded(t, mk(1, 1))
	sup := "faults.suppressed=0"
	found := false
	for _, line := range want.counters {
		if len(line) >= len("faults.") && line[:len("faults.")] == "faults." && line != sup {
			found = true
		}
	}
	if !found {
		t.Fatalf("fault plan had no observable effect: %v", want.counters)
	}
	for _, shards := range []int{2, 4, 7} {
		got := runSharded(t, mk(shards, 4))
		assertSameRun(t, "faults/S="+itoa(shards), want, got)
	}
}

// TestShardedDenseSparseClocksAgree runs a fleet past the dense/sparse
// cutoff both ways: the clock representation must be invisible in every
// observable (stamps on the wire are exact diffs in both cases).
func TestShardedDenseSparseClocksAgree(t *testing.T) {
	mk := func(dense bool) ShardedConfig {
		return ShardedConfig{
			Seed: 7, N: 140, Shards: 4, Workers: 2,
			Delay:   sim.NewDeltaBounded(5 * sim.Millisecond),
			Horizon: 500 * sim.Millisecond,
			Trace:   true, DenseClocks: dense,
		}
	}
	want := runSharded(t, mk(true))
	got := runSharded(t, mk(false))
	if !reflect.DeepEqual(want.counters, got.counters) {
		t.Errorf("counters diverge across clock representations:\ndense  %v\nsparse %v",
			want.counters, got.counters)
	}
	if !reflect.DeepEqual(want.trace, got.trace) {
		t.Errorf("traces diverge across clock representations")
	}
	if !reflect.DeepEqual(want.res.Occurrences, got.res.Occurrences) {
		t.Errorf("occurrences diverge across clock representations")
	}
	if got.res.ClockBytes >= want.res.ClockBytes {
		t.Errorf("sparse clock state (%d bytes) not smaller than dense (%d bytes)",
			got.res.ClockBytes, want.res.ClockBytes)
	}
}

// TestShardedRaceAwareMatchesDetection verifies the memory-gated checker
// reconstructions change race telemetry only (markers, Borderline flags),
// never the detected intervals or the score.
func TestShardedRaceAwareMatchesDetection(t *testing.T) {
	mk := func(race bool) ShardedConfig {
		cfg := diffConfig(3, 1)
		cfg.RaceAware = race
		return cfg
	}
	spans := func(occ []Occurrence) [][2]sim.Time {
		out := make([][2]sim.Time, len(occ))
		for i, o := range occ {
			out[i] = [2]sim.Time{o.Start, o.End}
		}
		return out
	}
	want := runSharded(t, mk(false))
	got := runSharded(t, mk(true))
	if !reflect.DeepEqual(spans(want.res.Occurrences), spans(got.res.Occurrences)) {
		t.Errorf("race-aware checker changed detected intervals:\nblind %v\naware %v",
			spans(want.res.Occurrences), spans(got.res.Occurrences))
	}
	if want.res.Confusion != got.res.Confusion {
		t.Errorf("race-aware checker changed confusion: %+v vs %+v",
			want.res.Confusion, got.res.Confusion)
	}
	if len(want.res.Markers) != 0 {
		t.Errorf("race-blind checker emitted race markers: %v", want.res.Markers)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
