package core

import (
	"testing"

	"pervasive/internal/clock"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
	"pervasive/internal/world"
)

func TestPhysicalCheckerReplaysInTimestampOrder(t *testing.T) {
	eng := sim.NewEngine(1)
	pred := predicate.MustParse("x@0 == 1 && x@1 == 1")
	c := NewPhysicalChecker(eng, 2, pred, 50)

	// Reports arrive out of order; timestamps tell the true story:
	// p0 up @100, p1 up @120, p0 down @140 → overlap [120,140).
	eng.At(200, func(now sim.Time) {
		c.OnReport(ReportMsg{Proc: 0, Seq: 2, Var: "x", Value: 0, TS: 140}, now)
	})
	eng.At(210, func(now sim.Time) {
		c.OnReport(ReportMsg{Proc: 0, Seq: 1, Var: "x", Value: 1, TS: 100}, now)
	})
	eng.At(220, func(now sim.Time) {
		c.OnReport(ReportMsg{Proc: 1, Seq: 1, Var: "x", Value: 1, TS: 120}, now)
	})
	eng.RunAll()
	c.Finish(1000)

	occ := c.Occurrences()
	if len(occ) != 1 {
		t.Fatalf("occurrences %v", occ)
	}
	if occ[0].Start != 120 || occ[0].End != 140 {
		t.Fatalf("occurrence %+v", occ[0])
	}
	if c.Reordered != 0 {
		t.Fatalf("buffered replay still reordered %d", c.Reordered)
	}
}

func TestPhysicalCheckerSkewFalseNegative(t *testing.T) {
	// The Mayo–Kearns race: true overlap shorter than the skew can vanish
	// under timestamp order. p0 true [100,110); p1 true [105,200): true
	// overlap 5µs. p0's clock is +20 fast, p1's −20 slow: reported p0
	// interval [120,130), p1 [85,180) — overlap survives here, so instead
	// make p1 rise *after* p0 falls in reported time:
	// p0 [100,110)+20 → [120,130); p1 rises 105−20 → 85 … overlap [120,130)
	// still there. Use opposite signs: p0 −20 → [80,90); p1 +20 → 125.
	eng := sim.NewEngine(1)
	pred := predicate.MustParse("x@0 == 1 && x@1 == 1")
	c := NewPhysicalChecker(eng, 2, pred, 100)
	send := func(at sim.Time, proc int, val float64, ts sim.Time) {
		eng.At(at, func(now sim.Time) {
			c.OnReport(ReportMsg{Proc: proc, Seq: int(at), Var: "x", Value: val, TS: ts}, now)
		})
	}
	// True: p0 [100,110), p1 [105,300). Clocks: p0 −20, p1 +20.
	send(101, 0, 1, 80)
	send(111, 0, 0, 90)
	send(106, 1, 1, 125)
	send(301, 1, 0, 320)
	eng.RunAll()
	c.Finish(1000)
	if len(c.Occurrences()) != 0 {
		t.Fatalf("expected a false negative under skew, got %v", c.Occurrences())
	}
}

func TestPhysicalCheckerEndToEnd(t *testing.T) {
	// Full harness: two pulse generators with long overlaps, tight ε; the
	// physical detector should catch nearly everything.
	h := NewHarness(HarnessConfig{
		Seed: 3, N: 2, Kind: PhysicalReport,
		Delay:    sim.NewDeltaBounded(5 * sim.Millisecond),
		Pred:     predicate.MustParse("x@0 == 1 && x@1 == 1"),
		Modality: predicate.Instantaneously,
		Epsilon:  200 * sim.Microsecond,
		Horizon:  20 * sim.Second,
	})
	a := h.World.AddObject("a", nil)
	b := h.World.AddObject("b", nil)
	h.Bind(0, a, "p", "x")
	h.Bind(1, b, "p", "x")
	world.Toggler{Obj: a, Attr: "p", MeanHigh: 300 * sim.Millisecond,
		MeanLow: 300 * sim.Millisecond}.Install(h.World, h.Cfg.Horizon)
	world.Toggler{Obj: b, Attr: "p", MeanHigh: 300 * sim.Millisecond,
		MeanLow: 300 * sim.Millisecond}.Install(h.World, h.Cfg.Horizon)
	res := h.Run()
	if len(res.Truth) < 5 {
		t.Fatalf("workload produced only %d true intervals", len(res.Truth))
	}
	if r := res.Confusion.Recall(); r < 0.9 {
		t.Fatalf("recall %.3f too low: %+v", r, res.Confusion)
	}
	if p := res.Confusion.Precision(); p < 0.9 {
		t.Fatalf("precision %.3f too low: %+v", p, res.Confusion)
	}
}

func TestEpsilonFleetPairwiseSkewBound(t *testing.T) {
	// Harness-level assumption check: the ε fleet keeps pairwise skew ≤ ε.
	fleet := clock.NewEpsilonFleet(stats.NewRNG(4), 32, 10*sim.Millisecond)
	for _, a := range fleet {
		for _, b := range fleet {
			skew := a.Read(999) - b.Read(999)
			if skew < -10*sim.Millisecond || skew > 10*sim.Millisecond {
				t.Fatalf("pairwise skew %v", skew)
			}
		}
	}
}

func TestPhysicalCheckerAccessors(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewPhysicalChecker(eng, 1, predicate.MustParse("x@0 > 0"), 10)
	c.OnReport(ReportMsg{Proc: 0, Seq: 1, Var: "x", Value: 1, TS: 5}, 5)
	eng.RunAll()
	c.Finish(100)
	if c.Applied() != 1 {
		t.Fatalf("applied %d", c.Applied())
	}
	// Reports after Finish are ignored.
	c.OnReport(ReportMsg{Proc: 0, Seq: 2, Var: "x", Value: 0, TS: 50}, 50)
	if c.Applied() != 1 {
		t.Fatal("report applied after Finish")
	}
	// Out-of-range proc dropped.
	c2 := NewPhysicalChecker(eng, 1, predicate.MustParse("x@0 > 0"), 10)
	c2.OnReport(ReportMsg{Proc: 9, Seq: 1, Var: "x", Value: 1, TS: 5}, 5)
	c2.Finish(100)
	if c2.Applied() != 0 {
		t.Fatal("bad proc applied")
	}
}

func TestClockKindString(t *testing.T) {
	if VectorStrobe.String() == "" || ScalarStrobe.String() == "" ||
		PhysicalReport.String() == "" {
		t.Fatal("empty kind names")
	}
}
