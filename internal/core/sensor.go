package core

import (
	"fmt"

	"pervasive/internal/clock"
	"pervasive/internal/flight"
	"pervasive/internal/network"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
	"pervasive/internal/trace"
	"pervasive/internal/world"
)

// ClockKind selects the time-implementation option of Section 3.2.1 that a
// sensor fleet runs.
type ClockKind int

// Supported clock kinds.
const (
	// VectorStrobe: strobe vector clocks (SVC1/SVC2), broadcast per event.
	VectorStrobe ClockKind = iota
	// ScalarStrobe: strobe scalar clocks (SSC1/SSC2), broadcast per event.
	ScalarStrobe
	// PhysicalReport: ε-synchronized physical clocks; sensors report
	// timestamped events directly to the checker (no broadcast).
	PhysicalReport
	// DiffVectorStrobe: strobe vector clocks with Singhal–Kshemkalyani
	// differential broadcast — semantically the vector protocol, with
	// O(changed) instead of O(n) strobes on the wire.
	DiffVectorStrobe
)

// String names the clock kind.
func (k ClockKind) String() string {
	switch k {
	case VectorStrobe:
		return "strobe-vector"
	case ScalarStrobe:
		return "strobe-scalar"
	case DiffVectorStrobe:
		return "strobe-diff-vector"
	default:
		return "physical"
	}
}

// Sensor is one sensor/actuator process of the network plane. It observes
// bound world-plane attributes (sense events), maintains its clock, emits
// the protocol's control traffic, and — in conjunctive mode — tracks the
// truth intervals of its local conjunct.
type Sensor struct {
	ID   int
	Kind ClockKind

	eng        *sim.Engine
	net        Transport
	checkerIdx int
	n          int // fleet size (for fresh clocks on Rejoin)

	vec *clock.StrobeVector
	sc  *clock.StrobeScalar
	// dvec is the differential strobe clock behind the representation
	// interface: dense below clock.DenseSparseCutoff, sorted-pairs sparse
	// above (or as the builder chose). Rejoin preserves the representation.
	dvec clock.VectorState
	phys clock.Physical

	seq   int
	epoch int  // bumped on each Rejoin; carried in strobes
	down  bool // crashed: sense nothing, merge nothing
	vals  map[string]float64

	// Conjunctive-mode state: the local conjunct and its current interval.
	localConj   predicate.Cond
	conjOpen    bool
	openStamp   clock.Vector
	openAt      sim.Time
	intervalIdx int

	tr *trace.Trace // optional event trace
	fl *flight.Recorder

	// StampLog accumulates (stamp, true time) per sense event for lattice
	// analysis when enabled.
	LogStamps bool
	Stamps    []clock.Vector
	Times     []sim.Time

	// Local, if non-nil, is this sensor's own checker replica: since
	// strobes are system-wide broadcasts, every sensor can evaluate the
	// global predicate itself and actuate locally, instead of relying on
	// the distinguished root P0. The replica consumes the sensor's own
	// sense events immediately and remote strobes on receipt.
	Local *StrobeChecker
}

// SensorConfig configures a sensor fleet.
type SensorConfig struct {
	N          int       // number of sensors
	Kind       ClockKind // clock/protocol family
	CheckerIdx int       // network index of the checker process P0
	// Phys supplies each sensor's physical clock (PhysicalReport mode).
	Phys []clock.EpsilonSynced
	// LocalConj, if non-nil, turns on conjunctive interval tracking; the
	// conjunct is evaluated on the sensor's own variables (its Proc index
	// is remapped to this sensor).
	LocalConj predicate.Cond
	Trace     *trace.Trace
	LogStamps bool
	// Flight, if non-nil, records each sense event — the sender-side
	// half of the flight recorder's message edges (the transport records
	// the receiving half). Nil costs one branch per sense.
	Flight *flight.Recorder
}

// NewSensors builds the fleet and registers each sensor's message handler
// on the transport. The transport must have at least N+1 nodes (the extra
// one being the checker).
func NewSensors(eng *sim.Engine, net *network.Net, cfg SensorConfig) []*Sensor {
	if net.N() < cfg.N+1 {
		panic(fmt.Sprintf("core: transport has %d nodes, need %d sensors + checker",
			net.N(), cfg.N))
	}
	out := make([]*Sensor, cfg.N)
	for i := 0; i < cfg.N; i++ {
		s := &Sensor{
			ID: i, Kind: cfg.Kind, n: cfg.N,
			eng: eng, net: net, checkerIdx: cfg.CheckerIdx,
			vals:      make(map[string]float64),
			localConj: cfg.LocalConj,
			tr:        cfg.Trace,
			fl:        cfg.Flight,
			LogStamps: cfg.LogStamps,
		}
		switch cfg.Kind {
		case VectorStrobe:
			s.vec = clock.NewStrobeVector(i, cfg.N)
		case ScalarStrobe:
			s.sc = &clock.StrobeScalar{}
		case DiffVectorStrobe:
			s.dvec = clock.NewDiffStrobeVector(i, cfg.N)
		case PhysicalReport:
			if i < len(cfg.Phys) {
				s.phys = cfg.Phys[i]
			} else {
				s.phys = clock.EpsilonSynced{}
			}
		}
		net.Register(i, s.onMessage)
		out[i] = s
	}
	return out
}

// Bind subscribes the sensor to object obj's attribute attr, exposing it
// as variable varName at this sensor's process index.
func (s *Sensor) Bind(w *world.World, obj int, attr, varName string) {
	w.Subscribe(obj, attr, func(ev world.Event) {
		s.onSense(varName, ev.New)
	})
}

// onSense handles one sense (n) event: tick the clock, emit control
// traffic, maintain the conjunct interval.
func (s *Sensor) onSense(varName string, value float64) {
	if s.down {
		return // a crashed process observes nothing and sends nothing
	}
	now := s.eng.Now()
	s.seq++
	s.vals[varName] = value

	var stamp clock.Vector
	var ownClock uint64 // this sensor's logical component at the event
	switch s.Kind {
	case VectorStrobe:
		stamp = s.vec.Strobe() // SVC1
		ownClock = stamp[s.ID]
		msg := StrobeMsg{Proc: s.ID, Seq: s.seq, Epoch: s.epoch, Var: varName, Value: value, Vec: stamp}
		s.net.BroadcastStamped(s.ID, msg, flight.Stamp{Epoch: int32(s.epoch), Seq: uint64(s.seq), Clock: ownClock})
		if s.Local != nil {
			s.Local.OnStrobe(msg, now)
		}
	case ScalarStrobe:
		sv := s.sc.Strobe() // SSC1
		ownClock = sv
		msg := StrobeMsg{Proc: s.ID, Seq: s.seq, Epoch: s.epoch, Var: varName, Value: value, Scalar: sv}
		s.net.BroadcastStamped(s.ID, msg, flight.Stamp{Epoch: int32(s.epoch), Seq: uint64(s.seq), Clock: ownClock})
		if s.Local != nil {
			s.Local.OnStrobe(msg, now)
		}
	case DiffVectorStrobe:
		sparse := s.dvec.Strobe() // SVC1 with differential wire format
		ownClock = s.dvec.OwnClock()
		// Materializing the full vector is O(n); only pay for it when a
		// consumer actually wants dense stamps. At scale (sparse clocks,
		// no trace) a sense event touches O(active peers) state only.
		if s.tr != nil || s.LogStamps || s.localConj != nil {
			stamp = s.dvec.Snapshot()
		}
		msg := StrobeMsg{Proc: s.ID, Seq: s.seq, Epoch: s.epoch, Var: varName, Value: value, Sparse: sparse}
		s.net.BroadcastStamped(s.ID, msg, flight.Stamp{Epoch: int32(s.epoch), Seq: uint64(s.seq), Clock: ownClock})
		if s.Local != nil {
			s.Local.OnStrobe(msg, now)
		}
	case PhysicalReport:
		// Physical reports carry no logical clock; the stamp is just the
		// per-process seq (matching ReportMsg.FlightStamp).
		s.net.SendStamped(s.ID, s.checkerIdx, ReportMsg{
			Proc: s.ID, Seq: s.seq, Var: varName, Value: value,
			TS: s.phys.Read(now),
		}, flight.Stamp{Seq: uint64(s.seq)})
	}
	if s.tr != nil {
		s.tr.Append(trace.Record{
			Proc: s.ID, Type: trace.Sense, At: now,
			Attr: varName, Value: value, Vector: stamp,
		})
	}
	if s.fl != nil {
		s.fl.Record(flight.Rec{
			Kind: flight.Sense, Proc: int32(s.ID), Peer: flight.NoPeer,
			Epoch: int32(s.epoch), Seq: uint64(s.seq), At: now,
			Attr: s.fl.Intern(varName), Clock: ownClock, Value: value,
		})
	}
	if s.LogStamps && stamp != nil {
		s.Stamps = append(s.Stamps, stamp)
		s.Times = append(s.Times, now)
	}
	s.trackConjunct(now, stamp)
}

// trackConjunct opens/closes the local-conjunct-true interval and reports
// closed intervals to the checker.
func (s *Sensor) trackConjunct(now sim.Time, stamp clock.Vector) {
	if s.localConj == nil {
		return
	}
	holds := s.localConj.Holds(localState{proc: s.ID, vals: s.vals})
	switch {
	case holds && !s.conjOpen:
		s.conjOpen = true
		s.openStamp = stamp.Clone()
		s.openAt = now
	case !holds && s.conjOpen:
		s.conjOpen = false
		s.net.Send(s.ID, s.checkerIdx, IntervalMsg{
			Proc: s.ID, Index: s.intervalIdx,
			Open: s.openStamp, Close: stamp.Clone(),
			OpenAt: s.openAt, CloseAt: now,
		})
		s.intervalIdx++
	}
}

// FlushConjunct closes a still-open conjunct interval at the horizon so
// trailing occurrences are reported. Call once after the run.
func (s *Sensor) FlushConjunct(horizon sim.Time) {
	if s.localConj == nil || !s.conjOpen {
		return
	}
	s.conjOpen = false
	var closeStamp clock.Vector
	if s.vec != nil {
		closeStamp = s.vec.Snapshot()
	}
	s.net.Send(s.ID, s.checkerIdx, IntervalMsg{
		Proc: s.ID, Index: s.intervalIdx,
		Open: s.openStamp, Close: closeStamp,
		OpenAt: s.openAt, CloseAt: horizon,
	})
	s.intervalIdx++
}

// onMessage merges incoming strobes into the local clock (rules SVC2 /
// SSC2). Note the receiver does not tick — the defining difference from
// causal clocks (Section 4.2.3).
func (s *Sensor) onMessage(m network.Message, now sim.Time) {
	if s.down {
		return // defensive: the transport already gates crashed receivers
	}
	strobe, ok := m.Payload.(StrobeMsg)
	if !ok {
		return
	}
	switch s.Kind {
	case VectorStrobe:
		if strobe.Vec != nil {
			s.vec.OnStrobe(strobe.Vec)
		}
	case ScalarStrobe:
		s.sc.OnStrobe(strobe.Scalar)
	case DiffVectorStrobe:
		if strobe.Sparse != nil {
			s.dvec.OnStrobe(strobe.Sparse)
		}
	}
	if s.Local != nil {
		s.Local.OnStrobe(strobe, now)
	}
	if s.tr != nil {
		s.tr.Append(trace.Record{
			Proc: s.ID, Type: trace.Receive, At: now, Peer: strobe.Proc,
		})
	}
}

// Crash takes the sensor down: until Rejoin it ignores sense events and
// incoming strobes. Volatile protocol state (clock, seq) is conceptually
// lost at this instant; Rejoin rebuilds it fresh.
func (s *Sensor) Crash() { s.down = true }

// Rejoin brings a crashed sensor back with a fresh strobe clock, Seq
// restarting from 1 and a bumped epoch — the wire-visible signal that
// lets the checker separate the reboot from a stale reordered strobe.
// Locally cached variable values are also lost (re-sensed on the next
// world event), as is any open conjunct interval.
func (s *Sensor) Rejoin() {
	s.down = false
	s.seq = 0
	s.epoch++
	s.conjOpen = false
	s.vals = make(map[string]float64)
	switch s.Kind {
	case VectorStrobe:
		s.vec = clock.NewStrobeVector(s.ID, s.n)
	case ScalarStrobe:
		s.sc = &clock.StrobeScalar{}
	case DiffVectorStrobe:
		// Fresh clock in the same representation the sensor was built with.
		if _, sparse := s.dvec.(*clock.SparseStrobeVector); sparse {
			s.dvec = clock.NewSparseStrobeVector(s.ID, s.n)
		} else {
			s.dvec = clock.NewDiffStrobeVector(s.ID, s.n)
		}
	}
}

// ClockStateBytes estimates the resident footprint of the sensor's logical
// clock state — the quantity the sparse representation keeps O(active
// peers) instead of O(n).
func (s *Sensor) ClockStateBytes() int {
	switch {
	case s.dvec != nil:
		return s.dvec.StateBytes()
	case s.vec != nil:
		return 8 * s.n
	default:
		return 8
	}
}

// Down reports whether the sensor is currently crashed.
func (s *Sensor) Down() bool { return s.down }

// Epoch returns the sensor's current crash/recovery epoch.
func (s *Sensor) Epoch() int { return s.epoch }

// localState adapts a sensor's local variables to predicate.State; any
// process index in the conjunct resolves to this sensor's values.
type localState struct {
	proc int
	vals map[string]float64
}

// Get implements predicate.State.
func (l localState) Get(_ int, name string) float64 { return l.vals[name] }

// NumProcs implements predicate.State.
func (l localState) NumProcs() int { return l.proc + 1 }
