package core

import (
	"testing"

	"pervasive/internal/obs"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
	"pervasive/internal/world"
)

// runInstrumentedHall wires a tiny two-sensor harness with an obs
// registry and drives a couple of predicate flips.
func runInstrumentedHall(t *testing.T, kind ClockKind) (*obs.Registry, Results) {
	t.Helper()
	reg := obs.NewRegistry()
	h := NewHarness(HarnessConfig{
		Seed: 1, N: 2, Kind: kind,
		Delay:    sim.NewDeltaBounded(10 * sim.Millisecond),
		Pred:     predicate.MustParse("x@0 + x@1 > 1"),
		Modality: predicate.Instantaneously,
		Horizon:  2 * sim.Second,
		Obs:      reg,
	})
	a := h.World.AddObject("a", nil)
	b := h.World.AddObject("b", nil)
	h.Bind(0, a, "v", "x")
	h.Bind(1, b, "v", "x")
	world.Toggler{Obj: a, Attr: "v", MeanHigh: 200 * sim.Millisecond,
		MeanLow: 200 * sim.Millisecond}.Install(h.World, 2*sim.Second)
	world.Toggler{Obj: b, Attr: "v", MeanHigh: 200 * sim.Millisecond,
		MeanLow: 200 * sim.Millisecond}.Install(h.World, 2*sim.Second)
	return reg, h.Run()
}

func TestHarnessObsWiring(t *testing.T) {
	reg, res := runInstrumentedHall(t, VectorStrobe)
	snap := reg.Snapshot()
	if snap.TimeBase != "virtual" {
		t.Fatalf("time base %q", snap.TimeBase)
	}
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	gauges := map[string]obs.GaugeSnap{}
	for _, g := range snap.Gauges {
		gauges[g.Name] = g
	}

	// Engine collector: executed events must be visible and nonzero.
	if counters["sim.events.executed"] == 0 || counters["sim.events.scheduled"] == 0 {
		t.Fatalf("engine counters missing: %v", counters)
	}
	if counters["sim.events.scheduled"] < counters["sim.events.executed"] {
		t.Fatalf("scheduled %d < executed %d",
			counters["sim.events.scheduled"], counters["sim.events.executed"])
	}
	if gauges["sim.heap.depth"].Max == 0 {
		t.Fatal("heap depth watermark never raised")
	}

	// Network instruments must agree with the legacy Stats block.
	if counters["net.sent"] != res.Net.Sent {
		t.Fatalf("net.sent %d want %d", counters["net.sent"], res.Net.Sent)
	}
	if counters["net.delivered"] != res.Net.Delivered {
		t.Fatalf("net.delivered %d want %d", counters["net.delivered"], res.Net.Delivered)
	}
	if counters["net.bytes"] != res.Net.Bytes {
		t.Fatalf("net.bytes %d want %d", counters["net.bytes"], res.Net.Bytes)
	}
	var delayHist *obs.HistSnap
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == "net.delay_us" {
			delayHist = &snap.Histograms[i]
		}
	}
	if delayHist == nil || int64(delayHist.Count) != res.Net.Sent-res.Net.Dropped {
		t.Fatalf("delay histogram %+v (sent %d dropped %d)",
			delayHist, res.Net.Sent, res.Net.Dropped)
	}
	if delayHist.Max > 10_000 { // Δ-bounded at 10 ms
		t.Fatalf("delay exceeds bound: %v", delayHist.Max)
	}

	// Checker instruments.
	if counters["checker.strobes_applied"] == 0 || counters["checker.pred_evals"] == 0 {
		t.Fatalf("checker counters missing: %v", counters)
	}
	if counters["checker.detections"] != int64(len(res.Occurrences)) {
		t.Fatalf("detections %d want %d",
			counters["checker.detections"], len(res.Occurrences))
	}

	// The harness run span must cover the virtual run.
	found := false
	for _, s := range snap.Spans {
		if s.Name == "harness.run" && s.End >= sim.Second {
			found = true
		}
	}
	if !found {
		t.Fatalf("no harness.run span: %+v", snap.Spans)
	}
}

func TestHarnessObsNilIsNoop(t *testing.T) {
	// The uninstrumented path must behave identically (determinism) and
	// not panic anywhere.
	_, res1 := runInstrumentedHall(t, VectorStrobe)
	h := NewHarness(HarnessConfig{
		Seed: 1, N: 2, Kind: VectorStrobe,
		Delay:    sim.NewDeltaBounded(10 * sim.Millisecond),
		Pred:     predicate.MustParse("x@0 + x@1 > 1"),
		Modality: predicate.Instantaneously,
		Horizon:  2 * sim.Second,
	})
	a := h.World.AddObject("a", nil)
	b := h.World.AddObject("b", nil)
	h.Bind(0, a, "v", "x")
	h.Bind(1, b, "v", "x")
	world.Toggler{Obj: a, Attr: "v", MeanHigh: 200 * sim.Millisecond,
		MeanLow: 200 * sim.Millisecond}.Install(h.World, 2*sim.Second)
	world.Toggler{Obj: b, Attr: "v", MeanHigh: 200 * sim.Millisecond,
		MeanLow: 200 * sim.Millisecond}.Install(h.World, 2*sim.Second)
	res2 := h.Run()
	if res1.Net.Sent != res2.Net.Sent || len(res1.Occurrences) != len(res2.Occurrences) {
		t.Fatalf("instrumentation changed behaviour: %+v vs %+v", res1.Net, res2.Net)
	}
}

func TestPhysicalCheckerObsQueue(t *testing.T) {
	reg, _ := runInstrumentedHall(t, PhysicalReport)
	snap := reg.Snapshot()
	var q *obs.GaugeSnap
	for i := range snap.Gauges {
		if snap.Gauges[i].Name == "checker.queue_depth" {
			q = &snap.Gauges[i]
		}
	}
	if q == nil || q.Max == 0 {
		t.Fatalf("reorder queue gauge not recorded: %+v", snap.Gauges)
	}
	if q.Value != 0 {
		t.Fatalf("queue not drained at finish: %+v", q)
	}
}
