package core

import (
	"pervasive/internal/sim"
	"pervasive/internal/tl"
)

// occSignal converts an occurrence stream into a boolean signal over
// [0, horizon).
func occSignal(occ []Occurrence, horizon sim.Time) tl.Signal {
	spans := make([]tl.Span, 0, len(occ))
	for _, o := range occ {
		end := o.End
		if end == 0 || end > horizon {
			end = horizon
		}
		spans = append(spans, tl.Span{Lo: o.Start, Hi: end})
	}
	return tl.NewSignal(spans, horizon)
}

// Divergence returns the fraction of [0, horizon) during which two
// detectors' views of the predicate disagree — the price of replicated
// (in-network) detection: each replica sees the strobes in its own arrival
// order, so replicas flip at slightly different instants. With Δ-bounded
// delays the disagreement is confined to O(Δ) windows around each flip.
func Divergence(a, b []Occurrence, horizon sim.Time) float64 {
	if horizon <= 0 {
		return 0
	}
	sa := occSignal(a, horizon)
	sb := occSignal(b, horizon)
	xor := sa.And(sb.Not()).Or(sb.And(sa.Not()))
	return float64(xor.TrueTime()) / float64(horizon)
}

// SignalOf exposes a detector occurrence stream as a tl.Signal so MTL
// properties (Section 3.1.1.a.iv) can be monitored over detector output.
func SignalOf(occ []Occurrence, horizon sim.Time) tl.Signal {
	return occSignal(occ, horizon)
}
