package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pervasive/internal/checker"
	"pervasive/internal/clock"
	"pervasive/internal/faults"
	"pervasive/internal/network"
	"pervasive/internal/obs"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
	"pervasive/internal/trace"
	"pervasive/internal/workload"
	"pervasive/internal/world"
)

// ShardedConfig assembles one spatially-sharded detection run: N sensors
// on a radio topology, partitioned contiguously over Shards lockstep
// engines, with the checker P0 as transport index N on the last shard.
//
// The scored predicate covers only the Pilot leading sensors ("at least
// PilotK of the pilot motion sensors are high"), so predicate evaluation
// and ground truth stay O(Pilot) while the remaining fleet generates real
// sensing, strobe and clock load. That asymmetry is what the paper's
// deployment story needs at p ≥ 10⁴: the network-wide protocol machinery
// runs at full scale, the global predicate is local to a neighborhood.
type ShardedConfig struct {
	Seed   uint64
	N      int // sensor count; the checker is transport index N
	Shards int
	// Workers bounds how many shards execute concurrently within an epoch
	// (<= 1: sequential). Purely a wall-clock knob; results are identical.
	Workers int
	// Delay must have a positive minimum bound (sim.MinDelayBound) when
	// Shards > 1; it becomes the conservative lookahead.
	Delay sim.DelayModel
	// Topo is the sensor radio topology over N nodes; nil defaults to a
	// near-square grid. Strobes reach topology neighbors plus the checker.
	Topo network.Topology
	// Pilot (default min(8, N)) and PilotK (default majority of Pilot)
	// define the scored predicate p@0 + … + p@(Pilot-1) >= PilotK.
	Pilot  int
	PilotK int
	// MeanHigh/MeanLow are the per-sensor toggler dwell times (defaults
	// 800ms / 1.5s).
	MeanHigh, MeanLow sim.Duration
	Horizon           sim.Time
	// Tol is the scoring tolerance; defaults to the delay bound + 1ms.
	Tol sim.Duration
	// RaceAware keeps the checker's per-sender vector reconstructions
	// (O(N) memory per active sender — O(N²) worst case). Off by default
	// for scale runs; the differential oracle covers both settings.
	RaceAware bool
	// CheckerFanout selects the detection architecture: <= 1 keeps the
	// flat StrobeChecker (the R=1 fast path and differential oracle);
	// >= 2 builds a checker tree of that many regional aggregators
	// (internal/checker) with batched upward sync. Detection output is
	// byte-identical either way; the tree bounds per-node state and
	// makes per-report work O(1) in the fleet size.
	CheckerFanout int
	// DenseClocks forces dense vector state regardless of fleet size (the
	// single-heap-era baseline the benches compare against); otherwise
	// clock.NewVectorState picks by density.
	DenseClocks bool
	// Workload overrides the fleet workload with any workload.Source
	// (objects are global sensor indices, attr "p"); nil uses the default
	// per-sensor toggler fleet parameterized by MeanHigh/MeanLow. The
	// source is materialized once and partitioned across shards, so the
	// stream — and therefore the whole run — is shard- and worker-count
	// invariant, and Harness.Events can be recorded to a trace.
	Workload workload.Source
	// Faults, if non-nil, is the deterministic fault plan; transitions are
	// scheduled on each target's own shard.
	Faults *faults.Plan
	Obs    *obs.Registry
	// Trace records per-shard sense/receive traces, merged deterministically
	// by MergedTrace. Test-sized runs only: stamps are materialized densely.
	Trace bool
}

// ShardedHarness owns one wired sharded simulation.
type ShardedHarness struct {
	Cfg     ShardedConfig
	Sh      *sim.Shards
	Net     *network.ShardedNet
	Worlds  []*world.World // one per shard
	Sensors []*Sensor
	// Checker is the flat P0 (CheckerFanout <= 1); Tree the hierarchical
	// checker (CheckerFanout >= 2). Exactly one is non-nil.
	Checker *StrobeChecker
	Tree    *checker.Tree
	Faults  *faults.Injector
	Pred    predicate.Cond
	// Events is the materialized fleet workload driving the run, in
	// canonical order with global sensor indices as objects — the stream
	// a recorder would capture, available before Run for encoding.
	Events []workload.Event

	smap    network.ShardMap
	objBase []int // first global sensor index hosted by each shard
	traces  []*trace.Trace
}

// ShardedResults of a sharded run.
type ShardedResults struct {
	Occurrences []Occurrence
	Markers     []sim.Time
	Truth       []world.Interval
	Confusion   stats.Confusion
	Net         network.Stats
	Horizon     sim.Time
	// ClockBytes is the fleet's summed resident clock-state footprint at
	// the end of the run (peak for monotonically-growing sparse state).
	ClockBytes int64
	Epochs     uint64
	CrossSent  uint64
}

// PilotPred builds the scored predicate p@0 + … + p@(m-1) >= k.
func PilotPred(m, k int) predicate.Cond {
	terms := make([]string, m)
	for i := range terms {
		terms[i] = "p@" + strconv.Itoa(i)
	}
	return predicate.MustParse(strings.Join(terms, " + ") + " >= " + strconv.Itoa(k))
}

// NewShardedHarness wires shards, worlds, transport, sensor fleet,
// workload and checker. The construction order — and every random stream
// in it — is indexed by sensor, never by shard, so any shard count yields
// the same run.
func NewShardedHarness(cfg ShardedConfig) *ShardedHarness {
	if cfg.N <= 0 {
		panic("core: sharded harness needs at least one sensor")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Shards > cfg.N {
		cfg.Shards = cfg.N
	}
	if cfg.Delay == nil {
		cfg.Delay = sim.NewDeltaBounded(5 * sim.Millisecond)
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 4 * sim.Second
	}
	if cfg.MeanHigh <= 0 {
		cfg.MeanHigh = 800 * sim.Millisecond
	}
	if cfg.MeanLow <= 0 {
		cfg.MeanLow = 1500 * sim.Millisecond
	}
	if cfg.Pilot <= 0 || cfg.Pilot > cfg.N {
		cfg.Pilot = 8
		if cfg.Pilot > cfg.N {
			cfg.Pilot = cfg.N
		}
	}
	if cfg.PilotK <= 0 {
		cfg.PilotK = cfg.Pilot/2 + 1
	}
	if cfg.Tol <= 0 {
		bound := cfg.Delay.Bound()
		if bound == sim.Never {
			bound = 100 * sim.Millisecond
		}
		cfg.Tol = bound + sim.Millisecond
	}
	if cfg.Topo == nil {
		cfg.Topo = gridFor(cfg.N)
	}

	look := sim.MinDelayBound(cfg.Delay)
	sh := sim.NewShards(cfg.Shards, look, cfg.Seed)
	sh.SetWorkers(cfg.Workers)
	smap := network.ShardMap{Procs: cfg.N + 1, Shards: cfg.Shards}
	snet := network.NewSharded(sh, cfg.Topo, cfg.Delay, smap, mix64(cfg.Seed, 0x1))
	snet.NeighborScope = true
	snet.AlwaysReach = []int{cfg.N}

	h := &ShardedHarness{
		Cfg: cfg, Sh: sh, Net: snet, smap: smap,
		Worlds:  make([]*world.World, cfg.Shards),
		objBase: make([]int, cfg.Shards),
		Pred:    PilotPred(cfg.Pilot, cfg.PilotK),
	}
	for k := range h.Worlds {
		h.Worlds[k] = world.New(sh.Engine(k))
		h.objBase[k] = -1
	}
	if cfg.Trace {
		h.traces = make([]*trace.Trace, cfg.Shards)
		for k := range h.traces {
			h.traces[k] = &trace.Trace{N: cfg.N + 1}
		}
	}

	// Sensors and objects, all indexed by sensor. Each sensor's world
	// object lives on its own shard; the per-shard object id is the
	// sensor's offset from the shard's first sensor.
	h.Sensors = make([]*Sensor, cfg.N)
	for i := 0; i < cfg.N; i++ {
		k := smap.Of(i)
		if h.objBase[k] < 0 {
			h.objBase[k] = i
		}
		s := &Sensor{
			ID: i, Kind: DiffVectorStrobe, n: cfg.N,
			eng: sh.Engine(k), net: snet.Part(k), checkerIdx: cfg.N,
			vals: make(map[string]float64),
		}
		if cfg.DenseClocks {
			s.dvec = clock.NewDiffStrobeVector(i, cfg.N)
		} else {
			s.dvec = clock.NewVectorState(i, cfg.N)
		}
		if h.traces != nil {
			s.tr = h.traces[k]
		}
		snet.Register(i, s.onMessage)
		h.Sensors[i] = s

		w := h.Worlds[k]
		obj := w.AddObject("o"+strconv.Itoa(i), nil)
		s.Bind(w, obj, "p", "p")
	}

	// Fleet workload: one materialized source over global sensor indices,
	// partitioned per shard and pumped locally. The stream is generated
	// (or replayed) identically at every shard count; the per-sensor
	// toggler streams match the former in-loop installation exactly (one
	// workload-root fork per sensor, in sensor order).
	src := cfg.Workload
	if src == nil {
		src = workload.TogglerFleet{
			Seed: mix64(cfg.Seed, 0x2), N: cfg.N, Attr: "p",
			MeanHigh: cfg.MeanHigh, MeanLow: cfg.MeanLow,
		}
	}
	h.Events = src.Events(cfg.Horizon)
	parts := make([][]workload.Event, cfg.Shards)
	for _, ev := range h.Events {
		if ev.Obj < 0 || ev.Obj >= cfg.N {
			panic(fmt.Sprintf("core: workload event targets object %d; fleet objects are 0..%d",
				ev.Obj, cfg.N-1))
		}
		k := smap.Of(ev.Obj)
		ev.Obj -= h.objBase[k] // global sensor index -> shard-local object
		parts[k] = append(parts[k], ev)
	}
	for k, p := range parts {
		workload.Install(sh.Engine(k), h.Worlds[k], p)
	}
	// Ground truth is scored on the pilot only; shards hosting no pilot
	// sensor skip logging entirely.
	for k, w := range h.Worlds {
		if h.objBase[k] < 0 || h.objBase[k] >= cfg.Pilot {
			w.DiscardLog()
		}
	}

	if cfg.CheckerFanout >= 2 {
		h.Tree = checker.New(checker.Config{
			N: cfg.N, Pred: h.Pred, Fanout: cfg.CheckerFanout,
			RaceAware:     cfg.RaceAware,
			BatchInterval: look,
		})
		h.Tree.SetObs(cfg.Obs)
		snet.Register(cfg.N, func(m network.Message, now sim.Time) {
			if strobe, ok := m.Payload.(StrobeMsg); ok {
				h.Tree.OnReport(treeReport(strobe), now)
			}
		})
	} else {
		h.Checker = newStrobeChecker(cfg.N, h.Pred, cfg.RaceAware)
		h.Checker.SetObs(cfg.Obs)
		snet.Register(cfg.N, func(m network.Message, now sim.Time) {
			if strobe, ok := m.Payload.(StrobeMsg); ok {
				h.Checker.OnStrobe(strobe, now)
			}
		})
	}

	if cfg.Obs != nil {
		cfg.Obs.SetNow("virtual", sh.Now)
		snet.SetObs(cfg.Obs)
	}
	h.installFaults(cfg.Faults)
	return h
}

// treeReport strips the transport envelope off a strobe for the checker
// tree (the checker package sits below core in the import graph).
func treeReport(m StrobeMsg) checker.Report {
	return checker.Report{
		Proc: m.Proc, Seq: m.Seq, Epoch: m.Epoch,
		Var: m.Var, Value: m.Value,
		Vec: m.Vec, Scalar: m.Scalar, Sparse: m.Sparse,
	}
}

// treeOccurrences converts the tree's occurrences to the core type
// (nil stays nil so empty runs compare equal across checker shapes).
func treeOccurrences(occ []checker.Occurrence) []Occurrence {
	if occ == nil {
		return nil
	}
	out := make([]Occurrence, len(occ))
	for i, o := range occ {
		out[i] = Occurrence{Start: o.Start, End: o.End, Borderline: o.Borderline}
	}
	return out
}

// gridFor lays N sensors on a near-square grid (row-major, matching the
// contiguous shard map: a shard owns a band of rows).
func gridFor(n int) network.Topology {
	cols := 1
	for cols*cols < n {
		cols++
	}
	rows := (n + cols - 1) / cols
	if rows*cols != n {
		// Grid needs an exact fill; fall back to a ring for awkward sizes.
		return network.Ring{Nodes: n}
	}
	return network.Grid{Rows: rows, Cols: cols}
}

// mix64 derives an independent seed domain (splitmix64 finalizer).
func mix64(seed, domain uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(domain+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// installFaults schedules crash/recover transitions on each target
// sensor's own shard. The injector gates the transport everywhere (its
// state is immutable and its counters atomic, so shards share it).
func (h *ShardedHarness) installFaults(plan *faults.Plan) {
	inj := faults.NewInjector(plan)
	if inj == nil {
		return
	}
	for _, ev := range plan.Events {
		if ev.Proc < 0 || ev.Proc >= h.Cfg.N {
			panic(fmt.Sprintf("core: fault plan event targets process %d; crash/recover is limited to sensors 0..%d",
				ev.Proc, h.Cfg.N-1))
		}
	}
	h.Faults = inj
	h.Net.SetFaults(inj)
	crashes := h.Cfg.Obs.Counter("faults.crashes")
	recoveries := h.Cfg.Obs.Counter("faults.recoveries")
	for _, ev := range inj.Transitions() {
		ev := ev
		s := h.Sensors[ev.Proc]
		h.Sh.Engine(h.smap.Of(ev.Proc)).At(ev.At, func(now sim.Time) {
			switch ev.Kind {
			case faults.Crash:
				s.Crash()
				crashes.Inc()
			case faults.Recover:
				s.Rejoin()
				recoveries.Inc()
			}
		})
	}
}

// Run executes to the horizon, drains in-flight control traffic, and
// scores against the merged pilot ground truth.
func (h *ShardedHarness) Run() ShardedResults {
	horizon := h.Cfg.Horizon
	h.Sh.Run(horizon)
	h.Sh.RunAll() // settle in-flight strobes (bounded delay models)
	if h.Tree != nil {
		h.Tree.Finish(horizon)
	} else {
		h.Checker.Finish(horizon)
	}

	res := ShardedResults{
		Net:       h.Net.TotalStats(),
		Horizon:   horizon,
		Epochs:    h.Sh.Epochs,
		CrossSent: h.Sh.CrossSent,
	}
	if h.Tree != nil {
		res.Occurrences = clipToHorizon(treeOccurrences(h.Tree.Occurrences()), horizon)
		res.Markers = h.Tree.Markers()
	} else {
		res.Occurrences = clipToHorizon(h.Checker.Occurrences(), horizon)
		res.Markers = h.Checker.Markers()
	}
	res.Truth = world.TrueIntervals(h.mergedPilotLog(), h.truthPred(), horizon)
	res.Confusion = Score(res.Occurrences, res.Truth, res.Markers, h.Cfg.Tol, horizon)
	for _, s := range h.Sensors {
		res.ClockBytes += int64(s.ClockStateBytes())
	}
	return res
}

// mergedPilotLog merges the per-shard ground-truth logs into one global
// log over pilot sensors, remapping per-world object ids to global sensor
// indices. Shard logs are concatenated in shard order and stably sorted by
// (time, global object): within a key each event set comes from a single
// shard in its execution order, so the merge is shard-count invariant.
func (h *ShardedHarness) mergedPilotLog() []world.Event {
	var out []world.Event
	for k, w := range h.Worlds {
		base := h.objBase[k]
		for _, ev := range w.Log() {
			g := base + ev.Object
			if g >= h.Cfg.Pilot {
				continue
			}
			ev.Object = g
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Object < out[j].Object
	})
	return out
}

// truthPred adapts the pilot predicate to ground-truth world values: the
// binding is identity (sensor i senses object i's "p" as variable "p").
func (h *ShardedHarness) truthPred() world.StatePredicate {
	pred, n := h.Pred, h.Cfg.N
	return func(get func(obj int, attr string) float64) bool {
		return pred.Holds(shardTruthState{n: n, get: get})
	}
}

type shardTruthState struct {
	n   int
	get func(obj int, attr string) float64
}

// Get implements predicate.State.
func (s shardTruthState) Get(proc int, name string) float64 { return s.get(proc, name) }

// NumProcs implements predicate.State.
func (s shardTruthState) NumProcs() int { return s.n }

// MergedTrace merges the per-shard traces into one deterministic global
// trace, stably sorted by (time, proc): every proc's records live on
// exactly one shard in per-proc chronological order, so the result is
// shard-count invariant. Nil unless Cfg.Trace was set.
func (h *ShardedHarness) MergedTrace() *trace.Trace {
	if h.traces == nil {
		return nil
	}
	out := &trace.Trace{N: h.Cfg.N + 1}
	for _, t := range h.traces {
		out.Records = append(out.Records, t.Records...)
	}
	sort.SliceStable(out.Records, func(i, j int) bool {
		a, b := out.Records[i], out.Records[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Proc < b.Proc
	})
	return out
}

// CounterLines returns the run's shard-count-invariant counters as sorted
// "name=value" lines — the differential oracle's observable surface.
func (h *ShardedHarness) CounterLines() []string {
	t := h.Net.TotalStats()
	var applied, stale int64
	if h.Tree != nil {
		applied, stale = h.Tree.Stat.Applied, h.Tree.Stat.Stale
	} else {
		applied, stale = h.Checker.Applied, h.Checker.Stale
	}
	lines := []string{
		"net.sent=" + strconv.FormatInt(t.Sent, 10),
		"net.delivered=" + strconv.FormatInt(t.Delivered, 10),
		"net.dropped=" + strconv.FormatInt(t.Dropped, 10),
		"net.bytes=" + strconv.FormatInt(t.Bytes, 10),
		"checker.applied=" + strconv.FormatInt(applied, 10),
		"checker.stale=" + strconv.FormatInt(stale, 10),
		"sim.executed=" + strconv.FormatUint(h.Sh.ExecutedTotal(), 10),
	}
	for kind, v := range t.ByKind {
		lines = append(lines, "net.kind."+kind+"="+strconv.FormatInt(v, 10))
	}
	if f := h.Faults; f != nil {
		lines = append(lines,
			"faults.suppressed="+strconv.FormatInt(f.Counts.SuppressedSends.Load(), 10),
			"faults.crash_drops="+strconv.FormatInt(f.Counts.CrashDrops.Load(), 10),
			"faults.partition_drops="+strconv.FormatInt(f.Counts.PartitionDrops.Load(), 10),
			"faults.duplicates="+strconv.FormatInt(f.Counts.Duplicates.Load(), 10),
			"faults.reorders="+strconv.FormatInt(f.Counts.Reorders.Load(), 10))
	}
	sort.Strings(lines)
	return lines
}
