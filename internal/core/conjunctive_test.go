package core

import (
	"testing"

	"pervasive/internal/clock"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
)

// ivmsg builds an IntervalMsg with literal stamps.
func ivmsg(proc, idx int, open, close clock.Vector, openAt, closeAt int64) IntervalMsg {
	return IntervalMsg{
		Proc: proc, Index: idx, Open: open, Close: close,
		OpenAt: sim.Time(openAt), CloseAt: sim.Time(closeAt),
	}
}

func TestConjunctiveDefinitelyDetects(t *testing.T) {
	c := NewConjunctiveChecker(2, predicate.Definitely)
	// Cross-linked intervals: each opens before the other closes (message
	// exchange visible in the stamps) → Definitely overlap.
	c.OnInterval(ivmsg(0, 0, clock.Vector{1, 0}, clock.Vector{3, 2}, 100, 300), 0)
	if len(c.Occurrences()) != 0 {
		t.Fatal("fired with one queue empty")
	}
	c.OnInterval(ivmsg(1, 0, clock.Vector{0, 1}, clock.Vector{2, 3}, 120, 280), 0)
	occ := c.Occurrences()
	if len(occ) != 1 {
		t.Fatalf("occurrences %v", occ)
	}
	if occ[0].Start != 120 || occ[0].End != 280 {
		t.Fatalf("occurrence extent %+v", occ[0])
	}
	if occ[0].Borderline {
		t.Fatal("definite detection flagged borderline")
	}
}

func TestConjunctiveDefinitelyRejectsConcurrent(t *testing.T) {
	c := NewConjunctiveChecker(2, predicate.Definitely)
	// Fully concurrent intervals: possibly overlap, not definitely.
	c.OnInterval(ivmsg(0, 0, clock.Vector{1, 0}, clock.Vector{2, 0}, 100, 200), 0)
	c.OnInterval(ivmsg(1, 0, clock.Vector{0, 1}, clock.Vector{0, 2}, 100, 200), 0)
	if len(c.Occurrences()) != 0 {
		t.Fatalf("Definitely fired on concurrent intervals: %v", c.Occurrences())
	}
}

func TestConjunctivePossiblyFiresOnConcurrent(t *testing.T) {
	c := NewConjunctiveChecker(2, predicate.Possibly)
	c.OnInterval(ivmsg(0, 0, clock.Vector{1, 0}, clock.Vector{2, 0}, 100, 200), 0)
	c.OnInterval(ivmsg(1, 0, clock.Vector{0, 1}, clock.Vector{0, 2}, 100, 200), 0)
	occ := c.Occurrences()
	if len(occ) != 1 {
		t.Fatalf("Possibly missed concurrent intervals: %v", occ)
	}
	if !occ[0].Borderline {
		t.Fatal("possibly-but-not-definitely must be borderline")
	}
}

func TestConjunctivePossiblyPrunesPrecedence(t *testing.T) {
	c := NewConjunctiveChecker(2, predicate.Possibly)
	// p0's first interval wholly precedes p1's interval; its second
	// overlaps.
	c.OnInterval(ivmsg(0, 0, clock.Vector{1, 0}, clock.Vector{2, 0}, 0, 50), 0)
	c.OnInterval(ivmsg(0, 1, clock.Vector{3, 0}, clock.Vector{4, 0}, 100, 200), 0)
	// p1's interval opened after seeing p0's second... give it stamps
	// concurrent with interval 1 but after interval 0.
	c.OnInterval(ivmsg(1, 0, clock.Vector{2, 1}, clock.Vector{2, 2}, 110, 190), 0)
	occ := c.Occurrences()
	if len(occ) != 1 {
		t.Fatalf("occurrences %v", occ)
	}
	if occ[0].Start != 110 {
		t.Fatalf("matched wrong interval: %+v", occ[0])
	}
}

func TestConjunctiveEveryOccurrence(t *testing.T) {
	c := NewConjunctiveChecker(2, predicate.Definitely)
	// Three successive definitely-overlapping pairs, linked by exchanges.
	base := uint64(0)
	for k := 0; k < 3; k++ {
		o0 := clock.Vector{base + 1, base}
		c0 := clock.Vector{base + 3, base + 2}
		o1 := clock.Vector{base, base + 1}
		c1 := clock.Vector{base + 2, base + 3}
		c.OnInterval(ivmsg(0, k, o0, c0, int64(100*k)+10, int64(100*k)+90), 0)
		c.OnInterval(ivmsg(1, k, o1, c1, int64(100*k)+20, int64(100*k)+80), 0)
		base += 4
	}
	if c.Matches() != 3 {
		t.Fatalf("matches %d want 3 (no hang after the first!)", c.Matches())
	}
}

func TestConjunctiveOnceSemantics(t *testing.T) {
	c := NewConjunctiveChecker(2, predicate.Definitely)
	c.Once = true
	base := uint64(0)
	for k := 0; k < 3; k++ {
		o0 := clock.Vector{base + 1, base}
		c0 := clock.Vector{base + 3, base + 2}
		o1 := clock.Vector{base, base + 1}
		c1 := clock.Vector{base + 2, base + 3}
		c.OnInterval(ivmsg(0, k, o0, c0, int64(100*k)+10, int64(100*k)+90), 0)
		c.OnInterval(ivmsg(1, k, o1, c1, int64(100*k)+20, int64(100*k)+80), 0)
		base += 4
	}
	if c.Matches() != 1 {
		t.Fatalf("detect-once matched %d", c.Matches())
	}
}

func TestConjunctiveOutOfOrderAndDuplicates(t *testing.T) {
	c := NewConjunctiveChecker(2, predicate.Definitely)
	// Proc 0's intervals arrive out of order (index 1 first), plus a
	// duplicate; proc 1 waits. Both p0 intervals definitely-overlap p1's
	// long interval, so both match, in index order.
	c.OnInterval(ivmsg(0, 1, clock.Vector{3, 1}, clock.Vector{4, 1}, 100, 200), 0)
	c.OnInterval(ivmsg(0, 0, clock.Vector{1, 1}, clock.Vector{2, 1}, 0, 50), 0)
	c.OnInterval(ivmsg(0, 0, clock.Vector{1, 1}, clock.Vector{2, 1}, 0, 50), 0)
	// p1's interval spans everything: Open before all, Close after all.
	c.OnInterval(ivmsg(1, 0, clock.Vector{0, 1}, clock.Vector{4, 2}, 0, 300), 0)
	occ := c.Occurrences()
	if len(occ) != 2 {
		t.Fatalf("occurrences %v", occ)
	}
	if occ[0].Start != 0 || occ[1].Start != 100 {
		t.Fatalf("order wrong: %v", occ)
	}
}

func TestConjunctiveIgnoresConsumedIndices(t *testing.T) {
	c := NewConjunctiveChecker(1, predicate.Definitely)
	c.OnInterval(ivmsg(0, 0, clock.Vector{1}, clock.Vector{2}, 0, 50), 0)
	// Index 0 was consumed (matched); a late duplicate must be dropped.
	c.OnInterval(ivmsg(0, 0, clock.Vector{1}, clock.Vector{2}, 0, 50), 0)
	if c.Matches() != 1 {
		t.Fatalf("matches %d", c.Matches())
	}
}

func TestConjunctiveCheckerPanicsOnInstantaneously(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewConjunctiveChecker(2, predicate.Instantaneously)
}
