package core

import (
	"pervasive/internal/clock"
	"pervasive/internal/flight"
	"pervasive/internal/network"
	"pervasive/internal/obs"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
)

// StrobeChecker is the distinguished root process P0 of the strobe-clock
// detection algorithms: it consumes the system-wide strobe broadcasts,
// maintains the latest sensed value per process, and detects *each
// occurrence* of the global predicate becoming true in its (strobe-order)
// view of the world plane.
//
// With vector strobes the checker is race-aware: when the event that flips
// the predicate is concurrent (in the strobe partial order) with another
// process's latest event, and the predicate's truth depends on their
// unknowable relative order, the flip is classified into the borderline
// bin rather than reported as definite (Section 5). With scalar strobes
// no concurrency information exists, so every flip is reported as definite
// — the source of the scalar protocol's false positives (Section 3.3).
type StrobeChecker struct {
	n         int
	pred      predicate.Cond
	raceAware bool

	vals       []map[string]float64
	stamps     []clock.Vector // latest applied vector stamp per proc (nil = none)
	lastSeq    []int
	lastEpoch  []int // crash/recovery epoch per proc (see StrobeMsg.Epoch)
	lastChange []change
	// state is the checker's view pre-boxed as a predicate.State: Holds
	// is called several times per strobe (once per apply plus the
	// four-state race probes), and re-boxing checkerState at each call
	// would allocate on the hot path. vals is never reassigned, so the
	// boxed header stays valid.
	state predicate.State
	// recon reconstructs each sender's full vector from differential
	// strobes (DiffVectorStrobe protocol); nil entries until first diff.
	recon []clock.Vector
	// stampBuf holds one reusable vector per proc for the differential
	// path: the reconstruction is copied into the scratch buffer instead
	// of cloned per strobe (the previous stamp of that proc is being
	// replaced anyway, so no live reader aliases it).
	stampBuf []clock.Vector

	cur      bool
	occ      []Occurrence
	markers  []sim.Time
	finished bool

	// Notify, if set, is invoked when the predicate becomes true in the
	// checker's view — the hook through which detection triggers
	// actuation (the sense→detect→actuate loop of Section 2.2). The
	// occurrence's End is not yet known at call time.
	Notify func(o Occurrence)

	// NaiveRace switches race detection to the naive criterion — flag
	// whenever the applied event is concurrent with any other process's
	// latest event, regardless of whether the predicate's history depends
	// on their order. Used by the A2 ablation; the default four-state
	// criterion flags only order-sensitive races.
	NaiveRace bool

	// Applied counts strobes applied (non-stale).
	Applied int64
	// Stale counts strobes discarded as stale/duplicate/out-of-order.
	Stale int64

	// Resolved obs instruments; nil (no-ops) until SetObs.
	obsEvals      *obs.Counter
	obsDetections *obs.Counter
	obsApplied    *obs.Counter
	obsStale      *obs.Counter
	obsRaces      *obs.Counter

	// Flight recorder wiring; fl nil (no-op) until SetFlight. flSelf is
	// the checker's own process index on the transport.
	fl     *flight.Recorder
	flSelf int32
}

// SetObs attaches runtime metrics: predicate evaluations (including the
// four-state probes of race detection), detections, applied/stale
// strobes and race markers. SetObs(nil) detaches.
func (c *StrobeChecker) SetObs(r *obs.Registry) {
	c.obsEvals = r.Counter("checker.pred_evals")
	c.obsDetections = r.Counter("checker.detections")
	c.obsApplied = r.Counter("checker.strobes_applied")
	c.obsStale = r.Counter("checker.strobes_stale")
	c.obsRaces = r.Counter("checker.race_markers")
}

// SetFlight attaches a flight recorder: applied/stale strobes and the
// predicate's detect/clear edges are recorded at the checker's ring
// (self is its transport index), and every detection rising edge
// triggers a full dump — the recent causal context that explains the
// detection. SetFlight(nil, 0) detaches.
func (c *StrobeChecker) SetFlight(r *flight.Recorder, self int) {
	c.fl = r
	c.flSelf = int32(self)
}

type change struct {
	varName string
	prev    float64
	valid   bool
}

// NewVectorChecker creates the race-aware checker for the strobe-vector
// protocol over n sensor processes.
func NewVectorChecker(n int, pred predicate.Cond) *StrobeChecker {
	return newStrobeChecker(n, pred, true)
}

// NewScalarChecker creates the checker for the strobe-scalar protocol; it
// cannot detect races.
func NewScalarChecker(n int, pred predicate.Cond) *StrobeChecker {
	return newStrobeChecker(n, pred, false)
}

func newStrobeChecker(n int, pred predicate.Cond, raceAware bool) *StrobeChecker {
	c := &StrobeChecker{
		n: n, pred: pred, raceAware: raceAware,
		vals:       make([]map[string]float64, n),
		stamps:     make([]clock.Vector, n),
		lastSeq:    make([]int, n),
		lastEpoch:  make([]int, n),
		lastChange: make([]change, n),
	}
	for i := range c.vals {
		c.vals[i] = make(map[string]float64)
	}
	c.state = checkerState{c.vals}
	return c
}

// Register installs the checker on transport node idx.
func (c *StrobeChecker) Register(net *network.Net, idx int) {
	net.Register(idx, func(m network.Message, now sim.Time) {
		if strobe, ok := m.Payload.(StrobeMsg); ok {
			c.OnStrobe(strobe, now)
		}
	})
}

// state adapts the checker's view to predicate.State.
type checkerState struct{ vals []map[string]float64 }

// Get implements predicate.State.
func (s checkerState) Get(proc int, name string) float64 {
	if proc < 0 || proc >= len(s.vals) {
		return 0
	}
	return s.vals[proc][name]
}

// NumProcs implements predicate.State.
func (s checkerState) NumProcs() int { return len(s.vals) }

// OnStrobe applies one received strobe to the view and updates detection
// state. Strobes from a process are applied in increasing Seq order;
// older ones that arrive late (reordered or after a loss) are discarded,
// which keeps the effect of a loss local in time (Section 4.2.2).
func (c *StrobeChecker) OnStrobe(m StrobeMsg, now sim.Time) {
	if c.finished {
		return
	}
	if m.Proc < 0 || m.Proc >= c.n {
		c.Stale++
		c.obsStale.Inc()
		return
	}
	// Epoch discipline: a recovered process restarts with Seq 1 under a
	// bumped epoch. Stamps from an older epoch are pre-crash stragglers —
	// discarding them (and resetting the per-process order state on the
	// bump) is what keeps the checker from merging pre-crash strobe state
	// into the rebooted process's fresh causal history.
	switch {
	case m.Epoch < c.lastEpoch[m.Proc]:
		c.Stale++
		c.obsStale.Inc()
		c.recordStale(m, now)
		return
	case m.Epoch > c.lastEpoch[m.Proc]:
		c.lastEpoch[m.Proc] = m.Epoch
		c.lastSeq[m.Proc] = 0
		c.stamps[m.Proc] = nil
		c.lastChange[m.Proc] = change{}
		if c.recon != nil {
			c.recon[m.Proc].Reset()
		}
	}
	if m.Seq <= c.lastSeq[m.Proc] {
		c.Stale++
		c.obsStale.Inc()
		c.recordStale(m, now)
		return
	}
	c.lastSeq[m.Proc] = m.Seq
	c.Applied++
	c.obsApplied.Inc()
	if c.fl != nil {
		epoch, seq, clk := m.FlightStamp()
		c.fl.Record(flight.Rec{
			Kind: flight.Apply, Proc: c.flSelf, Peer: int32(m.Proc),
			Epoch: int32(epoch), Seq: uint64(seq), At: now,
			Attr: c.fl.Intern(m.Var), PeerClock: clk, Value: m.Value,
		})
	}

	// Differential strobes: rebuild the sender's full vector by merging
	// its changed components into the per-sender reconstruction. After a
	// lost diff the reconstruction under-knows until the missing
	// components change again — which can only add false concurrency
	// (more borderline flags), never false order. The reconstructions
	// exist solely to feed race detection, so a race-blind checker skips
	// them entirely — that is what keeps checker memory O(n), not O(n²),
	// at scale.
	if m.Vec == nil && m.Sparse != nil && c.raceAware {
		if c.recon == nil {
			c.recon = make([]clock.Vector, c.n)
			c.stampBuf = make([]clock.Vector, c.n)
		}
		if c.recon[m.Proc] == nil {
			c.recon[m.Proc] = clock.NewVector(c.n)
			c.stampBuf[m.Proc] = clock.NewVector(c.n)
		}
		c.recon[m.Proc].MergeSparse(m.Sparse)
		// Copy into the per-proc scratch stamp rather than cloning: only
		// c.stamps[m.Proc] can alias the buffer, and it is replaced below.
		copy(c.stampBuf[m.Proc], c.recon[m.Proc])
		m.Vec = c.stampBuf[m.Proc]
	}

	prev := c.vals[m.Proc][m.Var]
	c.vals[m.Proc][m.Var] = m.Value
	c.obsEvals.Inc()
	settled := c.pred.Holds(c.state)

	race := false
	if c.raceAware && m.Vec != nil {
		race = c.detectRace(m, prev)
	}

	c.lastChange[m.Proc] = change{varName: m.Var, prev: prev, valid: true}
	if m.Vec != nil {
		c.stamps[m.Proc] = m.Vec
	}

	if race {
		c.markers = append(c.markers, now)
		c.obsRaces.Inc()
	}
	if settled != c.cur {
		if settled {
			c.obsDetections.Inc()
			o := Occurrence{Start: now, Borderline: race}
			c.occ = append(c.occ, o)
			if c.Notify != nil {
				c.Notify(o)
			}
			if c.fl != nil {
				c.fl.Record(flight.Rec{
					Kind: flight.Detect, Proc: c.flSelf, Peer: flight.NoPeer,
					At: now, Value: 1,
				})
				// Dump every ring: the predicate is global, so the causal
				// context of a detection spans the whole fleet.
				c.fl.TriggerDump("detect", now)
			}
		} else if len(c.occ) > 0 {
			c.occ[len(c.occ)-1].End = now
			if race {
				c.occ[len(c.occ)-1].Borderline = true
			}
			if c.fl != nil {
				c.fl.Record(flight.Rec{
					Kind: flight.Clear, Proc: c.flSelf, Peer: flight.NoPeer, At: now,
				})
			}
		}
		c.cur = settled
	}
}

// recordStale stamps one discarded strobe at the checker's ring.
func (c *StrobeChecker) recordStale(m StrobeMsg, now sim.Time) {
	if c.fl == nil {
		return
	}
	epoch, seq, clk := m.FlightStamp()
	c.fl.Record(flight.Rec{
		Kind: flight.Stale, Proc: c.flSelf, Peer: int32(m.Proc),
		Epoch: int32(epoch), Seq: uint64(seq), At: now,
		Attr: c.fl.Intern(m.Var), PeerClock: clk, Value: m.Value,
	})
}

// detectRace reports whether the just-applied event e (from m.Proc, whose
// variable previously held prevI) races with another process's latest
// event e' in a way that makes the predicate's history ambiguous. The two
// events race when their stamps are concurrent — the strobe order cannot
// tell which happened first. Consider the four states over {e, e'}
// applied/not: s00, s10 (only e), s01 (only e'), s11 (both). The true
// history passed through s00 → (s10 or s01) → s11 in an unknowable order.
// The order matters exactly when the endpoints agree (φ(s00) == φ(s11))
// but the middles differ (φ(s10) ≠ φ(s01)): one order contains a
// transient φ-change that the other lacks, so whether φ held in between
// cannot be decided. When the endpoints differ, the net transition
// happens under either order (only its attribution shifts within the race
// window) and the observation is robust — e.g. two concurrent rises that
// jointly push a sum over its threshold are correctly left unflagged.
func (c *StrobeChecker) detectRace(m StrobeMsg, prevI float64) bool {
	for j := 0; j < c.n; j++ {
		if j == m.Proc || c.stamps[j] == nil || !c.lastChange[j].valid {
			continue
		}
		if !m.Vec.ConcurrentWith(c.stamps[j]) {
			continue
		}
		if c.NaiveRace {
			return true
		}
		ch := c.lastChange[j]
		curJ := c.vals[j][ch.varName]
		curI := c.vals[m.Proc][m.Var]

		phi11 := c.phi()
		c.vals[j][ch.varName] = ch.prev // s10: only e
		phi10 := c.phi()
		c.vals[m.Proc][m.Var] = prevI // s00: neither
		phi00 := c.phi()
		c.vals[j][ch.varName] = curJ // s01: only e'
		phi01 := c.phi()
		c.vals[m.Proc][m.Var] = curI // restore s11

		if phi00 == phi11 && phi10 != phi01 {
			return true
		}
	}
	return false
}

// phi evaluates the predicate against the checker's current view.
func (c *StrobeChecker) phi() bool {
	c.obsEvals.Inc()
	return c.pred.Holds(c.state)
}

// Finish closes any open occurrence at the horizon. Further strobes are
// ignored.
func (c *StrobeChecker) Finish(horizon sim.Time) {
	if c.finished {
		return
	}
	c.finished = true
	c.occ = closeOpen(c.occ, c.cur, horizon)
}

// Occurrences returns the detected occurrences (call Finish first).
func (c *StrobeChecker) Occurrences() []Occurrence { return c.occ }

// Markers returns the view times at which race ambiguity was observed.
func (c *StrobeChecker) Markers() []sim.Time { return c.markers }

// View returns the checker's current value of (proc, var) — the evolving
// "map of the physical world" of Section 1.
func (c *StrobeChecker) View(proc int, name string) float64 {
	return checkerState{c.vals}.Get(proc, name)
}

// StateBytes estimates the checker's resident footprint: per-process
// admission and value state plus the race-aware reconstruction buffers
// when allocated. Same per-entry costs as checker.Aggregator.StateBytes,
// so the flat-vs-tree memory comparison in cmd/benchchecker compares
// like with like.
func (c *StrobeChecker) StateBytes() int {
	b := 96 + c.n*(8+8+8+8+8+32) // headers, slices, lastSeq/lastEpoch/lastChange
	for _, m := range c.vals {
		b += 48 + 32*len(m)
	}
	for _, v := range c.stamps {
		b += 8 * cap(v)
	}
	for _, v := range c.recon {
		b += 8 * cap(v)
	}
	for _, v := range c.stampBuf {
		b += 8 * cap(v)
	}
	return b
}
