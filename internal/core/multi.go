package core

import (
	"sort"

	"pervasive/internal/intervals"
	"pervasive/internal/network"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
)

// MultiChecker evaluates several named predicates over one strobe stream —
// the substrate for the relative timing relations of Section 3.1.1.a.ii,
// where a specification constrains the occurrence streams of *two*
// predicates ("X before Y by more than 5 seconds"). Each named predicate
// gets its own full strobe checker; a single transport registration fans
// the strobes out.
type MultiChecker struct {
	checkers map[string]*StrobeChecker
	order    []string
}

// NewMultiChecker builds one checker per named predicate, race-aware when
// vector is set.
func NewMultiChecker(n int, preds map[string]predicate.Cond, vector bool) *MultiChecker {
	m := &MultiChecker{checkers: make(map[string]*StrobeChecker, len(preds))}
	for name := range preds {
		m.order = append(m.order, name)
	}
	sort.Strings(m.order)
	for _, name := range m.order {
		if vector {
			m.checkers[name] = NewVectorChecker(n, preds[name])
		} else {
			m.checkers[name] = NewScalarChecker(n, preds[name])
		}
	}
	return m
}

// Register installs the fan-out handler on transport node idx.
func (m *MultiChecker) Register(net *network.Net, idx int) {
	net.Register(idx, func(msg network.Message, now sim.Time) {
		if strobe, ok := msg.Payload.(StrobeMsg); ok {
			m.OnStrobe(strobe, now)
		}
	})
}

// OnStrobe fans one strobe out to every named checker.
func (m *MultiChecker) OnStrobe(msg StrobeMsg, now sim.Time) {
	for _, name := range m.order {
		m.checkers[name].OnStrobe(msg, now)
	}
}

// Finish closes all checkers at the horizon.
func (m *MultiChecker) Finish(horizon sim.Time) {
	for _, name := range m.order {
		m.checkers[name].Finish(horizon)
	}
}

// Names returns the predicate names in deterministic order.
func (m *MultiChecker) Names() []string { return append([]string(nil), m.order...) }

// Checker returns the underlying checker for a name (nil if unknown).
func (m *MultiChecker) Checker(name string) *StrobeChecker { return m.checkers[name] }

// Occurrences returns the named predicate's occurrences.
func (m *MultiChecker) Occurrences(name string) []Occurrence {
	if c := m.checkers[name]; c != nil {
		return c.Occurrences()
	}
	return nil
}

// Spans converts a named predicate's occurrences to interval spans for
// the timing-relation matcher.
func (m *MultiChecker) Spans(name string) []intervals.Span {
	occ := m.Occurrences(name)
	out := make([]intervals.Span, 0, len(occ))
	for _, o := range occ {
		out = append(out, intervals.Span{Lo: o.Start, Hi: o.End})
	}
	return out
}
