package core

import (
	"testing"

	"pervasive/internal/clock"
	"pervasive/internal/predicate"
	simt "pervasive/internal/sim"
)

// handStrobe builds a StrobeMsg with a literal vector.
func handStrobe(proc, seq int, varName string, value float64, vec clock.Vector) StrobeMsg {
	return StrobeMsg{Proc: proc, Seq: seq, Var: varName, Value: value, Vec: vec}
}

func TestVectorCheckerDetectsFlips(t *testing.T) {
	pred := predicate.MustParse("x@0 == 1 && x@1 == 1")
	c := NewVectorChecker(2, pred)
	// Causally ordered events: p0 rises, p1 rises (having seen p0's strobe),
	// then p0 falls.
	c.OnStrobe(handStrobe(0, 1, "x", 1, clock.Vector{1, 0}), 10)
	c.OnStrobe(handStrobe(1, 1, "x", 1, clock.Vector{1, 1}), 20)
	c.OnStrobe(handStrobe(0, 2, "x", 0, clock.Vector{2, 1}), 30)
	c.Finish(100)

	occ := c.Occurrences()
	if len(occ) != 1 {
		t.Fatalf("occurrences %v", occ)
	}
	if occ[0].Start != 20 || occ[0].End != 30 {
		t.Fatalf("occurrence %+v", occ[0])
	}
	if occ[0].Borderline {
		t.Fatal("causally ordered flip must not be borderline")
	}
	if len(c.Markers()) != 0 {
		t.Fatalf("markers %v", c.Markers())
	}
}

func TestVectorCheckerEveryOccurrence(t *testing.T) {
	pred := predicate.MustParse("x@0 == 1")
	c := NewVectorChecker(1, pred)
	for i := 0; i < 6; i++ {
		v := clock.Vector{uint64(i + 1)}
		c.OnStrobe(handStrobe(0, i+1, "x", float64((i+1)%2), v), simt.Time(i*10))
	}
	c.Finish(1000)
	// x = 1,0,1,0,1,0 → three occurrences; the paper's requirement that
	// detection not "hang" after the first.
	if len(c.Occurrences()) != 3 {
		t.Fatalf("occurrences %v", c.Occurrences())
	}
}

func TestVectorCheckerStaleDrop(t *testing.T) {
	pred := predicate.MustParse("x@0 > 0")
	c := NewVectorChecker(1, pred)
	c.OnStrobe(handStrobe(0, 2, "x", 5, clock.Vector{2}), 10)
	c.OnStrobe(handStrobe(0, 1, "x", 1, clock.Vector{1}), 20) // late, stale
	if c.Applied != 1 || c.Stale != 1 {
		t.Fatalf("applied=%d stale=%d", c.Applied, c.Stale)
	}
	if c.View(0, "x") != 5 {
		t.Fatal("stale strobe overwrote newer value")
	}
}

func TestVectorCheckerIgnoresBadProc(t *testing.T) {
	c := NewVectorChecker(1, predicate.MustParse("x@0 > 0"))
	c.OnStrobe(handStrobe(7, 1, "x", 1, clock.Vector{1}), 5)
	c.OnStrobe(handStrobe(-1, 1, "x", 1, clock.Vector{1}), 5)
	if c.Applied != 0 {
		t.Fatal("out-of-range strobes applied")
	}
}

func TestVectorCheckerRaceBorderline(t *testing.T) {
	// x@0 falls while x@1 rises, concurrently: whether the conjunction
	// was ever true depends on the unknowable order — a genuine race.
	pred := predicate.MustParse("x@0 == 1 && x@1 == 1")
	c := NewVectorChecker(2, pred)
	// p0 rises first (seen by all — causally ordered).
	c.OnStrobe(handStrobe(0, 1, "x", 1, clock.Vector{1, 0}), 10)
	// Now p1 rises and p0 falls concurrently; the rise arrives first, so
	// the view shows a brief conjunction that may never have existed.
	c.OnStrobe(handStrobe(1, 1, "x", 1, clock.Vector{1, 1}), 20)
	c.OnStrobe(handStrobe(0, 2, "x", 0, clock.Vector{2, 0}), 21)
	c.Finish(100)
	occ := c.Occurrences()
	if len(occ) != 1 {
		t.Fatalf("occurrences %v", occ)
	}
	if !occ[0].Borderline {
		t.Fatal("racing flip not classified borderline")
	}
	if len(c.Markers()) == 0 {
		t.Fatal("race left no marker")
	}
}

func TestVectorCheckerRobustConcurrentRisesNotBorderline(t *testing.T) {
	// Two concurrent rises that jointly push a sum over threshold: φ
	// becomes true at the later event under either order — robust, not a
	// race (the refined criterion of detectRace).
	pred := predicate.MustParse("sum(x) > 1")
	c := NewVectorChecker(2, pred)
	c.OnStrobe(handStrobe(0, 1, "x", 1, clock.Vector{1, 0}), 10)
	c.OnStrobe(handStrobe(1, 1, "x", 1, clock.Vector{0, 1}), 11)
	c.Finish(100)
	occ := c.Occurrences()
	if len(occ) != 1 {
		t.Fatalf("occurrences %v", occ)
	}
	if occ[0].Borderline {
		t.Fatal("robust concurrent rises misflagged as borderline")
	}
}

func TestVectorCheckerNoRaceWhenOrderIrrelevant(t *testing.T) {
	// Two concurrent events on *different* variables where only one
	// matters: flipping y does not affect x@0>0, so no borderline.
	pred := predicate.MustParse("x@0 > 0")
	c := NewVectorChecker(2, pred)
	c.OnStrobe(handStrobe(1, 1, "y", 7, clock.Vector{0, 1}), 5)
	c.OnStrobe(handStrobe(0, 1, "x", 1, clock.Vector{1, 0}), 10)
	c.Finish(100)
	occ := c.Occurrences()
	if len(occ) != 1 || occ[0].Borderline {
		t.Fatalf("irrelevant concurrency flagged: %v", occ)
	}
}

func TestScalarCheckerNeverBorderline(t *testing.T) {
	pred := predicate.MustParse("sum(x) > 1")
	c := NewScalarChecker(2, pred)
	c.OnStrobe(StrobeMsg{Proc: 0, Seq: 1, Var: "x", Value: 1, Scalar: 1}, 10)
	c.OnStrobe(StrobeMsg{Proc: 1, Seq: 1, Var: "x", Value: 1, Scalar: 1}, 11)
	c.Finish(100)
	occ := c.Occurrences()
	if len(occ) != 1 {
		t.Fatalf("occurrences %v", occ)
	}
	if occ[0].Borderline || len(c.Markers()) != 0 {
		t.Fatal("scalar checker cannot know about races yet flagged one")
	}
}

func TestCheckerFinishClosesOpen(t *testing.T) {
	c := NewVectorChecker(1, predicate.MustParse("x@0 > 0"))
	c.OnStrobe(handStrobe(0, 1, "x", 1, clock.Vector{1}), 42)
	c.Finish(500)
	occ := c.Occurrences()
	if len(occ) != 1 || occ[0].End != 500 {
		t.Fatalf("open occurrence not closed: %v", occ)
	}
	// Post-finish strobes are ignored.
	c.OnStrobe(handStrobe(0, 2, "x", 0, clock.Vector{2}), 600)
	if c.Applied != 1 {
		t.Fatal("strobe applied after Finish")
	}
}
