package core

import (
	"testing"
)

func TestDivergenceBasics(t *testing.T) {
	a := []Occurrence{{Start: 0, End: 50}}
	b := []Occurrence{{Start: 10, End: 60}}
	// XOR = [0,10) ∪ [50,60) = 20 of 100.
	if d := Divergence(a, b, 100); d != 0.2 {
		t.Fatalf("divergence %v", d)
	}
	if d := Divergence(a, a, 100); d != 0 {
		t.Fatalf("self divergence %v", d)
	}
	if d := Divergence(nil, nil, 100); d != 0 {
		t.Fatalf("empty divergence %v", d)
	}
	if Divergence(a, b, 0) != 0 {
		t.Fatal("zero horizon should be 0")
	}
}

func TestDivergenceOpenOccurrence(t *testing.T) {
	a := []Occurrence{{Start: 90, End: 0}} // open: clamps to horizon
	if d := Divergence(a, nil, 100); d != 0.1 {
		t.Fatalf("open-occurrence divergence %v", d)
	}
}

func TestSignalOf(t *testing.T) {
	s := SignalOf([]Occurrence{{Start: 10, End: 20}}, 100)
	if !s.At(15) || s.At(25) {
		t.Fatal("signal conversion wrong")
	}
}
