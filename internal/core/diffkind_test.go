package core

import (
	"testing"

	"pervasive/internal/sim"
)

// End-to-end tests for the DiffVectorStrobe protocol: semantically the
// vector protocol, differentially encoded on the wire.

func TestDiffKindMatchesVectorDetection(t *testing.T) {
	// The diff protocol detects exactly the same occurrences at exactly
	// the same instants as full vectors: the view values and Seq ordering
	// are identical. Only the borderline flags may differ — when network
	// reordering drops a stale diff, the checker's reconstruction
	// under-knows the sender's vector, which can change which flips look
	// race-ambiguous. Detections and scores must match bit for bit.
	for seed := uint64(0); seed < 5; seed++ {
		vec := pulseHarness(seed, 4, VectorStrobe,
			sim.NewDeltaBounded(80*sim.Millisecond),
			400*sim.Millisecond, 600*sim.Millisecond, 40*sim.Second).Run()
		diff := pulseHarness(seed, 4, DiffVectorStrobe,
			sim.NewDeltaBounded(80*sim.Millisecond),
			400*sim.Millisecond, 600*sim.Millisecond, 40*sim.Second).Run()
		if vec.Confusion.TP != diff.Confusion.TP ||
			vec.Confusion.FP != diff.Confusion.FP ||
			vec.Confusion.FN != diff.Confusion.FN ||
			vec.Confusion.TN != diff.Confusion.TN {
			t.Fatalf("seed %d: diff protocol diverged: %+v vs %+v",
				seed, diff.Confusion, vec.Confusion)
		}
		if len(vec.Occurrences) != len(diff.Occurrences) {
			t.Fatalf("seed %d: occurrence counts differ", seed)
		}
		for i := range vec.Occurrences {
			if vec.Occurrences[i].Start != diff.Occurrences[i].Start ||
				vec.Occurrences[i].End != diff.Occurrences[i].End {
				t.Fatalf("seed %d: occurrence %d differs: %+v vs %+v",
					seed, i, vec.Occurrences[i], diff.Occurrences[i])
			}
		}
	}
}

func TestDiffKindExactlyEqualsVectorAtDeltaZero(t *testing.T) {
	// With synchronous delivery there is no reordering: everything,
	// including the borderline flags, must be identical.
	for seed := uint64(0); seed < 3; seed++ {
		vec := pulseHarness(seed, 4, VectorStrobe, sim.Synchronous{},
			400*sim.Millisecond, 600*sim.Millisecond, 30*sim.Second).Run()
		diff := pulseHarness(seed, 4, DiffVectorStrobe, sim.Synchronous{},
			400*sim.Millisecond, 600*sim.Millisecond, 30*sim.Second).Run()
		if vec.Confusion != diff.Confusion {
			t.Fatalf("seed %d: %+v vs %+v", seed, diff.Confusion, vec.Confusion)
		}
		for i := range vec.Occurrences {
			if vec.Occurrences[i] != diff.Occurrences[i] {
				t.Fatalf("seed %d: occurrence %d differs", seed, i)
			}
		}
	}
}

func TestDiffKindSavesBytes(t *testing.T) {
	vec := pulseHarness(3, 8, VectorStrobe, sim.Synchronous{},
		300*sim.Millisecond, 300*sim.Millisecond, 20*sim.Second).Run()
	diff := pulseHarness(3, 8, DiffVectorStrobe, sim.Synchronous{},
		300*sim.Millisecond, 300*sim.Millisecond, 20*sim.Second).Run()
	if diff.Net.Sent != vec.Net.Sent {
		t.Fatalf("same workload, different message counts: %d vs %d",
			diff.Net.Sent, vec.Net.Sent)
	}
	if diff.Net.Bytes >= vec.Net.Bytes {
		t.Fatalf("diff strobes (%dB) not smaller than full vectors (%dB)",
			diff.Net.Bytes, vec.Net.Bytes)
	}
	t.Logf("diff %dB vs full %dB (%.1f%%)", diff.Net.Bytes, vec.Net.Bytes,
		100*float64(diff.Net.Bytes)/float64(vec.Net.Bytes))
}

func TestDiffKindSurvivesLoss(t *testing.T) {
	// Lost diffs cause under-knowledge, never false order: the detector
	// keeps working, with at most extra borderline flags.
	res := pulseHarness(5, 3, DiffVectorStrobe,
		sim.WithLoss{Inner: sim.NewDeltaBounded(20 * sim.Millisecond), P: 0.2},
		2*sim.Second, 3*sim.Second, 60*sim.Second).Run()
	if len(res.Truth) < 3 {
		t.Skip("thin workload")
	}
	if res.Confusion.Recall() < 0.4 {
		t.Fatalf("diff protocol collapsed under loss: %+v", res.Confusion)
	}
}

func TestDiffKindByKindCounter(t *testing.T) {
	res := pulseHarness(1, 3, DiffVectorStrobe, sim.Synchronous{},
		500*sim.Millisecond, 500*sim.Millisecond, 5*sim.Second).Run()
	if res.Net.ByKind["strobe-diff"] == 0 {
		t.Fatalf("diff strobes not counted by kind: %v", res.Net.ByKind)
	}
	if res.Net.ByKind["strobe-vec"] != 0 {
		t.Fatal("full vectors leaked into the diff protocol")
	}
}
