package core

import (
	"pervasive/internal/sim"
	"pervasive/internal/stats"
	"pervasive/internal/world"
)

// Occurrence is one detected period during which the checker's view
// satisfied the predicate. Start/End are checker-view times (for strobe
// checkers: engine time of the flips; for the physical checker: reported
// physical timestamps). An open occurrence at the end of a run is closed
// at the horizon.
type Occurrence struct {
	Start, End sim.Time
	// Borderline marks an occurrence whose opening flip was
	// race-ambiguous: the checker could not order the flipping event
	// against a concurrent event that the flip depends on (Section 5's
	// borderline bin). Only vector-strobe checkers can set it.
	Borderline bool
}

// Span returns the occurrence as an interval.
func (o Occurrence) Span() world.Interval { return world.Interval{Start: o.Start, End: o.End} }

// Score matches detected occurrences against ground-truth intervals and
// fills a confusion matrix.
//
// Matching: a detection matches a true interval when the detection window,
// widened by tol on both sides, overlaps it (tol absorbs the detector's
// inherent view lag, bounded by Δ for strobe checkers and by ε for
// physical ones). Matched truths are TP; unmatched truths FN; unmatched
// detections FP. TN counts true-negative gaps between consecutive true
// intervals that contain no false detection, so accuracy and FPR are
// meaningful.
//
// Borderline accounting: FP detections flagged borderline count into
// BorderlineFP. A FN truth counts into BorderlineFN when a race marker
// (markers, checker-view times) lies within tol of it — the checker saw
// the race that hid the occurrence, so a consensus pass can bin it.
func Score(dets []Occurrence, truth []world.Interval, markers []sim.Time,
	tol sim.Duration, horizon sim.Time) stats.Confusion {

	var c stats.Confusion
	matchedTruth := make([]bool, len(truth))
	matchedDet := make([]bool, len(dets))

	for di, d := range dets {
		w := world.Interval{Start: d.Start - tol, End: d.End + tol}
		for ti, tv := range truth {
			if w.Overlap(tv) > 0 || tv.Contains(w.Start) || w.Contains(tv.Start) {
				matchedTruth[ti] = true
				matchedDet[di] = true
			}
		}
	}

	markerNear := func(iv world.Interval) bool {
		for _, m := range markers {
			if m >= iv.Start-tol && m < iv.End+tol {
				return true
			}
		}
		return false
	}

	for ti := range truth {
		if matchedTruth[ti] {
			c.TP++
		} else {
			c.FN++
			if markerNear(truth[ti]) {
				c.BorderlineFN++
			}
		}
	}
	for di := range dets {
		if !matchedDet[di] {
			c.FP++
			if dets[di].Borderline || markerNear(dets[di].Span()) {
				c.BorderlineFP++
			}
		}
	}

	// True negatives: gaps of the ground truth with no false detection.
	gaps := gapsOf(truth, horizon)
	for _, g := range gaps {
		clean := true
		for di, d := range dets {
			if !matchedDet[di] && g.Overlap(d.Span()) > 0 {
				clean = false
				break
			}
		}
		if clean {
			c.TN++
		}
	}
	return c
}

// gapsOf returns the complement intervals of truth within [0, horizon).
func gapsOf(truth []world.Interval, horizon sim.Time) []world.Interval {
	var gaps []world.Interval
	cursor := sim.Time(0)
	for _, tv := range truth {
		if tv.Start > cursor {
			gaps = append(gaps, world.Interval{Start: cursor, End: tv.Start})
		}
		if tv.End > cursor {
			cursor = tv.End
		}
	}
	if horizon > cursor {
		gaps = append(gaps, world.Interval{Start: cursor, End: horizon})
	}
	return gaps
}

// CloseOpen closes a still-open final occurrence at the horizon. Checkers
// call it from their Finish step.
func closeOpen(occ []Occurrence, open bool, horizon sim.Time) []Occurrence {
	if open && len(occ) > 0 && occ[len(occ)-1].End == 0 {
		occ[len(occ)-1].End = horizon
	}
	return occ
}
