package core

import (
	"reflect"
	"testing"

	"pervasive/internal/faults"
	"pervasive/internal/obs"
	"pervasive/internal/sim"
)

// The checker-tree differential oracle: the hierarchical checker at any
// fan-out must produce byte-identical detection output — occurrences
// (definite and borderline bins), race markers, scores, counters, merged
// traces — to the flat StrobeChecker, across shard counts, worker
// counts, race-aware and race-blind, and under fault plans. The flat
// checker (CheckerFanout <= 1) is the oracle.

func treeDiffConfig(fanout, shards, workers int, race bool) ShardedConfig {
	cfg := diffConfig(shards, workers)
	cfg.CheckerFanout = fanout
	cfg.RaceAware = race
	return cfg
}

func TestCheckerTreeDifferentialAgainstFlat(t *testing.T) {
	for _, race := range []bool{false, true} {
		name := "blind"
		if race {
			name = "aware"
		}
		t.Run(name, func(t *testing.T) {
			base := diffConfig(1, 1)
			base.RaceAware = race
			want := runSharded(t, base)
			if len(want.res.Occurrences) == 0 {
				t.Fatalf("flat baseline detected nothing; scenario too quiet for a differential oracle")
			}
			if race && len(want.res.Markers) == 0 {
				t.Fatalf("race-aware baseline saw no races; scenario too quiet for the borderline bin")
			}
			for _, fanout := range []int{1, 2, 4, 8} {
				for _, shards := range []int{1, 4} {
					got := runSharded(t, treeDiffConfig(fanout, shards, 2, race))
					label := "R=" + itoa(fanout) + "/S=" + itoa(shards)
					assertSameRun(t, label, want, got)
				}
			}
		})
	}
}

// TestCheckerTreeDifferentialWithFaults repeats the oracle under the
// fault plan of TestShardedDifferentialWithFaults: sensor crash/recover
// epoch bumps and a partition window must flow through the tree's
// per-region admission state identically.
func TestCheckerTreeDifferentialWithFaults(t *testing.T) {
	plan := &faults.Plan{
		Events: []faults.Event{
			{Kind: faults.Crash, Proc: 2, At: 300 * sim.Millisecond},
			{Kind: faults.Recover, Proc: 2, At: 900 * sim.Millisecond},
			{Kind: faults.Crash, Proc: 17, At: 500 * sim.Millisecond},
			{Kind: faults.Recover, Proc: 17, At: 1400 * sim.Millisecond},
			{Kind: faults.Crash, Proc: 9, At: 1100 * sim.Millisecond},
		},
		Partitions: []faults.Partition{{
			Groups: [][]int{{0, 1, 2, 3}, {20, 21, 22, 23}},
			From:   600 * sim.Millisecond, To: 1 * sim.Second,
		}},
	}
	mk := func(fanout, shards int, race bool) ShardedConfig {
		cfg := treeDiffConfig(fanout, shards, 4, race)
		cfg.Faults = plan
		return cfg
	}
	for _, race := range []bool{false, true} {
		base := diffConfig(1, 1)
		base.RaceAware = race
		base.Faults = plan
		want := runSharded(t, base)
		for _, fanout := range []int{2, 8} {
			got := runSharded(t, mk(fanout, 4, race))
			label := "faults/R=" + itoa(fanout)
			if race {
				label += "/aware"
			}
			assertSameRun(t, label, want, got)
		}
	}
}

// TestCheckerTreeSparseFleet crosses the dense/sparse clock cutoff with
// the tree active: a 140-sensor fleet (sparse vector state) through
// R ∈ {4, 16} must match the flat checker byte for byte.
func TestCheckerTreeSparseFleet(t *testing.T) {
	mk := func(fanout int) ShardedConfig {
		return ShardedConfig{
			Seed: 7, N: 140, Shards: 4, Workers: 2,
			Delay:         sim.NewDeltaBounded(5 * sim.Millisecond),
			Horizon:       500 * sim.Millisecond,
			Trace:         true,
			CheckerFanout: fanout,
		}
	}
	want := runSharded(t, mk(0))
	for _, fanout := range []int{4, 16} {
		got := runSharded(t, mk(fanout))
		assertSameRun(t, "sparse/R="+itoa(fanout), want, got)
	}
}

// TestCheckerTreeBatchingActive guards against the differential tests
// passing vacuously: a tree run must actually batch, coalesce and move
// sync bytes through the wire codec.
func TestCheckerTreeBatchingActive(t *testing.T) {
	cfg := treeDiffConfig(4, 2, 1, false)
	// Fast togglers: several reports per process per 5ms flush window, so
	// the pending set genuinely coalesces superseded values.
	cfg.MeanHigh = 2 * sim.Millisecond
	cfg.MeanLow = 2 * sim.Millisecond
	cfg.Horizon = 500 * sim.Millisecond
	h := NewShardedHarness(cfg)
	h.Run()
	st := h.Tree.Stat
	if st.Applied == 0 || st.Batches == 0 || st.BatchTriples == 0 {
		t.Fatalf("tree did not batch: %+v", st)
	}
	if st.WireBytes == 0 {
		t.Fatalf("no sync bytes crossed the wire codec: %+v", st)
	}
	if st.Coalesced == 0 {
		t.Fatalf("no pending values were coalesced: %+v", st)
	}
	// The root's watermarks advance only through encode→decode; after
	// Finish every applied process must have synced its final seq.
	synced := 0
	for p := 0; p < h.Cfg.N; p++ {
		if _, seq := h.Tree.RootSynced(p); seq > 0 {
			synced++
		}
	}
	if synced != h.Cfg.N {
		t.Fatalf("root synced %d of %d processes", synced, h.Cfg.N)
	}
	// The pilot predicate is global (spans regions at R=4), so pilot
	// values are boundary-relevant; the non-pilot fleet is filtered as
	// region-local only when some clause is region-homed — with a single
	// global clause nothing is local, so just check entries flowed.
	if st.BatchEntries == 0 {
		t.Fatalf("no boundary value entries were forwarded: %+v", st)
	}
}

// TestCheckerTreeObsCountersMatchFlat runs flat and tree with obs
// registries attached: the shared checker.* counters must agree exactly
// (pred_evals includes the four-state race probes, so this pins the
// probe replication, not just its verdicts).
func TestCheckerTreeObsCountersMatchFlat(t *testing.T) {
	run := func(fanout int) map[string]int64 {
		cfg := treeDiffConfig(fanout, 2, 1, true)
		r := obs.NewRegistry()
		cfg.Obs = r
		h := NewShardedHarness(cfg)
		h.Run()
		out := map[string]int64{}
		for _, name := range []string{
			"checker.pred_evals", "checker.detections",
			"checker.strobes_applied", "checker.strobes_stale",
			"checker.race_markers",
		} {
			out[name] = r.Counter(name).Value()
		}
		return out
	}
	want := run(1)
	if want["checker.pred_evals"] <= want["checker.strobes_applied"] {
		t.Fatalf("baseline ran no race probes (evals %d, applied %d); oracle too weak",
			want["checker.pred_evals"], want["checker.strobes_applied"])
	}
	for _, fanout := range []int{2, 8} {
		got := run(fanout)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("R=%d: obs counters diverge:\nflat %v\ntree %v", fanout, want, got)
		}
	}
}
