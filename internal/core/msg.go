// Package core implements the paper's primary contribution: predicate
// detection over the world plane using logical strobe clocks (Sections
// 3.3, 4.2, 5), with the physically-synchronized-clock detector of
// Mayo–Kearns/Stoller as the baseline, and the conjunctive
// Possibly/Definitely detector family of Garg–Waldecker/Cooper–Marzullo
// and Huang et al. [17].
//
// The package provides:
//
//   - Sensor: a network-plane process that observes world-plane attributes
//     and, on each sense event, ticks its clock and emits the protocol's
//     control traffic (strobe broadcast or direct checker report);
//   - VectorChecker / ScalarChecker: detection of *each occurrence* of a
//     relational predicate under the Instantaneously modality using strobe
//     vector / scalar clocks, with the race-aware "borderline bin" of
//     Section 5 (vector only — scalars cannot see races);
//   - PhysicalChecker: the ε-synchronized physical-clock detector;
//   - ConjunctiveChecker: interval-queue detection of Possibly(φ) and
//     Definitely(φ) for conjunctive φ;
//   - Score: confusion-matrix scoring of any detector's occurrences
//     against the world plane's ground-truth intervals.
package core

import (
	"pervasive/internal/clock"
	"pervasive/internal/sim"
)

// StrobeMsg is the control message broadcast by a sensor at each relevant
// (sense) event, per rules SVC1 / SSC1. Exactly one of Vec or Scalar is
// meaningful, chosen by the emitting sensor's clock kind.
type StrobeMsg struct {
	Proc int
	Seq  int // per-process sense event counter (1-based)
	// Epoch is bumped each time the sender recovers from a crash; the
	// checker uses it to tell "rebooted with a fresh Seq" apart from
	// "stale reordered strobe". 0 until the first recovery.
	Epoch int
	Var   string  // the bound variable that changed
	Value float64 // its new value
	// Vec is the strobe vector stamp (vector protocol).
	Vec clock.Vector
	// Scalar is the strobe scalar stamp (scalar protocol).
	Scalar uint64
	// Sparse is the differential strobe payload (diff-vector protocol):
	// only the components changed since the sender's previous broadcast
	// (Singhal–Kshemkalyani compression applied to strobes).
	Sparse clock.SparseStamp
}

// WireSize implements network.Payload: vector strobes carry O(n) state,
// scalar strobes O(1) (Section 4.2.2).
func (m StrobeMsg) WireSize() int {
	base := 2 /*proc*/ + 4 /*seq*/ + 2 /*var id*/ + 8 /*value*/
	if m.Epoch > 0 {
		base += 2 // epoch tag, only carried once a process has rebooted
	}
	switch {
	case m.Vec != nil:
		return base + 8*len(m.Vec)
	case m.Sparse != nil:
		return base + m.Sparse.WireBytes()
	}
	return base + 8
}

// Kind implements network.Payload.
func (m StrobeMsg) Kind() string {
	switch {
	case m.Vec != nil:
		return "strobe-vec"
	case m.Sparse != nil:
		return "strobe-diff"
	}
	return "strobe-scalar"
}

// FlightStamp implements flight.Stamped: the strobe's logical identity
// for the flight recorder. The clock component is the sender's own
// vector entry (which SVC1 ticked at the emitting sense event, so the
// differential payload always carries it), or the scalar value.
func (m StrobeMsg) FlightStamp() (epoch, seq int, clk uint64) {
	switch {
	case m.Vec != nil:
		if m.Proc >= 0 && m.Proc < len(m.Vec) {
			return m.Epoch, m.Seq, m.Vec[m.Proc]
		}
	case m.Sparse != nil:
		for _, e := range m.Sparse {
			if e.Proc == m.Proc {
				return m.Epoch, m.Seq, e.Val
			}
		}
	default:
		return m.Epoch, m.Seq, m.Scalar
	}
	return m.Epoch, m.Seq, 0
}

// ReportMsg is the direct sensor→checker report of the physical-clock
// detector: the sensed change with its local physical timestamp.
type ReportMsg struct {
	Proc  int
	Seq   int
	Var   string
	Value float64
	// TS is the sensor's physical clock reading at the sense event; with
	// an ε-synchronized service it is within ε of true time.
	TS sim.Time
}

// WireSize implements network.Payload.
func (m ReportMsg) WireSize() int { return 2 + 4 + 2 + 8 + 8 }

// Kind implements network.Payload.
func (m ReportMsg) Kind() string { return "phys-report" }

// FlightStamp implements flight.Stamped. Physical reports carry no
// logical clock; the per-process Seq still identifies the sense event.
func (m ReportMsg) FlightStamp() (epoch, seq int, clk uint64) {
	return 0, m.Seq, 0
}

// IntervalMsg reports one closed local-conjunct-true interval to the
// conjunctive checker: the vector stamps of its delimiting events plus
// their true times (the latter used only for scoring and display, never by
// the detection logic).
type IntervalMsg struct {
	Proc    int
	Index   int // per-process interval counter (0-based)
	Open    clock.Vector
	Close   clock.Vector
	OpenAt  sim.Time
	CloseAt sim.Time
}

// WireSize implements network.Payload.
func (m IntervalMsg) WireSize() int { return 2 + 4 + 8*len(m.Open) + 8*len(m.Close) }

// Kind implements network.Payload.
func (m IntervalMsg) Kind() string { return "interval" }
