package core

import (
	"sort"

	"pervasive/internal/sim"
)

// ConsensusPolicy selects how sub-majority agreement is treated by the
// consensus merge, mirroring §5's choice of how to handle the borderline
// bin.
type ConsensusPolicy int

// Policies.
const (
	// ConsensusMajority suppresses episodes that never reach majority
	// support — maximum precision, minority hallucinations vote away.
	ConsensusMajority ConsensusPolicy = iota
	// ConsensusBin also emits sub-majority episodes, flagged borderline —
	// §5's "err on the safe side" policy: nothing any replica saw is
	// silently dropped, but partial agreement is marked as a race.
	ConsensusBin
)

// ConsensusMerge implements the consensus step of Section 5's "consensus
// based algorithm using vector strobes" with the majority policy: every
// sensor runs a checker replica (see Sensor.Local), and the replicas'
// views are merged by majority vote. An instant belongs to a merged
// occurrence when at least a majority of replicas consider the predicate
// true there; the occurrence is flagged Borderline when the replicas were
// not unanimous throughout, or when any contributing replica flagged its
// own detection — disagreement between replicas is exactly the signature
// of a race within Δ, with no central coordinator required.
func ConsensusMerge(replicas [][]Occurrence, horizon sim.Time) []Occurrence {
	return ConsensusMergePolicy(replicas, horizon, ConsensusMajority)
}

// ConsensusMergePolicy is ConsensusMerge with an explicit policy.
func ConsensusMergePolicy(replicas [][]Occurrence, horizon sim.Time, policy ConsensusPolicy) []Occurrence {
	k := len(replicas)
	if k == 0 {
		return nil
	}
	threshold := k/2 + 1
	if policy == ConsensusBin {
		threshold = 1
	}

	// Sweep over all span boundaries counting active replicas.
	type edge struct {
		at         sim.Time
		delta      int
		borderline bool
	}
	var edges []edge
	for _, occ := range replicas {
		for _, o := range occ {
			end := o.End
			if end == 0 || end > horizon {
				end = horizon
			}
			if end <= o.Start {
				continue
			}
			edges = append(edges, edge{at: o.Start, delta: 1, borderline: o.Borderline})
			edges = append(edges, edge{at: end, delta: -1})
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].at < edges[j].at })

	var out []Occurrence
	count := 0
	open := false
	sawDisagreement := false
	sawFlag := false
	var start sim.Time
	i := 0
	for i < len(edges) {
		at := edges[i].at
		for i < len(edges) && edges[i].at == at {
			count += edges[i].delta
			if edges[i].borderline {
				sawFlag = true
			}
			i++
		}
		switch {
		case !open && count >= threshold:
			open = true
			start = at
			sawDisagreement = count < k
		case open:
			if count < k && count >= threshold {
				sawDisagreement = true
			}
			if count < threshold {
				out = append(out, Occurrence{
					Start: start, End: at,
					Borderline: sawDisagreement || sawFlag || count > 0,
				})
				open = false
				sawFlag = false
			}
		}
	}
	if open {
		out = append(out, Occurrence{Start: start, End: horizon,
			Borderline: sawDisagreement || sawFlag})
	}
	return out
}

// MergeAdjacent joins occurrences separated by gaps shorter than tol —
// useful after consensus merging, where replica edge jitter can split one
// episode into fragments.
func MergeAdjacent(occ []Occurrence, tol sim.Duration) []Occurrence {
	if len(occ) == 0 {
		return occ
	}
	out := []Occurrence{occ[0]}
	for _, o := range occ[1:] {
		last := &out[len(out)-1]
		if o.Start-last.End <= tol {
			if o.End > last.End {
				last.End = o.End
			}
			last.Borderline = last.Borderline || o.Borderline
			continue
		}
		out = append(out, o)
	}
	return out
}
