package core

import (
	"testing"

	"pervasive/internal/predicate"
	"pervasive/internal/sim"
	"pervasive/internal/world"
)

// pulseHarness wires n sensors each watching its own pulsing object, with
// the conjunction-of-pulses predicate.
func pulseHarness(seed uint64, n int, kind ClockKind, delay sim.DelayModel,
	pulseMeanGap, pulseWidth sim.Duration, horizon sim.Time) *Harness {

	pred := ConjunctiveGlobal(predicate.MustParse("p@0 == 1"), n)
	h := NewHarness(HarnessConfig{
		Seed: seed, N: n, Kind: kind, Delay: delay,
		Pred: pred, Modality: predicate.Instantaneously,
		Horizon: horizon,
	})
	for i := 0; i < n; i++ {
		obj := h.World.AddObject("obj", nil)
		h.Bind(i, obj, "p", "p")
		world.Toggler{Obj: obj, Attr: "p", MeanHigh: pulseWidth,
			MeanLow: pulseMeanGap}.Install(h.World, horizon)
	}
	return h
}

func TestVectorStrobeEndToEndHighAccuracy(t *testing.T) {
	// The paper's favourable regime: event rate low relative to Δ.
	// Pulses last seconds; Δ = 20 ms.
	h := pulseHarness(1, 3, VectorStrobe, sim.NewDeltaBounded(20*sim.Millisecond),
		2*sim.Second, 3*sim.Second, 60*sim.Second)
	res := h.Run()
	if len(res.Truth) < 3 {
		t.Fatalf("workload too thin: %d true intervals", len(res.Truth))
	}
	if r := res.Confusion.Recall(); r < 0.9 {
		t.Fatalf("recall %.3f: %+v", r, res.Confusion)
	}
	if res.Confusion.FP > 0 && res.Confusion.BorderlineFP < res.Confusion.FP {
		t.Fatalf("vector checker produced unflagged FPs: %+v", res.Confusion)
	}
}

func TestVectorDegradesGracefullyWithDelta(t *testing.T) {
	// As Δ approaches the event scale, accuracy decreases (more FN).
	fast := pulseHarness(2, 3, VectorStrobe, sim.NewDeltaBounded(5*sim.Millisecond),
		300*sim.Millisecond, 200*sim.Millisecond, 120*sim.Second).Run()
	slow := pulseHarness(2, 3, VectorStrobe, sim.NewDeltaBounded(2*sim.Second),
		300*sim.Millisecond, 200*sim.Millisecond, 120*sim.Second).Run()
	if fast.Confusion.Recall() < slow.Confusion.Recall() {
		t.Fatalf("recall did not degrade with Δ: fast=%.3f slow=%.3f",
			fast.Confusion.Recall(), slow.Confusion.Recall())
	}
	if slow.Confusion.FN == 0 {
		t.Fatal("huge Δ produced no false negatives at all — suspicious")
	}
}

func TestScalarProducesUnflaggedErrors(t *testing.T) {
	// With racing pulses and nontrivial Δ, the scalar checker reports
	// definite occurrences it cannot vouch for; the vector checker flags
	// its race-affected ones. Aggregate across seeds for stability.
	var scalarUnflaggedFP, vectorUnflaggedFP int64
	for seed := uint64(0); seed < 8; seed++ {
		vec := pulseHarness(seed, 4, VectorStrobe, sim.NewDeltaBounded(150*sim.Millisecond),
			400*sim.Millisecond, 120*sim.Millisecond, 60*sim.Second).Run()
		sca := pulseHarness(seed, 4, ScalarStrobe, sim.NewDeltaBounded(150*sim.Millisecond),
			400*sim.Millisecond, 120*sim.Millisecond, 60*sim.Second).Run()
		vectorUnflaggedFP += vec.Confusion.FP - vec.Confusion.BorderlineFP
		scalarUnflaggedFP += sca.Confusion.FP - sca.Confusion.BorderlineFP
	}
	if scalarUnflaggedFP <= vectorUnflaggedFP {
		t.Fatalf("scalar unflagged FP (%d) not worse than vector (%d)",
			scalarUnflaggedFP, vectorUnflaggedFP)
	}
}

func TestHarnessDeterminism(t *testing.T) {
	run := func() Results {
		return pulseHarness(9, 3, VectorStrobe, sim.NewDeltaBounded(50*sim.Millisecond),
			500*sim.Millisecond, 300*sim.Millisecond, 30*sim.Second).Run()
	}
	a, b := run(), run()
	if a.Confusion != b.Confusion || len(a.Occurrences) != len(b.Occurrences) {
		t.Fatalf("non-deterministic: %+v vs %+v", a.Confusion, b.Confusion)
	}
}

func TestHarnessMessageCosts(t *testing.T) {
	vec := pulseHarness(4, 6, VectorStrobe, sim.Synchronous{},
		300*sim.Millisecond, 200*sim.Millisecond, 20*sim.Second).Run()
	sca := pulseHarness(4, 6, ScalarStrobe, sim.Synchronous{},
		300*sim.Millisecond, 200*sim.Millisecond, 20*sim.Second).Run()
	if vec.Net.Sent != sca.Net.Sent {
		t.Fatalf("same workload, different message counts: %d vs %d",
			vec.Net.Sent, sca.Net.Sent)
	}
	if vec.Net.Bytes <= sca.Net.Bytes {
		t.Fatalf("vector strobes (O(n)) not costlier than scalar (O(1)): %d vs %d",
			vec.Net.Bytes, sca.Net.Bytes)
	}
}

func TestScalarEqualsVectorAtDeltaZero(t *testing.T) {
	// §4.2.3 item 5: with Δ=0 and a strobe per event, scalars do not lose
	// accuracy relative to vectors.
	for seed := uint64(0); seed < 5; seed++ {
		vec := pulseHarness(seed, 4, VectorStrobe, sim.Synchronous{},
			300*sim.Millisecond, 150*sim.Millisecond, 30*sim.Second).Run()
		sca := pulseHarness(seed, 4, ScalarStrobe, sim.Synchronous{},
			300*sim.Millisecond, 150*sim.Millisecond, 30*sim.Second).Run()
		if vec.Confusion.TP != sca.Confusion.TP ||
			vec.Confusion.FP != sca.Confusion.FP ||
			vec.Confusion.FN != sca.Confusion.FN {
			t.Fatalf("seed %d: Δ=0 scalar ≠ vector: %+v vs %+v",
				seed, sca.Confusion, vec.Confusion)
		}
	}
}

func TestLossLocalization(t *testing.T) {
	// Drop every strobe in a window; detection outside the window must be
	// unaffected (no long-term ripple, §4.2.2).
	mkDelay := func(withLoss bool) sim.DelayModel {
		inner := sim.NewDeltaBounded(10 * sim.Millisecond)
		if !withLoss {
			return inner
		}
		return sim.LossWindow{Inner: inner,
			From: 20 * sim.Second, To: 25 * sim.Second}
	}
	clean := pulseHarness(7, 3, VectorStrobe, mkDelay(false),
		800*sim.Millisecond, 600*sim.Millisecond, 60*sim.Second).Run()
	lossy := pulseHarness(7, 3, VectorStrobe, mkDelay(true),
		800*sim.Millisecond, 600*sim.Millisecond, 60*sim.Second).Run()

	// Compare detection before the window and well after it.
	countIn := func(res Results, lo, hi sim.Time) int {
		n := 0
		for _, o := range res.Occurrences {
			if o.Start >= lo && o.Start < hi {
				n++
			}
		}
		return n
	}
	if countIn(clean, 0, 19*sim.Second) != countIn(lossy, 0, 19*sim.Second) {
		t.Fatal("loss window affected detection before it")
	}
	// After the window plus one value-refresh cycle, the checker resyncs
	// on the next strobes.
	after := 30 * sim.Second
	c1, c2 := countIn(clean, after, 60*sim.Second), countIn(lossy, after, 60*sim.Second)
	diff := c1 - c2
	if diff < 0 {
		diff = -diff
	}
	if diff > 1 {
		t.Fatalf("loss rippled: clean=%d lossy=%d occurrences after window", c1, c2)
	}
}

func TestConjunctiveDefinitelyEndToEnd(t *testing.T) {
	local := predicate.MustParse("p@0 == 1")
	n := 3
	h := NewHarness(HarnessConfig{
		Seed: 11, N: n, Kind: VectorStrobe,
		Delay:     sim.NewDeltaBounded(20 * sim.Millisecond),
		Pred:      ConjunctiveGlobal(local, n),
		LocalConj: local,
		Modality:  predicate.Definitely,
		Horizon:   60 * sim.Second,
	})
	for i := 0; i < n; i++ {
		obj := h.World.AddObject("obj", nil)
		h.Bind(i, obj, "p", "p")
		world.Toggler{Obj: obj, Attr: "p", MeanHigh: 3 * sim.Second,
			MeanLow: 1 * sim.Second}.Install(h.World, h.Cfg.Horizon)
	}
	res := h.Run()
	if len(res.Truth) < 3 {
		t.Fatalf("thin workload: %d true intervals", len(res.Truth))
	}
	if r := res.Confusion.Recall(); r < 0.7 {
		t.Fatalf("Definitely recall %.3f: %+v", r, res.Confusion)
	}
}

func TestHarnessLatticeExecution(t *testing.T) {
	h := pulseHarness(5, 3, VectorStrobe, sim.NewDeltaBounded(10*sim.Millisecond),
		400*sim.Millisecond, 300*sim.Millisecond, 5*sim.Second)
	h.Cfg.LogStamps = true
	for _, s := range h.Sensors {
		s.LogStamps = true
	}
	h.Run()
	ex := h.LatticeExecution()
	if ex.Events() == 0 {
		t.Fatal("no stamps logged")
	}
	if !ex.PathConsistent() {
		t.Fatal("actual path inconsistent under strobe stamps")
	}
}

func TestHarnessPanicsWithoutPred(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHarness(HarnessConfig{N: 2, Modality: predicate.Instantaneously})
}

func TestHarnessPanicsConjunctiveScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHarness(HarnessConfig{
		N: 2, Kind: ScalarStrobe, Modality: predicate.Definitely,
		Pred: predicate.MustParse("p@0 == 1 && p@1 == 1"),
	})
}
