package core

import (
	"testing"

	"pervasive/internal/sim"
	"pervasive/internal/world"
)

func iv(s, e sim.Time) world.Interval { return world.Interval{Start: s, End: e} }

func TestScorePerfectDetection(t *testing.T) {
	truth := []world.Interval{iv(100, 200), iv(500, 600)}
	dets := []Occurrence{{Start: 105, End: 205}, {Start: 505, End: 610}}
	c := Score(dets, truth, nil, 10, 1000)
	if c.TP != 2 || c.FP != 0 || c.FN != 0 {
		t.Fatalf("confusion %+v", c)
	}
	// Gaps: [0,100), [200,500), [600,1000) all clean.
	if c.TN != 3 {
		t.Fatalf("TN %d", c.TN)
	}
}

func TestScoreFalseNegative(t *testing.T) {
	truth := []world.Interval{iv(100, 200), iv(500, 600)}
	dets := []Occurrence{{Start: 100, End: 200}}
	c := Score(dets, truth, nil, 5, 1000)
	if c.TP != 1 || c.FN != 1 || c.FP != 0 {
		t.Fatalf("confusion %+v", c)
	}
}

func TestScoreFalsePositive(t *testing.T) {
	truth := []world.Interval{iv(100, 200)}
	dets := []Occurrence{{Start: 100, End: 200}, {Start: 700, End: 720}}
	c := Score(dets, truth, nil, 5, 1000)
	if c.TP != 1 || c.FP != 1 {
		t.Fatalf("confusion %+v", c)
	}
	// The gap [200,1000) contains the FP: not clean.
	if c.TN != 1 {
		t.Fatalf("TN %d", c.TN)
	}
}

func TestScoreToleranceAbsorbsLag(t *testing.T) {
	truth := []world.Interval{iv(100, 110)}
	// Detection lags by 40 (view delay), interval short.
	dets := []Occurrence{{Start: 140, End: 150}}
	if c := Score(dets, truth, nil, 50, 1000); c.TP != 1 || c.FP != 0 {
		t.Fatalf("tolerant match failed: %+v", c)
	}
	if c := Score(dets, truth, nil, 5, 1000); c.TP != 0 || c.FP != 1 || c.FN != 1 {
		t.Fatalf("strict match failed: %+v", c)
	}
}

func TestScoreBorderlineFP(t *testing.T) {
	truth := []world.Interval{iv(100, 200)}
	dets := []Occurrence{
		{Start: 100, End: 200},
		{Start: 700, End: 720, Borderline: true},
		{Start: 900, End: 910},
	}
	c := Score(dets, truth, nil, 5, 1000)
	if c.FP != 2 || c.BorderlineFP != 1 {
		t.Fatalf("confusion %+v", c)
	}
}

func TestScoreBorderlineFNViaMarkers(t *testing.T) {
	truth := []world.Interval{iv(100, 120), iv(500, 520)}
	dets := []Occurrence{} // both missed
	markers := []sim.Time{110}
	c := Score(dets, truth, markers, 5, 1000)
	if c.FN != 2 || c.BorderlineFN != 1 {
		t.Fatalf("confusion %+v", c)
	}
}

func TestScoreMarkerMakesFPBorderline(t *testing.T) {
	dets := []Occurrence{{Start: 700, End: 720}}
	markers := []sim.Time{705}
	c := Score(dets, nil, markers, 5, 1000)
	if c.FP != 1 || c.BorderlineFP != 1 {
		t.Fatalf("confusion %+v", c)
	}
}

func TestScoreEmpty(t *testing.T) {
	c := Score(nil, nil, nil, 5, 1000)
	if c.TP != 0 || c.FP != 0 || c.FN != 0 || c.TN != 1 {
		t.Fatalf("empty confusion %+v", c)
	}
}

func TestGapsOf(t *testing.T) {
	gaps := gapsOf([]world.Interval{iv(10, 20), iv(30, 40)}, 100)
	want := []world.Interval{iv(0, 10), iv(20, 30), iv(40, 100)}
	if len(gaps) != 3 {
		t.Fatalf("gaps %v", gaps)
	}
	for i := range want {
		if gaps[i] != want[i] {
			t.Fatalf("gaps %v want %v", gaps, want)
		}
	}
	// Truth starting at 0 and running to horizon leaves no gaps.
	if g := gapsOf([]world.Interval{iv(0, 100)}, 100); len(g) != 0 {
		t.Fatalf("full coverage gaps %v", g)
	}
}

func TestClipToHorizon(t *testing.T) {
	occ := []Occurrence{
		{Start: 10, End: 20},
		{Start: 90, End: 0},    // open
		{Start: 150, End: 160}, // past horizon
	}
	got := clipToHorizon(occ, 100)
	if len(got) != 2 {
		t.Fatalf("clip %v", got)
	}
	if got[1].End != 100 {
		t.Fatalf("open occurrence not clamped: %v", got[1])
	}
}
