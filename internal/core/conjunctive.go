package core

import (
	"sort"

	"pervasive/internal/intervals"
	"pervasive/internal/network"
	"pervasive/internal/obs"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
)

// ConjunctiveChecker detects Possibly(φ) or Definitely(φ) for a
// conjunctive predicate φ = ∧ᵢ φᵢ using the interval-queue algorithm
// family of Garg–Waldecker [14] and Cooper–Marzullo [10], applied to
// pervasive context detection as in Huang et al. [17]. Each sensor tracks
// the intervals during which its local conjunct φᵢ holds (delimited by
// strobe-vector stamps) and reports them; the checker searches for a set
// of intervals, one per process, that pairwise satisfy the modality's
// overlap relation.
//
// Unlike the literature's detect-once algorithms that "hang" after the
// first match (the limitation Section 3.3 calls out), this checker keeps
// advancing its queues and reports every occurrence.
type ConjunctiveChecker struct {
	n        int
	modality predicate.Modality

	queues  [][]IntervalMsg
	next    []int // next expected Index per proc (for de-dup and ordering)
	occ     []Occurrence
	matches int64
	// Once restricts the checker to detect-once-and-hang semantics, as a
	// baseline for experiment E10.
	Once bool
	done bool

	// Notify, if set, is invoked on each match — the actuation hook.
	Notify func(o Occurrence)

	// KeepSets records each matched interval tuple in MatchedSets, for
	// post-hoc soundness verification in tests.
	KeepSets    bool
	MatchedSets [][]IntervalMsg

	// Resolved obs instruments; nil (no-ops) until SetObs.
	obsDetections *obs.Counter
	obsIntervals  *obs.Counter
	obsQueue      *obs.Gauge
}

// SetObs attaches runtime metrics: matched occurrences, enqueued
// interval reports, and total queue occupancy across processes (with
// watermark). SetObs(nil) detaches.
func (c *ConjunctiveChecker) SetObs(r *obs.Registry) {
	c.obsDetections = r.Counter("checker.detections")
	c.obsIntervals = r.Counter("checker.intervals_enqueued")
	c.obsQueue = r.Gauge("checker.queue_depth")
}

// queueDepth is the total interval count buffered across all queues.
func (c *ConjunctiveChecker) queueDepth() int64 {
	var d int64
	for _, q := range c.queues {
		d += int64(len(q))
	}
	return d
}

// NewConjunctiveChecker creates a checker over n processes for the given
// modality (Possibly or Definitely).
func NewConjunctiveChecker(n int, m predicate.Modality) *ConjunctiveChecker {
	if m == predicate.Instantaneously {
		panic("core: conjunctive checker detects Possibly/Definitely, not Instantaneously")
	}
	return &ConjunctiveChecker{
		n: n, modality: m,
		queues: make([][]IntervalMsg, n),
		next:   make([]int, n),
	}
}

// Register installs the checker on transport node idx.
func (c *ConjunctiveChecker) Register(net *network.Net, idx int) {
	net.Register(idx, func(m network.Message, now sim.Time) {
		if iv, ok := m.Payload.(IntervalMsg); ok {
			c.OnInterval(iv, now)
		}
	})
}

// OnInterval enqueues one reported interval and attempts matching.
// Intervals that arrive out of order are inserted in Index position;
// intervals already consumed (late after a loss) are dropped.
func (c *ConjunctiveChecker) OnInterval(m IntervalMsg, _ sim.Time) {
	if c.done || m.Proc < 0 || m.Proc >= c.n || m.Index < c.next[m.Proc] {
		return
	}
	q := c.queues[m.Proc]
	pos := sort.Search(len(q), func(i int) bool { return q[i].Index >= m.Index })
	if pos < len(q) && q[pos].Index == m.Index {
		return // duplicate
	}
	q = append(q, IntervalMsg{})
	copy(q[pos+1:], q[pos:])
	q[pos] = m
	c.queues[m.Proc] = q
	c.obsIntervals.Inc()
	if c.obsQueue != nil { // skip the O(n) depth walk when uninstrumented
		c.obsQueue.Set(c.queueDepth())
		defer func() { c.obsQueue.Set(c.queueDepth()) }()
	}
	c.match()
}

// po converts a reported interval to its partial-order form.
func po(m IntervalMsg) intervals.POInterval {
	return intervals.POInterval{Proc: m.Proc, Start: m.Open, End: m.Close}
}

// match advances the queues until some queue is empty, reporting every
// matched set along the way.
func (c *ConjunctiveChecker) match() {
	for !c.done {
		heads := make([]IntervalMsg, c.n)
		for i := 0; i < c.n; i++ {
			if len(c.queues[i]) == 0 {
				return // need more intervals
			}
			heads[i] = c.queues[i][0]
		}
		popped := false
		if c.modality == predicate.Possibly {
			// Classic pruning: an interval wholly preceding another can
			// never pair with it or its successors.
			for i := 0; i < c.n && !popped; i++ {
				for j := 0; j < c.n && !popped; j++ {
					if i != j && intervals.Precedes(po(heads[i]), po(heads[j])) {
						c.pop(i)
						popped = true
					}
				}
			}
		} else {
			// Definitely: x pairs with y only if x.Open → y.Close. If
			// that fails, y's interval closes too early relative to x and
			// can never satisfy it; advance y.
			for i := 0; i < c.n && !popped; i++ {
				for j := 0; j < c.n && !popped; j++ {
					if i != j && !po(heads[i]).Start.HappensBefore(po(heads[j]).End) {
						c.pop(j)
						popped = true
					}
				}
			}
		}
		if popped {
			continue
		}
		// All heads pairwise satisfy the modality: an occurrence.
		c.report(heads)
		if c.Once {
			c.done = true
			return
		}
		// Advance past the earliest-closing interval to find the next
		// distinct occurrence.
		c.pop(earliestClose(heads))
	}
}

func (c *ConjunctiveChecker) pop(i int) {
	c.next[i] = c.queues[i][0].Index + 1
	c.queues[i] = c.queues[i][1:]
}

func earliestClose(heads []IntervalMsg) int {
	best := 0
	for i := 1; i < len(heads); i++ {
		if heads[i].CloseAt < heads[best].CloseAt {
			best = i
		}
	}
	return best
}

// report records an occurrence with true-time extent [max open, min close]
// — meaningful for Definitely (the intervals genuinely all overlap in real
// time under correct stamps); for Possibly the extent can be empty, in
// which case a zero-length occurrence at the latest open time is recorded
// and flagged borderline (it possibly-but-not-definitely happened).
func (c *ConjunctiveChecker) report(heads []IntervalMsg) {
	c.matches++
	c.obsDetections.Inc()
	if c.KeepSets {
		c.MatchedSets = append(c.MatchedSets, append([]IntervalMsg(nil), heads...))
	}
	start := heads[0].OpenAt
	end := heads[0].CloseAt
	for _, h := range heads[1:] {
		if h.OpenAt > start {
			start = h.OpenAt
		}
		if h.CloseAt < end {
			end = h.CloseAt
		}
	}
	borderline := false
	if c.modality == predicate.Possibly {
		definitely := true
		for i := 0; i < len(heads) && definitely; i++ {
			for j := i + 1; j < len(heads) && definitely; j++ {
				if !intervals.DefinitelyOverlap(po(heads[i]), po(heads[j])) {
					definitely = false
				}
			}
		}
		borderline = !definitely
	}
	if end < start {
		end = start
	}
	o := Occurrence{Start: start, End: end, Borderline: borderline}
	c.occ = append(c.occ, o)
	if c.Notify != nil {
		c.Notify(o)
	}
}

// Occurrences returns the matched occurrences so far.
func (c *ConjunctiveChecker) Occurrences() []Occurrence { return c.occ }

// Matches returns the number of matched interval sets.
func (c *ConjunctiveChecker) Matches() int64 { return c.matches }
