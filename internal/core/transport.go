package core

import (
	"pervasive/internal/flight"
	"pervasive/internal/network"
)

// Transport is the sending surface a sensor needs: direct sends to the
// checker and the protocol's strobe broadcast. Both the single-engine
// network.Net and a shard's network.ShardPart satisfy it, which is how one
// Sensor implementation runs unchanged on either kernel.
type Transport interface {
	Send(src, dst int, p network.Payload) uint64
	SendStamped(src, dst int, p network.Payload, st flight.Stamp) uint64
	BroadcastStamped(src int, p network.Payload, st flight.Stamp) uint64
}

var (
	_ Transport = (*network.Net)(nil)
	_ Transport = (*network.ShardPart)(nil)
)
