package core

import (
	"container/heap"

	"pervasive/internal/network"
	"pervasive/internal/obs"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
)

// PhysicalChecker detects each occurrence of a global predicate using
// ε-synchronized physical timestamps, in the style of Mayo–Kearns [28]
// and Stoller [34]: sensors report timestamped events; the checker buffers
// reports briefly to absorb network reordering, then replays them in
// timestamp order and evaluates the predicate after each event.
//
// Its accuracy limit is exactly the paper's: when two events at different
// locations race within the clock skew, their timestamp order may differ
// from their true order, producing false negatives (and false positives)
// for predicate-true periods shorter than the skew bound 2ε.
type PhysicalChecker struct {
	n    int
	pred predicate.Cond
	// Slack is how long a report is buffered before replay; it must cover
	// the maximum network delay plus ε so replay order equals timestamp
	// order. Larger slack costs detection latency, not accuracy.
	Slack sim.Duration

	eng     *sim.Engine
	pending reportHeap
	applied int64

	vals     []map[string]float64
	lastTS   sim.Time
	cur      bool
	occ      []Occurrence
	finished bool
	// Reordered counts reports that arrived with a timestamp below the
	// replay watermark and were applied out of order.
	Reordered int64

	// Resolved obs instruments; nil (no-ops) until SetObs.
	obsEvals      *obs.Counter
	obsDetections *obs.Counter
	obsApplied    *obs.Counter
	obsQueue      *obs.Gauge
}

// SetObs attaches runtime metrics: predicate evaluations, detections,
// replayed reports, and the reorder buffer's occupancy (with watermark).
// SetObs(nil) detaches.
func (c *PhysicalChecker) SetObs(r *obs.Registry) {
	c.obsEvals = r.Counter("checker.pred_evals")
	c.obsDetections = r.Counter("checker.detections")
	c.obsApplied = r.Counter("checker.reports_applied")
	c.obsQueue = r.Gauge("checker.queue_depth")
}

// NewPhysicalChecker creates the checker; slack should be ≥ the delay
// bound Δ plus ε.
func NewPhysicalChecker(eng *sim.Engine, n int, pred predicate.Cond, slack sim.Duration) *PhysicalChecker {
	c := &PhysicalChecker{
		n: n, pred: pred, Slack: slack, eng: eng,
		vals: make([]map[string]float64, n),
	}
	for i := range c.vals {
		c.vals[i] = make(map[string]float64)
	}
	return c
}

// Register installs the checker on transport node idx.
func (c *PhysicalChecker) Register(net *network.Net, idx int) {
	net.Register(idx, func(m network.Message, now sim.Time) {
		if rep, ok := m.Payload.(ReportMsg); ok {
			c.OnReport(rep, now)
		}
	})
}

// OnReport buffers one report and schedules its replay after Slack.
func (c *PhysicalChecker) OnReport(m ReportMsg, now sim.Time) {
	if c.finished {
		return
	}
	heap.Push(&c.pending, m)
	c.obsQueue.Set(int64(c.pending.Len()))
	c.eng.After(c.Slack, func(t sim.Time) { c.drain(t) })
}

// drain replays all buffered reports whose timestamp is at or below the
// watermark now - Slack … any report still in flight must (absent extreme
// delays) carry a later timestamp.
func (c *PhysicalChecker) drain(now sim.Time) {
	if c.finished {
		return
	}
	watermark := now - c.Slack
	for c.pending.Len() > 0 && c.pending[0].TS <= watermark {
		c.apply(heap.Pop(&c.pending).(ReportMsg))
	}
	c.obsQueue.Set(int64(c.pending.Len()))
}

func (c *PhysicalChecker) apply(m ReportMsg) {
	if m.Proc < 0 || m.Proc >= c.n {
		return
	}
	if m.TS < c.lastTS {
		c.Reordered++
	} else {
		c.lastTS = m.TS
	}
	c.applied++
	c.obsApplied.Inc()
	c.vals[m.Proc][m.Var] = m.Value
	c.obsEvals.Inc()
	settled := c.pred.Holds(checkerState{c.vals})
	if settled != c.cur {
		if settled {
			c.obsDetections.Inc()
			c.occ = append(c.occ, Occurrence{Start: m.TS})
		} else if len(c.occ) > 0 {
			c.occ[len(c.occ)-1].End = m.TS
		}
		c.cur = settled
	}
}

// Finish replays everything still buffered and closes an open occurrence
// at the horizon.
func (c *PhysicalChecker) Finish(horizon sim.Time) {
	if c.finished {
		return
	}
	for c.pending.Len() > 0 {
		c.apply(heap.Pop(&c.pending).(ReportMsg))
	}
	c.finished = true
	c.occ = closeOpen(c.occ, c.cur, horizon)
}

// Occurrences returns the detected occurrences (call Finish first).
func (c *PhysicalChecker) Occurrences() []Occurrence { return c.occ }

// Applied returns the number of reports replayed.
func (c *PhysicalChecker) Applied() int64 { return c.applied }

// reportHeap is a min-heap of reports by timestamp (FIFO per equal TS not
// guaranteed; equal timestamps are genuinely unordered at resolution).
type reportHeap []ReportMsg

func (h reportHeap) Len() int           { return len(h) }
func (h reportHeap) Less(i, j int) bool { return h[i].TS < h[j].TS }
func (h reportHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *reportHeap) Push(x any)        { *h = append(*h, x.(ReportMsg)) }
func (h *reportHeap) Pop() any {
	old := *h
	n := len(old)
	m := old[n-1]
	*h = old[:n-1]
	return m
}
