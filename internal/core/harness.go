package core

import (
	"fmt"
	"strconv"

	"pervasive/internal/clock"
	"pervasive/internal/faults"
	"pervasive/internal/flight"
	"pervasive/internal/lattice"
	"pervasive/internal/network"
	"pervasive/internal/obs"
	"pervasive/internal/predicate"
	"pervasive/internal/runner"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
	"pervasive/internal/trace"
	"pervasive/internal/world"
)

// Binding maps a world-plane attribute onto a network-plane variable: the
// sensor at Proc monitors Object.Attr and exposes it as Var — the link
// between ⟨O,C⟩ and ⟨P,L⟩ of the system model.
type Binding struct {
	Proc   int
	Object int
	Attr   string
	Var    string
}

// HarnessConfig assembles one detection run.
type HarnessConfig struct {
	Seed uint64
	// N is the number of sensor processes; the checker P0 is an extra
	// transport node with index N.
	N     int
	Kind  ClockKind
	Delay sim.DelayModel
	// Topo defaults to a full mesh over N+1 nodes; Flood selects
	// hop-by-hop broadcast over it.
	Topo  network.Topology
	Flood bool
	// Pred is the global predicate over (proc, var) sensor variables.
	Pred predicate.Cond
	// Modality selects the checker: Instantaneously uses the strobe or
	// physical checker per Kind; Possibly/Definitely use the conjunctive
	// interval checker (Kind must be VectorStrobe).
	Modality predicate.Modality
	// LocalConj (conjunctive modes) is each sensor's local conjunct; nil
	// derives it from Pred via predicate.AsConjunctive.
	LocalConj predicate.Cond
	// Epsilon is the physical clock synchronization quality (each reading
	// within ±Epsilon/2 of true time); PhysicalReport mode only.
	Epsilon sim.Duration
	// Slack is the physical checker's reordering buffer; defaults to the
	// delay bound plus Epsilon.
	Slack   sim.Duration
	Horizon sim.Time
	// Tol is the scoring tolerance; defaults to the delay bound (or
	// 100 ms when unbounded) plus Epsilon.
	Tol       sim.Duration
	Trace     *trace.Trace
	LogStamps bool
	// Obs, if non-nil, receives runtime metrics from the engine, the
	// transport and the active checker; its time source is set to the
	// engine's virtual clock. Nil (the default) disables instrumentation
	// at zero cost.
	Obs *obs.Registry
	// Faults, if non-nil and non-empty, is the deterministic fault plan:
	// crashes/recoveries of sensor processes (not the checker P0),
	// partitions, and duplicate/reorder windows. See package faults.
	Faults *faults.Plan
	// Flight, if non-nil, is the causal flight recorder (built with
	// flight.New over N+1 processes — the DES is single-threaded). The
	// harness wires it into sensors, transport and checker, labels its
	// time base "virtual", and collects trigger-scoped dumps (each
	// embedding the Obs snapshot when Obs is set) into Harness.Dumps.
	// Nil (the default) keeps recording off the hot path entirely.
	Flight *flight.Recorder
}

// Harness owns one wired simulation.
type Harness struct {
	Cfg      HarnessConfig
	Eng      *sim.Engine
	World    *world.World
	Net      *network.Net
	Sensors  []*Sensor
	Bindings []Binding

	StrobeCk *StrobeChecker
	PhysCk   *PhysicalChecker
	ConjCk   *ConjunctiveChecker

	// Faults is the compiled fault injector; nil when no plan is installed.
	Faults *faults.Injector

	// Dumps collects the flight dumps triggered during the run (fault
	// transitions, checker detections, SignalDump), in trigger order.
	Dumps []*flight.Dump
}

// Results of a harness run.
type Results struct {
	Occurrences []Occurrence
	Markers     []sim.Time
	Truth       []world.Interval
	Confusion   stats.Confusion
	Net         network.Stats
	Horizon     sim.Time
}

// NewHarness wires engine, world plane, transport, sensor fleet and
// checker. Callers then create world objects, call Bind for each sensed
// attribute, install world generators, and Run.
func NewHarness(cfg HarnessConfig) *Harness {
	if cfg.N <= 0 {
		panic("core: harness needs at least one sensor")
	}
	if cfg.Delay == nil {
		cfg.Delay = sim.Synchronous{}
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 10 * sim.Second
	}
	if cfg.Topo == nil {
		cfg.Topo = network.FullMesh{Nodes: cfg.N + 1}
	}
	bound := cfg.Delay.Bound()
	if cfg.Tol <= 0 {
		if bound == sim.Never {
			cfg.Tol = 100 * sim.Millisecond
		} else {
			cfg.Tol = bound
		}
		cfg.Tol += cfg.Epsilon + sim.Millisecond
	}
	if cfg.Slack <= 0 {
		if bound == sim.Never {
			cfg.Slack = 100 * sim.Millisecond
		} else {
			cfg.Slack = bound
		}
		cfg.Slack += cfg.Epsilon
	}

	eng := sim.NewEngine(cfg.Seed)
	w := world.New(eng)
	nt := network.New(eng, cfg.Topo, cfg.Delay)
	nt.Flood = cfg.Flood
	if cfg.Obs != nil {
		cfg.Obs.SetNow("virtual", eng.Now)
		obs.CollectEngine(cfg.Obs, eng)
		nt.SetObs(cfg.Obs)
	}

	h := &Harness{Cfg: cfg, Eng: eng, World: w, Net: nt}

	if cfg.Flight != nil {
		cfg.Flight.SetTimeBase("virtual")
		cfg.Flight.SetTrigger(func(d *flight.Dump) {
			if cfg.Obs != nil {
				snap := cfg.Obs.Snapshot()
				d.Metrics = &snap
			}
			h.Dumps = append(h.Dumps, d)
		})
		nt.SetFlight(cfg.Flight)
	}

	scfg := SensorConfig{
		N: cfg.N, Kind: cfg.Kind, CheckerIdx: cfg.N,
		Trace: cfg.Trace, LogStamps: cfg.LogStamps,
		Flight: cfg.Flight,
	}
	if cfg.Kind == PhysicalReport {
		scfg.Phys = clock.NewEpsilonFleet(eng.RNG().Fork(), cfg.N, cfg.Epsilon)
	}

	switch cfg.Modality {
	case predicate.Instantaneously:
		if cfg.Pred == nil {
			panic("core: Instantaneously modality needs Pred")
		}
		switch cfg.Kind {
		case VectorStrobe, DiffVectorStrobe:
			h.StrobeCk = NewVectorChecker(cfg.N, cfg.Pred)
			h.StrobeCk.SetObs(cfg.Obs)
			h.StrobeCk.SetFlight(cfg.Flight, cfg.N)
			h.StrobeCk.Register(nt, cfg.N)
		case ScalarStrobe:
			h.StrobeCk = NewScalarChecker(cfg.N, cfg.Pred)
			h.StrobeCk.SetObs(cfg.Obs)
			h.StrobeCk.SetFlight(cfg.Flight, cfg.N)
			h.StrobeCk.Register(nt, cfg.N)
		case PhysicalReport:
			h.PhysCk = NewPhysicalChecker(eng, cfg.N, cfg.Pred, cfg.Slack)
			h.PhysCk.SetObs(cfg.Obs)
			h.PhysCk.Register(nt, cfg.N)
		}
	case predicate.Possibly, predicate.Definitely:
		if cfg.Kind != VectorStrobe {
			panic("core: conjunctive modalities require strobe vector clocks")
		}
		local := cfg.LocalConj
		if local == nil {
			cjs, ok := predicate.AsConjunctive(cfg.Pred)
			if !ok || len(cjs) == 0 {
				panic("core: predicate is not conjunctive and no LocalConj given")
			}
			local = cjs[0].Cond
		}
		scfg.LocalConj = local
		h.ConjCk = NewConjunctiveChecker(cfg.N, cfg.Modality)
		h.ConjCk.SetObs(cfg.Obs)
		h.ConjCk.Register(nt, cfg.N)
	}

	h.Sensors = NewSensors(eng, nt, scfg)
	h.InstallFaults(cfg.Faults)
	return h
}

// InstallFaults compiles and installs a fault plan: the transport gates
// sends/deliveries on it, and crash/recover transitions are scheduled as
// engine events driving Sensor.Crash/Rejoin. Call before Run (transition
// times must not be in the engine's past). A nil or empty plan is a no-op
// and leaves the fault-free fast path untouched. Crash/recover events
// must target sensor processes (0..N-1) — the checker P0 is the one
// process the model keeps up — though partitions may isolate it by
// listing index N. Panics on an out-of-range event process.
func (h *Harness) InstallFaults(plan *faults.Plan) {
	inj := faults.NewInjector(plan)
	if inj == nil {
		return
	}
	for _, ev := range plan.Events {
		if ev.Proc < 0 || ev.Proc >= h.Cfg.N {
			panic(fmt.Sprintf("core: fault plan event targets process %d; crash/recover is limited to sensors 0..%d",
				ev.Proc, h.Cfg.N-1))
		}
	}
	h.Faults = inj
	h.Net.SetFaults(inj)
	crashes := h.Cfg.Obs.Counter("faults.crashes")
	recoveries := h.Cfg.Obs.Counter("faults.recoveries")
	spans := make([]obs.Span, h.Cfg.N)
	for _, ev := range inj.Transitions() {
		ev := ev
		h.Eng.At(ev.At, func(now sim.Time) {
			s := h.Sensors[ev.Proc]
			fl := h.Cfg.Flight
			switch ev.Kind {
			case faults.Crash:
				s.Crash()
				crashes.Inc()
				spans[ev.Proc] = h.Cfg.Obs.StartSpanAt(
					"faults.down.p"+strconv.Itoa(ev.Proc), now)
				if fl != nil {
					fl.Record(flight.Rec{
						Kind: flight.Crash, Proc: int32(ev.Proc),
						Peer: flight.NoPeer, Epoch: int32(s.Epoch()), At: now,
					})
					fl.TriggerDump("fault:crash(p"+strconv.Itoa(ev.Proc)+")", now)
				}
			case faults.Recover:
				s.Rejoin()
				recoveries.Inc()
				spans[ev.Proc].EndAt(now)
				spans[ev.Proc] = obs.Span{}
				if fl != nil {
					fl.Record(flight.Rec{
						Kind: flight.Recover, Proc: int32(ev.Proc),
						Peer: flight.NoPeer, Epoch: int32(s.Epoch()), At: now,
					})
					fl.TriggerDump("fault:recover(p"+strconv.Itoa(ev.Proc)+")", now)
				}
			}
		})
	}
}

// SignalDump triggers an explicit flight dump of every process's ring,
// tagged "signal:<reason>" — the manual third trigger class next to
// fault transitions and checker detections.
func (h *Harness) SignalDump(reason string) {
	if h.Cfg.Flight == nil {
		return
	}
	h.Cfg.Flight.TriggerDump("signal:"+reason, h.Eng.Now())
}

// Bind connects object obj's attr to variable varName at sensor proc.
func (h *Harness) Bind(proc, obj int, attr, varName string) {
	h.Sensors[proc].Bind(h.World, obj, attr, varName)
	h.Bindings = append(h.Bindings, Binding{Proc: proc, Object: obj, Attr: attr, Var: varName})
}

// truthPred evaluates the configured predicate directly against
// ground-truth world attribute values via the bindings.
func (h *Harness) truthPred() world.StatePredicate {
	// index bindings for the adapter
	byVar := make(map[predicate.Key]Binding, len(h.Bindings))
	for _, b := range h.Bindings {
		byVar[predicate.Key{Proc: b.Proc, Name: b.Var}] = b
	}
	pred := h.Cfg.Pred
	n := h.Cfg.N
	return func(get func(obj int, attr string) float64) bool {
		return pred.Holds(worldState{n: n, byVar: byVar, get: get})
	}
}

// worldState adapts ground-truth world values to predicate.State through
// the harness bindings.
type worldState struct {
	n     int
	byVar map[predicate.Key]Binding
	get   func(obj int, attr string) float64
}

// Get implements predicate.State.
func (s worldState) Get(proc int, name string) float64 {
	b, ok := s.byVar[predicate.Key{Proc: proc, Name: name}]
	if !ok {
		return 0
	}
	return s.get(b.Object, b.Attr)
}

// NumProcs implements predicate.State.
func (s worldState) NumProcs() int { return s.n }

// RunMany builds and runs n independent harnesses across a bounded worker
// pool (see runner.Workers for the parallelism convention) and returns
// their Results indexed by replication. Each harness owns its engine, RNG
// fork and world, so replications are isolated by construction; results
// are collected by index, which keeps any aggregation over them — and
// therefore every rendered experiment table — byte-identical to a
// sequential run.
func RunMany(parallelism, n int, build func(i int) *Harness) []Results {
	return runner.Map(parallelism, n, func(i int) Results { return build(i).Run() })
}

// Run executes the simulation to the horizon, finishes the checker, and
// scores against ground truth.
func (h *Harness) Run() Results {
	horizon := h.Cfg.Horizon
	sp := h.Cfg.Obs.StartSpanAt("harness.run", h.Eng.Now())
	h.Eng.Run(horizon)
	// Let in-flight control traffic settle (bounded models only).
	for _, s := range h.Sensors {
		s.FlushConjunct(horizon)
	}
	h.Eng.RunAll()
	sp.EndAt(h.Eng.Now())

	res := Results{Net: h.Net.Stats, Horizon: horizon}
	switch {
	case h.StrobeCk != nil:
		h.StrobeCk.Finish(horizon)
		res.Occurrences = h.StrobeCk.Occurrences()
		res.Markers = h.StrobeCk.Markers()
	case h.PhysCk != nil:
		h.PhysCk.Finish(horizon)
		res.Occurrences = h.PhysCk.Occurrences()
	case h.ConjCk != nil:
		res.Occurrences = h.ConjCk.Occurrences()
	}
	res.Occurrences = clipToHorizon(res.Occurrences, horizon)
	if h.Cfg.Pred != nil {
		res.Truth = world.TrueIntervals(h.World.Log(), h.truthPred(), horizon)
		res.Confusion = Score(res.Occurrences, res.Truth, res.Markers, h.Cfg.Tol, horizon)
	}
	return res
}

// clipToHorizon drops occurrences that begin after the horizon (an
// artifact of draining in-flight traffic) and clamps trailing ends, so
// detections and ground truth cover the same span.
func clipToHorizon(occ []Occurrence, horizon sim.Time) []Occurrence {
	out := occ[:0]
	for _, o := range occ {
		if o.Start >= horizon {
			continue
		}
		if o.End > horizon || o.End == 0 {
			o.End = horizon
		}
		out = append(out, o)
	}
	return out
}

// LatticeExecution assembles the stamped-event execution for lattice
// analysis (requires LogStamps).
func (h *Harness) LatticeExecution() *lattice.Execution {
	ex := &lattice.Execution{
		Stamps: make([][]clock.Vector, len(h.Sensors)),
		Times:  make([][]sim.Time, len(h.Sensors)),
	}
	for i, s := range h.Sensors {
		ex.Stamps[i] = s.Stamps
		ex.Times[i] = s.Times
	}
	return ex
}

// ConjunctiveGlobal builds the global predicate ∧ᵢ local(i) over n
// sensors from a single-process local conjunct template (its process
// index is remapped to each sensor). Useful for conjunctive scenarios
// where the same rule runs at every sensor.
func ConjunctiveGlobal(local predicate.Cond, n int) predicate.Cond {
	keys := predicate.VarsOf(local)
	var out predicate.Cond
	for i := 0; i < n; i++ {
		i := i
		part := predicate.FuncCond{
			F: func(s predicate.State) bool {
				return local.Holds(remap{inner: s, to: i})
			},
			Keys: remapKeys(keys, i),
			Desc: "local@" + strconv.Itoa(i),
		}
		if out == nil {
			out = part
		} else {
			out = predicate.And{L: out, R: part}
		}
	}
	return out
}

type remap struct {
	inner predicate.State
	to    int
}

// Get implements predicate.State.
func (r remap) Get(_ int, name string) float64 { return r.inner.Get(r.to, name) }

// NumProcs implements predicate.State.
func (r remap) NumProcs() int { return r.inner.NumProcs() }

func remapKeys(keys []predicate.Key, to int) []predicate.Key {
	out := make([]predicate.Key, len(keys))
	for i, k := range keys {
		out[i] = predicate.Key{Proc: to, Name: k.Name}
	}
	return out
}
