package core

import (
	"testing"

	"pervasive/internal/clock"
	"pervasive/internal/network"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
)

func TestMultiCheckerFansOut(t *testing.T) {
	m := NewMultiChecker(2, map[string]predicate.Cond{
		"pw":  predicate.MustParse("pw@0 == 1"),
		"bio": predicate.MustParse("bio@1 == 1"),
	}, true)

	// Password pulse at sensor 0, then biometric pulse at sensor 1.
	m.OnStrobe(handStrobe(0, 1, "pw", 1, clock.Vector{1, 0}), 10)
	m.OnStrobe(handStrobe(0, 2, "pw", 0, clock.Vector{2, 0}), 20)
	m.OnStrobe(handStrobe(1, 1, "bio", 1, clock.Vector{2, 1}), 30)
	m.OnStrobe(handStrobe(1, 2, "bio", 0, clock.Vector{2, 2}), 40)
	m.Finish(100)

	pw := m.Occurrences("pw")
	bio := m.Occurrences("bio")
	if len(pw) != 1 || pw[0].Start != 10 || pw[0].End != 20 {
		t.Fatalf("pw %v", pw)
	}
	if len(bio) != 1 || bio[0].Start != 30 || bio[0].End != 40 {
		t.Fatalf("bio %v", bio)
	}
	spans := m.Spans("pw")
	if len(spans) != 1 || spans[0].Lo != 10 || spans[0].Hi != 20 {
		t.Fatalf("spans %v", spans)
	}
	if m.Occurrences("nope") != nil {
		t.Fatal("unknown name returned occurrences")
	}
	names := m.Names()
	if len(names) != 2 || names[0] != "bio" || names[1] != "pw" {
		t.Fatalf("names %v not deterministic", names)
	}
}

func TestMultiCheckerOnTransport(t *testing.T) {
	eng := sim.NewEngine(1)
	nt := network.New(eng, network.FullMesh{Nodes: 3}, sim.Synchronous{})
	m := NewMultiChecker(2, map[string]predicate.Cond{
		"a": predicate.MustParse("x@0 > 0"),
	}, true)
	m.Register(nt, 2)
	eng.At(5, func(sim.Time) {
		nt.Send(0, 2, StrobeMsg{Proc: 0, Seq: 1, Var: "x", Value: 1, Vec: clock.Vector{1, 0}})
	})
	eng.RunAll()
	m.Finish(100)
	if len(m.Occurrences("a")) != 1 {
		t.Fatal("transport-registered multichecker missed the strobe")
	}
}

func TestMultiCheckerCheckerAccessorAndFinish(t *testing.T) {
	m := NewMultiChecker(1, map[string]predicate.Cond{
		"a": predicate.MustParse("x@0 > 0"),
	}, false) // scalar variant
	if m.Checker("a") == nil || m.Checker("zzz") != nil {
		t.Fatal("Checker accessor broken")
	}
	m.OnStrobe(StrobeMsg{Proc: 0, Seq: 1, Var: "x", Value: 1, Scalar: 1}, 5)
	m.Finish(100)
	occ := m.Occurrences("a")
	if len(occ) != 1 || occ[0].End != 100 {
		t.Fatalf("finish did not close: %v", occ)
	}
	// Double finish is a no-op.
	m.Finish(200)
	if m.Occurrences("a")[0].End != 100 {
		t.Fatal("double finish moved the end")
	}
}
