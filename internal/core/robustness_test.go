package core

import (
	"testing"

	"pervasive/internal/network"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
	"pervasive/internal/world"
)

// Failure-injection and edge-case tests for the detection stack.

func TestDetectionUnderHeavyLoss(t *testing.T) {
	// 30% i.i.d. strobe loss. A lost rise hides a sensor's whole pulse
	// from the checker, and the 3-way conjunction needs all rises, so the
	// analytic recall floor is ≈ (1-p)³ ≈ 0.34 — detection degrades
	// gracefully to that, with no panics, deadlocks, or lingering
	// corruption (per-proc Seq skips the gap).
	lossy := pulseHarness(21, 3, VectorStrobe,
		sim.WithLoss{Inner: sim.NewDeltaBounded(20 * sim.Millisecond), P: 0.3},
		2*sim.Second, 3*sim.Second, 60*sim.Second).Run()
	clean := pulseHarness(21, 3, VectorStrobe,
		sim.NewDeltaBounded(20*sim.Millisecond),
		2*sim.Second, 3*sim.Second, 60*sim.Second).Run()
	if len(lossy.Truth) < 3 {
		t.Skip("thin workload")
	}
	if r := lossy.Confusion.Recall(); r < 0.3 {
		t.Fatalf("recall %.3f below the analytic floor (1-p)³", r)
	}
	if clean.Confusion.Recall() < lossy.Confusion.Recall() {
		t.Fatalf("loss-free run (%.3f) worse than lossy (%.3f)",
			clean.Confusion.Recall(), lossy.Confusion.Recall())
	}
}

func TestDetectionUnderHeavyTailDelays(t *testing.T) {
	// Pareto α=1.5 delays (infinite variance): stale strobes arrive out
	// of order constantly; per-proc Seq ordering must keep the view sane.
	h := pulseHarness(22, 3, VectorStrobe,
		sim.HeavyTail{Scale: 5 * sim.Millisecond, Alpha: 1.5},
		2*sim.Second, 3*sim.Second, 60*sim.Second)
	res := h.Run()
	if len(res.Truth) < 3 {
		t.Skip("thin workload")
	}
	if r := res.Confusion.Recall(); r < 0.5 {
		t.Fatalf("recall %.3f under heavy-tail delays", r)
	}
	if h.StrobeCk.Stale == 0 {
		t.Log("note: no stale strobes observed — tail not exercised (seed-dependent)")
	}
}

func TestPossiblyEndToEnd(t *testing.T) {
	// Possibly(φ) fires at least as often as Definitely(φ) on the same
	// workload (it is a weaker modality).
	run := func(m predicate.Modality) int {
		local := predicate.MustParse("p@0 == 1")
		n := 2
		h := NewHarness(HarnessConfig{
			Seed: 23, N: n, Kind: VectorStrobe,
			Delay:     sim.NewDeltaBounded(100 * sim.Millisecond),
			Pred:      ConjunctiveGlobal(local, n),
			LocalConj: local,
			Modality:  m,
			Horizon:   60 * sim.Second,
		})
		for i := 0; i < n; i++ {
			obj := h.World.AddObject("obj", nil)
			h.Bind(i, obj, "p", "p")
			world.Toggler{Obj: obj, Attr: "p", MeanHigh: 900 * sim.Millisecond,
				MeanLow: 1100 * sim.Millisecond}.Install(h.World, h.Cfg.Horizon)
		}
		return len(h.Run().Occurrences)
	}
	possibly := run(predicate.Possibly)
	definitely := run(predicate.Definitely)
	if possibly < definitely {
		t.Fatalf("Possibly (%d) fired less than Definitely (%d)", possibly, definitely)
	}
	if possibly == 0 {
		t.Fatal("Possibly never fired")
	}
}

func TestPhysicalCheckerUnderLoss(t *testing.T) {
	// Lost reports leave the checker's view stale for the lost variable;
	// accuracy drops but no structural failure.
	h := NewHarness(HarnessConfig{
		Seed: 24, N: 2, Kind: PhysicalReport,
		Delay:    sim.WithLoss{Inner: sim.NewDeltaBounded(5 * sim.Millisecond), P: 0.2},
		Pred:     predicate.MustParse("x@0 == 1 && x@1 == 1"),
		Modality: predicate.Instantaneously,
		Epsilon:  sim.Millisecond,
		Horizon:  60 * sim.Second,
	})
	for i := 0; i < 2; i++ {
		obj := h.World.AddObject("o", nil)
		h.Bind(i, obj, "p", "x")
		world.Toggler{Obj: obj, Attr: "p", MeanHigh: 2 * sim.Second,
			MeanLow: sim.Second}.Install(h.World, h.Cfg.Horizon)
	}
	res := h.Run()
	if len(res.Truth) > 3 && res.Confusion.Recall() < 0.5 {
		t.Fatalf("physical detector collapsed under 20%% loss: %+v", res.Confusion)
	}
}

func TestScalarCheckerSeqOrdering(t *testing.T) {
	// Scalar strobes reordered within a proc: Seq protects the view.
	c := NewScalarChecker(1, predicate.MustParse("x@0 > 0"))
	c.OnStrobe(StrobeMsg{Proc: 0, Seq: 3, Var: "x", Value: 3, Scalar: 3}, 30)
	c.OnStrobe(StrobeMsg{Proc: 0, Seq: 1, Var: "x", Value: 1, Scalar: 1}, 31)
	c.OnStrobe(StrobeMsg{Proc: 0, Seq: 2, Var: "x", Value: 2, Scalar: 2}, 32)
	if c.View(0, "x") != 3 {
		t.Fatalf("view %v after reordered strobes", c.View(0, "x"))
	}
	if c.Stale != 2 {
		t.Fatalf("stale count %d", c.Stale)
	}
}

func TestHarnessZeroSensorsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHarness(HarnessConfig{N: 0})
}

func TestSensorsNeedCheckerSlot(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for undersized transport")
		}
	}()
	eng := sim.NewEngine(1)
	nt := newNetForTest(eng, 2) // only 2 nodes for 2 sensors + checker
	NewSensors(eng, nt, SensorConfig{N: 2, Kind: VectorStrobe, CheckerIdx: 2})
}

// newNetForTest builds a minimal transport.
func newNetForTest(eng *sim.Engine, n int) *network.Net {
	return network.New(eng, network.FullMesh{Nodes: n}, sim.Synchronous{})
}
