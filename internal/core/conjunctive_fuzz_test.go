package core

import (
	"testing"

	"pervasive/internal/clock"
	"pervasive/internal/intervals"
	"pervasive/internal/predicate"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

// Soundness fuzz for the conjunctive checker: on random strobe-stamped
// executions, every matched interval set must genuinely satisfy the
// modality's pairwise relation. (Completeness on specific constructions is
// covered by the deterministic tests.)

// genIntervals produces per-process interval streams from a random strobe
// execution: each process alternates conjunct-true/false at its events.
func genIntervals(r *stats.RNG, n, events int) [][]IntervalMsg {
	clocks := make([]*clock.StrobeVector, n)
	for i := range clocks {
		clocks[i] = clock.NewStrobeVector(i, n)
	}
	open := make([]clock.Vector, n)
	openAt := make([]int64, n)
	idx := make([]int, n)
	out := make([][]IntervalMsg, n)
	var published []clock.Vector

	for step := 0; step < events; step++ {
		p := r.Intn(n)
		// Merge a random already-published strobe (delayed arrival).
		if len(published) > 0 && r.Bool(0.6) {
			clocks[p].OnStrobe(published[r.Intn(len(published))])
		}
		v := clocks[p].Strobe()
		published = append(published, v)
		if open[p] == nil {
			open[p] = v
			openAt[p] = int64(step)
		} else {
			out[p] = append(out[p], IntervalMsg{
				Proc: p, Index: idx[p],
				Open: open[p], Close: v,
				OpenAt: sim.Time(openAt[p]), CloseAt: sim.Time(step),
			})
			idx[p]++
			open[p] = nil
		}
	}
	return out
}

func TestConjunctiveSoundnessFuzz(t *testing.T) {
	r := stats.NewRNG(99)
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(2)
		streams := genIntervals(r, n, 60)
		for _, modality := range []predicate.Modality{predicate.Possibly, predicate.Definitely} {
			c := NewConjunctiveChecker(n, modality)
			c.KeepSets = true
			// Deliver interleaved but per-proc in order.
			cursors := make([]int, n)
			for {
				progressed := false
				for p := 0; p < n; p++ {
					if cursors[p] < len(streams[p]) && r.Bool(0.7) {
						c.OnInterval(streams[p][cursors[p]], 0)
						cursors[p]++
						progressed = true
					}
				}
				if !progressed {
					done := true
					for p := 0; p < n; p++ {
						if cursors[p] < len(streams[p]) {
							c.OnInterval(streams[p][cursors[p]], 0)
							cursors[p]++
							done = false
						}
					}
					if done {
						break
					}
				}
			}
			for _, set := range c.MatchedSets {
				if len(set) != n {
					t.Fatalf("trial %d %v: matched set size %d", trial, modality, len(set))
				}
				for i := 0; i < n; i++ {
					for j := i + 1; j < n; j++ {
						x, y := po(set[i]), po(set[j])
						switch modality {
						case predicate.Possibly:
							if !intervals.PossiblyOverlap(x, y) {
								t.Fatalf("trial %d: unsound Possibly match: %v vs %v",
									trial, set[i], set[j])
							}
						case predicate.Definitely:
							if !intervals.DefinitelyOverlap(x, y) {
								t.Fatalf("trial %d: unsound Definitely match: %v vs %v",
									trial, set[i], set[j])
							}
						}
					}
				}
			}
		}
	}
}
