// Package network implements the network plane ⟨P, L⟩ of the paper's
// system model (Section 2.1): the sensor/actuator processes P and the
// logical overlay L over which they exchange asynchronous messages.
//
// The overlay is a (possibly dynamically changing) graph; message
// transmission uses the delay models of internal/sim. Broadcast is either
// direct (one logical hop to every process, the abstraction used by the
// strobe protocols' System-wide_Broadcast) or flooding over the overlay
// (hop-by-hop with per-hop delays), and the transport counts messages and
// bytes for the overhead experiments.
package network

import (
	"fmt"

	"pervasive/internal/stats"
)

// Topology describes the overlay L. Implementations must be symmetric:
// Connected(i, j) == Connected(j, i).
type Topology interface {
	// N returns the number of processes.
	N() int
	// Connected reports whether a link i—j currently exists.
	Connected(i, j int) bool
	// Neighbors returns the processes adjacent to i.
	Neighbors(i int) []int
}

// FullMesh connects every pair of processes.
type FullMesh struct{ Nodes int }

// N implements Topology.
func (m FullMesh) N() int { return m.Nodes }

// Connected implements Topology.
func (m FullMesh) Connected(i, j int) bool { return i != j && inRange(m.Nodes, i, j) }

// Neighbors implements Topology.
func (m FullMesh) Neighbors(i int) []int {
	out := make([]int, 0, m.Nodes-1)
	for j := 0; j < m.Nodes; j++ {
		if j != i {
			out = append(out, j)
		}
	}
	return out
}

// Ring connects process i to (i±1) mod N.
type Ring struct{ Nodes int }

// N implements Topology.
func (r Ring) N() int { return r.Nodes }

// Connected implements Topology.
func (r Ring) Connected(i, j int) bool {
	if !inRange(r.Nodes, i, j) || i == j || r.Nodes < 2 {
		return false
	}
	d := i - j
	if d < 0 {
		d = -d
	}
	return d == 1 || d == r.Nodes-1
}

// Neighbors implements Topology.
func (r Ring) Neighbors(i int) []int {
	if r.Nodes < 2 {
		return nil
	}
	if r.Nodes == 2 {
		return []int{1 - i}
	}
	return []int{(i + r.Nodes - 1) % r.Nodes, (i + 1) % r.Nodes}
}

// Grid arranges processes row-major in Rows×Cols with 4-neighbour links.
type Grid struct{ Rows, Cols int }

// N implements Topology.
func (g Grid) N() int { return g.Rows * g.Cols }

// Connected implements Topology.
func (g Grid) Connected(i, j int) bool {
	if !inRange(g.N(), i, j) || i == j {
		return false
	}
	ri, ci := i/g.Cols, i%g.Cols
	rj, cj := j/g.Cols, j%g.Cols
	dr, dc := ri-rj, ci-cj
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr+dc == 1
}

// Neighbors implements Topology.
func (g Grid) Neighbors(i int) []int {
	var out []int
	r, c := i/g.Cols, i%g.Cols
	if r > 0 {
		out = append(out, i-g.Cols)
	}
	if r < g.Rows-1 {
		out = append(out, i+g.Cols)
	}
	if c > 0 {
		out = append(out, i-1)
	}
	if c < g.Cols-1 {
		out = append(out, i+1)
	}
	return out
}

// Mutable is an adjacency-set topology supporting link churn, modelling
// the paper's "dynamically changing graph" L.
type Mutable struct {
	n   int
	adj []map[int]bool
}

// NewMutable creates a mutable topology with n isolated processes.
func NewMutable(n int) *Mutable {
	m := &Mutable{n: n, adj: make([]map[int]bool, n)}
	for i := range m.adj {
		m.adj[i] = make(map[int]bool)
	}
	return m
}

// NewMutableFrom copies the links of t into a mutable topology.
func NewMutableFrom(t Topology) *Mutable {
	m := NewMutable(t.N())
	for i := 0; i < t.N(); i++ {
		for _, j := range t.Neighbors(i) {
			m.AddLink(i, j)
		}
	}
	return m
}

// N implements Topology.
func (m *Mutable) N() int { return m.n }

// AddLink inserts the undirected link i—j.
func (m *Mutable) AddLink(i, j int) {
	if i == j || !inRange(m.n, i, j) {
		return
	}
	m.adj[i][j] = true
	m.adj[j][i] = true
}

// RemoveLink deletes the undirected link i—j.
func (m *Mutable) RemoveLink(i, j int) {
	if !inRange(m.n, i, j) {
		return
	}
	delete(m.adj[i], j)
	delete(m.adj[j], i)
}

// Connected implements Topology.
func (m *Mutable) Connected(i, j int) bool {
	return inRange(m.n, i, j) && m.adj[i][j]
}

// Neighbors implements Topology.
func (m *Mutable) Neighbors(i int) []int {
	out := make([]int, 0, len(m.adj[i]))
	for j := 0; j < m.n; j++ { // deterministic order
		if m.adj[i][j] {
			out = append(out, j)
		}
	}
	return out
}

// RandomGeometric places n processes uniformly in the unit square and
// links pairs within the given radius — the standard wireless sensornet
// connectivity model. The result is returned as a Mutable so callers can
// apply churn.
func RandomGeometric(r *stats.RNG, n int, radius float64) *Mutable {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	m := NewMutable(n)
	rr := radius * radius
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			if dx*dx+dy*dy <= rr {
				m.AddLink(i, j)
			}
		}
	}
	return m
}

// IsConnectedGraph reports whether the overlay is a single connected
// component (needed for flooding to reach everyone).
func IsConnectedGraph(t Topology) bool {
	n := t.N()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, j := range t.Neighbors(i) {
			if !seen[j] {
				seen[j] = true
				count++
				stack = append(stack, j)
			}
		}
	}
	return count == n
}

// BFSTree returns, for each process, its parent in a breadth-first
// spanning tree rooted at root (parent[root] = root; unreachable = -1).
// TPSN-style sync protocols use this tree.
func BFSTree(t Topology, root int) []int {
	n := t.N()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	if root < 0 || root >= n {
		return parent
	}
	parent[root] = root
	queue := []int{root}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, j := range t.Neighbors(i) {
			if parent[j] == -1 {
				parent[j] = i
				queue = append(queue, j)
			}
		}
	}
	return parent
}

func inRange(n, i, j int) bool { return i >= 0 && i < n && j >= 0 && j < n }

// Describe renders a short human-readable topology summary.
func Describe(t Topology) string {
	links := 0
	for i := 0; i < t.N(); i++ {
		links += len(t.Neighbors(i))
	}
	return fmt.Sprintf("%T(n=%d, links=%d)", t, t.N(), links/2)
}
