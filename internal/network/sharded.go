package network

import (
	"fmt"

	"pervasive/internal/faults"
	"pervasive/internal/flight"
	"pervasive/internal/obs"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

// ShardMap is the contiguous spatial partition of process indices over
// shards: processes [i·S/P, (i+1)·S/P) land together, so a grid laid out
// row-major keeps radio neighborhoods mostly shard-local.
type ShardMap struct {
	Procs, Shards int
}

// Of returns the shard owning process p.
func (m ShardMap) Of(p int) int {
	if m.Shards <= 1 {
		return 0
	}
	return p * m.Shards / m.Procs
}

// ShardedNet is the message transport over a sharded engine. Each shard
// sees the transport through its ShardPart facade; same-shard deliveries
// schedule directly into the shard's engine, cross-shard deliveries stage
// through the Shards mailboxes. Both paths carry the same (time, priority)
// key — priority is (source, per-source send counter), unique and
// partition-independent — so the destination executes deliveries in an
// order that does not depend on the shard count. That, plus per-source RNG
// streams for delay sampling (never a shared transport RNG, whose draw
// order would depend on the partition), is the transport's half of the
// byte-determinism proof; the engine's half is the lookahead barrier.
//
// The sharded transport is direct-send only: flooding's shared dedup state
// is inherently cross-shard, and the scale scenarios it serves use
// neighborhood dissemination instead of overlay floods.
type ShardedNet struct {
	sh    *sim.Shards
	topo  Topology
	delay sim.DelayModel
	smap  ShardMap
	parts []*ShardPart

	handlers []Handler
	rngs     []*stats.RNG // per-source delay/jitter streams
	seqs     []uint32     // per-source link-transmission counters

	// HeaderBytes is the fixed per-message header size added to every
	// transmission's byte count (matches Net).
	HeaderBytes int

	// NeighborScope restricts Broadcast to the source's topology neighbors
	// plus AlwaysReach (typically the checker index) — the
	// neighborhood-scoped dissemination that makes p ≥ 10⁴ tractable.
	// Unset, Broadcast reaches every process, exactly like Net.
	NeighborScope bool
	AlwaysReach   []int

	fault *faults.Injector
}

// ShardPart is one shard's sending surface. It satisfies core.Transport:
// sensors hosted on shard k hold Part(k) and never see the other engines.
type ShardPart struct {
	owner *ShardedNet
	k     int
	eng   *sim.Engine

	// Stats is this shard's share of the transport counters: sends are
	// counted by the sending shard, deliveries and delivery-side drops by
	// the destination shard, so each block has a single writer. Sum with
	// TotalStats.
	Stats Stats
}

// NewSharded creates a transport over the sharded engine. The shard map
// must cover at least the topology plus any extra direct-send processes
// (the checker); seed roots the per-source RNG streams, independently of
// the engines' own streams.
func NewSharded(sh *sim.Shards, topo Topology, delay sim.DelayModel, smap ShardMap, seed uint64) *ShardedNet {
	if sh.N() > 1 && sim.MinDelayBound(delay) < sh.Lookahead() {
		panic(fmt.Sprintf("network: delay model %v can beat the shard lookahead %v", delay, sh.Lookahead()))
	}
	if smap.Procs < topo.N() {
		panic("network: shard map smaller than topology")
	}
	sn := &ShardedNet{
		sh: sh, topo: topo, delay: delay, smap: smap,
		parts:       make([]*ShardPart, sh.N()),
		handlers:    make([]Handler, smap.Procs),
		rngs:        make([]*stats.RNG, smap.Procs),
		seqs:        make([]uint32, smap.Procs),
		HeaderBytes: 8,
	}
	root := stats.NewRNG(seed)
	for i := range sn.rngs {
		sn.rngs[i] = root.Fork()
	}
	for k := range sn.parts {
		sn.parts[k] = &ShardPart{owner: sn, k: k, eng: sh.Engine(k)}
		sn.parts[k].Stats.ByKind = make(map[string]int64)
	}
	return sn
}

// N returns the number of processes.
func (sn *ShardedNet) N() int { return len(sn.handlers) }

// Part returns shard k's sending facade.
func (sn *ShardedNet) Part(k int) *ShardPart { return sn.parts[k] }

// PartOf returns the facade of the shard owning process p.
func (sn *ShardedNet) PartOf(p int) *ShardPart { return sn.parts[sn.smap.Of(p)] }

// Map returns the process→shard partition.
func (sn *ShardedNet) Map() ShardMap { return sn.smap }

// Register installs the delivery handler for process i.
func (sn *ShardedNet) Register(i int, h Handler) { sn.handlers[i] = h }

// SetFaults installs (or removes) the fault injector. The injector is
// immutable after construction and its counters are atomic, so one
// instance safely gates every shard.
func (sn *ShardedNet) SetFaults(in *faults.Injector) { sn.fault = in }

// TotalStats sums the per-shard counters; the totals are
// shard-count-invariant for a deterministic workload.
func (sn *ShardedNet) TotalStats() Stats {
	out := Stats{ByKind: make(map[string]int64)}
	for _, p := range sn.parts {
		out.Sent += p.Stats.Sent
		out.Delivered += p.Stats.Delivered
		out.Dropped += p.Stats.Dropped
		out.Bytes += p.Stats.Bytes
		for k, v := range p.Stats.ByKind { //lint:allow determtaint(order-insensitive: commutative += into a map keyed by the ranged key; consumers sort before printing)
			out.ByKind[k] += v
		}
	}
	return out
}

// SetObs registers a collector mirroring the summed transport counters
// (net.sent / net.delivered / net.dropped / net.bytes) into the registry
// at snapshot time. Per-link delay histograms are not sampled on the
// sharded path — the hot loop stays store-free.
func (sn *ShardedNet) SetObs(r *obs.Registry) {
	if r == nil {
		return
	}
	var (
		sent      = r.Counter("net.sent")
		delivered = r.Counter("net.delivered")
		dropped   = r.Counter("net.dropped")
		bytes     = r.Counter("net.bytes")
	)
	r.RegisterCollector(func(r *obs.Registry) {
		t := sn.TotalStats()
		sent.Store(t.Sent)
		delivered.Store(t.Delivered)
		dropped.Store(t.Dropped)
		bytes.Store(t.Bytes)
		if f := sn.fault; f != nil {
			r.Counter("faults.suppressed_sends").Store(f.Counts.SuppressedSends.Load())
			r.Counter("faults.crash_drops").Store(f.Counts.CrashDrops.Load())
			r.Counter("faults.partition_drops").Store(f.Counts.PartitionDrops.Load())
			r.Counter("faults.duplicates").Store(f.Counts.Duplicates.Load())
			r.Counter("faults.reorders").Store(f.Counts.Reorders.Load())
		}
	})
}

// priFor mints the (time-tie-break) priority key and message ID for one
// link-level transmission from src: unique, monotone per source, and
// independent of the partition.
func (sn *ShardedNet) priFor(src int) uint64 {
	pri := uint64(src+1)<<32 | uint64(sn.seqs[src])
	sn.seqs[src]++
	return pri
}

// N returns the number of processes (core.Transport surface).
func (p *ShardPart) N() int { return p.owner.N() }

// Send transmits a direct logical message (see Net.Send). Returns the
// message ID, or 0 when a fault plan has src crashed.
func (p *ShardPart) Send(src, dst int, pl Payload) uint64 {
	return p.SendStamped(src, dst, pl, flight.Stamp{})
}

// SendStamped is Send with the payload's logical identity attached.
func (p *ShardPart) SendStamped(src, dst int, pl Payload, st flight.Stamp) uint64 {
	sn := p.owner
	if f := sn.fault; f != nil && f.Down(src, p.eng.Now()) {
		f.Counts.SuppressedSends.Add(1)
		return 0
	}
	id := sn.priFor(src)
	p.transmit(Message{ID: id, Src: src, From: src, Dst: dst, SentAt: p.eng.Now(), Payload: pl, Stamp: st}, id)
	return id
}

// Broadcast delivers pl to every reachable process except src: all of them,
// or the topology neighborhood plus AlwaysReach under NeighborScope.
func (p *ShardPart) Broadcast(src int, pl Payload) uint64 {
	return p.BroadcastStamped(src, pl, flight.Stamp{})
}

// BroadcastStamped is Broadcast carrying the payload's logical identity.
// Each destination is an independent link-level transmission with its own
// priority key; the logical message ID is the first key minted.
func (p *ShardPart) BroadcastStamped(src int, pl Payload, st flight.Stamp) uint64 {
	sn := p.owner
	now := p.eng.Now()
	if f := sn.fault; f != nil && f.Down(src, now) {
		f.Counts.SuppressedSends.Add(1)
		return 0
	}
	var id uint64
	send := func(dst int) {
		pri := sn.priFor(src)
		if id == 0 {
			id = pri
		}
		p.transmit(Message{ID: id, Src: src, From: src, Dst: dst, SentAt: now, Payload: pl, Stamp: st}, pri)
	}
	if sn.NeighborScope && src < sn.topo.N() {
		for _, dst := range sn.topo.Neighbors(src) {
			if dst != src {
				send(dst)
			}
		}
		for _, dst := range sn.AlwaysReach {
			if dst != src {
				send(dst)
			}
		}
		return id
	}
	for dst := 0; dst < sn.N(); dst++ {
		if dst != src {
			send(dst)
		}
	}
	return id
}

// transmit samples the link delay from the source's own stream and routes
// the delivery: same shard directly into the engine, cross shard through
// the epoch mailbox — both under the same (time, pri) key.
func (p *ShardPart) transmit(m Message, pri uint64) {
	sn := p.owner
	p.Stats.Sent++
	p.Stats.Bytes += int64(m.Payload.WireSize() + sn.HeaderBytes)
	p.Stats.ByKind[m.Payload.Kind()]++
	now := p.eng.Now()
	f := sn.fault
	if f != nil && f.Cut(m.From, m.Dst, now) {
		p.Stats.Dropped++
		f.Counts.PartitionDrops.Add(1)
		return
	}
	r := sn.rngs[m.Src]
	d, dropped := sim.SampleDelay(sn.delay, r, now, m.From, m.Dst)
	if dropped {
		p.Stats.Dropped++
		return
	}
	if f != nil {
		if j := f.ReorderJitter(now); j > 0 {
			d += sim.Duration(r.Int63n(int64(j) + 1))
			f.Counts.Reorders.Add(1)
		}
	}
	p.route(m, now+d, pri)
	if f != nil {
		if pd := f.DupProb(now); pd > 0 && r.Bool(pd) {
			if d2, dropped2 := sim.SampleDelay(sn.delay, r, now, m.From, m.Dst); !dropped2 {
				f.Counts.Duplicates.Add(1)
				p.route(m, now+d2, sn.priFor(m.Src))
			}
		}
	}
}

// route schedules the delivery of m at time at under key pri.
func (p *ShardPart) route(m Message, at sim.Time, pri uint64) {
	sn := p.owner
	dk := sn.smap.Of(m.Dst)
	fn := func(now sim.Time) { sn.parts[dk].deliver(m, now) }
	if dk == p.k {
		p.eng.AtPri(at, pri, fn)
	} else {
		sn.sh.CrossFrom(p.k, dk, at, pri, fn)
	}
}

// deliver runs at the destination shard.
func (p *ShardPart) deliver(m Message, now sim.Time) {
	sn := p.owner
	if f := sn.fault; f != nil && f.Down(m.Dst, now) {
		p.Stats.Dropped++
		f.Counts.CrashDrops.Add(1)
		return
	}
	p.Stats.Delivered++
	if h := sn.handlers[m.Dst]; h != nil {
		h(m, now)
	}
}
