package network

// Raw is a generic payload with an explicit size and kind, used by tests,
// the clock-sync protocols, and microbenchmarks.
type Raw struct {
	K    string
	Size int
	Data any
}

// WireSize implements Payload.
func (r Raw) WireSize() int { return r.Size }

// Kind implements Payload.
func (r Raw) Kind() string {
	if r.K == "" {
		return "raw"
	}
	return r.K
}
