package network

import (
	"testing"

	"pervasive/internal/faults"
	"pervasive/internal/sim"
)

func TestCrashedProcessNeitherSendsNorReceives(t *testing.T) {
	eng, nt := newTestNet(FullMesh{Nodes: 3}, sim.Synchronous{})
	plan := faults.NewPlan().Crash(1, 10).Recover(1, 20)
	nt.SetFaults(faults.NewInjector(plan))
	counts := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		nt.Register(i, func(Message, sim.Time) { counts[i]++ })
	}
	eng.At(5, func(sim.Time) { nt.Broadcast(1, Raw{Size: 1}) })  // up: delivers to 0 and 2
	eng.At(12, func(sim.Time) { nt.Broadcast(1, Raw{Size: 1}) }) // down: suppressed
	eng.At(15, func(sim.Time) { nt.Send(0, 1, Raw{Size: 1}) })   // down dst: dropped
	eng.At(25, func(sim.Time) { nt.Send(0, 1, Raw{Size: 1}) })   // recovered: delivers
	eng.RunAll()
	if counts[0] != 1 || counts[2] != 1 {
		t.Fatalf("peers received %v", counts)
	}
	if counts[1] != 1 {
		t.Fatalf("crashed process received %d deliveries, want 1 post-recovery", counts[1])
	}
	f := nt.Faults()
	if f.Counts.SuppressedSends.Load() != 1 {
		t.Fatalf("suppressed sends %d", f.Counts.SuppressedSends.Load())
	}
	if f.Counts.CrashDrops.Load() != 1 {
		t.Fatalf("crash drops %d", f.Counts.CrashDrops.Load())
	}
	if id := nt.Broadcast(1, Raw{Size: 1}); id == 0 {
		t.Fatal("recovered process should send again")
	}
}

func TestPartitionCutsBothDirectAndFloodTraffic(t *testing.T) {
	plan := faults.NewPlan().Partition([][]int{{0, 1}, {2, 3}}, 0, 100)
	for _, flood := range []bool{false, true} {
		eng, nt := newTestNet(Ring{Nodes: 4}, sim.Synchronous{})
		nt.Flood = flood
		nt.SetFaults(faults.NewInjector(plan))
		counts := make([]int, 4)
		for i := 0; i < 4; i++ {
			i := i
			nt.Register(i, func(Message, sim.Time) { counts[i]++ })
		}
		eng.At(10, func(sim.Time) { nt.Broadcast(0, Raw{Size: 1}) })
		eng.RunAll()
		if counts[1] != 1 {
			t.Fatalf("flood=%v: same-group peer received %d", flood, counts[1])
		}
		if counts[2] != 0 || counts[3] != 0 {
			t.Fatalf("flood=%v: traffic crossed the partition: %v", flood, counts)
		}
		if nt.Faults().Counts.PartitionDrops.Load() == 0 {
			t.Fatalf("flood=%v: no partition drops counted", flood)
		}
		// After the window heals, traffic crosses again.
		eng.At(150, func(sim.Time) { nt.Broadcast(0, Raw{Size: 1}) })
		eng.RunAll()
		if counts[2] != 1 || counts[3] != 1 {
			t.Fatalf("flood=%v: post-heal delivery missing: %v", flood, counts)
		}
	}
}

func TestDuplicateWindowRedelivers(t *testing.T) {
	eng, nt := newTestNet(FullMesh{Nodes: 2}, sim.DeltaBounded{Min: 1, Max: 9})
	plan := faults.NewPlan().Duplicate(0, sim.Never, 1.0) // always duplicate
	nt.SetFaults(faults.NewInjector(plan))
	got := 0
	nt.Register(1, func(Message, sim.Time) { got++ })
	eng.At(0, func(sim.Time) { nt.Send(0, 1, Raw{Size: 1}) })
	eng.RunAll()
	if got != 2 {
		t.Fatalf("deliveries %d, want original + duplicate", got)
	}
	if nt.Faults().Counts.Duplicates.Load() != 1 {
		t.Fatalf("duplicates %d", nt.Faults().Counts.Duplicates.Load())
	}
	if nt.Stats.Sent != 1 {
		t.Fatalf("duplicates must not count as sends: %d", nt.Stats.Sent)
	}
}

func TestReorderWindowJittersDelays(t *testing.T) {
	eng, nt := newTestNet(FullMesh{Nodes: 2}, sim.Synchronous{})
	plan := faults.NewPlan().Reorder(0, sim.Never, 50)
	nt.SetFaults(faults.NewInjector(plan))
	var ats []sim.Time
	nt.Register(1, func(_ Message, now sim.Time) { ats = append(ats, now) })
	for i := 0; i < 20; i++ {
		at := sim.Time(i * 100)
		eng.At(at, func(sim.Time) { nt.Send(0, 1, Raw{Size: 1}) })
	}
	eng.RunAll()
	jittered := false
	for i, at := range ats {
		d := at - sim.Time(i*100)
		if d < 0 || d > 50 {
			t.Fatalf("delivery %d jitter %v outside [0,50]", i, d)
		}
		if d > 0 {
			jittered = true
		}
	}
	if !jittered {
		t.Fatal("no message got reorder jitter")
	}
	if nt.Faults().Counts.Reorders.Load() == 0 {
		t.Fatal("reorders not counted")
	}
}

// TestFloodDedupStaysBounded is the regression test for the dedup memory
// leak: before pruning, every flooded broadcast left one seen-map entry
// per process forever. With the in-flight horizon, entries vanish as soon
// as a broadcast's last copy lands.
func TestFloodDedupStaysBounded(t *testing.T) {
	eng, nt := newTestNet(Grid{Rows: 3, Cols: 3}, sim.DeltaBounded{Min: 1, Max: 5})
	nt.Flood = true
	for i := 0; i < 9; i++ {
		nt.Register(i, func(Message, sim.Time) {})
	}
	const rounds = 200
	maxLive := 0
	for r := 0; r < rounds; r++ {
		at := sim.Time(r * 100) // spaced beyond the max flood settle time
		src := r % 9
		eng.At(at, func(sim.Time) { nt.Broadcast(src, Raw{Size: 1}) })
	}
	// Interleave settling checks by running round by round.
	for r := 0; r < rounds; r++ {
		eng.Run(sim.Time((r + 1) * 100))
		if n := nt.dedupEntries(); n > maxLive {
			maxLive = n
		}
	}
	eng.RunAll()
	if n := nt.dedupEntries(); n != 0 {
		t.Fatalf("%d dedup entries survive after all floods settled", n)
	}
	// Bounded by in-flight broadcasts (≤1 here × 9 procs), not by rounds.
	if maxLive > 2*9 {
		t.Fatalf("live dedup entries peaked at %d; leak not bounded by in-flight traffic", maxLive)
	}
	if nt.Stats.Delivered != rounds*8 {
		t.Fatalf("pruning broke dedup: %d deliveries, want %d", nt.Stats.Delivered, rounds*8)
	}
}

// TestFloodMasksSingleLinkLoss pins down the redundancy property the
// delivery-time dedup buys (§4.2.2 graceful degradation): on a cycle, a
// dead link between 0 and 1 does not stop 1 from hearing 0's flooded
// strobes via the other arc, whereas a direct broadcast on the same lossy
// link loses them.
func TestFloodMasksSingleLinkLoss(t *testing.T) {
	lossy := sim.LinkLoss{Inner: sim.DeltaBounded{Min: 1, Max: 3}, A: 0, B: 1, P: 1}

	eng, nt := newTestNet(Ring{Nodes: 4}, lossy)
	nt.Flood = true
	counts := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		nt.Register(i, func(Message, sim.Time) { counts[i]++ })
	}
	const casts = 10
	for r := 0; r < casts; r++ {
		eng.At(sim.Time(r*100), func(sim.Time) { nt.Broadcast(0, Raw{Size: 1}) })
	}
	eng.RunAll()
	if counts[1] != casts || counts[2] != casts || counts[3] != casts {
		t.Fatalf("flood failed to mask the dead link: %v", counts)
	}

	// Same link, direct broadcast: node 1 hears nothing.
	engD, ntD := newTestNet(FullMesh{Nodes: 4}, lossy)
	countsD := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		ntD.Register(i, func(Message, sim.Time) { countsD[i]++ })
	}
	for r := 0; r < casts; r++ {
		engD.At(sim.Time(r*100), func(sim.Time) { ntD.Broadcast(0, Raw{Size: 1}) })
	}
	engD.RunAll()
	if countsD[1] != 0 {
		t.Fatalf("direct broadcast crossed a dead link: %v", countsD)
	}
	if countsD[2] != casts || countsD[3] != casts {
		t.Fatalf("unaffected links lost traffic: %v", countsD)
	}
}

func TestCrashedReceiverDoesNotRelayFlood(t *testing.T) {
	// Line 0-1-2: with 1 down, 2 is unreachable by flooding from 0.
	topo := NewMutable(3)
	topo.AddLink(0, 1)
	topo.AddLink(1, 2)
	eng, nt := newTestNet(topo, sim.Synchronous{})
	nt.Flood = true
	nt.SetFaults(faults.NewInjector(faults.NewPlan().Crash(1, 0)))
	counts := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		nt.Register(i, func(Message, sim.Time) { counts[i]++ })
	}
	eng.At(10, func(sim.Time) { nt.Broadcast(0, Raw{Size: 1}) })
	eng.RunAll()
	if counts[1] != 0 || counts[2] != 0 {
		t.Fatalf("crashed relay forwarded traffic: %v", counts)
	}
}
