package network

import (
	"testing"

	"pervasive/internal/sim"
)

func newTestNet(topo Topology, delay sim.DelayModel) (*sim.Engine, *Net) {
	eng := sim.NewEngine(7)
	return eng, New(eng, topo, delay)
}

func TestDirectSendDelivers(t *testing.T) {
	eng, nt := newTestNet(FullMesh{Nodes: 3}, sim.DeltaBounded{Min: 5, Max: 5})
	var got []Message
	var at sim.Time
	nt.Register(2, func(m Message, now sim.Time) { got = append(got, m); at = now })
	eng.At(10, func(sim.Time) { nt.Send(0, 2, Raw{K: "test", Size: 4}) })
	eng.RunAll()
	if len(got) != 1 {
		t.Fatalf("delivered %d messages", len(got))
	}
	m := got[0]
	if m.Src != 0 || m.Dst != 2 || m.SentAt != 10 {
		t.Fatalf("message %+v", m)
	}
	if at != 15 {
		t.Fatalf("delivery time %v want 15", at)
	}
	if nt.Stats.Sent != 1 || nt.Stats.Delivered != 1 || nt.Stats.Dropped != 0 {
		t.Fatalf("stats %+v", nt.Stats)
	}
	if nt.Stats.Bytes != int64(4+nt.HeaderBytes) {
		t.Fatalf("bytes %d", nt.Stats.Bytes)
	}
	if nt.Stats.ByKind["test"] != 1 {
		t.Fatal("per-kind count missing")
	}
}

func TestDirectBroadcast(t *testing.T) {
	eng, nt := newTestNet(Ring{Nodes: 5}, sim.Synchronous{})
	counts := make([]int, 5)
	for i := 0; i < 5; i++ {
		i := i
		nt.Register(i, func(Message, sim.Time) { counts[i]++ })
	}
	eng.At(0, func(sim.Time) { nt.Broadcast(2, Raw{Size: 1}) })
	eng.RunAll()
	for i, c := range counts {
		want := 1
		if i == 2 {
			want = 0
		}
		if c != want {
			t.Fatalf("process %d received %d", i, c)
		}
	}
	if nt.Stats.Sent != 4 {
		t.Fatalf("direct broadcast sent %d link messages", nt.Stats.Sent)
	}
}

func TestFloodBroadcastReachesAllOnSparseGraph(t *testing.T) {
	eng, nt := newTestNet(Ring{Nodes: 8}, sim.DeltaBounded{Min: 1, Max: 3})
	nt.Flood = true
	counts := make([]int, 8)
	for i := range counts {
		i := i
		nt.Register(i, func(Message, sim.Time) { counts[i]++ })
	}
	eng.At(0, func(sim.Time) { nt.Broadcast(0, Raw{Size: 2}) })
	eng.RunAll()
	for i, c := range counts {
		want := 1
		if i == 0 {
			want = 0
		}
		if c != want {
			t.Fatalf("flood: process %d received %d times (dup suppression?)", i, c)
		}
	}
}

func TestFloodHopsIncrease(t *testing.T) {
	eng, nt := newTestNet(Ring{Nodes: 6}, sim.Synchronous{})
	nt.Flood = true
	hops := make(map[int]int)
	for i := 0; i < 6; i++ {
		i := i
		nt.Register(i, func(m Message, _ sim.Time) { hops[i] = m.Hops })
	}
	eng.At(0, func(sim.Time) { nt.Broadcast(0, Raw{}) })
	eng.RunAll()
	if hops[1] != 1 || hops[5] != 1 {
		t.Fatalf("direct ring neighbours should be 1 hop: %v", hops)
	}
	if hops[3] != 3 {
		t.Fatalf("opposite node should be 3 hops: %v", hops)
	}
}

func TestFloodDoesNotCrossPartitions(t *testing.T) {
	m := NewMutable(4)
	m.AddLink(0, 1) // 2,3 isolated
	eng, nt := newTestNet(m, sim.Synchronous{})
	nt.Flood = true
	reached := make([]bool, 4)
	for i := range reached {
		i := i
		nt.Register(i, func(Message, sim.Time) { reached[i] = true })
	}
	eng.At(0, func(sim.Time) { nt.Broadcast(0, Raw{}) })
	eng.RunAll()
	if !reached[1] || reached[2] || reached[3] {
		t.Fatalf("partition breach: %v", reached)
	}
}

func TestLossCounted(t *testing.T) {
	eng, nt := newTestNet(FullMesh{Nodes: 2}, sim.WithLoss{Inner: sim.Synchronous{}, P: 1})
	delivered := 0
	nt.Register(1, func(Message, sim.Time) { delivered++ })
	eng.At(0, func(sim.Time) { nt.Send(0, 1, Raw{}) })
	eng.RunAll()
	if delivered != 0 || nt.Stats.Dropped != 1 {
		t.Fatalf("delivered=%d dropped=%d", delivered, nt.Stats.Dropped)
	}
}

func TestUnregisteredHandlerIsSafe(t *testing.T) {
	eng, nt := newTestNet(FullMesh{Nodes: 2}, sim.Synchronous{})
	eng.At(0, func(sim.Time) { nt.Send(0, 1, Raw{}) })
	eng.RunAll() // must not panic
	if nt.Stats.Delivered != 1 {
		t.Fatal("delivery not counted")
	}
}

func TestMessageIDsUniquePerLogicalSend(t *testing.T) {
	eng, nt := newTestNet(FullMesh{Nodes: 3}, sim.Synchronous{})
	ids := make(map[uint64][]int)
	for i := 0; i < 3; i++ {
		i := i
		nt.Register(i, func(m Message, _ sim.Time) { ids[m.ID] = append(ids[m.ID], i) })
	}
	eng.At(0, func(sim.Time) {
		nt.Broadcast(0, Raw{})
		nt.Send(1, 2, Raw{})
	})
	eng.RunAll()
	if len(ids) != 2 {
		t.Fatalf("expected 2 distinct IDs, got %v", ids)
	}
}

func TestSetDelayMidRun(t *testing.T) {
	eng, nt := newTestNet(FullMesh{Nodes: 2}, sim.Synchronous{})
	var times []sim.Time
	nt.Register(1, func(_ Message, now sim.Time) { times = append(times, now) })
	eng.At(0, func(sim.Time) { nt.Send(0, 1, Raw{}) })
	eng.At(10, func(sim.Time) {
		nt.SetDelay(sim.DeltaBounded{Min: 100, Max: 100})
		nt.Send(0, 1, Raw{})
	})
	eng.RunAll()
	if len(times) != 2 || times[0] != 0 || times[1] != 110 {
		t.Fatalf("times %v", times)
	}
}

func BenchmarkDirectBroadcast32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(uint64(i))
		nt := New(eng, FullMesh{Nodes: 32}, sim.DeltaBounded{Min: 1, Max: 10})
		for p := 0; p < 32; p++ {
			nt.Register(p, func(Message, sim.Time) {})
		}
		for k := 0; k < 100; k++ {
			k := k
			eng.At(sim.Time(k), func(sim.Time) { nt.Broadcast(k%32, Raw{Size: 8}) })
		}
		eng.RunAll()
	}
}
