package network

import (
	"testing"
	"testing/quick"

	"pervasive/internal/stats"
)

func checkSymmetric(t *testing.T, topo Topology) {
	t.Helper()
	n := topo.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if topo.Connected(i, j) != topo.Connected(j, i) {
				t.Fatalf("%s asymmetric at (%d,%d)", Describe(topo), i, j)
			}
			if i == j && topo.Connected(i, j) {
				t.Fatalf("%s has self-loop at %d", Describe(topo), i)
			}
		}
	}
}

func checkNeighborsMatchConnected(t *testing.T, topo Topology) {
	t.Helper()
	n := topo.N()
	for i := 0; i < n; i++ {
		nbrs := make(map[int]bool)
		for _, j := range topo.Neighbors(i) {
			nbrs[j] = true
		}
		for j := 0; j < n; j++ {
			if topo.Connected(i, j) != nbrs[j] {
				t.Fatalf("%s: Neighbors/Connected disagree at (%d,%d)",
					Describe(topo), i, j)
			}
		}
	}
}

func TestFullMesh(t *testing.T) {
	m := FullMesh{Nodes: 6}
	checkSymmetric(t, m)
	checkNeighborsMatchConnected(t, m)
	if len(m.Neighbors(0)) != 5 {
		t.Fatal("full mesh degree wrong")
	}
	if !IsConnectedGraph(m) {
		t.Fatal("full mesh not connected")
	}
}

func TestRing(t *testing.T) {
	r := Ring{Nodes: 5}
	checkSymmetric(t, r)
	checkNeighborsMatchConnected(t, r)
	for i := 0; i < 5; i++ {
		if len(r.Neighbors(i)) != 2 {
			t.Fatalf("ring degree at %d: %v", i, r.Neighbors(i))
		}
	}
	if !IsConnectedGraph(r) {
		t.Fatal("ring not connected")
	}
	two := Ring{Nodes: 2}
	checkSymmetric(t, two)
	checkNeighborsMatchConnected(t, two)
	if !two.Connected(0, 1) {
		t.Fatal("2-ring should connect its nodes")
	}
}

func TestGrid(t *testing.T) {
	g := Grid{Rows: 3, Cols: 4}
	checkSymmetric(t, g)
	checkNeighborsMatchConnected(t, g)
	if g.N() != 12 {
		t.Fatal("grid size")
	}
	// Corner has 2 neighbours, interior 4.
	if len(g.Neighbors(0)) != 2 {
		t.Fatalf("corner neighbours %v", g.Neighbors(0))
	}
	if len(g.Neighbors(5)) != 4 {
		t.Fatalf("interior neighbours %v", g.Neighbors(5))
	}
	if !IsConnectedGraph(g) {
		t.Fatal("grid not connected")
	}
}

func TestMutable(t *testing.T) {
	m := NewMutable(4)
	if IsConnectedGraph(m) {
		t.Fatal("isolated nodes reported connected")
	}
	m.AddLink(0, 1)
	m.AddLink(1, 2)
	m.AddLink(2, 3)
	checkSymmetric(t, m)
	checkNeighborsMatchConnected(t, m)
	if !IsConnectedGraph(m) {
		t.Fatal("path graph should be connected")
	}
	m.RemoveLink(1, 2)
	if IsConnectedGraph(m) {
		t.Fatal("cut graph still connected")
	}
	m.AddLink(2, 2) // self-loop ignored
	if m.Connected(2, 2) {
		t.Fatal("self-loop accepted")
	}
	m.AddLink(-1, 9) // out of range ignored
}

func TestNewMutableFrom(t *testing.T) {
	src := Ring{Nodes: 6}
	m := NewMutableFrom(src)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if m.Connected(i, j) != src.Connected(i, j) {
				t.Fatalf("copy differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestRandomGeometric(t *testing.T) {
	r := stats.NewRNG(1)
	// A generous radius almost surely connects 30 nodes in a unit square.
	m := RandomGeometric(r, 30, 0.6)
	checkSymmetric(t, m)
	checkNeighborsMatchConnected(t, m)
	if !IsConnectedGraph(m) {
		t.Fatal("generous-radius RGG should be connected")
	}
	// Radius 0 yields no links.
	m0 := RandomGeometric(r, 10, 0)
	for i := 0; i < 10; i++ {
		if len(m0.Neighbors(i)) != 0 {
			t.Fatal("zero-radius RGG has links")
		}
	}
}

func TestBFSTree(t *testing.T) {
	g := Grid{Rows: 2, Cols: 3}
	parent := BFSTree(g, 0)
	if parent[0] != 0 {
		t.Fatal("root parent should be itself")
	}
	for i := 1; i < g.N(); i++ {
		if parent[i] == -1 {
			t.Fatalf("node %d unreachable in connected grid", i)
		}
		if !g.Connected(i, parent[i]) {
			t.Fatalf("parent edge %d-%d not in graph", i, parent[i])
		}
	}
	// Unreachable nodes stay -1.
	m := NewMutable(3)
	m.AddLink(0, 1)
	p := BFSTree(m, 0)
	if p[2] != -1 {
		t.Fatal("isolated node got a parent")
	}
}

func TestBFSTreeBadRoot(t *testing.T) {
	p := BFSTree(FullMesh{Nodes: 3}, 7)
	for _, v := range p {
		if v != -1 {
			t.Fatal("bad root should leave all parents -1")
		}
	}
}

// Property: in any RGG, node degrees are symmetric (u in N(v) ⟺ v in N(u)).
func TestRGGSymmetryProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, radRaw uint8) bool {
		n := int(nRaw%20) + 2
		radius := float64(radRaw) / 255.0
		m := RandomGeometric(stats.NewRNG(seed), n, radius)
		for i := 0; i < n; i++ {
			for _, j := range m.Neighbors(i) {
				if !m.Connected(j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
