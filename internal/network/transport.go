package network

import (
	"pervasive/internal/faults"
	"pervasive/internal/flight"
	"pervasive/internal/obs"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

// Payload is the content of a network-plane message. WireSize is the
// payload's on-air size in bytes, used by the overhead experiments (E7);
// Kind is a short tag for traces and per-kind statistics.
type Payload interface {
	WireSize() int
	Kind() string
}

// Message is one network-plane message in flight or delivered.
type Message struct {
	ID      uint64 // unique per logical send/broadcast (shared by flood copies)
	Src     int    // originating process
	From    int    // previous hop (== Src for direct delivery)
	Dst     int    // destination process
	SentAt  sim.Time
	Hops    int
	Payload Payload

	// Stamp is the payload's logical identity (epoch, seq, sender clock
	// component), set once at origination by SendStamped/BroadcastStamped
	// and copied with the message ever after. Flight Recv/Drop records
	// read these plain fields — a flood stamps once per logical message,
	// not once per hop, and the delivery path never type-asserts the
	// payload. Zero for unstamped traffic.
	Stamp flight.Stamp
}

// Handler receives delivered messages at a process.
type Handler func(m Message, now sim.Time)

// DeliveryPri is the event priority of message deliveries on the
// single-heap engine. Local events (world mutations, sensor timers) are
// scheduled at priority 0 and therefore sort ahead of same-instant
// deliveries — the same convention the sharded kernel's mailbox merge
// uses, and the tie-break that makes a recorded workload replay through
// any engine reproduce the original interleaving.
const DeliveryPri = 1

// Stats accumulates transport-level counters.
type Stats struct {
	Sent      int64 // link-level transmissions attempted
	Delivered int64
	Dropped   int64
	Bytes     int64 // payload bytes transmitted (per link-level send)
	ByKind    map[string]int64
}

// Net is the message transport of the network plane. It is not safe for
// concurrent use; it belongs to the single-threaded DES.
type Net struct {
	eng   *sim.Engine
	topo  Topology
	delay sim.DelayModel
	rng   *stats.RNG

	handlers []Handler
	nextID   uint64

	// Flood selects hop-by-hop flooding over the overlay for Broadcast;
	// when false, Broadcast sends one direct logical message per peer.
	Flood bool
	// HeaderBytes is the fixed per-message header size added to every
	// link-level transmission's byte count.
	HeaderBytes int

	seen []map[uint64]bool // per-process flood duplicate suppression
	// inflight refcounts the scheduled (not yet fired) deliveries of each
	// flood message ID. When a count reaches zero no further copy of that
	// ID can ever be created (relays only originate from deliveries of
	// the same ID), so its seen entries are pruned — the horizon that
	// keeps the dedup state bounded by the concurrently in-flight
	// broadcasts instead of growing with the run's total broadcast count.
	inflight map[uint64]int

	// fault, when non-nil, gates this transport on a fault plan: crashed
	// processes neither send, relay, nor take deliveries; partitioned
	// pairs drop; dup/reorder windows shape delays. Nil costs one branch.
	fault *faults.Injector

	Stats Stats

	// obsDelay samples per-link delays when SetObs attached a registry.
	// Like the Stats block it is plain, unsynchronized state: the
	// transport belongs to the single-threaded DES, so counters are
	// published by a snapshot-time collector rather than paid for with
	// atomics on every message.
	obsDelay *obs.LocalHist

	// flightRec, when non-nil, records every delivery (Recv) and drop
	// (Drop) at the destination's ring. Nil costs one branch per event.
	flightRec *flight.Recorder
}

// SetObs attaches runtime metrics: per-link sends, deliveries, drops
// and bytes as counters, and the sampled link delay (µs) as a
// histogram. The hot path stays atomic-free — a registered collector
// mirrors the Stats block and the local delay histogram into the
// registry at snapshot time. When a fault injector is installed its
// counts are mirrored too (faults.* counters). SetObs(nil) stops delay
// sampling; values already mirrored into a previous registry remain
// there.
func (nt *Net) SetObs(r *obs.Registry) {
	if r == nil {
		nt.obsDelay = nil
		return
	}
	nt.obsDelay = obs.NewLocalHist(obs.DurationBuckets)
	var (
		sent      = r.Counter("net.sent")
		delivered = r.Counter("net.delivered")
		dropped   = r.Counter("net.dropped")
		bytes     = r.Counter("net.bytes")
		delay     = r.Histogram("net.delay_us", obs.DurationBuckets)
		local     = nt.obsDelay
	)
	r.RegisterCollector(func(r *obs.Registry) {
		sent.Store(nt.Stats.Sent)
		delivered.Store(nt.Stats.Delivered)
		dropped.Store(nt.Stats.Dropped)
		bytes.Store(nt.Stats.Bytes)
		delay.CopyFrom(local)
		if f := nt.fault; f != nil {
			r.Counter("faults.suppressed_sends").Store(f.Counts.SuppressedSends.Load())
			r.Counter("faults.crash_drops").Store(f.Counts.CrashDrops.Load())
			r.Counter("faults.partition_drops").Store(f.Counts.PartitionDrops.Load())
			r.Counter("faults.duplicates").Store(f.Counts.Duplicates.Load())
			r.Counter("faults.reorders").Store(f.Counts.Reorders.Load())
		}
	})
}

// SetFlight attaches (or, with nil, detaches) a flight recorder: each
// delivery records a Recv and each drop a Drop at the destination's
// ring, carrying the logical identity stamped into the Message at
// origination (see SendStamped). The sender-side half of a message edge
// is the sensor's own Sense record — the transport records only the
// receiving end, keeping the per-message cost to one branch + one ring
// store within the kernel bench's <5% overhead budget.
func (nt *Net) SetFlight(r *flight.Recorder) { nt.flightRec = r }

// Flight returns the attached flight recorder (nil when none).
func (nt *Net) Flight() *flight.Recorder { return nt.flightRec }

// recordFlight stamps one Recv/Drop record for m at its destination.
// m is passed by pointer: this runs once per delivery, and copying the
// Message on top of the 64-byte Rec ring store doubles the recorder's
// kernel overhead. The logical identity comes from m.Stamp — plain
// field copies, no payload introspection.
func (nt *Net) recordFlight(kind flight.Kind, m *Message, now sim.Time) {
	rec := flight.Rec{
		Kind: kind, Proc: int32(m.Dst), Peer: int32(m.Src), At: now,
		Epoch: m.Stamp.Epoch, Seq: m.Stamp.Seq, PeerClock: m.Stamp.Clock,
	}
	if nt.flightRec.Concurrent() {
		nt.flightRec.Record(rec)
		return
	}
	nt.flightRec.RecordUnlocked(rec)
}

// SetFaults installs (or, with nil, removes) the fault injector gating
// this transport. See package faults for the semantics.
func (nt *Net) SetFaults(in *faults.Injector) { nt.fault = in }

// Faults returns the installed fault injector (nil when none).
func (nt *Net) Faults() *faults.Injector { return nt.fault }

// New creates a transport over the topology with the given delay model.
func New(eng *sim.Engine, topo Topology, delay sim.DelayModel) *Net {
	n := topo.N()
	nt := &Net{
		eng: eng, topo: topo, delay: delay,
		rng:         eng.RNG().Fork(),
		handlers:    make([]Handler, n),
		seen:        make([]map[uint64]bool, n),
		inflight:    make(map[uint64]int),
		HeaderBytes: 8,
	}
	nt.Stats.ByKind = make(map[string]int64)
	for i := range nt.seen {
		nt.seen[i] = make(map[uint64]bool)
	}
	return nt
}

// N returns the number of processes.
func (nt *Net) N() int { return len(nt.handlers) }

// Register installs the delivery handler for process i (replacing any
// previous handler).
func (nt *Net) Register(i int, h Handler) { nt.handlers[i] = h }

// Delay returns the transport's delay model.
func (nt *Net) Delay() sim.DelayModel { return nt.delay }

// SetDelay replaces the delay model (useful for mid-run degradation
// experiments).
func (nt *Net) SetDelay(d sim.DelayModel) { nt.delay = d }

// Send transmits p from src to dst as one logical (direct) message,
// regardless of overlay links; use for checker traffic where L is assumed
// routable. It returns the message ID, or 0 when a fault plan has src
// crashed (a crashed process sends nothing). The message carries no
// flight stamp — payloads with a logical identity go through SendStamped.
func (nt *Net) Send(src, dst int, p Payload) uint64 {
	return nt.SendStamped(src, dst, p, flight.Stamp{})
}

// SendStamped is Send with the payload's logical identity attached: st
// rides in the Message and surfaces as the Epoch/Seq/PeerClock columns
// of the flight Recv/Drop records at the destination. Callers holding a
// concrete message type pass its FlightStamp values directly; the
// transport itself never type-asserts payloads, so the stamp costs three
// field copies at origination and nothing per delivery.
func (nt *Net) SendStamped(src, dst int, p Payload, st flight.Stamp) uint64 {
	if f := nt.fault; f != nil && f.Down(src, nt.eng.Now()) {
		f.Counts.SuppressedSends.Add(1)
		return 0
	}
	id := nt.newID()
	nt.transmit(Message{ID: id, Src: src, From: src, Dst: dst, SentAt: nt.eng.Now(), Payload: p, Stamp: st})
	return id
}

// Broadcast implements the strobe protocols' System-wide_Broadcast: p is
// delivered to every process except src. With Flood unset each peer gets
// an independent direct transmission; with Flood set the message floods
// hop-by-hop over the overlay with duplicate suppression. It returns the
// message ID, or 0 when a fault plan has src crashed. Like Send it
// attaches no flight stamp; strobe traffic uses BroadcastStamped.
func (nt *Net) Broadcast(src int, p Payload) uint64 {
	return nt.BroadcastStamped(src, p, flight.Stamp{})
}

// BroadcastStamped is Broadcast carrying the payload's logical identity
// (see SendStamped). A flood stamps once per logical message — every
// hop's copy inherits the Stamp fields — instead of re-deriving it from
// the payload at each of the O(edges) relay deliveries.
func (nt *Net) BroadcastStamped(src int, p Payload, st flight.Stamp) uint64 {
	now := nt.eng.Now()
	if f := nt.fault; f != nil && f.Down(src, now) {
		f.Counts.SuppressedSends.Add(1)
		return 0
	}
	id := nt.newID()
	if nt.Flood {
		nt.seen[src][id] = true
		nt.inflight[id]++ // guard the entry while the first wave schedules
		nt.relay(Message{ID: id, Src: src, From: src, SentAt: now, Payload: p, Stamp: st})
		nt.flightDone(id)
		return id
	}
	for dst := 0; dst < nt.N(); dst++ {
		if dst != src {
			nt.transmit(Message{ID: id, Src: src, From: src, Dst: dst, SentAt: now, Payload: p, Stamp: st})
		}
	}
	return id
}

func (nt *Net) newID() uint64 {
	nt.nextID++
	return nt.nextID
}

// countSend records one link-level transmission.
func (nt *Net) countSend(p Payload) {
	nt.Stats.Sent++
	nt.Stats.Bytes += int64(p.WireSize() + nt.HeaderBytes)
	nt.Stats.ByKind[p.Kind()]++
}

// countDrop records one dropped transmission.
func (nt *Net) countDrop() {
	nt.Stats.Dropped++
}

// shapeDelay adds active reorder-window jitter to a sampled delay.
func (nt *Net) shapeDelay(d sim.Duration, at sim.Time) sim.Duration {
	f := nt.fault
	if f == nil {
		return d
	}
	if j := f.ReorderJitter(at); j > 0 {
		d += sim.Duration(nt.rng.Int63n(int64(j) + 1))
		f.Counts.Reorders.Add(1)
	}
	return d
}

// transmit schedules one link-level transmission.
func (nt *Net) transmit(m Message) {
	nt.countSend(m.Payload)
	now := nt.eng.Now()
	if f := nt.fault; f != nil && f.Cut(m.From, m.Dst, now) {
		nt.countDrop()
		f.Counts.PartitionDrops.Add(1)
		if nt.flightRec != nil {
			nt.recordFlight(flight.Drop, &m, now)
		}
		return
	}
	d, dropped := sim.SampleDelay(nt.delay, nt.rng, now, m.From, m.Dst)
	if dropped {
		nt.countDrop()
		if nt.flightRec != nil {
			nt.recordFlight(flight.Drop, &m, now)
		}
		return
	}
	d = nt.shapeDelay(d, now)
	nt.obsDelay.Observe(float64(d))
	nt.eng.AtPri(now+d, DeliveryPri, func(now sim.Time) { nt.deliver(m, now) })
	if f := nt.fault; f != nil {
		// Duplicate window: re-deliver with an independently sampled
		// delay. The checker's Seq discipline must absorb the copy.
		if p := f.DupProb(now); p > 0 && nt.rng.Bool(p) {
			if d2, dropped2 := sim.SampleDelay(nt.delay, nt.rng, now, m.From, m.Dst); !dropped2 {
				f.Counts.Duplicates.Add(1)
				nt.eng.AtPri(now+nt.shapeDelay(d2, now), DeliveryPri, func(now sim.Time) { nt.deliver(m, now) })
			}
		}
	}
}

func (nt *Net) deliver(m Message, now sim.Time) {
	if f := nt.fault; f != nil && f.Down(m.Dst, now) {
		nt.countDrop() // crashed processes take no deliveries
		f.Counts.CrashDrops.Add(1)
		if nt.flightRec != nil {
			nt.recordFlight(flight.Drop, &m, now)
		}
		return
	}
	nt.handle(m, now)
}

// handle invokes the destination's handler (fault gating already done).
// The Recv record lands before the handler runs, so a checker's Apply
// follows its Recv in the destination's ring order.
func (nt *Net) handle(m Message, now sim.Time) {
	nt.Stats.Delivered++
	// The Recv record is built in place rather than through recordFlight:
	// this is the one per-delivery site (drops go through recordFlight),
	// and with RecordUnlocked inlined here the compiler stores the Rec
	// straight into the ring — no call frame, no intermediate copy. That
	// is what keeps the recorder inside the kernel bench's <5% budget
	// (~6ns per delivery; a call-based path measures more than double).
	if r := nt.flightRec; r != nil {
		rec := flight.Rec{
			Kind: flight.Recv, Proc: int32(m.Dst), Peer: int32(m.Src), At: now,
			Epoch: m.Stamp.Epoch, Seq: m.Stamp.Seq, PeerClock: m.Stamp.Clock,
		}
		if r.Concurrent() {
			r.Record(rec)
		} else {
			r.RecordUnlocked(rec)
		}
	}
	if h := nt.handlers[m.Dst]; h != nil {
		h(m, now)
	}
}

// relay floods m from m.From to all current neighbours that have not seen
// the message. Receivers both consume and re-relay. Dedup is done at
// delivery time, not at scheduling time: a copy lost in flight leaves
// later copies via other paths eligible, which is what lets redundant
// flood paths mask single-link loss.
func (nt *Net) relay(m Message) {
	now := nt.eng.Now()
	f := nt.fault
	for _, j := range nt.topo.Neighbors(m.From) {
		if nt.seen[j][m.ID] {
			continue
		}
		hop := m
		hop.Dst = j
		hop.Hops = m.Hops + 1
		nt.countSend(hop.Payload)
		if f != nil && f.Cut(hop.From, hop.Dst, now) {
			nt.countDrop()
			f.Counts.PartitionDrops.Add(1)
			if nt.flightRec != nil {
				nt.recordFlight(flight.Drop, &hop, now)
			}
			continue
		}
		d, dropped := sim.SampleDelay(nt.delay, nt.rng, now, hop.From, hop.Dst)
		if dropped {
			nt.countDrop()
			if nt.flightRec != nil {
				nt.recordFlight(flight.Drop, &hop, now)
			}
			continue
		}
		d = nt.shapeDelay(d, now)
		nt.obsDelay.Observe(float64(d))
		nt.inflight[hop.ID]++
		nt.eng.AtPri(now+d, DeliveryPri, func(now sim.Time) {
			defer nt.flightDone(hop.ID)
			if nt.seen[hop.Dst][hop.ID] {
				return // duplicate arrived first via another path
			}
			if f := nt.fault; f != nil && f.Down(hop.Dst, now) {
				nt.countDrop() // crashed receivers neither deliver nor relay
				f.Counts.CrashDrops.Add(1)
				if nt.flightRec != nil {
					nt.recordFlight(flight.Drop, &hop, now)
				}
				return
			}
			nt.seen[hop.Dst][hop.ID] = true
			nt.handle(hop, now)
			next := hop
			next.From = hop.Dst
			nt.relay(next)
		})
	}
}

// flightDone releases one scheduled copy of a flood message; the last
// release prunes the ID from every per-process dedup set (see the
// inflight field). Dropped copies are never scheduled, so they hold no
// reference.
func (nt *Net) flightDone(id uint64) {
	if n := nt.inflight[id] - 1; n > 0 {
		nt.inflight[id] = n
		return
	}
	delete(nt.inflight, id)
	for i := range nt.seen {
		delete(nt.seen[i], id)
	}
}

// dedupEntries reports the total number of live flood-dedup entries
// across all processes (test hook for the bounded-memory guarantee).
func (nt *Net) dedupEntries() int {
	n := 0
	for i := range nt.seen {
		n += len(nt.seen[i])
	}
	return n
}
