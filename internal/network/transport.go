package network

import (
	"pervasive/internal/obs"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

// Payload is the content of a network-plane message. WireSize is the
// payload's on-air size in bytes, used by the overhead experiments (E7);
// Kind is a short tag for traces and per-kind statistics.
type Payload interface {
	WireSize() int
	Kind() string
}

// Message is one network-plane message in flight or delivered.
type Message struct {
	ID      uint64 // unique per logical send/broadcast (shared by flood copies)
	Src     int    // originating process
	From    int    // previous hop (== Src for direct delivery)
	Dst     int    // destination process
	SentAt  sim.Time
	Hops    int
	Payload Payload
}

// Handler receives delivered messages at a process.
type Handler func(m Message, now sim.Time)

// Stats accumulates transport-level counters.
type Stats struct {
	Sent      int64 // link-level transmissions attempted
	Delivered int64
	Dropped   int64
	Bytes     int64 // payload bytes transmitted (per link-level send)
	ByKind    map[string]int64
}

// Net is the message transport of the network plane. It is not safe for
// concurrent use; it belongs to the single-threaded DES.
type Net struct {
	eng   *sim.Engine
	topo  Topology
	delay sim.DelayModel
	rng   *stats.RNG

	handlers []Handler
	nextID   uint64

	// Flood selects hop-by-hop flooding over the overlay for Broadcast;
	// when false, Broadcast sends one direct logical message per peer.
	Flood bool
	// HeaderBytes is the fixed per-message header size added to every
	// link-level transmission's byte count.
	HeaderBytes int

	seen []map[uint64]bool // per-process flood duplicate suppression

	Stats Stats

	// obsDelay samples per-link delays when SetObs attached a registry.
	// Like the Stats block it is plain, unsynchronized state: the
	// transport belongs to the single-threaded DES, so counters are
	// published by a snapshot-time collector rather than paid for with
	// atomics on every message.
	obsDelay *obs.LocalHist
}

// SetObs attaches runtime metrics: per-link sends, deliveries, drops
// and bytes as counters, and the sampled link delay (µs) as a
// histogram. The hot path stays atomic-free — a registered collector
// mirrors the Stats block and the local delay histogram into the
// registry at snapshot time. SetObs(nil) stops delay sampling; values
// already mirrored into a previous registry remain there.
func (nt *Net) SetObs(r *obs.Registry) {
	if r == nil {
		nt.obsDelay = nil
		return
	}
	nt.obsDelay = obs.NewLocalHist(obs.DurationBuckets)
	var (
		sent      = r.Counter("net.sent")
		delivered = r.Counter("net.delivered")
		dropped   = r.Counter("net.dropped")
		bytes     = r.Counter("net.bytes")
		delay     = r.Histogram("net.delay_us", obs.DurationBuckets)
		local     = nt.obsDelay
	)
	r.RegisterCollector(func(*obs.Registry) {
		sent.Store(nt.Stats.Sent)
		delivered.Store(nt.Stats.Delivered)
		dropped.Store(nt.Stats.Dropped)
		bytes.Store(nt.Stats.Bytes)
		delay.CopyFrom(local)
	})
}

// New creates a transport over the topology with the given delay model.
func New(eng *sim.Engine, topo Topology, delay sim.DelayModel) *Net {
	n := topo.N()
	nt := &Net{
		eng: eng, topo: topo, delay: delay,
		rng:         eng.RNG().Fork(),
		handlers:    make([]Handler, n),
		seen:        make([]map[uint64]bool, n),
		HeaderBytes: 8,
	}
	nt.Stats.ByKind = make(map[string]int64)
	for i := range nt.seen {
		nt.seen[i] = make(map[uint64]bool)
	}
	return nt
}

// N returns the number of processes.
func (nt *Net) N() int { return len(nt.handlers) }

// Register installs the delivery handler for process i (replacing any
// previous handler).
func (nt *Net) Register(i int, h Handler) { nt.handlers[i] = h }

// Delay returns the transport's delay model.
func (nt *Net) Delay() sim.DelayModel { return nt.delay }

// SetDelay replaces the delay model (useful for mid-run degradation
// experiments).
func (nt *Net) SetDelay(d sim.DelayModel) { nt.delay = d }

// Send transmits p from src to dst as one logical (direct) message,
// regardless of overlay links; use for checker traffic where L is assumed
// routable. It returns the message ID.
func (nt *Net) Send(src, dst int, p Payload) uint64 {
	id := nt.newID()
	nt.transmit(Message{ID: id, Src: src, From: src, Dst: dst, SentAt: nt.eng.Now(), Payload: p})
	return id
}

// Broadcast implements the strobe protocols' System-wide_Broadcast: p is
// delivered to every process except src. With Flood unset each peer gets
// an independent direct transmission; with Flood set the message floods
// hop-by-hop over the overlay with duplicate suppression. It returns the
// message ID.
func (nt *Net) Broadcast(src int, p Payload) uint64 {
	id := nt.newID()
	now := nt.eng.Now()
	if nt.Flood {
		nt.seen[src][id] = true
		nt.relay(Message{ID: id, Src: src, From: src, SentAt: now, Payload: p})
		return id
	}
	for dst := 0; dst < nt.N(); dst++ {
		if dst != src {
			nt.transmit(Message{ID: id, Src: src, From: src, Dst: dst, SentAt: now, Payload: p})
		}
	}
	return id
}

func (nt *Net) newID() uint64 {
	nt.nextID++
	return nt.nextID
}

// countSend records one link-level transmission.
func (nt *Net) countSend(p Payload) {
	nt.Stats.Sent++
	nt.Stats.Bytes += int64(p.WireSize() + nt.HeaderBytes)
	nt.Stats.ByKind[p.Kind()]++
}

// countDrop records one dropped transmission.
func (nt *Net) countDrop() {
	nt.Stats.Dropped++
}

// transmit schedules one link-level transmission.
func (nt *Net) transmit(m Message) {
	nt.countSend(m.Payload)
	d, dropped := sim.SampleDelay(nt.delay, nt.rng, nt.eng.Now(), m.From, m.Dst)
	if dropped {
		nt.countDrop()
		return
	}
	nt.obsDelay.Observe(float64(d))
	nt.eng.After(d, func(now sim.Time) { nt.deliver(m, now) })
}

func (nt *Net) deliver(m Message, now sim.Time) {
	nt.Stats.Delivered++
	if h := nt.handlers[m.Dst]; h != nil {
		h(m, now)
	}
}

// relay floods m from m.From to all current neighbours that have not seen
// the message. Receivers both consume and re-relay.
func (nt *Net) relay(m Message) {
	for _, j := range nt.topo.Neighbors(m.From) {
		if nt.seen[j][m.ID] {
			continue
		}
		hop := m
		hop.Dst = j
		hop.Hops = m.Hops + 1
		nt.countSend(hop.Payload)
		d, dropped := sim.SampleDelay(nt.delay, nt.rng, nt.eng.Now(), hop.From, hop.Dst)
		if dropped {
			nt.countDrop()
			continue
		}
		nt.obsDelay.Observe(float64(d))
		nt.eng.After(d, func(now sim.Time) {
			if nt.seen[hop.Dst][hop.ID] {
				return // duplicate arrived first via another path
			}
			nt.seen[hop.Dst][hop.ID] = true
			nt.deliver(hop, now)
			next := hop
			next.From = hop.Dst
			nt.relay(next)
		})
	}
}
