package network

import (
	"testing"

	"pervasive/internal/sim"
)

// Churn tests: the overlay L is "a dynamically changing graph" (§2.1);
// the transport must respect link changes that happen mid-run.

func TestFloodRespectsLinkRemovalMidRun(t *testing.T) {
	m := NewMutable(4)
	m.AddLink(0, 1)
	m.AddLink(1, 2)
	m.AddLink(2, 3)
	eng := sim.NewEngine(1)
	nt := New(eng, m, sim.DeltaBounded{Min: 10, Max: 10})
	nt.Flood = true
	reached := make(map[int]int)
	for i := 0; i < 4; i++ {
		i := i
		nt.Register(i, func(Message, sim.Time) { reached[i]++ })
	}
	// First broadcast crosses the whole path.
	eng.At(0, func(sim.Time) { nt.Broadcast(0, Raw{}) })
	// Cut 1—2 before the second broadcast.
	eng.At(100, func(sim.Time) { m.RemoveLink(1, 2) })
	eng.At(200, func(sim.Time) { nt.Broadcast(0, Raw{}) })
	eng.RunAll()
	if reached[3] != 1 {
		t.Fatalf("node 3 reached %d times; the cut should block the second flood", reached[3])
	}
	if reached[1] != 2 {
		t.Fatalf("node 1 reached %d times", reached[1])
	}
}

func TestFloodUsesNewLinks(t *testing.T) {
	m := NewMutable(3)
	m.AddLink(0, 1)
	eng := sim.NewEngine(1)
	nt := New(eng, m, sim.Synchronous{})
	nt.Flood = true
	got := make(map[int]int)
	for i := 0; i < 3; i++ {
		i := i
		nt.Register(i, func(Message, sim.Time) { got[i]++ })
	}
	eng.At(0, func(sim.Time) { nt.Broadcast(0, Raw{}) }) // node 2 unreachable
	eng.At(10, func(sim.Time) { m.AddLink(1, 2) })
	eng.At(20, func(sim.Time) { nt.Broadcast(0, Raw{}) }) // now reachable
	eng.RunAll()
	if got[2] != 1 {
		t.Fatalf("node 2 received %d broadcasts, want 1", got[2])
	}
}

func TestDirectBroadcastIgnoresOverlay(t *testing.T) {
	// Direct System-wide_Broadcast treats L as routable regardless of
	// links — the strobe protocols' abstraction.
	m := NewMutable(3) // no links at all
	eng := sim.NewEngine(1)
	nt := New(eng, m, sim.Synchronous{})
	count := 0
	nt.Register(2, func(Message, sim.Time) { count++ })
	eng.At(0, func(sim.Time) { nt.Broadcast(0, Raw{}) })
	eng.RunAll()
	if count != 1 {
		t.Fatalf("direct broadcast delivered %d", count)
	}
}

func TestFloodDeliversOncePerBroadcastOnDenseGraph(t *testing.T) {
	// Duplicate suppression under many redundant paths.
	eng := sim.NewEngine(2)
	nt := New(eng, FullMesh{Nodes: 8}, sim.DeltaBounded{Min: 1, Max: 20})
	nt.Flood = true
	counts := make([]int, 8)
	for i := range counts {
		i := i
		nt.Register(i, func(Message, sim.Time) { counts[i]++ })
	}
	for k := 0; k < 5; k++ {
		k := k
		eng.At(sim.Time(k*1000), func(sim.Time) { nt.Broadcast(k%8, Raw{}) })
	}
	eng.RunAll()
	for i, c := range counts {
		sentBySelf := 0
		for k := 0; k < 5; k++ {
			if k%8 == i {
				sentBySelf++
			}
		}
		if c != 5-sentBySelf {
			t.Fatalf("node %d received %d (want %d)", i, c, 5-sentBySelf)
		}
	}
}
