// Package obs is the runtime observability layer shared by both
// execution engines: a named registry of atomic counters, gauges and
// fixed-bucket histograms, plus lightweight spans. It is stdlib-only and
// built for hot paths: every instrument method is safe on a nil receiver
// and compiles to a single predictable branch when instrumentation is
// off, so uninstrumented runs stay allocation-free.
//
// The Noop registry is a nil *Registry: obs.Noop.Counter("x").Inc() does
// nothing and allocates nothing. Components therefore hold resolved
// instrument pointers (possibly nil) rather than checking a flag.
//
// Time: spans measure whatever time base the caller passes — virtual
// sim.Time in the discrete-event engine, wall-clock microseconds in the
// live engine. A registry can carry a time source (SetNow) so callers
// that do not thread "now" around can use StartSpan/End; the DES harness
// installs the engine's virtual clock, the live engine installs
// wall-µs-since-start. Durations from the two engines are therefore not
// comparable unit-for-unit semantics-wise ("virtual" vs "wall-us");
// snapshots always record which base was in use, and tools that compare
// spans across runs (tracedump -diff) refuse mismatched bases.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"pervasive/internal/sim"
)

// Noop is the disabled registry: all instruments derived from it are
// nil and every operation on them is a no-op.
var Noop *Registry

// Counter is a monotonically increasing atomic counter. The nil Counter
// discards all updates.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be ≥ 0 for the counter to stay monotonic; this is
// not enforced, collectors use Store instead).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Store overwrites the counter's value. It exists for collectors that
// mirror an externally maintained monotonic count into the registry.
func (c *Counter) Store(n int64) {
	if c != nil {
		c.v.Store(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value with a high-watermark. The nil Gauge
// discards all updates.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set stores the current value and raises the watermark if exceeded.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
	g.bumpMax(n)
}

// SetWithMax stores both the current value and an externally tracked
// watermark (used by collectors whose component tracks its own peak,
// which snapshot-time sampling would miss).
func (g *Gauge) SetWithMax(cur, max int64) {
	if g == nil {
		return
	}
	g.v.Store(cur)
	g.bumpMax(max)
}

// Add adjusts the current value by delta and updates the watermark.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.bumpMax(g.v.Add(delta))
}

func (g *Gauge) bumpMax(n int64) {
	for {
		m := g.max.Load()
		if n <= m || g.max.CompareAndSwap(m, n) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-watermark (0 for nil).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Histogram is a fixed-bucket histogram with lock-free observation.
// Bucket i counts observations v with v ≤ Bounds[i] (and v > Bounds[i-1]);
// a final overflow bucket catches v > Bounds[len-1]. The nil Histogram
// discards all observations.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	min    atomic.Uint64 // float64 bits, init +Inf
	max    atomic.Uint64 // float64 bits, init -Inf
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	addFloat(&h.sum, v)
	minFloat(&h.min, v)
	maxFloat(&h.max, v)
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

func addFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if a.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func minFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if v >= math.Float64frombits(old) || a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func maxFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if v <= math.Float64frombits(old) || a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// LocalHist is an unsynchronized fixed-bucket histogram for
// single-goroutine hot paths (the DES kernel and its transport):
// Observe is a plain array increment with no atomics or CAS loops.
// Publish it into a shared Histogram at snapshot time with
// Histogram.CopyFrom inside a Collector. The nil LocalHist discards
// observations.
type LocalHist struct {
	bounds []float64
	counts []uint64 // len(bounds)+1, last is overflow
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// NewLocalHist creates a local histogram; empty bounds default to
// DurationBuckets.
func NewLocalHist(bounds []float64) *LocalHist {
	if len(bounds) == 0 {
		bounds = DurationBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &LocalHist{
		bounds: b, counts: make([]uint64, len(b)+1),
		min: math.Inf(1), max: math.Inf(-1),
	}
}

// Observe records one sample. The bucket search is an open-coded
// binary search: this sits on the DES kernel's per-message path, where
// sort.Search's closure indirection alone would blow the <5% overhead
// budget (see BenchmarkDESKernelObs).
func (h *LocalHist) Observe(v float64) {
	if h == nil {
		return
	}
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations (0 for nil).
func (h *LocalHist) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Bounds returns the bucket bounds, for creating a matching Histogram.
func (h *LocalHist) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// CopyFrom overwrites h's state with l's. Both histograms must share
// the same bucket bounds; it panics otherwise, which always indicates
// an instrumentation bug.
func (h *Histogram) CopyFrom(l *LocalHist) {
	if h == nil || l == nil {
		return
	}
	if len(h.counts) != len(l.counts) {
		panic("obs: CopyFrom bucket count mismatch")
	}
	for i := range l.counts {
		h.counts[i].Store(l.counts[i])
	}
	h.count.Store(l.count)
	h.sum.Store(math.Float64bits(l.sum))
	h.min.Store(math.Float64bits(l.min))
	h.max.Store(math.Float64bits(l.max))
}

// DurationBuckets are the default bounds (in µs) for delay and span
// histograms: exponential from 1 µs to ~100 s.
var DurationBuckets = []float64{
	1, 2, 5, 10, 20, 50, 100, 200, 500,
	1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5,
	1e6, 2e6, 5e6, 1e7, 2e7, 5e7, 1e8,
}

// Span is one in-flight timed operation. Spans are values — starting and
// ending one performs no allocation beyond the registry's bounded span
// log entry. The zero Span (from a nil registry) is inert.
type Span struct {
	reg   *Registry
	name  string
	start sim.Time
}

// EndAt closes the span at the given time, recording its duration into
// the histogram "span.<name>" and appending it to the registry's bounded
// span log.
func (s Span) EndAt(at sim.Time) {
	if s.reg == nil {
		return
	}
	s.reg.Histogram("span."+s.name, DurationBuckets).Observe(float64(at - s.start))
	s.reg.logSpan(SpanSnap{Name: s.name, Start: s.start, End: at})
}

// End closes the span at the registry's current time (SetNow source).
func (s Span) End() {
	if s.reg == nil {
		return
	}
	s.EndAt(s.reg.Now())
}

// Collector pushes externally maintained values into the registry. The
// single-threaded DES kernel keeps plain (non-atomic) counters on its
// own hot path and registers a collector to publish them; collectors run
// at Snapshot time.
type Collector func(r *Registry)

// Registry is a named set of instruments. Instruments are created on
// first use and live for the registry's lifetime; resolving the same
// name twice returns the same instrument. All methods are safe for
// concurrent use and safe on a nil receiver (the Noop registry).
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []Collector

	nowMu sync.RWMutex
	now   func() sim.Time
	// TimeBase documents which clock SetNow installed ("virtual" or
	// "wall-us"); recorded in snapshots.
	timeBase string

	spanMu   sync.Mutex
	spanLog  []SpanSnap
	spanNext int
	spanCap  int
}

// NewRegistry creates an enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		spanCap:  256,
	}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// Counter returns the named counter, creating it if needed. Returns nil
// on the Noop registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds if needed. An existing histogram keeps its original
// bounds regardless of the bounds argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if len(bounds) == 0 {
			bounds = DurationBuckets
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// RegisterCollector adds a collector invoked at every Snapshot.
func (r *Registry) RegisterCollector(c Collector) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// SetNow installs the registry's time source and labels its base
// ("virtual" for the DES engine, "wall-us" for the live engine).
func (r *Registry) SetNow(base string, fn func() sim.Time) {
	if r == nil {
		return
	}
	r.nowMu.Lock()
	r.now, r.timeBase = fn, base
	r.nowMu.Unlock()
}

// Now returns the registry's current time, or 0 with no source set.
func (r *Registry) Now() sim.Time {
	if r == nil {
		return 0
	}
	r.nowMu.RLock()
	fn := r.now
	r.nowMu.RUnlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// TimeBase returns the label passed to SetNow ("" if unset).
func (r *Registry) TimeBase() string {
	if r == nil {
		return ""
	}
	r.nowMu.RLock()
	defer r.nowMu.RUnlock()
	return r.timeBase
}

// StartSpanAt opens a span at an explicit time.
func (r *Registry) StartSpanAt(name string, at sim.Time) Span {
	if r == nil {
		return Span{}
	}
	return Span{reg: r, name: name, start: at}
}

// StartSpan opens a span at the registry's current time (SetNow source).
func (r *Registry) StartSpan(name string) Span {
	return r.StartSpanAt(name, r.Now())
}

// SetSpanLogCap bounds the completed-span ring buffer (default 256; 0
// disables the log, durations are still recorded).
func (r *Registry) SetSpanLogCap(n int) {
	if r == nil {
		return
	}
	r.spanMu.Lock()
	r.spanCap = n
	r.spanLog = nil
	r.spanNext = 0
	r.spanMu.Unlock()
}

func (r *Registry) logSpan(s SpanSnap) {
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	if r.spanCap <= 0 {
		return
	}
	if len(r.spanLog) < r.spanCap {
		r.spanLog = append(r.spanLog, s)
		return
	}
	r.spanLog[r.spanNext] = s
	r.spanNext = (r.spanNext + 1) % r.spanCap
}
