package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"pervasive/internal/sim"
)

func TestNoopRegistryIsInert(t *testing.T) {
	var r *Registry // == Noop
	r.Counter("c").Inc()
	r.Counter("c").Add(5)
	r.Gauge("g").Set(3)
	r.Gauge("g").Add(-1)
	r.Histogram("h", nil).Observe(1.5)
	sp := r.StartSpanAt("s", 10)
	sp.EndAt(20)
	r.StartSpan("s2").End()
	r.SetNow("virtual", func() sim.Time { return 5 })
	r.RegisterCollector(func(*Registry) { t.Fatal("collector ran on noop") })
	if r.Enabled() {
		t.Fatal("noop registry claims enabled")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms)+len(s.Spans) != 0 {
		t.Fatalf("noop snapshot not empty: %+v", s)
	}
	if r.Counter("c").Value() != 0 || r.Gauge("g").Value() != 0 {
		t.Fatal("noop instruments recorded values")
	}
}

func TestNoopAllocationFree(t *testing.T) {
	var r *Registry
	allocs := testing.AllocsPerRun(100, func() {
		r.Counter("c").Inc()
		r.Gauge("g").Set(1)
		r.Histogram("h", nil).Observe(2)
		r.StartSpanAt("s", 0).EndAt(1)
	})
	if allocs != 0 {
		t.Fatalf("noop path allocates %v per op", allocs)
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter %d", c.Value())
	}
	if r.Counter("events") != c {
		t.Fatal("counter not interned by name")
	}

	g := r.Gauge("depth")
	g.Set(7)
	g.Set(3)
	if g.Value() != 3 || g.Max() != 7 {
		t.Fatalf("gauge %d max %d", g.Value(), g.Max())
	}
	g.Add(10)
	if g.Value() != 13 || g.Max() != 13 {
		t.Fatalf("gauge after add %d max %d", g.Value(), g.Max())
	}
	g.SetWithMax(1, 99)
	if g.Value() != 1 || g.Max() != 99 {
		t.Fatalf("gauge SetWithMax %d max %d", g.Value(), g.Max())
	}
}

func TestHistogramBucketsAndStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 100, 1000})
	for _, v := range []float64{1, 10, 11, 500, 5000} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms %d", len(snap.Histograms))
	}
	hs := snap.Histograms[0]
	// Buckets: ≤10: {1,10}; ≤100: {11}; ≤1000: {500}; overflow: {5000}.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Fatalf("bucket %d = %d want %d (%v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
	if hs.Count != 5 || hs.Sum != 5522 || hs.Min != 1 || hs.Max != 5000 {
		t.Fatalf("stats %+v", hs)
	}
	if m := hs.Mean(); m != 5522.0/5 {
		t.Fatalf("mean %v", m)
	}
	// Rank ⌈0.5·5⌉ = 3 lands on the single observation in the (10,100]
	// bucket; midpoint interpolation gives 10 + 0.5·90 = 55.
	if q := hs.Quantile(0.5); q != 55 {
		t.Fatalf("p50 %v", q)
	}
	if q := hs.Quantile(0.99); q != 5000 {
		t.Fatalf("p99 %v (expect observed max from overflow bucket)", q)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	// Empty histogram: every quantile is 0.
	empty := HistSnap{Bounds: []float64{10, 100}, Counts: []uint64{0, 0, 0}}
	for _, q := range []float64{0, 0.5, 1} {
		if v := empty.Quantile(q); v != 0 {
			t.Fatalf("empty q%.1f = %v", q, v)
		}
	}

	// All mass in the overflow bucket: only the observed max is known.
	over := HistSnap{
		Bounds: []float64{10},
		Counts: []uint64{0, 4},
		Count:  4, Min: 50, Max: 900,
	}
	for _, q := range []float64{0.01, 0.5, 1} {
		if v := over.Quantile(q); v != 900 {
			t.Fatalf("overflow q%v = %v, want Max", q, v)
		}
	}

	// First bucket interpolates from the observed Min, not from zero, and
	// results clamp into [Min, Max].
	first := HistSnap{
		Bounds: []float64{100},
		Counts: []uint64{4, 0},
		Count:  4, Min: 20, Max: 80,
	}
	// Rank 2, frac (2-0.5)/4 = 0.375 → 20 + 0.375·80 = 50.
	if v := first.Quantile(0.5); v != 50 {
		t.Fatalf("first-bucket p50 = %v", v)
	}
	// Rank 4, frac 0.875 → 90, clamped to Max=80.
	if v := first.Quantile(1); v != 80 {
		t.Fatalf("clamp to max = %v", v)
	}
}

func TestSpansVirtualTime(t *testing.T) {
	r := NewRegistry()
	var now sim.Time = 100
	r.SetNow("virtual", func() sim.Time { return now })
	sp := r.StartSpan("run")
	now = 350
	sp.End()
	snap := r.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Start != 100 || snap.Spans[0].End != 350 {
		t.Fatalf("spans %+v", snap.Spans)
	}
	if snap.TimeBase != "virtual" || snap.At != 350 {
		t.Fatalf("time base %q at %v", snap.TimeBase, snap.At)
	}
	found := false
	for _, h := range snap.Histograms {
		if h.Name == "span.run" {
			found = true
			if h.Count != 1 || h.Sum != 250 {
				t.Fatalf("span histogram %+v", h)
			}
		}
	}
	if !found {
		t.Fatal("no span.run histogram")
	}
}

func TestSpanLogRing(t *testing.T) {
	r := NewRegistry()
	r.SetSpanLogCap(4)
	for i := 0; i < 10; i++ {
		r.StartSpanAt("s", sim.Time(i)).EndAt(sim.Time(i + 1))
	}
	snap := r.Snapshot()
	if len(snap.Spans) != 4 {
		t.Fatalf("span log %d", len(snap.Spans))
	}
	// Oldest-first unroll: spans 6..9 survive.
	for i, sp := range snap.Spans {
		if sp.Start != sim.Time(6+i) {
			t.Fatalf("span order %+v", snap.Spans)
		}
	}
}

func TestCollector(t *testing.T) {
	r := NewRegistry()
	executed := int64(0)
	r.RegisterCollector(func(r *Registry) {
		r.Counter("kernel.executed").Store(executed)
		r.Gauge("kernel.depth").SetWithMax(2, 9)
	})
	executed = 42
	snap := r.Snapshot()
	var gotC int64
	for _, c := range snap.Counters {
		if c.Name == "kernel.executed" {
			gotC = c.Value
		}
	}
	if gotC != 42 {
		t.Fatalf("collected counter %d", gotC)
	}
	for _, g := range snap.Gauges {
		if g.Name == "kernel.depth" && (g.Value != 2 || g.Max != 9) {
			t.Fatalf("collected gauge %+v", g)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(5)
	r.Histogram("c", []float64{1, 2}).Observe(1.5)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Counters) != 1 || back.Counters[0].Value != 3 {
		t.Fatalf("round trip %+v", back)
	}
}

func TestWriteTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("net.sent").Add(12)
	r.Gauge("heap.depth").Set(4)
	r.Histogram("delay_us", []float64{10, 100}).Observe(42)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"net.sent", "12", "heap.depth", "delay_us"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", nil).Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("c").Value(); v != 8000 {
		t.Fatalf("concurrent counter %d", v)
	}
	if v := r.Histogram("h", nil).Count(); v != 8000 {
		t.Fatalf("concurrent histogram %d", v)
	}
	if v := r.Gauge("g").Value(); v != 8000 {
		t.Fatalf("concurrent gauge %d", v)
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("live.sends").Add(7)
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("endpoint returned invalid JSON: %v\n%s", err, body)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 7 {
		t.Fatalf("endpoint snapshot %+v", snap)
	}
}
