package obs

import "pervasive/internal/sim"

// CollectEngine registers a snapshot-time collector that mirrors the DES
// kernel's plain counters (events scheduled/executed/cancelled, heap
// depth and its watermark) into r. The kernel's hot path stays free of
// atomics and registry lookups: values are read only when r.Snapshot()
// runs, which must happen on the engine's own goroutine (the DES is
// single-threaded by contract). A nil registry is a no-op.
func CollectEngine(r *Registry, e *sim.Engine) {
	if r == nil || e == nil {
		return
	}
	scheduled := r.Counter("sim.events.scheduled")
	executed := r.Counter("sim.events.executed")
	cancelled := r.Counter("sim.events.cancelled")
	depth := r.Gauge("sim.heap.depth")
	r.RegisterCollector(func(*Registry) {
		scheduled.Store(int64(e.Scheduled))
		executed.Store(int64(e.Executed))
		cancelled.Store(int64(e.Cancelled))
		depth.SetWithMax(int64(e.Pending()), int64(e.MaxHeapDepth))
	})
}
