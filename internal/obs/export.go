package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"sync"
	"text/tabwriter"

	"pervasive/internal/sim"
)

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
	Max   int64  `json:"max"`
}

// HistSnap is one histogram in a snapshot. Counts[i] pairs with
// Bounds[i]; the final element of Counts is the overflow bucket.
type HistSnap struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min,omitempty"`
	Max    float64   `json:"max,omitempty"`
}

// Mean returns the mean observation (0 when empty).
func (h HistSnap) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q∈[0,1] quantile by locating the bucket where
// the cumulative count crosses rank ⌈q·Count⌉ and interpolating linearly
// inside it, assuming observations are uniform within a bucket. The first
// bucket's lower edge is the observed minimum; the overflow bucket reports
// the observed maximum (its upper edge is unknown). Results are clamped to
// [Min, Max], and an empty histogram reports 0.
func (h HistSnap) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		prev := cum
		cum += c
		if cum < target {
			continue
		}
		if i >= len(h.Bounds) {
			return h.Max // overflow bucket: no finite upper edge
		}
		lo := h.Min
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		// Fraction of this bucket's mass below the target rank. The
		// −0.5 places each observation at its rank's midpoint, so the
		// estimate lands inside the bucket rather than on its edges.
		frac := (float64(target) - 0.5 - float64(prev)) / float64(c)
		v := lo + frac*(hi-lo)
		return math.Min(math.Max(v, h.Min), h.Max)
	}
	return h.Max
}

// SpanSnap is one completed span.
type SpanSnap struct {
	Name  string   `json:"name"`
	Start sim.Time `json:"start"`
	End   sim.Time `json:"end"`
}

// Snapshot is a point-in-time export of a registry, serializable to
// JSON (and embeddable in a trace's metrics block).
type Snapshot struct {
	// TimeBase is "virtual" (DES) or "wall-us" (live), per SetNow. It is
	// always emitted so consumers (tracedump -diff in particular) can
	// refuse to compare durations across mismatched bases.
	TimeBase   string        `json:"time_base"`
	At         sim.Time      `json:"at,omitempty"`
	Counters   []CounterSnap `json:"counters,omitempty"`
	Gauges     []GaugeSnap   `json:"gauges,omitempty"`
	Histograms []HistSnap    `json:"histograms,omitempty"`
	Spans      []SpanSnap    `json:"spans,omitempty"`
}

// Snapshot runs the registered collectors and exports every instrument,
// sorted by name. The Noop registry returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.RUnlock()
	for _, c := range collectors {
		c(r)
	}

	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{TimeBase: r.TimeBase(), At: r.Now()}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.Value(), Max: g.Max()})
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, histSnap(name, h))
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })

	r.spanMu.Lock()
	// Unroll the ring so spans appear oldest-first.
	s.Spans = append(s.Spans, r.spanLog[r.spanNext:]...)
	s.Spans = append(s.Spans, r.spanLog[:r.spanNext]...)
	r.spanMu.Unlock()
	return s
}

// histSnap materializes one histogram's export record.
func histSnap(name string, h *Histogram) HistSnap {
	hs := HistSnap{
		Name:   name,
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		hs.Counts[i] = h.counts[i].Load()
	}
	if hs.Count > 0 {
		hs.Min = math.Float64frombits(h.min.Load())
		hs.Max = math.Float64frombits(h.max.Load())
	}
	return hs
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// WriteTable renders a human-readable metrics table: counters, gauges
// with watermarks, and histogram summaries (count/mean/p50/p90/p99/max).
func (s Snapshot) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if s.TimeBase != "" {
		fmt.Fprintf(tw, "-- metrics @ %v (%s time) --\n", s.At, s.TimeBase)
	} else {
		fmt.Fprintln(tw, "-- metrics --")
	}
	if len(s.Counters) > 0 {
		fmt.Fprintln(tw, "counter\tvalue")
		for _, c := range s.Counters {
			fmt.Fprintf(tw, "%s\t%d\n", c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(tw, "gauge\tvalue\tmax")
		for _, g := range s.Gauges {
			fmt.Fprintf(tw, "%s\t%d\t%d\n", g.Name, g.Value, g.Max)
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(tw, "histogram\tcount\tmean\tp50\tp90\tp99\tmax")
		for _, h := range s.Histograms {
			fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.0f\t%.0f\t%.0f\t%.0f\n",
				h.Name, h.Count, h.Mean(),
				h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max)
		}
	}
	if len(s.Spans) > 0 {
		fmt.Fprintf(tw, "spans logged\t%d\n", len(s.Spans))
	}
	return tw.Flush()
}

// ---- live export: expvar + HTTP ----

var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar exposes the registry's snapshot as an expvar variable.
// Publishing the same name twice is a no-op (expvar itself would panic);
// only the first registry wins for a given name.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] {
		return
	}
	expvarPublished[name] = true
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Handler returns an http.Handler serving the snapshot as JSON.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if r == nil {
			http.Error(w, "metrics disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = r.Snapshot().WriteJSON(w)
	})
}

// MetricsServer is a running metrics HTTP endpoint.
type MetricsServer struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string
	srv  *http.Server
}

// Close shuts the endpoint down.
func (m *MetricsServer) Close() error {
	if m == nil || m.srv == nil {
		return nil
	}
	return m.srv.Close()
}

// Serve starts an HTTP endpoint exposing the registry at /metrics (JSON
// snapshot) and the process expvars at /debug/vars. It returns once the
// listener is bound; the server runs until Close.
func (r *Registry) Serve(addr string) (*MetricsServer, error) {
	if r == nil {
		return nil, fmt.Errorf("obs: cannot serve the Noop registry")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return &MetricsServer{Addr: ln.Addr().String(), srv: srv}, nil
}
