// Package predicate implements the paper's predicate design space
// (Section 3.1.2): conjunctive predicates whose conjuncts are locally
// evaluable at single processes [14], and relational predicates — arbitrary
// expressions over system-wide sensed variables [10], such as the
// exhibition-hall occupancy predicate  sum(x) - sum(y) > 200.
//
// Predicates are ASTs over per-process named variables, evaluated against
// a State. A small expression language (see Parse) builds them from text.
// The package also defines the time modalities under which a predicate can
// be specified (Instantaneously, Possibly, Definitely; Section 3.1.1).
package predicate

import (
	"fmt"
	"math"
	"strings"
)

// Key identifies a variable: the process where it is sensed and its name.
// The subscript convention of the paper — x_i is "x sensed at process i" —
// maps to Key{Proc: i, Name: "x"}.
type Key struct {
	Proc int
	Name string
}

// String renders the variable in the expression language's syntax.
func (k Key) String() string { return fmt.Sprintf("%s@%d", k.Name, k.Proc) }

// State supplies variable values during evaluation.
type State interface {
	// Get returns the value of variable name at process proc (0 if unset).
	Get(proc int, name string) float64
	// NumProcs returns the number of processes, needed by aggregates.
	NumProcs() int
}

// MapState is a simple State backed by a map; the zero value of the map is
// treated as all-zeros.
type MapState struct {
	N    int
	Vals map[Key]float64
}

// Get implements State.
func (m MapState) Get(proc int, name string) float64 { return m.Vals[Key{proc, name}] }

// NumProcs implements State.
func (m MapState) NumProcs() int { return m.N }

// Expr is a numeric expression.
type Expr interface {
	// Eval computes the expression's value in state s.
	Eval(s State) float64
	// CollectVars reports every variable the expression reads. Aggregates
	// report Key{Proc: -1}, meaning "this name at every process".
	CollectVars(add func(Key))
	fmt.Stringer
}

// Cond is a boolean predicate.
type Cond interface {
	// Holds evaluates the predicate in state s.
	Holds(s State) bool
	// CollectVars reports every variable the predicate reads.
	CollectVars(add func(Key))
	fmt.Stringer
}

// ---------- numeric expressions ----------

// Const is a numeric literal.
type Const float64

// Eval implements Expr.
func (c Const) Eval(State) float64 { return float64(c) }

// CollectVars implements Expr.
func (c Const) CollectVars(func(Key)) {}

func (c Const) String() string {
	return strings.TrimSuffix(strings.TrimRight(fmt.Sprintf("%.6f", float64(c)), "0"), ".")
}

// Var reads one variable at one process.
type Var Key

// Eval implements Expr.
func (v Var) Eval(s State) float64 { return s.Get(v.Proc, v.Name) }

// CollectVars implements Expr.
func (v Var) CollectVars(add func(Key)) { add(Key(v)) }

func (v Var) String() string { return Key(v).String() }

// AggOp selects the aggregate computed by Agg.
type AggOp int

// Aggregate operators over all processes.
const (
	AggSum AggOp = iota
	AggAvg
	AggMin
	AggMax
)

var aggNames = [...]string{"sum", "avg", "min", "max"}

// Agg aggregates variable Name across every process: e.g. sum(x) is
// Σ_i x_i — the system-wide totals used by relational predicates.
type Agg struct {
	Op   AggOp
	Name string
}

// Eval implements Expr.
func (a Agg) Eval(s State) float64 {
	n := s.NumProcs()
	if n == 0 {
		return 0
	}
	acc := s.Get(0, a.Name)
	for i := 1; i < n; i++ {
		v := s.Get(i, a.Name)
		switch a.Op {
		case AggSum, AggAvg:
			acc += v
		case AggMin:
			acc = math.Min(acc, v)
		case AggMax:
			acc = math.Max(acc, v)
		}
	}
	if a.Op == AggAvg {
		acc /= float64(n)
	}
	return acc
}

// CollectVars implements Expr.
func (a Agg) CollectVars(add func(Key)) { add(Key{Proc: -1, Name: a.Name}) }

func (a Agg) String() string { return fmt.Sprintf("%s(%s)", aggNames[a.Op], a.Name) }

// BinOp selects the operator of a Bin expression.
type BinOp int

// Arithmetic operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
)

var binNames = [...]string{"+", "-", "*", "/"}

// Bin is a binary arithmetic expression.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// Eval implements Expr. Division by zero yields 0 rather than ±Inf: sensor
// predicates must stay total.
func (b Bin) Eval(s State) float64 {
	l, r := b.L.Eval(s), b.R.Eval(s)
	switch b.Op {
	case OpAdd:
		return l + r
	case OpSub:
		return l - r
	case OpMul:
		return l * r
	default:
		if r == 0 {
			return 0
		}
		return l / r
	}
}

// CollectVars implements Expr.
func (b Bin) CollectVars(add func(Key)) {
	b.L.CollectVars(add)
	b.R.CollectVars(add)
}

func (b Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, binNames[b.Op], b.R)
}

// Neg is unary minus.
type Neg struct{ X Expr }

// Eval implements Expr.
func (n Neg) Eval(s State) float64 { return -n.X.Eval(s) }

// CollectVars implements Expr.
func (n Neg) CollectVars(add func(Key)) { n.X.CollectVars(add) }

func (n Neg) String() string { return fmt.Sprintf("(-%s)", n.X) }

// ---------- boolean predicates ----------

// CmpOp selects the comparison of a Cmp predicate.
type CmpOp int

// Comparison operators.
const (
	CmpGT CmpOp = iota
	CmpGE
	CmpLT
	CmpLE
	CmpEQ
	CmpNE
)

var cmpNames = [...]string{">", ">=", "<", "<=", "==", "!="}

// Cmp compares two numeric expressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Holds implements Cond.
func (c Cmp) Holds(s State) bool {
	l, r := c.L.Eval(s), c.R.Eval(s)
	switch c.Op {
	case CmpGT:
		return l > r
	case CmpGE:
		return l >= r
	case CmpLT:
		return l < r
	case CmpLE:
		return l <= r
	case CmpEQ:
		return l == r
	default:
		return l != r
	}
}

// CollectVars implements Cond.
func (c Cmp) CollectVars(add func(Key)) {
	c.L.CollectVars(add)
	c.R.CollectVars(add)
}

func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L, cmpNames[c.Op], c.R)
}

// And is conjunction.
type And struct{ L, R Cond }

// Holds implements Cond.
func (a And) Holds(s State) bool { return a.L.Holds(s) && a.R.Holds(s) }

// CollectVars implements Cond.
func (a And) CollectVars(add func(Key)) {
	a.L.CollectVars(add)
	a.R.CollectVars(add)
}

func (a And) String() string { return fmt.Sprintf("(%s && %s)", a.L, a.R) }

// Or is disjunction.
type Or struct{ L, R Cond }

// Holds implements Cond.
func (o Or) Holds(s State) bool { return o.L.Holds(s) || o.R.Holds(s) }

// CollectVars implements Cond.
func (o Or) CollectVars(add func(Key)) {
	o.L.CollectVars(add)
	o.R.CollectVars(add)
}

func (o Or) String() string { return fmt.Sprintf("(%s || %s)", o.L, o.R) }

// Not is negation.
type Not struct{ X Cond }

// Holds implements Cond.
func (n Not) Holds(s State) bool { return !n.X.Holds(s) }

// CollectVars implements Cond.
func (n Not) CollectVars(add func(Key)) { n.X.CollectVars(add) }

func (n Not) String() string { return fmt.Sprintf("!(%s)", n.X) }

// FuncCond wraps an arbitrary Go function as a predicate. Vars are
// whatever the constructor declares; used for predicates that are easier
// to write in Go than in the expression language.
type FuncCond struct {
	F    func(s State) bool
	Keys []Key
	Desc string
}

// Holds implements Cond.
func (f FuncCond) Holds(s State) bool { return f.F(s) }

// CollectVars implements Cond.
func (f FuncCond) CollectVars(add func(Key)) {
	for _, k := range f.Keys {
		add(k)
	}
}

func (f FuncCond) String() string {
	if f.Desc != "" {
		return f.Desc
	}
	return "<func>"
}

// VarsOf returns the distinct variables read by c, in first-seen order.
func VarsOf(c Cond) []Key {
	var out []Key
	seen := make(map[Key]bool)
	c.CollectVars(func(k Key) {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	})
	return out
}
