package predicate

import (
	"testing"

	"pervasive/internal/stats"
)

// genCond builds a random predicate AST of bounded depth.
func genCond(r *stats.RNG, depth int) Cond {
	if depth <= 0 {
		return genCmp(r)
	}
	switch r.Intn(4) {
	case 0:
		return And{L: genCond(r, depth-1), R: genCond(r, depth-1)}
	case 1:
		return Or{L: genCond(r, depth-1), R: genCond(r, depth-1)}
	case 2:
		return Not{X: genCond(r, depth-1)}
	default:
		return genCmp(r)
	}
}

func genCmp(r *stats.RNG) Cond {
	return Cmp{
		Op: CmpOp(r.Intn(6)),
		L:  genExpr(r, 2),
		R:  genExpr(r, 2),
	}
}

func genExpr(r *stats.RNG, depth int) Expr {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return Const(float64(r.Intn(20)) - 10)
		case 1:
			return Var{Proc: r.Intn(3), Name: varNames[r.Intn(len(varNames))]}
		default:
			return Agg{Op: AggOp(r.Intn(4)), Name: varNames[r.Intn(len(varNames))]}
		}
	}
	switch r.Intn(3) {
	case 0:
		return Bin{Op: BinOp(r.Intn(4)), L: genExpr(r, depth-1), R: genExpr(r, depth-1)}
	case 1:
		return Neg{X: genExpr(r, depth-1)}
	default:
		return genExpr(r, 0)
	}
}

var varNames = []string{"x", "y", "temp"}

// TestFuzzRoundTrip renders random ASTs, reparses them, and checks
// semantic equality on random states — the parser and printer are exact
// inverses up to semantics.
func TestFuzzRoundTrip(t *testing.T) {
	r := stats.NewRNG(2024)
	for trial := 0; trial < 300; trial++ {
		orig := genCond(r, 3)
		src := orig.String()
		re, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: reparse of %q failed: %v", trial, src, err)
		}
		for k := 0; k < 10; k++ {
			s := MapState{N: 3, Vals: map[Key]float64{}}
			for p := 0; p < 3; p++ {
				for _, name := range varNames {
					s.Vals[Key{p, name}] = float64(r.Intn(9)) - 4
				}
			}
			if orig.Holds(s) != re.Holds(s) {
				t.Fatalf("trial %d: %q differs from reparse on state %v",
					trial, src, s.Vals)
			}
		}
	}
}

// TestFuzzEvalNeverPanics drives random predicates over adversarial
// states (empty, negative process counts won't occur, NaN-free).
func TestFuzzEvalNeverPanics(t *testing.T) {
	r := stats.NewRNG(7)
	states := []State{
		MapState{N: 0, Vals: nil},
		MapState{N: 1, Vals: map[Key]float64{}},
		MapState{N: 5, Vals: map[Key]float64{{0, "x"}: 1e18, {4, "y"}: -1e18}},
	}
	for trial := 0; trial < 200; trial++ {
		c := genCond(r, 4)
		for _, s := range states {
			_ = c.Holds(s) // must not panic
		}
		_, _ = AsConjunctive(c) // must not panic either
	}
}
