package predicate

import (
	"strings"
	"testing"
)

func TestParseExhibitionHall(t *testing.T) {
	c := MustParse("sum(x) - sum(y) > 200")
	s := st(3, map[Key]float64{
		{0, "x"}: 100, {1, "x"}: 100, {2, "x"}: 50,
		{0, "y"}: 20, {1, "y"}: 10, {2, "y"}: 10,
	})
	if !c.Holds(s) { // 250 - 40 = 210 > 200
		t.Fatal("occupancy predicate should hold")
	}
	s.Vals[Key{0, "y"}] = 40 // 250 - 60 = 190
	if c.Holds(s) {
		t.Fatal("occupancy predicate should not hold")
	}
}

func TestParsePrecedence(t *testing.T) {
	c := MustParse("x@0 + 2 * y@0 == 7")
	s := st(1, map[Key]float64{{0, "x"}: 1, {0, "y"}: 3})
	if !c.Holds(s) {
		t.Fatal("precedence: 1 + 2*3 should be 7")
	}
	c2 := MustParse("(x@0 + 2) * y@0 == 9")
	if !c2.Holds(s) {
		t.Fatal("parens: (1+2)*3 should be 9")
	}
}

func TestParseLogicalPrecedence(t *testing.T) {
	// && binds tighter than ||.
	c := MustParse("x@0 > 0 || x@0 < -5 && x@0 > -10")
	s := st(1, map[Key]float64{{0, "x"}: 1})
	if !c.Holds(s) {
		t.Fatal("|| lhs should satisfy")
	}
	s.Vals[Key{0, "x"}] = -7
	if !c.Holds(s) {
		t.Fatal("&& group should satisfy")
	}
	s.Vals[Key{0, "x"}] = -20
	if c.Holds(s) {
		t.Fatal("neither branch should satisfy")
	}
}

func TestParseNotAndUnaryMinus(t *testing.T) {
	c := MustParse("!(x@0 > 5) && -x@0 < 0")
	s := st(1, map[Key]float64{{0, "x"}: 3})
	if !c.Holds(s) {
		t.Fatal("should hold for x=3")
	}
	s.Vals[Key{0, "x"}] = 7
	if c.Holds(s) {
		t.Fatal("should fail for x=7")
	}
}

func TestParseTrueFalse(t *testing.T) {
	s := st(1, nil)
	if !MustParse("true").Holds(s) || MustParse("false").Holds(s) {
		t.Fatal("boolean literals broken")
	}
	if !MustParse("true && x@0 == 0").Holds(s) {
		t.Fatal("literal conjunction broken")
	}
}

func TestParseFloats(t *testing.T) {
	c := MustParse("x@0 >= 2.5")
	s := st(1, map[Key]float64{{0, "x"}: 2.5})
	if !c.Holds(s) {
		t.Fatal("float literal comparison")
	}
}

func TestParseAggregateForms(t *testing.T) {
	s := st(2, map[Key]float64{{0, "v"}: 2, {1, "v"}: 4})
	for src, want := range map[string]bool{
		"sum(v) == 6": true,
		"avg(v) == 3": true,
		"min(v) == 2": true,
		"max(v) == 4": true,
	} {
		if MustParse(src).Holds(s) != want {
			t.Fatalf("%q evaluated wrong", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"":                  "unexpected",
		"x@0":               "numeric, not boolean",
		"5 > ":              "unexpected",
		"x > 5":             "needs a process",
		"x@ > 5":            "expected process index",
		"x@-1 > 5":          "expected process index",
		"x@1.5 > 5":         "non-negative integer",
		"sum( > 5":          "needs a variable name",
		"sum(x > 5":         "missing )",
		"(x@0 > 5 && ":      "unexpected",
		"x@0 > 5 && y@1":    "boolean",
		"x@0 + (y@1 > 2)":   "numeric expression",
		"x@0 > 5 extra":     "unexpected",
		"x@0 > 5 && && 1":   "unexpected",
		"$":                 "unexpected character",
		"(x@0 > 1) + 2 > 0": "numeric expression",
	}
	for src, frag := range bad {
		_, err := Parse(src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", src, frag)
			continue
		}
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("Parse(%q) error %q does not contain %q", src, err, frag)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on bad input did not panic")
		}
	}()
	MustParse("((")
}

func TestParseDeepNesting(t *testing.T) {
	src := "((((x@0 > 1))))"
	c := MustParse(src)
	if !c.Holds(st(1, map[Key]float64{{0, "x"}: 2})) {
		t.Fatal("nested parens broken")
	}
}

func TestParseWhitespaceRobust(t *testing.T) {
	c := MustParse("  sum( x )\t-\nsum( y )>200 ")
	s := st(1, map[Key]float64{{0, "x"}: 300})
	if !c.Holds(s) {
		t.Fatal("whitespace handling broken")
	}
}
