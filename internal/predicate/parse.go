package predicate

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse compiles the expression language into a Cond. Syntax:
//
//	cond  := or
//	or    := and ( "||" and )*
//	and   := unary ( "&&" unary )*
//	unary := "!" unary | cmp
//	cmp   := sum ( (">"|">="|"<"|"<="|"=="|"!=") sum )?
//	sum   := prod ( ("+"|"-") prod )*
//	prod  := neg ( ("*"|"/") neg )*
//	neg   := "-" neg | prim
//	prim  := NUMBER | IDENT "@" NUMBER | ("sum"|"avg"|"min"|"max") "(" IDENT ")"
//	       | "(" cond-or-expr ")" | "true" | "false"
//
// A bare comparison-free expression is a type error (predicates are
// boolean); parenthesized subterms may be either numeric or boolean and
// are type-checked where used. Examples from the paper:
//
//	x@1 == 5 && y@2 > 7            (conjunctive ψ of §3.1.2.a)
//	sum(x) - sum(y) > 200          (relational φ of §5)
//	temp@3 > 30 && motion@3 == 1   (smart-office rule of §3.3)
func Parse(src string) (Cond, error) {
	p := &parser{src: src}
	p.next()
	node, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %q after predicate", p.tok.text)
	}
	c, ok := node.(Cond)
	if !ok {
		return nil, fmt.Errorf("predicate: expression %q is numeric, not boolean", src)
	}
	return c, nil
}

// MustParse is Parse that panics on error, for literals in examples and
// tests.
func MustParse(src string) Cond {
	c, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return c
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokNumber
	tokIdent
	tokOp // one of + - * / ( ) @ && || ! > >= < <= == !=
)

type token struct {
	kind tokKind
	text string
	pos  int
	val  float64
}

type parser struct {
	src string
	off int
	tok token
	err error
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("predicate: %s at offset %d in %q",
		fmt.Sprintf(format, args...), p.tok.pos, p.src)
}

func (p *parser) next() {
	for p.off < len(p.src) && unicode.IsSpace(rune(p.src[p.off])) {
		p.off++
	}
	start := p.off
	if p.off >= len(p.src) {
		p.tok = token{kind: tokEOF, pos: start}
		return
	}
	c := p.src[p.off]
	switch {
	case c >= '0' && c <= '9' || c == '.':
		j := p.off
		for j < len(p.src) && (p.src[j] >= '0' && p.src[j] <= '9' || p.src[j] == '.') {
			j++
		}
		text := p.src[p.off:j]
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			p.err = fmt.Errorf("predicate: bad number %q at offset %d", text, start)
		}
		p.off = j
		p.tok = token{kind: tokNumber, text: text, pos: start, val: v}
	case unicode.IsLetter(rune(c)) || c == '_':
		j := p.off
		for j < len(p.src) && (unicode.IsLetter(rune(p.src[j])) ||
			unicode.IsDigit(rune(p.src[j])) || p.src[j] == '_') {
			j++
		}
		p.tok = token{kind: tokIdent, text: p.src[p.off:j], pos: start}
		p.off = j
	default:
		two := ""
		if p.off+1 < len(p.src) {
			two = p.src[p.off : p.off+2]
		}
		switch two {
		case "&&", "||", ">=", "<=", "==", "!=":
			p.tok = token{kind: tokOp, text: two, pos: start}
			p.off += 2
			return
		}
		switch c {
		case '+', '-', '*', '/', '(', ')', '@', '!', '>', '<':
			p.tok = token{kind: tokOp, text: string(c), pos: start}
			p.off++
		default:
			p.err = fmt.Errorf("predicate: unexpected character %q at offset %d", c, start)
			p.tok = token{kind: tokEOF, pos: start}
		}
	}
}

func (p *parser) accept(text string) bool {
	if p.tok.kind == tokOp && p.tok.text == text {
		p.next()
		return true
	}
	return false
}

// node is either an Expr or a Cond; operators type-check their operands.
type node any

func asExpr(n node, p *parser) (Expr, error) {
	if e, ok := n.(Expr); ok {
		return e, nil
	}
	return nil, p.errorf("expected a numeric expression, found boolean %v", n)
}

func asCond(n node, p *parser) (Cond, error) {
	if c, ok := n.(Cond); ok {
		return c, nil
	}
	return nil, p.errorf("expected a boolean predicate, found numeric %v", n)
}

func (p *parser) parseOr() (node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && p.tok.text == "||" {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l, err := asCond(left, p)
		if err != nil {
			return nil, err
		}
		r, err := asCond(right, p)
		if err != nil {
			return nil, err
		}
		left = Or{L: l, R: r}
	}
	return left, nil
}

func (p *parser) parseAnd() (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && p.tok.text == "&&" {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l, err := asCond(left, p)
		if err != nil {
			return nil, err
		}
		r, err := asCond(right, p)
		if err != nil {
			return nil, err
		}
		left = And{L: l, R: r}
	}
	return left, nil
}

func (p *parser) parseUnary() (node, error) {
	if p.accept("!") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		c, err := asCond(inner, p)
		if err != nil {
			return nil, err
		}
		return Not{X: c}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]CmpOp{
	">": CmpGT, ">=": CmpGE, "<": CmpLT, "<=": CmpLE, "==": CmpEQ, "!=": CmpNE,
}

func (p *parser) parseCmp() (node, error) {
	left, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokOp {
		if op, ok := cmpOps[p.tok.text]; ok {
			p.next()
			right, err := p.parseSum()
			if err != nil {
				return nil, err
			}
			l, err := asExpr(left, p)
			if err != nil {
				return nil, err
			}
			r, err := asExpr(right, p)
			if err != nil {
				return nil, err
			}
			return Cmp{Op: op, L: l, R: r}, nil
		}
	}
	return left, nil
}

func (p *parser) parseSum() (node, error) {
	left, err := p.parseProd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := OpAdd
		if p.tok.text == "-" {
			op = OpSub
		}
		p.next()
		right, err := p.parseProd()
		if err != nil {
			return nil, err
		}
		l, err := asExpr(left, p)
		if err != nil {
			return nil, err
		}
		r, err := asExpr(right, p)
		if err != nil {
			return nil, err
		}
		left = Bin{Op: op, L: l, R: r}
	}
	return left, nil
}

func (p *parser) parseProd() (node, error) {
	left, err := p.parseNeg()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "*" || p.tok.text == "/") {
		op := OpMul
		if p.tok.text == "/" {
			op = OpDiv
		}
		p.next()
		right, err := p.parseNeg()
		if err != nil {
			return nil, err
		}
		l, err := asExpr(left, p)
		if err != nil {
			return nil, err
		}
		r, err := asExpr(right, p)
		if err != nil {
			return nil, err
		}
		left = Bin{Op: op, L: l, R: r}
	}
	return left, nil
}

func (p *parser) parseNeg() (node, error) {
	if p.accept("-") {
		inner, err := p.parseNeg()
		if err != nil {
			return nil, err
		}
		e, err := asExpr(inner, p)
		if err != nil {
			return nil, err
		}
		return Neg{X: e}, nil
	}
	return p.parsePrim()
}

var aggOps = map[string]AggOp{"sum": AggSum, "avg": AggAvg, "min": AggMin, "max": AggMax}

func (p *parser) parsePrim() (node, error) {
	if p.err != nil {
		return nil, p.err
	}
	switch p.tok.kind {
	case tokNumber:
		v := p.tok.val
		p.next()
		return Const(v), nil
	case tokIdent:
		name := p.tok.text
		p.next()
		switch strings.ToLower(name) {
		case "true":
			return FuncCond{F: func(State) bool { return true }, Desc: "true"}, nil
		case "false":
			return FuncCond{F: func(State) bool { return false }, Desc: "false"}, nil
		}
		if op, isAgg := aggOps[strings.ToLower(name)]; isAgg && p.tok.kind == tokOp && p.tok.text == "(" {
			p.next()
			if p.tok.kind != tokIdent {
				return nil, p.errorf("aggregate %s needs a variable name", name)
			}
			varName := p.tok.text
			p.next()
			if !p.accept(")") {
				return nil, p.errorf("missing ) after aggregate")
			}
			return Agg{Op: op, Name: varName}, nil
		}
		if !p.accept("@") {
			return nil, p.errorf("variable %q needs a process: %s@<proc>", name, name)
		}
		if p.tok.kind != tokNumber {
			return nil, p.errorf("expected process index after %s@", name)
		}
		proc := int(p.tok.val)
		if float64(proc) != p.tok.val || proc < 0 {
			return nil, p.errorf("process index must be a non-negative integer")
		}
		p.next()
		return Var{Proc: proc, Name: name}, nil
	case tokOp:
		if p.accept("(") {
			inner, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if !p.accept(")") {
				return nil, p.errorf("missing )")
			}
			return inner, nil
		}
	}
	return nil, p.errorf("unexpected %q", p.tok.text)
}
