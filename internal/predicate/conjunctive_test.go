package predicate

import "testing"

func TestAsConjunctiveSimple(t *testing.T) {
	// ψ = (x_i = 5) ∧ (y_j > 7) from §3.1.2.a.
	c := MustParse("x@1 == 5 && y@2 > 7")
	cjs, ok := AsConjunctive(c)
	if !ok {
		t.Fatal("ψ should be conjunctive")
	}
	if len(cjs) != 2 || cjs[0].Proc != 1 || cjs[1].Proc != 2 {
		t.Fatalf("conjuncts %+v", cjs)
	}
}

func TestAsConjunctiveMergesSameProcess(t *testing.T) {
	// χ = temp_i = 20 ∧ person_in_room_i: two conjuncts at one process.
	c := MustParse("temp@0 == 20 && person@0 == 1")
	cjs, ok := AsConjunctive(c)
	if !ok || len(cjs) != 1 || cjs[0].Proc != 0 {
		t.Fatalf("conjuncts %+v ok=%v", cjs, ok)
	}
	s := st(1, map[Key]float64{{0, "temp"}: 20, {0, "person"}: 1})
	if !cjs[0].Cond.Holds(s) {
		t.Fatal("merged conjunct should hold")
	}
}

func TestRelationalNotConjunctive(t *testing.T) {
	// φ = x_i + y_j > 7 is relational (§3.1.2.b).
	if _, ok := AsConjunctive(MustParse("x@0 + y@1 > 7")); ok {
		t.Fatal("cross-process comparison misclassified as conjunctive")
	}
	if !IsRelational(MustParse("sum(x) - sum(y) > 200")) {
		t.Fatal("aggregate predicate misclassified")
	}
	if IsRelational(MustParse("x@1 == 5 && y@2 > 7")) {
		t.Fatal("conjunctive predicate misclassified as relational")
	}
}

func TestDisjunctionBlocksDecomposition(t *testing.T) {
	// A disjunction across processes is not conjunctive.
	if _, ok := AsConjunctive(MustParse("x@0 > 1 || x@1 > 1")); ok {
		t.Fatal("cross-process disjunction misclassified")
	}
	// But a disjunction local to one process is a fine conjunct.
	cjs, ok := AsConjunctive(MustParse("(x@0 > 1 || y@0 > 1) && z@1 == 0"))
	if !ok || len(cjs) != 2 {
		t.Fatalf("local disjunction should decompose: %+v ok=%v", cjs, ok)
	}
}

func TestConstantOnlyPredicateNotConjunctive(t *testing.T) {
	if _, ok := AsConjunctive(MustParse("1 > 0")); ok {
		t.Fatal("variable-free predicate has no home process")
	}
}

func TestSplitAnd(t *testing.T) {
	c := MustParse("x@0 > 1 && y@1 > 2 && z@2 > 3")
	parts := SplitAnd(c)
	if len(parts) != 3 {
		t.Fatalf("split %d parts", len(parts))
	}
}

func TestConjunctEvalAt(t *testing.T) {
	cjs, ok := AsConjunctive(MustParse("door@0 == 1"))
	if !ok {
		t.Fatal("decomposition failed")
	}
	s := st(4, map[Key]float64{{3, "door"}: 1})
	if !cjs[0].EvalAt(s, 3) {
		t.Fatal("EvalAt remap failed")
	}
	if cjs[0].EvalAt(s, 2) {
		t.Fatal("EvalAt remap leaked original process")
	}
}

func TestSpecString(t *testing.T) {
	spec := Spec{Pred: MustParse("x@0 > 1"), Modality: Definitely}
	if got := spec.String(); got != "Definitely(x@0 > 1)" {
		t.Fatalf("spec string %q", got)
	}
	if Instantaneously.String() != "Instantaneously" || Possibly.String() != "Possibly" {
		t.Fatal("modality names")
	}
}
