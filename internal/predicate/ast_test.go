package predicate

import (
	"math"
	"testing"
)

func st(n int, kv map[Key]float64) MapState { return MapState{N: n, Vals: kv} }

func TestConstVarEval(t *testing.T) {
	s := st(2, map[Key]float64{{0, "x"}: 3, {1, "x"}: 4})
	if Const(5).Eval(s) != 5 {
		t.Fatal("const")
	}
	if (Var{Proc: 1, Name: "x"}).Eval(s) != 4 {
		t.Fatal("var")
	}
	if (Var{Proc: 0, Name: "missing"}).Eval(s) != 0 {
		t.Fatal("missing var should be 0")
	}
}

func TestAggregates(t *testing.T) {
	s := st(3, map[Key]float64{{0, "x"}: 1, {1, "x"}: 5, {2, "x"}: 3})
	cases := map[AggOp]float64{AggSum: 9, AggAvg: 3, AggMin: 1, AggMax: 5}
	for op, want := range cases {
		if got := (Agg{Op: op, Name: "x"}).Eval(s); got != want {
			t.Errorf("agg %v = %v want %v", op, got, want)
		}
	}
	empty := st(0, nil)
	if (Agg{Op: AggSum, Name: "x"}).Eval(empty) != 0 {
		t.Fatal("empty aggregate should be 0")
	}
}

func TestBinOps(t *testing.T) {
	s := st(1, nil)
	if (Bin{OpAdd, Const(2), Const(3)}).Eval(s) != 5 {
		t.Fatal("add")
	}
	if (Bin{OpSub, Const(2), Const(3)}).Eval(s) != -1 {
		t.Fatal("sub")
	}
	if (Bin{OpMul, Const(2), Const(3)}).Eval(s) != 6 {
		t.Fatal("mul")
	}
	if (Bin{OpDiv, Const(6), Const(3)}).Eval(s) != 2 {
		t.Fatal("div")
	}
	if (Bin{OpDiv, Const(6), Const(0)}).Eval(s) != 0 {
		t.Fatal("division by zero must be total (0)")
	}
	if (Neg{Const(4)}).Eval(s) != -4 {
		t.Fatal("neg")
	}
}

func TestCmpOps(t *testing.T) {
	s := st(1, nil)
	tests := []struct {
		op   CmpOp
		l, r float64
		want bool
	}{
		{CmpGT, 2, 1, true}, {CmpGT, 1, 1, false},
		{CmpGE, 1, 1, true}, {CmpGE, 0, 1, false},
		{CmpLT, 1, 2, true}, {CmpLT, 2, 2, false},
		{CmpLE, 2, 2, true}, {CmpLE, 3, 2, false},
		{CmpEQ, 2, 2, true}, {CmpEQ, 2, 3, false},
		{CmpNE, 2, 3, true}, {CmpNE, 2, 2, false},
	}
	for _, c := range tests {
		got := Cmp{Op: c.op, L: Const(c.l), R: Const(c.r)}.Holds(s)
		if got != c.want {
			t.Errorf("%v %v %v = %v", c.l, cmpNames[c.op], c.r, got)
		}
	}
}

func TestLogicalOps(t *testing.T) {
	s := st(1, nil)
	tr := FuncCond{F: func(State) bool { return true }}
	fa := FuncCond{F: func(State) bool { return false }}
	if !(And{tr, tr}).Holds(s) || (And{tr, fa}).Holds(s) {
		t.Fatal("and")
	}
	if !(Or{fa, tr}).Holds(s) || (Or{fa, fa}).Holds(s) {
		t.Fatal("or")
	}
	if (Not{tr}).Holds(s) || !(Not{fa}).Holds(s) {
		t.Fatal("not")
	}
}

func TestCollectVars(t *testing.T) {
	c := MustParse("x@0 + y@1 > 2 && sum(z) < 5 && x@0 == 1")
	keys := VarsOf(c)
	want := []Key{{0, "x"}, {1, "y"}, {-1, "z"}}
	if len(keys) != len(want) {
		t.Fatalf("vars %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("vars %v want %v", keys, want)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	// Parse(c.String()) must be semantically equal to c on sample states.
	exprs := []string{
		"x@0 > 5",
		"sum(x) - sum(y) > 200",
		"x@1 == 5 && y@2 > 7",
		"!(temp@0 > 30) || motion@1 != 0",
		"avg(v) >= 2 && min(v) < 1",
		"-x@0 + 3 * y@1 <= 10",
	}
	states := []MapState{
		st(3, map[Key]float64{{0, "x"}: 1, {1, "y"}: 8, {0, "temp"}: 31}),
		st(3, map[Key]float64{{0, "x"}: 300, {1, "x"}: 10, {2, "y"}: 50,
			{0, "v"}: 3, {1, "v"}: 0.5, {2, "v"}: 4, {1, "motion"}: 1}),
		st(3, map[Key]float64{{1, "x"}: 5, {2, "y"}: 9}),
	}
	for _, src := range exprs {
		orig := MustParse(src)
		re, err := Parse(orig.String())
		if err != nil {
			t.Fatalf("reparse of %q (%q): %v", src, orig.String(), err)
		}
		for i, s := range states {
			if orig.Holds(s) != re.Holds(s) {
				t.Fatalf("round-trip of %q differs on state %d", src, i)
			}
		}
	}
}

func TestConstString(t *testing.T) {
	if Const(200).String() != "200" {
		t.Fatalf("const string %q", Const(200).String())
	}
	if Const(2.5).String() != "2.5" {
		t.Fatalf("const string %q", Const(2.5).String())
	}
}

func TestNaNSafety(t *testing.T) {
	// Predicates over NaN values must not panic and comparisons are false.
	s := st(1, map[Key]float64{{0, "x"}: math.NaN()})
	if MustParse("x@0 > 0").Holds(s) || MustParse("x@0 <= 0").Holds(s) {
		t.Fatal("NaN comparisons should be false")
	}
}

func TestFuncCondVarsAndString(t *testing.T) {
	fc := FuncCond{
		F:    func(State) bool { return true },
		Keys: []Key{{0, "x"}},
	}
	vars := VarsOf(fc)
	if len(vars) != 1 || vars[0] != (Key{0, "x"}) {
		t.Fatalf("vars %v", vars)
	}
	if fc.String() != "<func>" {
		t.Fatalf("string %q", fc.String())
	}
	named := FuncCond{F: func(State) bool { return false }, Desc: "rule"}
	if named.String() != "rule" {
		t.Fatalf("string %q", named.String())
	}
}

func TestNotCollectVars(t *testing.T) {
	c := Not{X: MustParse("x@0 > 1")}
	if len(VarsOf(c)) != 1 {
		t.Fatal("Not did not delegate CollectVars")
	}
}
