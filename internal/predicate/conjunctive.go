package predicate

// Modality is the time modality under which a predicate is specified
// (Section 3.1.1).
type Modality int

// Supported modalities. Instantaneously is the single-time-axis modality
// — the predicate held at some instant of physical time; Possibly and
// Definitely are the partial-order modalities of Cooper–Marzullo [10].
const (
	Instantaneously Modality = iota
	Possibly
	Definitely
)

// String names the modality.
func (m Modality) String() string {
	switch m {
	case Instantaneously:
		return "Instantaneously"
	case Possibly:
		return "Possibly"
	default:
		return "Definitely"
	}
}

// Spec couples a predicate with the modality under which it must be
// detected — one point in the paper's specification design space.
type Spec struct {
	Pred     Cond
	Modality Modality
}

// String renders the spec as Modality(pred).
func (s Spec) String() string { return s.Modality.String() + "(" + s.Pred.String() + ")" }

// Conjunct is one locally evaluable piece of a conjunctive predicate: it
// reads variables of a single process.
type Conjunct struct {
	Proc int
	Cond Cond
}

// SplitAnd flattens nested top-level conjunctions into a list.
func SplitAnd(c Cond) []Cond {
	if a, ok := c.(And); ok {
		return append(SplitAnd(a.L), SplitAnd(a.R)...)
	}
	return []Cond{c}
}

// homeProc returns the single process that c's variables reference, or
// (-1, false) if c reads aggregates, multiple processes, or nothing.
func homeProc(c Cond) (int, bool) {
	proc := -2
	ok := true
	c.CollectVars(func(k Key) {
		if k.Proc < 0 { // aggregate: spans all processes
			ok = false
			return
		}
		if proc == -2 {
			proc = k.Proc
		} else if proc != k.Proc {
			ok = false
		}
	})
	if proc < 0 {
		return -1, false
	}
	return proc, ok
}

// AsConjunctive decomposes c into per-process conjuncts if every top-level
// conjunct is locally evaluable at one process (the conjunctive class of
// Section 3.1.2.a, detectable with the Garg–Waldecker family of
// algorithms). Multiple conjuncts at the same process are AND-combined.
// The second result reports whether the decomposition succeeded; a false
// result means the predicate is relational (Section 3.1.2.b).
func AsConjunctive(c Cond) ([]Conjunct, bool) {
	byProc := make(map[int]Cond)
	var order []int
	for _, part := range SplitAnd(c) {
		proc, ok := homeProc(part)
		if !ok {
			return nil, false
		}
		if prev, dup := byProc[proc]; dup {
			byProc[proc] = And{L: prev, R: part}
		} else {
			byProc[proc] = part
			order = append(order, proc)
		}
	}
	out := make([]Conjunct, 0, len(order))
	for _, p := range order {
		out = append(out, Conjunct{Proc: p, Cond: byProc[p]})
	}
	return out, len(out) > 0
}

// IsRelational reports that the predicate cannot be decomposed into
// per-process conjuncts.
func IsRelational(c Cond) bool {
	_, ok := AsConjunctive(c)
	return !ok
}

// singleProcState adapts a State so a local conjunct can be evaluated
// against one process's variables regardless of the conjunct's Proc index.
type remapState struct {
	inner State
	from  int // conjunct's declared proc
	to    int // actual proc in inner
}

// Get implements State.
func (r remapState) Get(proc int, name string) float64 {
	if proc == r.from {
		proc = r.to
	}
	return r.inner.Get(proc, name)
}

// NumProcs implements State.
func (r remapState) NumProcs() int { return r.inner.NumProcs() }

// EvalAt evaluates a conjunct against process to of state s, remapping the
// conjunct's declared process index. Used when the same local predicate
// template is deployed at many sensors.
func (cj Conjunct) EvalAt(s State, to int) bool {
	return cj.Cond.Holds(remapState{inner: s, from: cj.Proc, to: to})
}
