package runner

import (
	"runtime"
	"sync/atomic"
	"testing"

	"pervasive/internal/obs"
)

func TestMapCollectsByIndex(t *testing.T) {
	for _, par := range []int{1, 2, 8, 100} {
		got := Map(par, 17, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("par=%d: out[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got := Map(8, 0, func(int) int { t.Fatal("fn called"); return 0 }); len(got) != 0 {
		t.Fatalf("len %d", len(got))
	}
	got := Map(8, 1, func(i int) int { return 41 + i })
	if len(got) != 1 || got[0] != 41 {
		t.Fatalf("got %v", got)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int64
	Map(3, 64, func(i int) struct{} {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
		return struct{}{}
	})
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent jobs, bound is 3", p)
	}
}

func TestWorkers(t *testing.T) {
	if w := AllCores(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("AllCores() = %d, want GOMAXPROCS", w)
	}
	for in, want := range map[int]int{-3: 1, 0: 1, 1: 1, 2: 2, 16: 16} {
		if w := Workers(in); w != want {
			t.Fatalf("Workers(%d) = %d, want %d", in, w, want)
		}
	}
}

// Determinism across parallelism levels: same fn, same indexed results,
// regardless of scheduling (results placement is by index, not by
// completion order).
func TestMapDeterministicAcrossParallelism(t *testing.T) {
	mk := func(par int) []uint64 {
		return Map(par, 200, func(i int) uint64 {
			v := uint64(i) * 0x9e3779b97f4a7c15
			return v ^ v>>29
		})
	}
	seq := mk(1)
	for _, par := range []int{2, 7, 32} {
		got := mk(par)
		for i := range seq {
			if got[i] != seq[i] {
				t.Fatalf("par=%d diverges at %d", par, i)
			}
		}
	}
}

func TestMapObsInstruments(t *testing.T) {
	r := obs.NewRegistry()
	SetObs(r)
	defer SetObs(nil)
	Map(4, 10, func(i int) int { return i })
	if got := r.Counter("runner.jobs").Value(); got != 10 {
		t.Fatalf("runner.jobs = %d, want 10", got)
	}
	if got := r.Counter("runner.maps").Value(); got != 1 {
		t.Fatalf("runner.maps = %d, want 1", got)
	}
	if max := r.Gauge("runner.workers").Max(); max != 4 {
		t.Fatalf("runner.workers watermark = %d, want 4", max)
	}
	snap := r.Snapshot()
	found := false
	for _, h := range snap.Histograms {
		if h.Name == "span.runner.map" && h.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("span.runner.map histogram missing from snapshot")
	}
}
