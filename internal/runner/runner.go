// Package runner fans independent experiment replications out across a
// bounded worker pool without giving up determinism: jobs are indexed,
// results are collected by index, and the caller aggregates them in index
// order — so every table rendered from a parallel run is byte-identical
// to the sequential run.
//
// The contract is isolation, not synchronization: each job must own its
// engine, RNG stream and world (the DES kernel is single-threaded by
// design). Shared random material must be drawn *before* the fan-out, in
// job order, and passed in — see the experiment loops for the pattern.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pervasive/internal/obs"
	"pervasive/internal/sim"
)

// Workers normalizes a parallelism setting to a worker count: values
// above 1 are taken literally; 0, 1 and negatives mean "sequential".
// Callers that want an "all cores" convention (cmd/experiments -p 0)
// resolve it to GOMAXPROCS themselves before handing the value down.
func Workers(parallelism int) int {
	if parallelism < 1 {
		return 1
	}
	return parallelism
}

// AllCores is the worker count for "use the whole machine".
func AllCores() int { return runtime.GOMAXPROCS(0) }

// obsReg is the optional metrics registry shared by all Map calls; the
// runner is process-wide infrastructure, so its instrumentation is too.
var obsReg atomic.Pointer[obs.Registry]

// SetObs installs the registry Map reports into: counters runner.jobs and
// runner.maps, the runner.workers gauge (with high-watermark), and one
// span.runner.map histogram entry per fan-out, in wall-clock µs.
// SetObs(nil) detaches.
func SetObs(r *obs.Registry) { obsReg.Store(r) }

// epoch anchors the runner's wall-clock span timestamps.
var epoch = time.Now() //lint:allow determinism(span-epoch anchor: wall-clock timings feed obs spans only, never job results or tables)

func wallNow() sim.Time { return sim.Time(time.Since(epoch).Microseconds()) } //lint:allow determinism(span-epoch arithmetic: timestamps feed obs spans only, never job results)

// Map runs fn(0..n-1) across at most Workers(parallelism) goroutines and
// returns the results indexed by job. With parallelism ≤ 1 (or n ≤ 1) it
// degenerates to an inline sequential loop with zero goroutine overhead —
// the same code path the determinism guarantee is anchored to.
func Map[T any](parallelism, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	workers := Workers(parallelism)
	if workers > n {
		workers = n
	}
	reg := obsReg.Load()
	sp := reg.StartSpanAt("runner.map", wallNow())
	if workers <= 1 {
		for i := range out {
			out[i] = fn(i)
		}
	} else {
		reg.Gauge("runner.workers").Set(int64(workers))
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					out[i] = fn(i)
				}
			}()
		}
		wg.Wait()
		reg.Gauge("runner.workers").Set(0)
	}
	reg.Counter("runner.jobs").Add(int64(n))
	reg.Counter("runner.maps").Inc()
	sp.EndAt(wallNow())
	return out
}
