// Package advisor encodes the paper's decision guidance as an executable
// rule set: Sections 3.3 and 6 enumerate when physically synchronized
// clocks are the right implementation of the single time axis and when
// logical strobe clocks are the viable alternative — "(i) the sensing
// event occurrence rate is low with respect to Δ, or (ii) physical
// synchronized clocks are too expensive or not available or needed."
//
// Given a deployment's characteristics, Advise returns a ranked
// recommendation of clock options with the paper's rationale attached,
// and predicts the dominant error mode of each option.
package advisor

import (
	"fmt"
	"strings"

	"pervasive/internal/core"
	"pervasive/internal/sim"
)

// Deployment describes the application the way §3.3 reasons about it.
type Deployment struct {
	// N is the number of sensor/actuator processes.
	N int
	// MeanEventGap is the mean time between relevant sensed events at a
	// process — the rate §3.3 compares against Δ.
	MeanEventGap sim.Duration
	// Delta is the message-delay bound of the network (§3.2.2).
	Delta sim.Duration
	// SyncAvailable: a lower-layer physically-synchronized clock service
	// exists (§3.3 limitation 1 when false — e.g. remote terrain).
	SyncAvailable bool
	// SyncAffordable: its energy/traffic cost is acceptable (§3.3
	// limitation 1: "even if it is available, it may not be affordable").
	SyncAffordable bool
	// SyncEpsilon is the service's skew bound when available.
	SyncEpsilon sim.Duration
	// MinOverlap is the shortest predicate-true overlap the application
	// must not miss (§3.3 limitation 2 / Mayo–Kearns: overlaps below the
	// skew bound are missed).
	MinOverlap sim.Duration
	// CrossDomain: participants belong to different administrative
	// domains (§3.3 limitation 5: clock synchronization raises security
	// and privacy concerns across domains).
	CrossDomain bool
	// NeedRaceFlagging: the application needs race-affected detections
	// identified (the borderline bin of §5) — only vector strobes can.
	NeedRaceFlagging bool
	// BytesBudget restricts per-event control traffic (favours O(1)
	// scalar strobes over O(n) vectors, §4.2.2).
	BytesBudget int
}

// Option is one recommended configuration.
type Option struct {
	Kind core.ClockKind
	// Score in [0,1]: suitability under the paper's criteria.
	Score float64
	// ErrorMode is the dominant inaccuracy to expect.
	ErrorMode string
	// Rationale cites the paper's reasoning.
	Rationale []string
}

// Advice is the ranked recommendation.
type Advice struct {
	Options []Option // best first
	// Summary is a one-paragraph verdict.
	Summary string
}

// Best returns the top option.
func (a Advice) Best() Option { return a.Options[0] }

// Advise applies the paper's criteria to the deployment.
func Advise(d Deployment) Advice {
	if d.N <= 0 {
		d.N = 2
	}
	if d.MeanEventGap <= 0 {
		d.MeanEventGap = sim.Second
	}
	if d.Delta <= 0 {
		d.Delta = 100 * sim.Millisecond
	}

	// rateRatio ≫ 1 means events are slow relative to Δ — the strobe
	// clocks' favourable regime (§3.3).
	rateRatio := float64(d.MeanEventGap) / float64(d.Delta)

	physical := scorePhysical(d)
	vector := scoreVector(d, rateRatio)
	scalar := scoreScalar(d, rateRatio, vector.Score)

	opts := []Option{physical, vector, scalar}
	// Sort descending by score (3 items: do it directly).
	for i := 0; i < len(opts); i++ {
		for j := i + 1; j < len(opts); j++ {
			if opts[j].Score > opts[i].Score {
				opts[i], opts[j] = opts[j], opts[i]
			}
		}
	}
	return Advice{Options: opts, Summary: summarize(d, opts, rateRatio)}
}

func scorePhysical(d Deployment) Option {
	o := Option{Kind: core.PhysicalReport, Score: 1}
	if !d.SyncAvailable {
		o.Score = 0
		o.Rationale = append(o.Rationale,
			"no physically synchronized clock service is available from a lower layer (§3.3 limitation 1)")
	}
	if d.SyncAvailable && !d.SyncAffordable {
		o.Score *= 0.2
		o.Rationale = append(o.Rationale,
			"the service exists but its energy cost is unaffordable — 'this service is not for free' (§3.3)")
	}
	if d.CrossDomain {
		o.Score *= 0.5
		o.Rationale = append(o.Rationale,
			"cross-domain clock synchronization raises security and privacy concerns (§3.3 limitation 5)")
	}
	if d.SyncAvailable && d.MinOverlap > 0 && d.SyncEpsilon > 0 &&
		d.MinOverlap < 2*d.SyncEpsilon {
		o.Score *= 0.4
		o.ErrorMode = "false negatives on overlaps shorter than 2ε (Mayo–Kearns [28])"
		o.Rationale = append(o.Rationale, fmt.Sprintf(
			"required overlaps (%v) fall below 2ε = %v: races escape even synchronized clocks (§3.3 limitation 2)",
			d.MinOverlap, 2*d.SyncEpsilon))
	}
	if o.ErrorMode == "" {
		o.ErrorMode = "false negatives/positives only within the skew ε"
	}
	if len(o.Rationale) == 0 {
		o.Rationale = append(o.Rationale,
			"synchronized physical clocks are 'clearly a desirable option' when available and affordable (§6)")
	}
	return o
}

func scoreVector(d Deployment, rateRatio float64) Option {
	o := Option{Kind: core.VectorStrobe}
	switch {
	case rateRatio >= 10:
		o.Score = 0.95
		o.Rationale = append(o.Rationale, fmt.Sprintf(
			"event gap is %.0f× Δ: 'Δ may be adequate when the rate of occurrence of sensed events is comparatively low' (§3.3)", rateRatio))
	case rateRatio >= 2:
		o.Score = 0.7
		o.Rationale = append(o.Rationale,
			"events are moderately slow relative to Δ; some races will occur (§3.3)")
	default:
		o.Score = 0.3
		o.Rationale = append(o.Rationale,
			"events race within Δ frequently: accuracy will suffer (§3.3)")
	}
	if !d.SyncAvailable || !d.SyncAffordable || d.CrossDomain {
		o.Score += 0.05 // the regime the strobes were designed for
		o.Rationale = append(o.Rationale,
			"strobe clocks need no lower-layer sync service, no cross-layer dependence, and no cross-domain trust (§3.3, §6)")
	}
	if d.NeedRaceFlagging {
		o.Rationale = append(o.Rationale,
			"vector strobes support the borderline bin: race-affected detections are identified (§5)")
	}
	if d.BytesBudget > 0 && d.N*8 > d.BytesBudget {
		o.Score *= 0.6
		o.Rationale = append(o.Rationale, fmt.Sprintf(
			"O(n)=%dB strobes exceed the %dB budget; consider differential strobes or scalars (§4.2.2)",
			d.N*8, d.BytesBudget))
	}
	o.ErrorMode = "false negatives on races within Δ; race-affected detections flagged borderline"
	if o.Score > 1 {
		o.Score = 1
	}
	return o
}

func scoreScalar(d Deployment, rateRatio float64, vectorScore float64) Option {
	o := Option{Kind: core.ScalarStrobe, Score: vectorScore}
	if d.Delta == 0 {
		o.Score = vectorScore
		o.Rationale = append(o.Rationale,
			"with Δ=0, strobe scalars replace strobe vectors without losing accuracy (§4.2.3 item 5)")
	} else {
		o.Score = vectorScore * 0.85
		o.Rationale = append(o.Rationale,
			"scalars are lightweight (O(1) strobes) but cannot certify races: erroneous detections go unflagged (§3.3, §4.2.2)")
	}
	if d.NeedRaceFlagging && d.Delta > 0 {
		o.Score *= 0.3
		o.Rationale = append(o.Rationale,
			"the application needs race flagging, which scalar strobes cannot provide (§5)")
	}
	if d.BytesBudget > 0 && d.N*8 > d.BytesBudget {
		o.Score *= 1.3
		o.Rationale = append(o.Rationale,
			"the byte budget favours O(1) scalar strobes over O(n) vectors (§4.2.2)")
	}
	o.ErrorMode = "false negatives AND unflagged false positives on races within Δ"
	if o.Score > 1 {
		o.Score = 1
	}
	return o
}

func summarize(d Deployment, opts []Option, rateRatio float64) string {
	best := opts[0]
	var b strings.Builder
	fmt.Fprintf(&b, "recommended: %v (score %.2f). ", best.Kind, best.Score)
	switch best.Kind {
	case core.PhysicalReport:
		b.WriteString("Synchronized physical clocks are available, affordable, and precise enough — the desirable option (§6).")
	case core.VectorStrobe:
		fmt.Fprintf(&b, "Event gap %.0f× Δ with sync %s — the conditions under which the paper advocates strobe clocks (§6).",
			rateRatio, syncDesc(d))
	case core.ScalarStrobe:
		b.WriteString("Lightweight scalar strobes suffice here (Δ≈0 or tight byte budget, no race flagging needed).")
	}
	return b.String()
}

func syncDesc(d Deployment) string {
	switch {
	case !d.SyncAvailable:
		return "unavailable"
	case !d.SyncAffordable:
		return "unaffordable"
	case d.CrossDomain:
		return "blocked by cross-domain privacy"
	default:
		return "available"
	}
}
