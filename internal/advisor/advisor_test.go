package advisor

import (
	"strings"
	"testing"

	"pervasive/internal/core"
	"pervasive/internal/sim"
)

func TestUrbanWithSyncPrefersPhysical(t *testing.T) {
	// Smart office with an affordable sync service and µs-scale ε.
	a := Advise(Deployment{
		N: 8, MeanEventGap: sim.Second, Delta: 50 * sim.Millisecond,
		SyncAvailable: true, SyncAffordable: true,
		SyncEpsilon: 100 * sim.Microsecond, MinOverlap: 50 * sim.Millisecond,
	})
	if a.Best().Kind != core.PhysicalReport {
		t.Fatalf("best = %v; synchronized clocks should win when available and affordable", a.Best().Kind)
	}
}

func TestWildTerrainPrefersVectorStrobes(t *testing.T) {
	// Habitat monitoring: no sync service, events minutes apart, Δ seconds.
	a := Advise(Deployment{
		N: 5, MeanEventGap: 2 * sim.Minute, Delta: 2 * sim.Second,
		SyncAvailable: false, NeedRaceFlagging: true,
	})
	if a.Best().Kind != core.VectorStrobe {
		t.Fatalf("best = %v; the wild is the strobe clocks' regime (§6)", a.Best().Kind)
	}
	if a.Best().Score < 0.9 {
		t.Fatalf("score %.2f too low for the favourable regime", a.Best().Score)
	}
	// Physical must be eliminated outright.
	for _, o := range a.Options {
		if o.Kind == core.PhysicalReport && o.Score != 0 {
			t.Fatalf("physical clocks scored %.2f with no service available", o.Score)
		}
	}
}

func TestTightByteBudgetFavoursScalars(t *testing.T) {
	a := Advise(Deployment{
		N: 64, MeanEventGap: sim.Minute, Delta: 100 * sim.Millisecond,
		SyncAvailable: false, BytesBudget: 64,
	})
	if a.Best().Kind != core.ScalarStrobe {
		t.Fatalf("best = %v; 64-node vectors blow a 64B budget", a.Best().Kind)
	}
}

func TestRaceFlaggingDemotesScalars(t *testing.T) {
	a := Advise(Deployment{
		N: 4, MeanEventGap: sim.Second, Delta: 100 * sim.Millisecond,
		SyncAvailable: false, NeedRaceFlagging: true,
	})
	var scalarScore, vectorScore float64
	for _, o := range a.Options {
		switch o.Kind {
		case core.ScalarStrobe:
			scalarScore = o.Score
		case core.VectorStrobe:
			vectorScore = o.Score
		}
	}
	if scalarScore >= vectorScore {
		t.Fatalf("scalar %.2f not demoted below vector %.2f despite race-flagging need",
			scalarScore, vectorScore)
	}
}

func TestShortOverlapsDemotePhysical(t *testing.T) {
	base := Deployment{
		N: 4, MeanEventGap: sim.Second, Delta: 10 * sim.Millisecond,
		SyncAvailable: true, SyncAffordable: true,
		SyncEpsilon: 5 * sim.Millisecond,
	}
	fine := base
	fine.MinOverlap = 100 * sim.Millisecond
	coarse := Advise(fine)
	racy := base
	racy.MinOverlap = 2 * sim.Millisecond // below 2ε = 10ms
	tight := Advise(racy)
	scoreOf := func(a Advice, k core.ClockKind) float64 {
		for _, o := range a.Options {
			if o.Kind == k {
				return o.Score
			}
		}
		return -1
	}
	if scoreOf(tight, core.PhysicalReport) >= scoreOf(coarse, core.PhysicalReport) {
		t.Fatal("sub-2ε overlaps should demote physical clocks (Mayo–Kearns)")
	}
	// And the rationale must cite the 2ε limit.
	found := false
	for _, o := range tight.Options {
		if o.Kind == core.PhysicalReport {
			for _, r := range o.Rationale {
				if strings.Contains(r, "2ε") {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("2ε rationale missing")
	}
}

func TestCrossDomainPenalty(t *testing.T) {
	base := Deployment{
		N: 4, MeanEventGap: sim.Minute, Delta: 100 * sim.Millisecond,
		SyncAvailable: true, SyncAffordable: true, SyncEpsilon: sim.Millisecond,
	}
	private := base
	private.CrossDomain = true
	a := Advise(private)
	if a.Best().Kind == core.PhysicalReport {
		t.Fatalf("cross-domain privacy (§3.3 limitation 5) should dethrone physical sync here")
	}
}

func TestDefaultsAndSummary(t *testing.T) {
	a := Advise(Deployment{})
	if len(a.Options) != 3 {
		t.Fatalf("options %d", len(a.Options))
	}
	if a.Summary == "" {
		t.Fatal("no summary")
	}
	for i := 1; i < len(a.Options); i++ {
		if a.Options[i].Score > a.Options[i-1].Score {
			t.Fatal("options not ranked")
		}
	}
	for _, o := range a.Options {
		if o.ErrorMode == "" {
			t.Fatalf("%v has no error mode", o.Kind)
		}
	}
}
