package lattice

import (
	"testing"

	"pervasive/internal/clock"
	"pervasive/internal/sim"
)

// ragged builds an independent execution with counts[i] events on proc i.
func ragged(counts []int) *Execution {
	n := len(counts)
	e := &Execution{Stamps: make([][]clock.Vector, n), Times: make([][]sim.Time, n)}
	for i := 0; i < n; i++ {
		for k := 1; k <= counts[i]; k++ {
			v := clock.NewVector(n)
			v[i] = uint64(k)
			e.Stamps[i] = append(e.Stamps[i], v)
			e.Times[i] = append(e.Times[i], sim.Time(k*n+i))
		}
	}
	return e
}

// The prep cache must not serve a packed prep while forceStringKeys is
// on (the differential "strings" modes would silently re-test the
// packed engine), nor poison the cache with a fallback prep.
func TestForceStringsBypassesCachedPrep(t *testing.T) {
	e := independent(3, 2)
	if sv := e.Survey(SurveyOptions{}); sv.Count != 27 { // caches packed prep
		t.Fatalf("packed count %d want 27", sv.Count)
	}
	forceStringKeys = true
	if p := e.prep(); p.packed {
		t.Error("cached packed prep served while forceStringKeys is on")
	}
	if sv := e.Survey(SurveyOptions{}); sv.Count != 27 {
		t.Errorf("fallback count %d want 27", sv.Count)
	}
	forceStringKeys = false
	if p := e.prep(); !p.packed {
		t.Error("fallback prep poisoned the cache for the packed path")
	}
}

// Pooled survey scratch from a narrower execution must be regrown when
// a wider one reuses it: the parallel non-SWAR path decodes cuts into
// per-worker buffers sized for n and used to panic on the width change.
func TestParallelScratchReuseAcrossWidths(t *testing.T) {
	// n=16, maxP=15: value bits 4, 16*4=64 -> packed; guard geometry
	// 16*6=96>64 -> non-SWAR (the expandPairs path).
	c1 := make([]int, 16)
	for i := range c1 {
		c1[i] = 1
	}
	c1[0] = 15
	// n=21, maxP=7: 21*3=63 -> packed, 21*5=105>64 -> non-SWAR again,
	// but five processes wider than e1.
	c2 := make([]int, 21)
	for i := range c2 {
		c2[i] = 1
	}
	c2[0] = 7
	// Independent events: the lattice is the full product, so the count
	// is prod(counts[i]+1).
	if sv := ragged(c1).Survey(SurveyOptions{Parallelism: 4}); sv.Count != 16<<15 {
		t.Fatalf("n=16 count %d want %d", sv.Count, 16<<15)
	}
	if sv := ragged(c2).Survey(SurveyOptions{Parallelism: 4}); sv.Count != 8<<20 {
		t.Fatalf("n=21 count %d want %d", sv.Count, 8<<20)
	}
}
