// Package lattice implements the global-state lattice machinery of the
// paper's Section 4.2.4: consistent cuts of a distributed execution, the
// size and shape of the lattice they form, the sub-lattice induced by
// strobe-clock control messages, and the single path that the physical
// world's execution actually traces through it.
//
// An execution is given as, per process, the sequence of vector timestamps
// of its relevant events. A cut assigns each process a prefix length; the
// cut is consistent iff no included event "knows" an excluded event — the
// standard vector-clock characterization. The same test applied to strobe
// vector stamps yields exactly the sub-lattice induced by the strobes'
// artificial causality, which is how the slim lattice postulate is
// quantified (experiment E3).
package lattice

import (
	"fmt"
	"sort"
	"sync/atomic"

	"pervasive/internal/clock"
	"pervasive/internal/sim"
)

// Execution is the per-process event stamp matrix. Stamps[i][k] is the
// vector timestamp of the (k+1)-th relevant event of process i. Times, if
// non-nil, carries the true occurrence times of the same events (used to
// trace the actual path).
type Execution struct {
	Stamps [][]clock.Vector
	Times  [][]sim.Time

	// surveyPrep caches the survey engine's preprocessing of Stamps
	// (sparse constraint rows, cut-key packing geometry); it is built
	// lazily on the first lattice statistic and assumes Stamps are not
	// mutated afterwards. See survey.go.
	surveyPrep atomic.Pointer[surveyPrep]
}

// N returns the number of processes.
func (e *Execution) N() int { return len(e.Stamps) }

// Events returns the total number of events.
func (e *Execution) Events() int {
	total := 0
	for _, s := range e.Stamps {
		total += len(s)
	}
	return total
}

// NumCuts returns the total number of cuts, consistent or not:
// ∏ (p_i + 1). It saturates at math.MaxInt64 / 2 to avoid overflow.
func (e *Execution) NumCuts() int64 {
	const sat = int64(1) << 62
	total := int64(1)
	for _, s := range e.Stamps {
		total *= int64(len(s) + 1)
		if total < 0 || total > sat {
			return sat
		}
	}
	return total
}

// ConsistentCut reports whether the cut (one included-prefix length per
// process) is consistent: for every included event, every event it knows
// about is also included.
func (e *Execution) ConsistentCut(cut []int) bool {
	if len(cut) != e.N() {
		panic("lattice: cut length mismatch")
	}
	for i, ci := range cut {
		if ci < 0 || ci > len(e.Stamps[i]) {
			panic(fmt.Sprintf("lattice: cut[%d]=%d out of range", i, ci))
		}
		if ci == 0 {
			continue
		}
		stamp := e.Stamps[i][ci-1]
		for j, cj := range cut {
			var known uint64
			if j < len(stamp) {
				known = stamp[j]
			}
			if known > uint64(cj) {
				return false
			}
		}
	}
	return true
}

// Enumerate calls fn for every consistent cut, in lexicographic order,
// stopping early if fn returns false or after limit cuts (limit <= 0
// means no limit). It returns the number of consistent cuts visited.
// Enumeration prunes: a partial assignment that is already pairwise
// inconsistent is never extended.
//
// Enumerate is the legacy recursive enumerator, retained as the
// differential-testing oracle for the level-synchronous Survey engine
// (see survey.go and TestSurveyMatchesOracle). Every statistic consumer
// should use Survey, which walks the lattice once with an incremental
// O(n) consistency check instead of once per statistic with an O(n²)
// pairwise check.
func (e *Execution) Enumerate(limit int64, fn func(cut []int) bool) int64 {
	n := e.N()
	cut := make([]int, n)
	var count int64
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			count++
			if fn != nil && !fn(cut) {
				return false
			}
			return limit <= 0 || count < limit
		}
		for ci := 0; ci <= len(e.Stamps[i]); ci++ {
			cut[i] = ci
			if !e.partialConsistent(cut, i) {
				continue
			}
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	return count
}

// partialConsistent checks consistency of cut[0..upto] pairwise, in both
// directions, ignoring unassigned processes.
func (e *Execution) partialConsistent(cut []int, upto int) bool {
	ci := cut[upto]
	if ci > 0 {
		stamp := e.Stamps[upto][ci-1]
		for j := 0; j <= upto; j++ {
			var known uint64
			if j < len(stamp) {
				known = stamp[j]
			}
			if known > uint64(cut[j]) {
				return false
			}
		}
	}
	for j := 0; j < upto; j++ {
		if cut[j] == 0 {
			continue
		}
		stamp := e.Stamps[j][cut[j]-1]
		if upto < len(stamp) && stamp[upto] > uint64(ci) {
			return false
		}
	}
	return true
}

// CountConsistent returns the number of consistent cuts, up to limit
// (limit <= 0 counts all), via a single Survey traversal. Callers that
// need more than one statistic should call Survey directly so the
// lattice is walked only once.
func (e *Execution) CountConsistent(limit int64) int64 {
	return e.Survey(SurveyOptions{Limit: limit}).Count
}

// LevelSizes returns, for each level ℓ (total number of included events),
// how many consistent cuts have exactly ℓ events. The maximum entry is the
// lattice's width; a totally ordered (slim) execution has all entries 1.
func (e *Execution) LevelSizes() []int64 {
	return e.Survey(SurveyOptions{}).LevelSizes
}

// Width returns the size of the largest level — 1 means the consistent
// cuts form a single chain (the linear order of Δ=0 strobing).
func (e *Execution) Width() int64 {
	return e.Survey(SurveyOptions{}).Width
}

// Path returns the sequence of cuts the execution actually traversed in
// true time, from the empty cut to the full cut — the "one path through np
// of the O(p^n) states" of Section 4.2.4. It requires Times. Simultaneous
// events advance the cut together.
func (e *Execution) Path() [][]int {
	if e.Times == nil {
		panic("lattice: Path requires event times")
	}
	type ev struct {
		at   sim.Time
		proc int
	}
	var evs []ev
	for i, ts := range e.Times {
		for _, at := range ts {
			evs = append(evs, ev{at: at, proc: i})
		}
	}
	// stable sort keeps equal times deterministic (construction order)
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].at < evs[b].at })
	cut := make([]int, e.N())
	path := [][]int{append([]int(nil), cut...)}
	for k := 0; k < len(evs); {
		at := evs[k].at
		for k < len(evs) && evs[k].at == at {
			cut[evs[k].proc]++
			k++
		}
		path = append(path, append([]int(nil), cut...))
	}
	return path
}

// PathConsistent reports whether every cut along the actual path is
// consistent under the execution's stamps. This is an invariant for both
// causal and strobe stamps — a timestamp can only know events that already
// happened — and serves as a sanity check that stamps were collected
// correctly.
func (e *Execution) PathConsistent() bool {
	return e.PathConsistentAlong(e.Path())
}

// PathConsistentAlong is PathConsistent over an already computed path;
// callers that hold the Path() result avoid re-sorting the event times.
func (e *Execution) PathConsistentAlong(path [][]int) bool {
	for _, cut := range path {
		if !e.ConsistentCut(cut) {
			return false
		}
	}
	return true
}
