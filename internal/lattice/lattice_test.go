package lattice

import (
	"testing"

	"pervasive/internal/clock"
	"pervasive/internal/sim"
	"pervasive/internal/stats"
)

// independent builds an n-process execution with p events per process and
// no communication: every event's vector knows only its own process.
func independent(n, p int) *Execution {
	e := &Execution{Stamps: make([][]clock.Vector, n), Times: make([][]sim.Time, n)}
	for i := 0; i < n; i++ {
		for k := 1; k <= p; k++ {
			v := clock.NewVector(n)
			v[i] = uint64(k)
			e.Stamps[i] = append(e.Stamps[i], v)
			// interleave true times deterministically: proc i event k at
			// time k*n + i
			e.Times[i] = append(e.Times[i], sim.Time(k*n+i))
		}
	}
	return e
}

// chain builds an execution in which all events are totally ordered by
// immediate strobes (Δ=0): each event's stamp knows every earlier event.
func chain(n, p int) *Execution {
	e := &Execution{Stamps: make([][]clock.Vector, n), Times: make([][]sim.Time, n)}
	counts := make([]uint64, n)
	for step := 0; step < n*p; step++ {
		i := step % n
		counts[i]++
		v := make(clock.Vector, n)
		copy(v, counts)
		e.Stamps[i] = append(e.Stamps[i], v)
		e.Times[i] = append(e.Times[i], sim.Time(step))
	}
	return e
}

func TestIndependentLatticeIsFull(t *testing.T) {
	// With no ordering constraints, every cut is consistent: (p+1)^n.
	e := independent(3, 2)
	if got := e.CountConsistent(0); got != 27 {
		t.Fatalf("count %d want 27", got)
	}
	if e.NumCuts() != 27 {
		t.Fatalf("numcuts %d", e.NumCuts())
	}
}

func TestChainLatticeIsLinear(t *testing.T) {
	// With total order, consistent cuts form a chain of n*p + 1 states —
	// the Δ=0 claim of §4.2.4.
	e := chain(3, 2)
	want := int64(3*2 + 1)
	if got := e.CountConsistent(0); got != want {
		t.Fatalf("count %d want %d", got, want)
	}
	if w := e.Width(); w != 1 {
		t.Fatalf("width %d want 1", w)
	}
}

func TestIndependentWidth(t *testing.T) {
	e := independent(2, 2)
	// Levels of the full 3x3 grid lattice: 1,2,3,2,1.
	sizes := e.LevelSizes()
	want := []int64{1, 2, 3, 2, 1}
	if len(sizes) != len(want) {
		t.Fatalf("levels %v", sizes)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("levels %v want %v", sizes, want)
		}
	}
	if e.Width() != 3 {
		t.Fatalf("width %d", e.Width())
	}
}

func TestConsistentCut(t *testing.T) {
	// Two processes; p1's event 1 knows p0's event 1 (message p0→p1).
	e := &Execution{Stamps: [][]clock.Vector{
		{{1, 0}},
		{{1, 1}},
	}}
	if !e.ConsistentCut([]int{1, 1}) {
		t.Fatal("full cut should be consistent")
	}
	if e.ConsistentCut([]int{0, 1}) {
		t.Fatal("cut including receive without send accepted")
	}
	if !e.ConsistentCut([]int{1, 0}) {
		t.Fatal("send without receive should be consistent")
	}
	if !e.ConsistentCut([]int{0, 0}) {
		t.Fatal("empty cut should be consistent")
	}
	if got := e.CountConsistent(0); got != 3 {
		t.Fatalf("count %d want 3", got)
	}
}

func TestConsistentCutPanics(t *testing.T) {
	e := independent(2, 1)
	for _, cut := range [][]int{{0}, {0, 5}, {-1, 0}} {
		cut := cut
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ConsistentCut(%v) did not panic", cut)
				}
			}()
			e.ConsistentCut(cut)
		}()
	}
}

func TestEnumerateLimit(t *testing.T) {
	e := independent(3, 3)
	if got := e.CountConsistent(10); got != 10 {
		t.Fatalf("limited count %d", got)
	}
	var visited int
	e.Enumerate(0, func(cut []int) bool {
		visited++
		return visited < 5
	})
	if visited != 5 {
		t.Fatalf("early stop visited %d", visited)
	}
}

func TestEnumerateMatchesBruteForce(t *testing.T) {
	// Random small executions: pruned enumeration must agree with a naive
	// check of every cut.
	r := stats.NewRNG(77)
	for trial := 0; trial < 10; trial++ {
		n := 2 + r.Intn(2)
		e := randomExecution(r, n, 3)
		fast := e.CountConsistent(0)
		var slow int64
		cut := make([]int, n)
		var rec func(i int)
		rec = func(i int) {
			if i == n {
				if e.ConsistentCut(cut) {
					slow++
				}
				return
			}
			for c := 0; c <= len(e.Stamps[i]); c++ {
				cut[i] = c
				rec(i + 1)
			}
		}
		rec(0)
		if fast != slow {
			t.Fatalf("trial %d: pruned %d brute %d", trial, fast, slow)
		}
	}
}

// randomExecution builds an execution with random strobe-style merges:
// each new event merges a random subset of current knowledge.
func randomExecution(r *stats.RNG, n, p int) *Execution {
	e := &Execution{Stamps: make([][]clock.Vector, n), Times: make([][]sim.Time, n)}
	clocks := make([]*clock.StrobeVector, n)
	for i := range clocks {
		clocks[i] = clock.NewStrobeVector(i, n)
	}
	var published []clock.Vector
	for step := 0; step < n*p; step++ {
		i := step % n
		// merge a random previously published strobe (models delayed
		// arrival)
		if len(published) > 0 && r.Bool(0.7) {
			clocks[i].OnStrobe(published[r.Intn(len(published))])
		}
		v := clocks[i].Strobe()
		published = append(published, v)
		e.Stamps[i] = append(e.Stamps[i], v)
		e.Times[i] = append(e.Times[i], sim.Time(step))
	}
	return e
}

func TestStrobeSlimsLattice(t *testing.T) {
	// The slim lattice postulate, in miniature: merging strobes yields no
	// more consistent cuts than the fully independent execution, and a
	// Δ=0 chain yields the fewest.
	r := stats.NewRNG(5)
	n, p := 3, 3
	full := independent(n, p).CountConsistent(0)
	strobed := randomExecution(r, n, p).CountConsistent(0)
	linear := chain(n, p).CountConsistent(0)
	if !(linear <= strobed && strobed <= full) {
		t.Fatalf("lattice sizes not ordered: linear=%d strobed=%d full=%d",
			linear, strobed, full)
	}
	if linear != int64(n*p+1) {
		t.Fatalf("linear lattice size %d", linear)
	}
}

func TestPath(t *testing.T) {
	e := independent(2, 2)
	path := e.Path()
	// 4 events, one per instant (times are distinct) plus the empty cut.
	if len(path) != 5 {
		t.Fatalf("path length %d", len(path))
	}
	first := path[0]
	last := path[len(path)-1]
	if first[0] != 0 || first[1] != 0 {
		t.Fatalf("path start %v", first)
	}
	if last[0] != 2 || last[1] != 2 {
		t.Fatalf("path end %v", last)
	}
	// Each step includes at least one more event.
	for i := 1; i < len(path); i++ {
		prev, cur := 0, 0
		for j := range path[i] {
			prev += path[i-1][j]
			cur += path[i][j]
		}
		if cur <= prev {
			t.Fatalf("path not monotone at %d", i)
		}
	}
}

func TestPathSimultaneousEvents(t *testing.T) {
	e := &Execution{
		Stamps: [][]clock.Vector{{{1, 0}}, {{0, 1}}},
		Times:  [][]sim.Time{{10}, {10}},
	}
	path := e.Path()
	if len(path) != 2 {
		t.Fatalf("simultaneous events should advance together: %v", path)
	}
}

func TestPathConsistentInvariant(t *testing.T) {
	r := stats.NewRNG(11)
	for trial := 0; trial < 20; trial++ {
		e := randomExecution(r, 2+r.Intn(3), 4)
		if !e.PathConsistent() {
			t.Fatalf("trial %d: actual path hit an inconsistent cut", trial)
		}
	}
}

func TestPathWithoutTimesPanics(t *testing.T) {
	e := &Execution{Stamps: [][]clock.Vector{{{1}}}}
	defer func() {
		if recover() == nil {
			t.Fatal("Path without times did not panic")
		}
	}()
	e.Path()
}

func TestNumCutsSaturates(t *testing.T) {
	const sat = int64(1) << 62
	cases := []struct {
		name string
		n, p int
		want int64
	}{
		// 41^40 overflows int64 by a huge margin.
		{"far overflow", 40, 40, sat},
		// 2^63 wraps negative in one multiplication step.
		{"wrap negative", 63, 1, sat},
		// Exactly 2^62 cuts: the saturation boundary itself.
		{"exact boundary", 62, 1, sat},
		// 2^61 is the largest power of two below the cap: no saturation.
		{"just below", 61, 1, int64(1) << 61},
	}
	for _, c := range cases {
		if got := independent(c.n, c.p).NumCuts(); got != c.want {
			t.Errorf("%s: NumCuts(independent(%d,%d)) = %d, want %d",
				c.name, c.n, c.p, got, c.want)
		}
	}
}

func TestEventsCount(t *testing.T) {
	if independent(3, 4).Events() != 12 {
		t.Fatal("events count")
	}
}

func BenchmarkCountConsistent4x4(b *testing.B) {
	r := stats.NewRNG(3)
	e := randomExecution(r, 4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.CountConsistent(0)
	}
}
