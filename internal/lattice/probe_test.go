package lattice

import (
	"fmt"
	"testing"

	"pervasive/internal/clock"
	"pervasive/internal/sim"
)

// ragged builds an independent execution with counts[i] events on proc i.
func ragged(counts []int) *Execution {
	n := len(counts)
	e := &Execution{Stamps: make([][]clock.Vector, n), Times: make([][]sim.Time, n)}
	for i := 0; i < n; i++ {
		for k := 1; k <= counts[i]; k++ {
			v := clock.NewVector(n)
			v[i] = uint64(k)
			e.Stamps[i] = append(e.Stamps[i], v)
			e.Times[i] = append(e.Times[i], sim.Time(k*n+i))
		}
	}
	return e
}

func TestProbeCachedPrepVsForceStrings(t *testing.T) {
	e := independent(3, 2)
	_ = e.Survey(SurveyOptions{}) // caches packed prep
	forceStringKeys = true
	defer func() { forceStringKeys = false }()
	p := e.prep()
	fmt.Printf("PROBE1: after forceStringKeys=true, cached prep packed=%v (strings modes run packed engine: %v)\n", p.packed, p.packed)
}

func TestProbeChunkCompStaleN(t *testing.T) {
	// n=16, maxP=15: vb=4, 16*4=64 packed; gb=5, 16*6=96>64 -> non-SWAR.
	c1 := make([]int, 16)
	for i := range c1 {
		c1[i] = 1
	}
	c1[0] = 15
	e1 := ragged(c1)
	p1 := e1.prep()
	fmt.Printf("PROBE2: e1 n=16 packed=%v swar=%v\n", p1.packed, p1.swar)

	// n=21, maxP=7: vb=3, 63<=64 packed; gb=4, 21*5=105>64 -> non-SWAR.
	c2 := make([]int, 21)
	for i := range c2 {
		c2[i] = 1
	}
	c2[0] = 7
	e2 := ragged(c2)
	p2 := e2.prep()
	fmt.Printf("PROBE2: e2 n=21 packed=%v swar=%v\n", p2.packed, p2.swar)

	sv1 := e1.Survey(SurveyOptions{Parallelism: 4}) // allocates chunkComp len 16
	fmt.Printf("PROBE2: e1 count=%d\n", sv1.Count)
	sv2 := e2.Survey(SurveyOptions{Parallelism: 4}) // reuses scratch, n=21
	fmt.Printf("PROBE2: e2 count=%d\n", sv2.Count)
}
